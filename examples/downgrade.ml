(* The protocol downgrade attack of Figure 2, step by step, on the
   paper's exact topology: a webhosting company (AS 21740) with a secure
   one-hop route to Level3 abandons it for a four-hop bogus route simply
   because the bogus route arrives over a revenue-neutral peer link.

   Run with:  dune exec examples/downgrade.exe *)

open Core

(* ids: 0 = Level3 (AS3356, the Tier 1 victim), 1 = webhost (AS21740),
   2 = Cogent (AS174), 3 = AS3491, 4 = the attacker, 5 = the single-homed
   stub AS3536. *)
let g =
  Graph.of_edges ~n:6
    [
      Graph.Customer_provider (1, 0) (* webhost buys transit from Level3 *);
      Graph.Peer_peer (1, 2) (* webhost peers with Cogent *);
      Graph.Peer_peer (2, 0) (* Cogent peers with Level3 *);
      Graph.Customer_provider (3, 2) (* 3491 is Cogent's customer *);
      Graph.Customer_provider (4, 3) (* the attacker buys from 3491 *);
      Graph.Customer_provider (5, 0) (* the stub is Level3's customer *);
    ]

let names = [| "Level3"; "webhost"; "Cogent"; "AS3491"; "ATTACKER"; "stub" |]

let path out v =
  match Outcome.path out v with
  | [] -> "(no route)"
  | p ->
      String.concat " -> " (List.map (fun a -> names.(a)) p)
      ^ (if Outcome.secure out v then "  [secure]" else "  [insecure]")

let () =
  (* Level3, the webhost and the stub deploy S*BGP. *)
  let dep = Deployment.make ~n:6 ~full:[| 0; 1; 5 |] () in
  print_endline "Normal conditions (any security model):";
  let normal =
    Engine.compute g (Policy.make Policy.Security_second) dep ~dst:0
      ~attacker:None
  in
  Printf.printf "  webhost: %s\n" (path normal 1);
  Printf.printf "  (no peer route via Cogent exists: Ex forbids exporting\n";
  Printf.printf "   Cogent's peer route to another peer)\n\n";

  print_endline "The attacker announces the bogus path \"ATTACKER Level3\"";
  print_endline "via legacy BGP (it passes origin validation!):\n";
  List.iter
    (fun model ->
      let policy = Policy.make model in
      let attack = Engine.compute g policy dep ~dst:0 ~attacker:(Some 4) in
      Printf.printf "  %s:\n" (Policy.model_name model);
      Printf.printf "    Cogent:  %s\n" (path attack 2);
      Printf.printf "    webhost: %s%s\n" (path attack 1)
        (if Outcome.happy_lb attack 1 then "" else "   <- DOWNGRADED");
      Printf.printf "    stub:    %s\n" (path attack 5))
    [ Policy.Security_first; Policy.Security_second; Policy.Security_third ];

  print_endline
    "\nUnder security 2nd/3rd the webhost prefers the insecure 4-hop PEER\n\
     route over its secure 1-hop PROVIDER route (local preference first),\n\
     so S*BGP bought it nothing — Theorem 3.1 shows this cannot happen\n\
     when security is ranked 1st."
