(* Collateral damage and collateral benefit (Figures 14, 15, 17):
   securing some ASes can change what OTHER, insecure ASes see —
   sometimes rescuing them, sometimes exposing them.

   Run with:  dune exec examples/collateral.exe *)

open Core

let c2p a b = Graph.Customer_provider (a, b)
let p2p a b = Graph.Peer_peer (a, b)

let sec1 = Policy.make Policy.Security_first
let sec2 = Policy.make Policy.Security_second
let sec3 = Policy.make Policy.Security_third

let damage_sec2 () =
  print_endline "1. Collateral DAMAGE under security 2nd (Figure 14)";
  print_endline "   A secure ISP (u) prefers a longer secure route; its";
  print_endline "   insecure customer (v) loses the short legitimate path.";
  (* d=0; x=1 insecure middle; u=2 secure ISP; c1=3, c2=4, c3=5 secure
     chain; v=6 victim; w=7 v's other provider; w2=8; m=9 attacker.  The
     baseline is strictly happy for v (3 < 4 hops); securing u lengthens
     its route to 4 hops and v strictly loses. *)
  let g =
    Graph.of_edges ~n:10
      [
        c2p 0 1; c2p 1 2; c2p 0 3; c2p 3 4; c2p 4 5; c2p 5 2;
        c2p 6 2; c2p 6 7; c2p 8 7; c2p 9 8;
      ]
  in
  let s = Deployment.make ~n:10 ~full:[| 0; 2; 3; 4; 5 |] () in
  let col =
    Phenomena.collateral g sec2 ~baseline:(Deployment.empty 10) ~deployment:s
      ~attacker:9 ~dst:0
  in
  Printf.printf "   damages: %d, benefits: %d\n\n" col.Phenomena.damage
    col.Phenomena.benefit;
  (* Theorem 6.1: impossible under security 3rd. *)
  let col3 =
    Phenomena.collateral g sec3 ~baseline:(Deployment.empty 10) ~deployment:s
      ~attacker:9 ~dst:0
  in
  Printf.printf "   same scenario under security 3rd (Theorem 6.1): damages = %d\n\n"
    col3.Phenomena.damage

let benefit_sec3 () =
  print_endline "2. Collateral BENEFIT under security 3rd (Figure 15)";
  print_endline "   A transit AS tied between two equal-looking routes picks";
  print_endline "   the secure one; its insecure customer is rescued.";
  let g = Graph.of_edges ~n:5 [ c2p 0 2; p2p 1 2; p2p 1 3; c2p 4 1 ] in
  let s = Deployment.make ~n:5 ~full:[| 0; 1; 2 |] () in
  let col =
    Phenomena.collateral g sec3 ~baseline:(Deployment.empty 5) ~deployment:s
      ~attacker:3 ~dst:0
  in
  Printf.printf "   benefits: %d, damages: %d\n\n" col.Phenomena.benefit
    col.Phenomena.damage

let damage_sec1 () =
  print_endline "3. Collateral DAMAGE under security 1st (Figure 17)";
  print_endline "   Optus switches to a secure PROVIDER route; the export";
  print_endline "   policy then silences its peer link, and Orange falls to";
  print_endline "   the bogus route.";
  let g =
    Graph.of_edges ~n:8
      [ c2p 7 1; c2p 0 7; p2p 1 2; c2p 1 3; c2p 2 5; c2p 4 5; c2p 6 3; c2p 0 6 ]
  in
  let s = Deployment.make ~n:8 ~full:[| 0; 1; 3; 6 |] () in
  let base = Engine.compute g sec1 (Deployment.empty 8) ~dst:0 ~attacker:(Some 4) in
  let dep = Engine.compute g sec1 s ~dst:0 ~attacker:(Some 4) in
  Printf.printf "   Orange happy before: %b, after: %b\n\n"
    (Outcome.happy_lb base 2) (Outcome.happy_lb dep 2)

let aggregate () =
  print_endline "4. How often does this happen?  (synthetic graph, sampled)";
  let result =
    Topogen.generate ~params:(Topogen.default_params ~n:2000) (Rng.create 5)
  in
  let g = result.Topogen.graph in
  let tiers = Topogen.tiers result in
  let dep = Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let rng = Rng.create 11 in
  let totals = Hashtbl.create 3 in
  List.iter (fun p -> Hashtbl.replace totals p (0, 0)) [ sec1; sec2; sec3 ];
  for _ = 1 to 40 do
    let dst = Rng.int rng (Graph.n g) in
    let attacker = Rng.int rng (Graph.n g) in
    if dst <> attacker then
      List.iter
        (fun policy ->
          let col =
            Phenomena.collateral g policy
              ~baseline:(Deployment.empty (Graph.n g))
              ~deployment:dep ~attacker ~dst
          in
          let b, d = Hashtbl.find totals policy in
          Hashtbl.replace totals policy
            (b + col.Phenomena.benefit, d + col.Phenomena.damage))
        [ sec1; sec2; sec3 ]
  done;
  List.iter
    (fun policy ->
      let b, d = Hashtbl.find totals policy in
      Printf.printf "   %-14s benefits: %5d   damages: %5d\n"
        (Policy.name policy) b d)
    [ sec1; sec2; sec3 ];
  print_endline
    "   (as in Table 3: benefits everywhere, damages never under 3rd)"

let () =
  damage_sec2 ();
  benefit_sec3 ();
  damage_sec1 ();
  aggregate ()
