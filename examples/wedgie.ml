(* The S*BGP Wedgie of Figure 1: when ASes place security differently in
   their decision processes, a link flap can wedge routing in an
   unintended stable state that persists after the link recovers.

   Run with:  dune exec examples/wedgie.exe *)

open Core

(* The topology of Figure 1 (ids in comments are the paper's AS numbers).
   The destination AS3 (0) is a customer of both AS31027 (5) and
   AS8928 (1); the chain 8928 <- 34226 <- 31283 <- 29518 <- 31027 climbs
   customer-to-provider edges. *)
let g =
  Graph.of_edges ~n:6
    [
      Graph.Customer_provider (0, 5);
      Graph.Customer_provider (0, 1);
      Graph.Customer_provider (1, 2);
      Graph.Customer_provider (2, 3);
      Graph.Customer_provider (3, 4);
      Graph.Customer_provider (4, 5);
    ]

let names =
  [| "AS3(dst)"; "AS8928"; "AS34226"; "AS31283"; "AS29518"; "AS31027" |]

let show sim =
  for v = 1 to 5 do
    Printf.printf "    %-10s -> %s\n" names.(v)
      (match Bgpsim.chosen_path sim v with
      | None -> "(no route)"
      | Some p -> String.concat " " (List.map (fun a -> names.(a)) p))
  done

let () =
  (* Everyone but AS8928 runs S*BGP. *)
  let dep = Deployment.make ~n:6 ~full:[| 0; 2; 3; 4; 5 |] () in
  (* AS31283 ranks security 1st; everyone else ranks it 3rd — the
     inconsistent placement of Section 2.3. *)
  let sec1 = Policy.make Policy.Security_first in
  let sec3 = Policy.make Policy.Security_third in
  let policy_of v = if v = 3 then sec1 else sec3 in
  let sim = Bgpsim.create ~policy_of g sec3 dep ~dst:0 () in

  print_endline "Converging to the intended state (via a maintenance window";
  print_endline "on the 34226-31283 link, as an operator would):";
  Bgpsim.set_link sim 2 3 ~up:false;
  ignore (Bgpsim.run sim);
  Bgpsim.set_link sim 2 3 ~up:true;
  ignore (Bgpsim.run sim);
  show sim;

  print_endline "\nThe 31027-AS3 link fails; routing reconverges:";
  Bgpsim.set_link sim 5 0 ~up:false;
  ignore (Bgpsim.run sim);
  show sim;

  print_endline "\nThe link recovers... but BGP does NOT return to the";
  print_endline "intended state (the wedgie):";
  Bgpsim.set_link sim 5 0 ~up:true;
  ignore (Bgpsim.run sim);
  show sim;

  print_endline
    "\nAS31283 is stuck on the insecure customer path even though it ranks\n\
     security first — its secure provider path is no longer announced,\n\
     because AS29518 (ranking security 3rd) now prefers its\n\
     revenue-generating customer route.  Guideline 1 of the paper: all\n\
     ASes should place SecP at the same position."
