(* Quickstart: generate a small Internet-like topology, attack a
   destination, and measure how much a partial S*BGP deployment helps
   under each security model.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let () =
  (* 1. A reproducible synthetic AS-level topology. *)
  let result =
    Topogen.generate ~params:(Topogen.default_params ~n:2000) (Rng.create 7)
  in
  let g = result.Topogen.graph in
  let tiers = Topogen.tiers result in
  print_string (Tiers.summary g tiers);

  (* 2. Pick a victim destination (a content provider) and an attacker (a
     mid-sized ISP). *)
  let dst = result.Topogen.cps.(0) in
  let attacker = (Tiers.members tiers Tiers.T3).(0) in
  Printf.printf "\nvictim: AS %d (content provider), attacker: AS %d (Tier 3)\n"
    dst attacker;

  (* 3. Baseline: only origin authentication (S = {}).  The attacker
     announces the bogus path "m d" via legacy BGP (Section 3.1). *)
  let empty = Deployment.empty (Graph.n g) in
  let policy = Policy.make Policy.Security_second in
  let out = Engine.compute g policy empty ~dst ~attacker:(Some attacker) in
  let c = Metric.happy out in
  Printf.printf "baseline: %d/%d sources definitely keep a legitimate route\n"
    c.Metric.happy_lb c.Metric.sources;

  (* 4. Deploy S*BGP at the Tier 1s, Tier 2s, the content providers and
     all their stubs, and re-measure under the three security models.
     (The victim must deploy too — secure routes only exist toward secure
     destinations.) *)
  let dep =
    Deployment.with_cps g tiers
      (Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:100)
  in
  Printf.printf "deployment: %s\n" (Deployment.describe dep);
  List.iter
    (fun model ->
      let policy = Policy.make model in
      let out = Engine.compute g policy dep ~dst ~attacker:(Some attacker) in
      let c' = Metric.happy out in
      Printf.printf "  %-14s happy sources: %d -> %d (%+d)\n"
        (Policy.model_name model) c.Metric.happy_lb c'.Metric.happy_lb
        (c'.Metric.happy_lb - c.Metric.happy_lb))
    [ Policy.Security_first; Policy.Security_second; Policy.Security_third ];

  (* 5. Why so little?  Count the protocol downgrades (Section 3.2). *)
  let dg =
    Phenomena.downgrades g (Policy.make Policy.Security_third) dep ~attacker
      ~dst
  in
  Printf.printf
    "under security 3rd, %d sources had secure routes and %d were downgraded \
     by the attack\n"
    dg.Phenomena.secure_normal dg.Phenomena.downgraded
