(* A deployment study an operator could run: compare candidate S*BGP
   rollouts on a topology (synthetic here; load your own CAIDA-style
   file with Serial.load) and decide whether the juice is worth the
   squeeze.

   Run with:  dune exec examples/rollout_study.exe *)

open Core

let () =
  let result =
    Topogen.generate ~params:(Topogen.default_params ~n:2500) (Rng.create 3)
  in
  let g = result.Topogen.graph in
  let tiers = Topogen.tiers result in
  let n = Graph.n g in
  Printf.printf "topology: %d ASes\n\n" n;

  (* Candidate rollouts (Section 5). *)
  let scenarios =
    [
      ("Tier 1s + their stubs", Deployment.tier1_and_stubs g tiers);
      ( "Tier 1s + CPs + stubs",
        Deployment.tier1_and_stubs ~with_cps:true g tiers );
      ("13 largest Tier 2s + stubs", Deployment.tier2_only g tiers ~n_t2:13);
      ("all Tier 2s + stubs", Deployment.tier2_only g tiers ~n_t2:100);
      ( "T1s + T2s + stubs",
        Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:100 );
      ("all non-stubs", Deployment.non_stubs g tiers);
      ( "T1+T2+stubs, stubs simplex",
        Deployment.tier1_tier2 ~stub_mode:Deployment.Simplex g tiers ~n_t1:13
          ~n_t2:100 );
    ]
  in

  (* Sampled attacker-destination pairs (non-stub attackers, Section 5). *)
  let rng = Rng.create 99 in
  let attackers =
    let pool = Tiers.non_stubs tiers in
    Array.map (fun i -> pool.(i))
      (Rng.sample_without_replacement rng 25 (Array.length pool))
  in
  let dsts = Rng.sample_without_replacement rng 40 n in
  let pairs = Metric.pairs ~attackers ~dsts () in

  let table =
    Table.create
      ~header:[ "rollout"; "secure ASes"; "sec 1st"; "sec 2nd"; "sec 3rd" ]
  in
  let baseline policy = Metric.h_metric g policy (Deployment.empty n) pairs in
  List.iter
    (fun (label, dep) ->
      let cells =
        List.map
          (fun model ->
            let policy = Policy.make model in
            let b = baseline policy in
            let w = Metric.h_metric g policy dep pairs in
            Printf.sprintf "%+.1f%%" (100. *. (w.Metric.lb -. b.Metric.lb)))
          [ Policy.Security_first; Policy.Security_second; Policy.Security_third ]
      in
      Table.add_row table
        ([ label; string_of_int (Deployment.count_secure dep) ] @ cells))
    scenarios;
  Table.print table;
  print_endline
    "\n(improvement in the happy-source fraction over origin authentication\n\
     alone, lower bounds; compare rows to pick early adopters — as in the\n\
     paper, Tier 2s beat Tier 1s unless security is ranked 1st)"
