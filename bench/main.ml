(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (one experiment per table/figure; see lib/experiments and DESIGN.md's
   experiment index), printing the same rows/series the paper reports —
   first on the base synthetic graph, then the Appendix J robustness
   subset on the IXP-augmented graph.

   Part 2 runs Bechamel micro-benchmarks of the core algorithms.

   Part 3 times the H-metric evaluation sequentially and on the worker
   pool over the same pair sample and checks the results are identical.

   Environment knobs: SBGP_BENCH_N (graph size, default 4000),
   SBGP_SCALE (sample-size multiplier, default 1.0),
   SBGP_SEED (default 42), SBGP_DOMAINS (worker domains),
   SBGP_BENCH_MICRO_N (micro-benchmark graph size, default 1500),
   SBGP_BENCH_QUOTA (seconds of sampling per micro-benchmark, default
   0.8), SBGP_BENCH_PAIRS (pair count for the H-metric comparison,
   default 256).

   With --json on the command line (or SBGP_BENCH_JSON=1), all timings
   are additionally written to BENCH_<label>.json, where <label> comes
   from SBGP_BENCH_LABEL (default "default") — one flat document per
   run, meant for diffing across commits. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let run_experiments () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let scale = env_float "SBGP_SCALE" 1.0 in
  let timings = ref [] in
  let ctx = Core.Experiments.Context.make ~n ~seed ~scale () in
  Printf.printf "#### Experiment harness: %s ####\n\n%!"
    (Core.Experiments.Context.describe ctx);
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      print_string (e.Core.Experiments.Registry.run ctx);
      let dt = Unix.gettimeofday () -. t0 in
      timings := (e.Core.Experiments.Registry.id, dt) :: !timings;
      Printf.printf "[%s: %.1fs]\n\n%!" e.Core.Experiments.Registry.id dt)
    Core.Experiments.Registry.all;
  (* Appendix J: robustness of the headline results on the IXP-augmented
     graph. *)
  let ixp = Core.Experiments.Context.make ~n ~seed ~ixp:true ~scale () in
  Printf.printf "#### Appendix J robustness: %s ####\n\n%!"
    (Core.Experiments.Context.describe ixp);
  List.iter
    (fun id ->
      match Core.Experiments.Registry.find id with
      | Some e ->
          let t0 = Unix.gettimeofday () in
          print_string (e.Core.Experiments.Registry.run ixp);
          let dt = Unix.gettimeofday () -. t0 in
          timings := ("ixp:" ^ id, dt) :: !timings;
          Printf.printf "[%s (ixp): %.1fs]\n\n%!" id dt
      | None -> assert false)
    [ "baseline"; "partitions"; "partitions-tier"; "lpk" ];
  List.rev !timings

(* Micro-benchmarks of the core algorithms. *)

open Bechamel
open Toolkit

let micro_tests () =
  let n_micro = env_int "SBGP_BENCH_MICRO_N" 1500 in
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n:n_micro)
      (Core.Rng.create 1)
  in
  let g = result.Core.Topogen.graph in
  let n = Core.Graph.n g in
  let tiers = Core.Topogen.tiers result in
  let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let empty = Core.Deployment.empty n in
  let dst = result.Core.Topogen.cps.(0) in
  let attacker = (Core.Tiers.non_stubs tiers).(0) in
  let attacker = if attacker = dst then 1 else attacker in
  let policy m = Core.Policy.make m in
  let engine p dep () =
    ignore (Core.Engine.compute g p dep ~dst ~attacker:(Some attacker))
  in
  (* Same computation through a reused workspace: the delta against the
     plain engine rows is the allocation/zeroing cost saved per pair. *)
  let ws = Core.Engine.Workspace.create n in
  let engine_ws p dep () =
    ignore (Core.Engine.compute ~ws g p dep ~dst ~attacker:(Some attacker))
  in
  (* The staged reference algorithm and the dynamic simulator are
     quadratic-ish; bench them on a small graph. *)
  let n_small = min 200 n_micro in
  let small =
    (Core.Topogen.generate
       ~params:(Core.Topogen.default_params ~n:n_small)
       (Core.Rng.create 2))
      .Core.Topogen.graph
  in
  let small_dep = Core.Deployment.empty n_small in
  let sec3 = policy Core.Policy.Security_third in
  let nm label = Printf.sprintf "%s (n=%d)" label n_micro in
  Test.make_grouped ~name:"sbgp"
    [
      Test.make ~name:(nm "engine/sec1")
        (Staged.stage (engine (policy Core.Policy.Security_first) dep));
      Test.make ~name:(nm "engine/sec2")
        (Staged.stage (engine (policy Core.Policy.Security_second) dep));
      Test.make ~name:(nm "engine/sec3")
        (Staged.stage (engine (policy Core.Policy.Security_third) dep));
      Test.make ~name:(nm "engine/sec3+ws")
        (Staged.stage (engine_ws (policy Core.Policy.Security_third) dep));
      Test.make ~name:(nm "engine/sec3-lp2")
        (Staged.stage
           (engine
              (Core.Policy.make ~lp:(Core.Policy.Lp_k 2)
                 Core.Policy.Security_third)
              dep));
      Test.make ~name:(nm "engine/baseline")
        (Staged.stage (engine sec3 empty));
      Test.make ~name:(nm "engine/baseline+ws")
        (Staged.stage (engine_ws sec3 empty));
      Test.make ~name:(nm "partition/sec2")
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count g
                  (policy Core.Policy.Security_second)
                  ~attacker ~dst)));
      Test.make ~name:(nm "partition/sec2+ws")
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count ~ws g
                  (policy Core.Policy.Security_second)
                  ~attacker ~dst)));
      Test.make ~name:(nm "partition/sec1")
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count g
                  (policy Core.Policy.Security_first)
                  ~attacker ~dst)));
      Test.make
        ~name:(Printf.sprintf "staged-reference (n=%d)" n_small)
        (Staged.stage (fun () ->
             ignore
               (Core.Staged.compute small sec3 small_dep ~dst:0
                  ~attacker:(Some 1))));
      Test.make
        ~name:(Printf.sprintf "bgpsim-converge (n=%d)" n_small)
        (Staged.stage (fun () ->
             let sim =
               Core.Bgpsim.create small sec3 small_dep ~dst:0 ~attacker:1 ()
             in
             ignore (Core.Bgpsim.run sim)));
      Test.make ~name:(nm "topogen")
        (Staged.stage (fun () ->
             ignore
               (Core.Topogen.generate
                  ~params:(Core.Topogen.default_params ~n:n_micro)
                  (Core.Rng.create 3))));
    ]

let run_micro () =
  print_endline "#### Bechamel micro-benchmarks ####\n";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let quota = env_float "SBGP_BENCH_QUOTA" 0.8 in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort compare rows in
  let out =
    List.map
      (fun (name, est) ->
        let per_run =
          match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> nan
        in
        Printf.printf "  %-32s %12.1f ns/run  (r2=%s)\n" name per_run
          (match Analyze.OLS.r_square est with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-");
        (name, per_run))
      rows
  in
  print_newline ();
  out

(* Sequential vs pooled H-metric over the same sample, plus the
   determinism check that both give identical bounds. *)
let run_h_metric_comparison () =
  let target_pairs = max 4 (env_int "SBGP_BENCH_PAIRS" 256) in
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n)
      (Core.Rng.create seed)
  in
  let g = result.Core.Topogen.graph in
  let tiers = Core.Topogen.tiers result in
  let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let policy = Core.Policy.make Core.Policy.Security_third in
  let rng = Core.Rng.create (seed + 7) in
  let k = int_of_float (ceil (sqrt (float_of_int target_pairs))) + 1 in
  let pick () =
    let n = Core.Graph.n g in
    Core.Rng.sample_without_replacement rng (min k n) n
  in
  let attackers = pick () and dsts = pick () in
  let pairs = Core.Metric.pairs ~attackers ~dsts () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = time (fun () -> Core.Metric.h_metric g policy dep pairs) in
  let domains = max 2 (Core.Parallel.default_domains ()) in
  let pool = Core.Parallel.Pool.create ~domains () in
  let par, pool_s =
    Fun.protect
      ~finally:(fun () -> Core.Parallel.Pool.shutdown pool)
      (fun () -> time (fun () -> Core.Metric.h_metric ~pool g policy dep pairs))
  in
  let identical = seq = par in
  Printf.printf
    "#### H-metric: %d pairs, sequential %.3fs vs pool(%d domains) %.3fs \
     (x%.2f), identical=%b ####\n\n\
     %!"
    (Array.length pairs) seq_s domains pool_s (seq_s /. pool_s) identical;
  if not identical then failwith "h_metric: pool result differs from sequential";
  [
    ("pairs", float_of_int (Array.length pairs));
    ("domains", float_of_int domains);
    ("seq_s", seq_s);
    ("pool_s", pool_s);
    ("speedup", seq_s /. pool_s);
    ("identical", if identical then 1. else 0.);
  ]

(* Minimal JSON emission — no dependencies, flat string/number maps. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v)
         fields)
  ^ "}"

let write_json ~label ~experiments ~micro ~h_metric ~total_s =
  let num_map kvs = json_obj (List.map (fun (k, v) -> (k, json_float v)) kvs) in
  let doc =
    json_obj
      [
        ("label", Printf.sprintf "\"%s\"" (json_escape label));
        ("n", string_of_int (env_int "SBGP_BENCH_N" 4000));
        ("scale", json_float (env_float "SBGP_SCALE" 1.0));
        ("seed", string_of_int (env_int "SBGP_SEED" 42));
        ("domains", string_of_int (Core.Parallel.default_domains ()));
        ("experiments_s", num_map experiments);
        ("micro_ns_per_run", num_map micro);
        ("h_metric", num_map h_metric);
        ("total_s", json_float total_s);
      ]
  in
  let path = Printf.sprintf "BENCH_%s.json" label in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc doc;
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" path

let () =
  let json =
    Array.exists (( = ) "--json") Sys.argv
    ||
    match Sys.getenv_opt "SBGP_BENCH_JSON" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let t0 = Unix.gettimeofday () in
  let experiments = run_experiments () in
  let micro = run_micro () in
  let h_metric = run_h_metric_comparison () in
  let total_s = Unix.gettimeofday () -. t0 in
  if json then begin
    let label =
      match Sys.getenv_opt "SBGP_BENCH_LABEL" with
      | Some l when l <> "" -> l
      | _ -> "default"
    in
    write_json ~label ~experiments ~micro ~h_metric ~total_s
  end;
  Printf.printf "total bench time: %.1fs\n" total_s
