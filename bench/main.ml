(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (one experiment per table/figure; see lib/experiments and DESIGN.md's
   experiment index), printing the same rows/series the paper reports —
   first on the base synthetic graph, then the Appendix J robustness
   subset on the IXP-augmented graph.

   Part 2 runs Bechamel micro-benchmarks of the core algorithms.

   Environment knobs: SBGP_BENCH_N (graph size, default 4000),
   SBGP_SCALE (sample-size multiplier, default 1.0),
   SBGP_SEED (default 42). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let run_experiments () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let scale = env_float "SBGP_SCALE" 1.0 in
  let ctx = Core.Experiments.Context.make ~n ~seed ~scale () in
  Printf.printf "#### Experiment harness: %s ####\n\n%!"
    (Core.Experiments.Context.describe ctx);
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      print_string (e.Core.Experiments.Registry.run ctx);
      Printf.printf "[%s: %.1fs]\n\n%!" e.Core.Experiments.Registry.id
        (Unix.gettimeofday () -. t0))
    Core.Experiments.Registry.all;
  (* Appendix J: robustness of the headline results on the IXP-augmented
     graph. *)
  let ixp = Core.Experiments.Context.make ~n ~seed ~ixp:true ~scale () in
  Printf.printf "#### Appendix J robustness: %s ####\n\n%!"
    (Core.Experiments.Context.describe ixp);
  List.iter
    (fun id ->
      match Core.Experiments.Registry.find id with
      | Some e ->
          let t0 = Unix.gettimeofday () in
          print_string (e.Core.Experiments.Registry.run ixp);
          Printf.printf "[%s (ixp): %.1fs]\n\n%!" id
            (Unix.gettimeofday () -. t0)
      | None -> assert false)
    [ "baseline"; "partitions"; "partitions-tier"; "lpk" ]

(* Micro-benchmarks of the core algorithms. *)

open Bechamel
open Toolkit

let micro_tests () =
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n:1500)
      (Core.Rng.create 1)
  in
  let g = result.Core.Topogen.graph in
  let n = Core.Graph.n g in
  let tiers = Core.Topogen.tiers result in
  let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let empty = Core.Deployment.empty n in
  let dst = result.Core.Topogen.cps.(0) in
  let attacker = (Core.Tiers.non_stubs tiers).(0) in
  let attacker = if attacker = dst then 1 else attacker in
  let policy m = Core.Policy.make m in
  let engine p dep () =
    ignore (Core.Engine.compute g p dep ~dst ~attacker:(Some attacker))
  in
  (* The staged reference algorithm and the dynamic simulator are
     quadratic-ish; bench them on a small graph. *)
  let small =
    (Core.Topogen.generate
       ~params:(Core.Topogen.default_params ~n:200)
       (Core.Rng.create 2))
      .Core.Topogen.graph
  in
  let small_dep = Core.Deployment.empty 200 in
  let sec3 = policy Core.Policy.Security_third in
  Test.make_grouped ~name:"sbgp"
    [
      Test.make ~name:"engine/sec1 (n=1500)"
        (Staged.stage (engine (policy Core.Policy.Security_first) dep));
      Test.make ~name:"engine/sec2 (n=1500)"
        (Staged.stage (engine (policy Core.Policy.Security_second) dep));
      Test.make ~name:"engine/sec3 (n=1500)"
        (Staged.stage (engine (policy Core.Policy.Security_third) dep));
      Test.make ~name:"engine/sec3-lp2 (n=1500)"
        (Staged.stage
           (engine
              (Core.Policy.make ~lp:(Core.Policy.Lp_k 2)
                 Core.Policy.Security_third)
              dep));
      Test.make ~name:"engine/baseline (n=1500)"
        (Staged.stage (engine sec3 empty));
      Test.make ~name:"partition/sec2 (n=1500)"
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count g
                  (policy Core.Policy.Security_second)
                  ~attacker ~dst)));
      Test.make ~name:"partition/sec1 (n=1500)"
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count g
                  (policy Core.Policy.Security_first)
                  ~attacker ~dst)));
      Test.make ~name:"staged-reference (n=200)"
        (Staged.stage (fun () ->
             ignore
               (Core.Staged.compute small sec3 small_dep ~dst:0
                  ~attacker:(Some 1))));
      Test.make ~name:"bgpsim-converge (n=200)"
        (Staged.stage (fun () ->
             let sim =
               Core.Bgpsim.create small sec3 small_dep ~dst:0 ~attacker:1 ()
             in
             ignore (Core.Bgpsim.run sim)));
      Test.make ~name:"topogen (n=1500)"
        (Staged.stage (fun () ->
             ignore
               (Core.Topogen.generate
                  ~params:(Core.Topogen.default_params ~n:1500)
                  (Core.Rng.create 3))));
    ]

let run_micro () =
  print_endline "#### Bechamel micro-benchmarks ####\n";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.8) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      let per_run =
        match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> nan
      in
      Printf.printf "  %-32s %12.1f ns/run  (r2=%s)\n" name per_run
        (match Analyze.OLS.r_square est with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"))
    (List.sort compare rows);
  print_newline ()

let () =
  let t0 = Unix.gettimeofday () in
  run_experiments ();
  run_micro ();
  Printf.printf "total bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
