(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (one experiment per table/figure; see lib/experiments and DESIGN.md's
   experiment index), printing the same rows/series the paper reports —
   first on the base synthetic graph, then the Appendix J robustness
   subset on the IXP-augmented graph.

   Part 2 runs Bechamel micro-benchmarks of the core algorithms.

   Part 3 times the H-metric evaluation sequentially and on the worker
   pool over the same pair sample and checks the results are identical.

   Environment knobs: SBGP_BENCH_N (graph size, default 4000),
   SBGP_SCALE (sample-size multiplier, default 1.0),
   SBGP_SEED (default 42), SBGP_DOMAINS (worker domains),
   SBGP_BENCH_MICRO_N (micro-benchmark graph size, default 1500),
   SBGP_BENCH_QUOTA (seconds of sampling per micro-benchmark, default
   0.8), SBGP_BENCH_PAIRS (pair count for the H-metric comparison,
   default 256).

   Part 4 times the full rollout-experiment workload (Figures 7(a),
   7(b), 8, 11 and the non-stub deployment, three security models each)
   from scratch — one full H-metric evaluation per policy, step and
   variant, as the experiment used to run — against the incremental
   machinery (dirty-cone evaluators, the shared normalized cache, clean
   per-destination carries) and checks both are bit-identical.

   Part 5 is the per-pair kernel microbenchmark: the packed CSR engine
   against the preserved pre-change kernel (Routing.Reference) on the
   same (destination, attacker) pairs — an identity gate first, then
   pairs/second and minor-heap words per pair for both sides.

   Part 6 is the destination-major batched kernel benchmark: whole
   attacker words (up to 63 lanes) per destination solve through
   Routing.Batch, against the scalar packed engine sweeping the same
   lanes one pair at a time — an analyze_batch identity gate first
   (timed separately as gate_s, outside the measured window), then
   pairs/second and minor-heap words per pair for both sides.

   Part 7 is the Max-k optimizer benchmark: the CELF lazy greedy
   (lib/optimize, DESIGN.md §14) against the naive full-re-eval greedy
   on one seeded instance — the Check.Optimize identity gate first
   (CELF must emit the bit-identical pick sequence), then
   seconds-per-greedy-step and engine-evaluations-per-step for both
   sides.

   Part 8 is the topology layer (PR 9): binary snapshot load against
   Topogen regeneration (with a CSR bit-identity gate), then a
   link-flip delta replay through Metric.Replay against from-scratch
   re-evaluation at every step (bit-identity gated), reporting wall
   time and engine-evaluation counts for both sides.

   Environment knobs (additional): SBGP_BENCH_ONLY — comma-separated
   subset of the parts "experiments", "micro", "h_metric", "rollout",
   "kernel", "batch", "optimize", "topology" to run (default: all);
   SBGP_BENCH_KERNEL_PAIRS (pair count for the kernel part, default 48)
   and SBGP_BENCH_KERNEL_REPS (alternating measurement rounds per side,
   default 3); SBGP_BENCH_BATCH_DSTS (destination solves for the batch
   part, default 6) and SBGP_BENCH_BATCH_REPS (rounds per side,
   default 3); SBGP_BENCH_OPT_CANDS (candidate-set size for the
   optimizer part, default 48) and SBGP_BENCH_OPT_K (picks requested,
   default 6); SBGP_BENCH_TOPO_DSTS / SBGP_BENCH_TOPO_STEPS /
   SBGP_BENCH_TOPO_FLIPS (destination words, delta steps, link flaps per
   step for the topology part; defaults 6 / 10 / 3) and
   SBGP_BENCH_LOAD_REPS (snapshot load repetitions, default 5).

   With --json on the command line (or SBGP_BENCH_JSON=1), all timings
   are additionally written to BENCH_<label>.json, where <label> comes
   from SBGP_BENCH_LABEL (default "default") — one flat document per
   run, meant for diffing across commits; only the parts that ran are
   present. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let part name =
  match Sys.getenv_opt "SBGP_BENCH_ONLY" with
  | None | Some "" -> true
  | Some s ->
      List.exists
        (fun p -> String.equal (String.trim p) name)
        (String.split_on_char ',' s)

let run_experiments () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let scale = env_float "SBGP_SCALE" 1.0 in
  let timings = ref [] in
  let ctx = Core.Experiments.Context.make ~n ~seed ~scale () in
  Printf.printf "#### Experiment harness: %s ####\n\n%!"
    (Core.Experiments.Context.describe ctx);
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      print_string (e.Core.Experiments.Registry.run ctx);
      let dt = Unix.gettimeofday () -. t0 in
      timings := (e.Core.Experiments.Registry.id, dt) :: !timings;
      Printf.printf "[%s: %.1fs]\n\n%!" e.Core.Experiments.Registry.id dt)
    Core.Experiments.Registry.all;
  (* Appendix J: robustness of the headline results on the IXP-augmented
     graph. *)
  let ixp = Core.Experiments.Context.make ~n ~seed ~ixp:true ~scale () in
  Printf.printf "#### Appendix J robustness: %s ####\n\n%!"
    (Core.Experiments.Context.describe ixp);
  List.iter
    (fun id ->
      match Core.Experiments.Registry.find id with
      | Some e ->
          let t0 = Unix.gettimeofday () in
          print_string (e.Core.Experiments.Registry.run ixp);
          let dt = Unix.gettimeofday () -. t0 in
          timings := ("ixp:" ^ id, dt) :: !timings;
          Printf.printf "[%s (ixp): %.1fs]\n\n%!" id dt
      | None -> assert false)
    [ "baseline"; "partitions"; "partitions-tier"; "lpk" ];
  List.rev !timings

(* Micro-benchmarks of the core algorithms. *)

open Bechamel
open Toolkit

let micro_tests () =
  let n_micro = env_int "SBGP_BENCH_MICRO_N" 1500 in
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n:n_micro)
      (Core.Rng.create 1)
  in
  let g = result.Core.Topogen.graph in
  let n = Core.Graph.n g in
  let tiers = Core.Topogen.tiers result in
  let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let empty = Core.Deployment.empty n in
  let dst = result.Core.Topogen.cps.(0) in
  let attacker = (Core.Tiers.non_stubs tiers).(0) in
  let attacker = if attacker = dst then 1 else attacker in
  let policy m = Core.Policy.make m in
  let engine p dep () =
    ignore (Core.Engine.compute g p dep ~dst ~attacker:(Some attacker))
  in
  (* Same computation through a reused workspace: the delta against the
     plain engine rows is the allocation/zeroing cost saved per pair. *)
  let ws = Core.Engine.Workspace.create n in
  let engine_ws p dep () =
    ignore (Core.Engine.compute ~ws g p dep ~dst ~attacker:(Some attacker))
  in
  (* The staged reference algorithm and the dynamic simulator are
     quadratic-ish; bench them on a small graph. *)
  let n_small = min 200 n_micro in
  let small =
    (Core.Topogen.generate
       ~params:(Core.Topogen.default_params ~n:n_small)
       (Core.Rng.create 2))
      .Core.Topogen.graph
  in
  let small_dep = Core.Deployment.empty n_small in
  let sec3 = policy Core.Policy.Security_third in
  let nm label = Printf.sprintf "%s (n=%d)" label n_micro in
  Test.make_grouped ~name:"sbgp"
    [
      Test.make ~name:(nm "engine/sec1")
        (Staged.stage (engine (policy Core.Policy.Security_first) dep));
      Test.make ~name:(nm "engine/sec2")
        (Staged.stage (engine (policy Core.Policy.Security_second) dep));
      Test.make ~name:(nm "engine/sec3")
        (Staged.stage (engine (policy Core.Policy.Security_third) dep));
      Test.make ~name:(nm "engine/sec3+ws")
        (Staged.stage (engine_ws (policy Core.Policy.Security_third) dep));
      Test.make ~name:(nm "engine/sec3-lp2")
        (Staged.stage
           (engine
              (Core.Policy.make ~lp:(Core.Policy.Lp_k 2)
                 Core.Policy.Security_third)
              dep));
      Test.make ~name:(nm "engine/baseline")
        (Staged.stage (engine sec3 empty));
      Test.make ~name:(nm "engine/baseline+ws")
        (Staged.stage (engine_ws sec3 empty));
      Test.make ~name:(nm "partition/sec2")
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count g
                  (policy Core.Policy.Security_second)
                  ~attacker ~dst)));
      Test.make ~name:(nm "partition/sec2+ws")
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count ~ws g
                  (policy Core.Policy.Security_second)
                  ~attacker ~dst)));
      Test.make ~name:(nm "partition/sec1")
        (Staged.stage (fun () ->
             ignore
               (Core.Partition.count g
                  (policy Core.Policy.Security_first)
                  ~attacker ~dst)));
      Test.make
        ~name:(Printf.sprintf "staged-reference (n=%d)" n_small)
        (Staged.stage (fun () ->
             ignore
               (Core.Staged.compute small sec3 small_dep ~dst:0
                  ~attacker:(Some 1))));
      Test.make
        ~name:(Printf.sprintf "bgpsim-converge (n=%d)" n_small)
        (Staged.stage (fun () ->
             let sim =
               Core.Bgpsim.create small sec3 small_dep ~dst:0 ~attacker:1 ()
             in
             ignore (Core.Bgpsim.run sim)));
      Test.make ~name:(nm "topogen")
        (Staged.stage (fun () ->
             ignore
               (Core.Topogen.generate
                  ~params:(Core.Topogen.default_params ~n:n_micro)
                  (Core.Rng.create 3))));
    ]

let run_micro () =
  print_endline "#### Bechamel micro-benchmarks ####\n";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let quota = env_float "SBGP_BENCH_QUOTA" 0.8 in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort compare rows in
  let out =
    List.map
      (fun (name, est) ->
        let per_run =
          match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> nan
        in
        Printf.printf "  %-32s %12.1f ns/run  (r2=%s)\n" name per_run
          (match Analyze.OLS.r_square est with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-");
        (name, per_run))
      rows
  in
  print_newline ();
  out

(* Sequential vs pooled H-metric over the same sample, plus the
   determinism check that both give identical bounds. *)
let run_h_metric_comparison () =
  let target_pairs = max 4 (env_int "SBGP_BENCH_PAIRS" 256) in
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n)
      (Core.Rng.create seed)
  in
  let g = result.Core.Topogen.graph in
  let tiers = Core.Topogen.tiers result in
  let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let policy = Core.Policy.make Core.Policy.Security_third in
  let rng = Core.Rng.create (seed + 7) in
  let k = int_of_float (ceil (sqrt (float_of_int target_pairs))) + 1 in
  let pick () =
    let n = Core.Graph.n g in
    Core.Rng.sample_without_replacement rng (min k n) n
  in
  let attackers = pick () and dsts = pick () in
  let pairs = Core.Metric.pairs ~attackers ~dsts () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = time (fun () -> Core.Metric.h_metric g policy dep pairs) in
  let domains = max 2 (Core.Parallel.default_domains ()) in
  let pool = Core.Parallel.Pool.create ~domains () in
  let par, pool_s =
    Fun.protect
      ~finally:(fun () -> Core.Parallel.Pool.shutdown pool)
      (fun () -> time (fun () -> Core.Metric.h_metric ~pool g policy dep pairs))
  in
  let identical = seq = par in
  Printf.printf
    "#### H-metric: %d pairs, sequential %.3fs vs pool(%d domains) %.3fs \
     (x%.2f), identical=%b ####\n\n\
     %!"
    (Array.length pairs) seq_s domains pool_s (seq_s /. pool_s) identical;
  if not identical then failwith "h_metric: pool result differs from sequential";
  [
    ("pairs", float_of_int (Array.length pairs));
    ("domains", float_of_int domains);
    ("seq_s", seq_s);
    ("pool_s", pool_s);
    ("speedup", seq_s /. pool_s);
    ("identical", if identical then 1. else 0.);
  ]

(* The Section-5.2 rollout-family workload — the Figure 7(a) Tier 1+2
   chain (with its simplex-stub "error bar" variant and the Figure 7(b)
   per-secure-destination columns), the Figure 8 CP chain, the Figure 11
   Tier-2-only chain, the Section 5.2.4 non-stub deployment, and the
   per-destination experiment's Figure 9/10/12 scenarios, each under all
   three security models — evaluated the way the experiments used to (a
   full H-metric pass per policy, step and variant, fresh
   empty-deployment baselines per variant, per-destination columns and
   H(S) means recomputed from scratch), and then through the incremental
   machinery (dirty-cone evaluators, the shared normalized cache, clean
   per-destination carries, and cross-experiment cache reuse via the
   family-shared samples).  Both sides share the same seeded samples and
   must agree bit-for-bit on every reported number; the interesting
   figure is the wall-clock ratio. *)
let run_rollout_bench () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let scale = env_float "SBGP_SCALE" 1.0 in
  let ctx = Core.Experiments.Context.make ~n ~seed ~scale () in
  let g = ctx.Core.Experiments.Context.graph in
  let tiers = ctx.Core.Experiments.Context.tiers in
  let scaled = Core.Experiments.Context.scaled ctx in
  let attackers = Core.Experiments.Util.rollout_attackers ctx ~k:30 in
  let dsts_all =
    Core.Experiments.Context.sample ctx "rollout-dst"
      ctx.Core.Experiments.Context.all (scaled 45)
  in
  let pairs_all = Core.Metric.pairs ~attackers ~dsts:dsts_all () in
  let pairs_cps =
    Core.Metric.pairs ~attackers ~dsts:ctx.Core.Experiments.Context.cps ()
  in
  let t1t2 ?stub_mode ~with_cps (x, y) =
    let d = Core.Deployment.tier1_tier2 ?stub_mode g tiers ~n_t1:x ~n_t2:y in
    if with_cps then Core.Deployment.with_cps g tiers d else d
  in
  let sd_sample dep = Core.Experiments.Util.secure_dsts ctx dep ~k:50 in
  let step lbl ?simplex dep = (lbl, dep, simplex, sd_sample dep) in
  let t1t2_points = [ (13, 13); (13, 37); (13, 100) ] in
  let variants =
    [
      ( "fig7a",
        pairs_all,
        List.map
          (fun (x, y) ->
            step
              (Printf.sprintf "T1=%d,T2=%d" x y)
              ~simplex:
                (t1t2 ~stub_mode:Core.Deployment.Simplex ~with_cps:false (x, y))
              (t1t2 ~with_cps:false (x, y)))
          t1t2_points );
      ( "fig8",
        pairs_cps,
        List.map
          (fun (x, y) ->
            step (Printf.sprintf "T1=%d,T2=%d,CP" x y) (t1t2 ~with_cps:true (x, y)))
          t1t2_points );
      ( "fig11",
        pairs_all,
        List.map
          (fun y ->
            step
              (Printf.sprintf "T2=%d" y)
              (Core.Deployment.tier2_only g tiers ~n_t2:y))
          [ 13; 26; 50; 100 ] );
      ( "nonstubs",
        pairs_all,
        [ step "non-stubs" (Core.Deployment.non_stubs g tiers) ] );
    ]
  in
  (* The per-destination experiment (Figures 9, 10, 12) rides along: its
     scenarios are rollout endpoints — Figure 9 is the Figure 7(a)
     chain's last step — and the family-shared samples (Util) make its
     pair sets supersets of the rollout's per-destination columns, so on
     the incremental side much of its work is served by the cache the
     rollout variants just filled. *)
  let pd_attackers = Core.Experiments.Util.rollout_attackers ctx ~k:20 in
  let pd_scenarios =
    List.map
      (fun (tag, dep) ->
        (tag, dep, Core.Experiments.Util.secure_dsts ctx dep ~k:120))
      [
        ("fig9", t1t2 ~with_cps:false (13, 100));
        ("fig10", Core.Deployment.tier2_only g tiers ~n_t2:100);
        ("fig12", Core.Deployment.non_stubs g tiers);
      ]
  in
  let empty = Core.Deployment.empty (Core.Graph.n g) in
  let policies = Core.Experiments.Context.policies in
  let pool = Core.Experiments.Context.pool ctx in
  let pname = Core.Policy.name in
  let per_dst_avg deltas =
    let avg f = Core.Stats.mean (Array.map (fun (_, b) -> f b) deltas) in
    {
      Core.Metric.lb = avg (fun b -> b.Core.Metric.lb);
      ub = avg (fun b -> b.Core.Metric.ub);
    }
  in
  let mean_bounds (bs : Core.Metric.bounds array) =
    {
      Core.Metric.lb =
        Core.Stats.mean (Array.map (fun b -> b.Core.Metric.lb) bs);
      ub = Core.Stats.mean (Array.map (fun b -> b.Core.Metric.ub) bs);
    }
  in
  (* The per-destination experiment's work for one scenario and policy:
     the Figure 9/10/12 delta column plus the true-protection H(S) mean
     (which the old code recomputed even though the delta pass had just
     evaluated the identical pairs). *)
  let pd_rows ?cache (tag, dep, pd_dsts) policy =
    let row = Printf.sprintf "pd/%s/%s" tag (pname policy) in
    let deltas =
      Core.Experiments.Util.per_destination_changes ~pool ?cache g policy dep
        ~attackers:pd_attackers ~dsts:pd_dsts
    in
    let hs =
      Core.Parallel.map ~pool
        (fun dst ->
          Core.Metric.h_metric_per_dst ?cache g policy dep
            ~attackers:pd_attackers ~dst)
        pd_dsts
    in
    [ (row ^ "/dh", per_dst_avg deltas); (row ^ "/h", mean_bounds hs) ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  (* Engine evaluations the scratch strategy performs, counted exactly. *)
  let cross atts ds =
    Array.fold_left
      (fun acc d ->
        acc
        + Array.fold_left (fun a m -> if m <> d then a + 1 else a) 0 atts)
      0 ds
  in
  let scratch_evals =
    List.fold_left
      (fun acc (_, pairs, steps) ->
        let full_passes =
          List.fold_left
            (fun a (_, _, simplex, _) ->
              a + 1 + match simplex with Some _ -> 1 | None -> 0)
            1 (* the per-variant empty baseline *) steps
        in
        let perdst =
          List.fold_left
            (fun a (_, _, _, sd) -> a + (2 * cross attackers sd))
            0 steps
        in
        acc + (3 * ((full_passes * Array.length pairs) + perdst)))
      0 variants
  in
  (* Per-destination experiment, from scratch: per scenario and policy,
     the delta pass evaluates every (m, d) pair at S and at {} (2x) and
     the H(S) mean re-evaluates the deployment side again (1x). *)
  let scratch_evals =
    scratch_evals
    + List.fold_left
        (fun acc (_, _, pd_dsts) -> acc + (3 * 3 * cross pd_attackers pd_dsts))
        0 pd_scenarios
  in
  (* Both sides emit the same labeled values in the same order; the
     comparison below is on raw floats, not formatted cells. *)
  let scratch, scratch_s =
    time (fun () ->
        (* Bind the rollout part first: [a @ b] evaluates [b] before [a],
           and the incremental side depends on the rollout running first
           to fill the cache — keep the scratch side's order identical. *)
        let rollout =
          List.concat_map
            (fun (tag, pairs, steps) ->
            List.concat_map
              (fun policy ->
                let h dep = Core.Metric.h_metric ~pool g policy dep pairs in
                let baseline = h empty in
                (Printf.sprintf "%s/baseline/%s" tag (pname policy), baseline)
                :: List.concat_map
                     (fun (lbl, dep, simplex, sd) ->
                       let row = Printf.sprintf "%s/%s/%s" tag lbl (pname policy) in
                       ((row ^ "/h", h dep)
                       ::
                       (match simplex with
                       | Some sdep -> [ (row ^ "/simplex", h sdep) ]
                       | None -> []))
                       @
                       if Array.length sd = 0 then []
                       else
                         [
                           ( row ^ "/perdst",
                             per_dst_avg
                               (Core.Experiments.Util.per_destination_changes
                                  ~pool g policy dep ~attackers ~dsts:sd) );
                         ])
                     steps)
              policies)
            variants
        in
        let perdst =
          List.concat_map
            (fun sc ->
              List.concat_map (fun policy -> pd_rows sc policy) policies)
            pd_scenarios
        in
        rollout @ perdst)
  in
  let cache = Core.Metric.Cache.create () in
  let carried_perdst = ref 0 in
  let ev_stats = ref [] in
  let inc, inc_s =
    time (fun () ->
        let rollout =
          List.concat_map
            (fun (tag, pairs, steps) ->
            let lanes =
              List.map
                (fun policy ->
                  let base_ev =
                    Core.Metric.Evaluator.create ~pool ~cache g policy pairs
                  in
                  let baseline = Core.Metric.Evaluator.eval base_ev empty in
                  let simplex_ev =
                    lazy
                      (let ev =
                         Core.Metric.Evaluator.create ~pool ~cache g policy
                           pairs
                       in
                       ignore (Core.Metric.Evaluator.eval ev empty);
                       ev)
                  in
                  (policy, base_ev, simplex_ev, baseline))
                policies
            in
            let sd_prev = ref None in
            let rows =
              List.concat_map
                (fun (lbl, dep, simplex, sd) ->
                  (match !sd_prev with
                  | Some (old_dep, old_dsts) when Array.length sd > 0 ->
                      let keep = Hashtbl.create 64 in
                      Array.iter (fun d -> Hashtbl.replace keep d ()) old_dsts;
                      let retained =
                        Array.to_list sd
                        |> List.filter (Hashtbl.mem keep)
                        |> Array.of_list
                      in
                      if Array.length retained > 0 then begin
                        let cone =
                          Core.Incremental.compute g ~old_dep ~new_dep:dep
                            ~dsts:retained
                        in
                        List.iter
                          (fun (policy, _, _, _) ->
                            carried_perdst :=
                              !carried_perdst
                              + Core.Metric.Cache.carry cache policy g cone
                                  ~old_dep ~new_dep:dep ~attackers
                                  ~dsts:retained)
                          lanes
                      end
                  | _ -> ());
                  if Array.length sd > 0 then sd_prev := Some (dep, sd);
                  List.concat_map
                    (fun (policy, base_ev, simplex_ev, _) ->
                      let row = Printf.sprintf "%s/%s/%s" tag lbl (pname policy) in
                      ((row ^ "/h", Core.Metric.Evaluator.eval base_ev dep)
                      ::
                      (match simplex with
                      | Some sdep ->
                          [
                            ( row ^ "/simplex",
                              Core.Metric.Evaluator.eval
                                (Lazy.force simplex_ev) sdep );
                          ]
                      | None -> []))
                      @
                      if Array.length sd = 0 then []
                      else
                        [
                          ( row ^ "/perdst",
                            per_dst_avg
                              (Core.Experiments.Util.per_destination_changes
                                 ~pool ~cache g policy dep ~attackers ~dsts:sd)
                          );
                        ])
                    lanes)
                steps
            in
            let baselines =
              List.map
                (fun (policy, base_ev, simplex_ev, baseline) ->
                  ev_stats := Core.Metric.Evaluator.stats base_ev :: !ev_stats;
                  if Lazy.is_val simplex_ev then
                    ev_stats :=
                      Core.Metric.Evaluator.stats (Lazy.force simplex_ev)
                      :: !ev_stats;
                  (Printf.sprintf "%s/baseline/%s" tag (pname policy), baseline))
                lanes
            in
            baselines @ rows)
            variants
        in
        (* After the rollouts: the shared cache now holds the rollout
           family's per-pair bounds, so these passes are mostly hits. *)
        let perdst =
          List.concat_map
            (fun sc ->
              List.concat_map (fun policy -> pd_rows ~cache sc policy) policies)
            pd_scenarios
        in
        rollout @ perdst)
  in
  let identical =
    List.length scratch = List.length inc
    && List.for_all2
         (fun (l0, (b0 : Core.Metric.bounds)) (l1, b1) ->
           String.equal l0 l1 && b0 = b1)
         (List.sort compare scratch) (List.sort compare inc)
  in
  if not identical then
    failwith "rollout bench: incremental result differs from scratch";
  let tot f = List.fold_left (fun acc s -> acc + f s) 0 !ev_stats in
  let computed = tot (fun s -> s.Core.Metric.Evaluator.computed) in
  let carried = tot (fun s -> s.Core.Metric.Evaluator.carried) in
  let cache_hits = tot (fun s -> s.Core.Metric.Evaluator.cache_hits) in
  let thm_skips = tot (fun s -> s.Core.Metric.Evaluator.thm_skips) in
  (* Every engine evaluation on the incremental side is a cache miss
     (evaluator recomputes go through a [find] first, and the
     per-destination passes run through [h_metric ~cache]). *)
  let inc_evals = Core.Metric.Cache.misses cache in
  Printf.printf
    "#### Rollout suite (figs 7a/7b/8/9/10/11/12 + non-stubs): scratch %.3fs \
     (%d engine evals) vs incremental %.3fs (%d engine evals), x%.2f, \
     identical=%b ####\n\
     \     evaluator pairs: %d computed, %d carried, %d cache hits, %d \
     theorem skips; %d per-dst entries carried\n\n\
     %!"
    scratch_s scratch_evals inc_s inc_evals (scratch_s /. inc_s) identical
    computed carried cache_hits thm_skips !carried_perdst;
  [
    ("pairs_all", float_of_int (Array.length pairs_all));
    ("pairs_cps", float_of_int (Array.length pairs_cps));
    ("scratch_s", scratch_s);
    ("scratch_evals", float_of_int scratch_evals);
    ("incremental_s", inc_s);
    ("incremental_evals", float_of_int inc_evals);
    ("speedup", scratch_s /. inc_s);
    ("computed", float_of_int computed);
    ("carried", float_of_int carried);
    ("cache_hits", float_of_int cache_hits);
    ("thm_skips", float_of_int thm_skips);
    ("perdst_carried", float_of_int !carried_perdst);
    ("identical", if identical then 1. else 0.);
  ]

(* Per-pair kernel microbenchmark: packed CSR engine vs the pre-change
   kernel, both through reused workspaces (plus the packed engine with
   fresh buffers, to price the workspace).  The identity gate runs
   first — timing a kernel that diverges would be meaningless — and the
   sides alternate round-robin so drift hits both equally. *)
let run_kernel_bench () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let k = max 2 (env_int "SBGP_BENCH_KERNEL_PAIRS" 48) in
  let reps = max 1 (env_int "SBGP_BENCH_KERNEL_REPS" 3) in
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n)
      (Core.Rng.create seed)
  in
  let g = result.Core.Topogen.graph in
  let nn = Core.Graph.n g in
  let tiers = Core.Topogen.tiers result in
  let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let attackers = Core.Tiers.non_stubs tiers in
  let rng = Core.Rng.create (seed + 11) in
  let pairs =
    Array.init k (fun i ->
        let dst = Core.Rng.int rng nn in
        if i mod 4 = 3 then (dst, None)
        else
          let m = attackers.(Core.Rng.int rng (Array.length attackers)) in
          if m = dst then (dst, None) else (dst, Some m))
  in
  let policies =
    List.map Core.Policy.make Core.Policy.all_models
    @ [ Core.Policy.make ~lp:(Core.Policy.Lp_k 2) Core.Policy.Security_third ]
  in
  (* The gate is timed on its own: its reference solves used to land
     inside the part's wall clock, muddying cross-commit comparisons of
     the measured throughput — gate_s keeps them apart. *)
  let gate_t0 = Unix.gettimeofday () in
  (match Core.Check.Kernel.analyze g policies dep pairs with
  | _, [] -> ()
  | _, d :: _ ->
      failwith
        ("kernel bench: identity gate failed: "
        ^ Core.Check.Diagnostic.to_string d));
  let gate_s = Unix.gettimeofday () -. gate_t0 in
  let tiebreaks = [ Core.Engine.Bounds; Core.Engine.Lowest_next_hop ] in
  let runs_per_round = Array.length pairs * List.length policies * 2 in
  let round f =
    let q0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun policy ->
        Array.iter
          (fun (dst, attacker) ->
            List.iter (fun tiebreak -> f ~tiebreak policy ~dst ~attacker)
              tiebreaks)
          pairs)
      policies;
    let dt = Unix.gettimeofday () -. t0 in
    let q1 = Gc.quick_stat () in
    ( dt,
      q1.Gc.minor_words -. q0.Gc.minor_words,
      q1.Gc.promoted_words -. q0.Gc.promoted_words,
      float_of_int (q1.Gc.major_collections - q0.Gc.major_collections) )
  in
  let ews = Core.Engine.Workspace.create nn in
  let rws = Core.Reference.Workspace.create nn in
  let packed ~tiebreak policy ~dst ~attacker =
    ignore (Core.Engine.compute ~tiebreak ~ws:ews g policy dep ~dst ~attacker)
  in
  let packed_fresh ~tiebreak policy ~dst ~attacker =
    ignore (Core.Engine.compute ~tiebreak g policy dep ~dst ~attacker)
  in
  let reference ~tiebreak policy ~dst ~attacker =
    ignore
      (Core.Reference.compute ~tiebreak ~ws:rws g policy dep ~dst ~attacker)
  in
  (* One untimed warmup round per side (page in the CSR view, size the
     workspaces), then [reps] timed rounds each, interleaved. *)
  ignore (round packed);
  ignore (round packed_fresh);
  ignore (round reference);
  let sides = [| (packed, ref []); (packed_fresh, ref []); (reference, ref []) |] in
  for _ = 1 to reps do
    Array.iter (fun (f, acc) -> acc := round f :: !acc) sides
  done;
  let total acc f = List.fold_left (fun s x -> s +. f x) 0. !acc in
  let stats (_, acc) =
    let s = total acc (fun (t, _, _, _) -> t) in
    let words = total acc (fun (_, w, _, _) -> w) in
    let promoted = total acc (fun (_, _, p, _) -> p) in
    let majors = total acc (fun (_, _, _, m) -> m) in
    let runs = float_of_int (runs_per_round * reps) in
    (runs /. s, words /. runs, promoted /. runs, majors /. runs)
  in
  let eng_rate, eng_words, eng_prom, eng_maj = stats sides.(0) in
  let fresh_rate, fresh_words, fresh_prom, fresh_maj = stats sides.(1) in
  let ref_rate, ref_words, ref_prom, ref_maj = stats sides.(2) in
  let speedup = eng_rate /. ref_rate in
  Printf.printf
    "#### Kernel (n=%d, %d pairs x %d policies x 2 tiebreaks x %d reps) ####\n\
    \     packed+ws   %10.1f pairs/s  %10.0f minor words/pair  %8.1f \
     promoted/pair\n\
    \     packed      %10.1f pairs/s  %10.0f minor words/pair  %8.1f \
     promoted/pair\n\
    \     reference   %10.1f pairs/s  %10.0f minor words/pair  %8.1f \
     promoted/pair\n\
    \     speedup (packed+ws vs reference): x%.2f; identity gate %.3fs \
     (untimed)\n\n\
     %!"
    n k (List.length policies) reps eng_rate eng_words eng_prom fresh_rate
    fresh_words fresh_prom ref_rate ref_words ref_prom speedup gate_s;
  [
    ("pairs", float_of_int (Array.length pairs));
    ("runs", float_of_int (runs_per_round * reps));
    ("engine_pairs_per_s", eng_rate);
    ("engine_fresh_pairs_per_s", fresh_rate);
    ("reference_pairs_per_s", ref_rate);
    ("engine_minor_words_per_pair", eng_words);
    ("engine_fresh_minor_words_per_pair", fresh_words);
    ("reference_minor_words_per_pair", ref_words);
    ("engine_promoted_words_per_pair", eng_prom);
    ("engine_fresh_promoted_words_per_pair", fresh_prom);
    ("reference_promoted_words_per_pair", ref_prom);
    ("engine_major_collections_per_pair", eng_maj);
    ("engine_fresh_major_collections_per_pair", fresh_maj);
    ("reference_major_collections_per_pair", ref_maj);
    ("speedup", speedup);
    ("gate_s", gate_s);
    ("identity_gate", 1.);
  ]

(* Destination-major batched kernel benchmark: whole attacker words (up
   to 63 lanes) per solve through Routing.Batch, against the scalar
   packed engine sweeping the same lanes pair by pair — the
   corrected-harness re-measurement of the BENCH_pr4 baseline row.  The
   analyze_batch identity gate runs first and is timed on its own
   (gate_s), outside the measured window; rounds alternate sides so
   drift hits both equally. *)
let run_batch_bench () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let dsts_k = max 1 (env_int "SBGP_BENCH_BATCH_DSTS" 6) in
  let reps = max 1 (env_int "SBGP_BENCH_BATCH_REPS" 3) in
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n)
      (Core.Rng.create seed)
  in
  let g = result.Core.Topogen.graph in
  let nn = Core.Graph.n g in
  let tiers = Core.Topogen.tiers result in
  let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let pool = Core.Tiers.non_stubs tiers in
  let rng = Core.Rng.create (seed + 13) in
  (* One full attacker word per destination: distinct non-stub
     attackers, the destination itself excluded. *)
  let batches =
    Array.init dsts_k (fun _ ->
        let dst = Core.Rng.int rng nn in
        let idxs =
          Core.Rng.sample_without_replacement rng
            (min (Core.Batch.max_lanes + 1) (Array.length pool))
            (Array.length pool)
        in
        let ms =
          Array.to_list idxs
          |> List.filter_map (fun i ->
                 if pool.(i) = dst then None else Some pool.(i))
          |> Array.of_list
        in
        (dst, Array.sub ms 0 (min Core.Batch.max_lanes (Array.length ms))))
  in
  let lanes_total =
    Array.fold_left (fun a (_, ms) -> a + Array.length ms) 0 batches
  in
  let policies =
    List.map Core.Policy.make Core.Policy.all_models
    @ [ Core.Policy.make ~lp:(Core.Policy.Lp_k 2) Core.Policy.Security_third ]
  in
  let gate_t0 = Unix.gettimeofday () in
  (match Core.Check.Kernel.analyze_batch g policies dep batches with
  | _, [] -> ()
  | _, d :: _ ->
      failwith
        ("batch bench: identity gate failed: "
        ^ Core.Check.Diagnostic.to_string d));
  let gate_s = Unix.gettimeofday () -. gate_t0 in
  let tiebreaks = [ Core.Engine.Bounds; Core.Engine.Lowest_next_hop ] in
  let pairs_per_round = lanes_total * List.length policies * 2 in
  let solves_per_round = Array.length batches * List.length policies * 2 in
  let round f =
    let q0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun policy ->
        Array.iter
          (fun (dst, attackers) ->
            List.iter
              (fun tiebreak -> f ~tiebreak policy ~dst ~attackers)
              tiebreaks)
          batches)
      policies;
    let dt = Unix.gettimeofday () -. t0 in
    let q1 = Gc.quick_stat () in
    ( dt,
      q1.Gc.minor_words -. q0.Gc.minor_words,
      q1.Gc.promoted_words -. q0.Gc.promoted_words,
      float_of_int (q1.Gc.major_collections - q0.Gc.major_collections) )
  in
  let bws = Core.Batch.Workspace.create nn in
  let ews = Core.Engine.Workspace.create nn in
  let batched ~tiebreak policy ~dst ~attackers =
    ignore (Core.Batch.compute ~tiebreak ~ws:bws g policy dep ~dst ~attackers)
  in
  let scalar ~tiebreak policy ~dst ~attackers =
    Array.iter
      (fun m ->
        ignore
          (Core.Engine.compute ~tiebreak ~ws:ews g policy dep ~dst
             ~attacker:(Some m)))
      attackers
  in
  ignore (round batched);
  ignore (round scalar);
  let sides = [| (batched, ref []); (scalar, ref []) |] in
  for _ = 1 to reps do
    Array.iter (fun (f, acc) -> acc := round f :: !acc) sides
  done;
  let total acc f = List.fold_left (fun s x -> s +. f x) 0. !acc in
  let stats (_, acc) =
    let s = total acc (fun (t, _, _, _) -> t) in
    let words = total acc (fun (_, w, _, _) -> w) in
    let promoted = total acc (fun (_, _, p, _) -> p) in
    let majors = total acc (fun (_, _, _, m) -> m) in
    let runs = float_of_int (pairs_per_round * reps) in
    (runs /. s, words /. runs, promoted /. runs, majors /. runs, s)
  in
  let batch_rate, batch_words, batch_prom, batch_maj, batch_s =
    stats sides.(0)
  in
  let eng_rate, eng_words, eng_prom, eng_maj, _ = stats sides.(1) in
  let speedup = batch_rate /. eng_rate in
  let lanes_avg =
    float_of_int lanes_total /. float_of_int (Array.length batches)
  in
  Printf.printf
    "#### Batch kernel (n=%d, %d dsts x %.1f lanes x %d policies x 2 \
     tiebreaks x %d reps) ####\n\
    \     batch       %10.1f pairs/s  %10.0f minor words/pair  %8.1f \
     promoted/pair  (%.1f solves/s)\n\
    \     engine+ws   %10.1f pairs/s  %10.0f minor words/pair  %8.1f \
     promoted/pair\n\
    \     speedup (batch vs engine+ws): x%.2f; identity gate %.3fs \
     (untimed)\n\n\
     %!"
    n (Array.length batches) lanes_avg (List.length policies) reps batch_rate
    batch_words batch_prom
    (float_of_int (solves_per_round * reps) /. batch_s)
    eng_rate eng_words eng_prom speedup gate_s;
  [
    ("dsts", float_of_int (Array.length batches));
    ("attackers_per_solve", lanes_avg);
    ("pairs", float_of_int pairs_per_round);
    ("runs", float_of_int (pairs_per_round * reps));
    ("batch_pairs_per_s", batch_rate);
    ("batch_minor_words_per_pair", batch_words);
    ("batch_promoted_words_per_pair", batch_prom);
    ("batch_major_collections_per_pair", batch_maj);
    ("batch_solves_per_s", float_of_int (solves_per_round * reps) /. batch_s);
    ("engine_pairs_per_s", eng_rate);
    ("engine_minor_words_per_pair", eng_words);
    ("engine_promoted_words_per_pair", eng_prom);
    ("engine_major_collections_per_pair", eng_maj);
    ("speedup", speedup);
    ("gate_s", gate_s);
    ("identity_gate", 1.);
  ]

(* Topology layer benchmark (PR 9).

   Side one: loading a binary snapshot against regenerating the same
   graph with Topogen — the load must be CSR-bit-identical to the
   generated graph (gate) and is expected to be orders of magnitude
   faster (the >=100x acceptance claim at n >= 40000).

   Side two: a link-flap delta replay.  Each step flaps (adds or
   removes) a few peer links between stub ASes — IXP-style edge-peering
   churn, the dominant real-world topology change and the workload a
   CAIDA-style snapshot replay produces — and every other step one flap
   is incident to a sampled destination, so some words genuinely change.
   Metric.Replay re-solves only the destination words its influence
   test marks dirty: a stub<->stub peer link is Ex-blocked in every word
   whose destination and attackers lie elsewhere (stub routes are
   provider routes, never exported to peers), so those words carry; a
   destination-incident flap changes that word's tree and must re-solve.
   The scratch side rebuilds a fresh replay on the stepped graph and
   primes every word.  Both sides' per-pair bounds must be bit-identical
   at every step (gate); the interesting numbers are wall time and
   engine evaluations (lanes solved) per side — the >=5x acceptance
   claim is scratch_evals / replay_evals. *)
let run_topology_bench () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let dsts_k = max 1 (env_int "SBGP_BENCH_TOPO_DSTS" 6) in
  let steps = max 1 (env_int "SBGP_BENCH_TOPO_STEPS" 10) in
  let flips = max 1 (env_int "SBGP_BENCH_TOPO_FLIPS" 3) in
  let load_reps = max 1 (env_int "SBGP_BENCH_LOAD_REPS" 5) in
  let gen () =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n)
      (Core.Rng.create seed)
  in
  let gen_t0 = Unix.gettimeofday () in
  let result = gen () in
  let gen_s = Unix.gettimeofday () -. gen_t0 in
  let g = result.Core.Topogen.graph in
  let nn = Core.Graph.n g in
  (* Snapshot save + repeated loads. *)
  let path = Filename.temp_file "sbgp-bench" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let save_t0 = Unix.gettimeofday () in
      Core.Serial.save_snapshot path g;
      let save_s = Unix.gettimeofday () -. save_t0 in
      let snapshot_bytes = (Unix.stat path).Unix.st_size in
      let ints_equal (x : Core.Graph.ints) (y : Core.Graph.ints) =
        Bigarray.Array1.dim x = Bigarray.Array1.dim y
        &&
        let ok = ref true in
        for i = 0 to Bigarray.Array1.dim x - 1 do
          if x.{i} <> y.{i} then ok := false
        done;
        !ok
      in
      (* Identity gate (untimed): the loaded graph is the generated one,
         bit for bit. *)
      let first = Core.Serial.load_snapshot path in
      let cg = Core.Graph.csr g and cl = Core.Graph.csr first in
      if
        not
          (Core.Graph.n first = nn
          && ints_equal cg.Core.Graph.Csr.xs cl.Core.Graph.Csr.xs
          && ints_equal cg.Core.Graph.Csr.adj cl.Core.Graph.Csr.adj)
      then failwith "topology bench: snapshot identity gate failed";
      let load_t0 = Unix.gettimeofday () in
      for _ = 1 to load_reps do
        ignore (Core.Serial.load_snapshot path)
      done;
      let load_s = (Unix.gettimeofday () -. load_t0) /. float_of_int load_reps in
      let load_speedup = gen_s /. load_s in
      (* Delta replay.  Destinations sampled anywhere, one full word of
         non-stub attackers shared by every destination. *)
      let tiers = Core.Topogen.tiers result in
      let dep = Core.Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
      let rng = Core.Rng.create (seed + 17) in
      let dsts = Core.Rng.sample_without_replacement rng (min dsts_k (nn / 2)) nn in
      let pool = Core.Tiers.non_stubs tiers in
      let attackers =
        Core.Rng.sample_without_replacement rng
          (min (Core.Batch.max_lanes + 1) (Array.length pool))
          (Array.length pool)
        |> Array.map (fun i -> pool.(i))
        |> Array.to_list
        |> List.filter (fun m -> not (Array.mem m dsts))
        |> Array.of_list
      in
      let attackers =
        Array.sub attackers 0 (min Core.Batch.max_lanes (Array.length attackers))
      in
      let pairs = Core.Metric.pairs ~attackers ~dsts () in
      let lanes_total = Array.length pairs in
      let policy = Core.Policy.make Core.Policy.Security_third in
      let rp = Core.Metric.Replay.create g policy dep pairs in
      ignore (Core.Metric.Replay.eval rp);
      let primed = (Core.Metric.Replay.stats rp).Core.Metric.Replay.lanes_solved in
      (* Per-step deltas: flap peer links between stubs (adding when the
         pair is non-adjacent, removing when a peer link exists), plus —
         every other step — one flap incident to a sampled destination.
         Distinct pairs within a step, as Graph.Delta requires. *)
      let stubs =
        Array.of_seq
          (Seq.filter (Core.Graph.is_stub g) (Seq.init nn (fun v -> v)))
      in
      if Array.length stubs < 2 then
        failwith "topology bench: graph has fewer than two stubs";
      let step_delta step g =
        let used = Hashtbl.create 8 in
        let ops = ref [] in
        let flap a b =
          let a, b = (min a b, max a b) in
          if a <> b && not (Hashtbl.mem used (a, b)) then begin
            match Core.Graph.relationship g a b with
            | None ->
                Hashtbl.replace used (a, b) ();
                ops := Core.Graph.Delta.Add (Core.Graph.Peer_peer (a, b)) :: !ops
            | Some (Core.Graph.Peer_peer _ as e) ->
                Hashtbl.replace used (a, b) ();
                ops := Core.Graph.Delta.Remove e :: !ops
            | Some (Core.Graph.Customer_provider _) -> ()
          end
        in
        let pick () = stubs.(Core.Rng.int rng (Array.length stubs)) in
        if step mod 2 = 0 then
          flap dsts.(step / 2 mod Array.length dsts) (pick ());
        let guard = ref (10 * flips) in
        while List.length !ops < flips && !guard > 0 do
          decr guard;
          flap (pick ()) (pick ())
        done;
        if !ops = [] then failwith "topology bench: empty delta step";
        Array.of_list (List.rev !ops)
      in
      let bits_equal a b =
        Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
      in
      let replay_s = ref 0. and scratch_s = ref 0. in
      let scratch_evals = ref 0 in
      for step = 1 to steps do
        let delta = step_delta step (Core.Metric.Replay.graph rp) in
        let t0 = Unix.gettimeofday () in
        ignore (Core.Metric.Replay.step rp delta);
        replay_s := !replay_s +. (Unix.gettimeofday () -. t0);
        (* Scratch side: fresh replay on the stepped graph, full prime. *)
        let g' = Core.Metric.Replay.graph rp in
        let t0 = Unix.gettimeofday () in
        let fresh = Core.Metric.Replay.create g' policy dep pairs in
        ignore (Core.Metric.Replay.eval fresh);
        scratch_s := !scratch_s +. (Unix.gettimeofday () -. t0);
        scratch_evals :=
          !scratch_evals
          + (Core.Metric.Replay.stats fresh).Core.Metric.Replay.lanes_solved;
        (* Identity gate: every pair's bounds bit-identical. *)
        let a = Core.Metric.Replay.values rp in
        let b = Core.Metric.Replay.values fresh in
        Array.iteri
          (fun i p ->
            if
              not
                (bits_equal a.(i).Core.Metric.lb b.(i).Core.Metric.lb
                && bits_equal a.(i).Core.Metric.ub b.(i).Core.Metric.ub)
            then
              failwith
                (Printf.sprintf
                   "topology bench: replay identity gate failed at step %d, \
                    pair (m=%d, d=%d)"
                   step p.Core.Metric.attacker p.Core.Metric.dst))
          pairs
      done;
      let st = Core.Metric.Replay.stats rp in
      let replay_evals = st.Core.Metric.Replay.lanes_solved - primed in
      let eval_ratio =
        float_of_int !scratch_evals /. float_of_int (max 1 replay_evals)
      in
      Printf.printf
        "#### Topology layer (n=%d, %d dsts x %d lanes, %d delta steps x %d \
         flaps) ####\n\
        \     generate    %10.3f s\n\
        \     save        %10.3f s  (%d bytes)\n\
        \     load        %10.5f s  (x%.0f vs generate, %d reps)\n\
        \     replay      %10.3f s  %6d engine evals over %d steps (%d \
         carried)\n\
        \     scratch     %10.3f s  %6d engine evals\n\
        \     eval ratio (scratch/replay): x%.1f; identity gates passed\n\n\
         %!"
        n (Array.length dsts) (Array.length attackers) steps flips gen_s save_s
        snapshot_bytes load_s load_speedup load_reps !replay_s replay_evals
        steps st.Core.Metric.Replay.lanes_carried !scratch_s !scratch_evals
        eval_ratio;
      [
        ("gen_s", gen_s);
        ("save_s", save_s);
        ("snapshot_bytes", float_of_int snapshot_bytes);
        ("load_s", load_s);
        ("load_speedup", load_speedup);
        ("dsts", float_of_int (Array.length dsts));
        ("lanes", float_of_int lanes_total);
        ("delta_steps", float_of_int steps);
        ("replay_s", !replay_s);
        ("replay_evals", float_of_int replay_evals);
        ("lanes_carried", float_of_int st.Core.Metric.Replay.lanes_carried);
        ("scratch_s", !scratch_s);
        ("scratch_evals", float_of_int !scratch_evals);
        ("eval_ratio", eval_ratio);
        ("identity_gate", 1.);
      ])

(* Max-k optimizer benchmark: CELF lazy greedy vs naive full-re-eval
   greedy on one seeded instance.  The naive side re-scores every
   remaining candidate from scratch each round (candidates x pairs
   engine evaluations per step); CELF pays the full candidate sweep only
   on its first round — through the incremental evaluator, so each score
   costs just the candidate's dirty cone — and afterwards touches only
   stale queue tops plus provably-dirty rounds.  The identity gate
   (Check.Optimize.compare_results) makes the comparison meaningful:
   both sides must emit the bit-identical pick sequence and bounds. *)
let run_optimize_bench () =
  let n = env_int "SBGP_BENCH_N" 4000 in
  let seed = env_int "SBGP_SEED" 42 in
  let cands_k = max 2 (env_int "SBGP_BENCH_OPT_CANDS" 48) in
  let k = max 1 (env_int "SBGP_BENCH_OPT_K" 6) in
  let result =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n)
      (Core.Rng.create seed)
  in
  let g = result.Core.Topogen.graph in
  let nn = Core.Graph.n g in
  let tiers = Core.Topogen.tiers result in
  let rng = Core.Rng.create (seed + 17) in
  let dsts = Core.Rng.sample_without_replacement rng (min 6 nn) nn in
  let non_stubs = Core.Tiers.non_stubs tiers in
  let in_dsts v = Array.exists (( = ) v) dsts in
  let attackers =
    Array.to_list
      (Core.Rng.sample_without_replacement rng
         (min 12 (Array.length non_stubs))
         (Array.length non_stubs))
    |> List.filter_map (fun i ->
           if in_dsts non_stubs.(i) then None else Some non_stubs.(i))
    |> Array.of_list
  in
  let attackers = Array.sub attackers 0 (min 8 (Array.length attackers)) in
  (* Candidates: the provider/peer rings around the destinations — the
     only region where a pick can complete a contiguous secure chain and
     move the metric (see lib/experiments/exp_optimize.ml). *)
  let in_attackers v = Array.exists (( = ) v) attackers in
  let ring = Hashtbl.create 64 in
  let add v =
    if not (in_dsts v || in_attackers v) then Hashtbl.replace ring v ()
  in
  Array.iter
    (fun d ->
      Array.iter add (Core.Graph.providers g d);
      Array.iter add (Core.Graph.peers g d))
    dsts;
  let ring1 = Hashtbl.fold (fun v () acc -> v :: acc) ring [] in
  List.iter (fun v -> Array.iter add (Core.Graph.providers g v)) ring1;
  List.iter
    (fun v ->
      Array.iter add (Core.Graph.providers g v);
      Array.iter add (Core.Graph.peers g v))
    (Hashtbl.fold (fun v () acc -> v :: acc) ring []);
  let ring_pool =
    Hashtbl.fold (fun v () acc -> v :: acc) ring []
    |> List.sort compare |> Array.of_list
  in
  let cands_k = min cands_k (Array.length ring_pool) in
  let candidates =
    Array.map
      (fun i -> ring_pool.(i))
      (Core.Rng.sample_without_replacement rng cands_k
         (Array.length ring_pool))
  in
  let pairs = Core.Metric.pairs ~attackers ~dsts () in
  let base = Core.Deployment.make ~n:nn ~full:[||] ~simplex:dsts () in
  let policy = Core.Policy.make Core.Policy.Security_first in
  let pool =
    Core.Parallel.Pool.create ~domains:(max 2 (Core.Parallel.default_domains ())) ()
  in
  Fun.protect
    ~finally:(fun () -> Core.Parallel.Pool.shutdown pool)
    (fun () ->
      (* Gc counters are per-domain: the deltas below cover the main
         domain only (coordination, queue upkeep, result assembly) —
         the pool workers' heaps are not included. *)
      let time f =
        let q0 = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        let x = f () in
        let dt = Unix.gettimeofday () -. t0 in
        let q1 = Gc.quick_stat () in
        ( x,
          dt,
          q1.Gc.promoted_words -. q0.Gc.promoted_words,
          float_of_int (q1.Gc.major_collections - q0.Gc.major_collections) )
      in
      let naive, naive_s, naive_prom, naive_maj =
        time (fun () ->
            Core.Optimize.Max_k.greedy ~pool ~objective:`Lb ~base g policy
              ~pairs ~k ~candidates)
      in
      let cache = Core.Metric.Cache.create () in
      let celf, celf_s, celf_prom, celf_maj =
        time (fun () ->
            Core.Optimize.Max_k.celf ~pool ~cache ~objective:`Lb ~base g
              policy ~pairs ~k ~candidates)
      in
      (match
         Core.Check.Optimize.compare_results ~label:"optimize bench" naive
           celf
       with
      | [] -> ()
      | d :: _ ->
          failwith
            ("optimize bench: identity gate failed: "
            ^ Core.Check.Diagnostic.to_string d));
      let steps = max 1 naive.Core.Optimize.Max_k.achieved in
      let fsteps = float_of_int steps in
      let naive_evals = naive.Core.Optimize.Max_k.engine_evals in
      let celf_evals = celf.Core.Optimize.Max_k.engine_evals in
      let ratio = float_of_int naive_evals /. float_of_int celf_evals in
      Printf.printf
        "#### Max-k optimizer (n=%d, %d candidates, %d pairs, k=%d): naive \
         %.3fs (%.3fs/step, %d evals, %.0f/step) vs CELF %.3fs (%.3fs/step, \
         %d evals, %.0f/step) — x%.1f fewer evals/step, x%.2f wall, \
         identical picks ####\n\n\
         %!"
        n cands_k (Array.length pairs) steps naive_s (naive_s /. fsteps)
        naive_evals
        (float_of_int naive_evals /. fsteps)
        celf_s (celf_s /. fsteps) celf_evals
        (float_of_int celf_evals /. fsteps)
        ratio (naive_s /. celf_s);
      [
        ("candidates", float_of_int cands_k);
        ("pairs", float_of_int (Array.length pairs));
        ("k", float_of_int k);
        ("achieved", float_of_int naive.Core.Optimize.Max_k.achieved);
        ("naive_s", naive_s);
        ("naive_s_per_step", naive_s /. fsteps);
        ("naive_evals", float_of_int naive_evals);
        ("naive_evals_per_step", float_of_int naive_evals /. fsteps);
        ("celf_s", celf_s);
        ("celf_s_per_step", celf_s /. fsteps);
        ("celf_evals", float_of_int celf_evals);
        ("celf_evals_per_step", float_of_int celf_evals /. fsteps);
        ("celf_gain_evals", float_of_int celf.Core.Optimize.Max_k.gain_evals);
        (* Pair evaluations = engine evals x |pairs|; main domain only. *)
        ( "naive_promoted_words_per_pair",
          naive_prom /. float_of_int (naive_evals * Array.length pairs) );
        ( "celf_promoted_words_per_pair",
          celf_prom /. float_of_int (celf_evals * Array.length pairs) );
        ("naive_major_collections", naive_maj);
        ("celf_major_collections", celf_maj);
        ("eval_ratio", ratio);
        ("speedup", naive_s /. celf_s);
        ("identity_gate", 1.);
      ])

(* Minimal JSON emission — no dependencies, flat string/number maps. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v)
         fields)
  ^ "}"

let num_map kvs = json_obj (List.map (fun (k, v) -> (k, json_float v)) kvs)

let write_json ~label ~sections ~total_s =
  let doc =
    json_obj
      ([
         ("label", Printf.sprintf "\"%s\"" (json_escape label));
         ("n", string_of_int (env_int "SBGP_BENCH_N" 4000));
         ("scale", json_float (env_float "SBGP_SCALE" 1.0));
         ("seed", string_of_int (env_int "SBGP_SEED" 42));
         ("domains", string_of_int (Core.Parallel.default_domains ()));
       ]
      @ sections
      @ [ ("total_s", json_float total_s) ])
  in
  let path = Printf.sprintf "BENCH_%s.json" label in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc doc;
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" path

let () =
  let json =
    Array.exists (( = ) "--json") Sys.argv
    ||
    match Sys.getenv_opt "SBGP_BENCH_JSON" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let t0 = Unix.gettimeofday () in
  let sections = ref [] in
  let add name kvs = sections := !sections @ [ (name, num_map kvs) ] in
  if part "experiments" then add "experiments_s" (run_experiments ());
  if part "micro" then add "micro_ns_per_run" (run_micro ());
  if part "h_metric" then add "h_metric" (run_h_metric_comparison ());
  if part "rollout" then add "rollout" (run_rollout_bench ());
  if part "kernel" then add "kernel" (run_kernel_bench ());
  if part "batch" then add "batch" (run_batch_bench ());
  if part "optimize" then add "optimize" (run_optimize_bench ());
  if part "topology" then add "topology" (run_topology_bench ());
  let total_s = Unix.gettimeofday () -. t0 in
  if json then begin
    let label =
      match Sys.getenv_opt "SBGP_BENCH_LABEL" with
      | Some l when l <> "" -> l
      | _ -> "default"
    in
    write_json ~label ~sections:!sections ~total_s
  end;
  Printf.printf "total bench time: %.1fs\n" total_s
