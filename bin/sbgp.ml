(* Command-line interface to the reproduction: generate/save topologies
   and run any of the paper's experiments at any scale. *)

open Cmdliner

let n_arg =
  let doc = "Number of ASes in the synthetic topology." in
  Arg.(value & opt int 4000 & info [ "n"; "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for topology generation and sampling." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let ixp_arg =
  let doc =
    "Use the IXP-augmented graph (extra synthetic peering edges, \
     Appendix J)."
  in
  Arg.(value & flag & info [ "ixp" ] ~doc)

let scale_arg =
  let doc =
    "Multiply every sample size (attackers, destinations) by this factor; \
     larger is slower and closer to the paper's exhaustive averages."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let domains_arg =
  let doc =
    "Number of worker domains for parallel experiment evaluation \
     (default: the SBGP_DOMAINS environment variable, else the number of \
     cores).  Results are identical for every value."
  in
  let positive =
    let parse s =
      match int_of_string_opt s with
      | Some d when d >= 1 -> Ok d
      | Some _ -> Error (`Msg "must be >= 1")
      | None -> Error (`Msg "expected an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value & opt (some positive) None & info [ "domains"; "j" ] ~docv:"D" ~doc)

let graph_arg =
  let doc =
    "Load the AS graph from this file instead of generating one (see `sbgp \
     gen`): either a CAIDA-style relationship file or a binary snapshot \
     (`sbgp gen --snapshot`), detected by content.  Content providers \
     default to the 17 highest-peering-degree non-T1 ASes."
  in
  Arg.(value & opt (some string) None & info [ "graph" ] ~docv:"FILE" ~doc)

(* Sniff the file format: binary snapshots start with the 8-byte magic,
   relationship files are plain text. *)
let is_snapshot path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = String.length Core.Serial.snapshot_magic in
      in_channel_length ic >= m
      &&
      let b = really_input_string ic m in
      String.equal b Core.Serial.snapshot_magic)

let load_graph path =
  if is_snapshot path then Core.Serial.load_snapshot path
  else
    (* Real CAIDA relationship files use sparse AS numbers; remap them
       onto dense ids. *)
    fst (Core.Serial.load_remapped path)

let context n seed ixp scale domains graph_file =
  match graph_file with
  | None -> Core.Experiments.Context.make ~n ~seed ~ixp ~scale ?domains ()
  | Some path ->
      let g = load_graph path in
      let g =
        if ixp then fst (Core.Ixp.augment (Core.Rng.create (seed + 1)) g)
        else g
      in
      (* Pick CPs: top peering-degree ASes with providers. *)
      let candidates =
        List.init (Core.Graph.n g) Fun.id
        |> List.filter (fun v -> Array.length (Core.Graph.providers g v) > 0)
        |> List.sort (fun a b ->
               compare (Core.Graph.peer_degree g b) (Core.Graph.peer_degree g a))
      in
      let cps = Array.of_list (List.filteri (fun i _ -> i < 17) candidates) in
      Core.Experiments.Context.of_graph ~seed ~scale ?domains
        ~label:(Filename.basename path) g ~cps

let gen_cmd =
  let out =
    Arg.(
      value
      & opt string "as-graph.txt"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Also write the graph as a binary snapshot (versioned, \
             digest-protected, mmap-loadable in milliseconds; see `sbgp run \
             --graph`).")
  in
  let run n seed ixp out snapshot =
    let r =
      Core.Topogen.generate
        ~params:(Core.Topogen.default_params ~n)
        (Core.Rng.create seed)
    in
    let g, added =
      if ixp then Core.Ixp.augment (Core.Rng.create (seed + 1)) r.Core.Topogen.graph
      else (r.Core.Topogen.graph, 0)
    in
    Core.Serial.save out g;
    (match snapshot with
    | None -> ()
    | Some path ->
        Core.Serial.save_snapshot path g;
        Printf.printf "wrote snapshot %s\n" path);
    let tiers = Core.Tiers.classify ~cps:(Array.to_list r.Core.Topogen.cps) g in
    Printf.printf "wrote %s\n%s" out (Core.Tiers.summary g tiers);
    if ixp then Printf.printf "IXP augmentation added %d peer edges\n" added;
    Printf.printf "designated CPs: %s\n"
      (String.concat ", "
         (Array.to_list (Array.map string_of_int r.Core.Topogen.cps)))
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic AS topology and save it.")
    Term.(const run $ n_arg $ seed_arg $ ixp_arg $ out $ snapshot)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-16s %s (%s)\n" e.Core.Experiments.Registry.id
          e.Core.Experiments.Registry.title e.Core.Experiments.Registry.paper)
      Core.Experiments.Registry.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const run $ const ())

let run_experiment ?out_dir ctx entry =
  let t0 = Unix.gettimeofday () in
  let output = entry.Core.Experiments.Registry.run ctx in
  (match out_dir with
  | None -> print_string output
  | Some dir ->
      let path =
        Filename.concat dir (entry.Core.Experiments.Registry.id ^ ".txt")
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc output);
      Printf.printf "wrote %s\n%!" path);
  Printf.printf "[%s completed in %.1fs]\n\n%!"
    entry.Core.Experiments.Registry.id
    (Unix.gettimeofday () -. t0)

let exp_cmd =
  let which =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment ids to run (default: all; see `sbgp list`).")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write each experiment's output to DIR/<id>.txt instead of stdout.")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Self-audit the context with the invariant checker (see `sbgp \
             check`) before running anything, and abort on errors.  Also \
             enabled by SBGP_CHECK=1 in the environment.")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some bool) None
      & info [ "batch" ] ~docv:"BOOL"
          ~doc:
            "Force the destination-major batched routing kernel on or off \
             for metric evaluation (default: on).  Equivalent to setting \
             the SBGP_BATCH environment variable; results are bit-identical \
             either way.")
  in
  let run n seed ixp scale domains graph_file out_dir check batch which =
    (match out_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    (match batch with
    | Some b -> Unix.putenv "SBGP_BATCH" (if b then "1" else "0")
    | None -> ());
    let ctx = context n seed ixp scale domains graph_file in
    Printf.printf "context: %s\n\n%!" (Core.Experiments.Context.describe ctx);
    if check || Core.Check.enabled () then begin
      let report = Core.Experiments.Context.self_audit ctx in
      print_string (Core.Check.Diagnostic.summary report);
      print_newline ();
      if not (Core.Check.Diagnostic.ok report) then begin
        prerr_endline "sbgp: self-audit found errors; aborting run";
        exit 1
      end
    end;
    let entries =
      match which with
      | [] -> Core.Experiments.Registry.all
      | ids ->
          List.map
            (fun id ->
              match Core.Experiments.Registry.find id with
              | Some e -> e
              | None ->
                  prerr_endline
                    ("unknown experiment: " ^ id ^ " (see `sbgp list`)");
                  exit 2)
            ids
    in
    List.iter (run_experiment ?out_dir ctx) entries
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one or more experiments (all of them by default).")
    Term.(
      const run $ n_arg $ seed_arg $ ixp_arg $ scale_arg $ domains_arg
      $ graph_arg $ out_dir $ check_flag $ batch_arg $ which)

let check_cmd =
  let pairs_arg =
    Arg.(
      value
      & opt int Core.Check.default_options.Core.Check.pairs
      & info [ "pairs" ] ~docv:"K"
          ~doc:
            "Number of sampled (destination, attacker) pairs for the \
             routing-state verifier (scaled by --scale).")
  in
  let det_pairs_arg =
    Arg.(
      value
      & opt int Core.Check.default_options.Core.Check.det_pairs
      & info [ "det-pairs" ] ~docv:"K"
          ~doc:
            "Number of pairs replayed by the parallel-determinism \
             analyzer (scaled by --scale).")
  in
  let claim_arg =
    Arg.(
      value
      & opt int Core.Check.default_options.Core.Check.attacker_claim
      & info [ "claim" ] ~docv:"L"
          ~doc:"Length of the attacker's bogus path announcement.")
  in
  let mutants_arg =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:
            "Also run the mutant suite: deliberately broken inputs the \
             checker must flag (guards against false negatives).")
  in
  let rules_arg =
    Arg.(
      value & flag
      & info [ "rules" ]
          ~doc:"List every diagnostic rule id with a description and exit.")
  in
  let inc_pairs_arg =
    Arg.(
      value
      & opt int Core.Check.default_options.Core.Check.inc_pairs
      & info [ "inc-pairs" ] ~docv:"K"
          ~doc:
            "Number of pairs compared by the incremental-evaluation pass \
             (scaled by --scale).")
  in
  let incremental_arg =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Run only the incremental pass: evaluation along a seeded \
             rollout chain must be bit-identical to from-scratch \
             computation at every step (uses the context's worker pool).")
  in
  let kernel_arg =
    Arg.(
      value & flag
      & info [ "kernel" ]
          ~doc:
            "Run only the kernel pass: the packed CSR engine and the \
             destination-major batched kernel are replayed against the \
             reference kernel and must be bit-identical (the batched \
             sub-pass decodes every lane of sampled attacker words and \
             pinpoints the first divergent destination/word/bit).")
  in
  let optimize_arg =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Run only the optimize pass: the CELF lazy greedy of the \
             Max-k optimizer is replayed against the naive full-re-eval \
             greedy on the Appendix-I set-cover gadget and seeded \
             instances over the context graph, demanding the \
             bit-identical pick sequence and H bounds (H is not proven \
             submodular, so laziness is gated, not assumed).")
  in
  let topology_arg =
    Arg.(
      value & flag
      & info [ "topology" ]
          ~doc:
            "Run only the topology pass: the off-heap CSR is compared \
             against the adjacency-table view, binary snapshots must \
             round-trip bit-identically (and reject a corrupted payload), \
             and topology-delta replay must be bit-identical to \
             from-scratch computation along a seeded delta chain.")
  in
  let alloc_arg =
    Arg.(
      value & flag
      & info [ "alloc" ]
          ~doc:
            "Run only the allocation gate: minor words per (destination, \
             attacker) pair of the scalar, batched and reference kernels \
             with reused workspaces, measured against recorded budgets \
             (override with SBGP_ALLOC_BUDGET_{SCALAR,BATCH,REFERENCE}); \
             every measured loop is identity-gated and a cold-vs-warm \
             probe of the metric cache demands bit-identical H.  Runs \
             single-domain — the dynamic complement of the static \
             ast/hot-alloc and ast/cache-pure rules.")
  in
  let static_arg =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Run only the typed-AST static analysis (rules ast/*): scan \
             the .cmt artifacts of lib/ and bin/ for polymorphic/float \
             comparison in hot paths, determinism taint, unsafe array \
             access, exception swallowing, and the domain-safety rules \
             (mutable state escaping into parallel closures, \
             lock-discipline violations, workspaces crossing a parallel \
             boundary), honoring tools/astlint/allowlist.txt.  Requires \
             a prior dune build (set SBGP_CMT_ROOT to point at the build \
             root explicitly).")
  in
  let run_static () =
    match Core.Analysis.Cmt_loader.locate_build_root () with
    | None ->
        prerr_endline
          "check --static: no build root with .cmt artifacts found; run \
           `dune build @check` first (or set SBGP_CMT_ROOT)";
        exit 2
    | Some root ->
        let manifest name =
          List.find_opt Sys.file_exists
            [ Filename.concat root name; name ]
        in
        let allowlist_file = manifest "tools/astlint/allowlist.txt" in
        let budget_file = manifest "tools/astlint/alloc_budget.txt" in
        let outcome =
          Core.Analysis.analyze ?allowlist_file ?budget_file ~root
            ~dirs:Core.Analysis.default_dirs ()
        in
        print_string
          (Core.Check.Diagnostic.summary outcome.Core.Analysis.report);
        if not (Core.Check.Diagnostic.ok outcome.Core.Analysis.report) then
          exit 1
  in
  let run n seed ixp scale domains graph_file pairs det_pairs claim mutants
      rules inc_pairs incremental kernel optimize topology alloc static =
    if rules then
      List.iter
        (fun (id, doc) -> Printf.printf "%-26s %s\n" id doc)
        Core.Check.Diagnostic.catalogue
    else if static then run_static ()
    else begin
      let ctx = context n seed ixp scale domains graph_file in
      Printf.printf "context: %s\n%!" (Core.Experiments.Context.describe ctx);
      let scaled = Core.Experiments.Context.scaled ctx in
      let options =
        {
          Core.Check.default_options with
          Core.Check.seed;
          pairs = scaled pairs;
          det_pairs = scaled det_pairs;
          inc_pairs = scaled inc_pairs;
          attacker_claim = claim;
        }
      in
      (* With --ixp on a generated graph, the pre-augmentation base is
         reproducible from the seed; hand it to the lint pass so the
         augmentation itself is checked too. *)
      let base =
        if ixp && graph_file = None then
          Some
            (Core.Topogen.generate
               ~params:(Core.Topogen.default_params ~n)
               (Core.Rng.create seed))
            |> Option.map (fun r -> r.Core.Topogen.graph)
        else None
      in
      let report =
        if incremental then
          Core.Check.run_incremental ~options
            ~pool:(Core.Experiments.Context.pool ctx)
            ctx.Core.Experiments.Context.graph
        else if kernel then
          Core.Check.run_kernel ~options ctx.Core.Experiments.Context.graph
        else if optimize then
          Core.Check.run_optimize ~options
            ~pool:(Core.Experiments.Context.pool ctx)
            ctx.Core.Experiments.Context.graph
        else if topology then
          Core.Check.run_topology ~options ctx.Core.Experiments.Context.graph
        else if alloc then
          Core.Check.run_alloc ~options ctx.Core.Experiments.Context.graph
        else
          Core.Check.run ~options
            ~tiers:ctx.Core.Experiments.Context.tiers ?base
            ctx.Core.Experiments.Context.graph
      in
      let report =
        if mutants then
          Core.Check.Diagnostic.merge report (Core.Check.Mutants.report ())
        else report
      in
      print_string (Core.Check.Diagnostic.summary report);
      if not (Core.Check.Diagnostic.ok report) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check the topology, routing invariants and parallel determinism \
          (structured diagnostics; exit 1 on errors).")
    Term.(
      const run $ n_arg $ seed_arg $ ixp_arg $ scale_arg $ domains_arg
      $ graph_arg $ pairs_arg $ det_pairs_arg $ claim_arg $ mutants_arg
      $ rules_arg $ inc_pairs_arg $ incremental_arg $ kernel_arg
      $ optimize_arg $ topology_arg $ alloc_arg $ static_arg)

let info_cmd =
  let run n seed ixp scale domains graph_file =
    let ctx = context n seed ixp scale domains graph_file in
    print_string (Core.Experiments.Context.describe ctx);
    print_newline ();
    print_string (Core.Tiers.summary ctx.Core.Experiments.Context.graph
                    ctx.Core.Experiments.Context.tiers)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe the experiment context (graph, tiers).")
    Term.(
      const run $ n_arg $ seed_arg $ ixp_arg $ scale_arg $ domains_arg
      $ graph_arg)

let main =
  Cmd.group
    (Cmd.info "sbgp" ~version:"1.0.0"
       ~doc:
         "Reproduction of 'BGP Security in Partial Deployment: Is the \
          Juice Worth the Squeeze?' (SIGCOMM 2013).")
    [ gen_cmd; list_cmd; exp_cmd; check_cmd; info_cmd ]

let () = exit (Cmd.eval main)
