type mode = Off | Simplex | Full
type t = { modes : mode array }

let empty n = { modes = Array.make n Off }
let of_modes modes = { modes = Array.copy modes }

let make ~n ~full ?(simplex = [||]) () =
  let modes = Array.make n Off in
  Array.iter (fun v -> modes.(v) <- Simplex) simplex;
  Array.iter (fun v -> modes.(v) <- Full) full;
  { modes }

let n t = Array.length t.modes
let mode t v = t.modes.(v)
let is_full t v = t.modes.(v) = Full
let signs_origin t v = t.modes.(v) <> Off

let count_secure t =
  Array.fold_left (fun acc m -> if m = Off then acc else acc + 1) 0 t.modes

let secure_list t =
  let acc = ref [] in
  for v = Array.length t.modes - 1 downto 0 do
    if t.modes.(v) <> Off then acc := v :: !acc
  done;
  Array.of_list !acc

let mode_rank = function Off -> 0 | Simplex -> 1 | Full -> 2

let union a b =
  if Array.length a.modes <> Array.length b.modes then
    invalid_arg "Deployment.union: size mismatch";
  { modes =
      Array.init (Array.length a.modes) (fun v ->
          if mode_rank a.modes.(v) >= mode_rank b.modes.(v) then a.modes.(v)
          else b.modes.(v));
  }

let subset s t =
  Array.length s.modes = Array.length t.modes
  && begin
       let ok = ref true in
       Array.iteri
         (fun v m -> if mode_rank m > mode_rank t.modes.(v) then ok := false)
         s.modes;
       !ok
     end

let equal a b =
  Array.length a.modes = Array.length b.modes
  && begin
       let ok = ref true in
       Array.iteri
         (fun v m -> if mode_rank m <> mode_rank b.modes.(v) then ok := false)
         a.modes;
       !ok
     end

(* FNV-1a over the mode ranks: stable across runs, no boxing. *)
let fingerprint t =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun m ->
      h := (!h lxor mode_rank m) * 0x01000193 land max_int)
    t.modes;
  !h

let isps_and_stubs ?(stub_mode = Full) g tiers ~isps =
  let modes = Array.make (Topology.Graph.n g) Off in
  (* Only tier-classified stubs count: an AS with no customers that is a
     designated content provider (or small CP) is not part of an "ISPs and
     their stubs" rollout. *)
  let is_stub v =
    match Topology.Tiers.tier_of tiers v with
    | Topology.Tiers.Stub | Topology.Tiers.Stub_x -> true
    | _ -> false
  in
  Array.iter
    (fun v -> if is_stub v then modes.(v) <- stub_mode)
    (Topology.Tiers.stubs_of g isps);
  Array.iter (fun v -> modes.(v) <- Full) isps;
  { modes }

(* The [n] largest members of a tier by customer degree (ties by id). *)
let largest g tiers tier count =
  let members = Array.copy (Topology.Tiers.members tiers tier) in
  Array.sort
    (fun a b ->
      match
        compare (Topology.Graph.customer_degree g b)
          (Topology.Graph.customer_degree g a)
      with
      | 0 -> compare a b
      | c -> c)
    members;
  Array.sub members 0 (min count (Array.length members))

let tier1_tier2 ?stub_mode g tiers ~n_t1 ~n_t2 =
  let t1 = largest g tiers Topology.Tiers.T1 n_t1 in
  let t2 = largest g tiers Topology.Tiers.T2 n_t2 in
  isps_and_stubs ?stub_mode g tiers ~isps:(Array.append t1 t2)

let with_cps g tiers t =
  let cps = Topology.Tiers.members tiers Topology.Tiers.Cp in
  union t (isps_and_stubs g tiers ~isps:cps)

let tier2_only ?stub_mode g tiers ~n_t2 =
  isps_and_stubs ?stub_mode g tiers
    ~isps:(largest g tiers Topology.Tiers.T2 n_t2)

let non_stubs g tiers =
  let isps = Topology.Tiers.non_stubs tiers in
  let modes = Array.make (Topology.Graph.n g) Off in
  Array.iter (fun v -> modes.(v) <- Full) isps;
  { modes }

let tier1_and_stubs ?(with_cps = false) g tiers =
  let t1 = Topology.Tiers.members tiers Topology.Tiers.T1 in
  let isps =
    if with_cps then
      Array.append t1 (Topology.Tiers.members tiers Topology.Tiers.Cp)
    else t1
  in
  isps_and_stubs g tiers ~isps

let describe t =
  let full = ref 0 and simplex = ref 0 in
  Array.iter
    (function Full -> incr full | Simplex -> incr simplex | Off -> ())
    t.modes;
  Printf.sprintf "%d/%d ASes secure (%d full, %d simplex)"
    (!full + !simplex) (Array.length t.modes) !full !simplex
