(** S*BGP deployment scenarios: which ASes are secure, and how.

    An AS is either [Off] (legacy BGP), [Simplex] (signs its own origin
    announcements but neither validates nor re-signs — the lightweight
    stub deployment of Section 5.3.2), or [Full] (validates, prefers
    secure routes per the active security model, and re-signs). *)

type mode = Off | Simplex | Full

type t

val empty : int -> t
(** The baseline scenario S = emptyset: only origin authentication. *)

val of_modes : mode array -> t
val make : n:int -> full:int array -> ?simplex:int array -> unit -> t
(** ASes listed in both [full] and [simplex] end up [Full]. *)

val n : t -> int
val mode : t -> int -> mode

val is_full : t -> int -> bool
(** The AS validates and re-signs (participates in secure paths as a
    transit/source). *)

val signs_origin : t -> int -> bool
(** The AS's own announcements are signed ([Full] or [Simplex]); routes
    {e to} such a destination can be secure. *)

val count_secure : t -> int
(** Number of ASes that are not [Off]. *)

val secure_list : t -> int array
(** ASes that are not [Off], ascending. *)

val union : t -> t -> t
(** Pointwise maximum of modes ([Off] < [Simplex] < [Full]).  Raises
    [Invalid_argument] on size mismatch. *)

val subset : t -> t -> bool
(** [subset s t]: every AS at least as secure in [t] as in [s]. *)

val equal : t -> t -> bool
(** Pointwise mode equality (false on size mismatch). *)

val fingerprint : t -> int
(** Non-negative content hash of the mode vector, stable across runs.
    [equal a b] implies [fingerprint a = fingerprint b]; the metric-layer
    cache uses it to intern deployment versions cheaply. *)

(** {1 Scenarios from Section 5}

    All scenario constructors secure the listed ISPs in [Full] mode and
    their stub customers in [stub_mode] (default [Full]; pass [Simplex]
    for the simplex variant shown as "error bars" in Figure 7). *)

val isps_and_stubs :
  ?stub_mode:mode ->
  Topology.Graph.t ->
  Topology.Tiers.t ->
  isps:int array ->
  t
(** Secure the given ISPs in full mode plus their tier-classified stub
    customers in [stub_mode].  ASes that look like stubs in the graph but
    are classified elsewhere by Table 1 (e.g. content providers) are not
    included. *)

val tier1_tier2 :
  ?stub_mode:mode ->
  Topology.Graph.t ->
  Topology.Tiers.t ->
  n_t1:int ->
  n_t2:int ->
  t
(** The Tier 1 + Tier 2 rollout of Section 5.2.1: the [n_t1] largest
    Tier 1s and [n_t2] largest Tier 2s (by customer degree) plus their
    stubs. *)

val with_cps : Topology.Graph.t -> Topology.Tiers.t -> t -> t
(** Add all content providers (and their stubs) to a scenario
    (Section 5.2.2). *)

val tier2_only :
  ?stub_mode:mode -> Topology.Graph.t -> Topology.Tiers.t -> n_t2:int -> t
(** The Tier 2 rollout of Section 5.2.4. *)

val non_stubs : Topology.Graph.t -> Topology.Tiers.t -> t
(** All non-stub ASes secure (Section 5.2.4). *)

val tier1_and_stubs :
  ?with_cps:bool -> Topology.Graph.t -> Topology.Tiers.t -> t
(** Section 5.3.1's early-adopter scenarios: all Tier 1s and their stubs,
    optionally plus the content providers and theirs. *)

val describe : t -> string
