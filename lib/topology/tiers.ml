type tier = T1 | T2 | T3 | Cp | Small_cp | Stub_x | Stub | Smdg

let all_tiers = [ T1; T2; T3; Cp; Small_cp; Stub_x; Stub; Smdg ]

let tier_name = function
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"
  | Cp -> "CP"
  | Small_cp -> "SMCP"
  | Stub_x -> "STUB-X"
  | Stub -> "STUB"
  | Smdg -> "SMDG"

let tier_index = function
  | T1 -> 0
  | T2 -> 1
  | T3 -> 2
  | Cp -> 3
  | Small_cp -> 4
  | Stub_x -> 5
  | Stub -> 6
  | Smdg -> 7

type t = { of_as : tier array; groups : int array array }

let classify ?(n_t1 = 13) ?(n_t2 = 100) ?(n_t3 = 100) ?(n_small_cp = 300)
    ?(cps = []) g =
  let n = Graph.n g in
  let assigned = Array.make n None in
  let take tier candidates count =
    let taken = ref 0 in
    List.iter
      (fun v ->
        if !taken < count && assigned.(v) = None then begin
          assigned.(v) <- Some tier;
          incr taken
        end)
      candidates
  in
  (* Sort by descending customer degree, breaking ties by AS id for
     determinism. *)
  let by_customer_degree =
    List.sort
      (fun a b ->
        match compare (Graph.customer_degree g b) (Graph.customer_degree g a) with
        | 0 -> compare a b
        | c -> c)
      (List.init n (fun i -> i))
  in
  let providerless =
    List.filter (fun v -> Array.length (Graph.providers g v) = 0) by_customer_degree
  in
  take T1 providerless n_t1;
  List.iter
    (fun v ->
      if v >= 0 && v < n && assigned.(v) = None then assigned.(v) <- Some Cp)
    cps;
  let with_providers =
    List.filter (fun v -> Array.length (Graph.providers g v) > 0) by_customer_degree
  in
  take T2 with_providers n_t2;
  take T3 with_providers n_t3;
  let by_peer_degree =
    List.sort
      (fun a b ->
        match compare (Graph.peer_degree g b) (Graph.peer_degree g a) with
        | 0 -> compare a b
        | c -> c)
      (List.init n (fun i -> i))
  in
  (* Small CPs must actually peer; a zero-peer AS is not a "top peering" AS. *)
  take Small_cp (List.filter (fun v -> Graph.peer_degree g v > 0) by_peer_degree)
    n_small_cp;
  for v = 0 to n - 1 do
    if assigned.(v) = None then
      if Graph.is_stub g v then
        assigned.(v) <- Some (if Graph.peer_degree g v > 0 then Stub_x else Stub)
      else assigned.(v) <- Some Smdg
  done;
  let of_as =
    Array.map (function Some t -> t | None -> assert false) assigned
  in
  let buckets = Array.make 8 [] in
  for v = n - 1 downto 0 do
    let i = tier_index of_as.(v) in
    buckets.(i) <- v :: buckets.(i)
  done;
  { of_as; groups = Array.map Array.of_list buckets }

let tier_of t v = t.of_as.(v)
let members t tier = t.groups.(tier_index tier)

let non_stubs t =
  let acc = ref [] in
  Array.iteri
    (fun v tier -> match tier with Stub | Stub_x -> () | _ -> acc := v :: !acc)
    t.of_as;
  Array.of_list (List.rev !acc)

let stubs_of g isps =
  let isp_set = Hashtbl.create (Array.length isps) in
  Array.iter (fun v -> Hashtbl.replace isp_set v ()) isps;
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if Graph.is_stub g v
       && Array.exists (fun p -> Hashtbl.mem isp_set p) (Graph.providers g v)
    then acc := v :: !acc
  done;
  Array.of_list !acc

let summary g t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "ASes: %d, customer-provider edges: %d, peer edges: %d\n"
       (Graph.n g)
       (Graph.num_customer_provider_edges g)
       (Graph.num_peer_edges g));
  List.iter
    (fun tier ->
      Buffer.add_string buf
        (Printf.sprintf "  %-7s %d\n" (tier_name tier)
           (Array.length (members t tier))))
    all_tiers;
  Buffer.contents buf
