type params = { n_ixps : int; mean_members : int; max_members : int }

let default_params = { n_ixps = 40; mean_members = 14; max_members = 120 }

let augment ?(params = default_params) rng g =
  let n = Graph.n g in
  if n = 0 then (g, 0)
  else begin
    let weights =
      Array.init n (fun v -> float_of_int (1 + Graph.degree g v))
    in
    (* Membership matrix is sparse; remember which pairs we have connected
       and which were already adjacent. *)
    let adjacent = Hashtbl.create (4 * n) in
    let key a b = if a < b then (a, b) else (b, a) in
    List.iter
      (fun e ->
        match e with
        | Graph.Customer_provider (c, p) -> Hashtbl.replace adjacent (key c p) ()
        | Graph.Peer_peer (a, b) -> Hashtbl.replace adjacent (key a b) ())
      (Graph.edges g);
    let added = ref [] in
    let n_added = ref 0 in
    for _ = 1 to params.n_ixps do
      let size =
        let s = 2 + Rng.geometric rng ~p:(1. /. float_of_int params.mean_members) in
        min s params.max_members
      in
      let members = Array.make size 0 in
      for i = 0 to size - 1 do
        members.(i) <- Rng.weighted_index rng weights
      done;
      (* Full mesh among distinct members not already adjacent. *)
      for i = 0 to size - 1 do
        for j = i + 1 to size - 1 do
          let a = members.(i) and b = members.(j) in
          if a <> b && not (Hashtbl.mem adjacent (key a b)) then begin
            Hashtbl.replace adjacent (key a b) ();
            added := Graph.Peer_peer (a, b) :: !added;
            incr n_added
          end
        done
      done
    done;
    (Graph.of_edges ~n (!added @ Graph.edges g), !n_added)
  end
