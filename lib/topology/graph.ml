module Csr = struct
  (* Flat compressed-sparse-row view of the adjacency: every neighbor of
     every AS lives in one contiguous [adj] array, one row per AS, with
     the row split into three segments — customers, then peers, then
     providers.  [xs] holds the 3n+1 segment boundaries:

       customers of v : adj[xs.(3v)   .. xs.(3v+1))
       peers of v     : adj[xs.(3v+1) .. xs.(3v+2))
       providers of v : adj[xs.(3v+2) .. xs.(3v+3))

     The row of v+1 starts where the row of v ends, so a full-row scan is
     a single linear pass and the relationship class of a neighbor is
     decided by which boundary its index has crossed — no per-class
     closure dispatch in the routing kernel's inner loop. *)
  type t = { adj : int array; xs : int array }

  let of_tables ~customers ~peers ~providers =
    let n = Array.length customers in
    let xs = Array.make ((3 * n) + 1) 0 in
    let total = ref 0 in
    for v = 0 to n - 1 do
      xs.((3 * v)) <- !total;
      total := !total + Array.length customers.(v);
      xs.((3 * v) + 1) <- !total;
      total := !total + Array.length peers.(v);
      xs.((3 * v) + 2) <- !total;
      total := !total + Array.length providers.(v)
    done;
    xs.(3 * n) <- !total;
    let adj = Array.make (max 1 !total) 0 in
    for v = 0 to n - 1 do
      let blit src pos = Array.blit src 0 adj pos (Array.length src) in
      blit customers.(v) xs.((3 * v));
      blit peers.(v) xs.((3 * v) + 1);
      blit providers.(v) xs.((3 * v) + 2)
    done;
    { adj; xs }
end

type t = {
  n : int;
  customers : int array array;
  providers : int array array;
  peers : int array array;
  num_c2p : int;
  num_p2p : int;
  (* Lazily built on first use and cached; see [csr].  Two domains racing
     on a cold cache both build identical arrays and one write wins —
     wasted work, never a wrong answer (the field holds an immutable
     value and pointer writes are atomic). *)
  mutable csr : Csr.t option;
}

type edge =
  | Customer_provider of int * int
  | Peer_peer of int * int

(* Relationship of the pair (a, b) with a < b, from a's point of view. *)
type rel = A_customer_of_b | B_customer_of_a | Peers

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.of_edges: AS %d out of range" v)
  in
  (* Keyed on the single int [a * n + b] (with a < b) rather than a boxed
     (int * int) tuple: one immediate-int hash and compare per edge
     instead of a tuple allocation plus a structural walk.  [a * n + b]
     is injective on in-range pairs and fits an OCaml int for any
     realistic AS count. *)
  let tbl : (int, rel) Hashtbl.t = Hashtbl.create (List.length edge_list) in
  let insert a b rel =
    check a;
    check b;
    if a = b then invalid_arg "Graph.of_edges: self loop";
    let key, rel =
      if a < b then ((a * n) + b, rel)
      else
        ( (b * n) + a,
          match rel with
          | A_customer_of_b -> B_customer_of_a
          | B_customer_of_a -> A_customer_of_b
          | Peers -> Peers )
    in
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.add tbl key rel
    | Some existing ->
        if existing <> rel then
          invalid_arg
            (Printf.sprintf
               "Graph.of_edges: conflicting relationships for pair (%d, %d)"
               (key / n) (key mod n))
  in
  List.iter
    (function
      | Customer_provider (c, p) -> insert c p A_customer_of_b
      | Peer_peer (a, b) -> insert a b Peers)
    edge_list;
  let cust_deg = Array.make n 0 and prov_deg = Array.make n 0 and peer_deg = Array.make n 0 in
  Hashtbl.iter
    (fun key rel ->
      let a = key / n and b = key mod n in
      match rel with
      | A_customer_of_b ->
          prov_deg.(a) <- prov_deg.(a) + 1;
          cust_deg.(b) <- cust_deg.(b) + 1
      | B_customer_of_a ->
          prov_deg.(b) <- prov_deg.(b) + 1;
          cust_deg.(a) <- cust_deg.(a) + 1
      | Peers ->
          peer_deg.(a) <- peer_deg.(a) + 1;
          peer_deg.(b) <- peer_deg.(b) + 1)
    tbl;
  let customers = Array.init n (fun v -> Array.make cust_deg.(v) 0) in
  let providers = Array.init n (fun v -> Array.make prov_deg.(v) 0) in
  let peers = Array.init n (fun v -> Array.make peer_deg.(v) 0) in
  let ci = Array.make n 0 and pi = Array.make n 0 and ei = Array.make n 0 in
  let add_cust p c =
    customers.(p).(ci.(p)) <- c;
    ci.(p) <- ci.(p) + 1
  in
  let add_prov c p =
    providers.(c).(pi.(c)) <- p;
    pi.(c) <- pi.(c) + 1
  in
  let add_peer a b =
    peers.(a).(ei.(a)) <- b;
    ei.(a) <- ei.(a) + 1
  in
  let num_c2p = ref 0 and num_p2p = ref 0 in
  Hashtbl.iter
    (fun key rel ->
      let a = key / n and b = key mod n in
      match rel with
      | A_customer_of_b ->
          incr num_c2p;
          add_cust b a;
          add_prov a b
      | B_customer_of_a ->
          incr num_c2p;
          add_cust a b;
          add_prov b a
      | Peers ->
          incr num_p2p;
          add_peer a b;
          add_peer b a)
    tbl;
  (* Sort adjacency for determinism (hash iteration order is arbitrary). *)
  let sort_all arrs = Array.iter (fun a -> Array.sort Int.compare a) arrs in
  sort_all customers;
  sort_all providers;
  sort_all peers;
  { n; customers; providers; peers; num_c2p = !num_c2p; num_p2p = !num_p2p;
    csr = None }

let unsafe_of_adjacency ~customers ~providers ~peers =
  let n = Array.length customers in
  if Array.length providers <> n || Array.length peers <> n then
    invalid_arg "Graph.unsafe_of_adjacency: table length mismatch";
  let sum arrs = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrs in
  { n; customers; providers; peers; num_c2p = sum customers;
    num_p2p = sum peers / 2; csr = None }

let csr g =
  match g.csr with
  | Some c -> c
  | None ->
      let c =
        Csr.of_tables ~customers:g.customers ~peers:g.peers
          ~providers:g.providers
      in
      g.csr <- Some c;
      c

let n g = g.n
let customers g v = g.customers.(v)
let providers g v = g.providers.(v)
let peers g v = g.peers.(v)
let customer_degree g v = Array.length g.customers.(v)
let peer_degree g v = Array.length g.peers.(v)

let degree g v =
  customer_degree g v + peer_degree g v + Array.length g.providers.(v)

let num_customer_provider_edges g = g.num_c2p
let num_peer_edges g = g.num_p2p
let is_stub g v = customer_degree g v = 0

let edges g =
  let acc = ref [] in
  for v = 0 to g.n - 1 do
    Array.iter (fun p -> acc := Customer_provider (v, p) :: !acc) g.providers.(v);
    Array.iter (fun u -> if v < u then acc := Peer_peer (v, u) :: !acc) g.peers.(v)
  done;
  !acc

let acyclic_hierarchy g =
  (* Kahn's algorithm on the customer -> provider digraph. *)
  let indeg = Array.make g.n 0 in
  for v = 0 to g.n - 1 do
    indeg.(v) <- Array.length g.customers.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    Array.iter
      (fun p ->
        indeg.(p) <- indeg.(p) - 1;
        if indeg.(p) = 0 then Queue.add p queue)
      g.providers.(v)
  done;
  !seen = g.n

let connected g =
  if g.n <= 1 then true
  else begin
    let seen = Prelude.Bitset.create g.n in
    let queue = Queue.create () in
    Prelude.Bitset.add seen 0;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let visit u =
        if not (Prelude.Bitset.mem seen u) then begin
          Prelude.Bitset.add seen u;
          Queue.add u queue
        end
      in
      Array.iter visit g.customers.(v);
      Array.iter visit g.providers.(v);
      Array.iter visit g.peers.(v)
    done;
    Prelude.Bitset.cardinal seen = g.n
  end
