type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

module Csr = struct
  (* Flat compressed-sparse-row view of the adjacency: every neighbor of
     every AS lives in one contiguous [adj] array, one row per AS, with
     the row split into three segments — customers, then peers, then
     providers.  [xs] holds the 3n+1 segment boundaries:

       customers of v : adj[xs.{3v}   .. xs.{3v+1})
       peers of v     : adj[xs.{3v+1} .. xs.{3v+2})
       providers of v : adj[xs.{3v+2} .. xs.{3v+3})

     The row of v+1 starts where the row of v ends, so a full-row scan is
     a single linear pass and the relationship class of a neighbor is
     decided by which boundary its index has crossed — no per-class
     closure dispatch in the routing kernel's inner loop.

     Both arrays are off-heap native-int bigarrays: the GC never scans
     them (a million-AS adjacency is invisible to marking), and a
     snapshot file can be mapped straight into them
     ({!Serial.load_snapshot}) with no decode pass. *)
  type t = { adj : ints; xs : ints }

  let alloc len = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

  let of_tables ~customers ~peers ~providers =
    let n = Array.length customers in
    let xs = alloc ((3 * n) + 1) in
    let total = ref 0 in
    for v = 0 to n - 1 do
      xs.{3 * v} <- !total;
      total := !total + Array.length customers.(v);
      xs.{(3 * v) + 1} <- !total;
      total := !total + Array.length peers.(v);
      xs.{(3 * v) + 2} <- !total;
      total := !total + Array.length providers.(v)
    done;
    xs.{3 * n} <- !total;
    let adj = alloc !total in
    let fill src pos = Array.iteri (fun i x -> adj.{pos + i} <- x) src in
    for v = 0 to n - 1 do
      fill customers.(v) xs.{3 * v};
      fill peers.(v) xs.{(3 * v) + 1};
      fill providers.(v) xs.{(3 * v) + 2}
    done;
    { adj; xs }
end

(* Per-AS adjacency tables: the boxed counterpart of the CSR.  A graph
   holds at least one of the two representations; each is built lazily
   from the other and cached. *)
type tables = {
  customers : int array array;
  providers : int array array;
  peers : int array array;
}

type t = {
  n : int;
  num_c2p : int;
  num_p2p : int;
  version : int;
  (* Both caches follow the same race discipline: two domains racing on
     a cold cache both build identical values and one pointer write wins
     — wasted work, never a wrong answer (the fields hold immutable
     values and pointer writes are atomic). *)
  mutable tables : tables option;
  mutable csr_cache : Csr.t option;
}

(* Graph identity for caches: process-global, monotone, never reused.
   No computed result may depend on it — it exists so a cache keyed on
   (version, deployment) cannot serve one topology's outcome for
   another after a delta step. *)
let version_counter = Atomic.make 0
let fresh_version () = Atomic.fetch_and_add version_counter 1

type edge =
  | Customer_provider of int * int
  | Peer_peer of int * int

let tables g =
  match g.tables with
  | Some tb -> tb
  | None ->
      let c =
        match g.csr_cache with
        | Some c -> c
        | None -> assert false (* constructors always install one side *)
      in
      let adj = c.Csr.adj and xs = c.Csr.xs in
      let seg lo hi = Array.init (hi - lo) (fun i -> adj.{lo + i}) in
      let tb =
        {
          customers = Array.init g.n (fun v -> seg xs.{3 * v} xs.{(3 * v) + 1});
          peers =
            Array.init g.n (fun v -> seg xs.{(3 * v) + 1} xs.{(3 * v) + 2});
          providers =
            Array.init g.n (fun v -> seg xs.{(3 * v) + 2} xs.{(3 * v) + 3});
        }
      in
      g.tables <- Some tb;
      tb

let csr g =
  match g.csr_cache with
  | Some c -> c
  | None ->
      let tb = tables g in
      let c =
        Csr.of_tables ~customers:tb.customers ~peers:tb.peers
          ~providers:tb.providers
      in
      g.csr_cache <- Some c;
      c

(* Relationship of the pair (a, b) with a < b, from a's point of view. *)
type rel = A_customer_of_b | B_customer_of_a | Peers

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.of_edges: AS %d out of range" v)
  in
  (* Keyed on the single int [a * n + b] (with a < b) rather than a boxed
     (int * int) tuple: one immediate-int hash and compare per edge
     instead of a tuple allocation plus a structural walk.  [a * n + b]
     is injective on in-range pairs and fits an OCaml int for any
     realistic AS count. *)
  let tbl : (int, rel) Hashtbl.t = Hashtbl.create (List.length edge_list) in
  let insert a b rel =
    check a;
    check b;
    if a = b then invalid_arg "Graph.of_edges: self loop";
    let key, rel =
      if a < b then ((a * n) + b, rel)
      else
        ( (b * n) + a,
          match rel with
          | A_customer_of_b -> B_customer_of_a
          | B_customer_of_a -> A_customer_of_b
          | Peers -> Peers )
    in
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.add tbl key rel
    | Some existing ->
        if existing <> rel then
          invalid_arg
            (Printf.sprintf
               "Graph.of_edges: conflicting relationships for pair (%d, %d)"
               (key / n) (key mod n))
  in
  List.iter
    (function
      | Customer_provider (c, p) -> insert c p A_customer_of_b
      | Peer_peer (a, b) -> insert a b Peers)
    edge_list;
  let cust_deg = Array.make n 0 and prov_deg = Array.make n 0 and peer_deg = Array.make n 0 in
  Hashtbl.iter
    (fun key rel ->
      let a = key / n and b = key mod n in
      match rel with
      | A_customer_of_b ->
          prov_deg.(a) <- prov_deg.(a) + 1;
          cust_deg.(b) <- cust_deg.(b) + 1
      | B_customer_of_a ->
          prov_deg.(b) <- prov_deg.(b) + 1;
          cust_deg.(a) <- cust_deg.(a) + 1
      | Peers ->
          peer_deg.(a) <- peer_deg.(a) + 1;
          peer_deg.(b) <- peer_deg.(b) + 1)
    tbl;
  let customers = Array.init n (fun v -> Array.make cust_deg.(v) 0) in
  let providers = Array.init n (fun v -> Array.make prov_deg.(v) 0) in
  let peers = Array.init n (fun v -> Array.make peer_deg.(v) 0) in
  let ci = Array.make n 0 and pi = Array.make n 0 and ei = Array.make n 0 in
  let add_cust p c =
    customers.(p).(ci.(p)) <- c;
    ci.(p) <- ci.(p) + 1
  in
  let add_prov c p =
    providers.(c).(pi.(c)) <- p;
    pi.(c) <- pi.(c) + 1
  in
  let add_peer a b =
    peers.(a).(ei.(a)) <- b;
    ei.(a) <- ei.(a) + 1
  in
  let num_c2p = ref 0 and num_p2p = ref 0 in
  Hashtbl.iter
    (fun key rel ->
      let a = key / n and b = key mod n in
      match rel with
      | A_customer_of_b ->
          incr num_c2p;
          add_cust b a;
          add_prov a b
      | B_customer_of_a ->
          incr num_c2p;
          add_cust a b;
          add_prov b a
      | Peers ->
          incr num_p2p;
          add_peer a b;
          add_peer b a)
    tbl;
  (* Sort adjacency for determinism (hash iteration order is arbitrary). *)
  let sort_all arrs = Array.iter (fun a -> Array.sort Int.compare a) arrs in
  sort_all customers;
  sort_all providers;
  sort_all peers;
  { n; num_c2p = !num_c2p; num_p2p = !num_p2p; version = fresh_version ();
    tables = Some { customers; providers; peers }; csr_cache = None }

let unsafe_of_adjacency ~customers ~providers ~peers =
  let n = Array.length customers in
  if Array.length providers <> n || Array.length peers <> n then
    invalid_arg "Graph.unsafe_of_adjacency: table length mismatch";
  let sum arrs = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrs in
  { n; num_c2p = sum customers; num_p2p = sum peers / 2;
    version = fresh_version ();
    tables = Some { customers; providers; peers }; csr_cache = None }

let of_csr ~adj ~xs =
  let fail msg = invalid_arg ("Graph.of_csr: " ^ msg) in
  let xl = Bigarray.Array1.dim xs in
  if xl < 1 || (xl - 1) mod 3 <> 0 then fail "xs length is not 3n + 1";
  let n = (xl - 1) / 3 in
  let al = Bigarray.Array1.dim adj in
  if xs.{0} <> 0 then fail "xs does not start at 0";
  for k = 0 to xl - 2 do
    if xs.{k} > xs.{k + 1} then fail "xs boundaries are not monotone"
  done;
  if xs.{xl - 1} <> al then fail "xs end disagrees with adj length";
  (* Each class segment: neighbors in range, no self loop, strictly
     ascending (sorted, duplicate-free). *)
  let check_seg v lo hi =
    let prev = ref (-1) in
    for i = lo to hi - 1 do
      let u = adj.{i} in
      if u < 0 || u >= n then
        fail (Printf.sprintf "neighbor %d of AS %d out of range" u v);
      if u = v then fail (Printf.sprintf "self loop at AS %d" v);
      if u <= !prev then
        fail (Printf.sprintf "row of AS %d unsorted or duplicated" v);
      prev := u
    done
  in
  for v = 0 to n - 1 do
    check_seg v xs.{3 * v} xs.{(3 * v) + 1};
    check_seg v xs.{(3 * v) + 1} xs.{(3 * v) + 2};
    check_seg v xs.{(3 * v) + 2} xs.{(3 * v) + 3}
  done;
  (* Mutuality: u's customer lists v as provider (and conversely), and
     peering is symmetric — binary search in the reverse segment. *)
  let mem_seg lo hi x =
    let lo = ref lo and hi = ref hi in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let y = adj.{mid} in
      if y = x then found := true else if y < x then lo := mid + 1 else hi := mid
    done;
    !found
  in
  for v = 0 to n - 1 do
    for i = xs.{3 * v} to xs.{(3 * v) + 1} - 1 do
      let u = adj.{i} in
      if not (mem_seg xs.{(3 * u) + 2} xs.{(3 * u) + 3} v) then
        fail
          (Printf.sprintf "AS %d lists customer %d, but not conversely" v u)
    done;
    for i = xs.{(3 * v) + 1} to xs.{(3 * v) + 2} - 1 do
      let u = adj.{i} in
      if not (mem_seg xs.{(3 * u) + 1} xs.{(3 * u) + 2} v) then
        fail (Printf.sprintf "AS %d lists peer %d, but not conversely" v u)
    done;
    for i = xs.{(3 * v) + 2} to xs.{(3 * v) + 3} - 1 do
      let u = adj.{i} in
      if not (mem_seg xs.{3 * u} xs.{(3 * u) + 1} v) then
        fail
          (Printf.sprintf "AS %d lists provider %d, but not conversely" v u)
    done
  done;
  let num_c2p = ref 0 and peer_entries = ref 0 in
  for v = 0 to n - 1 do
    num_c2p := !num_c2p + (xs.{(3 * v) + 1} - xs.{3 * v});
    peer_entries := !peer_entries + (xs.{(3 * v) + 2} - xs.{(3 * v) + 1})
  done;
  { n; num_c2p = !num_c2p; num_p2p = !peer_entries / 2;
    version = fresh_version (); tables = None;
    csr_cache = Some { Csr.adj; xs } }

let n g = g.n
let version g = g.version
let customers g v = (tables g).customers.(v)
let providers g v = (tables g).providers.(v)
let peers g v = (tables g).peers.(v)

let customer_degree g v =
  match g.csr_cache with
  | Some c -> c.Csr.xs.{(3 * v) + 1} - c.Csr.xs.{3 * v}
  | None -> Array.length (tables g).customers.(v)

let peer_degree g v =
  match g.csr_cache with
  | Some c -> c.Csr.xs.{(3 * v) + 2} - c.Csr.xs.{(3 * v) + 1}
  | None -> Array.length (tables g).peers.(v)

let provider_degree g v =
  match g.csr_cache with
  | Some c -> c.Csr.xs.{(3 * v) + 3} - c.Csr.xs.{(3 * v) + 2}
  | None -> Array.length (tables g).providers.(v)

let degree g v = customer_degree g v + peer_degree g v + provider_degree g v

let num_customer_provider_edges g = g.num_c2p
let num_peer_edges g = g.num_p2p
let is_stub g v = customer_degree g v = 0

let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let y = a.(mid) in
    if y = x then found := true else if y < x then lo := mid + 1 else hi := mid
  done;
  !found

let relationship g a b =
  if a < 0 || a >= g.n || b < 0 || b >= g.n then
    invalid_arg "Graph.relationship: AS out of range";
  if a = b then invalid_arg "Graph.relationship: equal endpoints";
  let tb = tables g in
  if mem_sorted tb.providers.(a) b then Some (Customer_provider (a, b))
  else if mem_sorted tb.customers.(a) b then Some (Customer_provider (b, a))
  else if mem_sorted tb.peers.(a) b then
    Some (Peer_peer ((if a < b then a else b), if a < b then b else a))
  else None

let edges g =
  let tb = tables g in
  let acc = ref [] in
  for v = 0 to g.n - 1 do
    Array.iter (fun p -> acc := Customer_provider (v, p) :: !acc) tb.providers.(v);
    Array.iter (fun u -> if v < u then acc := Peer_peer (v, u) :: !acc) tb.peers.(v)
  done;
  !acc

let acyclic_hierarchy g =
  let tb = tables g in
  (* Kahn's algorithm on the customer -> provider digraph. *)
  let indeg = Array.make g.n 0 in
  for v = 0 to g.n - 1 do
    indeg.(v) <- Array.length tb.customers.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    Array.iter
      (fun p ->
        indeg.(p) <- indeg.(p) - 1;
        if indeg.(p) = 0 then Queue.add p queue)
      tb.providers.(v)
  done;
  !seen = g.n

let connected g =
  if g.n <= 1 then true
  else begin
    let tb = tables g in
    let seen = Prelude.Bitset.create g.n in
    let queue = Queue.create () in
    Prelude.Bitset.add seen 0;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let visit u =
        if not (Prelude.Bitset.mem seen u) then begin
          Prelude.Bitset.add seen u;
          Queue.add u queue
        end
      in
      Array.iter visit tb.customers.(v);
      Array.iter visit tb.providers.(v);
      Array.iter visit tb.peers.(v)
    done;
    Prelude.Bitset.cardinal seen = g.n
  end

module Delta = struct
  type op = Add of edge | Remove of edge | Flip of edge

  type t = op array

  let edge_ends = function
    | Customer_provider (c, p) -> (c, p)
    | Peer_peer (a, b) -> (a, b)

  let op_edge = function Add e | Remove e | Flip e -> e

  let canon = function
    | Customer_provider _ as e -> e
    | Peer_peer (a, b) -> if a <= b then Peer_peer (a, b) else Peer_peer (b, a)

  let edge_equal x y =
    match (canon x, canon y) with
    | Customer_provider (a, b), Customer_provider (c, d)
    | Peer_peer (a, b), Peer_peer (c, d) ->
        a = c && b = d
    | Customer_provider _, Peer_peer _ | Peer_peer _, Customer_provider _ ->
        false

  let endpoints (d : t) =
    Array.to_list d
    |> List.concat_map (fun op ->
           let a, b = edge_ends (op_edge op) in
           [ a; b ])
    |> List.sort_uniq Int.compare
    |> Array.of_list

  (* Per-vertex pending edit; the lists are tiny (one entry per op
     touching the vertex). *)
  type edit = {
    mutable c_rem : int list;
    mutable c_add : int list; (* customers *)
    mutable p_rem : int list;
    mutable p_add : int list; (* peers *)
    mutable r_rem : int list;
    mutable r_add : int list; (* providers *)
  }

  (* Validate every op against the base graph and fold it into per-vertex
     edits.  Returns the edit table, the touched vertices in first-touch
     order (the table itself is consulted by keyed lookup only — its
     iteration order never matters), and the edge-count deltas. *)
  let plan g (d : t) =
    let edits : (int, edit) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let edit v =
      match Hashtbl.find_opt edits v with
      | Some e -> e
      | None ->
          let e =
            { c_rem = []; c_add = []; p_rem = []; p_add = [];
              r_rem = []; r_add = [] }
          in
          Hashtbl.add edits v e;
          order := v :: !order;
          e
    in
    let seen_pairs : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let claim a b =
      let lo = if a < b then a else b and hi = if a < b then b else a in
      let key = (lo * g.n) + hi in
      if Hashtbl.mem seen_pairs key then
        invalid_arg
          (Printf.sprintf "Graph.Delta: two ops touch the pair (%d, %d)" lo hi);
      Hashtbl.add seen_pairs key ()
    in
    let add_edge = function
      | Customer_provider (c, p) ->
          let ec = edit c in
          ec.r_add <- p :: ec.r_add;
          let ep = edit p in
          ep.c_add <- c :: ep.c_add
      | Peer_peer (a, b) ->
          let ea = edit a in
          ea.p_add <- b :: ea.p_add;
          let eb = edit b in
          eb.p_add <- a :: eb.p_add
    in
    let remove_edge = function
      | Customer_provider (c, p) ->
          let ec = edit c in
          ec.r_rem <- p :: ec.r_rem;
          let ep = edit p in
          ep.c_rem <- c :: ep.c_rem
      | Peer_peer (a, b) ->
          let ea = edit a in
          ea.p_rem <- b :: ea.p_rem;
          let eb = edit b in
          eb.p_rem <- a :: eb.p_rem
    in
    let is_cp = function Customer_provider _ -> true | Peer_peer _ -> false in
    let dc2p = ref 0 and dp2p = ref 0 in
    let count_add e = if is_cp e then incr dc2p else incr dp2p in
    let count_rem e = if is_cp e then decr dc2p else decr dp2p in
    Array.iter
      (fun op ->
        let e = canon (op_edge op) in
        let a, b = edge_ends e in
        if a < 0 || a >= g.n || b < 0 || b >= g.n then
          invalid_arg
            (Printf.sprintf "Graph.Delta: endpoint of pair (%d, %d) out of range"
               a b);
        if a = b then invalid_arg "Graph.Delta: self loop";
        claim a b;
        let cur = relationship g a b in
        match op with
        | Add _ -> (
            match cur with
            | None ->
                add_edge e;
                count_add e
            | Some _ ->
                invalid_arg
                  (Printf.sprintf
                     "Graph.Delta: Add of already-adjacent pair (%d, %d)" a b))
        | Remove _ -> (
            match cur with
            | Some have when edge_equal have e ->
                remove_edge e;
                count_rem e
            | Some _ | None ->
                invalid_arg
                  (Printf.sprintf
                     "Graph.Delta: Remove of pair (%d, %d) without that \
                      relationship"
                     a b))
        | Flip _ -> (
            match cur with
            | Some have when not (edge_equal have e) ->
                remove_edge have;
                count_rem have;
                add_edge e;
                count_add e
            | Some _ ->
                invalid_arg
                  (Printf.sprintf
                     "Graph.Delta: Flip of pair (%d, %d) to its current \
                      relationship"
                     a b)
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Graph.Delta: Flip of non-adjacent pair (%d, %d)" a b)))
      d;
    (edits, Array.of_list (List.rev !order), !dc2p, !dp2p)

  let mem_list x l = List.exists (fun y -> y = x) l

  (* Rebuild one adjacency row: drop removed members, append added ones,
     restore sorted order.  The base row is sorted and edits are tiny. *)
  let merge_row (base : int array) rem add =
    match (rem, add) with
    | [], [] -> base
    | _ ->
        let kept =
          Array.to_list base |> List.filter (fun x -> not (mem_list x rem))
        in
        Array.of_list (List.sort Int.compare (List.rev_append add kept))

  let apply g (d : t) =
    let edits, order, dc2p, dp2p = plan g d in
    let tb = tables g in
    let customers = Array.copy tb.customers in
    let providers = Array.copy tb.providers in
    let peers = Array.copy tb.peers in
    Array.iter
      (fun v ->
        match Hashtbl.find_opt edits v with
        | None -> ()
        | Some e ->
            customers.(v) <- merge_row customers.(v) e.c_rem e.c_add;
            peers.(v) <- merge_row peers.(v) e.p_rem e.p_add;
            providers.(v) <- merge_row providers.(v) e.r_rem e.r_add)
      order;
    { n = g.n; num_c2p = g.num_c2p + dc2p; num_p2p = g.num_p2p + dp2p;
      version = fresh_version ();
      tables = Some { customers; providers; peers }; csr_cache = None }
end

type view = {
  view_n : int;
  iter_customers : (int -> unit) -> int -> unit;
  iter_peers : (int -> unit) -> int -> unit;
  iter_providers : (int -> unit) -> int -> unit;
}

let view g =
  match g.csr_cache with
  | Some c ->
      let adj = c.Csr.adj and xs = c.Csr.xs in
      let seg f lo hi =
        for i = lo to hi - 1 do
          f adj.{i}
        done
      in
      {
        view_n = g.n;
        iter_customers = (fun f v -> seg f xs.{3 * v} xs.{(3 * v) + 1});
        iter_peers = (fun f v -> seg f xs.{(3 * v) + 1} xs.{(3 * v) + 2});
        iter_providers = (fun f v -> seg f xs.{(3 * v) + 2} xs.{(3 * v) + 3});
      }
  | None ->
      let tb = tables g in
      {
        view_n = g.n;
        iter_customers = (fun f v -> Array.iter f tb.customers.(v));
        iter_peers = (fun f v -> Array.iter f tb.peers.(v));
        iter_providers = (fun f v -> Array.iter f tb.providers.(v));
      }

let overlay g (d : Delta.t) =
  let edits, _order, _dc2p, _dp2p = Delta.plan g d in
  let base = view g in
  if Hashtbl.length edits = 0 then base
  else
    let wrap base_it rem_of add_of f v =
      match Hashtbl.find_opt edits v with
      | None -> base_it f v
      | Some e ->
          let rem = rem_of e and add = add_of e in
          (match rem with
          | [] -> base_it f v
          | _ -> base_it (fun u -> if not (Delta.mem_list u rem) then f u) v);
          List.iter f add
    in
    {
      view_n = base.view_n;
      iter_customers =
        wrap base.iter_customers
          (fun e -> e.Delta.c_rem)
          (fun e -> e.Delta.c_add);
      iter_peers =
        wrap base.iter_peers (fun e -> e.Delta.p_rem) (fun e -> e.Delta.p_add);
      iter_providers =
        wrap base.iter_providers
          (fun e -> e.Delta.r_rem)
          (fun e -> e.Delta.r_add);
    }
