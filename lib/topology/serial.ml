let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# n=%d\n" (Graph.n g));
  List.iter
    (fun edge ->
      match edge with
      | Graph.Customer_provider (c, p) ->
          Buffer.add_string buf (Printf.sprintf "%d|%d|-1\n" p c)
      | Graph.Peer_peer (a, b) ->
          Buffer.add_string buf (Printf.sprintf "%d|%d|0\n" a b))
    (List.sort compare (Graph.edges g));
  Buffer.contents buf

(* Parse into raw (provider-ish) triples; relationship "-1" means the
   first field is the provider of the second, "0" means peering.  Extra
   fields (CAIDA as-rel2 appends the inference source) are ignored. *)
let parse s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let triples = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      let fail msg = failwith (Printf.sprintf "Serial: line %d: %s" (lineno + 1) msg) in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        (* Recognize the "# n=<count>" header if present. *)
        match String.index_opt line '=' with
        | Some i when String.length line > 3 && String.sub line 1 2 = " n" -> (
            match int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
            | Some v -> n := v
            | None -> ())
        | _ -> ()
      end
      else
        match String.split_on_char '|' line with
        | a :: b :: rel :: _ -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> (
                match String.trim rel with
                | "-1" -> triples := (a, b, `Provider_of) :: !triples
                | "0" -> triples := (a, b, `Peer) :: !triples
                | r -> fail (Printf.sprintf "unknown relationship %S" r))
            | _ -> fail "non-integer AS id")
        | _ -> fail "expected <a>|<b>|<rel>")
    lines;
  (!n, List.rev !triples)

let edges_of_triples triples =
  List.map
    (fun (a, b, rel) ->
      match rel with
      | `Provider_of -> Graph.Customer_provider (b, a)
      | `Peer -> Graph.Peer_peer (a, b))
    triples

let of_string s =
  let header_n, triples = parse s in
  let max_as =
    List.fold_left (fun acc (a, b, _) -> max acc (max a b)) (-1) triples
  in
  let n = if header_n >= 0 then header_n else max_as + 1 in
  Graph.of_edges ~n (edges_of_triples triples)

let of_string_remapped s =
  let _, triples = parse s in
  let table = Hashtbl.create 1024 in
  let order = ref [] in
  let intern asn =
    match Hashtbl.find_opt table asn with
    | Some id -> id
    | None ->
        let id = Hashtbl.length table in
        Hashtbl.add table asn id;
        order := asn :: !order;
        id
  in
  let triples =
    List.map
      (fun (a, b, rel) ->
        (* Explicit lets: ids are assigned in reading order. *)
        let a' = intern a in
        let b' = intern b in
        (a', b', rel))
      triples
  in
  let asns = Array.of_list (List.rev !order) in
  (Graph.of_edges ~n:(Array.length asns) (edges_of_triples triples), asns)

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let load path = of_string (read_file path)
let load_remapped path = of_string_remapped (read_file path)
