let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# n=%d\n" (Graph.n g));
  List.iter
    (fun edge ->
      match edge with
      | Graph.Customer_provider (c, p) ->
          Buffer.add_string buf (Printf.sprintf "%d|%d|-1\n" p c)
      | Graph.Peer_peer (a, b) ->
          Buffer.add_string buf (Printf.sprintf "%d|%d|0\n" a b))
    (List.sort compare (Graph.edges g));
  Buffer.contents buf

(* Parse into raw (provider-ish) triples; relationship "-1" means the
   first field is the provider of the second, "0" means peering.  Extra
   fields (CAIDA as-rel2 appends the inference source) are ignored. *)
let parse s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let triples = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      let fail msg = failwith (Printf.sprintf "Serial: line %d: %s" (lineno + 1) msg) in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        (* Recognize the "# n=<count>" header if present. *)
        match String.index_opt line '=' with
        | Some i when String.length line > 3 && String.sub line 1 2 = " n" -> (
            match int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
            | Some v -> n := v
            | None -> ())
        | _ -> ()
      end
      else
        match String.split_on_char '|' line with
        | a :: b :: rel :: _ -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> (
                match String.trim rel with
                | "-1" -> triples := (a, b, `Provider_of) :: !triples
                | "0" -> triples := (a, b, `Peer) :: !triples
                | r -> fail (Printf.sprintf "unknown relationship %S" r))
            | _ -> fail "non-integer AS id")
        | _ -> fail "expected <a>|<b>|<rel>")
    lines;
  (!n, List.rev !triples)

let edges_of_triples triples =
  List.map
    (fun (a, b, rel) ->
      match rel with
      | `Provider_of -> Graph.Customer_provider (b, a)
      | `Peer -> Graph.Peer_peer (a, b))
    triples

let of_string s =
  let header_n, triples = parse s in
  let max_as =
    List.fold_left (fun acc (a, b, _) -> max acc (max a b)) (-1) triples
  in
  let n = if header_n >= 0 then header_n else max_as + 1 in
  Graph.of_edges ~n (edges_of_triples triples)

let of_string_remapped s =
  let _, triples = parse s in
  let table = Hashtbl.create 1024 in
  let order = ref [] in
  let intern asn =
    match Hashtbl.find_opt table asn with
    | Some id -> id
    | None ->
        let id = Hashtbl.length table in
        Hashtbl.add table asn id;
        order := asn :: !order;
        id
  in
  let triples =
    List.map
      (fun (a, b, rel) ->
        (* Explicit lets: ids are assigned in reading order. *)
        let a' = intern a in
        let b' = intern b in
        (a', b', rel))
      triples
  in
  let asns = Array.of_list (List.rev !order) in
  (Graph.of_edges ~n:(Array.length asns) (edges_of_triples triples), asns)

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let load path = of_string (read_file path)
let load_remapped path = of_string_remapped (read_file path)

(* Binary snapshots.

   Layout (all multi-byte fields little-endian int64):

     offset 0    magic "SBGPSNAP"
     offset 8    format version
     offset 16   payload word size in bytes (8)
     offset 24   n (AS count)
     offset 32   adj length (total neighbor entries, 2 * edges)
     offset 40   customer-to-provider edge count
     offset 48   peer edge count
     offset 56   digest of the payload
     ...         zero padding
     offset 4096 payload: the CSR offsets xs (3n + 1 values) followed by
                 the neighbor array adj, each value one little-endian
                 64-bit word

   The payload is page-aligned and its words are exactly the in-memory
   representation of an int-kind Bigarray on a 64-bit little-endian
   platform, so {!load_snapshot} maps the file ({!Unix.map_file}) and
   hands the two slices to {!Graph.of_csr} with no decode pass — load
   time is the mmap plus the validation scans, independent of how long
   {!Topogen} took to grow the graph. *)

let snapshot_magic = "SBGPSNAP"
let snapshot_version = 1
let snapshot_payload_offset = 4096
let header_len = 64

let check_platform what =
  if Sys.int_size <> 63 then
    failwith (what ^ ": snapshots require a 64-bit platform");
  if Sys.big_endian then
    failwith (what ^ ": snapshots require a little-endian platform")

(* Mixing digest over the payload words (xs then adj), in wrap-around
   native-int arithmetic: any single flipped bit avalanches, which is
   all a corruption check needs (this is not a cryptographic MAC). *)
let digest_payload (xs : Graph.ints) (adj : Graph.ints) =
  let mix h v =
    let x = (h lxor v) * 0x2545F4914F6CDD1D in
    (x lxor (x lsr 29)) land max_int
  in
  let h = ref 0 in
  for i = 0 to Bigarray.Array1.dim xs - 1 do
    h := mix !h xs.{i}
  done;
  for i = 0 to Bigarray.Array1.dim adj - 1 do
    h := mix !h adj.{i}
  done;
  !h

let save_snapshot path g =
  check_platform "Serial.save_snapshot";
  let csr = Graph.csr g in
  let xs = csr.Graph.Csr.xs and adj = csr.Graph.Csr.adj in
  let xl = Bigarray.Array1.dim xs and al = Bigarray.Array1.dim adj in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let header = Bytes.make snapshot_payload_offset '\000' in
      Bytes.blit_string snapshot_magic 0 header 0 8;
      let put i v = Bytes.set_int64_le header i (Int64.of_int v) in
      put 8 snapshot_version;
      put 16 8;
      put 24 (Graph.n g);
      put 32 al;
      put 40 (Graph.num_customer_provider_edges g);
      put 48 (Graph.num_peer_edges g);
      put 56 (digest_payload xs adj);
      output_bytes oc header;
      let chunk_words = 4096 in
      let chunk = Bytes.create (8 * chunk_words) in
      let write_ints (a : Graph.ints) len =
        let i = ref 0 in
        while !i < len do
          let m = min chunk_words (len - !i) in
          for k = 0 to m - 1 do
            Bytes.set_int64_le chunk (8 * k) (Int64.of_int a.{!i + k})
          done;
          output oc chunk 0 (8 * m);
          i := !i + m
        done
      in
      write_ints xs xl;
      write_ints adj al);
  (* tmp + rename: a crashed writer leaves the old snapshot intact and
     never a half-written file under the final name. *)
  Sys.rename tmp path

let load_snapshot path =
  check_platform "Serial.load_snapshot";
  let fail msg =
    failwith (Printf.sprintf "Serial.load_snapshot: %s: %s" path msg)
  in
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size in
      if size < Int64.of_int snapshot_payload_offset then
        fail "truncated header";
      let header = Bytes.create header_len in
      let rec read_all off =
        if off < header_len then begin
          let k = Unix.read fd header off (header_len - off) in
          if k = 0 then fail "truncated header";
          read_all (off + k)
        end
      in
      read_all 0;
      if Bytes.sub_string header 0 8 <> snapshot_magic then fail "bad magic";
      let get i = Int64.to_int (Bytes.get_int64_le header i) in
      let ver = get 8 in
      if ver <> snapshot_version then
        fail
          (Printf.sprintf "format version %d, this build reads version %d" ver
             snapshot_version);
      if get 16 <> 8 then fail "payload word size is not 8";
      let n = get 24 and al = get 32 in
      if n < 0 || al < 0 then fail "negative counts in header";
      let xl = (3 * n) + 1 in
      let expect =
        Int64.add
          (Int64.of_int snapshot_payload_offset)
          (Int64.of_int (8 * (xl + al)))
      in
      if size < expect then fail "truncated payload";
      if size > expect then fail "trailing bytes after payload";
      let map =
        Unix.map_file fd
          ~pos:(Int64.of_int snapshot_payload_offset)
          Bigarray.int Bigarray.c_layout false [| xl + al |]
      in
      let map = Bigarray.array1_of_genarray map in
      let xs = Bigarray.Array1.sub map 0 xl in
      let adj = Bigarray.Array1.sub map xl al in
      if digest_payload xs adj <> get 56 then fail "payload digest mismatch";
      (* of_csr re-derives the structural invariants (and the edge
         counts) from the payload itself; the header counts then have to
         agree, or header and payload were written by different hands. *)
      let g =
        try Graph.of_csr ~adj ~xs
        with Invalid_argument m -> fail ("invalid CSR payload: " ^ m)
      in
      if Graph.num_customer_provider_edges g <> get 40 then
        fail "customer-provider edge count disagrees with header";
      if Graph.num_peer_edges g <> get 48 then
        fail "peer edge count disagrees with header";
      g)
