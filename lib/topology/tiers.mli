(** Classification of ASes into the tiers of the paper's Table 1. *)

type tier =
  | T1       (** high customer degree, no providers *)
  | T2       (** top ASes by customer degree, with providers *)
  | T3       (** next ASes by customer degree, with providers *)
  | Cp       (** designated content providers *)
  | Small_cp (** top remaining ASes by peering degree *)
  | Stub_x   (** no customers, at least one peer *)
  | Stub     (** no customers, no peers *)
  | Smdg     (** remaining non-stub ASes *)

val all_tiers : tier list
val tier_name : tier -> string

type t

val classify :
  ?n_t1:int ->
  ?n_t2:int ->
  ?n_t3:int ->
  ?n_small_cp:int ->
  ?cps:int list ->
  Graph.t ->
  t
(** [classify g] assigns each AS to exactly one tier.  Defaults follow
    Table 1: [n_t1 = 13], [n_t2 = 100], [n_t3 = 100], [n_small_cp = 300],
    [cps = []].  Precedence: T1, then the explicit CP list, then T2, T3,
    Small_cp (by peer degree), Stub_x, Stub, Smdg. *)

val tier_of : t -> int -> tier
val members : t -> tier -> int array
(** ASes in the given tier, sorted; owned by [t], do not mutate. *)

val non_stubs : t -> int array
(** All ASes that are not [Stub] and not [Stub_x] — the paper's non-stub
    attacker set M'. *)

val stubs_of : Graph.t -> int array -> int array
(** [stubs_of g isps] are the stub ASes having at least one provider in
    [isps]; used for the "ISPs and their stubs" rollouts of Section 5. *)

val summary : Graph.t -> t -> string
(** Human-readable per-tier counts. *)
