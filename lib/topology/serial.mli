(** CAIDA-style textual serialization of annotated AS graphs.

    One edge per line: [<provider>|<customer>|-1] for customer-to-provider
    edges and [<a>|<b>|0] for peering.  Lines starting with ['#'] are
    comments.  The header comment records the AS count so that isolated
    ASes survive a round trip. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input.
    Lines with extra fields (e.g. CAIDA as-rel2's trailing source column)
    are accepted; AS ids must be dense in [0, n). *)

val save : string -> Graph.t -> unit
val load : string -> Graph.t

val of_string_remapped : string -> Graph.t * int array
(** Like {!of_string}, but accepts arbitrary (sparse) AS numbers — as in
    real CAIDA relationship files — and maps them onto dense ids.  The
    returned array gives the original AS number of each dense id. *)

val load_remapped : string -> Graph.t * int array
