(** CAIDA-style textual serialization of annotated AS graphs.

    One edge per line: [<provider>|<customer>|-1] for customer-to-provider
    edges and [<a>|<b>|0] for peering.  Lines starting with ['#'] are
    comments.  The header comment records the AS count so that isolated
    ASes survive a round trip. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input.
    Lines with extra fields (e.g. CAIDA as-rel2's trailing source column)
    are accepted; AS ids must be dense in [0, n). *)

val save : string -> Graph.t -> unit
val load : string -> Graph.t

val of_string_remapped : string -> Graph.t * int array
(** Like {!of_string}, but accepts arbitrary (sparse) AS numbers — as in
    real CAIDA relationship files — and maps them onto dense ids.  The
    returned array gives the original AS number of each dense id. *)

val load_remapped : string -> Graph.t * int array

(** {2 Binary snapshots}

    A versioned binary image of a graph's CSR: an 8-byte magic, a
    little-endian int64 header (format version, payload word size, AS
    count, neighbor count, edge counts, payload digest), zero padding to
    a page boundary, then the raw CSR — the [3n + 1] offsets followed by
    the neighbor array, one 64-bit word each.  The payload bytes are the
    in-memory representation of the graph's off-heap CSR
    ({!Graph.ints}), so loading is an [mmap] plus validation scans
    rather than a parse: a UCLA-scale (~40k AS) graph loads in
    milliseconds where regeneration takes seconds.

    Snapshots require a 64-bit little-endian platform on both ends
    (checked at run time; [Failure] otherwise). *)

val save_snapshot : string -> Graph.t -> unit
(** Write atomically: the image goes to [path ^ ".tmp"] and is renamed
    over [path], so a crash mid-write never leaves a torn file under the
    final name. *)

val load_snapshot : string -> Graph.t
(** Map a snapshot back into a graph.  The payload stays memory-mapped
    (the returned graph's CSR aliases the file, read-only by
    convention); per-AS tables materialize lazily on first use.  Raises
    [Failure] naming the defect — and the path — on bad magic, format
    version or word-size mismatch, truncation, trailing bytes, digest
    mismatch, an invalid CSR payload, or header/payload edge-count
    disagreement. *)

val snapshot_magic : string
val snapshot_version : int

val snapshot_payload_offset : int
(** Byte offset of the payload (one page); exposed with the other two so
    tests can corrupt specific fields and prove each error path. *)
