(** AS-level topology: an undirected graph whose edges are annotated with a
    business relationship, following the classic Gao-Rexford model used by
    the paper (Section 2.2).

    ASes are dense integer identifiers [0 .. n-1].  An edge is either
    {e customer-to-provider} (the customer pays the provider) or
    {e peer-to-peer}. *)

type t

module Csr : sig
  (** Flat compressed-sparse-row view of the adjacency, for kernels that
      scan whole neighborhoods: every neighbor of every AS in one
      contiguous [adj] array, one row per AS, segmented as
      customers | peers | providers.  [xs] holds the [3n + 1] segment
      boundaries:

      - customers of [v]: [adj.(xs.(3v)) .. adj.(xs.(3v+1) - 1)]
      - peers of [v]:     [adj.(xs.(3v+1)) .. adj.(xs.(3v+2) - 1)]
      - providers of [v]: [adj.(xs.(3v+2)) .. adj.(xs.(3v+3) - 1)]

      Row [v+1] starts where row [v] ends.  Each segment is sorted
      ascending (same order as {!customers} etc.).  The arrays are owned
      by the graph and must not be mutated. *)
  type t = private { adj : int array; xs : int array }
end

val csr : t -> Csr.t
(** The graph's CSR view, built on first use and cached on the graph.
    Concurrent first calls from several domains may build it redundantly
    (identical results; last write wins) — never inconsistently. *)

type edge =
  | Customer_provider of int * int  (** [(c, p)]: [c] is a customer of [p] *)
  | Peer_peer of int * int

val of_edges : n:int -> edge list -> t
(** Build a graph over [n] ASes.  Raises [Invalid_argument] on self loops,
    out-of-range endpoints, or an AS pair appearing with two different
    relationships.  Duplicate identical edges are collapsed. *)

val unsafe_of_adjacency :
  customers:int array array ->
  providers:int array array ->
  peers:int array array ->
  t
(** Wrap raw adjacency tables with {e no} validation: self loops,
    duplicates, asymmetric or unsorted tables all pass through untouched.
    Exists so the checker's mutant suite and tests can build deliberately
    malformed graphs that {!of_edges} would reject; cached edge counts are
    derived from the customer/peer tables.  Never use it for real data —
    every invariant of this module's documentation is the caller's
    problem. *)

val n : t -> int

val customers : t -> int -> int array
(** [customers g v] are the neighbors that are customers of [v].  The
    returned array is owned by the graph and must not be mutated. *)

val providers : t -> int -> int array
val peers : t -> int -> int array

val customer_degree : t -> int -> int
val peer_degree : t -> int -> int
val degree : t -> int -> int

val num_customer_provider_edges : t -> int
val num_peer_edges : t -> int

val is_stub : t -> int -> bool
(** No customers (paper: "Stubs" plus "Stubs-x"). *)

val edges : t -> edge list
(** Every edge exactly once ([Customer_provider (c, p)] and
    [Peer_peer (a, b)] with [a < b]). *)

val acyclic_hierarchy : t -> bool
(** Whether the customer-to-provider digraph is acyclic (the standard
    sanity condition on annotated AS graphs). *)

val connected : t -> bool
(** Whether the underlying undirected graph is connected (trivially true
    for [n <= 1]). *)
