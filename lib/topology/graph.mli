(** AS-level topology: an undirected graph whose edges are annotated with a
    business relationship, following the classic Gao-Rexford model used by
    the paper (Section 2.2).

    ASes are dense integer identifiers [0 .. n-1].  An edge is either
    {e customer-to-provider} (the customer pays the provider) or
    {e peer-to-peer}.

    A graph carries up to two interchangeable adjacency representations —
    per-AS [int array] tables and an off-heap {!Csr} view — each built
    lazily from the other and cached, so a graph loaded from a binary
    snapshot ({!Serial.load_snapshot}) can run the routing kernels without
    ever materializing per-AS arrays, and a graph built from edges pays
    for the CSR only when a kernel first asks for it. *)

type t

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Off-heap native-int array: unboxed elements outside the OCaml heap
    (the GC never scans them) and directly mmap-able from a snapshot. *)

module Csr : sig
  (** Flat compressed-sparse-row view of the adjacency, for kernels that
      scan whole neighborhoods: every neighbor of every AS in one
      contiguous [adj] array, one row per AS, segmented as
      customers | peers | providers.  [xs] holds the [3n + 1] segment
      boundaries:

      - customers of [v]: [adj.{xs.{3v}} .. adj.{xs.{3v+1} - 1}]
      - peers of [v]:     [adj.{xs.{3v+1}} .. adj.{xs.{3v+2} - 1}]
      - providers of [v]: [adj.{xs.{3v+2}} .. adj.{xs.{3v+3} - 1}]

      Row [v+1] starts where row [v] ends.  Each segment is sorted
      ascending (same order as {!customers} etc.).  Both arrays live
      outside the OCaml heap ({!ints}); they are owned by the graph and
      must not be mutated. *)
  type t = private { adj : ints; xs : ints }
end

val csr : t -> Csr.t
(** The graph's CSR view, built on first use and cached on the graph.
    Concurrent first calls from several domains may build it redundantly
    (identical results; last write wins) — never inconsistently. *)

type edge =
  | Customer_provider of int * int  (** [(c, p)]: [c] is a customer of [p] *)
  | Peer_peer of int * int

val of_edges : n:int -> edge list -> t
(** Build a graph over [n] ASes.  Raises [Invalid_argument] on self loops,
    out-of-range endpoints, or an AS pair appearing with two different
    relationships.  Duplicate identical edges are collapsed. *)

val of_csr : adj:ints -> xs:ints -> t
(** Wrap a raw CSR pair (typically mapped from a snapshot) after full
    validation: consistent dimensions, monotone boundaries, in-range
    neighbors, sorted duplicate-free segments, no self loops, and
    mutual (symmetric) adjacency with matching relationship classes.
    Raises [Invalid_argument] naming the violated invariant.  The
    arrays become owned by the graph and must not be mutated. *)

val unsafe_of_adjacency :
  customers:int array array ->
  providers:int array array ->
  peers:int array array ->
  t
(** Wrap raw adjacency tables with {e no} validation: self loops,
    duplicates, asymmetric or unsorted tables all pass through untouched.
    Exists so the checker's mutant suite and tests can build deliberately
    malformed graphs that {!of_edges} would reject; cached edge counts are
    derived from the customer/peer tables.  Never use it for real data —
    every invariant of this module's documentation is the caller's
    problem. *)

val n : t -> int

val version : t -> int
(** Process-unique identity of this graph value, from a global counter:
    two distinct graphs never share a version, so caches keyed on
    [(version, deployment)] can never serve one topology's outcome for
    another.  Purely a cache key — no computed result depends on it. *)

val customers : t -> int -> int array
(** [customers g v] are the neighbors that are customers of [v].  The
    returned array is owned by the graph and must not be mutated.  On a
    CSR-only graph (snapshot-loaded) the first call materializes all
    three tables, O(edges) once. *)

val providers : t -> int -> int array
val peers : t -> int -> int array

val customer_degree : t -> int -> int
val peer_degree : t -> int -> int
val degree : t -> int -> int

val num_customer_provider_edges : t -> int
val num_peer_edges : t -> int

val is_stub : t -> int -> bool
(** No customers (paper: "Stubs" plus "Stubs-x"). *)

val relationship : t -> int -> int -> edge option
(** The relationship of an AS pair, in canonical form
    ([Customer_provider (c, p)], or [Peer_peer (a, b)] with [a < b]);
    [None] when the pair is not adjacent.  O(log degree).  Raises
    [Invalid_argument] on out-of-range or equal endpoints. *)

val edges : t -> edge list
(** Every edge exactly once ([Customer_provider (c, p)] and
    [Peer_peer (a, b)] with [a < b]). *)

val acyclic_hierarchy : t -> bool
(** Whether the customer-to-provider digraph is acyclic (the standard
    sanity condition on annotated AS graphs). *)

val connected : t -> bool
(** Whether the underlying undirected graph is connected (trivially true
    for [n <= 1]). *)

(** {2 Topology deltas}

    A {!Delta.t} describes a small edit to a graph — link additions,
    removals, relationship flips — without touching the graph it applies
    to.  {!Delta.apply} materializes the edited graph (sharing every
    untouched adjacency row with its base), and {!overlay} exposes the
    edited adjacency as a cheap {!view} for cone computations that must
    walk the {e post}-delta graph before deciding whether building it is
    worth it. *)

module Delta : sig
  type graph

  type op =
    | Add of edge
        (** The pair must not be adjacent in the base graph. *)
    | Remove of edge
        (** The base graph must carry exactly this relationship. *)
    | Flip of edge
        (** The pair must be adjacent with a {e different} relationship,
            which the flip replaces: a peering becomes the given
            customer-provider edge, or vice versa, or a
            customer-provider edge reverses direction. *)

  type t = op array
  (** Ops of one delta edit {e distinct} pairs: two ops on the same AS
      pair are rejected, so every op is validated against the base
      graph independently of the others. *)

  val endpoints : t -> int array
  (** The distinct ASes incident to any op, sorted ascending. *)

  val apply : graph -> t -> graph
  (** The edited graph: untouched adjacency rows are shared with the
      base (never copied), the edited rows stay sorted, and edge counts
      are maintained.  The result has a fresh {!version} and no cached
      CSR.  Raises [Invalid_argument] when an op's precondition fails
      (naming the pair) or two ops touch the same pair. *)
end
  with type graph := t

type view = {
  view_n : int;
  iter_customers : (int -> unit) -> int -> unit;
  iter_peers : (int -> unit) -> int -> unit;
  iter_providers : (int -> unit) -> int -> unit;
}
(** A read-only adjacency abstraction: just enough for closure-style
    traversals ({!Routing.Reach.compute_view}) to run on either a plain
    graph or a not-yet-materialized delta edit.  Iteration order within
    a segment is unspecified (set semantics). *)

val view : t -> view
(** The graph's own adjacency as a view (CSR-backed when the CSR is
    already built, table-backed otherwise — never forces a build). *)

val overlay : t -> Delta.t -> view
(** The adjacency of [Delta.apply g d] as a view over [g] {e without}
    materializing the edited graph: touched rows filter removed
    neighbors and append added ones on the fly.  Validates the delta
    like {!Delta.apply}. *)
