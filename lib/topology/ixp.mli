(** Synthetic IXP peering augmentation (paper Section 2.2 / Appendix J).

    The paper augments the UCLA graph with ~553K peer edges obtained by
    fully meshing the members of 332 IXPs.  We have no IXP membership data,
    so we synthesize memberships: each IXP draws members with probability
    proportional to total degree (large transit and content ASes populate
    exchanges), then members are fully meshed with peer edges, skipping
    pairs already adjacent.  As in the paper this over-approximates real
    IXP peering and is used only as a robustness check. *)

type params = {
  n_ixps : int;           (** number of exchanges *)
  mean_members : int;     (** mean members per IXP (geometrically distributed) *)
  max_members : int;      (** cap on a single IXP's size *)
}

val default_params : params
(** Scaled-down analog of the paper's 332 IXPs / 10 835 memberships. *)

val augment : ?params:params -> Rng.t -> Graph.t -> Graph.t * int
(** [augment rng g] returns the augmented graph and the number of peer
    edges added.  Existing relationships are never altered: member pairs
    already linked (by any relationship) keep their original edge. *)
