(** The rule catalogue: turn collected facts into diagnostics.

    - A1 [ast/poly-compare]: polymorphic compare/equal/hash (including
      aliases and the List.mem/assoc family) on non-immediate types in
      hot-path modules.
    - A2 [ast/determinism-taint]: nondeterministic primitives reachable
      from the determinism roots, or written directly in hot-path
      modules.
    - A3 [ast/unsafe-access]: [Array.unsafe_*] outside the vetted
      kernels; [Obj.magic] anywhere.
    - A4 [ast/float-compare]: polymorphic comparison instantiated at
      [float].
    - A5 [ast/exn-swallow]: catch-all or ignored-exception handlers.
    - A6 [ast/domain-escape]: mutable state created outside but written
      inside a closure that runs on pool domains, with no mutex held,
      lock bracket, or disjoint per-item index — checked both directly
      and through call-graph reachability from the parallel entry.
    - A7 [ast/lock-discipline]: accesses to fields inferred (by
      {!Lockreg}) to be mutex-guarded without the mutex statically
      held; raising while holding a lock; lock with no unlock.
    - A8 [ast/workspace-epoch]: epoch-stamped [Workspace] values
      crossing a parallel-closure boundary.
    - A9 [ast/hot-alloc]: heap-allocation sites in functions reachable
      from the vetted kernel entry points, beyond the per-symbol
      budgets of the checked-in [alloc_budget.txt] manifest.
    - A10 [ast/cache-pure]: cache-coupled functions (publishing to or
      reading from the metric cache) that reach a nondeterministic
      primitive or read module-level mutable state.
    - [ast/allowlist-stale]: allowlist entries that suppressed nothing
      this run.
    - [ast/alloc-budget-stale]: budget entries with no (or fewer)
      remaining reachable sites — the manifest only ratchets down. *)

val rule_poly : string
val rule_taint : string
val rule_unsafe : string
val rule_float : string
val rule_swallow : string
val rule_escape : string
val rule_lock : string
val rule_epoch : string
val rule_alloc : string
val rule_pure : string
val rule_stale : string
val rule_budget_stale : string
val rule_missing : string
val rule_unreadable : string
val rule_allowlist : string

type config = {
  hot_scopes : string list;
  swallow_scopes : string list;
  unsafe_scopes : string list;
  kernel_modules : string list;
  taint_roots : string list;
  rng_scopes : string list;
  domain_scopes : string list;
  par_entries : string list;
  lock_brackets : string list;
  workspace_specs : string list;
  hot_entries : string list;  (** A9 kernel entry-point specs *)
  cache_api : string list;  (** A10 cache publish/read API specs *)
  cache_impl : string list;  (** A10 cache implementation scope *)
  budget : Budget.t;
  allow : Allowlist.t;
}

val default : ?allow:Allowlist.t -> ?budget:Budget.t -> unit -> config

type finding = {
  source : string;
  line : int;
  rule : string;
  symbol : string;  (** offending enclosing symbol (or allowlist target) *)
  text : string;
}

val to_diag : finding -> Check.Diagnostic.t
(** Render as an error whose message begins with ["<source>:<line>: "]. *)

val apply :
  ?allow_source:string ->
  ?budget_source:string ->
  config ->
  Typereg.t ->
  Callgraph.t ->
  Unit_info.t list ->
  finding list
(** Findings sorted by (source, line, rule).  [allow_source] is the
    path reported for [ast/allowlist-stale] findings (default
    ["tools/astlint/allowlist.txt"]); [budget_source] likewise for
    [ast/alloc-budget-stale] (default
    ["tools/astlint/alloc_budget.txt"]). *)
