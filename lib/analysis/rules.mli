(** The rule catalogue: turn collected facts into diagnostics.

    - A1 [ast/poly-compare]: polymorphic compare/equal/hash (including
      aliases and the List.mem/assoc family) on non-immediate types in
      hot-path modules.
    - A2 [ast/determinism-taint]: nondeterministic primitives reachable
      from the determinism roots, or written directly in hot-path
      modules.
    - A3 [ast/unsafe-access]: [Array.unsafe_*] outside the vetted
      kernels; [Obj.magic] anywhere.
    - A4 [ast/float-compare]: polymorphic comparison instantiated at
      [float].
    - A5 [ast/exn-swallow]: catch-all or ignored-exception handlers. *)

val rule_poly : string
val rule_taint : string
val rule_unsafe : string
val rule_float : string
val rule_swallow : string
val rule_missing : string
val rule_unreadable : string
val rule_allowlist : string

type config = {
  hot_scopes : string list;
  swallow_scopes : string list;
  unsafe_scopes : string list;
  kernel_modules : string list;
  taint_roots : string list;
  rng_scopes : string list;
  allow : Allowlist.t;
}

val default : ?allow:Allowlist.t -> unit -> config

val apply :
  config ->
  Typereg.t ->
  Callgraph.t ->
  Unit_info.t list ->
  Check.Diagnostic.t list
(** Findings sorted by (source, line, rule); each message begins with
    ["<source>:<line>: "]. *)
