(** Typed-AST static analysis over dune's [.cmt] artifacts.

    Loads the binary annotations a prior [dune build @check] produced,
    walks each Typedtree once, builds a type-immediacy registry, an
    inter-module call graph and a mutex-guard registry, and applies the
    A1–A10 rule catalogue (DESIGN.md §11, §13, §16).  Findings carry
    stable [ast/*] rule ids and render as ordinary {!Check.Diagnostic}
    values. *)

module Syms = Syms
module Cmt_loader = Cmt_loader
module Unit_info = Unit_info
module Typereg = Typereg
module Allowlist = Allowlist
module Budget = Budget
module Callgraph = Callgraph
module Lockreg = Lockreg
module Rules = Rules

type outcome = {
  units : Unit_info.t list;
  findings : Rules.finding list;  (** rule findings, sorted *)
  report : Check.Diagnostic.report;
  cached : int;  (** units served from the digest cache *)
}

val default_dirs : string list
(** [["lib"; "bin"]] — the production scan. *)

val analyze :
  ?config:(Allowlist.t -> Budget.t -> Rules.config) ->
  ?allowlist_file:string ->
  ?budget_file:string ->
  ?cache_path:string ->
  root:string ->
  dirs:string list ->
  unit ->
  outcome
(** Scan [root]/[dirs] for [.cmt] files, walk them and apply the rules.
    Unreadable artifacts, an empty scan and allowlist/budget parse
    errors all surface as diagnostics ([ast/cmt-unreadable],
    [ast/cmt-missing], [ast/allowlist]) rather than exceptions.
    [cache_path] enables the digest cache: unchanged units are served
    from the previous run's snapshot and the snapshot is rewritten
    afterwards. *)

(** {1 Fixture corpus (false-negative guard)} *)

val fixture_dir : string
(** ["test/fixtures/astlint"] *)

val fixture_config : Allowlist.t -> Budget.t -> Rules.config
(** Scopes, kernel allowlist, taint roots, domain-safety entries and
    an exact in-memory allocation budget aimed at the deliberately bad
    fixture corpus instead of the production tree (the [Budget.t]
    argument is ignored — fixtures carry their own). *)

val fixture_failures : outcome -> string list
(** Every [aN_*.ml] fixture must fire its rule, every [ok_*.ml] must
    stay silent; returns one message per violated expectation.  Empty
    means the rules still catch everything the corpus seeds. *)
