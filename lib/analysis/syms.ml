(* Canonical symbol names.

   Dune mangles wrapped-library modules as [Lib__Module] ("Routing__Engine")
   and executable modules as [Dune__exe__Name]; references in one unit can
   reach the same value through either spelling, or through a local module
   alias ([module E = Routing.Engine]).  Every name the analyzer stores —
   node, edge target, type path, allowlist entry — goes through [canon]
   first so that all spellings collapse to one dotted form
   ("Routing.Engine.compute"). *)

let exe_prefix = "Dune__exe__"

(* "Routing__Engine" -> ["Routing"; "Engine"].  A component without the
   dune separator is returned as-is; a trailing/leading separator (never
   produced by dune) is left alone. *)
let split_mangled comp =
  match String.index_opt comp '_' with
  | None -> [ comp ]
  | Some _ -> (
      match String.split_on_char '_' comp with
      | [ a; ""; b ] when a <> "" && b <> "" && b.[0] >= 'A' && b.[0] <= 'Z'
        ->
          (* exactly one "__" *)
          [ a; b ]
      | _ ->
          (* Several or irregular underscores: only handle the standard
             two-part mangling, via a manual scan for the first "__"
             followed by an uppercase letter. *)
          let n = String.length comp in
          let rec find i =
            if i + 2 >= n then None
            else if
              comp.[i] = '_'
              && comp.[i + 1] = '_'
              && comp.[i + 2] >= 'A'
              && comp.[i + 2] <= 'Z'
            then Some i
            else find (i + 1)
          in
          (match find 0 with
          | None -> [ comp ]
          | Some i ->
              [ String.sub comp 0 i; String.sub comp (i + 2) (n - i - 2) ]))

let canon_component comp =
  let comp =
    if
      String.length comp > String.length exe_prefix
      && String.sub comp 0 (String.length exe_prefix) = exe_prefix
    then
      String.sub comp (String.length exe_prefix)
        (String.length comp - String.length exe_prefix)
    else comp
  in
  split_mangled comp

(* Operators print as "( = )" in some contexts; strip the decoration so
   the polymorphic-operator table can key on the bare name. *)
let strip_parens s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '(' && s.[n - 1] = ')' then
    String.trim (String.sub s 1 (n - 2))
  else s

let canon_string name =
  String.split_on_char '.' name
  |> List.concat_map canon_component
  |> List.map strip_parens
  |> String.concat "."

(* [resolve] maps a leading path component (a local module alias or a
   locally defined module) to its canonical prefix; identity when the
   component is not local. *)
let canon_path ?(resolve = fun _ -> None) path =
  let name = canon_string (Path.name path) in
  match String.index_opt name '.' with
  | None -> ( match resolve name with Some p -> p | None -> name)
  | Some i -> (
      let head = String.sub name 0 i in
      let rest = String.sub name i (String.length name - i) in
      match resolve head with Some p -> p ^ rest | None -> name)

(* Allowlist / root / scope matching: [spec] matches [sym] when they are
   equal, when [sym] lives below [spec] ("Routing.Reference" matches
   "Routing.Reference.compute"), or when [spec] is an explicit prefix
   pattern "Metric.H_metric.*". *)
let spec_matches ~spec sym =
  let prefix p =
    String.length sym > String.length p
    && String.sub sym 0 (String.length p) = p
  in
  let n = String.length spec in
  if n >= 2 && String.sub spec (n - 2) 2 = ".*" then
    prefix (String.sub spec 0 (n - 1))
  else spec = sym || prefix (spec ^ ".")

(* Source-path scoping: a scope entry is a directory prefix
   ("lib/routing") or an exact file ("lib/prelude/shard_cache.ml"). *)
let in_scope ~scopes source =
  List.exists
    (fun s ->
      source = s
      || String.length source > String.length s
         && String.sub source 0 (String.length s) = s
         && (s.[String.length s - 1] = '/' || source.[String.length s] = '/'))
    scopes
