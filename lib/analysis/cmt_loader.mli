(** Locating and reading dune's [.cmt] binary-annotation artifacts. *)

type unit_file = {
  cmt_path : string;  (** path of the .cmt file itself *)
  modname : string;  (** mangled unit name, e.g. ["Routing__Engine"] *)
  source : string;  (** source path as recorded by the compiler,
                        e.g. ["lib/routing/engine.ml"] *)
}

val env_root : string
(** Environment variable overriding build-root discovery
    (["SBGP_CMT_ROOT"]). *)

val scan : root:string -> dirs:string list -> string list
(** All [.cmt] files under [root]/[dir] for each [dir], found inside
    dune's [.<lib>.objs/byte] and [.<exe>.eobjs/byte] directories, in
    deterministic sorted order. *)

val locate_build_root : unit -> string option
(** First plausible build root among [$SBGP_CMT_ROOT], [_build/default],
    [.], [..], ... — a directory whose [lib/] contains dune object
    directories.  Covers the three call sites: the [@lint] rule (cwd is
    the build context), [dune runtest] (cwd is [_build/default/test])
    and [sbgp check --static] from a repository checkout. *)

val read :
  string -> (unit_file * Cmt_format.cmt_infos, string) result
(** Read one artifact; [Error] carries the exception text for corrupt or
    version-skewed files. *)

(** Digest-keyed cache of walked {!Unit_info.t} values, so repeated
    lint runs skip re-walking unchanged units.  Snapshots are keyed by
    the [.cmt] file digest and versioned by analyzer-format and
    compiler version; every failure mode (missing file, version skew,
    torn write) silently degrades to a cold cache. *)
module Cache : sig
  type t

  val empty : unit -> t
  val load : path:string -> t

  val digest : string -> string option
  (** Hex digest of a file's contents; [None] if unreadable. *)

  val lookup : t -> digest:string -> Unit_info.t option
  val store : t -> digest:string -> Unit_info.t -> unit

  val save : t -> path:string -> unit
  (** Persist only the entries touched since [load] (pruning dead
      units), atomically via tmp + rename.  Failures are silent. *)
end
