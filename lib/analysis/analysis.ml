(* Typed-AST static analysis over dune's .cmt artifacts.

   The pipeline (DESIGN.md §11, §13): locate the build root, scan for
   .cmt binary annotations, walk each Typedtree once collecting facts
   (Unit_info), derive the type-immediacy registry (Typereg), the
   inter-module call graph (Callgraph) and the mutex-guard registry
   (Lockreg), then let the rule catalogue (Rules) turn facts into
   findings.  Nothing is recompiled here: the analyzer reads what
   `dune build @check` left behind, which is also how the @lint alias
   sequences it.  An optional digest cache skips re-walking units whose
   .cmt artifact is unchanged since the previous run. *)

module Syms = Syms
module Cmt_loader = Cmt_loader
module Unit_info = Unit_info
module Typereg = Typereg
module Allowlist = Allowlist
module Budget = Budget
module Callgraph = Callgraph
module Lockreg = Lockreg
module Rules = Rules
module D = Check.Diagnostic

type outcome = {
  units : Unit_info.t list;
  findings : Rules.finding list;
  report : D.report;
  cached : int;
}

let default_dirs = [ "lib"; "bin" ]

let walk_file file =
  match Cmt_loader.read file with
  | Error msg ->
      Error
        (D.error ~rule:Rules.rule_unreadable
           (Printf.sprintf "%s: %s" file msg))
  | Ok (uf, infos) -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let modname = Syms.canon_string uf.modname in
          Ok (Some (Unit_info.walk ~modname ~source:uf.source str))
      | _ -> Ok None)

let load_units ?cache files =
  let cached = ref 0 in
  let units, diags =
    List.fold_left
      (fun (units, diags) file ->
        let digest =
          match cache with
          | None -> None
          | Some c -> (
              match Cmt_loader.Cache.digest file with
              | None -> None
              | Some d -> Some (c, d))
        in
        let hit =
          match digest with
          | Some (c, d) -> Cmt_loader.Cache.lookup c ~digest:d
          | None -> None
        in
        match hit with
        | Some u ->
            incr cached;
            (u :: units, diags)
        | None -> (
            match walk_file file with
            | Error d -> (units, d :: diags)
            | Ok None -> (units, diags)
            | Ok (Some u) ->
                (match digest with
                | Some (c, d) -> Cmt_loader.Cache.store c ~digest:d u
                | None -> ());
                (u :: units, diags)))
      ([], []) files
  in
  (List.rev units, List.rev diags, !cached)

let analyze ?(config = fun allow budget -> Rules.default ~allow ~budget ())
    ?allowlist_file ?budget_file ?cache_path ~root ~dirs () =
  let files = Cmt_loader.scan ~root ~dirs in
  let allow, allow_diags =
    match allowlist_file with
    | None -> (Allowlist.empty, [])
    | Some f -> (
        match Allowlist.load f with
        | Ok a -> (a, [])
        | Error msg ->
            ( Allowlist.empty,
              [
                D.error ~rule:Rules.rule_allowlist
                  (Printf.sprintf "%s: %s" f msg);
              ] ))
  in
  let budget, budget_diags =
    match budget_file with
    | None -> (Budget.empty, [])
    | Some f -> (
        match Budget.load f with
        | Ok b -> (b, [])
        | Error msg ->
            ( Budget.empty,
              [
                D.error ~rule:Rules.rule_allowlist
                  (Printf.sprintf "%s: %s" f msg);
              ] ))
  in
  let missing_diags =
    if files = [] then
      [
        D.error ~rule:Rules.rule_missing
          (Printf.sprintf
             "no .cmt artifacts under %s for {%s}; run `dune build @check` \
              first"
             root (String.concat ", " dirs));
      ]
    else []
  in
  let cache =
    match cache_path with
    | None -> None
    | Some p -> Some (Cmt_loader.Cache.load ~path:p)
  in
  let units, read_diags, cached = load_units ?cache files in
  (match (cache, cache_path) with
  | Some c, Some p -> Cmt_loader.Cache.save c ~path:p
  | _ -> ());
  let cfg = config allow budget in
  let reg = Typereg.build units in
  let graph = Callgraph.build units in
  let findings =
    Rules.apply ?allow_source:allowlist_file ?budget_source:budget_file cfg
      reg graph units
  in
  let rule_diags = List.map Rules.to_diag findings in
  let report =
    let r =
      D.add_pass D.empty_report "ast/load" ~items:(List.length files)
        (allow_diags @ budget_diags @ missing_diags @ read_diags)
    in
    D.add_pass r "ast/rules" ~items:(List.length units) rule_diags
  in
  { units; findings; report; cached }

(* --- fixture corpus ------------------------------------------------- *)

(* The deliberately-bad corpus under test/fixtures/astlint doubles as a
   false-negative guard: every aN_*.ml file must produce at least one
   finding of its rule, every ok_*.ml must stay silent.  If a rule
   regresses, its fixture stops firing and @lint fails — the
   mutant-style inversion of the usual "clean tree has zero findings"
   gate. *)

let fixture_dir = "test/fixtures/astlint"

let fixture_config allow budget =
  (* The fixture corpus carries its own exact budget so the budgeted-ok
     case in a9_hot_alloc.ml stays silent; the file-level manifest
     (if any) is ignored for fixtures. *)
  ignore budget;
  {
    Rules.hot_scopes = [ fixture_dir ];
    swallow_scopes = [ fixture_dir ];
    unsafe_scopes = [ fixture_dir ];
    kernel_modules =
      [
        "Astlint_fixtures.A3_unsafe.Vetted_kernel";
        "Astlint_fixtures.A3_bigarray.Vetted_kernel";
      ];
    taint_roots = [ "Astlint_fixtures.A2_taint.root_compute" ];
    rng_scopes = [];
    domain_scopes = [ fixture_dir ];
    par_entries =
      [ "Parallel.map"; "Parallel.map_reduce"; "Parallel.Pool.map";
        "Stdlib.Domain.spawn" ];
    lock_brackets = [ "Stdlib.Mutex.protect" ];
    workspace_specs = [ "Routing.Engine.Workspace.t" ];
    hot_entries = [ "Astlint_fixtures.A9_hot_alloc.kernel_entry" ];
    cache_api =
      [
        "Astlint_fixtures.A10_cache_impure.Cache.find";
        "Astlint_fixtures.A10_cache_impure.Cache.store";
      ];
    cache_impl = [ "Astlint_fixtures.A10_cache_impure.Cache.*" ];
    budget =
      Budget.v
        [
          {
            Budget.target = "Astlint_fixtures.A9_hot_alloc.budgeted_helper";
            count = 1;
            reason = "fixture: one sprintf site, paid for on purpose";
            line = 1;
          };
        ];
    allow;
  }

let expected_rule_of_fixture base =
  let pre n =
    String.length base >= String.length n && String.sub base 0 (String.length n) = n
  in
  if pre "a10_" then Some (Some Rules.rule_pure)
  else if pre "a1_" then Some (Some Rules.rule_poly)
  else if pre "a2_" then Some (Some Rules.rule_taint)
  else if pre "a3_" then Some (Some Rules.rule_unsafe)
  else if pre "a4_" then Some (Some Rules.rule_float)
  else if pre "a5_" then Some (Some Rules.rule_swallow)
  else if pre "a6_" then Some (Some Rules.rule_escape)
  else if pre "a7_" then Some (Some Rules.rule_lock)
  else if pre "a8_" then Some (Some Rules.rule_epoch)
  else if pre "a9_" then Some (Some Rules.rule_alloc)
  else if pre "ok_" then Some None
  else None

let fixture_failures outcome =
  let diags_for source =
    List.filter
      (fun (d : D.t) ->
        let prefix = source ^ ":" in
        String.length d.message >= String.length prefix
        && String.sub d.message 0 (String.length prefix) = prefix)
      outcome.report.D.diags
  in
  List.filter_map
    (fun (u : Unit_info.t) ->
      if not (Syms.in_scope ~scopes:[ fixture_dir ] u.source) then None
      else
        let base = Filename.basename u.source in
        match expected_rule_of_fixture base with
        | None -> None
        | Some (Some rule) ->
            let hits = diags_for u.source in
            if List.exists (fun (d : D.t) -> d.rule = rule) hits then None
            else
              Some
                (Printf.sprintf
                   "false negative: fixture %s expected a %s finding, got \
                    %s"
                   base rule
                   (match hits with
                   | [] -> "none"
                   | l ->
                       String.concat "; "
                         (List.map (fun (d : D.t) -> d.rule) l)))
        | Some None ->
            let hits = diags_for u.source in
            if hits = [] then None
            else
              Some
                (Printf.sprintf
                   "false positive: clean fixture %s produced %s" base
                   (String.concat "; "
                      (List.map (fun (d : D.t) -> d.rule) hits))))
    outcome.units
