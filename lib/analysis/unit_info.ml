(* Single-unit Typedtree walk: facts only, no policy.

   For one .cmt implementation this records everything the rules later
   judge: polymorphic-comparison uses with the instantiated subject
   type, unsafe-access and nondeterministic-primitive identifiers,
   exception-swallowing handlers, the value-level call edges that feed
   the inter-module call graph, the type declarations that feed the
   immediacy registry — and, for the domain-safety rules (A6–A8), every
   write/read of mutable state with its enclosing-lambda context and
   the set of mutexes statically held at the site, the lock/unlock/
   raise-while-locked event stream, and workspace-typed value uses
   inside closures.  Scoping (which directories a rule covers) and the
   allowlist are applied downstream in {!Rules} — the walk itself is
   identical for library code and for the deliberately-bad fixture
   corpus.

   Resolution notes.  The typechecker stores fully resolved paths, so
   [open] never hides an identifier's origin; what does hide it are
   local module aliases ([module E = Routing.Engine]) and references to
   values of the unit itself ([Pident]).  The walk therefore tracks a
   per-unit alias map and the set of toplevel values defined so far
   (OCaml values cannot be forward-referenced, so "so far" is exact up
   to mutually recursive bindings, which are pre-registered per
   group).

   Lambda/lock model.  [lam_stack] holds the enclosing literal lambdas
   outermost-first; a lambda that is a direct argument of an
   application is tagged with the callee's canonical name (so the rules
   can spot [Parallel.map (fun item -> ...)]), any other lambda with
   [None].  Every binder is recorded at the lambda depth of its
   introduction, keyed by [Ident.unique_name] (stamped, so shadowing
   needs no scope tracking).  [held] is the list of mutex descriptors
   acquired on the current straight-line path, updated in traversal
   order and saved/restored around branches and lambda bodies; a
   closure therefore inherits the locks lexically held where it is
   written — which matches the common [lock; let work = fun ... in
   work (); unlock] shape and is deliberately unsound for closures
   stored and run later (DESIGN.md §13 lists that as a known
   false-negative direction, covered by the runtime replays). *)

open Typedtree

type kind =
  | Poly_compare of { op : string; subject : Types.type_expr option }
      (* [op] canonical ("Stdlib.=", "Stdlib.List.mem"); [subject] the
         instantiated type being compared (first argument), [None] when
         no arrow type was recoverable. *)
  | Unsafe_access of string
  | Nondet_prim of string
  | Exn_swallow of string

type occurrence = { kind : kind; encl : string; line : int }

type edge = {
  from_ : string;
  target : string;
  line : int;
  lambdas : string option list;
}

type subject =
  | Local of int
  | Global of string
  | Unknown

type sort =
  | Ref_write of string
  | Ref_read of string
  | Field_write of { rectype : string; field : string }
  | Field_read of { rectype : string; field : string }
  | Array_write of { idx_depth : int }
  | Container_op of {
      op : string;
      write : bool;
      field : (string * string) option;
    }

type access = {
  sort : sort;
  subject : subject;
  lambdas : string option list;
  held : (string * int) list;
  a_encl : string;
  a_line : int;
}

type lock_event =
  | Acquire of string
  | Release of string
  | Raise_locked of { locks : string list; what : string }

type lock_occ = { ev : lock_event; l_encl : string; l_line : int }

type capture = {
  name : string;
  tyhead : string;
  depth : int;
  c_lambdas : string option list;
  c_encl : string;
  c_line : int;
}

type alloc_kind =
  | Closure of { captures : string list }
  | Box of { what : string; floats : bool }
  | Arr_lit
  | List_lit
  | Alloc_call of string
  | Partial_app of string

type alloc = { a_kind : alloc_kind; al_encl : string; al_line : int }

type t = {
  modname : string;
  source : string;
  defs : string list;
  edges : edge list;
  occs : occurrence list;
  tydecls : (string * Types.type_declaration) list;
  hashtbl_mods : string list;
  accesses : access list;
  locks : lock_occ list;
  captures : capture list;
  allocs : alloc list;
}

(* --- identifier tables (Stdlib facts, not policy) ------------------- *)

let poly_operators =
  [
    "Stdlib.compare"; "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>="; "Stdlib.min"; "Stdlib.max";
    "Stdlib.Hashtbl.hash"; "Stdlib.Hashtbl.seeded_hash";
  ]

(* Containers whose membership/association defaults to polymorphic
   equality on the element/key. *)
let poly_containers =
  [
    "Stdlib.List.mem"; "Stdlib.List.assoc"; "Stdlib.List.assoc_opt";
    "Stdlib.List.mem_assoc"; "Stdlib.List.remove_assoc"; "Stdlib.Array.mem";
  ]

let is_poly name =
  List.mem name poly_operators || List.mem name poly_containers

let unsafe_idents =
  [
    "Stdlib.Array.unsafe_get"; "Stdlib.Array.unsafe_set";
    "Stdlib.Bigarray.Array1.unsafe_get"; "Stdlib.Bigarray.Array1.unsafe_set";
    "Stdlib.Obj.magic";
  ]

let nondet_exact =
  [ "Stdlib.Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Stdlib.Domain.self" ]

let unordered_table_ops =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let hashtbl_functors =
  [
    "Stdlib.Hashtbl.Make"; "Stdlib.Hashtbl.MakeSeeded";
    "Stdlib.MoreLabels.Hashtbl.Make";
  ]

let raiser_idents =
  [
    "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg";
  ]

(* Mutation vocabulary for the domain-safety facts.  [Atomic.*] is
   deliberately absent: atomics are one of the accepted mediations. *)

let ref_write_ops =
  [ ("Stdlib.:=", ":="); ("Stdlib.incr", "incr"); ("Stdlib.decr", "decr") ]

(* Dereference: recorded as a read access so the cache-purity rule can
   see module-level mutable state flowing into cached results. *)
let ref_read_op = "Stdlib.!"

(* Float arithmetic whose boxed result escapes unless the consumer is
   itself float arithmetic; only the root of a float expression tree is
   recorded (the walk tracks the context). *)
let float_arith_ops =
  [
    "Stdlib.+."; "Stdlib.-."; "Stdlib.*."; "Stdlib./."; "Stdlib.~-.";
    "Stdlib.**"; "Stdlib.sqrt"; "Stdlib.exp"; "Stdlib.log";
    "Stdlib.float_of_int"; "Stdlib.Float.of_int";
  ]

(* Known allocating calls: fresh blocks, container growth, formatting.
   [Buffer.add_*]/[Bytes.extend] cover the growth side of the A9
   catalogue; construction expressions (tuples, records, variants,
   literals, closures) are recorded structurally by the walk. *)
let alloc_idents =
  [
    "Stdlib.ref"; "Stdlib.^"; "Stdlib.@";
    "Stdlib.Array.make"; "Stdlib.Array.init"; "Stdlib.Array.copy";
    "Stdlib.Array.append"; "Stdlib.Array.sub"; "Stdlib.Array.of_list";
    "Stdlib.Array.to_list"; "Stdlib.Array.make_matrix"; "Stdlib.Array.map";
    "Stdlib.Array.mapi"; "Stdlib.Array.map2";
    "Stdlib.List.map"; "Stdlib.List.mapi"; "Stdlib.List.map2";
    "Stdlib.List.rev_map"; "Stdlib.List.filter"; "Stdlib.List.filter_map";
    "Stdlib.List.init"; "Stdlib.List.rev"; "Stdlib.List.append";
    "Stdlib.List.concat"; "Stdlib.List.concat_map"; "Stdlib.List.sort";
    "Stdlib.List.stable_sort"; "Stdlib.List.sort_uniq";
    "Stdlib.Bytes.create"; "Stdlib.Bytes.make"; "Stdlib.Bytes.init";
    "Stdlib.Bytes.copy"; "Stdlib.Bytes.sub"; "Stdlib.Bytes.extend";
    "Stdlib.Bytes.cat"; "Stdlib.Bytes.of_string"; "Stdlib.Bytes.to_string";
    "Stdlib.Buffer.create"; "Stdlib.Buffer.add_char";
    "Stdlib.Buffer.add_string"; "Stdlib.Buffer.add_bytes";
    "Stdlib.Buffer.add_substring"; "Stdlib.Buffer.add_buffer";
    "Stdlib.Buffer.contents"; "Stdlib.Buffer.to_bytes";
    "Stdlib.String.make"; "Stdlib.String.init"; "Stdlib.String.sub";
    "Stdlib.String.concat"; "Stdlib.String.cat";
    "Stdlib.String.split_on_char";
    "Stdlib.Printf.sprintf"; "Stdlib.Format.asprintf";
    "Stdlib.Hashtbl.create"; "Stdlib.Hashtbl.copy";
    "Stdlib.Queue.create"; "Stdlib.Stack.create";
  ]

(* (name, subject position, index position) — the disjoint-index
   exemption only makes sense for single-cell writes. *)
let indexed_write_ops =
  [
    ("Stdlib.Array.set", 0, 1); ("Stdlib.Array.unsafe_set", 0, 1);
    ("Stdlib.Bytes.set", 0, 1); ("Stdlib.Bytes.unsafe_set", 0, 1);
  ]

(* (op, subject position, mutates) per container module.  Reads are
   recorded too: the lock-discipline rule guards reads of mutex-sibling
   fields as well as writes. *)
let hashtbl_ops =
  [
    ("replace", 0, true); ("add", 0, true); ("remove", 0, true);
    ("reset", 0, true); ("clear", 0, true); ("filter_map_inplace", 1, true);
    ("find", 0, false); ("find_opt", 0, false); ("find_all", 0, false);
    ("mem", 0, false); ("length", 0, false); ("copy", 0, false);
    ("iter", 1, false); ("fold", 1, false);
  ]

let module_ops =
  [
    ( "Stdlib.Buffer",
      [
        ("add_char", 0, true); ("add_string", 0, true);
        ("add_bytes", 0, true); ("add_substring", 0, true);
        ("add_buffer", 0, true); ("clear", 0, true); ("reset", 0, true);
        ("truncate", 0, true); ("contents", 0, false); ("length", 0, false);
      ] );
    ( "Stdlib.Queue",
      [
        ("push", 1, true); ("add", 1, true); ("pop", 0, true);
        ("take", 0, true); ("clear", 0, true); ("transfer", 0, true);
        ("peek", 0, false); ("top", 0, false); ("length", 0, false);
        ("is_empty", 0, false); ("iter", 1, false);
      ] );
    ( "Stdlib.Stack",
      [
        ("push", 1, true); ("pop", 0, true); ("clear", 0, true);
        ("top", 0, false); ("length", 0, false); ("is_empty", 0, false);
        ("iter", 1, false);
      ] );
    ( "Stdlib.Array",
      [
        ("fill", 0, true); ("blit", 2, true); ("sort", 1, true);
        ("stable_sort", 1, true); ("fast_sort", 1, true);
      ] );
    ("Stdlib.Bytes", [ ("fill", 0, true); ("blit", 2, true) ]);
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let split_last name =
  match String.rindex_opt name '.' with
  | None -> ("", name)
  | Some i ->
      ( String.sub name 0 i,
        String.sub name (i + 1) (String.length name - i - 1) )

let describe_alloc = function
  | Closure { captures = [] } -> "closure"
  | Closure { captures } ->
      Printf.sprintf "closure capturing %s" (String.concat ", " captures)
  | Box { what = "float"; _ } -> "boxed float"
  | Box { what; floats = true } ->
      Printf.sprintf "boxed %s (float components)" what
  | Box { what; _ } -> Printf.sprintf "boxed %s" what
  | Arr_lit -> "array literal"
  | List_lit -> "list cons"
  | Alloc_call name -> Printf.sprintf "%s call" (snd (split_last name))
  | Partial_app name ->
      Printf.sprintf "partial application of %s" (snd (split_last name))

let is_nondet ~hashtbl_mods name =
  starts_with ~prefix:"Stdlib.Random." name
  || List.mem name nondet_exact
  ||
  let base, op = split_last name in
  List.mem op unordered_table_ops
  && (base = "Stdlib.Hashtbl" || List.mem base hashtbl_mods)

type mut =
  | Mut_ref of string
  | Mut_indexed of int * int
  | Mut_container of string * int * bool

let classify_mut ~hashtbl_mods name =
  match List.assoc_opt name ref_write_ops with
  | Some op -> Some (Mut_ref op)
  | None -> (
      match
        List.find_opt (fun (n, _, _) -> n = name) indexed_write_ops
      with
      | Some (_, s, i) -> Some (Mut_indexed (s, i))
      | None -> (
          let base, op = split_last name in
          let ops =
            if base = "Stdlib.Hashtbl" || List.mem base hashtbl_mods then
              Some hashtbl_ops
            else List.assoc_opt base module_ops
          in
          match ops with
          | None -> None
          | Some ops -> (
              match List.find_opt (fun (o, _, _) -> o = op) ops with
              | Some (_, pos, write) ->
                  let _, short = split_last base in
                  Some (Mut_container (short ^ "." ^ op, pos, write))
              | None -> None)))

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* --- helpers -------------------------------------------------------- *)

let arrow_lhs ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, t1, _, _) -> Some t1
  | _ -> None

let rec binding_name (p : pattern) =
  match p.pat_desc with
  | Tpat_var (_, name) -> Some name.txt
  | Tpat_alias (_, _, name) -> Some name.txt
  | Tpat_tuple ps -> List.find_map binding_name ps
  | Tpat_construct (_, _, ps, _) -> List.find_map binding_name ps
  | Tpat_record (fields, _) ->
      List.find_map (fun (_, _, p) -> binding_name p) fields
  | _ -> None

let rec pat_vars (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (q, id, _) -> id :: pat_vars q
  | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps ->
      List.concat_map pat_vars ps
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, q) -> pat_vars q) fields
  | Tpat_variant (_, Some q, _) | Tpat_lazy q -> pat_vars q
  | Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Tpat_any | Tpat_constant _ | Tpat_variant (_, None, _) -> []

let comp_pat_vars p =
  let v, e = Typedtree.split_pattern p in
  (match v with Some q -> pat_vars q | None -> [])
  @ (match e with Some q -> pat_vars q | None -> [])

let rec pat_catches_all (p : pattern) =
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_or (a, b, _) -> pat_catches_all a || pat_catches_all b
  | _ -> false

let rec pat_binder (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, name) -> Some (id, name.txt)
  | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, name) -> Some (id, name.txt)
  | Tpat_or (a, _, _) -> pat_binder a
  | _ -> None

let uses_of_ident id expr0 guard =
  let count = ref 0 in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident i, _, _) when Ident.same i id ->
              incr count
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it expr0;
  (match guard with Some g -> it.expr it g | None -> ());
  !count

let pos_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let nth_pos args k = List.nth_opt (pos_args args) k

(* --- the walk ------------------------------------------------------- *)

let walk ~modname ~source str =
  let modname = Syms.canon_string modname in
  let defs_tbl = Hashtbl.create 64 in
  let tydefs_tbl = Hashtbl.create 32 in
  let defs = ref [] in
  let edges = ref [] in
  let occs = ref [] in
  let tydecls = ref [] in
  let hashtbl_mods = ref [] in
  let accesses = ref [] in
  let locks = ref [] in
  let captures = ref [] in
  let allocs = ref [] in
  let local_modules : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  let prefix () = String.concat "." (modname :: List.rev !stack) in
  let cur = ref (modname ^ ".(init)") in
  let line (loc : Location.t) = loc.loc_start.pos_lnum in
  (* Domain-safety context. *)
  let lam_stack = ref ([] : string option list) in
  let depth () = List.length !lam_stack in
  let binder : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let held = ref ([] : (string * int) list) in
  let protected = ref ([] : string list) in
  (* True while walking the arguments of a float-arithmetic operator:
     nested float ops feed their result unboxed into the parent, so only
     the root of a float expression tree records a box. *)
  let float_ctx = ref false in
  let add_def sym =
    if not (Hashtbl.mem defs_tbl sym) then begin
      Hashtbl.replace defs_tbl sym ();
      defs := sym :: !defs
    end
  in
  let resolve_local head = Hashtbl.find_opt local_modules head in
  let canon p = Syms.canon_path ~resolve:resolve_local p in
  (* A [Pident] reference: resolve against the unit's own definitions,
     innermost module first.  [resolve_in] is shared between the value
     table and the type-name table. *)
  let resolve_in tbl name =
    let rec up = function
      | [] -> None
      | comps ->
          let sym = String.concat "." (List.rev comps) ^ "." ^ name in
          if Hashtbl.mem tbl sym then Some sym else up (List.tl comps)
    in
    up (List.rev (modname :: List.rev !stack))
  in
  let resolve_value = resolve_in defs_tbl in
  let resolve_tyname = resolve_in tydefs_tbl in
  let add_occ kind loc = occs := { kind; encl = !cur; line = line loc } :: !occs in
  let add_edge target loc =
    edges :=
      {
        from_ = !cur;
        target;
        line = line loc;
        lambdas = List.rev !lam_stack;
      }
      :: !edges
  in
  let add_access sort subject loc =
    accesses :=
      {
        sort;
        subject;
        lambdas = List.rev !lam_stack;
        held = !held;
        a_encl = !cur;
        a_line = line loc;
      }
      :: !accesses
  in
  let add_lock ev loc =
    locks := { ev; l_encl = !cur; l_line = line loc } :: !locks
  in
  (* True while walking the arguments of a raiser: allocation there is
     the error path, cold by definition. *)
  let cold_ctx = ref false in
  (* Depth-0 sites run once at module init (or are static constants) —
     never hot, so only allocations under at least one lambda count. *)
  let add_alloc a_kind loc =
    if depth () > 0 && not !cold_ctx then
      allocs := { a_kind; al_encl = !cur; al_line = line loc } :: !allocs
  in
  (* Constant construction trees (notably format-string literals, which
     desugar to CamlinternalFormatBasics constructor applications) are
     statically allocated by the compiler — no runtime cost.  Array
     literals are excluded: arrays are mutable, so every evaluation
     allocates afresh. *)
  let rec is_static_const (e : expression) =
    match e.exp_desc with
    | Texp_constant _ -> true
    | Texp_construct (_, _, args) -> List.for_all is_static_const args
    | Texp_tuple es -> List.for_all is_static_const es
    | Texp_variant (_, eo) -> (
        match eo with None -> true | Some x -> is_static_const x)
    | _ -> false
  in
  let is_float_ty ty =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
    | _ -> false
  in
  let is_arrow_ty ty =
    match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false
  in
  (* The typechecker names the sugar parameter of [?(a = d)] "*opt*". *)
  let is_opt_pat (p : pattern) =
    match p.pat_desc with
    | Tpat_var (_, name) -> starts_with ~prefix:"*opt*" name.txt
    | _ -> false
  in
  let register_binders d ids =
    List.iter
      (fun id -> Hashtbl.replace binder (Ident.unique_name id) d)
      ids
  in
  (* Canonical head of a [Tconstr] type, resolving unit-local type
     names ([Pool.t] inside [parallel.ml] -> ["Parallel.Pool.t"]). *)
  let ty_head ty =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) ->
        let n = canon p in
        if String.contains n '.' then Some n
        else Some (match resolve_tyname n with Some s -> s | None -> n)
    | _ -> None
  in
  let rectype_of (ld : Types.label_description) =
    match ty_head ld.lbl_res with Some h -> h | None -> "?"
  in
  let rec subject_of (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        let u = Ident.unique_name id in
        match Hashtbl.find_opt binder u with
        | Some d when d > 0 -> Local d
        | Some _ | None -> (
            match resolve_value (Ident.name id) with
            | Some sym -> Global sym
            | None -> (
                match Hashtbl.find_opt binder u with
                | Some d -> Local d
                | None -> Unknown)))
    | Texp_ident (p, _, _) -> Global (canon p)
    | Texp_field (b, _, _) -> subject_of b
    | _ -> Unknown
  in
  (* Mutex descriptor: a field access names "<rectype>.<field>" (which
     is what the guard registry pairs with the sibling mutex), an ident
     its canonical or stamped-unique name. *)
  let lock_descr (e : expression) =
    match e.exp_desc with
    | Texp_field (_, _, ld) -> Some (rectype_of ld ^ "." ^ ld.lbl_name)
    | Texp_ident (Path.Pident id, _, _) -> (
        match resolve_value (Ident.name id) with
        | Some sym -> Some sym
        | None -> Some (Ident.unique_name id))
    | Texp_ident (p, _, _) -> Some (canon p)
    | _ -> None
  in
  let remove_held d =
    let rec go = function
      | [] -> []
      | (d', _) :: rest when d' = d -> rest
      | x :: rest -> x :: go rest
    in
    held := go !held
  in
  let rec drop n l =
    if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
  in
  (* Minimum binder depth of any variable in an index expression:
     [max_int] for constants, 0 when a global participates. *)
  let min_binder_depth e0 =
    let m = ref max_int in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
            (match e.exp_desc with
            | Texp_ident (Path.Pident id, _, _) ->
                let d =
                  match Hashtbl.find_opt binder (Ident.unique_name id) with
                  | Some d -> d
                  | None -> 0
                in
                if d < !m then m := d
            | Texp_ident _ -> m := 0
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e);
      }
    in
    it.expr it e0;
    !m
  in
  (* Mutexes unlocked anywhere inside a [~finally] thunk. *)
  let unlocks_in e0 =
    let acc = ref [] in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
            (match e.exp_desc with
            | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
              when canon p = "Stdlib.Mutex.unlock" -> (
                match nth_pos args 0 with
                | Some a -> (
                    match lock_descr a with
                    | Some d -> acc := d :: !acc
                    | None -> ())
                | None -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e);
      }
    in
    it.expr it e0;
    List.rev !acc
  in
  let maybe_capture p (e : expression) =
    if !lam_stack <> [] then
      match ty_head e.exp_type with
      | Some h when contains_sub ~sub:"Workspace" h ->
          let dep =
            match p with
            | Path.Pident id -> (
                match Hashtbl.find_opt binder (Ident.unique_name id) with
                | Some d -> d
                | None -> 0)
            | _ -> 0
          in
          captures :=
            {
              name = Path.last p;
              tyhead = h;
              depth = dep;
              c_lambdas = List.rev !lam_stack;
              c_encl = !cur;
              c_line = line e.exp_loc;
            }
            :: !captures
      | _ -> ()
  in
  (* Function-local values a literal lambda closes over: idents whose
     binder depth lies in [1, depth()] at the lambda's introduction.
     Binders introduced inside the lambda are not yet registered (the
     scan runs before the body walk), so they never count; depth-0
     binders are toplevel values, statically addressed. *)
  let captured_locals cases =
    let d0 = depth () in
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
            (match e.exp_desc with
            | Texp_ident (Path.Pident id, _, _) -> (
                match Hashtbl.find_opt binder (Ident.unique_name id) with
                | Some d when d >= 1 && d <= d0 ->
                    let n = Ident.name id in
                    if not (Hashtbl.mem seen n) then begin
                      Hashtbl.replace seen n ();
                      acc := n :: !acc
                    end
                | _ -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e);
      }
    in
    List.iter
      (fun (c : value case) ->
        Option.iter (it.expr it) c.c_guard;
        it.expr it c.c_rhs)
      cases;
    List.rev !acc
  in
  (* Classify one resolved global identifier; [subject] only matters for
     polymorphic comparisons. *)
  let global_ident name ~subject loc =
    add_edge name loc;
    if is_poly name then add_occ (Poly_compare { op = name; subject }) loc
    else if List.mem name unsafe_idents then add_occ (Unsafe_access name) loc
    else if name = "Stdlib.Printexc.print_backtrace" then
      add_occ (Exn_swallow "Printexc.print_backtrace (debugging escape)") loc
    else if is_nondet ~hashtbl_mods:!hashtbl_mods name then
      add_occ (Nondet_prim name) loc
  in
  let ident path ~subject loc =
    let name = canon path in
    if String.contains name '.' then global_ident name ~subject loc
    else
      match resolve_value name with
      | Some sym -> add_edge sym loc
      | None -> ()
  in
  let rec peel_module me =
    match me.mod_desc with
    | Tmod_constraint (m, _, _, _) -> peel_module m
    | _ -> me
  in
  let register_module name mexpr =
    match (peel_module mexpr).mod_desc with
    | Tmod_ident (p, _) ->
        Hashtbl.replace local_modules name (canon p);
        `Alias
    | Tmod_apply (f, _, _)
      when match (peel_module f).mod_desc with
           | Tmod_ident (p, _) -> List.mem (canon p) hashtbl_functors
           | _ -> false ->
        let full = prefix () ^ "." ^ name in
        hashtbl_mods := full :: !hashtbl_mods;
        Hashtbl.replace local_modules name full;
        `Structure
    | _ ->
        Hashtbl.replace local_modules name (prefix () ^ "." ^ name);
        `Structure
  in
  let swallow_cases cases =
    List.iter
      (fun c ->
        if pat_catches_all c.c_lhs then
          add_occ (Exn_swallow "\"with _ ->\" discards every exception")
            c.c_lhs.pat_loc
        else
          match pat_binder c.c_lhs with
          | Some (id, name) when uses_of_ident id c.c_rhs c.c_guard = 0 ->
              add_occ
                (Exn_swallow
                   (Printf.sprintf
                      "exception bound as %s but never consulted" name))
                c.c_lhs.pat_loc
          | _ -> ())
      cases
  in
  let head_of (fexp : expression) =
    match fexp.exp_desc with
    | Texp_ident (p, _, _) ->
        let n = canon p in
        if String.contains n '.' then Some n
        else (
          match resolve_value n with Some s -> Some s | None -> Some n)
    | _ -> None
  in
  let leaked_locks () =
    List.filter (fun (d, _) -> not (List.mem d !protected)) !held
  in
  let rec expr sub e =
    match e.exp_desc with
    | Texp_ident (p, _, _) ->
        ident p ~subject:(arrow_lhs e.exp_type) e.exp_loc;
        maybe_capture p e
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as f), args)
      when is_poly (canon p) ->
        let subject =
          match
            List.find_map
              (function
                | Asttypes.Nolabel, Some a -> Some a.exp_type | _ -> None)
              args
          with
          | Some t -> Some t
          | None -> arrow_lhs f.exp_type
        in
        global_ident (canon p) ~subject f.exp_loc;
        List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args
    | Texp_apply (f, args) -> apply sub e.exp_loc ~ret:e.exp_type f args
    | Texp_function { param; cases; _ } ->
        walk_lambda sub ~head:None ~param cases
    | Texp_setfield (b, _, ld, v) ->
        add_access
          (Field_write { rectype = rectype_of ld; field = ld.lbl_name })
          (subject_of b) e.exp_loc;
        sub.Tast_iterator.expr sub b;
        sub.Tast_iterator.expr sub v
    | Texp_field (b, _, ld) when ld.lbl_mut = Mutable ->
        add_access
          (Field_read { rectype = rectype_of ld; field = ld.lbl_name })
          (subject_of b) e.exp_loc;
        sub.Tast_iterator.expr sub b
    | Texp_let (rec_flag, vbs, body) ->
        let d = depth () in
        List.iter (fun vb -> register_binders d (pat_vars vb.vb_pat)) vbs;
        List.iter
          (fun vb ->
            (* A recursive function's reference to itself is the closure
               block, not a capture: mask its own binders to depth 0
               while walking its own right-hand side (mutually recursive
               siblings stay registered — those do capture). *)
            let own =
              if rec_flag = Asttypes.Recursive then pat_vars vb.vb_pat
              else []
            in
            register_binders 0 own;
            sub.Tast_iterator.expr sub vb.vb_expr;
            register_binders d own)
          vbs;
        sub.Tast_iterator.expr sub body
    | Texp_ifthenelse (c, t, eo) ->
        sub.Tast_iterator.expr sub c;
        let s = !held in
        sub.Tast_iterator.expr sub t;
        held := s;
        Option.iter
          (fun x ->
            sub.Tast_iterator.expr sub x;
            held := s)
          eo
    | Texp_match (scrut, cases, _) ->
        sub.Tast_iterator.expr sub scrut;
        let s = !held in
        let d = depth () in
        List.iter
          (fun c ->
            register_binders d (comp_pat_vars c.c_lhs);
            Option.iter (sub.Tast_iterator.expr sub) c.c_guard;
            sub.Tast_iterator.expr sub c.c_rhs;
            held := s)
          cases
    | Texp_try (body, cases) ->
        swallow_cases cases;
        let s = !held in
        sub.Tast_iterator.expr sub body;
        held := s;
        let d = depth () in
        List.iter
          (fun c ->
            register_binders d (pat_vars c.c_lhs);
            Option.iter (sub.Tast_iterator.expr sub) c.c_guard;
            sub.Tast_iterator.expr sub c.c_rhs;
            held := s)
          cases
    | Texp_while (c, b) ->
        let s = !held in
        sub.Tast_iterator.expr sub c;
        sub.Tast_iterator.expr sub b;
        held := s
    | Texp_for (id, _, lo, hi, _, body) ->
        sub.Tast_iterator.expr sub lo;
        sub.Tast_iterator.expr sub hi;
        register_binders (depth ()) [ id ];
        let s = !held in
        sub.Tast_iterator.expr sub body;
        held := s
    | Texp_assert (cond, _) ->
        (match leaked_locks () with
        | [] -> ()
        | leaked ->
            add_lock
              (Raise_locked { locks = List.map fst leaked; what = "assert" })
              e.exp_loc);
        sub.Tast_iterator.expr sub cond
    | Texp_letmodule (_, name, _, mexpr, _) ->
        (match name.txt with
        | Some n -> ignore (register_module n mexpr)
        | None -> ());
        Tast_iterator.default_iterator.expr sub e
    | Texp_tuple es ->
        if not (is_static_const e) then
          add_alloc
            (Box
               {
                 what = "tuple";
                 floats =
                   List.exists
                     (fun (x : expression) -> is_float_ty x.exp_type)
                     es;
               })
            e.exp_loc;
        Tast_iterator.default_iterator.expr sub e
    | Texp_construct (_, cd, (_ :: _ as cargs)) ->
        (if not (is_static_const e) then
           if cd.Types.cstr_name = "::" then add_alloc List_lit e.exp_loc
           else
             add_alloc
               (Box
                  {
                    what = cd.Types.cstr_name;
                    floats =
                      List.exists
                        (fun (x : expression) -> is_float_ty x.exp_type)
                        cargs;
                  })
               e.exp_loc);
        Tast_iterator.default_iterator.expr sub e
    | Texp_record _ ->
        add_alloc (Box { what = "record"; floats = false }) e.exp_loc;
        Tast_iterator.default_iterator.expr sub e
    | Texp_variant (_, Some _) ->
        if not (is_static_const e) then
          add_alloc (Box { what = "polymorphic variant"; floats = false })
            e.exp_loc;
        Tast_iterator.default_iterator.expr sub e
    | Texp_array (_ :: _) ->
        add_alloc Arr_lit e.exp_loc;
        Tast_iterator.default_iterator.expr sub e
    | _ -> Tast_iterator.default_iterator.expr sub e
  and walk_arg sub ~head (a : expression) =
    match a.exp_desc with
    | Texp_function { param; cases; _ } -> walk_lambda sub ~head ~param cases
    | _ -> sub.Tast_iterator.expr sub a
  and walk_args sub ~head args =
    List.iter (fun (_, a) -> Option.iter (walk_arg sub ~head) a) args
  and walk_lambda ?(chained = false) sub ~head ~param cases =
    (* One closure fact per syntactic [fun]-chain: a curried
       [fun a b -> ...] compiles to a single closure, so inner links
       walk with [~chained:true] and record nothing.  Depth-0 lambdas
       are toplevel functions — statically allocated, never a fact —
       and a lambda that closes over no function-local value is a
       constant closure, lifted to static data by closure conversion,
       so only capturing closures are recorded. *)
    (if (not chained) && depth () > 0 then
       match cases with
       | c :: _ -> (
           match captured_locals cases with
           | [] -> ()
           | captures ->
               add_alloc (Closure { captures }) c.c_lhs.pat_loc)
       | [] -> ());
    lam_stack := head :: !lam_stack;
    let saved = !held in
    let saved_float = !float_ctx in
    float_ctx := false;
    let d = depth () in
    register_binders d [ param ];
    List.iter
      (fun (c : value case) ->
        register_binders d (pat_vars c.c_lhs);
        Option.iter (sub.Tast_iterator.expr sub) c.c_guard;
        match (cases, c.c_rhs.exp_desc) with
        | [ _ ], Texp_function { param = p2; cases = c2; _ } ->
            walk_lambda ~chained:true sub ~head:None ~param:p2 c2
        | ( [ _ ],
            Texp_let
              ( _,
                vbs,
                { exp_desc = Texp_function { param = p2; cases = c2; _ }; _ }
              ) )
          when is_opt_pat c.c_lhs ->
            (* Optional-argument defaulting: the typechecker inserts
               [let a = match *opt* with ... in] between curried links.
               The compiler still builds one n-ary function for the
               whole chain, so the inner link is not a fresh closure. *)
            List.iter
              (fun vb -> register_binders d (pat_vars vb.vb_pat))
              vbs;
            List.iter (fun vb -> sub.Tast_iterator.expr sub vb.vb_expr) vbs;
            walk_lambda ~chained:true sub ~head:None ~param:p2 c2
        | _ -> sub.Tast_iterator.expr sub c.c_rhs)
      cases;
    float_ctx := saved_float;
    held := saved;
    lam_stack := List.tl !lam_stack
  and apply sub loc ~ret f args =
    let head = head_of f in
    match head with
    | Some name when List.mem name float_arith_ops ->
        sub.Tast_iterator.expr sub f;
        (* Only the root of a float expression tree boxes its result;
           nested float ops feed the parent in a register. *)
        if not !float_ctx then
          add_alloc (Box { what = "float"; floats = true }) loc;
        let saved = !float_ctx in
        float_ctx := true;
        walk_args sub ~head args;
        float_ctx := saved
    | Some "Stdlib.Mutex.lock" ->
        sub.Tast_iterator.expr sub f;
        walk_args sub ~head args;
        Option.iter
          (fun a ->
            match lock_descr a with
            | Some d ->
                held := (d, depth ()) :: !held;
                add_lock (Acquire d) loc
            | None -> ())
          (nth_pos args 0)
    | Some "Stdlib.Mutex.unlock" ->
        sub.Tast_iterator.expr sub f;
        walk_args sub ~head args;
        Option.iter
          (fun a ->
            match lock_descr a with
            | Some d ->
                remove_held d;
                add_lock (Release d) loc
            | None -> ())
          (nth_pos args 0)
    | Some "Stdlib.Mutex.protect" ->
        sub.Tast_iterator.expr sub f;
        (* Bracket semantics: the thunk runs with the mutex held and it
           is released on every exit path, so no Acquire/Release events
           are emitted — nothing can leak. *)
        let descr =
          match nth_pos args 0 with Some a -> lock_descr a | None -> None
        in
        (match (descr, args) with
        | Some d, (_, m) :: rest ->
            Option.iter (sub.Tast_iterator.expr sub) m;
            held := (d, depth ()) :: !held;
            List.iter (fun (_, a) -> Option.iter (walk_arg sub ~head) a) rest;
            remove_held d
        | _ -> walk_args sub ~head args)
    | Some "Stdlib.Fun.protect" ->
        sub.Tast_iterator.expr sub f;
        let releases =
          match
            List.find_map
              (function
                | Asttypes.Labelled "finally", Some a -> Some a | _ -> None)
              args
          with
          | Some fin -> unlocks_in fin
          | None -> []
        in
        protected := releases @ !protected;
        walk_args sub ~head args;
        protected := drop (List.length releases) !protected;
        (* The finally thunk ran inside its own saved/restored lambda
           scope, so the unlocks it performs must be applied here for
           the code following the bracket. *)
        List.iter remove_held releases
    | Some name when List.mem name raiser_idents ->
        sub.Tast_iterator.expr sub f;
        (* Arguments of a raiser are the error path: the exception
           payload (typically a [sprintf]) allocates only on failure,
           never in the steady state, so A9 ignores it. *)
        let saved_cold = !cold_ctx in
        cold_ctx := true;
        walk_args sub ~head args;
        cold_ctx := saved_cold;
        (match leaked_locks () with
        | [] -> ()
        | leaked ->
            add_lock
              (Raise_locked
                 {
                   locks = List.map fst leaked;
                   what = snd (split_last name);
                 })
              loc)
    | _ ->
        sub.Tast_iterator.expr sub f;
        let saved_float = !float_ctx in
        float_ctx := false;
        walk_args sub ~head args;
        float_ctx := saved_float;
        Option.iter
          (fun name ->
            if name = ref_read_op then
              Option.iter
                (fun a -> add_access (Ref_read "!") (subject_of a) loc)
                (nth_pos args 0);
            if List.mem name alloc_idents then add_alloc (Alloc_call name) loc;
            (* An application whose result is still an arrow, or with an
               omitted argument, builds a closure over the supplied
               prefix. *)
            if
              is_arrow_ty ret || List.exists (fun (_, a) -> a = None) args
            then add_alloc (Partial_app name) loc;
            match classify_mut ~hashtbl_mods:!hashtbl_mods name with
            | None -> ()
            | Some (Mut_ref op) ->
                Option.iter
                  (fun a -> add_access (Ref_write op) (subject_of a) loc)
                  (nth_pos args 0)
            | Some (Mut_indexed (spos, ipos)) ->
                Option.iter
                  (fun a ->
                    let idx_depth =
                      match nth_pos args ipos with
                      | Some ix -> min_binder_depth ix
                      | None -> 0
                    in
                    add_access (Array_write { idx_depth }) (subject_of a) loc)
                  (nth_pos args spos)
            | Some (Mut_container (op, pos, write)) ->
                Option.iter
                  (fun a ->
                    let field =
                      match a.exp_desc with
                      | Texp_field (_, _, ld) ->
                          Some (rectype_of ld, ld.lbl_name)
                      | _ -> None
                    in
                    add_access
                      (Container_op { op; write; field })
                      (subject_of a) loc)
                  (nth_pos args pos))
          head
  in
  let value_bindings sub vbs =
    (* Pre-register the whole group so mutually recursive bindings
       resolve each other. *)
    let syms =
      List.map
        (fun vb ->
          register_binders 0 (pat_vars vb.vb_pat);
          match binding_name vb.vb_pat with
          | Some n ->
              let sym = prefix () ^ "." ^ n in
              add_def sym;
              Some sym
          | None -> None)
        vbs
    in
    List.iter2
      (fun vb sym ->
        let saved = !cur in
        cur := (match sym with Some s -> s | None -> prefix () ^ ".(init)");
        sub.Tast_iterator.expr sub vb.vb_expr;
        cur := saved)
      vbs syms
  in
  let module_binding sub mb =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    match register_module name mb.mb_expr with
    | `Alias -> ()
    | `Structure ->
        stack := name :: !stack;
        sub.Tast_iterator.module_expr sub mb.mb_expr;
        stack := List.tl !stack
  in
  let structure_item sub item =
    match item.str_desc with
    | Tstr_value (_, vbs) -> value_bindings sub vbs
    | Tstr_module mb -> module_binding sub mb
    | Tstr_recmodule mbs -> List.iter (module_binding sub) mbs
    | Tstr_type (_, decls) ->
        List.iter
          (fun d ->
            let full = prefix () ^ "." ^ Ident.name d.typ_id in
            Hashtbl.replace tydefs_tbl full ();
            tydecls := (full, d.typ_type) :: !tydecls)
          decls
    | Tstr_primitive vd -> add_def (prefix () ^ "." ^ Ident.name vd.val_id)
    | Tstr_eval (e, _) ->
        let saved = !cur in
        cur := prefix () ^ ".(init)";
        sub.Tast_iterator.expr sub e;
        cur := saved
    | _ -> Tast_iterator.default_iterator.structure_item sub item
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.structure it str;
  {
    modname;
    source;
    defs = List.rev !defs;
    edges = List.rev !edges;
    occs = List.rev !occs;
    tydecls = List.rev !tydecls;
    hashtbl_mods = List.rev !hashtbl_mods;
    accesses = List.rev !accesses;
    locks = List.rev !locks;
    captures = List.rev !captures;
    allocs = List.rev !allocs;
  }
