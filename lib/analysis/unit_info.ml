(* Single-unit Typedtree walk: facts only, no policy.

   For one .cmt implementation this records everything the rules later
   judge: polymorphic-comparison uses with the instantiated subject
   type, unsafe-access and nondeterministic-primitive identifiers,
   exception-swallowing handlers, the value-level call edges that feed
   the inter-module call graph, and the type declarations that feed the
   immediacy registry.  Scoping (which directories a rule covers) and
   the allowlist are applied downstream in {!Rules} — the walk itself is
   identical for library code and for the deliberately-bad fixture
   corpus.

   Resolution notes.  The typechecker stores fully resolved paths, so
   [open] never hides an identifier's origin; what does hide it are
   local module aliases ([module E = Routing.Engine]) and references to
   values of the unit itself ([Pident]).  The walk therefore tracks a
   per-unit alias map and the set of toplevel values defined so far
   (OCaml values cannot be forward-referenced, so "so far" is exact up
   to mutually recursive bindings, which are pre-registered per
   group). *)

open Typedtree

type kind =
  | Poly_compare of { op : string; subject : Types.type_expr option }
      (* [op] canonical ("Stdlib.=", "Stdlib.List.mem"); [subject] the
         instantiated type being compared (first argument), [None] when
         no arrow type was recoverable. *)
  | Unsafe_access of string
  | Nondet_prim of string
  | Exn_swallow of string

type occurrence = { kind : kind; encl : string; line : int }
type edge = { from_ : string; target : string; line : int }

type t = {
  modname : string;
  source : string;
  defs : string list;
  edges : edge list;
  occs : occurrence list;
  tydecls : (string * Types.type_declaration) list;
  hashtbl_mods : string list;
}

(* --- identifier tables (Stdlib facts, not policy) ------------------- *)

let poly_operators =
  [
    "Stdlib.compare"; "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>="; "Stdlib.min"; "Stdlib.max";
    "Stdlib.Hashtbl.hash"; "Stdlib.Hashtbl.seeded_hash";
  ]

(* Containers whose membership/association defaults to polymorphic
   equality on the element/key. *)
let poly_containers =
  [
    "Stdlib.List.mem"; "Stdlib.List.assoc"; "Stdlib.List.assoc_opt";
    "Stdlib.List.mem_assoc"; "Stdlib.List.remove_assoc"; "Stdlib.Array.mem";
  ]

let is_poly name =
  List.mem name poly_operators || List.mem name poly_containers

let unsafe_idents =
  [ "Stdlib.Array.unsafe_get"; "Stdlib.Array.unsafe_set"; "Stdlib.Obj.magic" ]

let nondet_exact =
  [ "Stdlib.Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Stdlib.Domain.self" ]

let unordered_table_ops =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let hashtbl_functors =
  [
    "Stdlib.Hashtbl.Make"; "Stdlib.Hashtbl.MakeSeeded";
    "Stdlib.MoreLabels.Hashtbl.Make";
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let split_last name =
  match String.rindex_opt name '.' with
  | None -> ("", name)
  | Some i ->
      ( String.sub name 0 i,
        String.sub name (i + 1) (String.length name - i - 1) )

let is_nondet ~hashtbl_mods name =
  starts_with ~prefix:"Stdlib.Random." name
  || List.mem name nondet_exact
  ||
  let base, op = split_last name in
  List.mem op unordered_table_ops
  && (base = "Stdlib.Hashtbl" || List.mem base hashtbl_mods)

(* --- helpers -------------------------------------------------------- *)

let arrow_lhs ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, t1, _, _) -> Some t1
  | _ -> None

let rec binding_name (p : pattern) =
  match p.pat_desc with
  | Tpat_var (_, name) -> Some name.txt
  | Tpat_alias (_, _, name) -> Some name.txt
  | Tpat_tuple ps -> List.find_map binding_name ps
  | Tpat_construct (_, _, ps, _) -> List.find_map binding_name ps
  | Tpat_record (fields, _) ->
      List.find_map (fun (_, _, p) -> binding_name p) fields
  | _ -> None

let rec pat_catches_all (p : pattern) =
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_or (a, b, _) -> pat_catches_all a || pat_catches_all b
  | _ -> false

let rec pat_binder (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, name) -> Some (id, name.txt)
  | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, name) -> Some (id, name.txt)
  | Tpat_or (a, _, _) -> pat_binder a
  | _ -> None

let uses_of_ident id expr0 guard =
  let count = ref 0 in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident i, _, _) when Ident.same i id ->
              incr count
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it expr0;
  (match guard with Some g -> it.expr it g | None -> ());
  !count

(* --- the walk ------------------------------------------------------- *)

let walk ~modname ~source str =
  let modname = Syms.canon_string modname in
  let defs_tbl = Hashtbl.create 64 in
  let defs = ref [] in
  let edges = ref [] in
  let occs = ref [] in
  let tydecls = ref [] in
  let hashtbl_mods = ref [] in
  let local_modules : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  let prefix () = String.concat "." (modname :: List.rev !stack) in
  let cur = ref (modname ^ ".(init)") in
  let line (loc : Location.t) = loc.loc_start.pos_lnum in
  let add_def sym =
    if not (Hashtbl.mem defs_tbl sym) then begin
      Hashtbl.replace defs_tbl sym ();
      defs := sym :: !defs
    end
  in
  let resolve_local head = Hashtbl.find_opt local_modules head in
  let canon p = Syms.canon_path ~resolve:resolve_local p in
  (* A [Pident] value reference: resolve against the unit's own
     definitions, innermost module first. *)
  let resolve_value name =
    let rec up = function
      | [] -> None
      | comps ->
          let sym = String.concat "." (List.rev comps) ^ "." ^ name in
          if Hashtbl.mem defs_tbl sym then Some sym
          else up (List.tl comps)
    in
    up (List.rev (modname :: List.rev !stack))
  in
  let add_occ kind loc = occs := { kind; encl = !cur; line = line loc } :: !occs in
  let add_edge target loc =
    edges := { from_ = !cur; target; line = line loc } :: !edges
  in
  (* Classify one resolved global identifier; [subject] only matters for
     polymorphic comparisons. *)
  let global_ident name ~subject loc =
    add_edge name loc;
    if is_poly name then add_occ (Poly_compare { op = name; subject }) loc
    else if List.mem name unsafe_idents then add_occ (Unsafe_access name) loc
    else if name = "Stdlib.Printexc.print_backtrace" then
      add_occ (Exn_swallow "Printexc.print_backtrace (debugging escape)") loc
    else if is_nondet ~hashtbl_mods:!hashtbl_mods name then
      add_occ (Nondet_prim name) loc
  in
  let ident path ~subject loc =
    let name = canon path in
    if String.contains name '.' then global_ident name ~subject loc
    else
      match resolve_value name with
      | Some sym -> add_edge sym loc
      | None -> ()
  in
  let rec peel_module me =
    match me.mod_desc with
    | Tmod_constraint (m, _, _, _) -> peel_module m
    | _ -> me
  in
  let register_module name mexpr =
    match (peel_module mexpr).mod_desc with
    | Tmod_ident (p, _) ->
        Hashtbl.replace local_modules name (canon p);
        `Alias
    | Tmod_apply (f, _, _)
      when match (peel_module f).mod_desc with
           | Tmod_ident (p, _) -> List.mem (canon p) hashtbl_functors
           | _ -> false ->
        let full = prefix () ^ "." ^ name in
        hashtbl_mods := full :: !hashtbl_mods;
        Hashtbl.replace local_modules name full;
        `Structure
    | _ ->
        Hashtbl.replace local_modules name (prefix () ^ "." ^ name);
        `Structure
  in
  let swallow_cases cases =
    List.iter
      (fun c ->
        if pat_catches_all c.c_lhs then
          add_occ (Exn_swallow "\"with _ ->\" discards every exception")
            c.c_lhs.pat_loc
        else
          match pat_binder c.c_lhs with
          | Some (id, name) when uses_of_ident id c.c_rhs c.c_guard = 0 ->
              add_occ
                (Exn_swallow
                   (Printf.sprintf
                      "exception bound as %s but never consulted" name))
                c.c_lhs.pat_loc
          | _ -> ())
      cases
  in
  let expr sub e =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> ident p ~subject:(arrow_lhs e.exp_type) e.exp_loc
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as f), args)
      when is_poly (canon p) ->
        let subject =
          match
            List.find_map
              (function
                | Asttypes.Nolabel, Some a -> Some a.exp_type | _ -> None)
              args
          with
          | Some t -> Some t
          | None -> arrow_lhs f.exp_type
        in
        global_ident (canon p) ~subject f.exp_loc;
        List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args
    | Texp_try (_body, cases) ->
        swallow_cases cases;
        Tast_iterator.default_iterator.expr sub e
    | Texp_letmodule (_, name, _, mexpr, _) ->
        (match name.txt with
        | Some n -> ignore (register_module n mexpr)
        | None -> ());
        Tast_iterator.default_iterator.expr sub e
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let value_bindings sub vbs =
    (* Pre-register the whole group so mutually recursive bindings
       resolve each other. *)
    let syms =
      List.map
        (fun vb ->
          match binding_name vb.vb_pat with
          | Some n ->
              let sym = prefix () ^ "." ^ n in
              add_def sym;
              Some sym
          | None -> None)
        vbs
    in
    List.iter2
      (fun vb sym ->
        let saved = !cur in
        cur := (match sym with Some s -> s | None -> prefix () ^ ".(init)");
        sub.Tast_iterator.expr sub vb.vb_expr;
        cur := saved)
      vbs syms
  in
  let module_binding sub mb =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    match register_module name mb.mb_expr with
    | `Alias -> ()
    | `Structure ->
        stack := name :: !stack;
        sub.Tast_iterator.module_expr sub mb.mb_expr;
        stack := List.tl !stack
  in
  let structure_item sub item =
    match item.str_desc with
    | Tstr_value (_, vbs) -> value_bindings sub vbs
    | Tstr_module mb -> module_binding sub mb
    | Tstr_recmodule mbs -> List.iter (module_binding sub) mbs
    | Tstr_type (_, decls) ->
        List.iter
          (fun d ->
            tydecls :=
              (prefix () ^ "." ^ Ident.name d.typ_id, d.typ_type) :: !tydecls)
          decls
    | Tstr_primitive vd -> add_def (prefix () ^ "." ^ Ident.name vd.val_id)
    | Tstr_eval (e, _) ->
        let saved = !cur in
        cur := prefix () ^ ".(init)";
        sub.Tast_iterator.expr sub e;
        cur := saved
    | _ -> Tast_iterator.default_iterator.structure_item sub item
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.structure it str;
  {
    modname;
    source;
    defs = List.rev !defs;
    edges = List.rev !edges;
    occs = List.rev !occs;
    tydecls = List.rev !tydecls;
    hashtbl_mods = List.rev !hashtbl_mods;
  }
