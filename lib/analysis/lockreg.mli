(** Per-type field-guard inference for the lock-discipline rule.

    A record type declaring a [Stdlib.Mutex.t] field is inferred to
    guard its racy siblings with it: every [mutable] field plus every
    field holding an inherently mutable container (Hashtbl — including
    local [Hashtbl.Make] instances —, Buffer, Queue, Stack, Bytes,
    array).  Types whose mutex does not guard all such siblings need an
    allowlist entry stating the real invariant. *)

type info = { mutex_field : string; guarded : string list }

type t

val build : Unit_info.t list -> t
(** Collect every mutex-carrying record type of the scanned tree, keyed
    by canonical type name (e.g. ["Prelude.Shard_cache.shard"]). *)

val guard : t -> rectype:string -> field:string -> string option
(** [guard t ~rectype ~field] is [Some mutex_field] when [field] of
    [rectype] is inferred to be guarded by that sibling mutex. *)

val guarded_types : t -> (string * info) list
(** All inferred guards, sorted by type name — for tests and docs. *)
