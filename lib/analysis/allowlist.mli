(** The one checked-in escape hatch for the static rules.

    Line format: [<rule-id> <canonical-symbol> -- <reason>], ['#']
    comments.  The reason is mandatory.  A symbol entry covers
    everything below it; for the taint rule an allowlisted symbol is
    trusted entirely (its primitive uses accepted, traversal cut), so
    entries should stay narrow. *)

type entry = { rule : string; target : string; reason : string; line : int }
type t = { entries : entry list }

val empty : t
val parse_string : string -> (t, string) result
val load : string -> (t, string) result
val find : t -> rule:string -> string -> entry option
val permits : t -> rule:string -> string -> bool
