(** Type-immediacy oracle: is polymorphic comparison harmless on this
    type?

    Built from the type declarations of every scanned unit (keyed by
    canonical path), so abbreviations ([type rank = int]) and
    all-constant variants resolve without rebuilding typing
    environments.  Unknown paths (stdlib [option], [list], [string],
    ...) are conservatively boxed. *)

type verdict =
  | Immediate  (** int-like: polymorphic comparison is fine *)
  | Float  (** exact float comparison — rule A4 territory *)
  | Boxed of string  (** boxed structural comparison (descriptor) — A1 *)
  | Polymorphic
      (** never instantiated: an alias like [let equal = (=)] — A1 *)

type t

val build : Unit_info.t list -> t
val classify : ?depth:int -> t -> Types.type_expr -> verdict
val describe : t -> Types.type_expr -> string
