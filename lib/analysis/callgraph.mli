(** Inter-module, value-level call graph over canonical symbols.

    Over-approximates calls (any global reference is an edge), which is
    the safe direction for taint; calls through function values received
    as arguments are invisible and covered by the runtime determinism
    replays instead (DESIGN.md §8). *)

type t

val build : Unit_info.t list -> t

val successors : t -> string -> (string * int) list
(** Deterministic first-seen order; line of the first reference. *)

val source_of : t -> string -> string option
val nodes : t -> string list
(** All defined symbols, sorted. *)

type reach = {
  parent : (string, string option) Hashtbl.t;
  order : string list;
}

val reachable :
  t -> roots:string list -> cut:(string -> bool) -> reach
(** BFS from every defined symbol matching a root spec; [cut] prunes
    trusted (allowlisted) symbols entirely. *)

val chain : reach -> string -> string list
(** Root-to-symbol path for diagnostics. *)
