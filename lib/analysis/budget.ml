(* The per-symbol allocation budget for the hot-path rule (A9).

   Like the allowlist, every budgeted hot-path allocation lives in one
   reviewed file (by default tools/astlint/alloc_budget.txt) so the
   complete set of "allocations we pay for on purpose" is auditable at
   a glance.  Line format:

     <canonical-symbol>  <count>  -- <reason>

   e.g.

     Routing.Batch.compute  3  -- per-call outcome record + two
       group descriptors; amortized over 63 attacker lanes

   '#' starts a comment; the reason after "--" is mandatory.  The
   count is the number of static allocation sites the symbol is
   allowed, not a dynamic word budget (the dynamic side is measured by
   `sbgp check --alloc`).  Entries are exact-or-prefix like allowlist
   targets ("Routing.Staged.*" style specs via {!Syms.spec_matches});
   the rules flag entries whose symbol no longer has any reachable
   allocation (stale) and entries whose count exceeds what the code
   actually does (loose), so the manifest ratchets down with the
   code. *)

type entry = { target : string; count : int; reason : string; line : int }
type t = { entries : entry list }

let empty = { entries = [] }
let v entries = { entries }

let parse_line ~line s =
  let s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let s = String.trim s in
  if s = "" then Ok None
  else
    let body, reason =
      let n = String.length s in
      let rec find i =
        if i + 1 >= n then None
        else if s.[i] = '-' && s.[i + 1] = '-' then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i ->
          ( String.trim (String.sub s 0 i),
            String.trim (String.sub s (i + 2) (n - i - 2)) )
      | None -> (s, "")
    in
    match
      String.split_on_char ' ' body |> List.filter (fun w -> w <> "")
    with
    | [ target; count ] when reason <> "" -> (
        match int_of_string_opt count with
        | Some c when c > 0 ->
            Ok (Some { target = Syms.canon_string target; count = c; reason; line })
        | Some _ ->
            Error
              (Printf.sprintf "line %d: count must be positive (omit the \
                               entry for a zero budget)" line)
        | None ->
            Error
              (Printf.sprintf "line %d: count %S is not an integer" line
                 count))
    | [ _; _ ] -> Error (Printf.sprintf "line %d: missing -- reason" line)
    | _ ->
        Error
          (Printf.sprintf "line %d: expected `<symbol> <count> -- <reason>`"
             line)

let parse_string contents =
  let lines = String.split_on_char '\n' contents in
  let entries, errors, _ =
    List.fold_left
      (fun (acc, errs, n) l ->
        match parse_line ~line:n l with
        | Ok None -> (acc, errs, n + 1)
        | Ok (Some e) -> (e :: acc, errs, n + 1)
        | Error m -> (acc, m :: errs, n + 1))
      ([], [], 1) lines
  in
  match errors with
  | [] -> Ok { entries = List.rev entries }
  | errs -> Error (String.concat "; " (List.rev errs))

let load path =
  match open_in path with
  | ic ->
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      parse_string contents
  | exception Sys_error m -> Error m

let find t sym =
  List.find_opt (fun e -> Syms.spec_matches ~spec:e.target sym) t.entries
