(* Per-type field-guard inference for the lock-discipline rule (A7).

   A record type that declares a [Stdlib.Mutex.t] field is taken to
   guard its racy siblings with it: every [mutable] field, plus every
   field holding an inherently mutable container (Hashtbl — including
   local [Hashtbl.Make] instances —, Buffer, Queue, Stack, Bytes,
   array).  The registry maps the canonical record-type name collected
   by {!Unit_info} to the mutex field and the guarded-field set;
   {!Rules} then demands that any access to a guarded field happens
   either with "<rectype>.<mutex-field>" statically held or inside a
   configured lock bracket ([Shard_cache.with_shard]-style helpers).

   Convention inference, deliberately: a type with two mutexes, or one
   whose mutex guards only part of its state, needs an allowlist entry
   with the real invariant spelled out in the reason. *)

type info = { mutex_field : string; guarded : string list }
type t = { recs : (string, info) Hashtbl.t }

let container_heads =
  [
    "Stdlib.Hashtbl.t"; "Stdlib.Buffer.t"; "Stdlib.Queue.t";
    "Stdlib.Stack.t"; "Stdlib.Bytes.t"; "bytes"; "array";
  ]

let head_of ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (Syms.canon_string (Path.name p))
  | _ -> None

let is_container ~hashtbl_mods head =
  List.mem head container_heads
  ||
  (* A local functor instance's [t]: match the module part against the
     last component of any collected Hashtbl.Make instance name. *)
  let modpart, base = Unit_info.split_last head in
  base = "t"
  && List.exists
       (fun m -> snd (Unit_info.split_last m) = modpart)
       hashtbl_mods

let build units =
  let recs = Hashtbl.create 16 in
  List.iter
    (fun (u : Unit_info.t) ->
      List.iter
        (fun (name, (decl : Types.type_declaration)) ->
          match decl.type_kind with
          | Types.Type_record (lds, _) -> (
              let mutex =
                List.find_opt
                  (fun (ld : Types.label_declaration) ->
                    head_of ld.ld_type = Some "Stdlib.Mutex.t")
                  lds
              in
              match mutex with
              | None -> ()
              | Some mx ->
                  let guarded =
                    List.filter_map
                      (fun (ld : Types.label_declaration) ->
                        if Ident.same ld.ld_id mx.ld_id then None
                        else if
                          ld.ld_mutable = Asttypes.Mutable
                          ||
                          match head_of ld.ld_type with
                          | Some h ->
                              is_container
                                ~hashtbl_mods:u.Unit_info.hashtbl_mods h
                          | None -> false
                        then Some (Ident.name ld.ld_id)
                        else None)
                      lds
                  in
                  if guarded <> [] then
                    Hashtbl.replace recs name
                      { mutex_field = Ident.name mx.ld_id; guarded })
          | _ -> ())
        u.Unit_info.tydecls)
    units;
  { recs }

let guard t ~rectype ~field =
  match Hashtbl.find_opt t.recs rectype with
  | Some info when List.mem field info.guarded -> Some info.mutex_field
  | _ -> None

let guarded_types t =
  Hashtbl.fold (fun name info acc -> (name, info) :: acc) t.recs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
