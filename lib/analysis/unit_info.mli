(** Single-unit Typedtree walk: facts only, no policy.

    One record per compilation unit, collected in a single
    {!Tast_iterator} pass: polymorphic-comparison uses with their
    instantiated subject type, unsafe-access and nondeterministic
    primitives, exception-swallowing handlers, value-level call edges
    and type declarations — plus the domain-safety facts the A6–A8
    rules judge: mutable-state accesses with their enclosing-lambda
    context and statically-held mutexes, lock events, and
    workspace-typed values referenced inside closures.  Scoping and
    allowlisting happen in {!Rules}. *)

type kind =
  | Poly_compare of { op : string; subject : Types.type_expr option }
      (** [op] is canonical (["Stdlib.="], ["Stdlib.List.mem"]);
          [subject] the instantiated first-argument type, [None] when no
          arrow type was recoverable. *)
  | Unsafe_access of string
      (** ["Stdlib.Array.unsafe_get"/"unsafe_set"/"Stdlib.Obj.magic"] *)
  | Nondet_prim of string
      (** unordered [Hashtbl] iteration (including local [Hashtbl.Make]
          instances), [Random.*], wall-clock reads, [Domain.self] *)
  | Exn_swallow of string
      (** catch-all or bound-but-unused exception handler, or a
          [Printexc.print_backtrace] debugging escape *)

type occurrence = {
  kind : kind;
  encl : string;  (** canonical enclosing toplevel symbol *)
  line : int;
}

type edge = {
  from_ : string;
  target : string;
  line : int;
  lambdas : string option list;
      (** enclosing literal lambdas, outermost first; [Some callee] when
          the lambda was a direct argument of [callee], [None] otherwise.
          Lets the rules find call edges that originate inside a
          [Parallel.map (fun item -> ...)] closure. *)
}

(** Who owns the mutated cell. *)
type subject =
  | Local of int
      (** bound at this lambda depth; [0] is the unit toplevel *)
  | Global of string  (** canonical toplevel symbol *)
  | Unknown

type sort =
  | Ref_write of string  (** [":="], ["incr"], ["decr"] *)
  | Ref_read of string
      (** a [!] dereference — recorded so the cache-purity rule (A10)
          can see module-level mutable state flowing into cached
          results *)
  | Field_write of { rectype : string; field : string }
  | Field_read of { rectype : string; field : string }
      (** reads are only recorded for [mutable] fields *)
  | Array_write of { idx_depth : int }
      (** single-cell write; [idx_depth] is the minimum binder depth of
          any variable in the index expression ([max_int] for constant
          indices) — the disjoint-index exemption compares it with the
          parallel-closure depth *)
  | Container_op of {
      op : string;  (** e.g. ["Hashtbl.replace"], ["Buffer.clear"] *)
      write : bool;
      field : (string * string) option;
          (** [(rectype, field)] when the container is a record field *)
    }

type access = {
  sort : sort;
  subject : subject;
  lambdas : string option list;  (** as in {!edge} *)
  held : (string * int) list;
      (** mutex descriptors statically held at the site, with the
          lambda depth at which each was acquired *)
  a_encl : string;
  a_line : int;
}

type lock_event =
  | Acquire of string
  | Release of string
  | Raise_locked of { locks : string list; what : string }
      (** an explicit raiser (or assert) runs while holding [locks]
          with no enclosing [Fun.protect]/[Mutex.protect] release *)

type lock_occ = { ev : lock_event; l_encl : string; l_line : int }

(** One heap-allocation fact for the hot-path rule (A9).  Sites at
    lambda depth 0 (module init, static constants) are never recorded;
    a curried [fun a b -> ...] records one {!Closure}. *)
type alloc_kind =
  | Closure of { captures : string list }
      (** source names of enclosing-function locals the closure body
          references (toplevel values excluded — statically addressed) *)
  | Box of { what : string; floats : bool }
      (** a boxed construction: ["tuple"], ["record"],
          ["polymorphic variant"], a constructor name ("Some", ...) or
          ["float"] for the root of a float-arithmetic tree; [floats]
          when a float participates *)
  | Arr_lit  (** non-empty [\[| ... |\]] literal *)
  | List_lit  (** a [::] cons cell *)
  | Alloc_call of string
      (** canonical name of a known allocating primitive
          ([Array.make], [Buffer.add_*], [Printf.sprintf], ...) *)
  | Partial_app of string
      (** application returning an arrow (or with an omitted optional
          argument): builds a closure over the supplied prefix *)

type alloc = { a_kind : alloc_kind; al_encl : string; al_line : int }

val describe_alloc : alloc_kind -> string
(** Human-readable site description for findings and reports. *)

type capture = {
  name : string;  (** source name of the referenced value *)
  tyhead : string;  (** canonical type head, e.g.
                        ["Routing.Engine.Workspace.t"] *)
  depth : int;  (** binder depth of the value (0 = toplevel) *)
  c_lambdas : string option list;
  c_encl : string;
  c_line : int;
}

type t = {
  modname : string;  (** canonical unit name, e.g. ["Routing.Engine"] *)
  source : string;  (** e.g. ["lib/routing/engine.ml"] *)
  defs : string list;  (** canonical toplevel value symbols, in order *)
  edges : edge list;  (** value-level references, callee resolved *)
  occs : occurrence list;
  tydecls : (string * Types.type_declaration) list;
  hashtbl_mods : string list;
      (** canonical names of local [Hashtbl.Make] instances *)
  accesses : access list;
  locks : lock_occ list;
  captures : capture list;
      (** workspace-typed idents referenced under at least one lambda *)
  allocs : alloc list;
      (** heap-allocation sites under at least one lambda, for A9 *)
}

val split_last : string -> string * string
(** ["A.B.c"] -> [("A.B", "c")]; no dot -> [("", name)]. *)

val is_nondet : hashtbl_mods:string list -> string -> bool
(** Whether a canonical identifier is a nondeterministic primitive —
    exported so the taint rule applies the same judgement to call-graph
    edge targets. *)

val walk : modname:string -> source:string -> Typedtree.structure -> t
