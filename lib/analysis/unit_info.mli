(** Single-unit Typedtree walk: facts only, no policy.

    One record per compilation unit, collected in a single
    {!Tast_iterator} pass: polymorphic-comparison uses with their
    instantiated subject type, unsafe-access and nondeterministic
    primitives, exception-swallowing handlers, value-level call edges
    and type declarations.  Scoping and allowlisting happen in
    {!Rules}. *)

type kind =
  | Poly_compare of { op : string; subject : Types.type_expr option }
      (** [op] is canonical (["Stdlib.="], ["Stdlib.List.mem"]);
          [subject] the instantiated first-argument type, [None] when no
          arrow type was recoverable. *)
  | Unsafe_access of string
      (** ["Stdlib.Array.unsafe_get"/"unsafe_set"/"Stdlib.Obj.magic"] *)
  | Nondet_prim of string
      (** unordered [Hashtbl] iteration (including local [Hashtbl.Make]
          instances), [Random.*], wall-clock reads, [Domain.self] *)
  | Exn_swallow of string
      (** catch-all or bound-but-unused exception handler, or a
          [Printexc.print_backtrace] debugging escape *)

type occurrence = {
  kind : kind;
  encl : string;  (** canonical enclosing toplevel symbol *)
  line : int;
}

type edge = { from_ : string; target : string; line : int }

type t = {
  modname : string;  (** canonical unit name, e.g. ["Routing.Engine"] *)
  source : string;  (** e.g. ["lib/routing/engine.ml"] *)
  defs : string list;  (** canonical toplevel value symbols, in order *)
  edges : edge list;  (** value-level references, callee resolved *)
  occs : occurrence list;
  tydecls : (string * Types.type_declaration) list;
  hashtbl_mods : string list;
      (** canonical names of local [Hashtbl.Make] instances *)
}

val is_nondet : hashtbl_mods:string list -> string -> bool
(** Whether a canonical identifier is a nondeterministic primitive —
    exported so the taint rule applies the same judgement to call-graph
    edge targets. *)

val walk : modname:string -> source:string -> Typedtree.structure -> t
