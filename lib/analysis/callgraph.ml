(* Inter-module, value-level call graph.

   Nodes are canonical toplevel symbols ("Metric.H_metric.h_metric"),
   edges every global reference collected by the unit walks.  The graph
   over-approximates calls (referencing a function counts, whether or
   not it is ever applied) which is the right direction for a taint
   analysis; what it cannot see is a call through a function {e value}
   received as an argument — such higher-order flows must be covered by
   the runtime determinism replays instead (DESIGN.md §8). *)

type t = {
  succ : (string, (string * int) list) Hashtbl.t;
      (* symbol -> (target, line) in first-seen order *)
  defined : (string, string) Hashtbl.t; (* symbol -> source file *)
}

let build units =
  let succ = Hashtbl.create 1024 in
  let defined = Hashtbl.create 1024 in
  List.iter
    (fun u ->
      List.iter
        (fun d -> Hashtbl.replace defined d u.Unit_info.source)
        u.Unit_info.defs;
      List.iter
        (fun e ->
          let cur =
            match Hashtbl.find_opt succ e.Unit_info.from_ with
            | Some l -> l
            | None -> []
          in
          if not (List.mem_assoc e.Unit_info.target cur) then
            Hashtbl.replace succ e.Unit_info.from_
              ((e.Unit_info.target, e.Unit_info.line) :: cur))
        u.Unit_info.edges)
    units;
  (* Store successor lists in deterministic first-seen order. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) succ [] in
  List.iter
    (fun k -> Hashtbl.replace succ k (List.rev (Hashtbl.find succ k)))
    keys;
  { succ; defined }

let successors t sym =
  match Hashtbl.find_opt t.succ sym with Some l -> l | None -> []

let source_of t sym = Hashtbl.find_opt t.defined sym

let nodes t =
  let all = Hashtbl.fold (fun k _ acc -> k :: acc) t.defined [] in
  List.sort String.compare all

(* Breadth-first reachability from [roots] (symbol specs, see
   {!Syms.spec_matches}).  [cut] prunes trusted symbols.  Returns the
   reached set with parent pointers for path reconstruction. *)
type reach = {
  parent : (string, string option) Hashtbl.t; (* None for roots *)
  order : string list; (* visit order, deterministic *)
}

let reachable t ~roots ~cut =
  let parent = Hashtbl.create 256 in
  let order = ref [] in
  let queue = Queue.create () in
  List.iter
    (fun sym ->
      if
        List.exists (fun spec -> Syms.spec_matches ~spec sym) roots
        && (not (cut sym))
        && not (Hashtbl.mem parent sym)
      then begin
        Hashtbl.replace parent sym None;
        order := sym :: !order;
        Queue.push sym queue
      end)
    (nodes t);
  while not (Queue.is_empty queue) do
    let sym = Queue.pop queue in
    List.iter
      (fun (target, _) ->
        if
          Hashtbl.mem t.defined target
          && (not (Hashtbl.mem parent target))
          && not (cut target)
        then begin
          Hashtbl.replace parent target (Some sym);
          order := target :: !order;
          Queue.push target queue
        end)
      (successors t sym)
  done;
  { parent; order = List.rev !order }

let chain r sym =
  let rec up acc sym =
    match Hashtbl.find_opt r.parent sym with
    | Some (Some p) -> up (sym :: acc) p
    | Some None -> sym :: acc
    | None -> sym :: acc
  in
  up [] sym
