(* Type-immediacy oracle over the whole scanned tree.

   Polymorphic comparison is only harmless on immediate types (ints and
   all-constant variants): no boxing, no deep traversal, no
   field-irrelevance surprises.  The typechecker already computed
   immediacy for every declaration and stored it in the .cmt
   ([type_immediate]); this registry collects all declarations keyed by
   canonical path so a subject type like [Routing.Policy.t] or a local
   abbreviation [type rank = int] can be resolved without rebuilding
   typing environments (no Envaux / Load_path needed — exactly why the
   analyzer can run on bare artifacts). *)

type verdict =
  | Immediate  (* int-like: polymorphic comparison is fine *)
  | Float  (* exact float comparison: rule A4 territory *)
  | Boxed of string  (* structural comparison on a boxed type: A1 *)
  | Polymorphic
      (* the comparison was never instantiated — an alias like
         [let equal = (=)] or a polymorphic helper: A1 *)

type t = { decls : (string, Types.type_declaration) Hashtbl.t }

let build units =
  let decls = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter
        (fun (name, d) -> Hashtbl.replace decls name d)
        u.Unit_info.tydecls)
    units;
  { decls }

let predef_immediate p =
  Path.same p Predef.path_int || Path.same p Predef.path_bool
  || Path.same p Predef.path_char
  || Path.same p Predef.path_unit

(* Short human descriptor of a type head for diagnostics. *)
let rec describe t ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      let base = Syms.canon_string (Path.name p) in
      (match args with
      | [] -> base
      | a :: _ -> (
          match Types.get_desc a with
          | Types.Tconstr (q, [], _) ->
              Syms.canon_string (Path.name q) ^ " " ^ base
          | _ -> base))
  | Types.Ttuple _ -> "tuple"
  | Types.Tarrow _ -> "function"
  | Types.Tvar _ | Types.Tunivar _ -> "'a (never instantiated)"
  | Types.Tpoly (ty, _) -> describe t ty
  | Types.Tvariant _ -> "polymorphic variant"
  | Types.Tobject _ -> "object"
  | Types.Tpackage _ -> "first-class module"
  | Types.Tlink ty | Types.Tsubst (ty, _) -> describe t ty
  | Types.Tfield _ | Types.Tnil -> "row"

let rec classify ?(depth = 0) t ty =
  if depth > 32 then Boxed "recursive abbreviation"
  else
    match Types.get_desc ty with
    | Types.Tvar _ | Types.Tunivar _ -> Polymorphic
    | Types.Tpoly (ty, _) -> classify ~depth:(depth + 1) t ty
    | Types.Tconstr (p, _, _) ->
        if predef_immediate p then Immediate
        else if Path.same p Predef.path_float then Float
        else (
          match
            Hashtbl.find_opt t.decls (Syms.canon_string (Path.name p))
          with
          | Some d -> classify_decl ~depth:(depth + 1) t d ty
          | None -> Boxed (describe t ty))
    | _ -> Boxed (describe t ty)

and classify_decl ~depth t d ty =
  match d.Types.type_immediate with
  | Type_immediacy.Always | Type_immediacy.Always_on_64bits -> Immediate
  | Type_immediacy.Unknown -> (
      match d.Types.type_manifest with
      | Some m -> (
          (* An abbreviation: resolve through the manifest.  Type
             parameters are not substituted — good enough for verdicts,
             since immediacy of the uses below never depends on them in
             this codebase. *)
          match classify ~depth t m with
          | Polymorphic -> Boxed (describe t ty)
          | v -> v)
      | None -> Boxed (describe t ty))
