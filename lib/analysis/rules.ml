(* The rule catalogue (policy layer).

   A1 ast/poly-compare      polymorphic compare/equal/hash — including
                            aliases, partial applications and the
                            List.mem/assoc family — on a non-immediate
                            type in a hot-path module.
   A2 ast/determinism-taint nondeterministic primitive (unordered
                            Hashtbl iteration, Random outside lib/rng,
                            wall-clock reads, Domain.self) either
                            reachable in the call graph from a
                            determinism root or written directly in a
                            hot-path module.
   A3 ast/unsafe-access     Array.unsafe_get/set outside the vetted
                            kernel modules; Obj.magic anywhere.
   A4 ast/float-compare     polymorphic =/compare instantiated at float
                            (metric values) — exact float comparison.
   A5 ast/exn-swallow       catch-all or bound-but-ignored exception
                            handlers; Printexc.print_backtrace escapes.

   Every exemption must come from the checked-in allowlist file; the
   diagnostics embed "source:line:" so tests and editors can jump to
   the site. *)

module D = Check.Diagnostic

let rule_poly = "ast/poly-compare"
let rule_taint = "ast/determinism-taint"
let rule_unsafe = "ast/unsafe-access"
let rule_float = "ast/float-compare"
let rule_swallow = "ast/exn-swallow"
let rule_missing = "ast/cmt-missing"
let rule_unreadable = "ast/cmt-unreadable"
let rule_allowlist = "ast/allowlist"

type config = {
  hot_scopes : string list;  (* A1/A4 and the direct A2 scan *)
  swallow_scopes : string list;  (* A5 *)
  unsafe_scopes : string list;  (* A3 *)
  kernel_modules : string list;  (* A3: Array.unsafe_* permitted here *)
  taint_roots : string list;  (* A2 call-graph roots (symbol specs) *)
  rng_scopes : string list;  (* Random.* permitted here *)
  allow : Allowlist.t;
}

let default ?(allow = Allowlist.empty) () =
  {
    hot_scopes =
      [ "lib/routing"; "lib/metric"; "lib/parallel";
        "lib/prelude/shard_cache.ml" ];
    swallow_scopes = [ "lib"; "bin" ];
    unsafe_scopes = [ "lib"; "bin" ];
    kernel_modules =
      [ "Routing.Engine"; "Routing.Batch"; "Routing.Reach"; "Routing.Staged";
        "Topology.Graph.Csr" ];
    taint_roots =
      [ "Routing.Engine.compute"; "Routing.Reference.*";
        "Metric.H_metric.*"; "Check.Kernel.*" ];
    rng_scopes = [ "lib/rng" ];
    allow;
  }

(* Intermediate findings so the final report can be sorted by
   (source, line, rule) with a real integer line compare. *)
type finding = { source : string; line : int; rule : string; text : string }

let strip_stdlib op =
  if String.length op > 7 && String.sub op 0 7 = "Stdlib." then
    String.sub op 7 (String.length op - 7)
  else op

let allowed cfg ~rule sym = Allowlist.permits cfg.allow ~rule sym

let in_kernel cfg sym =
  List.exists (fun spec -> Syms.spec_matches ~spec sym) cfg.kernel_modules

(* --- A1 / A4 -------------------------------------------------------- *)

let poly_findings cfg reg (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:cfg.hot_scopes u.source) then []
  else
    List.filter_map
      (fun (o : Unit_info.occurrence) ->
        match o.kind with
        | Unit_info.Poly_compare { op; subject } -> (
            let verdict =
              match subject with
              | Some ty -> Typereg.classify reg ty
              | None -> Typereg.Polymorphic
            in
            let op = strip_stdlib op in
            match verdict with
            | Typereg.Immediate -> None
            | Typereg.Float ->
                if allowed cfg ~rule:rule_float o.encl then None
                else
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_float;
                      text =
                        Printf.sprintf
                          "exact float comparison `%s` (in %s); compare \
                           against explicit bounds or allowlist the site"
                          op o.encl;
                    }
            | Typereg.Boxed desc ->
                if allowed cfg ~rule:rule_poly o.encl then None
                else
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_poly;
                      text =
                        Printf.sprintf
                          "polymorphic `%s` on %s (in %s); use a \
                           monomorphic comparator"
                          op desc o.encl;
                    }
            | Typereg.Polymorphic ->
                if allowed cfg ~rule:rule_poly o.encl then None
                else
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_poly;
                      text =
                        Printf.sprintf
                          "`%s` kept polymorphic (alias or higher-order \
                           use, in %s); it will box and structurally \
                           compare whatever it meets"
                          op o.encl;
                    })
        | _ -> None)
      u.occs

(* --- A2 ------------------------------------------------------------- *)

let taint_findings cfg graph units =
  let hashtbl_mods =
    List.concat_map (fun u -> u.Unit_info.hashtbl_mods) units
  in
  let rng_sym sym =
    match Callgraph.source_of graph sym with
    | Some src -> Syms.in_scope ~scopes:cfg.rng_scopes src
    | None -> false
  in
  (* (a) primitives written directly in determinism-critical modules *)
  let direct =
    List.concat_map
      (fun (u : Unit_info.t) ->
        if not (Syms.in_scope ~scopes:cfg.hot_scopes u.source) then []
        else
          List.filter_map
            (fun (o : Unit_info.occurrence) ->
              match o.kind with
              | Unit_info.Nondet_prim name
                when (not (allowed cfg ~rule:rule_taint o.encl))
                     && not
                          (Syms.in_scope ~scopes:cfg.rng_scopes u.source) ->
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_taint;
                      text =
                        Printf.sprintf
                          "nondeterministic primitive %s in \
                           determinism-critical module (in %s)"
                          (strip_stdlib name) o.encl;
                    }
              | _ -> None)
            u.occs)
      units
  in
  (* (b) primitives reachable from the determinism roots *)
  let reach =
    Callgraph.reachable graph ~roots:cfg.taint_roots
      ~cut:(allowed cfg ~rule:rule_taint)
  in
  let seen = Hashtbl.create 32 in
  let via_graph =
    List.concat_map
      (fun sym ->
        if rng_sym sym then []
        else
          List.filter_map
            (fun (target, line) ->
              if
                Unit_info.is_nondet ~hashtbl_mods target
                && (not (Syms.spec_matches ~spec:"Stdlib.Random.*" target
                         && rng_sym sym))
                && not (Hashtbl.mem seen (sym, target))
              then begin
                Hashtbl.replace seen (sym, target) ();
                let source =
                  match Callgraph.source_of graph sym with
                  | Some s -> s
                  | None -> "<unknown>"
                in
                Some
                  {
                    source;
                    line;
                    rule = rule_taint;
                    text =
                      Printf.sprintf
                        "determinism root reaches %s via %s"
                        (strip_stdlib target)
                        (String.concat " -> " (Callgraph.chain reach sym));
                  }
              end
              else None)
            (Callgraph.successors graph sym))
      reach.Callgraph.order
  in
  direct @ via_graph

(* --- A3 ------------------------------------------------------------- *)

let unsafe_findings cfg (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:cfg.unsafe_scopes u.source) then []
  else
    List.filter_map
      (fun (o : Unit_info.occurrence) ->
        match o.kind with
        | Unit_info.Unsafe_access name ->
            let magic = name = "Stdlib.Obj.magic" in
            if
              ((not magic) && in_kernel cfg o.encl)
              || allowed cfg ~rule:rule_unsafe o.encl
            then None
            else
              Some
                {
                  source = u.source;
                  line = o.line;
                  rule = rule_unsafe;
                  text =
                    (if magic then
                       Printf.sprintf
                         "Obj.magic (in %s) is never justified here" o.encl
                     else
                       Printf.sprintf
                         "%s outside the vetted kernel modules (in %s)"
                         (strip_stdlib name) o.encl);
                }
        | _ -> None)
      u.occs

(* --- A5 ------------------------------------------------------------- *)

let swallow_findings cfg (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:cfg.swallow_scopes u.source) then []
  else
    List.filter_map
      (fun (o : Unit_info.occurrence) ->
        match o.kind with
        | Unit_info.Exn_swallow detail
          when not (allowed cfg ~rule:rule_swallow o.encl) ->
            Some
              {
                source = u.source;
                line = o.line;
                rule = rule_swallow;
                text = Printf.sprintf "%s (in %s)" detail o.encl;
              }
        | _ -> None)
      u.occs

(* --- driver --------------------------------------------------------- *)

let compare_finding a b =
  let c = String.compare a.source b.source in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.text b.text

let to_diag f =
  D.error ~rule:f.rule (Printf.sprintf "%s:%d: %s" f.source f.line f.text)

let apply cfg reg graph units =
  let findings =
    List.concat_map (poly_findings cfg reg) units
    @ taint_findings cfg graph units
    @ List.concat_map (unsafe_findings cfg) units
    @ List.concat_map (swallow_findings cfg) units
  in
  List.map to_diag (List.sort_uniq compare_finding findings)
