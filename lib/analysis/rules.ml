(* The rule catalogue (policy layer).

   A1 ast/poly-compare      polymorphic compare/equal/hash — including
                            aliases, partial applications and the
                            List.mem/assoc family — on a non-immediate
                            type in a hot-path module.
   A2 ast/determinism-taint nondeterministic primitive (unordered
                            Hashtbl iteration, Random outside lib/rng,
                            wall-clock reads, Domain.self) either
                            reachable in the call graph from a
                            determinism root or written directly in a
                            hot-path module.
   A3 ast/unsafe-access     Array.unsafe_get/set outside the vetted
                            kernel modules; Obj.magic anywhere.
   A4 ast/float-compare     polymorphic =/compare instantiated at float
                            (metric values) — exact float comparison.
   A5 ast/exn-swallow       catch-all or bound-but-ignored exception
                            handlers; Printexc.print_backtrace escapes.
   A6 ast/domain-escape     mutable state created outside a closure but
                            written inside one that runs on pool
                            domains — directly (the write sits under a
                            Parallel.map/Domain.spawn lambda) or via
                            call-graph reachability from such a lambda —
                            without a mutex held, an enclosing lock
                            bracket, or a disjoint per-item index.
   A7 ast/lock-discipline   a field inferred to be guarded by a sibling
                            mutex (Lockreg) touched without that mutex
                            statically held; raising while holding a
                            lock without a protect bracket; a lock with
                            no unlock anywhere in its function.
   A8 ast/workspace-epoch   an epoch-stamped Workspace value crossing a
                            parallel-closure boundary instead of being
                            fetched via Workspace.local () inside.
   A9 ast/hot-alloc         a heap-allocation site (closure, boxed
                            tuple/record/variant/float, list cons,
                            array literal, allocating primitive,
                            partial application) in a function
                            reachable from a vetted kernel entry point,
                            beyond the symbol's budget in the checked
                            alloc_budget.txt manifest.
   A10 ast/cache-pure       a function that publishes to or reads from
                            the metric cache depends on something other
                            than its (graph, deployment) arguments:
                            module-level mutable state read, or a
                            nondeterministic primitive, reachable in
                            the call graph.
   --  ast/allowlist-stale  an allowlist entry that suppressed nothing
                            this run: the code it vetted has moved.
   --  ast/alloc-budget-stale  an alloc_budget.txt entry whose symbol
                            no longer has that many reachable
                            allocation sites: ratchet it down.

   Every exemption must come from the checked-in allowlist file; the
   diagnostics embed "source:line:" so tests and editors can jump to
   the site. *)

module D = Check.Diagnostic

let rule_poly = "ast/poly-compare"
let rule_taint = "ast/determinism-taint"
let rule_unsafe = "ast/unsafe-access"
let rule_float = "ast/float-compare"
let rule_swallow = "ast/exn-swallow"
let rule_escape = "ast/domain-escape"
let rule_lock = "ast/lock-discipline"
let rule_epoch = "ast/workspace-epoch"
let rule_alloc = "ast/hot-alloc"
let rule_pure = "ast/cache-pure"
let rule_stale = "ast/allowlist-stale"
let rule_budget_stale = "ast/alloc-budget-stale"
let rule_missing = "ast/cmt-missing"
let rule_unreadable = "ast/cmt-unreadable"
let rule_allowlist = "ast/allowlist"

type config = {
  hot_scopes : string list;  (* A1/A4 and the direct A2 scan *)
  swallow_scopes : string list;  (* A5 *)
  unsafe_scopes : string list;  (* A3 *)
  kernel_modules : string list;  (* A3: Array.unsafe_* permitted here *)
  taint_roots : string list;  (* A2 call-graph roots (symbol specs) *)
  rng_scopes : string list;  (* Random.* permitted here *)
  domain_scopes : string list;  (* A6/A7/A8 *)
  par_entries : string list;
      (* callees whose literal-lambda argument runs on other domains *)
  lock_brackets : string list;
      (* callees whose literal-lambda argument runs under a lock *)
  workspace_specs : string list;  (* A8: epoch-stamped workspace types *)
  hot_entries : string list;
      (* A9: vetted kernel entry points (symbol specs); every
         allocation site call-graph-reachable from one is judged *)
  cache_api : string list;
      (* A10: the cache publish/read API; a symbol referencing one is
         cache-coupled and must be pure in all but (graph, deployment) *)
  cache_impl : string list;
      (* A10: the cache implementation itself — its own state reads are
         its job, so it neither couples nor propagates *)
  budget : Budget.t;  (* A9 per-symbol static site budgets *)
  allow : Allowlist.t;
}

let default ?(allow = Allowlist.empty) ?(budget = Budget.empty) () =
  {
    hot_scopes =
      [ "lib/routing"; "lib/metric"; "lib/parallel";
        "lib/prelude/shard_cache.ml" ];
    swallow_scopes = [ "lib"; "bin" ];
    unsafe_scopes = [ "lib"; "bin" ];
    kernel_modules =
      [ "Routing.Engine"; "Routing.Batch"; "Routing.Reach"; "Routing.Staged";
        "Topology.Graph.Csr"; "Prelude.Bucket_queue" ];
    taint_roots =
      [ "Routing.Engine.compute"; "Routing.Reference.*";
        "Metric.H_metric.*"; "Check.Kernel.*" ];
    rng_scopes = [ "lib/rng" ];
    domain_scopes = [ "lib"; "bin" ];
    par_entries =
      [ "Parallel.map"; "Parallel.map_reduce"; "Parallel.Pool.map";
        "Stdlib.Domain.spawn" ];
    lock_brackets =
      [ "Prelude.Shard_cache.with_shard"; "Stdlib.Mutex.protect" ];
    workspace_specs =
      [ "Routing.Engine.Workspace.t"; "Routing.Batch.Workspace.t";
        "Routing.Reference.Workspace.t" ];
    hot_entries =
      [ "Routing.Engine.compute"; "Routing.Batch.compute";
        "Routing.Reach.compute"; "Routing.Staged.*"; "Topology.Graph.Csr.*" ];
    cache_api =
      [ "Metric.H_metric.Cache.find"; "Metric.H_metric.Cache.store";
        "Metric.H_metric.Cache.carry" ];
    cache_impl = [ "Metric.H_metric.Cache.*" ];
    budget;
    allow;
  }

(* Structured findings: sortable by (source, line, rule) with a real
   integer line compare, and carrying the offending symbol so the
   --json output can annotate CI without re-parsing messages. *)
type finding = {
  source : string;
  line : int;
  rule : string;
  symbol : string;
  text : string;
}

let strip_stdlib op =
  if String.length op > 7 && String.sub op 0 7 = "Stdlib." then
    String.sub op 7 (String.length op - 7)
  else op

(* Allowlist queries are routed through a context that records which
   entries actually suppressed (or cut) something — the leftovers are
   the ast/allowlist-stale findings. *)
type ctx = { cfg : config; used : (string * string, unit) Hashtbl.t }

let allowed ctx ~rule sym =
  match Allowlist.find ctx.cfg.allow ~rule sym with
  | Some e ->
      Hashtbl.replace ctx.used (e.Allowlist.rule, e.Allowlist.target) ();
      true
  | None -> false

let in_kernel ctx sym =
  List.exists (fun spec -> Syms.spec_matches ~spec sym) ctx.cfg.kernel_modules

(* --- A1 / A4 -------------------------------------------------------- *)

let poly_findings ctx reg (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:ctx.cfg.hot_scopes u.source) then []
  else
    List.filter_map
      (fun (o : Unit_info.occurrence) ->
        match o.kind with
        | Unit_info.Poly_compare { op; subject } -> (
            let verdict =
              match subject with
              | Some ty -> Typereg.classify reg ty
              | None -> Typereg.Polymorphic
            in
            let op = strip_stdlib op in
            match verdict with
            | Typereg.Immediate -> None
            | Typereg.Float ->
                if allowed ctx ~rule:rule_float o.encl then None
                else
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_float;
                      symbol = o.encl;
                      text =
                        Printf.sprintf
                          "exact float comparison `%s` (in %s); compare \
                           against explicit bounds or allowlist the site"
                          op o.encl;
                    }
            | Typereg.Boxed desc ->
                if allowed ctx ~rule:rule_poly o.encl then None
                else
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_poly;
                      symbol = o.encl;
                      text =
                        Printf.sprintf
                          "polymorphic `%s` on %s (in %s); use a \
                           monomorphic comparator"
                          op desc o.encl;
                    }
            | Typereg.Polymorphic ->
                if allowed ctx ~rule:rule_poly o.encl then None
                else
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_poly;
                      symbol = o.encl;
                      text =
                        Printf.sprintf
                          "`%s` kept polymorphic (alias or higher-order \
                           use, in %s); it will box and structurally \
                           compare whatever it meets"
                          op o.encl;
                    })
        | _ -> None)
      u.occs

(* --- A2 ------------------------------------------------------------- *)

let taint_findings ctx graph units =
  let hashtbl_mods =
    List.concat_map (fun u -> u.Unit_info.hashtbl_mods) units
  in
  let rng_sym sym =
    match Callgraph.source_of graph sym with
    | Some src -> Syms.in_scope ~scopes:ctx.cfg.rng_scopes src
    | None -> false
  in
  (* (a) primitives written directly in determinism-critical modules *)
  let direct =
    List.concat_map
      (fun (u : Unit_info.t) ->
        if not (Syms.in_scope ~scopes:ctx.cfg.hot_scopes u.source) then []
        else
          List.filter_map
            (fun (o : Unit_info.occurrence) ->
              match o.kind with
              | Unit_info.Nondet_prim name
                when (not (allowed ctx ~rule:rule_taint o.encl))
                     && not
                          (Syms.in_scope ~scopes:ctx.cfg.rng_scopes u.source)
                ->
                  Some
                    {
                      source = u.source;
                      line = o.line;
                      rule = rule_taint;
                      symbol = o.encl;
                      text =
                        Printf.sprintf
                          "nondeterministic primitive %s in \
                           determinism-critical module (in %s)"
                          (strip_stdlib name) o.encl;
                    }
              | _ -> None)
            u.occs)
      units
  in
  (* (b) primitives reachable from the determinism roots *)
  let reach =
    Callgraph.reachable graph ~roots:ctx.cfg.taint_roots
      ~cut:(allowed ctx ~rule:rule_taint)
  in
  let seen = Hashtbl.create 32 in
  let via_graph =
    List.concat_map
      (fun sym ->
        if rng_sym sym then []
        else
          List.filter_map
            (fun (target, line) ->
              if
                Unit_info.is_nondet ~hashtbl_mods target
                && (not (Syms.spec_matches ~spec:"Stdlib.Random.*" target
                         && rng_sym sym))
                && not (Hashtbl.mem seen (sym, target))
              then begin
                Hashtbl.replace seen (sym, target) ();
                let source =
                  match Callgraph.source_of graph sym with
                  | Some s -> s
                  | None -> "<unknown>"
                in
                Some
                  {
                    source;
                    line;
                    rule = rule_taint;
                    symbol = sym;
                    text =
                      Printf.sprintf
                        "determinism root reaches %s via %s"
                        (strip_stdlib target)
                        (String.concat " -> " (Callgraph.chain reach sym));
                  }
              end
              else None)
            (Callgraph.successors graph sym))
      reach.Callgraph.order
  in
  direct @ via_graph

(* --- A3 ------------------------------------------------------------- *)

let unsafe_findings ctx (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:ctx.cfg.unsafe_scopes u.source) then []
  else
    List.filter_map
      (fun (o : Unit_info.occurrence) ->
        match o.kind with
        | Unit_info.Unsafe_access name ->
            let magic = name = "Stdlib.Obj.magic" in
            if
              ((not magic) && in_kernel ctx o.encl)
              || allowed ctx ~rule:rule_unsafe o.encl
            then None
            else
              Some
                {
                  source = u.source;
                  line = o.line;
                  rule = rule_unsafe;
                  symbol = o.encl;
                  text =
                    (if magic then
                       Printf.sprintf
                         "Obj.magic (in %s) is never justified here" o.encl
                     else
                       Printf.sprintf
                         "%s outside the vetted kernel modules (in %s)"
                         (strip_stdlib name) o.encl);
                }
        | _ -> None)
      u.occs

(* --- A5 ------------------------------------------------------------- *)

let swallow_findings ctx (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:ctx.cfg.swallow_scopes u.source) then []
  else
    List.filter_map
      (fun (o : Unit_info.occurrence) ->
        match o.kind with
        | Unit_info.Exn_swallow detail
          when not (allowed ctx ~rule:rule_swallow o.encl) ->
            Some
              {
                source = u.source;
                line = o.line;
                rule = rule_swallow;
                symbol = o.encl;
                text = Printf.sprintf "%s (in %s)" detail o.encl;
              }
        | _ -> None)
      u.occs

(* --- A6 ------------------------------------------------------------- *)

(* 1-based position (outermost-first) of the first enclosing lambda
   that is a direct argument of a parallel entry point. *)
let par_pos ctx lambdas =
  let hit h =
    List.exists (fun spec -> Syms.spec_matches ~spec h) ctx.cfg.par_entries
  in
  let rec go i = function
    | [] -> None
    | Some h :: _ when hit h -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 1 lambdas

(* Is any enclosing lambda strictly deeper than [after] the argument of
   a configured lock bracket?  [after = 0] means "anywhere". *)
let bracketed ctx ~after lambdas =
  let hit h =
    List.exists (fun spec -> Syms.spec_matches ~spec h) ctx.cfg.lock_brackets
  in
  let rec go i = function
    | [] -> false
    | Some h :: rest -> (i > after && hit h) || go (i + 1) rest
    | None :: rest -> go (i + 1) rest
  in
  go 1 lambdas

let is_write (s : Unit_info.sort) =
  match s with
  | Unit_info.Ref_write _ | Unit_info.Field_write _ | Unit_info.Array_write _
    ->
      true
  | Unit_info.Container_op { write; _ } -> write
  | Unit_info.Field_read _ | Unit_info.Ref_read _ -> false

let access_desc (a : Unit_info.access) =
  let sortd =
    match a.Unit_info.sort with
    | Unit_info.Ref_write op -> Printf.sprintf "ref write (`%s`)" op
    | Unit_info.Ref_read op -> Printf.sprintf "ref read (`%s`)" op
    | Unit_info.Field_write { rectype; field } ->
        Printf.sprintf "write to mutable field %s.%s" rectype field
    | Unit_info.Field_read { rectype; field } ->
        Printf.sprintf "read of mutable field %s.%s" rectype field
    | Unit_info.Array_write _ -> "array-cell write"
    | Unit_info.Container_op { op; _ } -> Printf.sprintf "`%s`" op
  in
  match a.Unit_info.subject with
  | Unit_info.Global s -> Printf.sprintf "%s on global %s" sortd s
  | Unit_info.Local _ ->
      Printf.sprintf "%s on state captured from an outer scope" sortd
  | Unit_info.Unknown -> sortd

(* (a) writes syntactically inside a parallel closure *)
let escape_direct ctx (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:ctx.cfg.domain_scopes u.source) then []
  else
    List.filter_map
      (fun (a : Unit_info.access) ->
        match par_pos ctx a.lambdas with
        | None -> None
        | Some p ->
            let captured =
              match a.subject with
              | Unit_info.Local d -> d < p
              | Unit_info.Global _ -> true
              | Unit_info.Unknown -> false
            in
            let disjoint =
              match a.sort with
              | Unit_info.Array_write { idx_depth } -> idx_depth >= p
              | _ -> false
            in
            let guarded =
              List.exists (fun (_, d) -> d >= p) a.held
              || bracketed ctx ~after:p a.lambdas
            in
            if
              captured && is_write a.sort && (not disjoint) && (not guarded)
              && not (allowed ctx ~rule:rule_escape a.a_encl)
            then
              Some
                {
                  source = u.source;
                  line = a.a_line;
                  rule = rule_escape;
                  symbol = a.a_encl;
                  text =
                    Printf.sprintf
                      "%s inside a parallel closure (in %s); mediate with \
                       a mutex, Atomic, Domain.DLS, or a disjoint per-item \
                       index"
                      (access_desc a) a.a_encl;
                }
            else None)
      u.accesses

(* (b) unguarded writes to global state in functions reachable from a
   parallel closure via the call graph *)
let escape_reach ctx graph units =
  let origin = Hashtbl.create 32 in
  List.iter
    (fun (u : Unit_info.t) ->
      if Syms.in_scope ~scopes:ctx.cfg.domain_scopes u.source then
        List.iter
          (fun (e : Unit_info.edge) ->
            match par_pos ctx e.lambdas with
            | Some _ when not (Hashtbl.mem origin e.target) ->
                Hashtbl.replace origin e.target e.from_
            | _ -> ())
          u.edges)
    units;
  let roots =
    Hashtbl.fold (fun k _ acc -> k :: acc) origin []
    |> List.sort String.compare
  in
  if roots = [] then []
  else begin
    let reach =
      Callgraph.reachable graph ~roots ~cut:(allowed ctx ~rule:rule_escape)
    in
    let by_encl = Hashtbl.create 128 in
    List.iter
      (fun (u : Unit_info.t) ->
        List.iter
          (fun (a : Unit_info.access) ->
            let cur =
              match Hashtbl.find_opt by_encl a.a_encl with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace by_encl a.a_encl ((u.source, a) :: cur))
          u.accesses)
      units;
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun sym ->
        let accs =
          match Hashtbl.find_opt by_encl sym with
          | Some l -> List.rev l
          | None -> []
        in
        List.filter_map
          (fun (source, (a : Unit_info.access)) ->
            let global_state =
              match a.subject with
              | Unit_info.Global _ | Unit_info.Local 0 -> true
              | _ -> false
            in
            if
              global_state && is_write a.sort && a.held = []
              && (not (bracketed ctx ~after:0 a.lambdas))
              (* writes directly under a parallel closure are covered by
                 the direct scan above *)
              && par_pos ctx a.lambdas = None
              && not (Hashtbl.mem seen (sym, a.a_line))
            then begin
              Hashtbl.replace seen (sym, a.a_line) ();
              let chain = Callgraph.chain reach sym in
              let par_encl =
                match chain with
                | root :: _ -> (
                    match Hashtbl.find_opt origin root with
                    | Some e -> e
                    | None -> root)
                | [] -> sym
              in
              Some
                {
                  source;
                  line = a.a_line;
                  rule = rule_escape;
                  symbol = sym;
                  text =
                    Printf.sprintf
                      "%s, reachable from a parallel closure in %s via %s; \
                       mediate with a mutex, Atomic or Domain.DLS"
                      (access_desc a) par_encl
                      (String.concat " -> " chain);
                }
            end
            else None)
          accs)
      reach.Callgraph.order
  end

(* --- A7 ------------------------------------------------------------- *)

let lock_findings ctx lockreg (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:ctx.cfg.domain_scopes u.source) then []
  else begin
    let unguarded =
      List.filter_map
        (fun (a : Unit_info.access) ->
          let finfo =
            match a.sort with
            | Unit_info.Field_write { rectype; field } ->
                Some (rectype, field, true)
            | Unit_info.Field_read { rectype; field } ->
                Some (rectype, field, false)
            | Unit_info.Container_op { field = Some (rectype, field); write; _ }
              ->
                Some (rectype, field, write)
            | _ -> None
          in
          match finfo with
          | None -> None
          | Some (rectype, field, write) -> (
              match Lockreg.guard lockreg ~rectype ~field with
              | None -> None
              | Some mutex_field ->
                  let descr = rectype ^ "." ^ mutex_field in
                  let guarded =
                    List.exists (fun (d, _) -> d = descr) a.held
                    || bracketed ctx ~after:0 a.lambdas
                  in
                  if guarded || allowed ctx ~rule:rule_lock a.a_encl then None
                  else
                    Some
                      {
                        source = u.source;
                        line = a.a_line;
                        rule = rule_lock;
                        symbol = a.a_encl;
                        text =
                          Printf.sprintf
                            "%s %s.%s without holding %s (in %s)"
                            (if write then "write to" else "read of")
                            rectype field descr a.a_encl;
                      }))
        u.accesses
    in
    let raises =
      List.filter_map
        (fun (l : Unit_info.lock_occ) ->
          match l.ev with
          | Unit_info.Raise_locked { locks; what }
            when not (allowed ctx ~rule:rule_lock l.l_encl) ->
              Some
                {
                  source = u.source;
                  line = l.l_line;
                  rule = rule_lock;
                  symbol = l.l_encl;
                  text =
                    Printf.sprintf
                      "`%s` while holding %s (in %s): the lock leaks on \
                       this exception path — use Mutex.protect or \
                       Fun.protect ~finally"
                      what
                      (String.concat ", " locks)
                      l.l_encl;
                }
          | _ -> None)
        u.locks
    in
    let pairs = Hashtbl.create 8 in
    List.iter
      (fun (l : Unit_info.lock_occ) ->
        let acqs, rels =
          match Hashtbl.find_opt pairs l.l_encl with
          | Some v -> v
          | None -> ([], [])
        in
        match l.ev with
        | Unit_info.Acquire d ->
            Hashtbl.replace pairs l.l_encl ((d, l.l_line) :: acqs, rels)
        | Unit_info.Release d ->
            Hashtbl.replace pairs l.l_encl (acqs, d :: rels)
        | Unit_info.Raise_locked _ -> ())
      u.locks;
    let leaks =
      Hashtbl.fold
        (fun encl (acqs, rels) acc ->
          if allowed ctx ~rule:rule_lock encl then acc
          else
            List.fold_left
              (fun acc (d, ln) ->
                if List.mem d rels then acc
                else
                  {
                    source = u.source;
                    line = ln;
                    rule = rule_lock;
                    symbol = encl;
                    text =
                      Printf.sprintf "%s locked but never unlocked in %s" d
                        encl;
                  }
                  :: acc)
              acc (List.rev acqs))
        pairs []
    in
    unguarded @ raises @ leaks
  end

(* --- A8 ------------------------------------------------------------- *)

let epoch_findings ctx (u : Unit_info.t) =
  if not (Syms.in_scope ~scopes:ctx.cfg.domain_scopes u.source) then []
  else
    List.filter_map
      (fun (c : Unit_info.capture) ->
        if
          not
            (List.exists
               (fun spec -> Syms.spec_matches ~spec c.tyhead)
               ctx.cfg.workspace_specs)
        then None
        else
          match par_pos ctx c.c_lambdas with
          | Some p when c.depth < p ->
              if allowed ctx ~rule:rule_epoch c.c_encl then None
              else
                Some
                  {
                    source = u.source;
                    line = c.c_line;
                    rule = rule_epoch;
                    symbol = c.c_encl;
                    text =
                      Printf.sprintf
                        "workspace `%s` (%s) crosses a parallel-closure \
                         boundary (in %s); fetch the domain's own with \
                         Workspace.local () inside the closure"
                        c.name c.tyhead c.c_encl;
                  }
          | _ -> None)
      u.captures

(* --- A9 ------------------------------------------------------------- *)

(* Every allocation site in a function call-graph-reachable from a hot
   entry point counts against that function's budget (default 0; the
   checked-in manifest grants positive budgets with reasons).  One
   finding per over-budget symbol, anchored at its first site, so a
   kernel that sprouts ten closures reads as one diagnosis, not ten.
   The manifest is kept honest by [budget_stale_findings] below. *)
let describe_sites sites =
  let max_shown = 4 in
  let shown = List.filteri (fun i _ -> i < max_shown) sites in
  let rest = List.length sites - List.length shown in
  String.concat ", "
    (List.map
       (fun (a : Unit_info.alloc) ->
         Printf.sprintf "%s (line %d)"
           (Unit_info.describe_alloc a.a_kind)
           a.al_line)
       shown)
  ^ if rest > 0 then Printf.sprintf " and %d more" rest else ""

let alloc_findings ctx graph units =
  let by_encl = Hashtbl.create 128 in
  List.iter
    (fun (u : Unit_info.t) ->
      List.iter
        (fun (a : Unit_info.alloc) ->
          let cur =
            match Hashtbl.find_opt by_encl a.al_encl with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace by_encl a.al_encl ((u.source, a) :: cur))
        u.allocs)
    units;
  let reach =
    Callgraph.reachable graph ~roots:ctx.cfg.hot_entries
      ~cut:(allowed ctx ~rule:rule_alloc)
  in
  (* Actual reachable-site count per manifest entry, for the ratchet. *)
  let entry_actual : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let findings =
    List.filter_map
      (fun sym ->
        match Hashtbl.find_opt by_encl sym with
        | None -> None
        | Some rev_sites ->
            let sites = List.rev_map snd rev_sites in
            let source =
              match rev_sites with (s, _) :: _ -> s | [] -> "<unknown>"
            in
            let n = List.length sites in
            let granted =
              match Budget.find ctx.cfg.budget sym with
              | Some e ->
                  Hashtbl.replace entry_actual e.Budget.target
                    ((match Hashtbl.find_opt entry_actual e.Budget.target with
                     | Some c -> c
                     | None -> 0)
                    + n);
                  e.Budget.count
              | None -> 0
            in
            if n <= granted then None
            else
              let first =
                List.fold_left
                  (fun m (a : Unit_info.alloc) -> min m a.al_line)
                  max_int sites
              in
              Some
                {
                  source;
                  line = first;
                  rule = rule_alloc;
                  symbol = sym;
                  text =
                    Printf.sprintf
                      "%d hot-path allocation site(s) in %s (budget %d), \
                       reachable via %s: %s; hoist/unbox them or budget \
                       them in alloc_budget.txt"
                      n sym granted
                      (String.concat " -> " (Callgraph.chain reach sym))
                      (describe_sites sites);
                })
      reach.Callgraph.order
  in
  (findings, entry_actual)

let budget_stale_findings ctx ~budget_source entry_actual =
  List.filter_map
    (fun (e : Budget.entry) ->
      match Hashtbl.find_opt entry_actual e.target with
      | None | Some 0 ->
          Some
            {
              source = budget_source;
              line = e.line;
              rule = rule_budget_stale;
              symbol = e.target;
              text =
                Printf.sprintf
                  "budget entry `%s %d` matched no reachable allocation \
                   site this run — the code it paid for has moved; remove \
                   it (reason was: %s)"
                  e.target e.count e.reason;
            }
      | Some actual when actual < e.count ->
          Some
            {
              source = budget_source;
              line = e.line;
              rule = rule_budget_stale;
              symbol = e.target;
              text =
                Printf.sprintf
                  "budget entry `%s %d` is loose: only %d reachable \
                   site(s) remain — ratchet it down to %d (reason was: %s)"
                  e.target e.count actual actual e.reason;
            }
      | Some _ -> None)
    ctx.cfg.budget.Budget.entries

(* --- A10 ------------------------------------------------------------ *)

(* A symbol that publishes to or reads from the metric cache must be a
   pure function of its (graph, deployment) arguments — anything else
   it depends on silently changes what a cache hit returns.  Two taint
   sources, both judged over the call graph from every cache-coupled
   symbol: nondeterministic primitives (same vocabulary as A2, but
   including the vetted RNG — randomness in a cached value is wrong
   even when seeded), and reads of module-level mutable state.  The
   cache implementation itself is excluded: its state is the cache. *)
let pure_findings ctx graph units =
  let matches specs sym =
    List.exists (fun spec -> Syms.spec_matches ~spec sym) specs
  in
  let coupled = Hashtbl.create 16 in
  List.iter
    (fun (u : Unit_info.t) ->
      List.iter
        (fun (e : Unit_info.edge) ->
          if
            matches ctx.cfg.cache_api e.target
            && (not (matches ctx.cfg.cache_impl e.from_))
            && not (Hashtbl.mem coupled e.from_)
          then Hashtbl.replace coupled e.from_ ())
        u.edges)
    units;
  let roots =
    Hashtbl.fold (fun k () acc -> k :: acc) coupled []
    |> List.sort String.compare
  in
  if roots = [] then []
  else begin
    let cut sym =
      allowed ctx ~rule:rule_pure sym
      || matches ctx.cfg.cache_api sym
      || matches ctx.cfg.cache_impl sym
    in
    let reach = Callgraph.reachable graph ~roots ~cut in
    let hashtbl_mods =
      List.concat_map (fun u -> u.Unit_info.hashtbl_mods) units
    in
    let seen = Hashtbl.create 16 in
    let nondet =
      List.concat_map
        (fun sym ->
          List.filter_map
            (fun (target, line) ->
              if
                Unit_info.is_nondet ~hashtbl_mods target
                && not (Hashtbl.mem seen (sym, target))
              then begin
                Hashtbl.replace seen (sym, target) ();
                let source =
                  match Callgraph.source_of graph sym with
                  | Some s -> s
                  | None -> "<unknown>"
                in
                Some
                  {
                    source;
                    line;
                    rule = rule_pure;
                    symbol = sym;
                    text =
                      Printf.sprintf
                        "cache-coupled function reaches nondeterministic \
                         %s via %s; a cached metric must be a pure \
                         function of (graph, deployment)"
                        (strip_stdlib target)
                        (String.concat " -> " (Callgraph.chain reach sym));
                  }
              end
              else None)
            (Callgraph.successors graph sym))
        reach.Callgraph.order
    in
    let by_encl = Hashtbl.create 128 in
    List.iter
      (fun (u : Unit_info.t) ->
        List.iter
          (fun (a : Unit_info.access) ->
            let cur =
              match Hashtbl.find_opt by_encl a.a_encl with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace by_encl a.a_encl ((u.source, a) :: cur))
          u.accesses)
      units;
    let seen_read = Hashtbl.create 16 in
    let reads =
      List.concat_map
        (fun sym ->
          let accs =
            match Hashtbl.find_opt by_encl sym with
            | Some l -> List.rev l
            | None -> []
          in
          List.filter_map
            (fun (source, (a : Unit_info.access)) ->
              let is_read =
                match a.sort with
                | Unit_info.Ref_read _ | Unit_info.Field_read _ -> true
                | Unit_info.Container_op { write = false; _ } -> true
                | _ -> false
              in
              let global_state =
                match a.subject with
                | Unit_info.Global _ | Unit_info.Local 0 -> true
                | _ -> false
              in
              if
                is_read && global_state
                && not (Hashtbl.mem seen_read (sym, a.a_line))
              then begin
                Hashtbl.replace seen_read (sym, a.a_line) ();
                Some
                  {
                    source;
                    line = a.a_line;
                    rule = rule_pure;
                    symbol = sym;
                    text =
                      Printf.sprintf
                        "%s in cache-coupled function (via %s); cached \
                         results must not depend on module-level mutable \
                         state"
                        (access_desc a)
                        (String.concat " -> " (Callgraph.chain reach sym));
                  }
              end
              else None)
            accs)
        reach.Callgraph.order
    in
    nondet @ reads
  end

(* --- stale allowlist entries ---------------------------------------- *)

let stale_findings ctx ~allow_source =
  List.filter_map
    (fun (e : Allowlist.entry) ->
      if Hashtbl.mem ctx.used (e.rule, e.target) then None
      else
        Some
          {
            source = allow_source;
            line = e.line;
            rule = rule_stale;
            symbol = e.target;
            text =
              Printf.sprintf
                "allowlist entry `%s %s` suppressed nothing this run — \
                 the code it vetted has moved; remove or update it \
                 (reason was: %s)"
                e.rule e.target e.reason;
          })
    ctx.cfg.allow.Allowlist.entries

(* --- driver --------------------------------------------------------- *)

let compare_finding a b =
  let c = String.compare a.source b.source in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.text b.text

let to_diag f =
  D.error ~rule:f.rule (Printf.sprintf "%s:%d: %s" f.source f.line f.text)

let apply ?(allow_source = "tools/astlint/allowlist.txt")
    ?(budget_source = "tools/astlint/alloc_budget.txt") cfg reg graph units =
  let ctx = { cfg; used = Hashtbl.create 16 } in
  let lockreg = Lockreg.build units in
  let allocs, entry_actual = alloc_findings ctx graph units in
  let findings =
    List.concat_map (poly_findings ctx reg) units
    @ taint_findings ctx graph units
    @ List.concat_map (unsafe_findings ctx) units
    @ List.concat_map (swallow_findings ctx) units
    @ List.concat_map (escape_direct ctx) units
    @ escape_reach ctx graph units
    @ List.concat_map (lock_findings ctx lockreg) units
    @ List.concat_map (epoch_findings ctx) units
    @ allocs
    @ pure_findings ctx graph units
    @ budget_stale_findings ctx ~budget_source entry_actual
  in
  (* Stale detection must run after every other rule so the used-entry
     table is complete. *)
  let findings = findings @ stale_findings ctx ~allow_source in
  List.sort_uniq compare_finding findings
