(** Per-symbol static allocation budgets for the hot-path rule (A9).

    Line format: [<canonical-symbol> <count> -- <reason>], ['#']
    comments.  [count] is the number of static allocation sites the
    symbol may keep on a hot path (must be positive — a zero budget is
    the default for every unlisted symbol).  Targets match exactly or
    by ["Prefix.*"] spec.  Stale entries (no reachable allocation
    left) and loose entries (count above the actual site count) are
    flagged by the rules so the manifest only ever ratchets down. *)

type entry = { target : string; count : int; reason : string; line : int }
type t = { entries : entry list }

val empty : t

val v : entry list -> t
(** In-memory manifest, for tests and the fixture corpus. *)

val parse_string : string -> (t, string) result
val load : string -> (t, string) result
val find : t -> string -> entry option
