(** Canonical symbol names for the typed-AST analyzer.

    Every name stored by the analyzer — call-graph node, edge target,
    type path, allowlist entry, taint root — is first pushed through
    {!canon_string}/{!canon_path} so that dune's [Lib__Module] mangling,
    executable [Dune__exe__] prefixes, operator parentheses and local
    module aliases all collapse to one dotted spelling
    (["Routing.Engine.compute"]). *)

val canon_string : string -> string
(** ["Routing__Engine.compute"] -> ["Routing.Engine.compute"];
    ["Dune__exe__Sbgp"] -> ["Sbgp"]; ["Stdlib.( = )"] -> ["Stdlib.="]. *)

val canon_path : ?resolve:(string -> string option) -> Path.t -> string
(** Canonicalize a typedtree path.  [resolve] maps a {e leading}
    component that names a local module (alias or definition) to its
    canonical prefix; return [None] for non-local components. *)

val spec_matches : spec:string -> string -> bool
(** Symbol matching for allowlists, taint roots and module scopes:
    [spec] matches itself, anything below it (["Routing.Reference"]
    matches ["Routing.Reference.compute"]), and supports an explicit
    ["Prefix.*"] form. *)

val in_scope : scopes:string list -> string -> bool
(** Source-path scoping: each scope is a directory prefix
    (["lib/routing"]) or an exact file (["lib/prelude/shard_cache.ml"]). *)
