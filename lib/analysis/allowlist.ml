(* The one checked-in escape hatch for the static rules.

   Every exemption lives in a single reviewed file (by default
   tools/astlint/allowlist.txt) so the full set of "trusted anyway"
   sites is auditable at a glance.  Line format:

     <rule-id>  <canonical-symbol>  -- <reason>

   e.g.

     ast/determinism-taint  Metric.H_metric.h_metric  -- Domain.self
       only gates progress callbacks; results unaffected

   '#' starts a comment; the reason after "--" is mandatory — an
   exemption nobody can explain should not exist.  A symbol entry also
   covers everything below it ("Routing.Reference" covers
   "Routing.Reference.compute"); for the taint rule an allowlisted
   symbol is trusted entirely: its own primitive uses are accepted and
   the traversal does not continue through it, so keep entries as
   narrow as possible. *)

type entry = { rule : string; target : string; reason : string; line : int }
type t = { entries : entry list }

let empty = { entries = [] }

let parse_line ~line s =
  let s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let s = String.trim s in
  if s = "" then Ok None
  else
    let body, reason =
      (* Split on the first "--". *)
      let n = String.length s in
      let rec find i =
        if i + 1 >= n then None
        else if s.[i] = '-' && s.[i + 1] = '-' then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i ->
          ( String.trim (String.sub s 0 i),
            String.trim (String.sub s (i + 2) (n - i - 2)) )
      | None -> (s, "")
    in
    match
      String.split_on_char ' ' body |> List.filter (fun w -> w <> "")
    with
    | [ rule; target ] when reason <> "" ->
        Ok (Some { rule; target = Syms.canon_string target; reason; line })
    | [ _; _ ] -> Error (Printf.sprintf "line %d: missing -- reason" line)
    | _ ->
        Error
          (Printf.sprintf
             "line %d: expected `<rule-id> <symbol> -- <reason>`" line)

let parse_string contents =
  let lines = String.split_on_char '\n' contents in
  let entries, errors, _ =
    List.fold_left
      (fun (acc, errs, n) l ->
        match parse_line ~line:n l with
        | Ok None -> (acc, errs, n + 1)
        | Ok (Some e) -> (e :: acc, errs, n + 1)
        | Error m -> (acc, m :: errs, n + 1))
      ([], [], 1) lines
  in
  match errors with
  | [] -> Ok { entries = List.rev entries }
  | errs -> Error (String.concat "; " (List.rev errs))

let load path =
  match open_in path with
  | ic ->
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      parse_string contents
  | exception Sys_error m -> Error m

let find t ~rule sym =
  List.find_opt
    (fun e -> e.rule = rule && Syms.spec_matches ~spec:e.target sym)
    t.entries

let permits t ~rule sym = find t ~rule sym <> None
