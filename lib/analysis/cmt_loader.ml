(* Locating and reading the .cmt artifacts dune produces.

   Dune stores binary annotations next to the bytecode objects:
   [<build>/lib/<dir>/.<lib>.objs/byte/<lib>__<Module>.cmt] for
   libraries and [<build>/bin/.<exe>.eobjs/byte/...] for executables.
   The analyzer never recompiles anything — it only reads what a prior
   [dune build @check] (or any full build) left behind, which is also
   how the [@lint] alias sequences it. *)

type unit_file = { cmt_path : string; modname : string; source : string }

let env_root = "SBGP_CMT_ROOT"

let is_objs_dir name =
  let has_suffix s suf =
    let n = String.length s and m = String.length suf in
    n >= m && String.sub s (n - m) m = suf
  in
  String.length name > 0
  && name.[0] = '.'
  && (has_suffix name ".objs" || has_suffix name ".eobjs")

let readdir_sorted dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.to_list entries
  | exception Sys_error _ -> []

(* All .cmt files under [root]/[dir], in deterministic (sorted) order. *)
let rec find_cmts acc path =
  if not (Sys.file_exists path && Sys.is_directory path) then acc
  else
    List.fold_left
      (fun acc entry ->
        let full = Filename.concat path entry in
        if Sys.is_directory full then
          if is_objs_dir entry then
            let byte = Filename.concat full "byte" in
            let from = if Sys.file_exists byte then byte else full in
            List.fold_left
              (fun acc f ->
                if Filename.check_suffix f ".cmt" then
                  Filename.concat from f :: acc
                else acc)
              acc (readdir_sorted from)
          else find_cmts acc full
        else acc)
      acc (readdir_sorted path)

let scan ~root ~dirs =
  List.concat_map
    (fun d -> List.rev (find_cmts [] (Filename.concat root d)))
    dirs

(* A plausible build root contains at least one dune object directory
   below [lib]. *)
let looks_like_root dir =
  let lib = Filename.concat dir "lib" in
  Sys.file_exists lib && Sys.is_directory lib
  && List.exists
       (fun sub ->
         let full = Filename.concat lib sub in
         Sys.is_directory full
         && List.exists is_objs_dir (readdir_sorted full))
       (readdir_sorted lib)

let locate_build_root () =
  match Sys.getenv_opt env_root with
  | Some r when looks_like_root r -> Some r
  | Some _ | None ->
      List.find_opt looks_like_root
        [ "_build/default"; "."; ".."; "../.."; "../../.." ]

(* Digest-keyed cache of walked units.  Repeated [dune build @lint]
   runs mostly see unchanged .cmt artifacts; re-walking every Typedtree
   each time dominates lint wall-time, and Unit_info facts are plain
   data (Typereg compares roundtripped type_exprs structurally), so a
   Marshal snapshot keyed by artifact digest is sound.  Every failure
   mode — missing file, version skew, torn write — silently degrades to
   a cold cache. *)
module Cache = struct
  type t = {
    entries : (string, Unit_info.t) Hashtbl.t;
    live : (string, unit) Hashtbl.t;  (* digests touched this run *)
  }

  (* Bump the prefix whenever Unit_info.t changes shape; the compiler
     version guards the embedded Types values. *)
  let version = "sbgp-astlint-cache-2:" ^ Sys.ocaml_version

  let empty () = { entries = Hashtbl.create 64; live = Hashtbl.create 64 }

  let load ~path =
    match open_in_bin path with
    | exception Sys_error _ -> empty ()
    | ic ->
        let t =
          match
            let len = input_binary_int ic in
            if len <> String.length version then None
            else begin
              let buf = Bytes.create len in
              really_input ic buf 0 len;
              if Bytes.to_string buf <> version then None
              else
                Some
                  (Marshal.from_channel ic
                    : (string, Unit_info.t) Hashtbl.t)
            end
          with
          | Some entries -> { entries; live = Hashtbl.create 64 }
          | None | (exception _) -> empty ()
        in
        close_in_noerr ic;
        t

  let digest file =
    match Digest.file file with
    | d -> Some (Digest.to_hex d)
    | exception _ -> None

  let lookup t ~digest =
    match Hashtbl.find_opt t.entries digest with
    | Some u ->
        Hashtbl.replace t.live digest ();
        Some u
    | None -> None

  let store t ~digest u =
    Hashtbl.replace t.entries digest u;
    Hashtbl.replace t.live digest ()

  let save t ~path =
    (* Keep only this run's entries (prunes units whose sources were
       deleted or rebuilt), and write via tmp + rename so a concurrent
       reader never sees a torn file. *)
    let pruned = Hashtbl.create (max 16 (Hashtbl.length t.live)) in
    Hashtbl.iter
      (fun d () ->
        match Hashtbl.find_opt t.entries d with
        | Some u -> Hashtbl.replace pruned d u
        | None -> ())
      t.live;
    let tmp = path ^ ".tmp" in
    match open_out_bin tmp with
    | exception Sys_error _ -> ()
    | oc -> (
        try
          output_binary_int oc (String.length version);
          output_string oc version;
          Marshal.to_channel oc pruned [];
          close_out oc;
          Sys.rename tmp path
        with Sys_error _ ->
          close_out_noerr oc;
          (try Sys.remove tmp with Sys_error _ -> ()))
end

let read file =
  match Cmt_format.read_cmt file with
  | infos ->
      let source =
        match infos.Cmt_format.cmt_sourcefile with
        | Some s -> s
        | None -> file
      in
      Ok
        ( { cmt_path = file; modname = infos.Cmt_format.cmt_modname; source },
          infos )
  | exception exn ->
      (* Corrupt or version-skewed artifact: report, don't crash — the
         caller surfaces this as an ast/cmt-unreadable warning. *)
      Error (Printexc.to_string exn)
