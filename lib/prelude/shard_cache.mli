(** Concurrent fixed-key memo cache, sharded to keep lock contention off
    the hot path.

    Keys are quadruples of non-negative integers (the metric layer packs
    (policy, deployment version, attacker, destination) into one); values
    are arbitrary.  Each shard is an ordinary hash table behind its own
    mutex, and a key always maps to the same shard, so concurrent
    {!find}/{!store} calls from worker domains only contend when they
    hash to the same shard.  [store] is last-writer-wins: callers must
    only ever store the {e same} value for a given key (a deterministic
    function of the key), which is what makes concurrent use and
    replays deterministic. *)

type key = { k1 : int; k2 : int; k3 : int; k4 : int }

type 'v t

val create : ?shards:int -> unit -> 'v t
(** [create ()] makes an empty cache with 64 shards (override with
    [~shards]; raises [Invalid_argument] if [< 1]). *)

val find : 'v t -> key -> 'v option
val store : 'v t -> key -> 'v -> unit

val shards : 'v t -> int
val length : 'v t -> int
(** Total entries across shards; takes every shard lock, O(shards). *)

val clear : 'v t -> unit

val hits : 'v t -> int
(** Number of [find] calls that returned [Some] since creation/[clear]. *)

val misses : 'v t -> int
