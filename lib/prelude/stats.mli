(** Small numeric helpers used by the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0. on arrays of length < 2. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], by linear interpolation on the sorted
    copy of [xs].  Raises [Invalid_argument] on an empty array or [q]
    outside [0,1]. *)

val quantiles : float array -> float list -> (float * float) list
(** [(q, quantile xs q)] for each requested [q]. *)

val fraction : int -> int -> float
(** [fraction num denom] is [num / denom] as a float; 0. when [denom = 0]. *)

val percent : float -> string
(** Render a fraction in [0,1] as a percentage with one decimal, e.g.
    ["60.3%"]. *)

val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
(** Fixed-width histogram; values outside [lo,hi] are clamped into the
    first/last bin. *)
