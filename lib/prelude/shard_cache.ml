type key = { k1 : int; k2 : int; k3 : int; k4 : int }

(* FNV-1a-style mix over the four components; monomorphic throughout —
   this module is in the hot-path lint scope (tools/lint.sh) because
   cache lookups sit on the incremental evaluator's per-pair path. *)
let hash_key { k1; k2; k3; k4 } =
  let h = ref 0xcbf29ce4 in
  let mix x = h := ((!h lxor x) * 0x01000193) land max_int in
  mix k1;
  mix k2;
  mix k3;
  mix k4;
  !h

let equal_key a b =
  a.k1 = b.k1 && a.k2 = b.k2 && a.k3 = b.k3 && a.k4 = b.k4

module Tbl = Hashtbl.Make (struct
  type t = key

  let equal = equal_key
  let hash = hash_key
end)

type 'v shard = { mutex : Mutex.t; table : 'v Tbl.t }

type 'v t = {
  shards : 'v shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let default_shards = 64

let create ?(shards = default_shards) () =
  if shards < 1 then invalid_arg "Shard_cache.create: shards < 1";
  {
    shards =
      Array.init shards (fun _ ->
          { mutex = Mutex.create (); table = Tbl.create 256 });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let shards t = Array.length t.shards

let shard_of t key = t.shards.(hash_key key mod Array.length t.shards)

let with_shard s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let find t key =
  let s = shard_of t key in
  let r = with_shard s (fun () -> Tbl.find_opt s.table key) in
  (match r with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  r

let store t key v =
  let s = shard_of t key in
  with_shard s (fun () -> Tbl.replace s.table key v)

let length t =
  Array.fold_left
    (fun acc s -> acc + with_shard s (fun () -> Tbl.length s.table))
    0 t.shards

let clear t =
  Array.iter (fun s -> with_shard s (fun () -> Tbl.reset s.table)) t.shards;
  Atomic.set t.hits 0;
  Atomic.set t.misses 0

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
