(** Monotone integer-priority queue over integer items.

    Priorities ("ranks") are non-negative integers bounded by [max_rank]
    (exclusive).  The queue is {e monotone}: once a rank [r] has been popped,
    pushing an item with rank [< r] raises [Invalid_argument].  This matches
    label-setting (Dijkstra-style) computations in which every relaxation
    strictly increases the rank, and allows O(1) amortized push/pop using a
    bucket array with a never-decreasing cursor. *)

type t

val create : max_rank:int -> t
(** [create ~max_rank] is an empty queue accepting ranks in
    [0 .. max_rank - 1]. *)

val push : t -> rank:int -> int -> unit
(** [push q ~rank item] inserts [item] with priority [rank].  Stale
    duplicates of the same item are allowed; callers using lazy deletion
    must skip already-settled items when popping. *)

val pop : t -> (int * int) option
(** [pop q] removes and returns [(rank, item)] with the smallest rank, or
    [None] if the queue is empty.  Allocates the option and the pair; hot
    drains use {!pop_exn} + {!last_rank} instead. *)

val pop_exn : t -> int
(** Allocation-free pop: removes and returns the item with the smallest
    rank; the rank it was popped from is available as {!last_rank}.
    Within a rank, items pop in LIFO order (same order as {!pop}).
    Raises [Invalid_argument] on an empty queue. *)

val last_rank : t -> int
(** The rank of the most recent {!pop_exn}/{!pop}; 0 on a fresh or
    freshly {!clear}ed queue. *)

val is_empty : t -> bool

val capacity : t -> int
(** The [max_rank] the queue was created with.  Reusers (e.g. the routing
    engine's workspace) check this before {!clear}ing a queue for a
    computation with a different rank bound. *)

val clear : t -> unit
(** [clear q] empties the queue and resets the cursor, allowing reuse. *)
