(** Plain-text aligned tables for experiment output. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_separator : t -> unit
val to_string : t -> string
val print : t -> unit

val csv : t -> string
(** Comma-separated rendering (cells containing commas or quotes are
    quoted). *)
