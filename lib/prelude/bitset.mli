(** Compact fixed-capacity set of small non-negative integers. *)

type t

val create : int -> t
(** [create n] is the empty set over the universe [0 .. n-1]. *)

val length : t -> int
(** Universe size. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit

val cardinal : t -> int
(** Number of members; O(1). *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val copy : t -> t
