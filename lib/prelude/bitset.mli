(** Compact fixed-capacity set of small non-negative integers.

    Backed by an [int array] with {!word_bits} membership bits per word.
    The word granularity is part of the interface: the batched routing
    kernel ({!Routing.Batch}) identifies "one attacker" with "one bit of
    a word", so a single CSR frontier scan advances up to {!word_bits}
    attackers at once, and the word-level accessors below let callers
    build and consume those lane masks without re-packing. *)

type t

val word_bits : int
(** Membership bits per backing word: 63, the width of an OCaml
    immediate int (bit indices 0..62; the would-be bit 63 does not exist
    in a native [int]).  Word [j] holds members
    [j * word_bits .. j * word_bits + word_bits - 1]. *)

val create : int -> t
(** [create n] is the empty set over the universe [0 .. n-1].
    Raises [Invalid_argument] if [n < 0]. *)

val length : t -> int
(** Universe size. *)

val words : t -> int
(** Number of backing words, [(length + word_bits - 1) / word_bits]. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
(** Membership, insertion, deletion.  All raise [Invalid_argument] when
    the index is outside [0 .. length - 1]. *)

val clear : t -> unit

val cardinal : t -> int
(** Number of members; O(1). *)

val get_word : t -> int -> int
(** [get_word t j] is backing word [j]: bit [b] (0 ≤ b < {!word_bits})
    is set iff [j * word_bits + b] is a member.  Bits at or above the
    universe bound are always 0.  Raises [Invalid_argument] unless
    [0 <= j < words t]. *)

val fold_words : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_words f t init] folds [f j word acc] over every backing word
    in ascending word order, including zero words — the fold visits
    exactly [words t] entries, so word indices line up across sets of
    the same universe. *)

val iter_set : (int -> unit) -> t -> unit
(** [iter_set f t] applies [f] to every member in ascending order.
    Cost is O(words + cardinal), not O(length): zero words are skipped
    whole and set bits are extracted with [w land (-w)], which is what
    makes sparse iteration over a large universe cheap. *)

val union_into : into:t -> t -> unit
(** [union_into ~into src] adds every member of [src] to [into], word
    at a time.  Raises [Invalid_argument] when the universe sizes
    differ (a word-wise merge of different universes would silently
    misalign lanes). *)

val diff_into : into:t -> t -> unit
(** [diff_into ~into src] removes every member of [src] from [into],
    word at a time.  Same universe-size check as {!union_into}. *)

val popcount_word : int -> int
(** Number of set bits in a raw word (any OCaml int, sign bit
    included).  One loop iteration per set bit. *)

val iter_word : (int -> unit) -> int -> unit
(** [iter_word f w] applies [f] to the index of every set bit of the
    raw word [w] in ascending order (0 ≤ index ≤ 62).  Usable on lane
    masks that never lived in a set. *)

val iter : (int -> unit) -> t -> unit
(** Alias of {!iter_set} (kept for callers of the byte-backed
    predecessor). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val copy : t -> t
