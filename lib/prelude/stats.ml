let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    sqrt (!acc /. float_of_int n)
  end

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. w)) +. (sorted.(hi) *. w)
  end

let quantiles xs qs = List.map (fun q -> (q, quantile xs q)) qs
let fraction num denom = if denom = 0 then 0. else float_of_int num /. float_of_int denom
let percent f = Printf.sprintf "%.1f%%" (100. *. f)

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts
