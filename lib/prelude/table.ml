type row = Cells of string list | Separator
type t = { header : string list; mutable rows : row list (* reversed *) }

let create ~header = { header; rows = [] }

let add_row t cells =
  let n = List.length t.header in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than header columns";
  let cells =
    if k = n then cells else cells @ List.init (n - k) (fun _ -> "")
  in
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let n = List.length t.header in
  let w = Array.make n 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  measure t.header;
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  w

let to_string t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let pad i c =
    Buffer.add_string buf c;
    Buffer.add_string buf (String.make (w.(i) - String.length c) ' ')
  in
  let render_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        pad i c)
      cells;
    Buffer.add_char buf '\n'
  in
  let total = Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1)) in
  render_cells t.header;
  Buffer.add_string buf (String.make (max 1 total) '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells c -> render_cells c
      | Separator ->
          Buffer.add_string buf (String.make (max 1 total) '-');
          Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (to_string t)

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let csv t =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  line t.header;
  List.iter (function Cells c -> line c | Separator -> ()) (List.rev t.rows);
  Buffer.contents buf
