(* Backed by an [int array], 63 membership bits per word (the width of
   an OCaml immediate int).  The word layout is public — see the .mli —
   because the batched routing kernel packs one attacker per bit and
   advances a whole word of attackers per CSR scan; keeping the set
   representation and the kernel's lane masks the same width means a
   destination's attacker word can flow between the two without
   re-packing. *)

let word_bits = 63

type t = { words : int array; n : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + word_bits - 1) / word_bits) 0; n; card = 0 }

let length t = t.n
let words t = Array.length t.words

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add t i =
  check t i;
  let w = t.words.(i / word_bits) in
  let bit = 1 lsl (i mod word_bits) in
  if w land bit = 0 then begin
    t.words.(i / word_bits) <- w lor bit;
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let w = t.words.(i / word_bits) in
  let bit = 1 lsl (i mod word_bits) in
  if w land bit <> 0 then begin
    t.words.(i / word_bits) <- w land lnot bit;
    t.card <- t.card - 1
  end

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

let cardinal t = t.card

(* Kernighan loop: one iteration per set bit.  Valid for any word
   pattern a [t] can hold (bit 62 included: [w - 1] on [min_int] wraps
   to [max_int], clearing exactly the sign bit). *)
let popcount_word w0 =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w0 0

let iter_word f w0 =
  let w = ref w0 in
  while !w <> 0 do
    let b = !w land - !w in
    f (popcount_word (b - 1));
    w := !w lxor b
  done

let get_word t j =
  if j < 0 || j >= Array.length t.words then
    invalid_arg "Bitset.get_word: word index out of bounds";
  t.words.(j)

let fold_words f t init =
  let acc = ref init in
  for j = 0 to Array.length t.words - 1 do
    acc := f j t.words.(j) !acc
  done;
  !acc

let iter_set f t =
  for j = 0 to Array.length t.words - 1 do
    let w = t.words.(j) in
    if w <> 0 then
      let base = j * word_bits in
      iter_word (fun b -> f (base + b)) w
  done

let iter = iter_set

let fold f t init =
  let acc = ref init in
  iter_set (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n items =
  let t = create n in
  List.iter (add t) items;
  t

let copy t = { words = Array.copy t.words; n = t.n; card = t.card }

let recount t =
  let c = ref 0 in
  Array.iter (fun w -> c := !c + popcount_word w) t.words;
  t.card <- !c

let same_universe name ~into src =
  if into.n <> src.n then
    invalid_arg (name ^ ": universe sizes differ")

let union_into ~into src =
  same_universe "Bitset.union_into" ~into src;
  for j = 0 to Array.length into.words - 1 do
    into.words.(j) <- into.words.(j) lor src.words.(j)
  done;
  recount into

let diff_into ~into src =
  same_universe "Bitset.diff_into" ~into src;
  for j = 0 to Array.length into.words - 1 do
    into.words.(j) <- into.words.(j) land lnot src.words.(j)
  done;
  recount into
