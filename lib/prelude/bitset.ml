type t = { bits : Bytes.t; n : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n; card = 0 }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
  let bit = 1 lsl (i land 7) in
  if byte land bit = 0 then begin
    Bytes.unsafe_set t.bits (i lsr 3) (Char.chr (byte lor bit));
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
  let bit = 1 lsl (i land 7) in
  if byte land bit <> 0 then begin
    Bytes.unsafe_set t.bits (i lsr 3) (Char.chr (byte land lnot bit));
    t.card <- t.card - 1
  end

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.card <- 0

let cardinal t = t.card

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n items =
  let t = create n in
  List.iter (add t) items;
  t

let copy t = { bits = Bytes.copy t.bits; n = t.n; card = t.card }
