type t = {
  buckets : int array array;
  (* Per-rank LIFO stacks: bucket [r] holds its live items in
     [buckets.(r).(0 .. fill.(r) - 1)], newest last.  Popping from the top
     preserves the historical cons/head-pop order exactly, which the
     bit-identity gates over the routing kernels rely on.  Backing arrays
     grow by doubling and are retained across {!clear}, so a reused queue
     reaches a steady state where push/pop never allocate. *)
  fill : int array;
  mutable cursor : int; (* no bucket below [cursor] is non-empty *)
  mutable size : int;
  mutable last_rank : int; (* rank of the most recent pop *)
}

let create ~max_rank =
  if max_rank <= 0 then invalid_arg "Bucket_queue.create: max_rank <= 0";
  {
    buckets = Array.make max_rank [||];
    fill = Array.make max_rank 0;
    cursor = 0;
    size = 0;
    last_rank = 0;
  }

(* Cold path: double bucket [rank]'s backing array and return it. *)
let grow q rank b =
  let b' = Array.make (max 4 (2 * Array.length b)) 0 in
  Array.blit b 0 b' 0 (Array.length b);
  q.buckets.(rank) <- b';
  b'

let push q ~rank item =
  if rank < q.cursor then
    invalid_arg
      (Printf.sprintf "Bucket_queue.push: rank %d below cursor %d" rank
         q.cursor);
  if rank >= Array.length q.fill then
    invalid_arg
      (Printf.sprintf "Bucket_queue.push: rank %d >= max_rank %d" rank
         (Array.length q.fill));
  let b = Array.unsafe_get q.buckets rank in
  let f = Array.unsafe_get q.fill rank in
  let b = if f = Array.length b then grow q rank b else b in
  Array.unsafe_set b f item;
  Array.unsafe_set q.fill rank (f + 1);
  q.size <- q.size + 1

let is_empty q = q.size = 0
let capacity q = Array.length q.fill
let last_rank q = q.last_rank

let pop_exn q =
  if q.size = 0 then invalid_arg "Bucket_queue.pop_exn: queue is empty";
  while Array.unsafe_get q.fill q.cursor = 0 do
    q.cursor <- q.cursor + 1
  done;
  let r = q.cursor in
  let f = Array.unsafe_get q.fill r - 1 in
  Array.unsafe_set q.fill r f;
  q.size <- q.size - 1;
  q.last_rank <- r;
  Array.unsafe_get (Array.unsafe_get q.buckets r) f

let pop q =
  if q.size = 0 then None
  else
    let item = pop_exn q in
    Some (q.last_rank, item)

let clear q =
  (* Only the buckets at or above the cursor can be non-empty, but a reused
     queue may have been cleared before reaching the end; wipe every fill
     count that could be stale.  Backing arrays are kept for reuse. *)
  if q.size > 0 then
    for i = q.cursor to Array.length q.fill - 1 do
      q.fill.(i) <- 0
    done;
  q.cursor <- 0;
  q.size <- 0;
  q.last_rank <- 0
