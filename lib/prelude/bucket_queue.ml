type t = {
  buckets : int list array;
  mutable cursor : int; (* no bucket below [cursor] is non-empty *)
  mutable size : int;
}

let create ~max_rank =
  if max_rank <= 0 then invalid_arg "Bucket_queue.create: max_rank <= 0";
  { buckets = Array.make max_rank []; cursor = 0; size = 0 }

let push q ~rank item =
  if rank < q.cursor then
    invalid_arg
      (Printf.sprintf "Bucket_queue.push: rank %d below cursor %d" rank
         q.cursor);
  if rank >= Array.length q.buckets then
    invalid_arg
      (Printf.sprintf "Bucket_queue.push: rank %d >= max_rank %d" rank
         (Array.length q.buckets));
  q.buckets.(rank) <- item :: q.buckets.(rank);
  q.size <- q.size + 1

let is_empty q = q.size = 0
let capacity q = Array.length q.buckets

let rec pop q =
  if q.size = 0 then None
  else
    match q.buckets.(q.cursor) with
    | [] ->
        q.cursor <- q.cursor + 1;
        pop q
    | item :: rest ->
        q.buckets.(q.cursor) <- rest;
        q.size <- q.size - 1;
        Some (q.cursor, item)

let clear q =
  (* Only the buckets at or above the cursor can be non-empty, but a reused
     queue may have been cleared before reaching the end; wipe everything
     that could hold stale items. *)
  if q.size > 0 then
    for i = q.cursor to Array.length q.buckets - 1 do
      q.buckets.(i) <- []
    done;
  q.cursor <- 0;
  q.size <- 0
