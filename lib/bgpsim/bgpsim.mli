(** Dynamic message-passing BGP / S*BGP simulator.

    Unlike {!Routing.Engine}, which computes the unique stable state
    directly, this simulator runs the protocol: ASes keep per-neighbor
    RIBs of announced AS-paths, re-select best routes with their local
    decision process, and propagate announcements and withdrawals under
    the export policy Ex.  It supports:

    - per-AS policies (ASes may place the SecP step differently — the
      inconsistent-priorities setting of Section 2.3 that produces BGP
      Wedgies, Figure 1);
    - link failures and repairs, to exhibit the Wedgie's two stable
      states;
    - arbitrary activation schedules (deterministic sweeps or seeded
      random orders), to probe Theorem 2.1's claim that with consistent
      policies the outcome is schedule-independent.

    Announcements carry a [signed] bit: the origin signs iff it deploys
    (full or simplex) S*BGP, a transit AS preserves the signature iff it
    deploys full S*BGP, and the attacker's bogus "m d" announcement is
    never signed.  A received route is {e secure} for an AS iff it is
    signed and the AS itself validates (full deployment). *)

type t

val create :
  ?policy_of:(int -> Routing.Policy.t) ->
  ?hysteresis:bool ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  dst:int ->
  ?attacker:int ->
  unit ->
  t
(** [create g policy dep ~dst ()] prepares a simulation of routing toward
    [dst].  [policy_of] overrides the policy per AS (default: the global
    [policy] everywhere).  The attacker, if present, persistently
    announces the bogus path ["m d"] to all its neighbors.

    [hysteresis] enables the downgrade mitigation the paper sketches in
    its conclusion: a fully-secure AS holding a valid secure route will
    not replace it with an insecure route, regardless of its decision
    process.  This deliberately breaks the pure selection function — it
    is an experimental extension, only available in the dynamic
    simulator. *)

val set_attack : t -> active:bool -> unit
(** Silence or (re)start the attacker's bogus announcement, so an attack
    can be launched against an {e established} routing state: create with
    [~attacker], [set_attack ~active:false], {!run} to converge normal
    conditions, then [set_attack ~active:true] and {!run} again.  Raises
    [Invalid_argument] if no attacker was configured. *)

val run : ?schedule:Rng.t -> ?max_sweeps:int -> t -> int
(** Process activations until a full sweep causes no route change; returns
    the number of sweeps.  [schedule] randomizes the activation order of
    each sweep.  Raises [Failure] if [max_sweeps] (default 1000) is
    exceeded — with consistent policies this cannot happen (Theorem 2.1),
    with mixed policies it signals a persistent oscillation. *)

val set_link : t -> int -> int -> up:bool -> unit
(** Fail or restore the link between two adjacent ASes.  Routes over a
    failed link are withdrawn; call {!run} afterwards to re-converge.
    Raises [Invalid_argument] if the ASes are not adjacent in the
    underlying graph. *)

val chosen_path : t -> int -> int list option
(** The AS-path currently selected by the AS, next hop first, ending at
    the apparent origin (for attacked routes: [..., m, dst] — the bogus
    claimed hop included).  [None] if the AS currently has no route.
    The destination itself has path [[dst]]. *)

val route_secure : t -> int -> bool
val uses_attacker : t -> int -> bool
(** The chosen route goes through the attacker. *)

val snapshot : t -> int list option array
(** All chosen paths, indexed by AS. *)

val to_outcome : t -> Routing.Outcome.t
(** Convert the current (converged) state for comparison with the static
    engines.  Flags [to_d]/[to_m] reflect the single chosen route. *)
