type announcement = { path : int list; signed : bool }

type t = {
  graph : Topology.Graph.t;
  policy_of : int -> Routing.Policy.t;
  dep : Deployment.t;
  dst : int;
  attacker : int option;
  hysteresis : bool;
  mutable attack_active : bool;
  ribs : (int, announcement) Hashtbl.t array; (* ribs.(v): neighbor -> ann *)
  chosen : announcement option array;
  down : (int * int, unit) Hashtbl.t; (* failed links, key (min, max) *)
  rel_of : (int, Routing.Policy.route_class) Hashtbl.t array;
      (* rel_of.(v): neighbor -> relationship from v's point of view *)
  nbrs : int array array; (* nbrs.(v): customers, then peers, then providers *)
}

let key a b = if a < b then (a, b) else (b, a)
let alive t a b = not (Hashtbl.mem t.down (key a b))

(* Relationship of neighbor [u] from [v]'s point of view. *)
let rel t v u =
  match Hashtbl.find_opt t.rel_of.(v) u with
  | Some r -> r
  | None ->
      invalid_arg (Printf.sprintf "Bgpsim: %d and %d are not neighbors" v u)

let is_root t v = v = t.dst || t.attacker = Some v
let neighbors t v = t.nbrs.(v)

(* What [v] currently announces, if anything. *)
let announcement_of t v =
  if v = t.dst then
    Some { path = [ t.dst ]; signed = Deployment.signs_origin t.dep t.dst }
  else
    match t.attacker with
    | Some m when v = m ->
        if t.attack_active then Some { path = [ m; t.dst ]; signed = false }
        else None
    | _ -> (
        match t.chosen.(v) with
        | None -> None
        | Some ann ->
            Some
              {
                path = v :: ann.path;
                signed = ann.signed && Deployment.is_full t.dep v;
              })

(* Does Ex allow [v] to announce its current route to [w]? *)
let audience_includes t v w =
  if is_root t v then true
  else
    match t.chosen.(v) with
    | None -> false
    | Some ann -> (
        match rel t v w with
        | Routing.Policy.Customer -> true (* w is v's customer *)
        | Routing.Policy.Peer | Routing.Policy.Provider ->
            (* only customer-routes go to peers and providers *)
            rel t v (List.hd ann.path) = Routing.Policy.Customer)

(* Refresh what sits in [w]'s RIB for neighbor [v]. *)
let announce_to t v w =
  if alive t v w && audience_includes t v w then
    match announcement_of t v with
    | Some ann -> Hashtbl.replace t.ribs.(w) v ann
    | None -> Hashtbl.remove t.ribs.(w) v
  else Hashtbl.remove t.ribs.(w) v

let broadcast t v = Array.iter (fun w -> announce_to t v w) (neighbors t v)

let create ?policy_of ?(hysteresis = false) graph policy dep ~dst ?attacker () =
  let n = Topology.Graph.n graph in
  if dst < 0 || dst >= n then invalid_arg "Bgpsim.create: dst out of range";
  (match attacker with
  | Some m when m < 0 || m >= n || m = dst ->
      invalid_arg "Bgpsim.create: bad attacker"
  | Some _ | None -> ());
  let rel_of =
    Array.init n (fun v ->
        let customers = Topology.Graph.customers graph v
        and peers = Topology.Graph.peers graph v
        and providers = Topology.Graph.providers graph v in
        let tbl =
          Hashtbl.create
            (Array.length customers + Array.length peers
            + Array.length providers)
        in
        let put cls u = Hashtbl.replace tbl u cls in
        Array.iter (put Routing.Policy.Customer) customers;
        Array.iter (put Routing.Policy.Peer) peers;
        Array.iter (put Routing.Policy.Provider) providers;
        tbl)
  in
  let nbrs =
    Array.init n (fun v ->
        Array.concat
          [
            Topology.Graph.customers graph v;
            Topology.Graph.peers graph v;
            Topology.Graph.providers graph v;
          ])
  in
  let t =
    {
      graph;
      policy_of = (match policy_of with Some f -> f | None -> fun _ -> policy);
      dep;
      dst;
      attacker;
      hysteresis;
      attack_active = true;
      ribs = Array.init n (fun _ -> Hashtbl.create 4);
      chosen = Array.make n None;
      down = Hashtbl.create 8;
      rel_of;
      nbrs;
    }
  in
  broadcast t dst;
  (match attacker with Some m -> broadcast t m | None -> ());
  t

(* Best route selection at [v] per its local decision process; TB picks the
   lowest-numbered next hop. *)
let select t v =
  let policy = t.policy_of v in
  let best = ref None in
  Hashtbl.iter
    (fun u ann ->
      if not (List.mem v ann.path) then begin
        let cand =
          ( rel t v u,
            List.length ann.path,
            ann.signed && Deployment.is_full t.dep v )
        in
        match !best with
        | None -> best := Some (u, ann, cand)
        | Some (u', _, cand') ->
            let c = Routing.Policy.compare_routes policy cand cand' in
            if c < 0 || (c = 0 && u < u') then best := Some (u, ann, cand)
      end)
    t.ribs.(v);
  match !best with None -> None | Some (_, ann, _) -> Some ann

(* The chosen announcement is still present, identical, in the RIB. *)
let still_valid t v ann =
  match ann.path with
  | [] -> false
  | u :: _ as path ->
      (not (List.mem v path))
      && Hashtbl.find_opt t.ribs.(v) u = Some ann

let reselect t v =
  if is_root t v then false
  else begin
    let next = select t v in
    let next =
      (* Hysteresis (the mitigation sketched in the paper's Section 8):
         an AS holding a valid secure route refuses to replace it with an
         insecure one, even when its decision process ranks the insecure
         route higher. *)
      if not t.hysteresis then next
      else
        match (t.chosen.(v), next) with
        | Some cur, Some cand
          when cur.signed
               && Deployment.is_full t.dep v
               && (not cand.signed)
               && still_valid t v cur ->
            Some cur
        | Some cur, None when cur.signed && still_valid t v cur -> Some cur
        | _ -> next
    in
    if next = t.chosen.(v) then false
    else begin
      t.chosen.(v) <- next;
      broadcast t v;
      true
    end
  end

let set_attack t ~active =
  match t.attacker with
  | None -> invalid_arg "Bgpsim.set_attack: no attacker configured"
  | Some m ->
      t.attack_active <- active;
      broadcast t m

let run ?schedule ?(max_sweeps = 1000) t =
  let n = Topology.Graph.n t.graph in
  let order = Array.init n (fun i -> i) in
  let sweeps = ref 0 in
  let quiet = ref false in
  while not !quiet do
    if !sweeps >= max_sweeps then
      failwith
        (Printf.sprintf "Bgpsim.run: no convergence after %d sweeps"
           max_sweeps);
    incr sweeps;
    (match schedule with Some rng -> Rng.shuffle rng order | None -> ());
    let changed = ref false in
    Array.iter (fun v -> if reselect t v then changed := true) order;
    quiet := not !changed
  done;
  !sweeps

let set_link t a b ~up =
  (* Validates adjacency. *)
  let (_ : Routing.Policy.route_class) = rel t a b in
  if up then begin
    Hashtbl.remove t.down (key a b);
    announce_to t a b;
    announce_to t b a
  end
  else begin
    Hashtbl.replace t.down (key a b) ();
    Hashtbl.remove t.ribs.(a) b;
    Hashtbl.remove t.ribs.(b) a
  end

let chosen_path t v =
  if v = t.dst then Some [ t.dst ]
  else
    match t.attacker with
    | Some m when v = m -> Some [ m; t.dst ]
    | _ -> Option.map (fun ann -> ann.path) t.chosen.(v)

let route_secure t v =
  match t.chosen.(v) with
  | None -> false
  | Some ann -> ann.signed && Deployment.is_full t.dep v

let uses_attacker t v =
  match t.attacker with
  | None -> false
  | Some m -> (
      if v = m then true
      else
        match t.chosen.(v) with
        | None -> false
        | Some ann -> List.mem m ann.path)

let snapshot t = Array.init (Topology.Graph.n t.graph) (chosen_path t)

let to_outcome t =
  let n = Topology.Graph.n t.graph in
  let outcome = Routing.Outcome.create ~n ~dst:t.dst ~attacker:t.attacker in
  Routing.Outcome.fix_root outcome t.dst ~len:0
    ~secure:(Deployment.signs_origin t.dep t.dst)
    ~to_d:true ~to_m:false ~parent:(-1);
  (match t.attacker with
  | Some m ->
      Routing.Outcome.fix_root outcome m ~len:1 ~secure:false ~to_d:false
        ~to_m:true ~parent:t.dst
  | None -> ());
  for v = 0 to n - 1 do
    if not (is_root t v) then
      match t.chosen.(v) with
      | None -> ()
      | Some ann ->
          let attacked = uses_attacker t v in
          Routing.Outcome.fix outcome v
            ~cls:(rel t v (List.hd ann.path))
            ~len:(List.length ann.path)
            ~secure:(ann.signed && Deployment.is_full t.dep v)
            ~to_d:(not attacked) ~to_m:attacked
            ~parent:(List.hd ann.path)
  done;
  outcome
