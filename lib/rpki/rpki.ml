type prefix = { addr : int32; len : int }

let mask_of_len len =
  if len = 0 then 0l
  else Int32.shift_left (-1l) (32 - len)

let prefix s =
  let fail msg = invalid_arg (Printf.sprintf "Rpki.prefix %S: %s" s msg) in
  match String.split_on_char '/' s with
  | [ addr_s; len_s ] -> (
      let len =
        match int_of_string_opt len_s with
        | Some l when l >= 0 && l <= 32 -> l
        | _ -> fail "bad prefix length"
      in
      match String.split_on_char '.' addr_s with
      | [ a; b; c; d ] ->
          let octet o =
            match int_of_string_opt o with
            | Some v when v >= 0 && v <= 255 -> Int32.of_int v
            | _ -> fail "bad octet"
          in
          let addr =
            List.fold_left
              (fun acc o -> Int32.logor (Int32.shift_left acc 8) (octet o))
              0l [ a; b; c; d ]
          in
          if Int32.logand addr (Int32.lognot (mask_of_len len)) <> 0l then
            fail "host bits set";
          { addr; len }
      | _ -> fail "expected dotted quad")
  | _ -> fail "expected addr/len"

let prefix_to_string p =
  let b i =
    Int32.to_int (Int32.logand (Int32.shift_right_logical p.addr i) 0xFFl)
  in
  Printf.sprintf "%d.%d.%d.%d/%d" (b 24) (b 16) (b 8) (b 0) p.len

let covers p q =
  q.len >= p.len && Int32.logand q.addr (mask_of_len p.len) = p.addr

type roa = { roa_prefix : prefix; max_len : int; origin : int }

let roa prefix_s ?max_len origin =
  let roa_prefix = prefix prefix_s in
  let max_len = match max_len with Some m -> m | None -> roa_prefix.len in
  if max_len < roa_prefix.len || max_len > 32 then
    invalid_arg "Rpki.roa: max_len out of range";
  { roa_prefix; max_len; origin }

type announcement = { ann_prefix : prefix; as_path : int list }

let origin_of ann =
  match List.rev ann.as_path with
  | origin :: _ -> origin
  | [] -> invalid_arg "Rpki.origin_of: empty AS path"

type validity = Valid | Invalid | Unknown

let validity_to_string = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Unknown -> "unknown"

let validate roas ann =
  let covering = List.filter (fun r -> covers r.roa_prefix ann.ann_prefix) roas in
  if covering = [] then Unknown
  else begin
    let origin = origin_of ann in
    if
      List.exists
        (fun r -> r.origin = origin && ann.ann_prefix.len <= r.max_len)
        covering
    then Valid
    else Invalid
  end

let filter_invalid roas anns =
  List.filter (fun a -> validate roas a <> Invalid) anns
