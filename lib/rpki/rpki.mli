(** Route-origin authentication with the RPKI (RFC 6480 / 6483 semantics).

    The paper's threat model (Section 3) assumes the RPKI and origin
    authentication are fully deployed, so prefix- and subprefix-hijacks
    are filtered, and the remaining attack is the bogus path announcement
    "m d" — which passes origin validation because the claimed origin is
    the legitimate one.  This module implements that substrate: prefixes,
    ROAs, and the origin-validation outcome for announcements. *)

type prefix = { addr : int32; len : int }
(** An IPv4 prefix in CIDR form; bits beyond [len] must be zero. *)

val prefix : string -> prefix
(** [prefix "10.16.0.0/12"].  Raises [Invalid_argument] on syntax errors,
    bad masks, or non-zero host bits. *)

val prefix_to_string : prefix -> string

val covers : prefix -> prefix -> bool
(** [covers p q]: [q] is [p] itself or a more-specific prefix of [p]. *)

type roa = { roa_prefix : prefix; max_len : int; origin : int }
(** Route Origin Authorization: [origin] may announce [roa_prefix] and
    more-specifics up to [max_len]. *)

val roa : string -> ?max_len:int -> int -> roa
(** [roa "10.0.0.0/8" ~max_len:24 65001]; [max_len] defaults to the
    prefix length. *)

type announcement = { ann_prefix : prefix; as_path : int list }
(** [as_path] ends at the origin AS. *)

val origin_of : announcement -> int
(** Raises [Invalid_argument] on an empty path. *)

type validity = Valid | Invalid | Unknown

val validity_to_string : validity -> string

val validate : roa list -> announcement -> validity
(** RFC 6483 origin validation: [Unknown] when no ROA covers the
    announced prefix; [Valid] when some covering ROA matches the origin
    and the length limit; [Invalid] otherwise. *)

val filter_invalid : roa list -> announcement list -> announcement list
(** Drop announcements that validate as [Invalid] — what a route-origin-
    validating AS does.  [Unknown] and [Valid] are kept. *)
