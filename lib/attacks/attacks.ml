type strategy =
  | Prefix_hijack
  | Subprefix_hijack
  | Fabricated_path of int

let strategy_name = function
  | Prefix_hijack -> "prefix hijack"
  | Subprefix_hijack -> "subprefix hijack"
  | Fabricated_path 1 -> "fabricated path \"m d\""
  | Fabricated_path k -> Printf.sprintf "fabricated path (%d hops)" k

(* Encode each strategy as an actual RPKI validation question.  The
   victim [d] holds 10.0.0.0/8 under a ROA; what does the attacker [m]
   announce? *)
let passes_origin_validation strategy =
  let victim = 65000 and attacker = 64999 in
  let roas = [ Rpki.roa "10.0.0.0/8" victim ] in
  let announcement =
    match strategy with
    | Prefix_hijack ->
        (* m originates the very prefix. *)
        { Rpki.ann_prefix = Rpki.prefix "10.0.0.0/8"; as_path = [ attacker ] }
    | Subprefix_hijack ->
        { Rpki.ann_prefix = Rpki.prefix "10.1.0.0/16"; as_path = [ attacker ] }
    | Fabricated_path k ->
        (* m claims a path that terminates at the legitimate origin. *)
        let middle = List.init (max 0 (k - 1)) (fun i -> 64000 + i) in
        {
          Rpki.ann_prefix = Rpki.prefix "10.0.0.0/8";
          as_path = (attacker :: middle) @ [ victim ];
        }
  in
  Rpki.validate roas announcement <> Rpki.Invalid

type result = {
  strategy : strategy;
  filtered : bool;
  happy_lb : int;
  happy_ub : int;
  sources : int;
}

let happy_fraction r =
  ( Prelude.Stats.fraction r.happy_lb r.sources,
    Prelude.Stats.fraction r.happy_ub r.sources )

let of_counts strategy ~filtered (c : Metric.H_metric.counts) =
  {
    strategy;
    filtered;
    happy_lb = c.Metric.H_metric.happy_lb;
    happy_ub = c.Metric.H_metric.happy_ub;
    sources = c.Metric.H_metric.sources;
  }

let simulate ?(origin_auth = true) g policy dep ~attacker ~dst strategy =
  (match strategy with
  | Fabricated_path k when k < 1 ->
      invalid_arg "Attacks.simulate: Fabricated_path requires length >= 1"
  | _ -> ());
  let filtered = origin_auth && not (passes_origin_validation strategy) in
  if filtered then begin
    (* The bogus announcement never enters route selection; sources see
       normal conditions.  A source is happy iff it has a route to the
       destination at all; the attacker's slot is excluded to keep
       [sources] comparable across strategies. *)
    let normal = Routing.Engine.compute g policy dep ~dst ~attacker:None in
    let happy = ref 0 and sources = ref 0 in
    for v = 0 to Topology.Graph.n g - 1 do
      if v <> dst && v <> attacker then begin
        incr sources;
        if Routing.Outcome.reached normal v then incr happy
      end
    done;
    {
      strategy;
      filtered = true;
      happy_lb = !happy;
      happy_ub = !happy;
      sources = !sources;
    }
  end
  else
    match strategy with
    | Subprefix_hijack ->
        (* Longest-prefix forwarding: route selection for the covering
           prefix is irrelevant; any source with a perceivable route to
           the attacker sends the victim's traffic there. *)
        let reach_m =
          Routing.Reach.compute g ~root:attacker ~avoid:dst ()
        in
        let reach_d = Routing.Reach.compute g ~root:dst ~avoid:attacker () in
        let happy = ref 0 and sources = ref 0 in
        for v = 0 to Topology.Graph.n g - 1 do
          if v <> dst && v <> attacker then begin
            incr sources;
            if Routing.Reach.any reach_d v && not (Routing.Reach.any reach_m v)
            then incr happy
          end
        done;
        {
          strategy;
          filtered = false;
          happy_lb = !happy;
          happy_ub = !happy;
          sources = !sources;
        }
    | Prefix_hijack ->
        let out =
          Routing.Engine.compute ~attacker_claim:0 g policy dep ~dst
            ~attacker:(Some attacker)
        in
        of_counts strategy ~filtered:false (Metric.H_metric.happy out)
    | Fabricated_path k ->
        let out =
          Routing.Engine.compute ~attacker_claim:k g policy dep ~dst
            ~attacker:(Some attacker)
        in
        of_counts strategy ~filtered:false (Metric.H_metric.happy out)
