(** The threat-model strategy space of Section 3.

    The paper's evaluation fixes one attacker strategy — announcing the
    bogus one-hop path ["m d"] via legacy BGP — because it is both simple
    and, with origin authentication deployed, essentially the strongest
    available (finding the optimal set of announcements is NP-hard, and
    shorter claims attract more sources).  This module makes the
    surrounding strategy space explicit, so the motivation can be
    reproduced quantitatively:

    - classic prefix and subprefix hijacks, which origin validation (our
      {!Rpki} substrate) detects and filters;
    - fabricated paths of any claimed length, which pass origin
      validation and are only blunted by path validation (S*BGP). *)

type strategy =
  | Prefix_hijack
      (** Originate the victim's exact prefix (claimed path length 0). *)
  | Subprefix_hijack
      (** Originate a more-specific prefix of the victim's.  When not
          filtered, longest-prefix forwarding sends {e every} source with
          any route toward the attacker, regardless of BGP preferences. *)
  | Fabricated_path of int
      (** Announce, via legacy BGP, a fabricated path of the given
          claimed length ending at the victim ([Fabricated_path 1] is the
          paper's ["m d"] attack).  Must be >= 1. *)

val strategy_name : strategy -> string

val passes_origin_validation : strategy -> bool
(** Whether the bogus announcement survives RFC 6483 origin validation
    (checked against an actual ROA/announcement encoding via {!Rpki};
    see the implementation and tests). *)

type result = {
  strategy : strategy;
  filtered : bool;
      (** origin validation dropped the announcement before route
          selection *)
  happy_lb : int;
  happy_ub : int;
  sources : int;
}

val happy_fraction : result -> float * float

val simulate :
  ?origin_auth:bool ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attacker:int ->
  dst:int ->
  strategy ->
  result
(** [simulate g policy dep ~attacker ~dst strategy] counts happy sources
    under the attack.  [origin_auth] (default [true], the paper's
    setting) filters announcements that fail origin validation, turning
    the hijacks into no-ops.  An unfiltered subprefix hijack bypasses
    route selection entirely: a source stays happy only if it has no
    perceivable route to the attacker at all. *)
