(** Umbrella module: the public API of the S*BGP partial-deployment
    reproduction, re-exported under one roof.  Depend on [sbgp.core] and
    use [Core.Graph], [Core.Engine], etc.; the individual libraries remain
    available for finer-grained dependencies.

    Start with {!Topogen.generate} (or {!Serial.load} for real data), then
    {!Engine.compute} for a single routing outcome, {!Metric.h_metric} for
    the paper's security metric, and {!Partition.count} for the
    deployment-invariant bounds. *)

module Bucket_queue = Prelude.Bucket_queue
module Bitset = Prelude.Bitset
module Shard_cache = Prelude.Shard_cache
module Stats = Prelude.Stats
module Table = Prelude.Table
module Rng = Rng
module Graph = Topology.Graph
module Tiers = Topology.Tiers
module Serial = Topology.Serial
module Ixp = Topology.Ixp
module Topogen = Topogen
module Policy = Routing.Policy
module Outcome = Routing.Outcome
module Engine = Routing.Engine
module Batch = Routing.Batch
module Reference = Routing.Reference
module Staged = Routing.Staged
module Reach = Routing.Reach
module Incremental = Routing.Incremental
module Deployment = Deployment
module Bgpsim = Bgpsim
module Partition = Metric.Partition
module Phenomena = Metric.Phenomena
module Metric = Metric.H_metric
module Rpki = Rpki
module Attacks = Attacks
module Optimize = Optimize
module Parallel = Parallel
module Experiments = Experiments
module Check = Check
module Analysis = Analysis
