(* Figure 16: root-cause decomposition of the metric change under the
   last Tier 1+2 rollout step.  Paper: under security 3rd most secure
   routes are lost to downgrades or wasted on already-happy sources, and
   collateral benefits matter; under security 1st downgrades vanish and
   the metric gain is large, with rare collateral damages. *)

let name = "root-cause"
let title = "Figure 16: root causes of metric changes"
let paper = "Figure 16; Section 6.2"

let run (ctx : Context.t) =
  let dep = Deployment.tier1_tier2 ctx.graph ctx.tiers ~n_t1:13 ~n_t2:100 in
  let attackers =
    Context.sample ctx "rc-att" ctx.non_stubs (Context.scaled ctx 25)
  in
  let dsts = Context.sample ctx "rc-dst" ctx.all (Context.scaled ctx 25) in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let table =
    Prelude.Table.create
      ~header:
        [
          "model";
          "secure routes (normal)";
          "downgraded";
          "wasted on happy";
          "protecting unhappy";
          "collateral benefit";
          "collateral damage";
          "metric change";
        ]
  in
  List.iter
    (fun policy ->
      let total =
        Array.fold_left
          (fun acc { Metric.H_metric.attacker; dst } ->
            Metric.Phenomena.root_cause_add acc
              (Metric.Phenomena.root_cause ctx.graph policy dep ~attacker ~dst))
          Metric.Phenomena.root_cause_zero pairs
      in
      let f x = Prelude.Stats.fraction x total.Metric.Phenomena.sources in
      Prelude.Table.add_row table
        [
          Routing.Policy.name policy;
          Util.pct (f total.Metric.Phenomena.rc_secure_normal);
          Util.pct (f total.Metric.Phenomena.rc_downgraded);
          Util.pct (f total.Metric.Phenomena.rc_wasted);
          Util.pct (f total.Metric.Phenomena.rc_protecting);
          Util.pct (f total.Metric.Phenomena.rc_benefit);
          Util.pct (f total.Metric.Phenomena.rc_damage);
          Printf.sprintf "%+.1f%%"
            (100.
            *. (f total.Metric.Phenomena.rc_happy_dep
               -. f total.Metric.Phenomena.rc_happy_base));
        ])
    Context.policies;
  Util.header title paper
  ^ Printf.sprintf "S = all T1s, T2s and their stubs (%s); %d pairs\n"
      (Deployment.describe dep) (Array.length pairs)
  ^ Prelude.Table.to_string table
