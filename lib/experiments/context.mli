(** Shared setup for the paper's experiments: the synthetic AS graph (or
    its IXP-augmented variant), tier classification, and seeded sampling
    of attackers, destinations and sources.

    The paper averages over all |V|^2 attacker-destination pairs on a
    supercomputer; we estimate the same averages from seeded uniform
    samples (DESIGN.md §4).  [scale] multiplies every sample size, so any
    experiment can be re-run closer to exhaustively from the CLI. *)

type t = {
  label : string;  (** "base" or "ixp" *)
  graph : Topology.Graph.t;
  tiers : Topology.Tiers.t;
  cps : int array;
  seed : int;
  scale : float;
  all : int array;        (** every AS *)
  non_stubs : int array;  (** the non-stub attacker pool M' of Section 5 *)
}

val make :
  ?n:int -> ?seed:int -> ?ixp:bool -> ?scale:float -> unit -> t
(** Defaults: [n = 4000], [seed = 42], [ixp = false], [scale = 1.].
    Deterministic: the same arguments produce the same context. *)

val of_graph :
  ?seed:int -> ?scale:float -> label:string ->
  Topology.Graph.t -> cps:int array -> t
(** Wrap an externally loaded graph (e.g. real CAIDA data via
    {!Topology.Serial}). *)

val rng : t -> string -> Rng.t
(** A fresh generator derived from the context seed and a purpose string,
    so experiments draw independent but reproducible samples. *)

val scaled : t -> int -> int
(** [scaled ctx k] is [k] multiplied by the context scale (at least 1). *)

val sample : t -> string -> int array -> int -> int array
(** [sample ctx purpose pool k] draws [min k (length pool)] distinct
    elements of [pool]. *)

val tier_members : t -> Topology.Tiers.tier -> int array

val policies : Routing.Policy.t list
(** The three standard-LP security models, in order 1st, 2nd, 3rd. *)

val sec1 : Routing.Policy.t
val sec2 : Routing.Policy.t
val sec3 : Routing.Policy.t

val describe : t -> string
