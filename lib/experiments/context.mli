(** Shared setup for the paper's experiments: the synthetic AS graph (or
    its IXP-augmented variant), tier classification, and seeded sampling
    of attackers, destinations and sources.

    The paper averages over all |V|^2 attacker-destination pairs on a
    supercomputer; we estimate the same averages from seeded uniform
    samples (DESIGN.md §4).  [scale] multiplies every sample size, so any
    experiment can be re-run closer to exhaustively from the CLI. *)

type t = {
  label : string;  (** "base" or "ixp" *)
  graph : Topology.Graph.t;
  tiers : Topology.Tiers.t;
  cps : int array;
  seed : int;
  scale : float;
  all : int array;        (** every AS *)
  non_stubs : int array;  (** the non-stub attacker pool M' of Section 5 *)
  domains : int;          (** worker-domain count for the experiment pool *)
  pool_cell : Parallel.Pool.t Lazy.t;  (** use {!pool} *)
  cache_cell : Metric.H_metric.Cache.t Lazy.t;  (** use {!cache} *)
  sample_log : (string, int * int) Hashtbl.t;
      (** per-purpose (pool digest, size) audit trail for {!sample} *)
}

val make :
  ?n:int -> ?seed:int -> ?ixp:bool -> ?scale:float -> ?domains:int ->
  unit -> t
(** Defaults: [n = 4000], [seed = 42], [ixp = false], [scale = 1.],
    [domains] from [SBGP_DOMAINS] / the runtime's recommendation.
    Deterministic: the same arguments produce the same context — and the
    experiment output does not depend on [domains] (per-pair results are
    reduced in a fixed order). *)

val of_graph :
  ?seed:int -> ?scale:float -> ?domains:int -> label:string ->
  Topology.Graph.t -> cps:int array -> t
(** Wrap an externally loaded graph (e.g. real CAIDA data via
    {!Topology.Serial}). *)

val pool : t -> Parallel.Pool.t
(** The context's worker pool, created lazily on first use ([domains]
    wide; the process-wide default pool is shared when the widths agree).
    Experiments thread this through {!Util}'s helpers. *)

val cache : t -> Metric.H_metric.Cache.t
(** The context's shared per-pair bounds cache, created lazily.  Scoped
    to this context's graph; experiments thread it through {!Util} and
    the {!Metric.H_metric.Evaluator}s so repeated deployments (e.g. the
    empty baseline) are computed once per policy and pair set. *)

val rng : t -> string -> Rng.t
(** A fresh generator derived from the context seed and a purpose string,
    so experiments draw independent but reproducible samples. *)

val scaled : t -> int -> int
(** [scaled ctx k] is [k] multiplied by the context scale (at least 1). *)

val sample : t -> string -> int array -> int -> int array
(** [sample ctx purpose pool k] draws [min k (length pool)] distinct
    elements of [pool].  Each purpose string names one sample stream:
    drawing the same purpose again with the same pool and size is a
    legitimate replay, but reusing it with a {e different} pool or size
    raises [Invalid_argument] — that pattern silently replays one index
    stream over unrelated data. *)

val priority_sample : t -> string -> int array -> int -> int array
(** [priority_sample ctx purpose pool k]: the [min k (length pool)]
    elements of [pool] with the smallest values under a fixed seeded
    pseudo-random priority over AS ids (derived from the context seed and
    [purpose]), returned sorted.  Because the priority is independent of
    the pool, each draw is a uniform [k]-subset of its pool — but unlike
    {!sample}, draws from {e overlapping} pools are coupled: nested pools
    (e.g. the secure sets of successive rollout steps) yield maximally
    overlapping samples.  That makes per-step estimates reusable across
    steps and variants, and turns step-to-step deltas into paired
    comparisons (a variance reduction).  Positionally sound for any pool,
    so purposes may be reused freely across pools — reuse is the point. *)

val tier_members : t -> Topology.Tiers.tier -> int array

val policies : Routing.Policy.t list
(** The three standard-LP security models, in order 1st, 2nd, 3rd. *)

val sec1 : Routing.Policy.t
val sec2 : Routing.Policy.t
val sec3 : Routing.Policy.t

val self_audit : ?options:Check.options -> t -> Check.Diagnostic.report
(** Run the full invariant checker ({!Check.run}) on the context's graph
    and tiers.  Defaults to {!Check.default_options} with the context's
    seed.  The [run] command invokes this before any experiment when
    [SBGP_CHECK=1] or [--check] is given, and aborts on errors. *)

val describe : t -> string
