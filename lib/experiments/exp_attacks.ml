(* Section 3's threat-model motivation, quantified: origin authentication
   already stops prefix and subprefix hijacks cold, while fabricated
   paths sail through origin validation — and the shortest claim ("m d")
   is the strongest, which is why the paper's evaluation fixes it. *)

let name = "attacks"
let title = "Section 3: attack strategies vs origin authentication and S*BGP"
let paper = "Section 3 (threat model)"

let strategies =
  Attacks.
    [
      Prefix_hijack;
      Subprefix_hijack;
      Fabricated_path 1;
      Fabricated_path 2;
      Fabricated_path 3;
      Fabricated_path 5;
    ]

let avg_happy (ctx : Context.t) policy dep ~origin_auth pairs strategy =
  let lb = ref 0. and ub = ref 0. in
  Array.iter
    (fun { Metric.H_metric.attacker; dst } ->
      let r =
        Attacks.simulate ~origin_auth ctx.graph policy dep ~attacker ~dst
          strategy
      in
      let flb, fub = Attacks.happy_fraction r in
      lb := !lb +. flb;
      ub := !ub +. fub)
    pairs;
  let n = float_of_int (Array.length pairs) in
  (!lb /. n, !ub /. n)

let run (ctx : Context.t) =
  let attackers =
    Context.sample ctx "atk-att" ctx.non_stubs (Context.scaled ctx 15)
  in
  let dsts = Context.sample ctx "atk-dst" ctx.all (Context.scaled ctx 15) in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let n = Topology.Graph.n ctx.graph in
  let empty = Deployment.empty n in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Util.header title paper);
  (* Part 1: what origin authentication alone does and does not stop. *)
  Buffer.add_string buf
    "No S*BGP deployed (S = {}), security 3rd; average happy-source fraction:\n";
  let table =
    Prelude.Table.create
      ~header:
        [ "attacker strategy"; "passes RPKI OV"; "no origin auth"; "with origin auth" ]
  in
  List.iter
    (fun strategy ->
      let no_oa, _ =
        avg_happy ctx Context.sec3 empty ~origin_auth:false pairs strategy
      in
      let with_oa, _ =
        avg_happy ctx Context.sec3 empty ~origin_auth:true pairs strategy
      in
      Prelude.Table.add_row table
        [
          Attacks.strategy_name strategy;
          (if Attacks.passes_origin_validation strategy then "yes" else "NO");
          Prelude.Stats.percent no_oa;
          Prelude.Stats.percent with_oa;
        ])
    strategies;
  Buffer.add_string buf (Prelude.Table.to_string table);
  Buffer.add_string buf
    "(origin authentication nullifies the hijacks; fabricated paths are\n\
     untouched by it, and shorter claims attract more sources — hence the\n\
     paper's focus on the \"m d\" announcement)\n\n";
  (* Part 2: what partially-deployed S*BGP adds against fabricated paths. *)
  Buffer.add_string buf
    "Fabricated paths vs partial S*BGP (T1s+T2s+stubs secure), origin auth on:\n";
  let dep = Deployment.tier1_tier2 ctx.graph ctx.tiers ~n_t1:13 ~n_t2:100 in
  let table2 =
    Prelude.Table.create
      ~header:[ "claimed length"; "sec 1st"; "sec 2nd"; "sec 3rd" ]
  in
  List.iter
    (fun k ->
      let cells =
        List.map
          (fun policy ->
            let lb, _ =
              avg_happy ctx policy dep ~origin_auth:true pairs
                (Attacks.Fabricated_path k)
            in
            Prelude.Stats.percent lb)
          Context.policies
      in
      Prelude.Table.add_row table2 (string_of_int k :: cells))
    [ 1; 2; 3; 5 ];
  Buffer.add_string buf (Prelude.Table.to_string table2);
  Buffer.contents buf
