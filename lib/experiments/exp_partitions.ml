(* Figure 3: the doomed / protectable / immune partition per security
   model, averaged over attacker-destination pairs, with the baseline
   H(emptyset) line.  Paper: upper bound on H(S) ~ 100% (sec 1st), 89%
   (sec 2nd), 75% (sec 3rd) against a 60% baseline; immune fractions
   ~0% / 12% / 60%-ish respectively. *)

let name = "partitions"
let title = "Figure 3: partitions into doomed / protectable / immune"
let paper = "Figure 3, Sections 4.3-4.4"

let run_policies (ctx : Context.t) policies =
  let attackers =
    Context.sample ctx "part-att" ctx.all (Context.scaled ctx 45)
  in
  let dsts = Context.sample ctx "part-dst" ctx.all (Context.scaled ctx 45) in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let dep = Deployment.empty (Topology.Graph.n ctx.graph) in
  let pool = Context.pool ctx in
  let baseline = Util.h ~pool ctx.graph Context.sec3 dep pairs in
  let table =
    Prelude.Table.create
      ~header:
        [ "model"; "doomed"; "protectable"; "immune"; "max H(S) (=1-doomed)" ]
  in
  List.iter
    (fun policy ->
      let doomed, protectable, immune =
        Util.partition_fractions ~pool ctx.graph policy pairs
      in
      Prelude.Table.add_row table
        [
          Routing.Policy.name policy;
          Util.pct doomed;
          Util.pct protectable;
          Util.pct immune;
          Util.pct (1. -. doomed);
        ])
    policies;
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Prelude.Table.to_string table);
  Buffer.add_string buf
    (Printf.sprintf "baseline H_{V,V}({}) (solid line in Figure 3): %s\n"
       (Util.pct_bounds baseline));
  Buffer.contents buf

let run ctx =
  Util.header title paper ^ run_policies ctx Context.policies
