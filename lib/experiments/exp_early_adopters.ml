(* Section 5.3.1: choosing early adopters.  Paper: deployments at the
   Tier 1s (even with the CPs, >20% of the graph) improve the average
   per-secure-destination metric by < 0.2% under security 2nd/3rd, while
   the 13 largest Tier 2s and their stubs already give ~1%. *)

let name = "early-adopters"
let title = "Section 5.3.1: Tier 1s vs Tier 2s as early adopters"
let paper = "Section 5.3.1"

let scenarios (ctx : Context.t) =
  [
    ( "all T1s + their stubs",
      Deployment.tier1_and_stubs ctx.graph ctx.tiers );
    ( "T1s + CPs + their stubs",
      Deployment.tier1_and_stubs ~with_cps:true ctx.graph ctx.tiers );
    ( "13 largest T2s + their stubs",
      Deployment.tier2_only ctx.graph ctx.tiers ~n_t2:13 );
  ]

let run (ctx : Context.t) =
  (* Shared rollout-family samples: the third scenario is the Figure 11
     chain's first step, so with nested samples its per-destination
     bounds are already cached when the rollout experiment ran first. *)
  let attackers = Util.rollout_attackers ctx ~k:25 in
  let table =
    Prelude.Table.create
      ~header:
        [ "deployment"; "secure"; "model"; "avg dH (pessimistic)"; "(optimistic)" ]
  in
  List.iter
    (fun (label, dep) ->
      let dsts = Util.secure_dsts ctx dep ~k:80 in
      List.iter
        (fun policy ->
          let deltas =
            Util.per_destination_changes ~pool:(Context.pool ctx)
              ~cache:(Context.cache ctx) ctx.graph policy dep ~attackers ~dsts
          in
          let mean f = Prelude.Stats.mean (Array.map (fun (_, b) -> f b) deltas) in
          Prelude.Table.add_row table
            [
              label;
              Deployment.describe dep;
              Routing.Policy.name policy;
              Util.pct (mean (fun b -> b.Metric.H_metric.lb));
              Util.pct (mean (fun b -> b.Metric.H_metric.ub));
            ])
        [ Context.sec2; Context.sec3 ];
      Prelude.Table.add_separator table)
    (scenarios ctx);
  Util.header title paper ^ Prelude.Table.to_string table
