(* Section 7 / Theorem 5.1: Max-k-Security rollouts.  The paper proves
   choosing the optimal k ASes to secure is NP-hard (Appendix I) and
   falls back on tier-driven rollouts; here we run the CELF lazy greedy
   (gated bit-identical to the naive greedy by [Check.Optimize]) and
   compare its prefix curve against the heuristics a deployment planner
   would actually reach for: uniformly random k-subsets and the
   highest-degree ASes.  Expectation: both structured strategies crush
   random; under security 1st the greedy leads from the first pick.
   Under security 2nd/3rd the objective is supermodular (a pick pays off
   only once it completes a contiguous secure chain), so the myopic
   greedy can even trail the degree heuristic at small k — the
   experimental face of Theorem 5.1's hardness. *)

let name = "optimize"
let title = "Theorem 5.1: greedy Max-k-Security vs random and degree rollouts"
let paper = "Section 7 discussion; Theorem 5.1; Appendix I"

module M = Metric.H_metric

(* Mean of bounds, for averaging the random draws. *)
let mean_bounds bs =
  let n = float_of_int (List.length bs) in
  let lb = List.fold_left (fun a b -> a +. b.M.lb) 0. bs /. n in
  let ub = List.fold_left (fun a b -> a +. b.M.ub) 0. bs /. n in
  { M.lb; ub }

(* k distinct draws from [pool] (k <= length pool). *)
let draw rng pool k =
  let a = Array.copy pool in
  let n = Array.length a in
  for i = 0 to k - 1 do
    let j = i + Rng.int rng (n - i) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.sub a 0 k

let run (ctx : Context.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Util.header title paper);
  let g = ctx.graph in
  let n = Topology.Graph.n g in
  let pool = Context.pool ctx in
  let cache = Context.cache ctx in
  let attackers = Util.rollout_attackers ctx ~k:10 in
  let dsts =
    Context.sample ctx "optimize-dst" ctx.all (Context.scaled ctx 6)
  in
  let excluded = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace excluded v ()) attackers;
  Array.iter (fun v -> Hashtbl.replace excluded v ()) dsts;
  (* Candidate pool: two provider/peer rings around the destinations.  A
     route is only secure when signed contiguously down to the (simplex)
     destination, so ASes scattered far from every destination have
     exactly zero marginal gain — any instance drawn uniformly from the
     non-stubs degenerates to all-zero curves.  Concentrating the pool
     where chains can actually form is what gives the greedy (and the
     baselines) something to optimize, and is also where the paper's
     supermodularity bites: under sec 2nd/3rd the first ring picks often
     gain nothing until a second-ring pick completes a chain. *)
  let ring = Hashtbl.create 64 in
  let add v = if not (Hashtbl.mem excluded v) then Hashtbl.replace ring v () in
  Array.iter
    (fun d ->
      Array.iter add (Topology.Graph.providers g d);
      Array.iter add (Topology.Graph.peers g d))
    dsts;
  let ring1 = Hashtbl.fold (fun v () acc -> v :: acc) ring [] in
  List.iter (fun v -> Array.iter add (Topology.Graph.providers g v)) ring1;
  let cand_pool =
    Hashtbl.fold (fun v () acc -> v :: acc) ring []
    |> List.sort compare |> Array.of_list
  in
  let candidates =
    Context.sample ctx "optimize-cand" cand_pool
      (min (Array.length cand_pool) (Context.scaled ctx 24))
  in
  let pairs = M.pairs ~attackers ~dsts () in
  (* Destinations sign their origins throughout (simplex base): without
     that, securing transit ASes is invisible to the metric and every
     strategy scores the baseline. *)
  let base = Deployment.make ~n ~full:[||] ~simplex:dsts () in
  let k_max = min 8 (Array.length candidates) in
  let ks = List.filter (fun k -> k <= k_max) [ 2; 4; 8 ] in
  Buffer.add_string buf
    (Printf.sprintf
       "%d candidates (destination provider/peer rings), %d attackers x %d \
        destinations, secure simplex destinations as base; dH = improvement \
        over the base, pessimistic / optimistic.\n"
       (Array.length candidates) (Array.length attackers) (Array.length dsts));
  let by_degree =
    let a = Array.copy candidates in
    Array.sort
      (fun u v ->
        let du = Array.length (Topology.Graph.customers g u)
        and dv = Array.length (Topology.Graph.customers g v) in
        if du <> dv then compare dv du else compare u v)
      a;
    a
  in
  let score_set policy chosen =
    let dep = Deployment.make ~n ~full:chosen ~simplex:dsts () in
    Util.h ~pool ~cache g policy dep pairs
  in
  let table =
    Prelude.Table.create
      ~header:
        [ "policy"; "k"; "dH greedy"; "dH degree"; "dH random"; "evals/step" ]
  in
  List.iter
    (fun policy ->
      let r =
        Optimize.Max_k.celf ~pool ~cache ~objective:`Lb ~base g policy ~pairs
          ~k:k_max ~candidates
      in
      let rng = Context.rng ctx ("optimize-rand-" ^ Routing.Policy.name policy) in
      List.iter
        (fun k ->
          let k = min k r.Optimize.Max_k.achieved in
          if k > 0 then begin
            let step = r.Optimize.Max_k.steps.(k - 1) in
            let greedy_d =
              M.bounds_improvement step.Optimize.Max_k.score
                r.Optimize.Max_k.baseline
            in
            let degree_d =
              M.bounds_improvement
                (score_set policy (Array.sub by_degree 0 k))
                r.Optimize.Max_k.baseline
            in
            let random_d =
              let draws =
                List.init 3 (fun _ -> score_set policy (draw rng candidates k))
              in
              M.bounds_improvement (mean_bounds draws)
                r.Optimize.Max_k.baseline
            in
            let evals =
              let upto =
                Array.fold_left
                  (fun a (s : Optimize.Max_k.step) -> a + s.engine_evals)
                  0
                  (Array.sub r.Optimize.Max_k.steps 0 k)
              in
              float_of_int upto /. float_of_int k
            in
            Prelude.Table.add_row table
              [
                Routing.Policy.name policy;
                string_of_int k;
                Util.pct_delta greedy_d;
                Util.pct_delta degree_d;
                Util.pct_delta random_d;
                Printf.sprintf "%.0f" evals;
              ]
          end)
        ks;
      Prelude.Table.add_separator table)
    Context.policies;
  Buffer.add_string buf (Prelude.Table.to_string table);
  Buffer.contents buf
