type t = {
  label : string;
  graph : Topology.Graph.t;
  tiers : Topology.Tiers.t;
  cps : int array;
  seed : int;
  scale : float;
  all : int array;
  non_stubs : int array;
  domains : int;
  pool_cell : Parallel.Pool.t Lazy.t;
  cache_cell : Metric.H_metric.Cache.t Lazy.t;
  sample_log : (string, int * int) Hashtbl.t;
}

let finish ~label ~seed ~scale ~domains graph cps =
  let tiers = Topology.Tiers.classify ~cps:(Array.to_list cps) graph in
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Context: domains must be >= 1"
    | None -> Parallel.default_domains ()
  in
  {
    label;
    graph;
    tiers;
    cps;
    seed;
    scale;
    all = Array.init (Topology.Graph.n graph) Fun.id;
    non_stubs = Topology.Tiers.non_stubs tiers;
    domains;
    pool_cell =
      (* Share the process-wide pool when the requested width matches it;
         contexts asking for a specific other width get their own pool.
         Lazy, so contexts that never run an experiment spawn nothing. *)
      lazy
        (if domains = Parallel.default_domains () then Parallel.default_pool ()
         else Parallel.Pool.create ~domains ());
    cache_cell = lazy (Metric.H_metric.Cache.create ());
    sample_log = Hashtbl.create 16;
  }

let pool t = Lazy.force t.pool_cell
let cache t = Lazy.force t.cache_cell

let make ?(n = 4000) ?(seed = 42) ?(ixp = false) ?(scale = 1.) ?domains () =
  let r = Topogen.generate ~params:(Topogen.default_params ~n) (Rng.create seed) in
  let graph, label =
    if ixp then begin
      let g, _added = Topology.Ixp.augment (Rng.create (seed + 1)) r.Topogen.graph in
      (g, "ixp")
    end
    else (r.Topogen.graph, "base")
  in
  finish ~label ~seed ~scale ~domains graph r.Topogen.cps

let of_graph ?(seed = 42) ?(scale = 1.) ?domains ~label graph ~cps =
  finish ~label ~seed ~scale ~domains graph cps

let rng t purpose =
  (* Mix the purpose string into the seed so each experiment gets an
     independent reproducible stream. *)
  Rng.create (t.seed + (7919 * Hashtbl.hash purpose))

let scaled t k = max 1 (int_of_float (ceil (float_of_int k *. t.scale)))

let pool_digest pool =
  Array.fold_left
    (fun h v -> ((h * 31) + v + 1) land max_int)
    (Array.length pool) pool

let sample t purpose pool k =
  let k = min k (Array.length pool) in
  (* A purpose string names one sample stream.  Reusing it against a
     different pool or size silently replays the same index stream over
     different data (the Figure 7(b) secure-destination bug), so flag it
     loudly; repeating an identical draw is legitimate and cheap. *)
  let digest = pool_digest pool in
  (match Hashtbl.find_opt t.sample_log purpose with
  | None -> Hashtbl.add t.sample_log purpose (digest, k)
  | Some (d, k') when d = digest && k' = k -> ()
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Context.sample: purpose %S reused with a different pool or size"
           purpose));
  let idx = Rng.sample_without_replacement (rng t purpose) k (Array.length pool) in
  let out = Array.map (fun i -> pool.(i)) idx in
  Array.sort Int.compare out;
  out

(* A fixed pseudo-random priority over AS ids, derived from the context
   seed and a purpose string.  splitmix64-style finalizer on OCaml's
   63-bit native ints — plenty for tie-free ordering of graph nodes. *)
let priority t purpose =
  let base = (t.seed * 0x9E3779B9) lxor (Hashtbl.hash purpose * 0x85EBCA6B) in
  fun v ->
    let z = base + ((v + 1) * 0x9E3779B97F4A7C1) in
    let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5B in
    let z = (z lxor (z lsr 27)) * 0x94D049BB133111E in
    (z lxor (z lsr 31)) land max_int

let priority_sample t purpose pool k =
  let k = min k (Array.length pool) in
  let pi = priority t purpose in
  let ranked = Array.map (fun v -> (pi v, v)) pool in
  Array.sort
    (fun (a, va) (b, vb) ->
      let c = Int.compare a b in
      if c <> 0 then c else Int.compare va vb)
    ranked;
  let out = Array.init k (fun i -> snd ranked.(i)) in
  Array.sort Int.compare out;
  out

let tier_members t tier = Topology.Tiers.members t.tiers tier

let sec1 = Routing.Policy.make Routing.Policy.Security_first
let sec2 = Routing.Policy.make Routing.Policy.Security_second
let sec3 = Routing.Policy.make Routing.Policy.Security_third
let policies = [ sec1; sec2; sec3 ]

let self_audit ?options t =
  let options =
    match options with
    | Some o -> o
    | None -> { Check.default_options with Check.seed = t.seed }
  in
  Check.run ~options ~tiers:t.tiers t.graph

let describe t =
  Printf.sprintf "graph=%s n=%d c2p=%d p2p=%d seed=%d scale=%.1f" t.label
    (Topology.Graph.n t.graph)
    (Topology.Graph.num_customer_provider_edges t.graph)
    (Topology.Graph.num_peer_edges t.graph)
    t.seed t.scale
