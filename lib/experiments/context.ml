type t = {
  label : string;
  graph : Topology.Graph.t;
  tiers : Topology.Tiers.t;
  cps : int array;
  seed : int;
  scale : float;
  all : int array;
  non_stubs : int array;
  domains : int;
  pool_cell : Parallel.Pool.t Lazy.t;
}

let finish ~label ~seed ~scale ~domains graph cps =
  let tiers = Topology.Tiers.classify ~cps:(Array.to_list cps) graph in
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Context: domains must be >= 1"
    | None -> Parallel.default_domains ()
  in
  {
    label;
    graph;
    tiers;
    cps;
    seed;
    scale;
    all = Array.init (Topology.Graph.n graph) Fun.id;
    non_stubs = Topology.Tiers.non_stubs tiers;
    domains;
    pool_cell =
      (* Share the process-wide pool when the requested width matches it;
         contexts asking for a specific other width get their own pool.
         Lazy, so contexts that never run an experiment spawn nothing. *)
      lazy
        (if domains = Parallel.default_domains () then Parallel.default_pool ()
         else Parallel.Pool.create ~domains ());
  }

let pool t = Lazy.force t.pool_cell

let make ?(n = 4000) ?(seed = 42) ?(ixp = false) ?(scale = 1.) ?domains () =
  let r = Topogen.generate ~params:(Topogen.default_params ~n) (Rng.create seed) in
  let graph, label =
    if ixp then begin
      let g, _added = Topology.Ixp.augment (Rng.create (seed + 1)) r.Topogen.graph in
      (g, "ixp")
    end
    else (r.Topogen.graph, "base")
  in
  finish ~label ~seed ~scale ~domains graph r.Topogen.cps

let of_graph ?(seed = 42) ?(scale = 1.) ?domains ~label graph ~cps =
  finish ~label ~seed ~scale ~domains graph cps

let rng t purpose =
  (* Mix the purpose string into the seed so each experiment gets an
     independent reproducible stream. *)
  Rng.create (t.seed + (7919 * Hashtbl.hash purpose))

let scaled t k = max 1 (int_of_float (ceil (float_of_int k *. t.scale)))

let sample t purpose pool k =
  let k = min k (Array.length pool) in
  let idx = Rng.sample_without_replacement (rng t purpose) k (Array.length pool) in
  let out = Array.map (fun i -> pool.(i)) idx in
  Array.sort Int.compare out;
  out

let tier_members t tier = Topology.Tiers.members t.tiers tier

let sec1 = Routing.Policy.make Routing.Policy.Security_first
let sec2 = Routing.Policy.make Routing.Policy.Security_second
let sec3 = Routing.Policy.make Routing.Policy.Security_third
let policies = [ sec1; sec2; sec3 ]

let self_audit ?options t =
  let options =
    match options with
    | Some o -> o
    | None -> { Check.default_options with Check.seed = t.seed }
  in
  Check.run ~options ~tiers:t.tiers t.graph

let describe t =
  Printf.sprintf "graph=%s n=%d c2p=%d p2p=%d seed=%d scale=%.1f" t.label
    (Topology.Graph.n t.graph)
    (Topology.Graph.num_customer_provider_edges t.graph)
    (Topology.Graph.num_peer_edges t.graph)
    t.seed t.scale
