type t = {
  label : string;
  graph : Topology.Graph.t;
  tiers : Topology.Tiers.t;
  cps : int array;
  seed : int;
  scale : float;
  all : int array;
  non_stubs : int array;
}

let finish ~label ~seed ~scale graph cps =
  let tiers = Topology.Tiers.classify ~cps:(Array.to_list cps) graph in
  {
    label;
    graph;
    tiers;
    cps;
    seed;
    scale;
    all = Array.init (Topology.Graph.n graph) Fun.id;
    non_stubs = Topology.Tiers.non_stubs tiers;
  }

let make ?(n = 4000) ?(seed = 42) ?(ixp = false) ?(scale = 1.) () =
  let r = Topogen.generate ~params:(Topogen.default_params ~n) (Rng.create seed) in
  let graph, label =
    if ixp then begin
      let g, _added = Topology.Ixp.augment (Rng.create (seed + 1)) r.Topogen.graph in
      (g, "ixp")
    end
    else (r.Topogen.graph, "base")
  in
  finish ~label ~seed ~scale graph r.Topogen.cps

let of_graph ?(seed = 42) ?(scale = 1.) ~label graph ~cps =
  finish ~label ~seed ~scale graph cps

let rng t purpose =
  (* Mix the purpose string into the seed so each experiment gets an
     independent reproducible stream. *)
  Rng.create (t.seed + (7919 * Hashtbl.hash purpose))

let scaled t k = max 1 (int_of_float (ceil (float_of_int k *. t.scale)))

let sample t purpose pool k =
  let k = min k (Array.length pool) in
  let idx = Rng.sample_without_replacement (rng t purpose) k (Array.length pool) in
  let out = Array.map (fun i -> pool.(i)) idx in
  Array.sort compare out;
  out

let tier_members t tier = Topology.Tiers.members t.tiers tier

let sec1 = Routing.Policy.make Routing.Policy.Security_first
let sec2 = Routing.Policy.make Routing.Policy.Security_second
let sec3 = Routing.Policy.make Routing.Policy.Security_third
let policies = [ sec1; sec2; sec3 ]

let describe t =
  Printf.sprintf "graph=%s n=%d c2p=%d p2p=%d seed=%d scale=%.1f" t.label
    (Topology.Graph.n t.graph)
    (Topology.Graph.num_customer_provider_edges t.graph)
    (Topology.Graph.num_peer_edges t.graph)
    t.seed t.scale
