(* Figures 4-6 (and the source-tier figure the paper omits): partitions
   broken down by the tier of the destination, the attacker, or the
   source.  Paper highlights: Tier 1 destinations are ~80% doomed under
   security 2nd/3rd (Figures 4-5); Tier 1 attackers are the least
   effective (Figure 6); source tiers look alike (Section 4.7). *)

let name = "partitions-tier"
let title = "Figures 4-6: partitions by destination / attacker / source tier"
let paper = "Figures 4, 5, 6; Sections 4.5-4.7"

let tier_list =
  (* Order as in the paper's figures. *)
  Topology.Tiers.
    [ Stub; Stub_x; Smdg; Small_cp; Cp; T3; T2; T1 ]

let by_destination (ctx : Context.t) policy =
  let attackers =
    Context.sample ctx "ptier-att" ctx.all (Context.scaled ctx 35)
  in
  let table =
    Prelude.Table.create
      ~header:[ "dest tier"; "doomed"; "protectable"; "immune"; "H({}) lb" ]
  in
  List.iter
    (fun tier ->
      let members = Context.tier_members ctx tier in
      if Array.length members > 0 then begin
        let dsts =
          Context.sample ctx
            ("ptier-dst-" ^ Topology.Tiers.tier_name tier)
            members (Context.scaled ctx 25)
        in
        let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
        let pool = Context.pool ctx in
        let doomed, protectable, immune =
          Util.partition_fractions ~pool ctx.graph policy pairs
        in
        let baseline =
          Util.h ~pool ctx.graph policy
            (Deployment.empty (Topology.Graph.n ctx.graph))
            pairs
        in
        Prelude.Table.add_row table
          [
            Topology.Tiers.tier_name tier;
            Util.pct doomed;
            Util.pct protectable;
            Util.pct immune;
            Util.pct baseline.Metric.H_metric.lb;
          ]
      end)
    tier_list;
  table

let by_attacker (ctx : Context.t) policy =
  let dsts = Context.sample ctx "atier-dst" ctx.all (Context.scaled ctx 35) in
  let table =
    Prelude.Table.create
      ~header:[ "attacker tier"; "doomed"; "protectable"; "immune" ]
  in
  List.iter
    (fun tier ->
      let members = Context.tier_members ctx tier in
      if Array.length members > 0 then begin
        let attackers =
          Context.sample ctx
            ("atier-att-" ^ Topology.Tiers.tier_name tier)
            members (Context.scaled ctx 25)
        in
        let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
        let doomed, protectable, immune =
          Util.partition_fractions ~pool:(Context.pool ctx) ctx.graph policy
            pairs
        in
        Prelude.Table.add_row table
          [
            Topology.Tiers.tier_name tier;
            Util.pct doomed;
            Util.pct protectable;
            Util.pct immune;
          ]
      end)
    tier_list;
  table

let by_source (ctx : Context.t) policy =
  let attackers = Context.sample ctx "stier-att" ctx.all (Context.scaled ctx 30) in
  let dsts = Context.sample ctx "stier-dst" ctx.all (Context.scaled ctx 30) in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let table =
    Prelude.Table.create
      ~header:[ "source tier"; "doomed"; "protectable"; "immune" ]
  in
  List.iter
    (fun tier ->
      let members = Context.tier_members ctx tier in
      if Array.length members > 0 then begin
        let doomed, protectable, immune =
          Util.partition_fractions_among ~pool:(Context.pool ctx) ctx.graph
            policy pairs ~sources:members
        in
        Prelude.Table.add_row table
          [
            Topology.Tiers.tier_name tier;
            Util.pct doomed;
            Util.pct protectable;
            Util.pct immune;
          ]
      end)
    tier_list;
  table

let run (ctx : Context.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Util.header title paper);
  Buffer.add_string buf "Figure 4 - by destination tier, security 3rd:\n";
  Buffer.add_string buf (Prelude.Table.to_string (by_destination ctx Context.sec3));
  Buffer.add_string buf "\nFigure 5 - by destination tier, security 2nd:\n";
  Buffer.add_string buf (Prelude.Table.to_string (by_destination ctx Context.sec2));
  Buffer.add_string buf "\nFigure 6 - by attacker tier, security 3rd:\n";
  Buffer.add_string buf (Prelude.Table.to_string (by_attacker ctx Context.sec3));
  Buffer.add_string buf
    "\nSection 4.7 (figure omitted in paper) - by source tier, security 3rd:\n";
  Buffer.add_string buf (Prelude.Table.to_string (by_source ctx Context.sec3));
  Buffer.contents buf
