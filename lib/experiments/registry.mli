(** Index of every experiment, used by the CLI and the bench harness. *)

type entry = {
  id : string;
  title : string;
  paper : string;
  run : Context.t -> string;
}

val all : entry list
(** In presentation order: baseline, Figure 3, Figures 4-6, rollouts,
    per-destination, Figure 13, early adopters, Figure 16, Table 3,
    Appendix K, attacks, extensions, anecdotes. *)

val find : string -> entry option
val ids : unit -> string list
