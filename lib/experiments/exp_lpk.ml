(* Appendix K: sensitivity to the local-preference model.  Figures 24-25:
   partitions under the LP2 policy variant, overall and by destination
   tier.  Paper: sec 3rd headroom shrinks slightly (upper bound ~82% vs
   ~75%... actually 82% on UCLA), high-degree destinations gain many
   immune sources, and Tier 1 destinations are no longer mostly doomed. *)

let name = "lpk"
let title = "Figures 24-25: LP2 policy variant partitions"
let paper = "Appendix K; Figures 24, 25"

let lp2 model = Routing.Policy.make ~lp:(Routing.Policy.Lp_k 2) model

let run (ctx : Context.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Util.header title paper);
  let lpinf model = Routing.Policy.make ~lp:(Routing.Policy.Lp_k 60) model in
  let policies =
    [
      lp2 Routing.Policy.Security_first;
      lp2 Routing.Policy.Security_second;
      lp2 Routing.Policy.Security_third;
      (* Appendix K's "k to infinity" remark: customers and peers ranked
         purely by length (k = 60 exceeds every path length here). *)
      lpinf Routing.Policy.Security_second;
      lpinf Routing.Policy.Security_third;
    ]
  in
  Buffer.add_string buf
    "Figure 24 - overall partitions under LP2 (and the k->infinity variant):\n";
  Buffer.add_string buf (Exp_partitions.run_policies ctx policies);
  (* Figure 25: by destination tier for sec 3rd and sec 2nd under LP2. *)
  let attackers = Context.sample ctx "lpk-att" ctx.all (Context.scaled ctx 30) in
  let tiers_order =
    Topology.Tiers.[ Stub; Stub_x; Smdg; Small_cp; Cp; T3; T2; T1 ]
  in
  List.iter
    (fun policy ->
      Buffer.add_string buf
        (Printf.sprintf "\nFigure 25 - by destination tier, %s:\n"
           (Routing.Policy.name policy));
      let table =
        Prelude.Table.create
          ~header:[ "dest tier"; "doomed"; "protectable"; "immune" ]
      in
      List.iter
        (fun tier ->
          let members = Context.tier_members ctx tier in
          if Array.length members > 0 then begin
            let dsts =
              Context.sample ctx
                ("lpk-dst-" ^ Topology.Tiers.tier_name tier)
                members (Context.scaled ctx 20)
            in
            let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
            let doomed, protectable, immune =
              Util.partition_fractions ~pool:(Context.pool ctx) ctx.graph
                policy pairs
            in
            Prelude.Table.add_row table
              [
                Topology.Tiers.tier_name tier;
                Util.pct doomed;
                Util.pct protectable;
                Util.pct immune;
              ]
          end)
        tiers_order;
      Buffer.add_string buf (Prelude.Table.to_string table))
    [ lp2 Routing.Policy.Security_third; lp2 Routing.Policy.Security_second ];
  Buffer.contents buf
