(* Table 3: which phenomena occur in which security model.  Paper:
   protocol downgrades in 2nd/3rd only; collateral benefits in all three;
   collateral damages in 1st/2nd only. *)

let name = "phenomena"
let title = "Table 3: phenomena per security model"
let paper = "Table 3; Sections 3.2, 6.1"

let run (ctx : Context.t) =
  let dep = Deployment.tier1_tier2 ctx.graph ctx.tiers ~n_t1:13 ~n_t2:100 in
  let attackers =
    Context.sample ctx "phen-att" ctx.non_stubs (Context.scaled ctx 20)
  in
  let dsts = Context.sample ctx "phen-dst" ctx.all (Context.scaled ctx 20) in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let table =
    Prelude.Table.create
      ~header:
        [
          "model";
          "protocol downgrades";
          "collateral benefits";
          "collateral damages";
        ]
  in
  let mark count expected =
    Printf.sprintf "%s (%d)" (if count > 0 then "yes" else "no") count
    ^ if (count > 0) = expected then "" else " [unexpected]"
  in
  List.iter
    (fun (policy, exp_down, exp_damage) ->
      let down = ref 0 and benefit = ref 0 and damage = ref 0 in
      Array.iter
        (fun { Metric.H_metric.attacker; dst } ->
          let dg =
            Metric.Phenomena.downgrades ctx.graph policy dep ~attacker ~dst
          in
          down := !down + dg.Metric.Phenomena.downgraded;
          let col =
            Metric.Phenomena.collateral ctx.graph policy
              ~baseline:(Deployment.empty (Topology.Graph.n ctx.graph))
              ~deployment:dep ~attacker ~dst
          in
          benefit := !benefit + col.Metric.Phenomena.benefit;
          damage := !damage + col.Metric.Phenomena.damage)
        pairs;
      Prelude.Table.add_row table
        [
          Routing.Policy.name policy;
          mark !down exp_down;
          mark !benefit true;
          mark !damage exp_damage;
        ])
    [
      (Context.sec1, false, true);
      (Context.sec2, true, true);
      (Context.sec3, true, false);
    ];
  Util.header title paper
  ^ Printf.sprintf "%d pairs, S = T1s+T2s+stubs\n" (Array.length pairs)
  ^ Prelude.Table.to_string table
  ^ "paper's Table 3: downgrades in 2nd/3rd; benefits in all; damages in 1st/2nd\n"
