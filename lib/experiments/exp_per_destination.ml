(* Figures 9, 10, 12: the non-decreasing per-destination sequences of
   H_{M',d}(S) - H_{M',d}({}) for secure destinations, summarized as
   quantiles per model.

   Paper expectations: under the Tier1+2 deployment (Figure 9) security
   1st gives near-total protection (true H ~ 97%) with the largest gains
   at Tier 1 destinations; most destinations see similar (small) gains
   under security 2nd and 3rd; the sec2-sec1 gap narrows for the Tier-2
   rollout (Figure 10) and nearly closes when only non-stubs are secure
   (Figure 12). *)

let name = "per-destination"
let title = "Figures 9, 10, 12: per-destination metric improvements"
let paper = "Figures 9, 10, 12; Sections 5.2.3-5.2.4"

let quantile_points = [ 0.10; 0.25; 0.50; 0.75; 0.90; 1.0 ]

let summary (ctx : Context.t) dep =
  (* Rollout-family shared samples (Util): the attacker prefix and the
     priority-ordered destination draw make these pair sets supersets of
     the ones the rollout experiment evaluates at the same deployments
     (Figure 9 is the Figure 7(a) chain's middle step; Figures 10 and 12
     are rollout endpoints), so a shared cache serves the overlap. *)
  let attackers = Util.rollout_attackers ctx ~k:20 in
  let dsts = Util.secure_dsts ctx dep ~k:120 in
  let table =
    Prelude.Table.create
      ~header:
        ([ "model"; "mean dH" ]
        @ List.map (fun q -> Printf.sprintf "p%.0f" (100. *. q)) quantile_points
        @ [ "<4% gain"; "H(S) mean" ])
  in
  let sec2_small = ref [||] and sec3_small = ref [||] in
  List.iter
    (fun policy ->
      let deltas =
        Util.per_destination_changes ~pool:(Context.pool ctx)
          ~cache:(Context.cache ctx) ctx.graph policy dep ~attackers ~dsts
      in
      let lbs = Array.map (fun (_, b) -> b.Metric.H_metric.lb) deltas in
      let small_gain =
        Array.map (fun (d, b) -> (d, b.Metric.H_metric.lb < 0.04)) deltas
      in
      if policy == Context.sec2 then sec2_small := small_gain;
      if policy == Context.sec3 then sec3_small := small_gain;
      let frac_small =
        Prelude.Stats.fraction
          (Array.fold_left (fun acc (_, s) -> if s then acc + 1 else acc) 0 small_gain)
          (Array.length small_gain)
      in
      (* True protection level under this deployment (not the delta). *)
      let h_mean =
        Prelude.Stats.mean
          (Parallel.map ~pool:(Context.pool ctx)
             (fun dst ->
               (Metric.H_metric.h_metric_per_dst ~cache:(Context.cache ctx)
                  ctx.graph policy dep ~attackers ~dst)
                 .Metric.H_metric.lb)
             dsts)
      in
      Prelude.Table.add_row table
        ([ Routing.Policy.name policy; Util.pct (Prelude.Stats.mean lbs) ]
        @ List.map (fun q -> Util.pct (Prelude.Stats.quantile lbs q)) quantile_points
        @ [ Util.pct frac_small; Util.pct h_mean ]))
    Context.policies;
  (* Section 5.2.3: destinations stuck under sec3 are usually stuck under
     sec2 as well. *)
  let overlap =
    let matches = ref 0 and total = ref 0 in
    Array.iteri
      (fun i (_, small3) ->
        if small3 then begin
          incr total;
          if Array.length !sec2_small > i && snd (!sec2_small).(i) then
            incr matches
        end)
      !sec3_small;
    Prelude.Stats.fraction !matches !total
  in
  Prelude.Table.to_string table
  ^ Printf.sprintf
      "of destinations with <4%% gain under sec 3rd, %s also gain <4%% under sec 2nd (paper: 93%%)\n"
      (Util.pct overlap)

let run (ctx : Context.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Util.header title paper);
  let scenarios =
    [
      ( "Figure 9 - S = all T1s, T2s and their stubs",
        Deployment.tier1_tier2 ctx.graph ctx.tiers ~n_t1:13 ~n_t2:100 );
      ( "Figure 10 - S = all T2s and their stubs",
        Deployment.tier2_only ctx.graph ctx.tiers ~n_t2:100 );
      ( "Figure 12 - S = all non-stubs",
        Deployment.non_stubs ctx.graph ctx.tiers );
    ]
  in
  List.iter
    (fun (label, dep) ->
      Buffer.add_string buf (Printf.sprintf "%s (%s):\n" label (Deployment.describe dep));
      Buffer.add_string buf (summary ctx dep);
      Buffer.add_char buf '\n')
    scenarios;
  Buffer.contents buf
