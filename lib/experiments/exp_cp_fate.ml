(* Figure 13: what happens to the secure routes toward each content
   provider when S is the Tier 1s, the CPs, and all their stubs, under
   security 3rd.  Paper: most secure routes are lost to protocol
   downgrades, and almost all that survive belong to immune sources. *)

let name = "cp-fate"
let title = "Figure 13: fate of secure routes to content providers"
let paper = "Figure 13; Section 5.3.1"

let run_policy (ctx : Context.t) policy =
  let dep = Deployment.tier1_and_stubs ~with_cps:true ctx.graph ctx.tiers in
  let attackers =
    Context.sample ctx "cpfate-att" ctx.non_stubs (Context.scaled ctx 30)
  in
  let n = Topology.Graph.n ctx.graph in
  let pool = Context.pool ctx in
  let table =
    Prelude.Table.create
      ~header:
        [
          "CP dest";
          "secure routes (normal)";
          "lost to downgrade";
          "kept, immune source";
          "kept, other";
        ]
  in
  Array.iteri
    (fun cp_index dst ->
      (* [normal] is shared read-only by every worker below, so it must
         not live in any domain's reusable workspace. *)
      let normal =
        Routing.Engine.compute ctx.graph policy dep ~dst ~attacker:None
      in
      let secure_normal = ref 0 in
      for v = 0 to n - 1 do
        if v <> dst && Routing.Outcome.secure normal v then incr secure_normal
      done;
      let per_attacker =
        Parallel.map ~pool
          (fun attacker ->
            if attacker = dst then (0, 0, 0, 0)
            else begin
              let ws = Routing.Engine.Workspace.local () in
              (* [classes] is materialized into a fresh array, so it is
                 safe to recycle [ws] for [attack] afterwards. *)
              let classes =
                Metric.Partition.compute ~ws ctx.graph policy ~attacker ~dst
              in
              let attack =
                Routing.Engine.compute ~ws ctx.graph policy dep ~dst
                  ~attacker:(Some attacker)
              in
              let downgraded = ref 0
              and kept_immune = ref 0
              and kept_other = ref 0 in
              for v = 0 to n - 1 do
                if v <> dst && v <> attacker && Routing.Outcome.secure normal v
                then
                  if not (Routing.Outcome.secure attack v) then incr downgraded
                  else if classes.(v) = Metric.Partition.Immune then
                    incr kept_immune
                  else incr kept_other
              done;
              (1, !downgraded, !kept_immune, !kept_other)
            end)
          attackers
      in
      let samples, downgraded, kept_immune, kept_other =
        Array.fold_left
          (fun (s, d, ki, ko) (s', d', ki', ko') ->
            (s + s', d + d', ki + ki', ko + ko'))
          (0, 0, 0, 0) per_attacker
      in
      let sources = float_of_int ((n - 2) * samples) in
      let frac x = float_of_int x /. sources in
      Prelude.Table.add_row table
        [
          Printf.sprintf "CP%d (AS %d)" (cp_index + 1) dst;
          Util.pct (float_of_int !secure_normal /. float_of_int (n - 1));
          Util.pct (frac downgraded);
          Util.pct (frac kept_immune);
          Util.pct (frac kept_other);
        ])
    ctx.cps;
  table

let run (ctx : Context.t) =
  Util.header title paper
  ^ "security 3rd:\n"
  ^ Prelude.Table.to_string (run_policy ctx Context.sec3)
