(* The paper's running examples, reproduced on their exact (anonymized)
   mini-topologies: the S*BGP Wedgie (Figure 1), the protocol downgrade
   attack (Figure 2), collateral damage and benefit (Figures 14, 15) and
   export-policy collateral damage under security 1st (Figure 17). *)

let name = "anecdotes"
let title = "Figures 1, 2, 14, 15, 17: the paper's running examples"
let paper = "Figures 1, 2, 14, 15, 17"

let c2p a b = Topology.Graph.Customer_provider (a, b)
let p2p a b = Topology.Graph.Peer_peer (a, b)
let sec1 = Context.sec1
let sec2 = Context.sec2
let sec3 = Context.sec3

let path_str out v =
  match Routing.Outcome.path out v with
  | [] -> "(no route)"
  | p -> String.concat " -> " (List.map string_of_int p)

let figure2 () =
  let buf = Buffer.create 512 in
  (* ids: Level3 dst=0, webhost 21740=1, Cogent 174=2, 3491=3, m=4,
     stub 3536=5. *)
  let g =
    Topology.Graph.of_edges ~n:6
      [ c2p 1 0; p2p 1 2; p2p 2 0; c2p 3 2; c2p 4 3; c2p 5 0 ]
  in
  let dep = Deployment.make ~n:6 ~full:[| 0; 1; 5 |] () in
  Buffer.add_string buf
    "Figure 2 - protocol downgrade against a Tier 1 destination\n\
     (0=Level3/dst, 1=webhost 21740, 2=Cogent, 3=AS3491, 4=attacker, 5=stub)\n";
  let normal = Routing.Engine.compute g sec2 dep ~dst:0 ~attacker:None in
  Buffer.add_string buf
    (Printf.sprintf "  normal: webhost path %s (secure=%b)\n"
       (path_str normal 1) (Routing.Outcome.secure normal 1));
  List.iter
    (fun (label, policy) ->
      let attack = Routing.Engine.compute g policy dep ~dst:0 ~attacker:(Some 4) in
      Buffer.add_string buf
        (Printf.sprintf "  under attack, %s: webhost path %s (secure=%b, %s)\n"
           label (path_str attack 1)
           (Routing.Outcome.secure attack 1)
           (if Routing.Outcome.happy_lb attack 1 then "happy"
            else "DOWNGRADED to the bogus route")))
    [ ("security 1st", sec1); ("security 2nd", sec2); ("security 3rd", sec3) ];
  Buffer.contents buf

let figure1 () =
  let buf = Buffer.create 512 in
  (* ids: AS3 dst=0, 8928=1, 34226=2, 31283=3, 29518=4, 31027=5. *)
  let g =
    Topology.Graph.of_edges ~n:6
      [ c2p 0 5; c2p 0 1; c2p 1 2; c2p 2 3; c2p 3 4; c2p 4 5 ]
  in
  let dep = Deployment.make ~n:6 ~full:[| 0; 2; 3; 4; 5 |] () in
  let policy_of v = if v = 3 then sec1 else sec3 in
  let sim = Bgpsim.create ~policy_of g sec3 dep ~dst:0 () in
  Buffer.add_string buf
    "Figure 1 - S*BGP Wedgie under inconsistent security placement\n\
     (0=dst AS3, 3=AS31283 ranks security 1st, 4=AS29518 ranks it 3rd)\n";
  Bgpsim.set_link sim 2 3 ~up:false;
  ignore (Bgpsim.run sim);
  Bgpsim.set_link sim 2 3 ~up:true;
  ignore (Bgpsim.run sim);
  let show label =
    Buffer.add_string buf
      (Printf.sprintf "  %s: AS31283 path %s, AS29518 path %s\n" label
         (match Bgpsim.chosen_path sim 3 with
         | Some p -> String.concat " -> " (List.map string_of_int p)
         | None -> "(none)")
         (match Bgpsim.chosen_path sim 4 with
         | Some p -> String.concat " -> " (List.map string_of_int p)
         | None -> "(none)"))
  in
  show "intended state";
  Bgpsim.set_link sim 5 0 ~up:false;
  ignore (Bgpsim.run sim);
  show "after link 31027-AS3 fails";
  Bgpsim.set_link sim 5 0 ~up:true;
  ignore (Bgpsim.run sim);
  show "after the link recovers (wedged!)";
  Buffer.contents buf

let figure14 () =
  let buf = Buffer.create 512 in
  (* Collateral damage mechanism under security 2nd; strictly-happy
     baseline (see examples/collateral.ml for the construction). *)
  let g =
    Topology.Graph.of_edges ~n:10
      [
        c2p 0 1; c2p 1 2; c2p 0 3; c2p 3 4; c2p 4 5; c2p 5 2;
        c2p 6 2; c2p 6 7; c2p 8 7; c2p 9 8;
      ]
  in
  let s = Deployment.make ~n:10 ~full:[| 0; 2; 3; 4; 5 |] () in
  Buffer.add_string buf
    "Figure 14 - collateral damage under security 2nd\n\
     (0=dst, 2=secure ISP, 6=insecure victim, 9=attacker)\n";
  let base =
    Routing.Engine.compute g sec2 (Deployment.empty 10) ~dst:0 ~attacker:(Some 9)
  in
  let dep = Routing.Engine.compute g sec2 s ~dst:0 ~attacker:(Some 9) in
  Buffer.add_string buf
    (Printf.sprintf
       "  before S*BGP: ISP 2 uses %s; victim 6 happy: %b\n"
       (path_str base 2) (Routing.Outcome.happy_lb base 6));
  Buffer.add_string buf
    (Printf.sprintf
       "  after S*BGP:  ISP 2 prefers the longer secure %s; victim 6 happy: %b (collateral damage)\n"
       (path_str dep 2) (Routing.Outcome.happy_lb dep 6));
  let col3 =
    Metric.Phenomena.collateral g sec3 ~baseline:(Deployment.empty 10)
      ~deployment:s ~attacker:9 ~dst:0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  same scenario under security 3rd: %d damages (Theorem 6.1)\n"
       col3.Metric.Phenomena.damage);
  Buffer.contents buf

let figure15 () =
  let buf = Buffer.create 512 in
  let g =
    Topology.Graph.of_edges ~n:5 [ c2p 0 2; p2p 1 2; p2p 1 3; c2p 4 1 ]
  in
  let s = Deployment.make ~n:5 ~full:[| 0; 1; 2 |] () in
  Buffer.add_string buf
    "Figure 15 - collateral benefit under security 3rd\n\
     (0=dst Pandora, 1=AS3267, 3=attacker, 4=insecure customer AS34223)\n";
  let col =
    Metric.Phenomena.collateral g sec3 ~baseline:(Deployment.empty 5)
      ~deployment:s ~attacker:3 ~dst:0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  AS3267 ties between two equal peer routes; securing breaks the tie toward the destination.\n\
       \  collateral benefits: %d, damages: %d (Theorem 6.1: none possible)\n"
       col.Metric.Phenomena.benefit col.Metric.Phenomena.damage);
  Buffer.contents buf

let figure17 () =
  let buf = Buffer.create 512 in
  let g =
    Topology.Graph.of_edges ~n:8
      [ c2p 7 1; c2p 0 7; p2p 1 2; c2p 1 3; c2p 2 5; c2p 4 5; c2p 6 3; c2p 0 6 ]
  in
  let s = Deployment.make ~n:8 ~full:[| 0; 1; 3; 6 |] () in
  Buffer.add_string buf
    "Figure 17 - collateral damage under security 1st via export policy\n\
     (0=dst, 1=Optus, 2=Orange, 4=attacker)\n";
  let base =
    Routing.Engine.compute g sec1 (Deployment.empty 8) ~dst:0 ~attacker:(Some 4)
  in
  let dep = Routing.Engine.compute g sec1 s ~dst:0 ~attacker:(Some 4) in
  Buffer.add_string buf
    (Printf.sprintf "  before: Optus uses %s; Orange happy: %b\n"
       (path_str base 1) (Routing.Outcome.happy_lb base 2));
  Buffer.add_string buf
    (Printf.sprintf
       "  after:  Optus switches to the secure provider route %s; Ex silences the peer link; Orange happy: %b\n"
       (path_str dep 1) (Routing.Outcome.happy_lb dep 2));
  Buffer.contents buf

let run (_ctx : Context.t) =
  Util.header title paper
  ^ String.concat "\n" [ figure1 (); figure2 (); figure14 (); figure15 (); figure17 () ]
