(* Small shared helpers for experiment modules. *)

let pct = Prelude.Stats.percent

let pct_bounds (b : Metric.H_metric.bounds) =
  Printf.sprintf "[%s, %s]" (pct b.Metric.H_metric.lb) (pct b.Metric.H_metric.ub)

(* Render a metric improvement: the change in the pessimistic world and
   in the optimistic world. *)
let pct_delta (b : Metric.H_metric.bounds) =
  Printf.sprintf "%+.1f%% / %+.1f%%" (100. *. b.Metric.H_metric.lb)
    (100. *. b.Metric.H_metric.ub)

(* Average partition fractions over a set of attacker-destination pairs. *)
let partition_fractions g policy pairs =
  let total =
    Array.fold_left
      (fun acc { Metric.H_metric.attacker; dst } ->
        Metric.Partition.add acc
          (Metric.Partition.count g policy ~attacker ~dst))
      Metric.Partition.zero pairs
  in
  Metric.Partition.fractions total

let partition_fractions_among g policy pairs ~sources =
  let total =
    Array.fold_left
      (fun acc { Metric.H_metric.attacker; dst } ->
        Metric.Partition.add acc
          (Metric.Partition.count_among g policy ~attacker ~dst ~sources))
      Metric.Partition.zero pairs
  in
  Metric.Partition.fractions total

(* H over pairs, and the improvement over the empty deployment. *)
let h g policy dep pairs = Metric.H_metric.h_metric g policy dep pairs

let delta_h g policy dep pairs =
  let base = h g policy (Deployment.empty (Topology.Graph.n g)) pairs in
  let with_s = h g policy dep pairs in
  (base, with_s, Metric.H_metric.bounds_improvement with_s base)

let header title paper =
  Printf.sprintf "=== %s ===\n(paper: %s)\n" title paper

(* Per-destination metric change, for the Figure 9/10/12 sequences. *)
let per_destination_changes g policy dep ~attackers ~dsts =
  Array.map
    (fun dst ->
      let base =
        Metric.H_metric.h_metric_per_dst g policy
          (Deployment.empty (Topology.Graph.n g))
          ~attackers ~dst
      in
      let with_s = Metric.H_metric.h_metric_per_dst g policy dep ~attackers ~dst in
      (dst, Metric.H_metric.bounds_improvement with_s base))
    dsts
