(* Small shared helpers for experiment modules. *)

let pct = Prelude.Stats.percent

let pct_bounds (b : Metric.H_metric.bounds) =
  Printf.sprintf "[%s, %s]" (pct b.Metric.H_metric.lb) (pct b.Metric.H_metric.ub)

(* Render a metric improvement: the change in the pessimistic world and
   in the optimistic world. *)
let pct_delta (b : Metric.H_metric.bounds) =
  Printf.sprintf "%+.1f%% / %+.1f%%" (100. *. b.Metric.H_metric.lb)
    (100. *. b.Metric.H_metric.ub)

(* Average partition fractions over a set of attacker-destination pairs.
   The per-pair classifications are independent; fan them out over the
   pool (integer counts, so the reduction is order-insensitive anyway —
   we still reduce in input order). *)
let partition_counts ?pool pairs ~count_one =
  let per_pair =
    Parallel.map ?pool
      (fun { Metric.H_metric.attacker; dst } ->
        count_one ~ws:(Routing.Engine.Workspace.local ()) ~attacker ~dst)
      pairs
  in
  Array.fold_left Metric.Partition.add Metric.Partition.zero per_pair

let partition_fractions ?pool g policy pairs =
  let batched =
    (* Security 3rd classifies off one attacked solve, so pairs sharing
       a destination ride one batched drain; the other models derive
       the partition from reachability closures and stay per-pair. *)
    match (policy : Routing.Policy.t).model with
    | Security_third -> Metric.H_metric.batch_enabled ()
    | Security_first | Security_second -> false
  in
  let total =
    if batched then begin
      let items = Metric.H_metric.batch_plan pairs in
      let per_item =
        Parallel.map ?pool
          (fun (dst, attackers, _pos) ->
            Array.fold_left Metric.Partition.add Metric.Partition.zero
              (Metric.Partition.sec3_count_batch
                 ~ws:(Routing.Batch.Workspace.local ())
                 g policy ~dst ~attackers))
          items
      in
      Array.fold_left Metric.Partition.add Metric.Partition.zero per_item
    end
    else
      partition_counts ?pool pairs ~count_one:(fun ~ws ~attacker ~dst ->
          Metric.Partition.count ~ws g policy ~attacker ~dst)
  in
  Metric.Partition.fractions total

let partition_fractions_among ?pool g policy pairs ~sources =
  Metric.Partition.fractions
    (partition_counts ?pool pairs ~count_one:(fun ~ws ~attacker ~dst ->
         Metric.Partition.count_among ~ws g policy ~attacker ~dst ~sources))

(* H over pairs, and the improvement over the empty deployment. *)
let h ?pool ?cache g policy dep pairs =
  Metric.H_metric.h_metric ?pool ?cache g policy dep pairs

let delta_h ?pool ?cache g policy dep pairs =
  let base =
    h ?pool ?cache g policy (Deployment.empty (Topology.Graph.n g)) pairs
  in
  let with_s = h ?pool ?cache g policy dep pairs in
  (base, with_s, Metric.H_metric.bounds_improvement with_s base)

let header title paper =
  Printf.sprintf "=== %s ===\n(paper: %s)\n" title paper

(* Shared samples for the Section-5 rollout-family experiments
   (rollout, per-destination, early-adopters).  Attackers are prefixes
   of one seeded pool draw (a prefix of a uniform sample without
   replacement is itself uniform), and secure destinations come from one
   global priority order, so samples nest across experiments and steps.
   Deployments repeat across the family — Figure 9's scenario is exactly
   the Figure 7(a) chain's middle step, Figures 10/12 are rollout
   endpoints — so with nested samples the shared result cache serves the
   repeated (policy, deployment, pair) evaluations across experiments. *)
let rollout_attackers (ctx : Context.t) ~k =
  let full =
    Context.sample ctx "rollout-att" ctx.Context.non_stubs
      (Context.scaled ctx 30)
  in
  Array.sub full 0 (min (Context.scaled ctx k) (Array.length full))

let secure_dsts (ctx : Context.t) dep ~k =
  Context.priority_sample ctx "rollout-securedst"
    (Deployment.secure_list dep) (Context.scaled ctx k)

(* Per-destination metric change, for the Figure 9/10/12 sequences.
   Parallelism is per destination (the coarsest independent unit here);
   the inner h_metric calls then run sequentially in their worker — a
   nested pool map would degrade to sequential anyway. *)
let per_destination_changes ?pool ?cache g policy dep ~attackers ~dsts =
  (* Intern the deployment versions up front so worker domains only take
     the interning mutex on a version already present. *)
  (match cache with
  | None -> ()
  | Some c ->
      ignore (Metric.H_metric.Cache.intern c g dep);
      ignore
        (Metric.H_metric.Cache.intern c g
           (Deployment.empty (Topology.Graph.n g))));
  Parallel.map ?pool
    (fun dst ->
      let base =
        Metric.H_metric.h_metric_per_dst ?cache g policy
          (Deployment.empty (Topology.Graph.n g))
          ~attackers ~dst
      in
      let with_s =
        Metric.H_metric.h_metric_per_dst ?cache g policy dep ~attackers ~dst
      in
      (dst, Metric.H_metric.bounds_improvement with_s base))
    dsts
