(* Figures 7(a), 7(b), 8 and 11, plus the non-stub deployment of Section
   5.2.4: metric improvements along partial-deployment rollouts.

   Paper expectations: with ~50% of the graph secure (last Tier 1+2
   step), security 1st improves H by ~24 points while security 2nd and
   3rd see only meagre gains; simplex S*BGP at stubs barely moves the
   numbers (the "error bars"); the Tier-2-only rollout grows more slowly
   with a smaller sec1/sec2 gap; securing only non-stubs gives ~6.2 /
   4.7 / 2.2 point worst-case improvements.

   Each (policy, rollout chain) runs through a persistent
   {!Metric.H_metric.Evaluator}: consecutive steps only recompute the
   pairs inside the deployment delta's dirty cone, and all per-pair
   bounds land in the context-wide cache, so the four rollout variants
   (which share attacker/destination samples where the modes agree)
   reuse each other's work — in particular the empty-deployment
   baselines are computed once per (policy, pair set), not once per
   variant. *)

let name = "rollout"
let title = "Figures 7, 8, 11: metric improvement under deployment rollouts"
let paper = "Figures 7(a), 7(b), 8, 11; Sections 5.2-5.3.2"

type step = {
  step_label : string;
  dep : Deployment.t;
  simplex : Deployment.t option;
}

let dep_step ?simplex step_label dep = { step_label; dep; simplex }

(* Average per-destination improvement over secure destinations d in S
   (Figure 7(b)).  The destination sample is drawn once per step and
   shared by the three policy lanes (the estimate is policy-independent
   in distribution, and sharing triples the cache reuse).  It comes from
   {!Util.secure_dsts} — the global priority order shared by the whole
   rollout family: successive steps of a rollout have nested secure
   sets, so their samples overlap maximally, and the per-destination
   bounds cached at one step are exactly the ones the next step (and
   sibling variants and experiments) need. *)
let secure_dest_sample (ctx : Context.t) dep ~k = Util.secure_dsts ctx dep ~k

let secure_dest_delta (ctx : Context.t) policy dep ~attackers ~dsts =
  if Array.length dsts = 0 then None
  else begin
    let deltas =
      Util.per_destination_changes ~pool:(Context.pool ctx)
        ~cache:(Context.cache ctx) ctx.graph policy dep ~attackers ~dsts
    in
    let avg f =
      Prelude.Stats.mean (Array.map (fun (_, b) -> f b) deltas)
    in
    Some
      {
        Metric.H_metric.lb = avg (fun b -> b.Metric.H_metric.lb);
        ub = avg (fun b -> b.Metric.H_metric.ub);
      }
  end

(* One policy's state across a rollout chain: an evaluator per deployment
   sequence (the simplex-stub variant is its own monotone chain, created
   on first use), plus the empty-deployment baseline. *)
type lane = {
  policy : Routing.Policy.t;
  base_ev : Metric.H_metric.Evaluator.t;
  simplex_ev : Metric.H_metric.Evaluator.t Lazy.t;
  baseline : Metric.H_metric.bounds;
}

(* Between consecutive steps, republish the cached per-destination bounds
   of every retained sampled destination whose pair the dirty cone proves
   unchanged — the next [per_destination_changes] then hits instead of
   recomputing.  The cone is policy-independent, so one covers all
   lanes. *)
let carry_secure_dests (ctx : Context.t) lanes ~prev ~dep ~attackers ~dsts =
  match prev with
  | Some (old_dep, old_dsts) when Array.length dsts > 0 ->
      let keep = Hashtbl.create 64 in
      Array.iter (fun d -> Hashtbl.replace keep d ()) old_dsts;
      let retained =
        Array.to_list dsts |> List.filter (Hashtbl.mem keep) |> Array.of_list
      in
      if Array.length retained > 0 then begin
        let cone =
          Routing.Incremental.compute ctx.graph ~old_dep ~new_dep:dep
            ~dsts:retained
        in
        let cache = Context.cache ctx in
        List.iter
          (fun lane ->
            ignore
              (Metric.H_metric.Cache.carry cache lane.policy ctx.graph cone
                 ~old_dep
                 ~new_dep:dep ~attackers ~dsts:retained))
          lanes
      end
  | _ -> ()

let run_rollout (ctx : Context.t) ~steps ~dsts_mode =
  let attackers = Util.rollout_attackers ctx ~k:30 in
  let dsts =
    match dsts_mode with
    | `All -> Context.sample ctx "rollout-dst" ctx.all (Context.scaled ctx 45)
    | `Cps -> ctx.cps
  in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let table =
    Prelude.Table.create
      ~header:
        [
          "step";
          "secure";
          "model";
          "dH pessimistic";
          "dH optimistic";
          "dH simplex stubs";
          "dH over d in S";
        ]
  in
  let pool = Context.pool ctx in
  let cache = Context.cache ctx in
  let empty = Deployment.empty (Topology.Graph.n ctx.graph) in
  let lanes =
    List.map
      (fun policy ->
        let base_ev =
          Metric.H_metric.Evaluator.create ~pool ~cache ctx.graph policy pairs
        in
        let baseline = Metric.H_metric.Evaluator.eval base_ev empty in
        let simplex_ev =
          (* Seed the simplex chain at the empty deployment too: that
             first eval is pure cache hits, and every later step only
             recomputes its dirty cone. *)
          lazy
            (let ev =
               Metric.H_metric.Evaluator.create ~pool ~cache ctx.graph policy
                 pairs
             in
             ignore (Metric.H_metric.Evaluator.eval ev empty);
             ev)
        in
        { policy; base_ev; simplex_ev; baseline })
      Context.policies
  in
  let sd_prev = ref None in
  List.iter
    (fun step ->
      let sd_dsts =
        secure_dest_sample ctx step.dep ~k:50
      in
      carry_secure_dests ctx lanes ~prev:!sd_prev ~dep:step.dep ~attackers
        ~dsts:sd_dsts;
      if Array.length sd_dsts > 0 then sd_prev := Some (step.dep, sd_dsts);
      List.iter
        (fun lane ->
          let with_s =
            Metric.H_metric.Evaluator.eval lane.base_ev step.dep
          in
          let delta = Metric.H_metric.bounds_improvement with_s lane.baseline in
          let simplex_cell =
            match step.simplex with
            | None -> "-"
            | Some sdep ->
                let ws =
                  Metric.H_metric.Evaluator.eval
                    (Lazy.force lane.simplex_ev)
                    sdep
                in
                Util.pct_delta
                  (Metric.H_metric.bounds_improvement ws lane.baseline)
          in
          let per_dest =
            secure_dest_delta ctx lane.policy step.dep ~attackers ~dsts:sd_dsts
          in
          Prelude.Table.add_row table
            [
              step.step_label;
              Deployment.describe step.dep;
              Routing.Policy.name lane.policy;
              Util.pct delta.Metric.H_metric.lb;
              Util.pct delta.Metric.H_metric.ub;
              simplex_cell;
              (match per_dest with
              | None -> "-"
              | Some b -> Util.pct_delta b);
            ])
        lanes;
      Prelude.Table.add_separator table)
    steps;
  table

let t1_t2_steps (ctx : Context.t) ~with_cps ~simplex =
  List.map
    (fun (x, y) ->
      let base = Deployment.tier1_tier2 ctx.graph ctx.tiers ~n_t1:x ~n_t2:y in
      let base = if with_cps then Deployment.with_cps ctx.graph ctx.tiers base else base in
      let simplex_dep =
        if simplex then begin
          let d =
            Deployment.tier1_tier2 ~stub_mode:Deployment.Simplex ctx.graph
              ctx.tiers ~n_t1:x ~n_t2:y
          in
          Some (if with_cps then Deployment.with_cps ctx.graph ctx.tiers d else d)
        end
        else None
      in
      dep_step ?simplex:simplex_dep (Printf.sprintf "T1=%d,T2=%d" x y) base)
    [ (13, 13); (13, 37); (13, 100) ]

let t2_steps (ctx : Context.t) =
  List.map
    (fun y ->
      dep_step
        (Printf.sprintf "T2=%d" y)
        (Deployment.tier2_only ctx.graph ctx.tiers ~n_t2:y))
    [ 13; 26; 50; 100 ]

let run (ctx : Context.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Util.header title paper);
  Buffer.add_string buf
    "Figure 7(a/b) - Tier 1 + Tier 2 rollout (all destinations; simplex-stub variant as 'error bars'):\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx
          ~steps:(t1_t2_steps ctx ~with_cps:false ~simplex:true)
          ~dsts_mode:`All));
  Buffer.add_string buf
    "\nFigure 8 - Tier 1 + Tier 2 + CP rollout, metric over CP destinations:\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx
          ~steps:(t1_t2_steps ctx ~with_cps:true ~simplex:false)
          ~dsts_mode:`Cps));
  Buffer.add_string buf "\nFigure 11 - Tier 2 rollout:\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx ~steps:(t2_steps ctx) ~dsts_mode:`All));
  Buffer.add_string buf "\nSection 5.2.4 - securing only the non-stubs:\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx
          ~steps:[ dep_step "non-stubs" (Deployment.non_stubs ctx.graph ctx.tiers) ]
          ~dsts_mode:`All));
  Buffer.contents buf
