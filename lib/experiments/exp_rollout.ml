(* Figures 7(a), 7(b), 8 and 11, plus the non-stub deployment of Section
   5.2.4: metric improvements along partial-deployment rollouts.

   Paper expectations: with ~50% of the graph secure (last Tier 1+2
   step), security 1st improves H by ~24 points while security 2nd and
   3rd see only meagre gains; simplex S*BGP at stubs barely moves the
   numbers (the "error bars"); the Tier-2-only rollout grows more slowly
   with a smaller sec1/sec2 gap; securing only non-stubs gives ~6.2 /
   4.7 / 2.2 point worst-case improvements. *)

let name = "rollout"
let title = "Figures 7, 8, 11: metric improvement under deployment rollouts"
let paper = "Figures 7(a), 7(b), 8, 11; Sections 5.2-5.3.2"

type step = {
  step_label : string;
  dep : Deployment.t;
  simplex : Deployment.t option;
}

let dep_step ?simplex step_label dep = { step_label; dep; simplex }

(* Average per-destination improvement over secure destinations d in S
   (Figure 7(b)). *)
let secure_dest_delta (ctx : Context.t) policy dep ~attackers ~n_dsts =
  let secure = Deployment.secure_list dep in
  if Array.length secure = 0 then None
  else begin
    let dsts =
      Context.sample ctx
        ("rollout-securedst-" ^ Routing.Policy.name policy)
        secure n_dsts
    in
    let deltas =
      Util.per_destination_changes ~pool:(Context.pool ctx) ctx.graph policy
        dep ~attackers ~dsts
    in
    let avg f =
      Prelude.Stats.mean (Array.map (fun (_, b) -> f b) deltas)
    in
    Some
      {
        Metric.H_metric.lb = avg (fun b -> b.Metric.H_metric.lb);
        ub = avg (fun b -> b.Metric.H_metric.ub);
      }
  end

let run_rollout (ctx : Context.t) ~steps ~dsts_mode =
  let attackers =
    Context.sample ctx "rollout-att" ctx.non_stubs (Context.scaled ctx 30)
  in
  let dsts =
    match dsts_mode with
    | `All -> Context.sample ctx "rollout-dst" ctx.all (Context.scaled ctx 45)
    | `Cps -> ctx.cps
  in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let table =
    Prelude.Table.create
      ~header:
        [
          "step";
          "secure";
          "model";
          "dH pessimistic";
          "dH optimistic";
          "dH simplex stubs";
          "dH over d in S";
        ]
  in
  let pool = Context.pool ctx in
  let baselines =
    List.map
      (fun policy ->
        ( policy,
          Util.h ~pool ctx.graph policy
            (Deployment.empty (Topology.Graph.n ctx.graph))
            pairs ))
      Context.policies
  in
  List.iter
    (fun step ->
      List.iter
        (fun policy ->
          let baseline = List.assq policy baselines in
          let with_s = Util.h ~pool ctx.graph policy step.dep pairs in
          let delta = Metric.H_metric.bounds_improvement with_s baseline in
          let simplex_cell =
            match step.simplex with
            | None -> "-"
            | Some sdep ->
                let ws = Util.h ~pool ctx.graph policy sdep pairs in
                Util.pct_delta (Metric.H_metric.bounds_improvement ws baseline)
          in
          let per_dest =
            secure_dest_delta ctx policy step.dep ~attackers
              ~n_dsts:(Context.scaled ctx 50)
          in
          Prelude.Table.add_row table
            [
              step.step_label;
              Deployment.describe step.dep;
              Routing.Policy.name policy;
              Util.pct delta.Metric.H_metric.lb;
              Util.pct delta.Metric.H_metric.ub;
              simplex_cell;
              (match per_dest with
              | None -> "-"
              | Some b -> Util.pct_delta b);
            ])
        Context.policies;
      Prelude.Table.add_separator table)
    steps;
  table

let t1_t2_steps (ctx : Context.t) ~with_cps ~simplex =
  List.map
    (fun (x, y) ->
      let base = Deployment.tier1_tier2 ctx.graph ctx.tiers ~n_t1:x ~n_t2:y in
      let base = if with_cps then Deployment.with_cps ctx.graph ctx.tiers base else base in
      let simplex_dep =
        if simplex then begin
          let d =
            Deployment.tier1_tier2 ~stub_mode:Deployment.Simplex ctx.graph
              ctx.tiers ~n_t1:x ~n_t2:y
          in
          Some (if with_cps then Deployment.with_cps ctx.graph ctx.tiers d else d)
        end
        else None
      in
      dep_step ?simplex:simplex_dep (Printf.sprintf "T1=%d,T2=%d" x y) base)
    [ (13, 13); (13, 37); (13, 100) ]

let t2_steps (ctx : Context.t) =
  List.map
    (fun y ->
      dep_step
        (Printf.sprintf "T2=%d" y)
        (Deployment.tier2_only ctx.graph ctx.tiers ~n_t2:y))
    [ 13; 26; 50; 100 ]

let run (ctx : Context.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Util.header title paper);
  Buffer.add_string buf
    "Figure 7(a/b) - Tier 1 + Tier 2 rollout (all destinations; simplex-stub variant as 'error bars'):\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx ~steps:(t1_t2_steps ctx ~with_cps:false ~simplex:true)
          ~dsts_mode:`All));
  Buffer.add_string buf
    "\nFigure 8 - Tier 1 + Tier 2 + CP rollout, metric over CP destinations:\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx ~steps:(t1_t2_steps ctx ~with_cps:true ~simplex:false)
          ~dsts_mode:`Cps));
  Buffer.add_string buf "\nFigure 11 - Tier 2 rollout:\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx ~steps:(t2_steps ctx) ~dsts_mode:`All));
  Buffer.add_string buf "\nSection 5.2.4 - securing only the non-stubs:\n";
  Buffer.add_string buf
    (Prelude.Table.to_string
       (run_rollout ctx
          ~steps:[ dep_step "non-stubs" (Deployment.non_stubs ctx.graph ctx.tiers) ]
          ~dsts_mode:`All));
  Buffer.contents buf
