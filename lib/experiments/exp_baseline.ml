(* Section 4.2: origin authentication alone already protects most of the
   AS graph.  Paper: H_{V,V}(emptyset) >= 60% (62% on the IXP-augmented
   graph). *)

let name = "baseline"
let title = "Baseline: origin authentication only (S = {})"
let paper = "Section 4.2"

let run (ctx : Context.t) =
  let attackers = Context.sample ctx "baseline-att" ctx.all (Context.scaled ctx 60) in
  let dsts = Context.sample ctx "baseline-dst" ctx.all (Context.scaled ctx 60) in
  let pairs = Metric.H_metric.pairs ~attackers ~dsts () in
  let dep = Deployment.empty (Topology.Graph.n ctx.graph) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Util.header title paper);
  Buffer.add_string buf
    (Printf.sprintf "pairs sampled: %d (%d attackers x %d destinations)\n"
       (Array.length pairs) (Array.length attackers) (Array.length dsts));
  (* The baseline is model-independent; compute under security 3rd. *)
  let b = Util.h ~pool:(Context.pool ctx) ctx.graph Context.sec3 dep pairs in
  Buffer.add_string buf
    (Printf.sprintf "H_{V,V}({}) bounds: %s\n" (Util.pct_bounds b));
  Buffer.add_string buf
    (Printf.sprintf
       "paper reports a lower bound of 60%% (UCLA) / 62%% (IXP-augmented); measured lower bound: %s\n"
       (Prelude.Stats.percent b.Metric.H_metric.lb));
  Buffer.contents buf
