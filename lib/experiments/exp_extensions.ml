(* Section 8 (conclusion / future work): the two mitigations the paper
   sketches for its negative results, evaluated with the dynamic
   simulator:

   1. Hysteresis — a secure AS does not drop a valid secure route for a
      "better" insecure one.  This targets protocol downgrades, the
      paper's dominant loss mechanism.
   2. Islands — a set of ASes agrees to prioritize security 1st (while
      the rest of the Internet ranks it 3rd).  Mixed placements can
      destabilize routing (Section 2.3), so non-convergence is detected
      and reported. *)

let name = "extensions"
let title = "Section 8 extensions: hysteresis and security-1st islands"
let paper = "Section 8 (future work); Sections 3.2, 2.3"

(* The dynamic simulator is much slower than the static engine, so this
   experiment runs on its own smaller graph. *)
let setup (ctx : Context.t) =
  let n = min 800 (Topology.Graph.n ctx.graph) in
  let r = Topogen.generate ~params:(Topogen.default_params ~n) (Rng.create ctx.seed) in
  let tiers = Topogen.tiers r in
  (r.Topogen.graph, tiers)

let happy_fraction sim g ~dst ~attacker =
  let n = Topology.Graph.n g in
  let happy = ref 0 in
  for v = 0 to n - 1 do
    if
      v <> dst && v <> attacker
      && Bgpsim.chosen_path sim v <> None
      && not (Bgpsim.uses_attacker sim v)
    then incr happy
  done;
  Prelude.Stats.fraction !happy (n - 2)

let downgrade_count normal_secure sim g ~dst ~attacker =
  let count = ref 0 in
  for v = 0 to Topology.Graph.n g - 1 do
    if v <> dst && v <> attacker && normal_secure.(v)
       && not (Bgpsim.route_secure sim v)
    then incr count
  done;
  !count

let run_hysteresis (ctx : Context.t) g tiers =
  let policy = Context.sec3 in
  let dep = Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let rng = Context.rng ctx "ext-hyst" in
  let n = Topology.Graph.n g in
  let pairs = 25 in
  let table =
    Prelude.Table.create
      ~header:[ "variant"; "avg happy"; "downgrades (total)"; "converged" ]
  in
  List.iter
    (fun (label, hysteresis) ->
      let rng = Rng.copy rng in
      let happy_sum = ref 0. and downs = ref 0 and runs = ref 0 in
      let diverged = ref 0 in
      for _ = 1 to pairs do
        let dst = Rng.int rng n and attacker = Rng.int rng n in
        if dst <> attacker then begin
          incr runs;
          (* Converge under normal conditions first; the attack then
             perturbs the established routing state, which is where
             hysteresis matters. *)
          let sim = Bgpsim.create ~hysteresis g policy dep ~dst ~attacker () in
          Bgpsim.set_attack sim ~active:false;
          ignore (Bgpsim.run sim);
          let normal_secure =
            Array.init n (fun v -> Bgpsim.route_secure sim v)
          in
          Bgpsim.set_attack sim ~active:true;
          match Bgpsim.run ~max_sweeps:300 sim with
          | exception Failure _ -> incr diverged
          | _ ->
              happy_sum := !happy_sum +. happy_fraction sim g ~dst ~attacker;
              downs := !downs + downgrade_count normal_secure sim g ~dst ~attacker
        end
      done;
      Prelude.Table.add_row table
        [
          label;
          Prelude.Stats.percent (!happy_sum /. float_of_int (max 1 (!runs - !diverged)));
          string_of_int !downs;
          Printf.sprintf "%d/%d" (!runs - !diverged) !runs;
        ])
    [ ("standard S*BGP (sec 3rd)", false); ("with hysteresis", true) ];
  Prelude.Table.to_string table

let run_islands (ctx : Context.t) g tiers =
  let sec1 = Context.sec1 and sec3 = Context.sec3 in
  let island =
    (* The Tier 2s and the content providers form the island. *)
    Array.append
      (Topology.Tiers.members tiers Topology.Tiers.T2)
      (Topology.Tiers.members tiers Topology.Tiers.Cp)
  in
  let in_island = Hashtbl.create (Array.length island) in
  Array.iter (fun v -> Hashtbl.replace in_island v ()) island;
  let dep =
    Deployment.make ~n:(Topology.Graph.n g) ~full:island ()
  in
  let policy_of v = if Hashtbl.mem in_island v then sec1 else sec3 in
  let rng = Context.rng ctx "ext-isl" in
  let n = Topology.Graph.n g in
  let table =
    Prelude.Table.create
      ~header:[ "variant"; "avg happy (island dests)"; "converged" ]
  in
  List.iter
    (fun (label, policy_of) ->
      let rng = Rng.copy rng in
      let happy_sum = ref 0. and runs = ref 0 and diverged = ref 0 in
      for _ = 1 to 20 do
        let dst = island.(Rng.int rng (Array.length island)) in
        let attacker = Rng.int rng n in
        if dst <> attacker then begin
          incr runs;
          let sim =
            Bgpsim.create ~policy_of g sec3 dep ~dst ~attacker ()
          in
          match Bgpsim.run ~max_sweeps:300 sim with
          | exception Failure _ -> incr diverged
          | _ -> happy_sum := !happy_sum +. happy_fraction sim g ~dst ~attacker
        end
      done;
      Prelude.Table.add_row table
        [
          label;
          Prelude.Stats.percent
            (!happy_sum /. float_of_int (max 1 (!runs - !diverged)));
          Printf.sprintf "%d/%d" (!runs - !diverged) !runs;
        ])
    [
      ("everyone security 3rd", fun _ -> sec3);
      ("T2+CP island ranks security 1st", policy_of);
      ("everyone security 1st", fun _ -> sec1);
    ];
  Prelude.Table.to_string table

(* Section 2.3 + the operator survey [18]: what if operators place SecP
   per the surveyed proportions (10% 1st, 20% 2nd, 41% 3rd, 29%
   undecided — modelled as 3rd)?  Inconsistent placement forfeits
   Theorem 2.1; we measure how often routing still converges and what
   the mix delivers. *)
let run_survey_mix (ctx : Context.t) g tiers =
  let dep = Deployment.tier1_tier2 g tiers ~n_t1:13 ~n_t2:50 in
  let n = Topology.Graph.n g in
  let assign_rng = Context.rng ctx "ext-survey-assign" in
  let assignment =
    Array.init n (fun _ ->
        let r = Rng.int assign_rng 100 in
        if r < 10 then Context.sec1
        else if r < 30 then Context.sec2
        else Context.sec3)
  in
  let table =
    Prelude.Table.create ~header:[ "policy placement"; "avg happy"; "converged" ]
  in
  List.iter
    (fun (label, policy_of) ->
      let rng = Context.rng ctx "ext-survey-pairs" in
      let happy_sum = ref 0. and runs = ref 0 and diverged = ref 0 in
      for _ = 1 to 20 do
        let dst = Rng.int rng n and attacker = Rng.int rng n in
        if dst <> attacker then begin
          incr runs;
          let sim = Bgpsim.create ~policy_of g Context.sec3 dep ~dst ~attacker () in
          match Bgpsim.run ~max_sweeps:300 sim with
          | exception Failure _ -> incr diverged
          | _ -> happy_sum := !happy_sum +. happy_fraction sim g ~dst ~attacker
        end
      done;
      Prelude.Table.add_row table
        [
          label;
          Prelude.Stats.percent
            (!happy_sum /. float_of_int (max 1 (!runs - !diverged)));
          Printf.sprintf "%d/%d" (!runs - !diverged) !runs;
        ])
    [
      ("uniform: security 3rd", fun _ -> Context.sec3);
      ("survey mix (10/20/41% -> 1st/2nd/3rd)", fun v -> assignment.(v));
      ("uniform: security 2nd", fun _ -> Context.sec2);
    ];
  Prelude.Table.to_string table

let run (ctx : Context.t) =
  let g, tiers = setup ctx in
  Util.header title paper
  ^ Printf.sprintf "(dynamic simulator, %d ASes)\n\n" (Topology.Graph.n g)
  ^ "Hysteresis against protocol downgrades (security 3rd, T1+T2+stubs secure):\n"
  ^ run_hysteresis ctx g tiers
  ^ "\nSecurity-1st islands (island = all T2s and CPs, island members secure):\n"
  ^ run_islands ctx g tiers
  ^ "\nOperator-survey policy mix (Section 2.3 + the survey of [18]):\n"
  ^ run_survey_mix ctx g tiers
  ^ "note: mixed placements forfeit the convergence guarantee of Theorem 2.1;\n\
     the 'converged' column reports how many instances reached a stable state.\n"
