(** One experiment of the reproduction; see the implementation header for
    what it reproduces and the paper's expectations.  Registered in
    {!Registry.all}. *)

val name : string
(** Stable experiment id (CLI: [sbgp run <name>]). *)

val title : string
val paper : string
(** Where in the paper the reproduced table/figure lives. *)

val run : Context.t -> string
(** Execute at the context's scale and render the rows/series the paper
    reports. *)
