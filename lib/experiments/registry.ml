(* Index of all experiments, used by the CLI and the benchmark harness. *)

type entry = {
  id : string;
  title : string;
  paper : string;
  run : Context.t -> string;
}

let all : entry list =
  [
    {
      id = Exp_baseline.name;
      title = Exp_baseline.title;
      paper = Exp_baseline.paper;
      run = Exp_baseline.run;
    };
    {
      id = Exp_partitions.name;
      title = Exp_partitions.title;
      paper = Exp_partitions.paper;
      run = Exp_partitions.run;
    };
    {
      id = Exp_partitions_tier.name;
      title = Exp_partitions_tier.title;
      paper = Exp_partitions_tier.paper;
      run = Exp_partitions_tier.run;
    };
    {
      id = Exp_rollout.name;
      title = Exp_rollout.title;
      paper = Exp_rollout.paper;
      run = Exp_rollout.run;
    };
    {
      id = Exp_per_destination.name;
      title = Exp_per_destination.title;
      paper = Exp_per_destination.paper;
      run = Exp_per_destination.run;
    };
    {
      id = Exp_cp_fate.name;
      title = Exp_cp_fate.title;
      paper = Exp_cp_fate.paper;
      run = Exp_cp_fate.run;
    };
    {
      id = Exp_early_adopters.name;
      title = Exp_early_adopters.title;
      paper = Exp_early_adopters.paper;
      run = Exp_early_adopters.run;
    };
    {
      id = Exp_root_cause.name;
      title = Exp_root_cause.title;
      paper = Exp_root_cause.paper;
      run = Exp_root_cause.run;
    };
    {
      id = Exp_phenomena.name;
      title = Exp_phenomena.title;
      paper = Exp_phenomena.paper;
      run = Exp_phenomena.run;
    };
    {
      id = Exp_lpk.name;
      title = Exp_lpk.title;
      paper = Exp_lpk.paper;
      run = Exp_lpk.run;
    };
    {
      id = Exp_attacks.name;
      title = Exp_attacks.title;
      paper = Exp_attacks.paper;
      run = Exp_attacks.run;
    };
    {
      id = Exp_extensions.name;
      title = Exp_extensions.title;
      paper = Exp_extensions.paper;
      run = Exp_extensions.run;
    };
    {
      id = Exp_anecdotes.name;
      title = Exp_anecdotes.title;
      paper = Exp_anecdotes.paper;
      run = Exp_anecdotes.run;
    };
    {
      id = Exp_optimize.name;
      title = Exp_optimize.title;
      paper = Exp_optimize.paper;
      run = Exp_optimize.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
