(** Shared helpers for experiment modules: formatting, partition
    aggregation, and metric deltas. *)

val pct : float -> string

val pct_bounds : Metric.H_metric.bounds -> string
(** Render an interval ["[lb, ub]"]. *)

val pct_delta : Metric.H_metric.bounds -> string
(** Render a metric improvement as the change in the pessimistic and the
    optimistic tiebreak worlds: ["+x% / +y%"]. *)

val partition_fractions :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Metric.H_metric.pair array ->
  float * float * float
(** Average (doomed, protectable, immune) fractions over the pairs,
    fanned out over [pool] (or the default pool) one pair per work item;
    each domain reuses its private engine workspace. *)

val partition_fractions_among :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Metric.H_metric.pair array ->
  sources:int array ->
  float * float * float

val h :
  ?pool:Parallel.Pool.t ->
  ?cache:Metric.H_metric.Cache.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  Metric.H_metric.pair array ->
  Metric.H_metric.bounds

val delta_h :
  ?pool:Parallel.Pool.t ->
  ?cache:Metric.H_metric.Cache.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  Metric.H_metric.pair array ->
  Metric.H_metric.bounds * Metric.H_metric.bounds * Metric.H_metric.bounds
(** (baseline, with deployment, improvement).  [cache] (normally
    {!Context.cache}) memoizes the per-pair bounds, so e.g. the empty
    baseline is computed once per (policy, pair) across experiments. *)

val header : string -> string -> string

val rollout_attackers : Context.t -> k:int -> int array
(** Attacker sample shared by the rollout-family experiments (rollout,
    per-destination, early-adopters): the first [scaled k] elements of
    one seeded scaled-30 draw from the non-stub pool (clipped to [k
    <= 30]'s draw; a prefix of a uniform sample is uniform).  Sharing
    the draw makes pair sets nest across experiments, so the shared
    result cache serves repeated deployments across them. *)

val secure_dsts : Context.t -> Deployment.t -> k:int -> int array
(** [scaled k] secure destinations of a deployment, drawn through the
    global {!Context.priority_sample} order (purpose
    ["rollout-securedst"]).  Samples of nested secure sets — rollout
    steps, or the same deployment at different [k] — overlap maximally,
    which is what lets {!Metric.H_metric.Cache} entries carry across
    steps and experiments.  Empty when the deployment secures nobody. *)

val per_destination_changes :
  ?pool:Parallel.Pool.t ->
  ?cache:Metric.H_metric.Cache.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attackers:int array ->
  dsts:int array ->
  (int * Metric.H_metric.bounds) array
(** Per-destination metric improvement [H_{M',d}(S) - H_{M',d}({})].
    Parallel per destination. *)
