(** Shared helpers for experiment modules: formatting, partition
    aggregation, and metric deltas. *)

val pct : float -> string

val pct_bounds : Metric.H_metric.bounds -> string
(** Render an interval ["[lb, ub]"]. *)

val pct_delta : Metric.H_metric.bounds -> string
(** Render a metric improvement as the change in the pessimistic and the
    optimistic tiebreak worlds: ["+x% / +y%"]. *)

val partition_fractions :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Metric.H_metric.pair array ->
  float * float * float
(** Average (doomed, protectable, immune) fractions over the pairs,
    fanned out over [pool] (or the default pool) one pair per work item;
    each domain reuses its private engine workspace. *)

val partition_fractions_among :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Metric.H_metric.pair array ->
  sources:int array ->
  float * float * float

val h :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  Metric.H_metric.pair array ->
  Metric.H_metric.bounds

val delta_h :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  Metric.H_metric.pair array ->
  Metric.H_metric.bounds * Metric.H_metric.bounds * Metric.H_metric.bounds
(** (baseline, with deployment, improvement). *)

val header : string -> string -> string

val per_destination_changes :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attackers:int array ->
  dsts:int array ->
  (int * Metric.H_metric.bounds) array
(** Per-destination metric improvement [H_{M',d}(S) - H_{M',d}({})].
    Parallel per destination. *)
