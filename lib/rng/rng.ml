type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec go () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > (1 lsl 62) - bound then go () else v
  in
  go ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let pareto t ~alpha ~xmin =
  if alpha <= 0. || xmin <= 0. then invalid_arg "Rng.pareto";
  let u = ref (float t 1.0) in
  if !u = 0. then u := epsilon_float;
  xmin /. (!u ** (1. /. alpha))

let geometric t ~p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric";
  if p = 1. then 0
  else begin
    let u = ref (float t 1.0) in
    if !u = 0. then u := epsilon_float;
    int_of_float (floor (log !u /. log (1. -. p)))
  end

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted_index t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.weighted_index: non-positive total";
  let target = float t total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
    end
  in
  go 0 0.

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n || k < 0 then invalid_arg "Rng.sample_without_replacement";
  if 3 * k >= n then begin
    (* Dense case: shuffle a prefix of the full range. *)
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    Array.sub all 0 k
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
