(** Deterministic pseudo-random number generator (splitmix64).

    All synthetic data in this repository is derived from explicit [Rng.t]
    values so that every experiment is reproducible from a single integer
    seed, independently of the OCaml stdlib [Random] implementation. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]; used to
    hand sub-streams to parallel workers or sub-generators. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pareto : t -> alpha:float -> xmin:float -> float
(** Heavy-tailed sample from a Pareto distribution; used to draw AS degrees. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success, [p] in (0,1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** Index sampled proportionally to the (non-negative, not all zero)
    weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is [k] distinct integers drawn
    uniformly from [0, n); requires [k <= n].  Result is in random order. *)
