(** Multicore fan-out over independent work items.

    The paper parallelized its simulations over destinations with MPI on
    BlueGene/Blacklight (Appendix H); we use OCaml 5 domains.  Work items
    must be independent and the worker function must not share mutable
    state across items (each routing computation owns its per-domain
    workspace, and reads the topology immutably).

    Two layers:

    - {!Pool}: a persistent pool of long-lived worker domains fed by an
      atomic chunk index (work stealing).  Spawning a domain costs far
      more than one routing computation, so the experiment suite creates
      one pool and reuses it for every [map].
    - {!map} / {!map_reduce}: convenience wrappers that borrow the
      lazily-created default pool (sized by [SBGP_DOMAINS]). *)

val default_domains : unit -> int
(** [SBGP_DOMAINS] from the environment if set, otherwise the runtime's
    recommended domain count. *)

module Pool : sig
  type t

  val create : ?domains:int -> unit -> t
  (** [create ~domains ()] spawns [domains - 1] worker domains (the
      caller participates in every [map], for [domains] total).  Defaults
      to {!default_domains}.  A pool of size 1 spawns nothing and maps
      sequentially. *)

  val size : t -> int
  (** Total domains applied to a job, including the calling one. *)

  val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
  (** [map pool f items] applies [f] to every item across the pool's
      domains.  Results are returned in input order regardless of the
      execution interleaving, so output is deterministic whenever [f] is.
      The first worker exception, if any, is re-raised in the caller.
      Re-entrant calls (a [map] from inside a worker function) degrade to
      a sequential map instead of deadlocking.

      [chunk] overrides the stealing granularity (default: items split
      ~8 ways per domain).  Pass [~chunk:1] when the items are few and
      individually coarse — e.g. one batched routing solve per item —
      so no domain hoards several of them.  Raises [Invalid_argument]
      when [chunk < 1]. *)

  val shutdown : t -> unit
  (** Join all worker domains.  Subsequent [map]s run sequentially. *)
end

val default_pool : unit -> Pool.t
(** The process-wide pool, created on first use with {!default_domains}
    domains and shut down automatically at exit. *)

val map :
  ?pool:Pool.t ->
  ?domains:int ->
  ?chunk:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map f items] applies [f] to every item.  With [~pool] the work runs
    on that pool; otherwise [domains] (default {!default_domains})
    decides: [<= 1] maps sequentially in the calling domain, [> 1] uses
    the default pool (or a transient pool when the default pool is
    sequential).  [chunk] is the stealing granularity of {!Pool.map}.
    Output order always matches input order. *)

val map_reduce :
  ?pool:Pool.t ->
  ?domains:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  'b ->
  'a array ->
  'b
(** Fold the mapped results with [combine] (applied in deterministic
    left-to-right order, seeded with the given neutral element). *)
