(** Multicore fan-out over independent work items.

    The paper parallelized its simulations over destinations with MPI on
    BlueGene/Blacklight (Appendix H); we use OCaml 5 domains.  Work items
    must be independent and the worker function must not share mutable
    state across items (each of our routing computations allocates its own
    state, and reads the topology immutably). *)

val default_domains : unit -> int
(** [SBGP_DOMAINS] from the environment if set, otherwise the runtime's
    recommended domain count. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f items] applies [f] to every item, splitting the array into
    contiguous chunks across domains.  With [domains <= 1] this is a plain
    sequential map (no domains are spawned).  The first worker exception,
    if any, is re-raised. *)

val map_reduce :
  ?domains:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> 'b -> 'a array -> 'b
(** Fold the mapped results with [combine] (applied in deterministic
    left-to-right chunk order, seeded with the given neutral element). *)
