let default_domains () =
  match Sys.getenv_opt "SBGP_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> v
      | _ -> invalid_arg "SBGP_DOMAINS must be a positive integer")
  | None -> Domain.recommended_domain_count ()

let map ?domains f items =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let n = Array.length items in
  if domains <= 1 || n <= 1 then Array.map f items
  else begin
    let workers = min domains n in
    let chunk = (n + workers - 1) / workers in
    let results = Array.make n None in
    let run lo hi () =
      for i = lo to hi - 1 do
        results.(i) <- Some (f items.(i))
      done
    in
    let handles =
      List.init workers (fun w ->
          let lo = w * chunk in
          let hi = min n (lo + chunk) in
          if lo < hi then Some (Domain.spawn (run lo hi)) else None)
    in
    List.iter (function Some h -> Domain.join h | None -> ()) handles;
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_reduce ?domains ~map:f ~combine neutral items =
  Array.fold_left combine neutral (map ?domains f items)
