let default_domains () =
  match Sys.getenv_opt "SBGP_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> v
      | _ -> invalid_arg "SBGP_DOMAINS must be a positive integer")
  | None -> Domain.recommended_domain_count ()

module Pool = struct
  (* A pool of long-lived worker domains.  Each [map] call installs one
     job — a steal loop over an atomic chunk index — bumps the generation
     and wakes the workers; the caller participates in the stealing, then
     waits for the stragglers.  Because every item writes its own slot of
     the result array, output order is independent of the execution
     interleaving. *)
  type t = {
    size : int; (* total domains working a job, including the caller *)
    mutex : Mutex.t;
    work : Condition.t; (* signalled when a new generation is posted *)
    finished : Condition.t; (* signalled when the last worker drains *)
    mutable job : (unit -> unit) option;
    mutable generation : int;
    mutable pending : int; (* workers still inside the current job *)
    mutable stop : bool;
    mutable busy : bool; (* a map call is in flight *)
    mutable handles : unit Domain.t list;
  }

  let rec worker_loop t seen =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = seen do
      Condition.wait t.work t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.mutex;
      (* The job catches its own exceptions; see [map]. *)
      job ();
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex;
      worker_loop t gen
    end

  let create ?domains () =
    let size =
      match domains with
      | Some d when d >= 1 -> d
      | Some _ -> invalid_arg "Pool.create: domains must be >= 1"
      | None -> default_domains ()
    in
    let t =
      {
        size;
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        job = None;
        generation = 0;
        pending = 0;
        stop = false;
        busy = false;
        handles = [];
      }
    in
    let handles =
      List.init (size - 1) (fun _ ->
          Domain.spawn (fun () -> worker_loop t 0))
    in
    Mutex.lock t.mutex;
    t.handles <- handles;
    Mutex.unlock t.mutex;
    t

  let size t = t.size

  let shutdown t =
    (* Swap the handle list out under the lock so a concurrent shutdown
       joins each domain exactly once; join outside it so workers can
       take the mutex on their way out. *)
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    let handles = t.handles in
    t.handles <- [];
    Mutex.unlock t.mutex;
    List.iter Domain.join handles

  let sequential_map f items = Array.map f items

  let map ?chunk t f items =
    let n = Array.length items in
    (* Validate before taking the lock: raising while holding it would
       leave every waiting worker stuck. *)
    let chunk =
      match chunk with
      | Some c when c >= 1 -> chunk
      | Some _ -> invalid_arg "Pool.map: chunk must be >= 1"
      | None -> None
    in
    if n <= 1 || t.size <= 1 then sequential_map f items
    else begin
      Mutex.lock t.mutex;
      if t.stop || t.busy then begin
        (* Shut down, re-entrant or concurrent use (e.g. a nested map
           inside a worker function): fall back to a plain sequential
           map rather than deadlock on the single job slot. *)
        Mutex.unlock t.mutex;
        sequential_map f items
      end
      else begin
        let results = Array.make n None in
        let error = Atomic.make None in
        let next = Atomic.make 0 in
        (* Chunked stealing: big enough to keep the atomic off the hot
           path, small enough to balance uneven per-item cost.  Callers
           with few, coarse items (the batched kernel's one-solve-per-
           word work items) override to steal singly. *)
        let chunk =
          match chunk with
          | Some c -> c
          | None -> max 1 (n / (t.size * 8))
        in
        let steal () =
          let continue = ref true in
          while !continue do
            let lo = Atomic.fetch_and_add next chunk in
            if lo >= n then continue := false
            else begin
              let hi = min n (lo + chunk) in
              try
                for i = lo to hi - 1 do
                  results.(i) <- Some (f items.(i))
                done
              with e ->
                ignore (Atomic.compare_and_set error None (Some e));
                (* Drain the index so every domain stops promptly. *)
                Atomic.set next n;
                continue := false
            end
          done
        in
        t.busy <- true;
        t.job <- Some steal;
        t.pending <- List.length t.handles;
        t.generation <- t.generation + 1;
        Condition.broadcast t.work;
        Mutex.unlock t.mutex;
        steal ();
        Mutex.lock t.mutex;
        while t.pending > 0 do
          Condition.wait t.finished t.mutex
        done;
        t.job <- None;
        t.busy <- false;
        Mutex.unlock t.mutex;
        match Atomic.get error with
        | Some e -> raise e
        | None ->
            Array.map (function Some r -> r | None -> assert false) results
      end
    end
end

let default = ref None
let default_mu = Mutex.create ()

let default_pool () =
  (* Serialized: concurrent first uses (a nested Parallel.map from a
     worker of a caller-owned pool) must not each spawn a pool and leak
     all but the last. *)
  Mutex.protect default_mu (fun () ->
      match !default with
      | Some p -> p
      | None ->
          let p = Pool.create () in
          default := Some p;
          at_exit (fun () -> Pool.shutdown p);
          p)

let map ?pool ?domains ?chunk f items =
  match pool with
  | Some p -> Pool.map ?chunk p f items
  | None -> (
      let domains =
        match domains with Some d -> d | None -> default_domains ()
      in
      if domains <= 1 || Array.length items <= 1 then Array.map f items
      else
        let dp = default_pool () in
        if Pool.size dp > 1 then Pool.map ?chunk dp f items
        else begin
          (* The caller explicitly asked for parallelism but the ambient
             pool is sequential (e.g. SBGP_DOMAINS=1 on this machine):
             honor the request with a transient pool. *)
          let p = Pool.create ~domains () in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown p)
            (fun () -> Pool.map ?chunk p f items)
        end)

let map_reduce ?pool ?domains ~map:f ~combine neutral items =
  Array.fold_left combine neutral (map ?pool ?domains f items)
