(** Synthetic Internet-like AS topology generator.

    Substitute for the UCLA AS graph of 24 Sep 2012 used by the paper
    (39 056 ASes, 73 442 customer-provider and 62 129 peer edges; see
    DESIGN.md §4).  The generator builds a strict customer-provider
    hierarchy — so the annotated graph is acyclic and connected by
    construction — with the structural features the paper's analysis
    depends on:

    - a clique of Tier 1 ASes with no providers and huge customer cones;
    - Tier 2 / Tier 3 transit ISPs attached by preferential attachment
      (heavy-tailed customer degrees);
    - designated content-provider ASes with modest transit but rich
      peering (the paper's 17 CPs);
    - "small CP" ASes with high peering degree;
    - a majority of stub ASes (~85%), some multi-homed, some with peering
      (stubs-x), and a fraction homed exclusively to Tier 1s (the paper's
      "Tier 1 stubs", Section 5.2.3). *)

type params = {
  n : int;  (** total ASes; must comfortably exceed the tier sizes below *)
  n_t1 : int;
  n_t2 : int;
  n_t3 : int;
  n_cp : int;
  n_small_cp : int;
  frac_mid : float;      (** fraction of ASes that are small transit (SMDG) *)
  frac_t1_stub : float;  (** fraction of stubs homed only to Tier 1s *)
  frac_stub_x : float;   (** fraction of stubs that also peer *)
  stub_provider_p : float;
      (** geometric parameter: stub has [1 + Geom(p)] providers (capped) *)
  t2_peer_degree : int;  (** mean peers per Tier 2 *)
  t3_peer_degree : int;
  mid_peer_degree : int;
  cp_peer_degree : int;
  small_cp_peer_degree : int;
}

val calibration_n : int
(** Size of the UCLA AS graph of 24 Sep 2012 (39 056 ASes) that the
    Table-1 tier sizes are calibrated against.  [default_params] is
    bit-stable for [n <= calibration_n]; above it the transit and edge
    tier counts scale proportionally with [n]. *)

val default_params : n:int -> params
(** Tier sizes follow the paper's Table 1 (13 / 100 / 100 / 17 / 300),
    scaled down when [n] is small and proportionally up past
    [calibration_n]; peer-degree parameters are tuned so that the
    peer/customer edge ratio approximates the UCLA graph's. *)

type result = {
  graph : Topology.Graph.t;
  cps : int array;    (** the designated content-provider ASes *)
  levels : int array; (** generation level per AS: 0 = T1 ... 5 = stub *)
}

val generate : ?params:params -> Rng.t -> result
(** Deterministic for a given generator state.  Raises [Invalid_argument]
    naming the offending knob if a parameter is out of range: [n] too
    small for the requested tier sizes, a tier count below 1, a fraction
    outside [0, 1], [stub_provider_p] outside (0, 1], a negative peer
    degree, or — for [n] above [calibration_n] — a transit/edge tier
    count below half the calibrated density (see [calibration_n]). *)

val tiers : result -> Topology.Tiers.t
(** Classify the generated graph with the designated CP list. *)
