type params = {
  n : int;
  n_t1 : int;
  n_t2 : int;
  n_t3 : int;
  n_cp : int;
  n_small_cp : int;
  frac_mid : float;
  frac_t1_stub : float;
  frac_stub_x : float;
  stub_provider_p : float;
  t2_peer_degree : int;
  t3_peer_degree : int;
  mid_peer_degree : int;
  cp_peer_degree : int;
  small_cp_peer_degree : int;
}

(* The UCLA-2012 graph the paper's Table 1 tier sizes are calibrated
   against.  At or below this n, [default_params] (and its absolute tier
   caps) are the historical, bit-stable values; above it the transit and
   edge tiers scale proportionally with n, because 13 Tier 1s and 300
   small CPs serving a million stubs is not a plausible Internet. *)
let calibration_n = 39056

let default_params ~n =
  let scale k = max 2 (min k (n * k / 4000)) in
  let up k = if n <= calibration_n then k else k * n / calibration_n in
  {
    n;
    n_t1 = (if n >= 2000 then 13 else max 3 (n / 150));
    n_t2 = up (scale 100);
    n_t3 = up (scale 100);
    n_cp = (if n >= 2000 then up 17 else max 2 (n / 200));
    n_small_cp = up (scale 300);
    frac_mid = 0.12;
    frac_t1_stub = 0.12;
    frac_stub_x = 0.10;
    stub_provider_p = 0.52;
    t2_peer_degree = 14;
    t3_peer_degree = 9;
    mid_peer_degree = 6;
    cp_peer_degree = 40;
    small_cp_peer_degree = 8;
  }

type result = {
  graph : Topology.Graph.t;
  cps : int array;
  levels : int array;
}

(* Generation levels; providers always come from a strictly lower level,
   which keeps the hierarchy acyclic. *)
let level_t1 = 0
let level_t2 = 1
let level_t3 = 2
let level_mid = 3
let level_edge = 4 (* content providers and small CPs *)
let level_stub = 5

(* Knob validation.  Every failure names the offending parameter: a
   degenerate knob otherwise surfaces far away (a division by zero inside
   [Rng.geometric], an empty [Rng.weighted_index] pool, or — worst — a
   structurally implausible graph that generates without complaint). *)
let validate p =
  let bad knob msg =
    invalid_arg (Printf.sprintf "Topogen.generate: %s %s" knob msg)
  in
  if p.n < 1 then bad "n" "must be positive";
  let tier knob v = if v < 1 then bad knob "must be at least 1" in
  tier "n_t1" p.n_t1;
  tier "n_t2" p.n_t2;
  tier "n_t3" p.n_t3;
  tier "n_cp" p.n_cp;
  tier "n_small_cp" p.n_small_cp;
  (* [not (v >= 0. && v <= 1.)] rather than [v < 0. || v > 1.]: the
     former also rejects NaN. *)
  let frac knob v =
    if not (v >= 0. && v <= 1.) then bad knob "must lie in [0, 1]"
  in
  frac "frac_mid" p.frac_mid;
  frac "frac_t1_stub" p.frac_t1_stub;
  frac "frac_stub_x" p.frac_stub_x;
  if not (p.stub_provider_p > 0. && p.stub_provider_p <= 1.) then
    bad "stub_provider_p" "must lie in (0, 1]";
  (* A peer-degree mean of 0 means "no peering for this tier"; any other
     value must be >= 1 so that 1/mean is a valid geometric parameter. *)
  let degree knob v =
    if v < 0 then bad knob "must be non-negative"
  in
  degree "t2_peer_degree" p.t2_peer_degree;
  degree "t3_peer_degree" p.t3_peer_degree;
  degree "mid_peer_degree" p.mid_peer_degree;
  degree "cp_peer_degree" p.cp_peer_degree;
  degree "small_cp_peer_degree" p.small_cp_peer_degree;
  (* Above the UCLA-2012 calibration point the tier counts must keep
     tracking n.  [default_params] scales them; hand-rolled params that
     keep the <= calibration absolutes while n grows produce a graph
     where each transit AS carries many times the calibrated customer
     load — reject anything below half the scaled density. *)
  if p.n > calibration_n then begin
    let dense knob v cal =
      let floor_v = cal * p.n / (2 * calibration_n) in
      if v < floor_v then
        bad knob
          (Printf.sprintf
             "is %d, below half the UCLA-2012-calibrated density for n = %d \
              (need >= %d)"
             v p.n floor_v)
    in
    dense "n_t2" p.n_t2 100;
    dense "n_t3" p.n_t3 100;
    dense "n_small_cp" p.n_small_cp 300
  end

let generate ?params rng =
  let p = match params with Some p -> p | None -> default_params ~n:4000 in
  validate p;
  let fixed = p.n_t1 + p.n_t2 + p.n_t3 + p.n_cp + p.n_small_cp in
  let n_mid = int_of_float (float_of_int p.n *. p.frac_mid) in
  if p.n < fixed + n_mid + 10 then
    invalid_arg "Topogen.generate: n too small for the requested tier sizes";
  let n = p.n in
  let levels = Array.make n level_stub in
  (* Id layout: T1s, then T2s, T3s, mid, CPs, small CPs, stubs. *)
  let t1 = Array.init p.n_t1 (fun i -> i) in
  let base_t2 = p.n_t1 in
  let t2 = Array.init p.n_t2 (fun i -> base_t2 + i) in
  let base_t3 = base_t2 + p.n_t2 in
  let t3 = Array.init p.n_t3 (fun i -> base_t3 + i) in
  let base_mid = base_t3 + p.n_t3 in
  let mid = Array.init n_mid (fun i -> base_mid + i) in
  let base_cp = base_mid + n_mid in
  let cps = Array.init p.n_cp (fun i -> base_cp + i) in
  let base_small_cp = base_cp + p.n_cp in
  let small_cps = Array.init p.n_small_cp (fun i -> base_small_cp + i) in
  let base_stub = base_small_cp + p.n_small_cp in
  let stubs = Array.init (n - base_stub) (fun i -> base_stub + i) in
  Array.iter (fun v -> levels.(v) <- level_t1) t1;
  Array.iter (fun v -> levels.(v) <- level_t2) t2;
  Array.iter (fun v -> levels.(v) <- level_t3) t3;
  Array.iter (fun v -> levels.(v) <- level_mid) mid;
  Array.iter (fun v -> levels.(v) <- level_edge) cps;
  Array.iter (fun v -> levels.(v) <- level_edge) small_cps;
  let edges = ref [] in
  let cust_deg = Array.make n 0 in
  let peer_set = Hashtbl.create (4 * n) in
  let key a b = if a < b then (a, b) else (b, a) in
  let add_c2p customer provider =
    if
      customer <> provider
      && not (Hashtbl.mem peer_set (key customer provider))
    then begin
      Hashtbl.replace peer_set (key customer provider) ();
      edges := Topology.Graph.Customer_provider (customer, provider) :: !edges;
      cust_deg.(provider) <- cust_deg.(provider) + 1
    end
  in
  let add_peer a b =
    if a <> b && not (Hashtbl.mem peer_set (key a b)) then begin
      Hashtbl.replace peer_set (key a b) ();
      edges := Topology.Graph.Peer_peer (a, b) :: !edges
    end
  in
  (* Preferential choice among a candidate pool, weighted by current
     customer degree (linear preferential attachment gives the heavy
     tail). *)
  let preferential pool =
    let weights =
      Array.map
        (fun v -> (float_of_int (cust_deg.(v) + 1)) ** 1.35)
        pool
    in
    pool.(Rng.weighted_index rng weights)
  in
  let attach v pool count =
    for _ = 1 to count do
      add_c2p v (preferential pool)
    done
  in
  (* Tier 1 clique. *)
  Array.iter
    (fun a -> Array.iter (fun b -> if a < b then add_peer a b) t1)
    t1;
  (* Tier 2: multihomed to Tier 1s. *)
  Array.iter (fun v -> attach v t1 (2 + Rng.int rng 2)) t2;
  (* Tier 3: multihomed to Tier 2s (occasionally a Tier 1). *)
  Array.iter
    (fun v ->
      attach v t2 (2 + Rng.int rng 1);
      if Rng.float rng 1.0 < 0.2 then attach v t1 1)
    t3;
  (* Mid-size transit: providers mostly among T3s, sometimes T2s, giving
     the hierarchy depth (stub -> mid -> T3 -> T2 -> T1). *)
  let transit23 = Array.append t2 t3 in
  Array.iter
    (fun v ->
      attach v t3 (2 + Rng.int rng 2);
      if Rng.float rng 1.0 < 0.5 then attach v t2 1)
    mid;
  (* Content providers: multihomed to T1/T2. *)
  let t12 = Array.append t1 t2 in
  Array.iter (fun v -> attach v t12 (2 + Rng.int rng 3)) cps;
  (* Small CPs: providers among T2/T3/mid. *)
  let transit_pool = Array.concat [ t2; t3; mid ] in
  Array.iter (fun v -> attach v transit_pool (1 + Rng.int rng 2)) small_cps;
  (* Stubs. *)
  let n_t1_stub =
    int_of_float (float_of_int (Array.length stubs) *. p.frac_t1_stub)
  in
  Array.iteri
    (fun i v ->
      if i < n_t1_stub then
        (* Homed exclusively to Tier 1s ("Tier 1 stubs"). *)
        attach v t1 (1 + Rng.int rng 2)
      else begin
        let count =
          min 6 (1 + Rng.geometric rng ~p:p.stub_provider_p)
        in
        (* Stubs buy transit mostly from mid-size ISPs, occasionally
           straight from a T2/T3 — long provider chains as in the real
           hierarchy. *)
        if Array.length mid > 0 && Rng.float rng 1.0 < 0.75 then
          attach v mid count
        else attach v transit23 count
      end)
    stubs;
  (* Peering.  Draw peers from the designated pools, assortatively. *)
  let draw_peers v pool mean =
    if Array.length pool > 0 && mean > 0 then begin
      let count = 1 + Rng.geometric rng ~p:(1. /. float_of_int mean) in
      for _ = 1 to count do
        add_peer v (Rng.pick rng pool)
      done
    end
  in
  Array.iter (fun v -> draw_peers v t2 p.t2_peer_degree) t2;
  Array.iter
    (fun v -> draw_peers v (Array.append t2 t3) p.t3_peer_degree)
    t3;
  Array.iter (fun v -> draw_peers v transit_pool p.mid_peer_degree) mid;
  let cp_pool = Array.concat [ t2; t3; mid; small_cps ] in
  Array.iter (fun v -> draw_peers v cp_pool p.cp_peer_degree) cps;
  let small_cp_pool = Array.concat [ t3; mid; small_cps ] in
  Array.iter
    (fun v -> draw_peers v small_cp_pool p.small_cp_peer_degree)
    small_cps;
  let n_stub_x =
    int_of_float (float_of_int (Array.length stubs) *. p.frac_stub_x)
  in
  let stub_peer_pool = Array.append small_cps stubs in
  for i = 0 to n_stub_x - 1 do
    (* Spread stub-x ASes across the stub range. *)
    let v = stubs.(n_t1_stub + ((i * 7) mod (Array.length stubs - n_t1_stub))) in
    draw_peers v stub_peer_pool 2
  done;
  let graph = Topology.Graph.of_edges ~n !edges in
  { graph; cps; levels }

let tiers r =
  Topology.Tiers.classify ~cps:(Array.to_list r.cps) r.graph
