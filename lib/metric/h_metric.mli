(** The security metric of Section 4.1.

    [H_{M,D}(S)] is the average, over attackers [m] in [M] and destinations
    [d] in [D], of the fraction of source ASes that choose a legitimate
    route to [d] rather than a bogus route through [m].  Because the
    tiebreak step is intradomain and unknown, every quantity comes as a
    lower and an upper bound (Section 4.1): the lower bound assumes an AS
    facing equally-good legitimate and bogus routes picks the bogus one,
    the upper bound the opposite. *)

type bounds = { lb : float; ub : float }

val bounds_add : bounds -> bounds -> bounds
val bounds_sub : bounds -> bounds -> bounds
(** Worst-case interval difference:
    [{ lb = a.lb -. b.ub; ub = a.ub -. b.lb }]. *)

val bounds_improvement : bounds -> bounds -> bounds
(** [bounds_improvement after before] compares like with like — the
    pessimistic-tiebreak worlds and the optimistic-tiebreak worlds:
    [{ lb = after.lb -. before.lb; ub = after.ub -. before.ub }].  This is
    how the paper's Figures 7-12 report changes in the metric. *)

val bounds_scale : float -> bounds -> bounds
val pp_bounds : bounds -> string

type counts = { happy_lb : int; happy_ub : int; sources : int }

val happy : Routing.Outcome.t -> counts
(** Happy-source counts over all sources (every AS except the destination
    and the attacker). *)

val happy_among : Routing.Outcome.t -> int array -> counts
(** Restrict the sources to the given set (the destination and attacker
    are skipped if present). *)

val to_bounds : counts -> bounds

type pair = { attacker : int; dst : int }

val pairs :
  ?rng:Rng.t ->
  ?max_pairs:int ->
  attackers:int array ->
  dsts:int array ->
  unit ->
  pair array
(** The full cross product [attackers x dsts] minus the diagonal, or a
    uniform sample of [max_pairs] of them when the product exceeds
    [max_pairs] ([rng] required in that case). *)

val h_metric :
  ?progress:(int -> int -> unit) ->
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  pair array ->
  bounds
(** [H_{M,D}(S)] estimated over the given attacker-destination pairs.
    [pool] fans the pairs out over a persistent worker pool; otherwise
    [domains > 1] borrows the default pool (the pairs are independent and
    the graph is read-only).  Every domain — including the sequential
    path — reuses its private {!Routing.Engine.Workspace}, and the
    per-pair results are reduced in input order, so the value is
    bit-identical whatever the parallelism.  [progress] is only invoked
    in the sequential case. *)

val h_metric_per_dst :
  ?pool:Parallel.Pool.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attackers:int array ->
  dst:int ->
  bounds
(** [H_{M,d}(S)] for a single destination. *)
