(** The security metric of Section 4.1.

    [H_{M,D}(S)] is the average, over attackers [m] in [M] and destinations
    [d] in [D], of the fraction of source ASes that choose a legitimate
    route to [d] rather than a bogus route through [m].  Because the
    tiebreak step is intradomain and unknown, every quantity comes as a
    lower and an upper bound (Section 4.1): the lower bound assumes an AS
    facing equally-good legitimate and bogus routes picks the bogus one,
    the upper bound the opposite. *)

type bounds = { lb : float; ub : float }

val bounds_add : bounds -> bounds -> bounds
val bounds_sub : bounds -> bounds -> bounds
(** Worst-case interval difference:
    [{ lb = a.lb -. b.ub; ub = a.ub -. b.lb }]. *)

val bounds_improvement : bounds -> bounds -> bounds
(** [bounds_improvement after before] compares like with like — the
    pessimistic-tiebreak worlds and the optimistic-tiebreak worlds:
    [{ lb = after.lb -. before.lb; ub = after.ub -. before.ub }].  This is
    how the paper's Figures 7-12 report changes in the metric. *)

val bounds_scale : float -> bounds -> bounds

val pp_bounds : bounds -> string
(** Renders at 0.1-percentage-point precision; the bounds collapse to a
    single number exactly when both endpoints print identically at that
    precision, so distinct printed bounds are never conflated. *)

type counts = { happy_lb : int; happy_ub : int; sources : int }

val happy : Routing.Outcome.t -> counts
(** Happy-source counts over all sources (every AS except the destination
    and the attacker). *)

val happy_among : Routing.Outcome.t -> int array -> counts
(** Restrict the sources to the given set (the destination and attacker
    are skipped if present). *)

val to_bounds : counts -> bounds

type pair = { attacker : int; dst : int }

val pairs :
  ?rng:Rng.t ->
  ?max_pairs:int ->
  attackers:int array ->
  dsts:int array ->
  unit ->
  pair array
(** The full cross product [attackers x dsts] minus the diagonal, or a
    uniform sample of [max_pairs] of them when the product exceeds
    [max_pairs] ([rng] required in that case). *)

val pair_bounds :
  ?ws:Routing.Engine.Workspace.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  pair ->
  bounds
(** Happy-source bounds of a single (attacker, destination) pair — one
    stable-state computation.  This is the per-pair quantity {!h_metric}
    averages and the unit the incremental machinery caches and checks. *)

(** Concurrent memo cache of per-pair {!bounds}, keyed by
    policy x (topology, deployment) version x pair.  Versions are
    interned by content within a topology ({!Topology.Graph.version} +
    {!Deployment.fingerprint} + {!Deployment.equal}), so structurally
    equal deployments on the same graph share entries, and two graphs —
    including a graph and its {!Topology.Graph.Delta.apply} successor —
    can never serve each other's values.  Safe to share across
    {!Parallel.Pool} worker domains (sharded, per-shard mutexes).

    Keys are {e normalized}: when the pair's destination does not sign its
    origin under the keyed deployment, no announcement in the stable state
    is ever secure, so the outcome is independent of both the security
    model and the deployment (but {e not} of the topology).  All such
    entries collapse onto one reserved slot per local-preference variant
    and graph — [H(emptyset)] baselines are shared across the three
    models, and unsigned destinations are shared across every deployment
    of a rollout. *)
module Cache : sig
  type t

  val create : ?shards:int -> unit -> t

  val intern : t -> Topology.Graph.t -> Deployment.t -> int
  (** Stable small-int version of a deployment's content on this graph. *)

  val find :
    t ->
    Routing.Policy.t ->
    Topology.Graph.t ->
    Deployment.t ->
    version:int ->
    pair ->
    bounds option
  (** [find t policy g dep ~version p] with [version = intern t g dep].
      The deployment is consulted only for key normalization (does
      [p.dst] sign?), the graph only for the unsigned-destination slot;
      the version carries the identity. *)

  val store :
    t ->
    Routing.Policy.t ->
    Topology.Graph.t ->
    Deployment.t ->
    version:int ->
    pair ->
    bounds ->
    unit

  val carry :
    t ->
    Routing.Policy.t ->
    Topology.Graph.t ->
    Routing.Incremental.t ->
    old_dep:Deployment.t ->
    new_dep:Deployment.t ->
    attackers:int array ->
    dsts:int array ->
    int
  (** [carry t policy g cone ~old_dep ~new_dep ~attackers ~dsts]
      republishes, under [new_dep]'s version, the cached bounds of every
      (attacker, dst) pair the dirty [cone] proves unchanged by the
      [old_dep -> new_dep] delta.  [cone] must have been computed for that
      delta, on graph [g], with a destination set covering [dsts].  Pairs
      with no cached entry under [old_dep] are skipped.  Returns the
      number of entries carried.  This is how per-destination rollout
      columns reuse the previous step without a full {!Evaluator} over
      their pair set. *)

  val length : t -> int
  val hits : t -> int
  val misses : t -> int
  val clear : t -> unit
end

val batch_enabled : unit -> bool
(** Whether the destination-major batched kernel ({!Routing.Batch})
    drives the metric paths.  Default on; setting [SBGP_BATCH] to [0],
    [false], [no] or [off] forces the scalar per-pair engine.  The two
    paths are bit-identical — the switch exists for benchmarking and
    divergence triage, not for correctness. *)

val batch_plan : pair array -> (int * int array * int array) array
(** Group pairs by destination (first-seen input order, deterministic)
    and chunk each destination's attacker list into words of at most
    {!Routing.Batch.max_lanes} lanes.  Each item is
    [(dst, attackers, positions)] where [positions] indexes the input
    array ([attackers.(l)] is [pairs.(positions.(l)).attacker]).
    Every input position appears in exactly one item. *)

val h_metric :
  ?progress:(int -> int -> unit) ->
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  ?cache:Cache.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  pair array ->
  bounds
(** [H_{M,D}(S)] estimated over the given attacker-destination pairs.
    By default, pairs sharing a destination are solved together by the
    destination-major batched kernel — one routing-tree drain per
    {!Routing.Batch.max_lanes} attackers — with per-lane counts folded
    straight off the packed lane groups; see {!batch_enabled} to force
    the scalar path.  [pool] fans the pairs out over a persistent worker
    pool; otherwise
    [domains > 1] borrows the default pool (the pairs are independent and
    the graph is read-only).  Every domain — including the sequential
    path — reuses its private {!Routing.Engine.Workspace}, and the
    per-pair results are reduced in input order, so the value is
    bit-identical whatever the parallelism.

    [progress done total] ticks after each pair on the sequential path.
    On the pooled path it is invoked from the calling domain only, for
    the caller's share of the stolen work — it still ticks throughout the
    job but [done] stops short of [total]; it never fires from a worker
    domain.

    [cache] memoizes per-pair bounds across calls (hits skip the engine
    entirely); the cache must belong to this graph. *)

val h_metric_per_dst :
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attackers:int array ->
  dst:int ->
  bounds
(** [H_{M,d}(S)] for a single destination. *)

(** Incremental evaluation of [H] along a deployment trajectory.

    An evaluator owns a pair set and remembers the per-pair bounds of the
    last deployment it saw.  [eval] on the next deployment computes the
    {!Routing.Incremental} dirty cone of the delta and recomputes {e only}
    the dirty pairs, carrying the remembered bounds for the clean ones —
    plus a Theorem 6.1 shortcut: under security-3rd / standard local
    preference on a monotone delta, a pair already at [{1, 1}] provably
    stays there.  Results are bit-identical to a from-scratch
    {!h_metric} on every step (same input-order reduction, and carried
    values are sound by construction); the [incremental] check pass and
    the qcheck properties enforce this.

    All values are also published to the (shareable) {!Cache}, so sibling
    evaluators over overlapping pair sets reuse each other's work. *)
module Evaluator : sig
  type t

  type stats = {
    computed : int;  (** pairs recomputed with the engine *)
    carried : int;  (** pairs carried clean from the previous step *)
    cache_hits : int;  (** pairs served from the shared cache *)
    thm_skips : int;  (** pairs carried via the Theorem 6.1 shortcut *)
  }

  val create :
    ?pool:Parallel.Pool.t ->
    ?cache:Cache.t ->
    Topology.Graph.t ->
    Routing.Policy.t ->
    pair array ->
    t
  (** A fresh evaluator (no deployment seen yet).  [pool] parallelizes
      the recomputed pairs; omitted, they run sequentially.  [cache]
      shares memoized bounds with other users; omitted, the evaluator
      creates a private one. *)

  val eval : t -> Deployment.t -> bounds
  (** [H] over the evaluator's pairs at [dep], reusing everything the
      delta from the previously evaluated deployment provably preserves.
      Deployments may arrive in any order (non-monotone deltas just get a
      wider cone), but consecutive similar deployments reuse the most. *)

  val values : t -> bounds array
  (** Per-pair bounds at the last evaluated deployment, in pair order.
      Raises [Invalid_argument] before the first {!eval}. *)

  val stats : t -> stats
  (** Cumulative pair-level counters across all {!eval} calls. *)
end

(** Incremental evaluation of [H] along a {e topology} trajectory — the
    dual of {!Evaluator}: the deployment and pair set stay put while the
    graph takes {!Topology.Graph.Delta} steps (CAIDA monthly-snapshot
    replays, link-failure what-ifs, perturbation sweeps).

    Pairs are grouped destination-major into words of at most
    {!Routing.Batch.max_lanes} attackers, exactly as {!h_metric}'s
    batched path.  Each word retains the frozen group state of its last
    batched solve; {!Replay.step} re-solves only the words the two-stage
    topology cone ({!Routing.Incremental.Topo}) cannot prove untouched
    and carries every other word's bounds bit-for-bit.  Results are
    bit-identical to a from-scratch {!h_metric} on the stepped graph for
    every step, model and tiebreak — the [topology] check pass and the
    qcheck delta-soundness properties enforce this. *)
module Replay : sig
  type t

  type stats = {
    steps : int;  (** {!step} calls so far *)
    words_solved : int;  (** batched solves run, priming included *)
    lanes_solved : int;
        (** engine evaluations: one lane is one (attacker, dst) stable
            state, the denominator of the ≥5x replay acceptance gate *)
    lanes_carried : int;  (** lane bounds carried without solving *)
  }

  val create :
    Topology.Graph.t -> Routing.Policy.t -> Deployment.t -> pair array -> t
  (** A fresh replay over the starting graph; no solve happens until
      {!eval}.  Raises [Invalid_argument] when the deployment size
      disagrees with the graph. *)

  val eval : t -> bounds
  (** Prime (or re-prime) every word against the current graph and
      return [H] over the pairs.  Must run before the first {!step}. *)

  val step : t -> Topology.Graph.Delta.t -> bounds
  (** Apply the delta to the current graph (validating it), re-solve the
      dirty words, carry the clean ones, and return [H] on the stepped
      graph.  Raises [Invalid_argument] on an invalid delta or before
      the first {!eval}. *)

  val values : t -> bounds array
  (** Per-pair bounds on the current graph, in pair order.  Raises
      [Invalid_argument] before the first {!eval}. *)

  val graph : t -> Topology.Graph.t
  (** The current graph (the seed, stepped by every applied delta). *)

  val stats : t -> stats
end
