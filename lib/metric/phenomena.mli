(** Protocol downgrades, collateral benefits and damages, and the
    root-cause decomposition of Section 6 / Figure 16.

    All happiness here uses the pessimistic (lower-bound) tiebreak
    semantics of Section 4.1: an AS facing equally-good legitimate and
    bogus routes counts as unhappy.  This matches the paper's Section 6
    examples (e.g. Figure 15's collateral benefit arises from a tiebreak)
    and its "lower bound on collateral benefits" framing. *)

type downgrade = {
  secure_normal : int;  (** sources with a secure route under normal conditions *)
  downgraded : int;     (** of those, how many lose route security under attack *)
  secure_after : int;   (** of those, how many keep a secure route under attack *)
  sources : int;
}

val downgrades :
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attacker:int ->
  dst:int ->
  downgrade
(** Compare the normal-conditions run with the attack run (Appendix F.1).
    Sources whose normal (representative) route already passes through the
    attacker are excluded from [secure_normal] — Theorem 3.1 exempts them,
    since the attacker attracts their traffic without attacking. *)

val downgrade_zero : downgrade
val downgrade_add : downgrade -> downgrade -> downgrade

type root_cause = {
  sources : int;
  rc_secure_normal : int;   (** secure routes under normal conditions *)
  rc_downgraded : int;      (** secure routes lost to protocol downgrades *)
  rc_wasted : int;          (** secure routes kept by sources that were
                                happy already with S = {} *)
  rc_protecting : int;      (** secure routes kept by sources unhappy with
                                S = {} — the only class of secure routes
                                that can raise the metric *)
  rc_benefit : int;         (** insecure sources: unhappy with S = {},
                                happy with S *)
  rc_damage : int;          (** insecure sources: happy with S = {},
                                unhappy with S *)
  rc_happy_base : int;      (** happy sources, S = {} *)
  rc_happy_dep : int;       (** happy sources, deployment S *)
}

val root_cause :
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attacker:int ->
  dst:int ->
  root_cause
(** Requires three runs: normal conditions with S, attack with S, attack
    with S = {}. *)

val root_cause_zero : root_cause
val root_cause_add : root_cause -> root_cause -> root_cause

type collateral = { benefit : int; damage : int; insecure_sources : int }

val collateral :
  Topology.Graph.t ->
  Routing.Policy.t ->
  baseline:Deployment.t ->
  deployment:Deployment.t ->
  attacker:int ->
  dst:int ->
  collateral
(** Collateral effects on sources that are insecure in [deployment],
    comparing against the smaller [baseline] deployment (Section 6.1
    considers [baseline = empty]).  Raises [Invalid_argument] unless
    [baseline] is a subset of [deployment]. *)
