type cls = Doomed | Protectable | Immune | Unreachable

type counts = {
  doomed : int;
  protectable : int;
  immune : int;
  unreachable : int;
  sources : int;
}

let zero = { doomed = 0; protectable = 0; immune = 0; unreachable = 0; sources = 0 }

let add a b =
  {
    doomed = a.doomed + b.doomed;
    protectable = a.protectable + b.protectable;
    immune = a.immune + b.immune;
    unreachable = a.unreachable + b.unreachable;
    sources = a.sources + b.sources;
  }

let fractions c =
  let f n = Prelude.Stats.fraction n c.sources in
  (f (c.doomed + c.unreachable), f c.protectable, f c.immune)

let classify ~d_ok ~m_ok =
  match (d_ok, m_ok) with
  | true, true -> Protectable
  | true, false -> Immune
  | false, true -> Doomed
  | false, false -> Unreachable

(* Security 3rd (any LP variant): the (class, length) prefix of the rank is
   deployment-invariant, so the endpoints of the baseline best-route set
   decide (Corollary E.1). *)
let sec3_partition ~attacker ~dst out =
  Array.init (Routing.Outcome.n out) (fun v ->
      if v = attacker || v = dst then Unreachable
      else
        classify
          ~d_ok:(Routing.Outcome.to_d out v)
          ~m_ok:(Routing.Outcome.to_m out v))

(* Security 1st: Observations E.3 / E.4, exactly. *)
let sec1_partition g ~attacker ~dst n =
  let reach_d = Routing.Reach.compute g ~root:dst ~avoid:attacker () in
  let reach_m = Routing.Reach.compute g ~root:attacker ~avoid:dst () in
  Array.init n (fun v ->
      if v = attacker || v = dst then Unreachable
      else
        classify
          ~d_ok:(Routing.Reach.any reach_d v)
          ~m_ok:(Routing.Reach.any reach_m v))

(* Security 2nd with the standard LP: the best local-preference class is
   deployment-invariant (Corollary E.2); classify by the endpoints of the
   class-restricted perceivable routes. *)
let sec2_standard_partition g ~attacker ~dst n =
  let reach_d = Routing.Reach.compute g ~root:dst ~avoid:attacker () in
  let reach_m = Routing.Reach.compute g ~root:attacker ~avoid:dst () in
  Array.init n (fun v ->
      if v = attacker || v = dst then Unreachable
      else
        let best =
          match
            (Routing.Reach.best_class reach_d v, Routing.Reach.best_class reach_m v)
          with
          | None, None -> None
          | (Some _ as c), None | None, (Some _ as c) -> c
          | Some a, Some b -> Some (if a <= b then a else b)
        in
        match best with
        | None -> Unreachable
        | Some cls ->
            classify
              ~d_ok:(Routing.Reach.in_class reach_d cls v)
              ~m_ok:(Routing.Reach.in_class reach_m cls v))

(* Security 2nd with LPk: the classes are length-refined, and — unlike the
   standard LP — an AS holding a customer route may CHOOSE a peer route of
   a better LPk class, in which case Ex stops it from exporting to peers
   and providers.  Raw perceivable closures therefore overcount.  We use
   instead the {e class-respecting} candidate structure: each AS's LPk
   class bucket is deployment-invariant (the same induction as Corollary
   E.2, over buckets), so an AS only ever holds, and exports, routes of
   its own bucket.  Reachability of each root through chains in which
   every AS's suffix fits its own bucket decides the partition.

   Length sets are tracked as a bitmask for lengths <= k plus an "over k"
   flag (inside the C>k / P>k buckets only existence matters).  Requires
   an acyclic hierarchy; the customer DP runs bottom-up (customers before
   providers) and the provider closure top-down. *)

type bucket =
  | B_cust of int   (* customer route of length j <= k *)
  | B_cust_over     (* customer route of length > k *)
  | B_peer of int
  | B_peer_over
  | B_prov
  | B_none          (* unreached at baseline *)

let bucket_of ~k out v =
  if not (Routing.Outcome.reached out v) then B_none
  else begin
    let len = Routing.Outcome.length out v in
    match Routing.Outcome.route_class out v with
    | Routing.Policy.Customer -> if len <= k then B_cust len else B_cust_over
    | Routing.Policy.Peer -> if len <= k then B_peer len else B_peer_over
    | Routing.Policy.Provider -> B_prov
  end

let sec2_lpk_partition ?ws g policy ~k ~attacker ~dst n =
  if k > 60 then failwith "Partition: Lp_k with k > 60 unsupported";
  let base =
    Routing.Engine.compute ?ws g policy (Deployment.empty n) ~dst
      ~attacker:(Some attacker)
  in
  let bucket =
    Array.init n (fun v ->
        if v = dst || v = attacker then B_none else bucket_of ~k base v)
  in
  let full_mask = (1 lsl (k + 1)) - 1 in
  (* Topological order of the customer-provider hierarchy, customers
     first. *)
  let topo =
    let indeg = Array.make n 0 in
    for v = 0 to n - 1 do
      indeg.(v) <- Array.length (Topology.Graph.customers g v)
    done;
    let queue = Queue.create () in
    for v = 0 to n - 1 do
      if indeg.(v) = 0 then Queue.add v queue
    done;
    let order = ref [] in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      order := u :: !order;
      Array.iter
        (fun p ->
          indeg.(p) <- indeg.(p) - 1;
          if indeg.(p) = 0 then Queue.add p queue)
        (Topology.Graph.providers g u)
    done;
    let order = List.rev !order in
    if List.length order <> n then
      failwith "Partition: customer-provider hierarchy has a cycle";
    Array.of_list order
  in
  (* Per root: does each AS have a class-respecting candidate route to it
     within its own bucket? *)
  let reach_root ~root ~offset ~avoid =
    (* What a non-root AS exports upward/sideways: its customer-bucket
       lengths only. *)
    let cust_mask = Array.make n 0 in
    let cust_over = Array.make n false in
    let clamped u =
      if u = root then ((if offset <= k then 1 lsl offset else 0), offset > k)
      else
        match bucket.(u) with
        | B_cust j -> (cust_mask.(u) land (1 lsl j), false)
        | B_cust_over -> (0, cust_over.(u))
        | B_peer _ | B_peer_over | B_prov | B_none -> (0, false)
    in
    let shift (mask, over) =
      ((mask lsl 1) land full_mask, over || mask land (1 lsl k) <> 0)
    in
    (* Customer chains, bottom-up. *)
    Array.iter
      (fun u ->
        if u <> avoid then begin
          let cmask, cover = shift (clamped u) in
          if cmask <> 0 || cover then
            Array.iter
              (fun p ->
                if p <> avoid && p <> root then begin
                  cust_mask.(p) <- cust_mask.(p) lor cmask;
                  cust_over.(p) <- cust_over.(p) || cover
                end)
              (Topology.Graph.providers g u)
        end)
      topo;
    (* Peer candidates: one hop off a customer-bucket neighbor (or the
       root). *)
    let peer_sets v =
      Array.fold_left
        (fun acc u ->
          if u = avoid then acc
          else begin
            let mask, over = shift (clamped u) in
            (fst acc lor mask, snd acc || over)
          end)
        (0, false) (Topology.Graph.peers g v)
    in
    (* avail.(v): v has a candidate to the root within its own bucket.
       Provider buckets close top-down: a provider route to the root via
       u exists iff u is the root or u's chosen route can lead there. *)
    let avail = Array.make n false in
    let avail_non_prov v =
      match bucket.(v) with
      | B_cust j -> cust_mask.(v) land (1 lsl j) <> 0
      | B_cust_over -> cust_over.(v)
      | B_peer j -> fst (peer_sets v) land (1 lsl j) <> 0
      | B_peer_over -> snd (peer_sets v)
      | B_prov | B_none -> false
    in
    for i = n - 1 downto 0 do
      let v = topo.(i) in
      if v <> avoid && v <> root then
        avail.(v) <-
          (match bucket.(v) with
          | B_prov ->
              Array.exists
                (fun u -> u <> avoid && (u = root || avail.(u)))
                (Topology.Graph.providers g v)
          | B_cust _ | B_cust_over | B_peer _ | B_peer_over ->
              avail_non_prov v
          | B_none -> false)
    done;
    avail
  in
  let avail_d = reach_root ~root:dst ~offset:0 ~avoid:attacker in
  let avail_m = reach_root ~root:attacker ~offset:1 ~avoid:dst in
  Array.init n (fun v ->
      if v = attacker || v = dst then Unreachable
      else classify ~d_ok:avail_d.(v) ~m_ok:avail_m.(v))

let compute ?ws g policy ~attacker ~dst =
  let n = Topology.Graph.n g in
  (* Validate here so every model raises the same error, instead of
     leaking whichever internal helper trips first (the security-1st
     path used to surface "Reach.compute: root = avoid" for m = d). *)
  if dst < 0 || dst >= n then
    invalid_arg "Partition.compute: dst out of range";
  if attacker < 0 || attacker >= n then
    invalid_arg "Partition.compute: attacker out of range";
  if attacker = dst then invalid_arg "Partition.compute: attacker = dst";
  match (policy : Routing.Policy.t).model with
  | Security_third ->
      let out =
        Routing.Engine.compute ?ws g policy (Deployment.empty n) ~dst
          ~attacker:(Some attacker)
      in
      sec3_partition ~attacker ~dst out
  | Security_first -> sec1_partition g ~attacker ~dst n
  | Security_second -> (
      match (policy : Routing.Policy.t).lp with
      | Standard -> sec2_standard_partition g ~attacker ~dst n
      | Lp_k k -> sec2_lpk_partition ?ws g policy ~k ~attacker ~dst n)

let count_of_classes classes skip =
  let c = ref zero in
  Array.iteri
    (fun v cls ->
      if not (skip v) then begin
        let one = { zero with sources = 1 } in
        let one =
          match cls with
          | Doomed -> { one with doomed = 1 }
          | Protectable -> { one with protectable = 1 }
          | Immune -> { one with immune = 1 }
          | Unreachable -> { one with unreachable = 1 }
        in
        c := add !c one
      end)
    classes;
  !c

let count ?ws g policy ~attacker ~dst =
  let classes = compute ?ws g policy ~attacker ~dst in
  count_of_classes classes (fun v -> v = attacker || v = dst)

(* Security 3rd for a whole attacker word at once: the classification
   reads only the endpoint flags of the baseline (empty-deployment)
   attacked solve, so one batched drain classifies every lane.  The
   fold skips class-3 (root) groups — the destination everywhere and
   each lane's own attacker in its lane, exactly the per-lane excluded
   sources — and counts the rest per flag pair; an AS with no group in
   a lane is unreached there, so [unreachable] is the remainder.
   Counts are bit-identical to per-attacker {!count}. *)
let sec3_count_batch ?ws g policy ~dst ~attackers =
  (match (policy : Routing.Policy.t).model with
  | Security_third -> ()
  | Security_first | Security_second ->
      invalid_arg "Partition.sec3_count_batch: policy is not security 3rd");
  let n = Topology.Graph.n g in
  let lanes = Array.length attackers in
  let doomed = Array.make lanes 0
  and protectable = Array.make lanes 0
  and immune = Array.make lanes 0 in
  let b =
    Routing.Batch.compute ?ws g policy (Deployment.empty n) ~dst ~attackers
  in
  Routing.Batch.iter_fixed b (fun ~v:_ ~mask ~word ~parent:_ ->
      let open Routing.Engine.Packed in
      if cls_code_of word <> 3 then begin
        let tally =
          if to_d_of word then
            if to_m_of word then Some protectable else Some immune
          else if to_m_of word then Some doomed
          else None
        in
        match tally with
        | Some t -> Prelude.Bitset.iter_word (fun l -> t.(l) <- t.(l) + 1) mask
        | None -> ()
      end);
  let sources = n - 2 in
  Array.init lanes (fun l ->
      {
        doomed = doomed.(l);
        protectable = protectable.(l);
        immune = immune.(l);
        unreachable = sources - doomed.(l) - protectable.(l) - immune.(l);
        sources;
      })

let count_among ?ws g policy ~attacker ~dst ~sources =
  let classes = compute ?ws g policy ~attacker ~dst in
  let keep = Hashtbl.create (Array.length sources) in
  Array.iter (fun v -> Hashtbl.replace keep v ()) sources;
  count_of_classes classes (fun v ->
      v = attacker || v = dst || not (Hashtbl.mem keep v))
