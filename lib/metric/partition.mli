(** The doomed / protectable / immune partition of Section 4.3 and
    Appendix E.

    For an attacker-destination pair [(m, d)] and a routing model, every
    source AS falls into one of:

    - {b doomed}: routes through [m] no matter which ASes deploy S*BGP;
    - {b immune}: routes to [d] no matter which ASes deploy S*BGP;
    - {b protectable}: the outcome depends on the deployment;
    - {b unreachable}: no perceivable route to either — it can never be
      happy, so it counts with the doomed when bounding the metric.  (The
      paper's graphs are connected enough that this class is empty; it can
      appear in small synthetic graphs.)

    Method per model:
    - security 3rd: Corollary E.1 — the stable route's class and length
      are deployment-invariant, so the endpoints of the baseline (S = {})
      best-route set decide the class.  This also holds for the LPk
      policy variants (the rank prefix above security is
      deployment-invariant).
    - security 2nd: Corollary E.2 — the stable route's {e local-preference
      class} is deployment-invariant; the AS is classified by which
      endpoints its class-restricted perceivable routes can reach.  For
      LPk policies the classes are length-refined, which we resolve over
      the class-respecting candidate structure (each AS only ever holds
      and exports routes of its own deployment-invariant class bucket).
      Note that under security 2nd, [Protectable] is an
      over-approximation — inherited from the paper's method: a
      class-compatible perceivable route to the destination may pass
      through an AS that never {e chooses} the needed suffix (e.g. a
      transit AS whose customer-class route is always the bogus one), so
      some "protectable" ASes are de-facto doomed.  [Doomed] and
      [Immune] are exact, so the Figure-3 bounds derived from them
      remain valid; our exhaustive tests quantify over every deployment
      on small graphs to check exactly this.
    - security 1st: Observations E.3/E.4 exactly — doomed iff no
      perceivable route to [d] avoids [m]; immune iff no perceivable route
      to [m] avoids [d].  (The paper approximates "everything is
      protectable"; the exact computation differs by a negligible
      fraction, which our reproduction reports.) *)

type cls = Doomed | Protectable | Immune | Unreachable

type counts = {
  doomed : int;
  protectable : int;
  immune : int;
  unreachable : int;
  sources : int;
}

val zero : counts
val add : counts -> counts -> counts

val fractions : counts -> float * float * float
(** (doomed+unreachable, protectable, immune) as fractions of sources. *)

val compute :
  ?ws:Routing.Engine.Workspace.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  attacker:int ->
  dst:int ->
  cls array
(** Per-source classification; the attacker's and destination's own slots
    are [Unreachable] and must be ignored by callers.  LPk policies under
    security 2nd require an acyclic customer-provider hierarchy and raise
    [Failure] otherwise.  [ws] reuses the given engine workspace for the
    internal baseline computation (see {!Routing.Engine.compute}). *)

val count :
  ?ws:Routing.Engine.Workspace.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  attacker:int ->
  dst:int ->
  counts

val sec3_count_batch :
  ?ws:Routing.Batch.Workspace.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  dst:int ->
  attackers:int array ->
  counts array
(** Security-3rd {!count} for every attacker of one destination off a
    single batched solve ({!Routing.Batch}): the classification depends
    only on the endpoint flags of the baseline attacked state, so one
    drain serves up to [Routing.Batch.max_lanes] attackers.  Returns
    the per-attacker counts in input order, bit-identical to calling
    {!count} per pair.  Raises [Invalid_argument] if the policy's model
    is not [Security_third] or the lane count is outside the batch
    kernel's bounds. *)

val count_among :
  ?ws:Routing.Engine.Workspace.t ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  attacker:int ->
  dst:int ->
  sources:int array ->
  counts
