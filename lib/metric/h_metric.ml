type bounds = { lb : float; ub : float }

let bounds_add a b = { lb = a.lb +. b.lb; ub = a.ub +. b.ub }
let bounds_sub a b = { lb = a.lb -. b.ub; ub = a.ub -. b.lb }
let bounds_improvement after before =
  { lb = after.lb -. before.lb; ub = after.ub -. before.ub }
let bounds_scale k b = { lb = k *. b.lb; ub = k *. b.ub }

let pp_bounds b =
  if abs_float (b.ub -. b.lb) < 5e-4 then Printf.sprintf "%.1f%%" (100. *. b.lb)
  else Printf.sprintf "[%.1f%%, %.1f%%]" (100. *. b.lb) (100. *. b.ub)

type counts = { happy_lb : int; happy_ub : int; sources : int }

let is_source outcome v =
  v <> Routing.Outcome.dst outcome
  && Routing.Outcome.attacker outcome <> Some v

let happy outcome =
  let n = Routing.Outcome.n outcome in
  let lb = ref 0 and ub = ref 0 and sources = ref 0 in
  for v = 0 to n - 1 do
    if is_source outcome v then begin
      incr sources;
      if Routing.Outcome.happy_lb outcome v then incr lb;
      if Routing.Outcome.happy_ub outcome v then incr ub
    end
  done;
  { happy_lb = !lb; happy_ub = !ub; sources = !sources }

let happy_among outcome set =
  let lb = ref 0 and ub = ref 0 and sources = ref 0 in
  Array.iter
    (fun v ->
      if is_source outcome v then begin
        incr sources;
        if Routing.Outcome.happy_lb outcome v then incr lb;
        if Routing.Outcome.happy_ub outcome v then incr ub
      end)
    set;
  { happy_lb = !lb; happy_ub = !ub; sources = !sources }

let to_bounds c =
  {
    lb = Prelude.Stats.fraction c.happy_lb c.sources;
    ub = Prelude.Stats.fraction c.happy_ub c.sources;
  }

type pair = { attacker : int; dst : int }

let pairs ?rng ?max_pairs ~attackers ~dsts () =
  let total = ref 0 in
  Array.iter
    (fun m -> Array.iter (fun d -> if m <> d then incr total) dsts)
    attackers;
  let total = !total in
  (match max_pairs with
  | Some k when k < 0 -> invalid_arg "Metric.pairs: max_pairs < 0"
  | _ -> ());
  if total = 0 then [||]
  else
    match max_pairs with
    | Some k when total > k -> (
        match rng with
        | None -> invalid_arg "Metric.pairs: sampling requires ~rng"
        | Some rng ->
            (* Enumeration order matters here: the sampled indices land in
               the same array the historical list-cons construction built
               (reverse enumeration), keeping seeded samples identical. *)
            let all = Array.make total { attacker = 0; dst = 0 } in
            let i = ref (total - 1) in
            Array.iter
              (fun m ->
                Array.iter
                  (fun d ->
                    if m <> d then begin
                      all.(!i) <- { attacker = m; dst = d };
                      decr i
                    end)
                  dsts)
              attackers;
            let idx = Rng.sample_without_replacement rng k total in
            Array.map (fun i -> all.(i)) idx)
    | _ ->
        (* Generate directly in deterministic (attacker, dst) order from
           sorted copies of the inputs — no list-cons, no sort of the
           cross product. *)
        let sa = Array.copy attackers and sd = Array.copy dsts in
        Array.sort Int.compare sa;
        Array.sort Int.compare sd;
        let out = Array.make total { attacker = 0; dst = 0 } in
        let i = ref 0 in
        Array.iter
          (fun m ->
            Array.iter
              (fun d ->
                if m <> d then begin
                  out.(!i) <- { attacker = m; dst = d };
                  incr i
                end)
              sd)
          sa;
        out

let pair_bounds ?ws g policy dep { attacker; dst } =
  let outcome =
    Routing.Engine.compute ?ws g policy dep ~dst ~attacker:(Some attacker)
  in
  to_bounds (happy outcome)

let h_metric ?progress ?pool ?(domains = 1) g policy dep pairs =
  let total = Array.length pairs in
  if total = 0 then { lb = 0.; ub = 0. }
  else begin
    let use_pool =
      match pool with
      | Some p -> Parallel.Pool.size p > 1
      | None -> domains > 1
    in
    let per_pair =
      if use_pool then
        (* Each domain (pool worker or caller) reuses its own private
           engine workspace across the pairs it steals. *)
        Parallel.map ?pool ~domains
          (fun p ->
            pair_bounds ~ws:(Routing.Engine.Workspace.local ()) g policy dep p)
          pairs
      else begin
        let ws = Routing.Engine.Workspace.local () in
        Array.mapi
          (fun i p ->
            let b = pair_bounds ~ws g policy dep p in
            (match progress with Some f -> f (i + 1) total | None -> ());
            b)
          pairs
      end
    in
    let lb = ref 0. and ub = ref 0. in
    Array.iter
      (fun b ->
        lb := !lb +. b.lb;
        ub := !ub +. b.ub)
      per_pair;
    { lb = !lb /. float_of_int total; ub = !ub /. float_of_int total }
  end

let h_metric_per_dst ?pool g policy dep ~attackers ~dst =
  let ps =
    Array.to_list attackers
    |> List.filter_map (fun m ->
           if m = dst then None else Some { attacker = m; dst })
    |> Array.of_list
  in
  h_metric ?pool g policy dep ps
