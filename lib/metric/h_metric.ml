type bounds = { lb : float; ub : float }

let bounds_add a b = { lb = a.lb +. b.lb; ub = a.ub +. b.ub }
let bounds_sub a b = { lb = a.lb -. b.ub; ub = a.ub -. b.lb }
let bounds_improvement after before =
  { lb = after.lb -. before.lb; ub = after.ub -. before.ub }
let bounds_scale k b = { lb = k *. b.lb; ub = k *. b.ub }

let pp_bounds b =
  (* Collapse to a single number exactly when both endpoints render the
     same at the printed precision — an epsilon test at a different
     granularity (the old 5e-4) collapsed bounds that print differently,
     e.g. 0.12% vs 0.16%. *)
  let lo = Printf.sprintf "%.1f%%" (100. *. b.lb) in
  let hi = Printf.sprintf "%.1f%%" (100. *. b.ub) in
  if String.equal lo hi then lo else Printf.sprintf "[%s, %s]" lo hi

type counts = { happy_lb : int; happy_ub : int; sources : int }

let is_source outcome v =
  v <> Routing.Outcome.dst outcome
  &&
  (* Match instead of [<> Some v]: comparing the option structurally
     boxes an allocation per source per trial. *)
  match Routing.Outcome.attacker outcome with
  | Some a -> a <> v
  | None -> true

let happy outcome =
  let n = Routing.Outcome.n outcome in
  let lb = ref 0 and ub = ref 0 and sources = ref 0 in
  for v = 0 to n - 1 do
    if is_source outcome v then begin
      incr sources;
      if Routing.Outcome.happy_lb outcome v then incr lb;
      if Routing.Outcome.happy_ub outcome v then incr ub
    end
  done;
  { happy_lb = !lb; happy_ub = !ub; sources = !sources }

let happy_among outcome set =
  let lb = ref 0 and ub = ref 0 and sources = ref 0 in
  Array.iter
    (fun v ->
      if is_source outcome v then begin
        incr sources;
        if Routing.Outcome.happy_lb outcome v then incr lb;
        if Routing.Outcome.happy_ub outcome v then incr ub
      end)
    set;
  { happy_lb = !lb; happy_ub = !ub; sources = !sources }

let to_bounds c =
  {
    lb = Prelude.Stats.fraction c.happy_lb c.sources;
    ub = Prelude.Stats.fraction c.happy_ub c.sources;
  }

type pair = { attacker : int; dst : int }

let pairs ?rng ?max_pairs ~attackers ~dsts () =
  let total = ref 0 in
  Array.iter
    (fun m -> Array.iter (fun d -> if m <> d then incr total) dsts)
    attackers;
  let total = !total in
  (match max_pairs with
  | Some k when k < 0 -> invalid_arg "Metric.pairs: max_pairs < 0"
  | _ -> ());
  if total = 0 then [||]
  else
    match max_pairs with
    | Some k when total > k -> (
        match rng with
        | None -> invalid_arg "Metric.pairs: sampling requires ~rng"
        | Some rng ->
            (* Enumeration order matters here: the sampled indices land in
               the same array the historical list-cons construction built
               (reverse enumeration), keeping seeded samples identical. *)
            let all = Array.make total { attacker = 0; dst = 0 } in
            let i = ref (total - 1) in
            Array.iter
              (fun m ->
                Array.iter
                  (fun d ->
                    if m <> d then begin
                      all.(!i) <- { attacker = m; dst = d };
                      decr i
                    end)
                  dsts)
              attackers;
            let idx = Rng.sample_without_replacement rng k total in
            Array.map (fun i -> all.(i)) idx)
    | _ ->
        (* Generate directly in deterministic (attacker, dst) order from
           sorted copies of the inputs — no list-cons, no sort of the
           cross product. *)
        let sa = Array.copy attackers and sd = Array.copy dsts in
        Array.sort Int.compare sa;
        Array.sort Int.compare sd;
        let out = Array.make total { attacker = 0; dst = 0 } in
        let i = ref 0 in
        Array.iter
          (fun m ->
            Array.iter
              (fun d ->
                if m <> d then begin
                  out.(!i) <- { attacker = m; dst = d };
                  incr i
                end)
              sd)
          sa;
        out

let pair_bounds ?ws g policy dep { attacker; dst } =
  let outcome =
    Routing.Engine.compute ?ws g policy dep ~dst ~attacker:(Some attacker)
  in
  to_bounds (happy outcome)

(* --- Destination-major batched evaluation ---------------------------

   Pairs sharing a destination share the whole attacker-free part of the
   routing tree, so they are solved together by {!Routing.Batch}: one
   label-setting drain per <= 63 attackers.  The per-lane happiness
   counts are folded directly off the frozen lane groups — one callback
   per group, not per (lane, AS) — so no per-attacker outcome record is
   ever materialized.  Skipping class-3 (root) groups excludes exactly
   the two non-sources of each lane: the destination everywhere, and the
   lane's own attacker in that lane; every other AS either has an
   ordinary group containing the lane or is unreached (unhappy either
   way).  The counts — and via [Stats.fraction] the float bounds — are
   bit-identical to [to_bounds (happy outcome)] on the scalar path. *)

let batch_off_values = [ "0"; "false"; "no"; "off" ]

let batch_enabled () =
  match Sys.getenv_opt "SBGP_BATCH" with
  | Some v ->
      not
        (List.exists (String.equal (String.lowercase_ascii v)) batch_off_values)
  | None -> true

(* One work item: solve destination [bdst] for the attackers of the
   pairs at [bpos] (positions into the caller's index array). *)
type batch_item = { bdst : int; bpos : int array }

(* Group the pair positions by destination (first-seen order, keyed
   lookups only — no Hashtbl iteration) and chunk each destination's
   attacker list into full words. *)
let batch_items pairs idxs =
  let by_dst = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun j i ->
      let p = pairs.(i) in
      match Hashtbl.find_opt by_dst p.dst with
      | Some l -> l := j :: !l
      | None ->
          Hashtbl.add by_dst p.dst (ref [ j ]);
          order := p.dst :: !order)
    idxs;
  let items = ref [] in
  List.iter
    (fun dst ->
      let slots =
        match Hashtbl.find_opt by_dst dst with
        | Some l -> Array.of_list (List.rev !l)
        | None -> [||]
      in
      let total = Array.length slots in
      let lanes = Routing.Batch.max_lanes in
      let k = ref 0 in
      while !k < total do
        let len = min lanes (total - !k) in
        items := { bdst = dst; bpos = Array.sub slots !k len } :: !items;
        k := !k + len
      done)
    (List.rev !order);
  Array.of_list (List.rev !items)

(* Public face of the grouping, for callers that batch their own
   per-pair folds (partition counts, the divergence checker). *)
let batch_plan pairs =
  let idxs = Array.init (Array.length pairs) (fun i -> i) in
  Array.map
    (fun item ->
      ( item.bdst,
        Array.map (fun j -> pairs.(j).attacker) item.bpos,
        Array.copy item.bpos ))
    (batch_items pairs idxs)

(* Solve one item and fold the per-lane bounds off the groups. *)
let batch_item_bounds ~ws g policy dep pairs idxs item =
  let attackers =
    Array.map (fun j -> pairs.(idxs.(j)).attacker) item.bpos
  in
  let b = Routing.Batch.compute ~ws g policy dep ~dst:item.bdst ~attackers in
  let lanes = Array.length attackers in
  let lb = Array.make lanes 0 and ub = Array.make lanes 0 in
  (* Hoisted once per solve: building these inside the [iter_fixed]
     callback would box two fresh closures per fixed group. *)
  let tick_ub l = ub.(l) <- ub.(l) + 1 in
  let tick_lb l = lb.(l) <- lb.(l) + 1 in
  Routing.Batch.iter_fixed b (fun ~v:_ ~mask ~word ~parent:_ ->
      let open Routing.Engine.Packed in
      if cls_code_of word <> 3 && to_d_of word then begin
        Prelude.Bitset.iter_word tick_ub mask;
        if not (to_m_of word) then Prelude.Bitset.iter_word tick_lb mask
      end);
  let sources = Topology.Graph.n g - 2 in
  Array.init lanes (fun l ->
      {
        lb = Prelude.Stats.fraction lb.(l) sources;
        ub = Prelude.Stats.fraction ub.(l) sources;
      })

(* Evaluate [pairs.(idxs.(j))] for every [j], batched by destination.
   Returns bounds aligned with [idxs].  [report] ticks from the caller
   domain with the number of pairs each of its items covered. *)
let batched_map ?report ?pool ?(domains = 1) g policy dep pairs idxs =
  let items = batch_items pairs idxs in
  let caller = (Domain.self () :> int) in
  let per_item =
    (* Items are few and coarse (one drain each): steal singly. *)
    Parallel.map ?pool ~domains ~chunk:1
      (fun item ->
        let out =
          batch_item_bounds
            ~ws:(Routing.Batch.Workspace.local ())
            g policy dep pairs idxs item
        in
        (match report with
        | Some f when (Domain.self () :> int) = caller ->
            f (Array.length item.bpos)
        | _ -> ());
        out)
      items
  in
  let out = Array.make (Array.length idxs) { lb = 0.; ub = 0. } in
  Array.iteri
    (fun k item ->
      Array.iteri (fun l j -> out.(j) <- per_item.(k).(l)) item.bpos)
    items;
  out

(* Dense injective encoding of a policy for cache keys: the model index in
   the low bits, the local-preference variant above. *)
let lp_code (p : Routing.Policy.t) =
  let open Routing.Policy in
  match p.lp with Standard -> 0 | Lp_k k -> k

let policy_code (p : Routing.Policy.t) =
  let open Routing.Policy in
  let midx =
    match p.model with
    | Security_first -> 0
    | Security_second -> 1
    | Security_third -> 2
  in
  (lp_code p * 4) + midx

(* When the destination's origin is unsigned, no offer in the engine is
   ever secure: the attacker's announcement is plain BGP, and the
   destination's own root expands with [secure = false], so [is_full] is
   never consulted and the three models' rank encodings all collapse to
   the same (class, length) order.  The outcome — and hence the bounds —
   is therefore independent of both the security model and the
   deployment, and every policy sharing a local-preference variant can
   share one cache entry under one reserved version. *)
let normalized_code p = (lp_code p * 4) + 2

let sec3_standard (p : Routing.Policy.t) =
  let open Routing.Policy in
  match (p.model, p.lp) with
  | Security_third, Standard -> true
  | (Security_first | Security_second | Security_third), _ -> false

module Cache = struct
  module Sc = Prelude.Shard_cache

  type t = {
    store : bounds Sc.t;
    mu : Mutex.t; (* guards the version intern table *)
    mutable versions : (int * int * Deployment.t * int) list;
        (* (topology version, deployment fingerprint, deployment, id) *)
    mutable next : int;
  }

  let create ?shards () =
    {
      store = Sc.create ?shards ();
      mu = Mutex.create ();
      versions = [];
      next = 0;
    }

  let intern t g dep =
    let gv = Topology.Graph.version g in
    let fp = Deployment.fingerprint dep in
    Mutex.lock t.mu;
    let rec find = function
      | [] ->
          let v = t.next in
          t.next <- v + 1;
          t.versions <- (gv, fp, dep, v) :: t.versions;
          v
      | (gv', fp', dep', v) :: rest ->
          if gv' = gv && fp' = fp && Deployment.equal dep' dep then v
          else find rest
    in
    let v = find t.versions in
    Mutex.unlock t.mu;
    v

  (* The unsigned-destination slot must still distinguish topologies (the
     outcome is deployment- and model-independent, not graph-independent):
     one reserved negative version per graph, which can never collide
     with the interned ids (those count up from 0). *)
  let unsigned_version g = -1 - Topology.Graph.version g

  let key policy g dep ~version { attacker; dst } =
    if Deployment.signs_origin dep dst then
      { Sc.k1 = policy_code policy; k2 = version; k3 = attacker; k4 = dst }
    else
      (* See [normalized_code]: the outcome for an unsigned destination is
         independent of the model and the deployment, so all such entries
         share one slot per local-preference variant and topology. *)
      {
        Sc.k1 = normalized_code policy;
        k2 = unsigned_version g;
        k3 = attacker;
        k4 = dst;
      }

  let find t policy g dep ~version p =
    Sc.find t.store (key policy g dep ~version p)

  let store t policy g dep ~version p b =
    Sc.store t.store (key policy g dep ~version p) b

  let length t = Sc.length t.store
  let hits t = Sc.hits t.store
  let misses t = Sc.misses t.store

  (* Propagate clean pairs of a deployment step: any (attacker, dst) the
     dirty cone clears keeps its old-deployment value bit-for-bit, so the
     cached entry can be republished under the new version without touching
     the engine.  Returns how many entries were carried. *)
  let carry t policy g cone ~old_dep ~new_dep ~attackers ~dsts =
    let old_v = intern t g old_dep and new_v = intern t g new_dep in
    let carried = ref 0 in
    Array.iter
      (fun dst ->
        Array.iter
          (fun attacker ->
            if
              attacker <> dst
              && not (Routing.Incremental.dirty_pair cone ~attacker ~dst)
            then
              let p = { attacker; dst } in
              match find t policy g old_dep ~version:old_v p with
              | Some b ->
                  store t policy g new_dep ~version:new_v p b;
                  incr carried
              | None -> ())
          attackers)
      dsts;
    !carried

  let clear t =
    Mutex.lock t.mu;
    t.versions <- [];
    t.next <- 0;
    Mutex.unlock t.mu;
    Sc.clear t.store
end

let h_metric ?progress ?pool ?(domains = 1) ?cache g policy dep pairs =
  let total = Array.length pairs in
  if total = 0 then { lb = 0.; ub = 0. }
  else begin
    let find, remember =
      match cache with
      | None -> ((fun _ -> None), fun _ _ -> ())
      | Some c ->
          let version = Cache.intern c g dep in
          ( (fun p -> Cache.find c policy g dep ~version p),
            fun p b -> Cache.store c policy g dep ~version p b )
    in
    let compute_pair ws p =
      match find p with
      | Some b -> b
      | None ->
          let b = pair_bounds ~ws g policy dep p in
          remember p b;
          b
    in
    let use_pool =
      match pool with
      | Some p -> Parallel.Pool.size p > 1
      | None -> domains > 1
    in
    let per_pair =
      if batch_enabled () then begin
        (* Destination-major batched path (default): pre-resolve the
           cache per pair, then solve only the misses, whole attacker
           words at a time.  Progress ticks in covered pairs from the
           caller's share of the items. *)
        let vals = Array.make total { lb = 0.; ub = 0. } in
        let miss = ref [] in
        let nmiss = ref 0 in
        Array.iteri
          (fun i p ->
            match find p with
            | Some b -> vals.(i) <- b
            | None ->
                miss := i :: !miss;
                incr nmiss)
          pairs;
        (match progress with
        | Some f ->
            for d = 1 to total - !nmiss do
              f d total
            done
        | None -> ());
        let idxs = Array.of_list (List.rev !miss) in
        if Array.length idxs > 0 then begin
          let caller_done = ref (total - !nmiss) in
          let report =
            match progress with
            | None -> None
            | Some f ->
                Some
                  (fun k ->
                    (* One tick per covered pair, matching the scalar
                       path's cadence. *)
                    for _ = 1 to k do
                      incr caller_done;
                      f !caller_done total
                    done)
          in
          let out = batched_map ?report ?pool ~domains g policy dep pairs idxs in
          Array.iteri
            (fun j i ->
              vals.(i) <- out.(j);
              remember pairs.(i) out.(j))
            idxs
        end;
        vals
      end
      else if use_pool then begin
        (* Each domain (pool worker or caller) reuses its own private
           engine workspace across the pairs it steals.  Progress is
           reported from the caller's share of the stolen work only: the
           caller participates in every pool map, so the callback still
           ticks, but its [done] count stops short of [total]. *)
        let caller = (Domain.self () :> int) in
        let caller_done = ref 0 in
        Parallel.map ?pool ~domains
          (fun p ->
            let b = compute_pair (Routing.Engine.Workspace.local ()) p in
            (match progress with
            | Some f when (Domain.self () :> int) = caller ->
                incr caller_done;
                f !caller_done total
            | _ -> ());
            b)
          pairs
      end
      else begin
        let ws = Routing.Engine.Workspace.local () in
        Array.mapi
          (fun i p ->
            let b = compute_pair ws p in
            (match progress with Some f -> f (i + 1) total | None -> ());
            b)
          pairs
      end
    in
    let lb = ref 0. and ub = ref 0. in
    Array.iter
      (fun b ->
        lb := !lb +. b.lb;
        ub := !ub +. b.ub)
      per_pair;
    { lb = !lb /. float_of_int total; ub = !ub /. float_of_int total }
  end

let h_metric_per_dst ?pool ?cache g policy dep ~attackers ~dst =
  let ps =
    Array.to_list attackers
    |> List.filter_map (fun m ->
           if m = dst then None else Some { attacker = m; dst })
    |> Array.of_list
  in
  h_metric ?pool ?cache g policy dep ps

module Evaluator = struct
  type stats = {
    computed : int;
    carried : int;
    cache_hits : int;
    thm_skips : int;
  }

  type t = {
    g : Topology.Graph.t;
    policy : Routing.Policy.t;
    pairs : pair array;
    dsts : int array; (* distinct destinations of [pairs] *)
    pool : Parallel.Pool.t option;
    cache : Cache.t;
    mutable prev : (Deployment.t * bounds array) option;
    mutable st : stats;
  }

  let distinct_dsts pairs =
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    Array.iter
      (fun p ->
        if not (Hashtbl.mem seen p.dst) then begin
          Hashtbl.add seen p.dst ();
          acc := p.dst :: !acc
        end)
      pairs;
    Array.of_list !acc

  let create ?pool ?cache g policy pairs =
    let cache = match cache with Some c -> c | None -> Cache.create () in
    {
      g;
      policy;
      pairs = Array.copy pairs;
      dsts = distinct_dsts pairs;
      pool;
      cache;
      prev = None;
      st = { computed = 0; carried = 0; cache_hits = 0; thm_skips = 0 };
    }

  let mean pairs vals =
    let total = Array.length pairs in
    if total = 0 then { lb = 0.; ub = 0. }
    else begin
      let lb = ref 0. and ub = ref 0. in
      Array.iter
        (fun b ->
          lb := !lb +. b.lb;
          ub := !ub +. b.ub)
        vals;
      { lb = !lb /. float_of_int total; ub = !ub /. float_of_int total }
    end

  let eval t dep =
    let version = Cache.intern t.cache t.g dep in
    let n = Array.length t.pairs in
    let vals = Array.make n { lb = 0.; ub = 0. } in
    let carried = ref 0 and hits = ref 0 and skips = ref 0 in
    let to_compute = ref [] in
    let classify_fresh i p =
      match Cache.find t.cache t.policy t.g dep ~version p with
      | Some b ->
          vals.(i) <- b;
          incr hits
      | None -> to_compute := i :: !to_compute
    in
    (match t.prev with
    | Some (old_dep, old_vals) when Deployment.equal old_dep dep ->
        Array.blit old_vals 0 vals 0 n;
        carried := n
    | Some (old_dep, old_vals) ->
        let cone =
          Routing.Incremental.compute t.g ~old_dep ~new_dep:dep ~dsts:t.dsts
        in
        let thm_ok = sec3_standard t.policy && Routing.Incremental.monotone cone in
        Array.iteri
          (fun i p ->
            if
              not
                (Routing.Incremental.dirty_pair cone ~attacker:p.attacker
                   ~dst:p.dst)
            then begin
              vals.(i) <- old_vals.(i);
              incr carried
            end
            else if thm_ok && old_vals.(i).lb >= 1.0 then begin
              (* Theorem 6.1: under security-3rd with standard local
                 preference, per-source happiness is monotone in the
                 deployment, so a pair already at {1, 1} stays there. *)
              vals.(i) <- old_vals.(i);
              incr skips
            end
            else classify_fresh i p)
          t.pairs
    | None -> Array.iteri classify_fresh t.pairs);
    let idxs = Array.of_list (List.rev !to_compute) in
    if Array.length idxs > 0 then begin
      if batch_enabled () then begin
        (* [idxs] holds only pairs the dirty cone (and caches) left
           standing, so clean attackers are already masked out of the
           lane words: a destination with one dirty attacker costs a
           1-lane solve, not a full word. *)
        let out = batched_map ?pool:t.pool t.g t.policy dep t.pairs idxs in
        Array.iteri (fun j i -> vals.(i) <- out.(j)) idxs
      end
      else begin
        let computed =
          Parallel.map ?pool:t.pool ~domains:1
            (fun i ->
              pair_bounds
                ~ws:(Routing.Engine.Workspace.local ())
                t.g t.policy dep t.pairs.(i))
            idxs
        in
        Array.iteri (fun j i -> vals.(i) <- computed.(j)) idxs
      end
    end;
    (* Publish every value (carried ones included) under the new version:
       sibling evaluators and plain [h_metric ~cache] calls sharing this
       cache then hit on the whole step. *)
    Array.iteri
      (fun i p -> Cache.store t.cache t.policy t.g dep ~version p vals.(i))
      t.pairs;
    t.prev <- Some (dep, vals);
    t.st <-
      {
        computed = t.st.computed + Array.length idxs;
        carried = t.st.carried + !carried;
        cache_hits = t.st.cache_hits + !hits;
        thm_skips = t.st.thm_skips + !skips;
      };
    mean t.pairs vals

  let values t =
    match t.prev with
    | None -> invalid_arg "Evaluator.values: no deployment evaluated yet"
    | Some (_, vals) -> Array.copy vals

  let stats t = t.st
end

module Replay = struct
  (* Incremental evaluation along a *topology* trajectory: the
     deployment and the pair set stay put while the graph takes
     {!Topology.Graph.Delta} steps.  The pairs are grouped
     destination-major into the same ≤63-lane words as {!batched_map};
     each word retains the frozen group state of its last solve
     ({!Routing.Incremental.Topo.word_state}), and a step re-solves only
     the words the two-stage topology cone cannot prove untouched —
     stage 1 the overlay reachability cone, stage 2 the per-word
     influence test against the frozen state.  Carried words keep their
     bounds bit-for-bit (a clean verdict is a bit-identity guarantee,
     which the [topology] check pass enforces against scratch solves).

     Execution is sequential by design: the per-domain batch workspace
     is reused word to word (the frozen state is copied out before the
     next checkout), and replay steps are usually dominated by the few
     dirty words, not by fan-out. *)

  type stats = {
    steps : int;  (** delta steps taken *)
    words_solved : int;
    lanes_solved : int;  (** engine evals: one lane = one (m, d) solve *)
    lanes_carried : int;
  }

  type word = {
    w_dst : int;
    w_attackers : int array;
    w_pos : int array; (* indices into the pair array, one per lane *)
    mutable w_state : Routing.Incremental.Topo.word_state option;
  }

  type t = {
    r_policy : Routing.Policy.t;
    r_dep : Deployment.t;
    r_pairs : pair array;
    r_words : word array;
    mutable r_g : Topology.Graph.t;
    mutable r_vals : bounds array option;
    mutable r_st : stats;
  }

  let create g policy dep pairs =
    if Deployment.n dep <> Topology.Graph.n g then
      invalid_arg "Replay.create: deployment size disagrees with the graph";
    let pairs = Array.copy pairs in
    let words =
      Array.map
        (fun (dst, attackers, pos) ->
          { w_dst = dst; w_attackers = attackers; w_pos = pos; w_state = None })
        (batch_plan pairs)
    in
    {
      r_policy = policy;
      r_dep = dep;
      r_pairs = pairs;
      r_words = words;
      r_g = g;
      r_vals = None;
      r_st = { steps = 0; words_solved = 0; lanes_solved = 0; lanes_carried = 0 };
    }

  (* One batched solve of a word against the current graph: fold the
     per-lane bounds off the groups (same fold as [batch_item_bounds])
     and freeze the group state before anything else touches the shared
     workspace. *)
  let solve_word t vals w =
    let n = Topology.Graph.n t.r_g in
    let b =
      Routing.Batch.compute
        ~ws:(Routing.Batch.Workspace.local ())
        t.r_g t.r_policy t.r_dep ~dst:w.w_dst ~attackers:w.w_attackers
    in
    let lanes = Array.length w.w_attackers in
    let lb = Array.make lanes 0 and ub = Array.make lanes 0 in
    (* Same per-group closure hoist as [batch_item_bounds]. *)
    let tick_ub l = ub.(l) <- ub.(l) + 1 in
    let tick_lb l = lb.(l) <- lb.(l) + 1 in
    Routing.Batch.iter_fixed b (fun ~v:_ ~mask ~word ~parent:_ ->
        let open Routing.Engine.Packed in
        if cls_code_of word <> 3 && to_d_of word then begin
          Prelude.Bitset.iter_word tick_ub mask;
          if not (to_m_of word) then Prelude.Bitset.iter_word tick_lb mask
        end);
    w.w_state <- Some (Routing.Incremental.Topo.snapshot ~n b);
    let sources = n - 2 in
    Array.iteri
      (fun l j ->
        vals.(j) <-
          {
            lb = Prelude.Stats.fraction lb.(l) sources;
            ub = Prelude.Stats.fraction ub.(l) sources;
          })
      w.w_pos

  let mean pairs vals =
    let total = Array.length pairs in
    if total = 0 then { lb = 0.; ub = 0. }
    else begin
      let lb = ref 0. and ub = ref 0. in
      Array.iter
        (fun b ->
          lb := !lb +. b.lb;
          ub := !ub +. b.ub)
        vals;
      { lb = !lb /. float_of_int total; ub = !ub /. float_of_int total }
    end

  let eval t =
    let vals =
      match t.r_vals with
      | Some v -> v
      | None -> Array.make (Array.length t.r_pairs) { lb = 0.; ub = 0. }
    in
    let lanes = ref 0 in
    Array.iter
      (fun w ->
        solve_word t vals w;
        lanes := !lanes + Array.length w.w_attackers)
      t.r_words;
    t.r_vals <- Some vals;
    t.r_st <-
      {
        t.r_st with
        words_solved = t.r_st.words_solved + Array.length t.r_words;
        lanes_solved = t.r_st.lanes_solved + !lanes;
      };
    mean t.r_pairs vals

  let step t delta =
    let vals =
      match t.r_vals with
      | Some v -> v
      | None -> invalid_arg "Replay.step: eval the starting graph first"
    in
    let old_g = t.r_g in
    let cone = Routing.Incremental.Topo.cone old_g delta in
    (* [apply] validates the delta; from here on a clean word verdict is
       a bit-identity guarantee against a scratch solve on [new_g]. *)
    let new_g = Topology.Graph.Delta.apply old_g delta in
    t.r_g <- new_g;
    let solved = ref 0 and lanes_solved = ref 0 and lanes_carried = ref 0 in
    Array.iter
      (fun w ->
        let coarse =
          Routing.Incremental.Topo.cone_dirty_dst cone w.w_dst
          || Array.exists
               (fun m -> Routing.Incremental.Topo.cone_dirty_dst cone m)
               w.w_attackers
        in
        let dirty =
          coarse
          &&
          match w.w_state with
          | None -> true
          | Some st ->
              Routing.Incremental.Topo.influenced st t.r_dep t.r_policy
                ~old_graph:old_g ~delta
        in
        if dirty then begin
          solve_word t vals w;
          incr solved;
          lanes_solved := !lanes_solved + Array.length w.w_attackers
        end
        else lanes_carried := !lanes_carried + Array.length w.w_attackers)
      t.r_words;
    t.r_st <-
      {
        steps = t.r_st.steps + 1;
        words_solved = t.r_st.words_solved + !solved;
        lanes_solved = t.r_st.lanes_solved + !lanes_solved;
        lanes_carried = t.r_st.lanes_carried + !lanes_carried;
      };
    mean t.r_pairs vals

  let values t =
    match t.r_vals with
    | None -> invalid_arg "Replay.values: no graph evaluated yet"
    | Some vals -> Array.copy vals

  let graph t = t.r_g
  let stats t = t.r_st
end
