type downgrade = {
  secure_normal : int;
  downgraded : int;
  secure_after : int;
  sources : int;
}

let downgrade_zero =
  { secure_normal = 0; downgraded = 0; secure_after = 0; sources = 0 }

let downgrade_add a b =
  {
    secure_normal = a.secure_normal + b.secure_normal;
    downgraded = a.downgraded + b.downgraded;
    secure_after = a.secure_after + b.secure_after;
    sources = a.sources + b.sources;
  }

(* The [int] annotation pins the comparisons to the immediate-int
   primitives; unannotated this generalizes to ['a] and every call
   dispatches through the polymorphic runtime. *)
let is_source ~attacker ~dst (v : int) = v <> attacker && v <> dst

let downgrades g policy dep ~attacker ~dst =
  let normal = Routing.Engine.compute g policy dep ~dst ~attacker:None in
  let attack =
    Routing.Engine.compute g policy dep ~dst ~attacker:(Some attacker)
  in
  (* Sources whose normal route runs through the attacker lose it no
     matter what; Theorem 3.1 (and its sec-1st guarantee) exempts them,
     so they are not counted as protocol downgrades. *)
  let through_attacker v =
    Routing.Outcome.reached normal v
    && List.mem attacker (Routing.Outcome.path normal v)
  in
  let acc = ref downgrade_zero in
  for v = 0 to Topology.Graph.n g - 1 do
    if is_source ~attacker ~dst v then begin
      let a = !acc in
      let secure_n =
        Routing.Outcome.secure normal v && not (through_attacker v)
      in
      let secure_a = Routing.Outcome.secure attack v in
      acc :=
        {
          sources = a.sources + 1;
          secure_normal = (a.secure_normal + if secure_n then 1 else 0);
          downgraded = (a.downgraded + if secure_n && not secure_a then 1 else 0);
          secure_after = (a.secure_after + if secure_n && secure_a then 1 else 0);
        }
    end
  done;
  !acc

type root_cause = {
  sources : int;
  rc_secure_normal : int;
  rc_downgraded : int;
  rc_wasted : int;
  rc_protecting : int;
  rc_benefit : int;
  rc_damage : int;
  rc_happy_base : int;
  rc_happy_dep : int;
}

let root_cause_zero =
  {
    sources = 0;
    rc_secure_normal = 0;
    rc_downgraded = 0;
    rc_wasted = 0;
    rc_protecting = 0;
    rc_benefit = 0;
    rc_damage = 0;
    rc_happy_base = 0;
    rc_happy_dep = 0;
  }

let root_cause_add a b =
  {
    sources = a.sources + b.sources;
    rc_secure_normal = a.rc_secure_normal + b.rc_secure_normal;
    rc_downgraded = a.rc_downgraded + b.rc_downgraded;
    rc_wasted = a.rc_wasted + b.rc_wasted;
    rc_protecting = a.rc_protecting + b.rc_protecting;
    rc_benefit = a.rc_benefit + b.rc_benefit;
    rc_damage = a.rc_damage + b.rc_damage;
    rc_happy_base = a.rc_happy_base + b.rc_happy_base;
    rc_happy_dep = a.rc_happy_dep + b.rc_happy_dep;
  }

let root_cause g policy dep ~attacker ~dst =
  let n = Topology.Graph.n g in
  let normal = Routing.Engine.compute g policy dep ~dst ~attacker:None in
  let attack =
    Routing.Engine.compute g policy dep ~dst ~attacker:(Some attacker)
  in
  let base =
    Routing.Engine.compute g policy (Deployment.empty n) ~dst
      ~attacker:(Some attacker)
  in
  let acc = ref root_cause_zero in
  for v = 0 to n - 1 do
    if is_source ~attacker ~dst v then begin
      let a = !acc in
      let secure_n = Routing.Outcome.secure normal v in
      let secure_a = Routing.Outcome.secure attack v in
      let happy_base = Routing.Outcome.happy_lb base v in
      let unhappy_base = not happy_base in
      let happy_dep = Routing.Outcome.happy_lb attack v in
      let unhappy_dep = not happy_dep in
      let insecure = not (Deployment.is_full dep v) in
      let b x = if x then 1 else 0 in
      acc :=
        {
          sources = a.sources + 1;
          rc_secure_normal = a.rc_secure_normal + b secure_n;
          rc_downgraded = a.rc_downgraded + b (secure_n && not secure_a);
          rc_wasted = a.rc_wasted + b (secure_n && secure_a && happy_base);
          rc_protecting =
            a.rc_protecting + b (secure_n && secure_a && not happy_base);
          rc_benefit = a.rc_benefit + b (insecure && unhappy_base && happy_dep);
          rc_damage = a.rc_damage + b (insecure && happy_base && unhappy_dep);
          rc_happy_base = a.rc_happy_base + b happy_base;
          rc_happy_dep = a.rc_happy_dep + b happy_dep;
        }
    end
  done;
  !acc

type collateral = { benefit : int; damage : int; insecure_sources : int }

let collateral g policy ~baseline ~deployment ~attacker ~dst =
  if not (Deployment.subset baseline deployment) then
    invalid_arg "Phenomena.collateral: baseline not a subset of deployment";
  let small =
    Routing.Engine.compute g policy baseline ~dst ~attacker:(Some attacker)
  in
  let large =
    Routing.Engine.compute g policy deployment ~dst ~attacker:(Some attacker)
  in
  let acc = ref { benefit = 0; damage = 0; insecure_sources = 0 } in
  for v = 0 to Topology.Graph.n g - 1 do
    if is_source ~attacker ~dst v && not (Deployment.is_full deployment v) then begin
      let a = !acc in
      let happy_small = Routing.Outcome.happy_lb small v in
      let unhappy_small = not happy_small in
      let happy_large = Routing.Outcome.happy_lb large v in
      let unhappy_large = not happy_large in
      acc :=
        {
          insecure_sources = a.insecure_sources + 1;
          benefit = (a.benefit + if unhappy_small && happy_large then 1 else 0);
          damage = (a.damage + if happy_small && unhappy_large then 1 else 0);
        }
    end
  done;
  !acc
