(* Destination-major batched stable-state kernel.

   For a fixed destination d the legitimate routing tree is the same for
   every attacker; only the bogus one-hop "m d" announcement differs.
   This kernel runs {!Engine}'s label-setting computation once per
   destination for up to {!max_lanes} attackers at a time: attacker l is
   "lane" l, a bit in a native-int word (63 usable bits — an OCaml
   immediate int, matching {!Prelude.Bitset.word_bits}).

   Per-lane candidate state would cost 63 rank compares per edge and
   erase the sharing.  Instead each AS holds a small set of {e groups}
   [(mask, word, parent)]: [mask] is the set of lanes in the group,
   [word] is exactly the scalar kernel's packed candidate
   ({!Engine.Packed}), [parent] the shared representative next hop.
   Group masks are pairwise disjoint and every lane sits in at most one
   group, so an AS has at most 63 of them — and far from the attackers'
   influence the whole word stays in one monolithic group, which is
   where the batching wins: one CSR row scan, one rank compare and one
   queue push serve all 63 attackers at once.

   Every per-group operation is literally the scalar operation applied
   to a lane set:

   - relax: lanes whose group has a worse rank move to a freshly
     appended winner group; equal ranks merge with the scalar tiebreak
     (Bounds: or the endpoint flags, keep the minimum parent; LNH:
     replace when the offered parent is strictly smaller) — splitting
     the group when only part of it ties; better ranks ignore the offer.
   - fix: popping rank r freezes every live rank-r group of the AS at
     once and expands the union of their masks per endpoint-flag class
     (at most three CSR scans per AS per rank level, instead of one per
     attacker).

   Bit-identity with the scalar kernel rests on two properties of the
   rank encoding, both property-tested elsewhere: ranks are injective on
   (class, length, security), so all groups popped at one rank share
   every decoded field; and ranks are strictly monotone along route
   extensions, so all rank-r offers exist before the first rank-r pop
   (the queue is a monotone bucket queue) and equal-rank merge order is
   irrelevant because both tiebreaks are order-independent. *)

module Packed = Engine.Packed

let max_lanes = Prelude.Bitset.word_bits

module Workspace = struct
  (* Same epoch-stamp discipline as {!Engine.Workspace}: per-AS state
     ([fixed] lane mask, group count) is live only when
     [stamp.(v) = epoch], so reuse costs O(1) plus one clear of the
     [touched] set (O(n / 63)).  The flat group arrays hold
     [max_lanes] slots per AS ([gmask]/[gword]/[gparent] at
     [v * max_lanes + i]); the disjoint-mask invariant caps the live
     count at [max_lanes], so the slab never overflows. *)
  type t = {
    mutable cap : int;
    mutable epoch : int;
    mutable stamp : int array;
    mutable fixed : int array; (* per AS: mask of fixed lanes *)
    mutable gcnt : int array; (* per AS: live group count *)
    mutable gmask : int array; (* cap * max_lanes group slabs *)
    mutable gword : int array;
    mutable gparent : int array;
    mutable touched : Prelude.Bitset.t; (* ASes holding any group *)
    mutable queue : Prelude.Bucket_queue.t option;
  }

  let create cap =
    if cap < 0 then invalid_arg "Batch.Workspace.create: negative size";
    {
      cap;
      epoch = 0;
      stamp = Array.make cap (-1);
      fixed = Array.make cap 0;
      gcnt = Array.make cap 0;
      gmask = Array.make (cap * max_lanes) 0;
      gword = Array.make (cap * max_lanes) 0;
      gparent = Array.make (cap * max_lanes) (-1);
      touched = Prelude.Bitset.create cap;
      queue = None;
    }

  let key = Domain.DLS.new_key (fun () -> create 0)
  let local () = Domain.DLS.get key

  let grow t n =
    if t.cap < n then begin
      t.cap <- n;
      t.stamp <- Array.make n (-1);
      t.fixed <- Array.make n 0;
      t.gcnt <- Array.make n 0;
      t.gmask <- Array.make (n * max_lanes) 0;
      t.gword <- Array.make (n * max_lanes) 0;
      t.gparent <- Array.make (n * max_lanes) (-1);
      t.touched <- Prelude.Bitset.create n
    end

  let checkout t ~n ~max_rank =
    grow t n;
    t.epoch <- t.epoch + 1;
    Prelude.Bitset.clear t.touched;
    let queue =
      match t.queue with
      | Some q when Prelude.Bucket_queue.capacity q >= max_rank ->
          Prelude.Bucket_queue.clear q;
          q
      | Some _ | None ->
          let q = Prelude.Bucket_queue.create ~max_rank in
          t.queue <- Some q;
          q
    in
    queue
end

type t = {
  n : int;
  b_dst : int;
  b_lanes : int;
  b_attackers : int array; (* length = b_lanes; lane l's attacker *)
  ws : Workspace.t; (* owns the frozen group state *)
  epoch : int; (* result valid while ws.epoch = epoch *)
}

let dst t = t.b_dst
let lanes t = t.b_lanes

let live t =
  if t.ws.Workspace.epoch <> t.epoch then
    invalid_arg "Batch: result invalidated by a later compute on its workspace"

let attacker t ~lane =
  if lane < 0 || lane >= t.b_lanes then invalid_arg "Batch.attacker: bad lane";
  t.b_attackers.(lane)

let attackers t = Array.copy t.b_attackers

let all_mask ~lanes = if lanes >= max_lanes then -1 else (1 lsl lanes) - 1

let compute ?(tiebreak = Engine.Bounds) ?(attacker_claim = 1) ?ws g policy dep
    ~dst ~attackers =
  if attacker_claim < 0 then invalid_arg "Batch.compute: attacker_claim < 0";
  let n = Topology.Graph.n g in
  let nlanes = Array.length attackers in
  if nlanes < 1 || nlanes > max_lanes then
    invalid_arg
      (Printf.sprintf "Batch.compute: lane count %d outside 1..%d" nlanes
         max_lanes);
  let check v name =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Batch.compute: %s %d out of range" name v)
  in
  check dst "dst";
  Array.iter
    (fun m ->
      check m "attacker";
      if m = dst then invalid_arg "Batch.compute: attacker = dst")
    attackers;
  let max_len = n + 1 in
  if max_len > Packed.len_mask then
    invalid_arg "Batch.compute: graph too large for the packed kernel";
  let tbl = Policy.Rank_table.make policy ~max_len in
  let max_rank = tbl.Policy.Rank_table.max_rank in
  let ws = match ws with Some ws -> ws | None -> Workspace.create n in
  let queue = Workspace.checkout ws ~n ~max_rank in
  let epoch = ws.Workspace.epoch in
  let stamp = ws.Workspace.stamp in
  let fixed = ws.Workspace.fixed in
  let gcnt = ws.Workspace.gcnt in
  let gmask = ws.Workspace.gmask in
  let gword = ws.Workspace.gword in
  let gparent = ws.Workspace.gparent in
  let touched = ws.Workspace.touched in
  let csr = Topology.Graph.csr g in
  let adj = csr.Topology.Graph.Csr.adj in
  let xs = csr.Topology.Graph.Csr.xs in
  let mul = tbl.Policy.Rank_table.mul in
  let add = tbl.Policy.Rank_table.add in
  let kk = tbl.Policy.Rank_table.kk in
  (* First contact with an AS this solve: revalidate its lazily-reused
     per-AS state. *)
  let touch v =
    if Array.unsafe_get stamp v <> epoch then begin
      Array.unsafe_set stamp v epoch;
      Array.unsafe_set fixed v 0;
      Array.unsafe_set gcnt v 0;
      Prelude.Bitset.add touched v
    end
  in
  let append w ~mask ~word ~parent =
    let c = Array.unsafe_get gcnt w in
    assert (c < max_lanes);
    let gi = (w * max_lanes) + c in
    Array.unsafe_set gmask gi mask;
    Array.unsafe_set gword gi word;
    Array.unsafe_set gparent gi parent;
    Array.unsafe_set gcnt w (c + 1)
  in
  (* Offer (cls, len, secure, flags) via next hop [u] to the lanes in
     [mask] at AS [w] — the scalar relax applied group-wise.  Lanes
     whose group loses the rank compare collect in [winners] and join
     the fresh lanes (no group yet) in one newly appended group.
     The scratch refs are hoisted to solve scope: [relax] runs once per
     (neighbor, offer) — the hottest loop in the batched kernel — and a
     non-flambda build would otherwise box three fresh refs per call. *)
  let remaining = ref 0 and winners = ref 0 and i = ref 0 in
  let relax w ~mask ~cls_code ~len ~secure ~flags ~parent:u =
    if len <= max_len then begin
      touch w;
      let live = mask land lnot (Array.unsafe_get fixed w) in
      if live <> 0 then begin
        let sbit = if secure then 0 else 1 in
        let j = (2 * cls_code) + sbit + if len <= kk then 0 else 6 in
        let r = (Array.unsafe_get mul j * len) + Array.unsafe_get add j in
        let base = w * max_lanes in
        remaining := live;
        winners := 0;
        i := 0;
        while !i < Array.unsafe_get gcnt w && !remaining <> 0 do
          let gi = base + !i in
          let gm = Array.unsafe_get gmask gi in
          let inter = gm land !remaining in
          if inter = 0 then incr i
          else begin
            remaining := !remaining lxor inter;
            let gw = Array.unsafe_get gword gi in
            let cur = gw lsr Packed.rank_shift in
            if r < cur then begin
              (* These lanes take the new offer; shrink or delete the
                 losing group (delete swaps the last group in, so the
                 slot is re-examined). *)
              winners := !winners lor inter;
              if inter = gm then begin
                let c = Array.unsafe_get gcnt w - 1 in
                Array.unsafe_set gcnt w c;
                let last = base + c in
                Array.unsafe_set gmask gi (Array.unsafe_get gmask last);
                Array.unsafe_set gword gi (Array.unsafe_get gword last);
                Array.unsafe_set gparent gi (Array.unsafe_get gparent last)
              end
              else begin
                Array.unsafe_set gmask gi (gm lxor inter);
                incr i
              end
            end
            else begin
              (if r = cur then
                 match tiebreak with
                 | Engine.Bounds ->
                     (* Same rank implies same class/length/security;
                        accumulate endpoint flags, keep the lowest
                        representative hop — updating in place when the
                        whole group ties, splitting off the tying lanes
                        otherwise. *)
                     let gp = Array.unsafe_get gparent gi in
                     let nw = gw lor flags in
                     let np = if u < gp then u else gp in
                     if nw <> gw || np <> gp then
                       if inter = gm then begin
                         Array.unsafe_set gword gi nw;
                         Array.unsafe_set gparent gi np
                       end
                       else begin
                         Array.unsafe_set gmask gi (gm lxor inter);
                         append w ~mask:inter ~word:nw ~parent:np
                       end
                 | Engine.Lowest_next_hop ->
                     if u < Array.unsafe_get gparent gi then begin
                       let nw =
                         gw
                         land lnot (Packed.to_d_flag lor Packed.to_m_flag)
                         lor flags
                       in
                       if inter = gm then begin
                         Array.unsafe_set gword gi nw;
                         Array.unsafe_set gparent gi u
                       end
                       else begin
                         Array.unsafe_set gmask gi (gm lxor inter);
                         append w ~mask:inter ~word:nw ~parent:u
                       end
                     end);
              incr i
            end
          end
        done;
        let installs = !winners lor !remaining in
        if installs <> 0 then begin
          append w ~mask:installs
            ~word:(Packed.pack ~rank:r ~cls_code ~len ~secure ~flags)
            ~parent:u;
          Prelude.Bucket_queue.push queue ~rank:r w
        end
      end
    end
  in
  (* Identical export walk to the scalar kernel, for a lane set. *)
  let expand u ~mask ~cls_code ~len ~secure ~flags ~exports_everywhere =
    let signed = secure in
    let len1 = len + 1 in
    let base = 3 * u in
    let c0 = Bigarray.Array1.unsafe_get xs base in
    let p0 = Bigarray.Array1.unsafe_get xs (base + 1) in
    let r0 = Bigarray.Array1.unsafe_get xs (base + 2) in
    let rend = Bigarray.Array1.unsafe_get xs (base + 3) in
    for i = c0 to p0 - 1 do
      let w = Bigarray.Array1.unsafe_get adj i in
      relax w ~mask ~cls_code:2 ~len:len1
        ~secure:(signed && Deployment.is_full dep w)
        ~flags ~parent:u
    done;
    if exports_everywhere || cls_code = 0 then begin
      for i = p0 to r0 - 1 do
        let w = Bigarray.Array1.unsafe_get adj i in
        relax w ~mask ~cls_code:1 ~len:len1
          ~secure:(signed && Deployment.is_full dep w)
          ~flags ~parent:u
      done;
      for i = r0 to rend - 1 do
        let w = Bigarray.Array1.unsafe_get adj i in
        relax w ~mask ~cls_code:0 ~len:len1
          ~secure:(signed && Deployment.is_full dep w)
          ~flags ~parent:u
      done
    end
  in
  (* Roots: the destination is fixed for every lane; each attacker only
     for its own lane (in the other lanes it is an ordinary AS).  Root
     groups carry cls 3 in the word, like the scalar Outcome. *)
  let every = all_mask ~lanes:nlanes in
  let signs = Deployment.signs_origin dep dst in
  touch dst;
  fixed.(dst) <- every;
  append dst ~mask:every
    ~word:
      (Packed.pack ~rank:0 ~cls_code:3 ~len:0 ~secure:signs
         ~flags:Packed.to_d_flag)
    ~parent:(-1);
  Array.iteri
    (fun l m ->
      touch m;
      fixed.(m) <- fixed.(m) lor (1 lsl l);
      append m ~mask:(1 lsl l)
        ~word:
          (Packed.pack ~rank:0 ~cls_code:3 ~len:attacker_claim ~secure:false
             ~flags:Packed.to_m_flag)
        ~parent:dst)
    attackers;
  expand dst ~mask:every ~cls_code:(-1) ~len:0 ~secure:signs
    ~flags:Packed.to_d_flag ~exports_everywhere:true;
  Array.iteri
    (fun l m ->
      expand m ~mask:(1 lsl l) ~cls_code:(-1) ~len:attacker_claim
        ~secure:false ~flags:Packed.to_m_flag ~exports_everywhere:true)
    attackers;
  (* Drain: popping rank r freezes every live rank-r group of the AS at
     once.  Rank injectivity means they all decode to the same
     (cls, len, secure), so expansion needs one CSR walk per distinct
     endpoint-flag value (to_m / to_d / both) — the masks are unioned
     per flag class first. *)
  (* Scratch refs hoisted like [relax]'s; the [pop_exn]/[last_rank] pair
     avoids boxing an option per settled rank. *)
  let em1 = ref 0 and em2 = ref 0 and em3 = ref 0 in
  let shared = ref 0 in
  let rec drain () =
    if not (Prelude.Bucket_queue.is_empty queue) then begin
      let v = Prelude.Bucket_queue.pop_exn queue in
      let r = Prelude.Bucket_queue.last_rank queue in
      let fx = Array.unsafe_get fixed v in
      let base = v * max_lanes in
      em1 := 0;
      em2 := 0;
      em3 := 0;
      shared := 0;
      for i = 0 to Array.unsafe_get gcnt v - 1 do
        let gm = Array.unsafe_get gmask (base + i) in
        if gm land fx = 0 then begin
          let gw = Array.unsafe_get gword (base + i) in
          if gw lsr Packed.rank_shift = r then begin
            shared := gw;
            match gw land (Packed.to_d_flag lor Packed.to_m_flag) with
            | 1 -> em1 := !em1 lor gm
            | 2 -> em2 := !em2 lor gm
            | _ -> em3 := !em3 lor gm
          end
        end
      done;
      let em_all = !em1 lor !em2 lor !em3 in
      if em_all <> 0 then begin
        Array.unsafe_set fixed v (fx lor em_all);
        let gw = !shared in
        let cls_code = Packed.cls_code_of gw in
        let len = Packed.len_of gw in
        let secure = Packed.secure_of gw in
        let m1 = !em1 and m2 = !em2 and m3 = !em3 in
        if m1 <> 0 then
          expand v ~mask:m1 ~cls_code ~len ~secure ~flags:1
            ~exports_everywhere:false;
        if m2 <> 0 then
          expand v ~mask:m2 ~cls_code ~len ~secure ~flags:2
            ~exports_everywhere:false;
        if m3 <> 0 then
          expand v ~mask:m3 ~cls_code ~len ~secure ~flags:3
            ~exports_everywhere:false
      end;
      drain ()
    end
  in
  drain ();
  {
    n;
    b_dst = dst;
    b_lanes = nlanes;
    b_attackers = Array.copy attackers;
    ws;
    epoch;
  }

let iter_fixed t f =
  live t;
  let ws = t.ws in
  let gcnt = ws.Workspace.gcnt in
  let gmask = ws.Workspace.gmask in
  let gword = ws.Workspace.gword in
  let gparent = ws.Workspace.gparent in
  Prelude.Bitset.iter_set
    (fun v ->
      let base = v * max_lanes in
      for i = 0 to gcnt.(v) - 1 do
        f ~v ~mask:gmask.(base + i) ~word:gword.(base + i)
          ~parent:gparent.(base + i)
      done)
    ws.Workspace.touched

let decode ?into t ~lane =
  live t;
  if lane < 0 || lane >= t.b_lanes then invalid_arg "Batch.decode: bad lane";
  let attacker = Some t.b_attackers.(lane) in
  let o =
    match into with
    | Some o -> Outcome.reset o ~n:t.n ~dst:t.b_dst ~attacker
    | None -> Outcome.create ~n:t.n ~dst:t.b_dst ~attacker
  in
  let bit = 1 lsl lane in
  iter_fixed t (fun ~v ~mask ~word ~parent ->
      if mask land bit <> 0 then
        if Packed.cls_code_of word = 3 then
          Outcome.fix_root o v ~len:(Packed.len_of word)
            ~secure:(Packed.secure_of word) ~to_d:(Packed.to_d_of word)
            ~to_m:(Packed.to_m_of word) ~parent
        else
          Outcome.fix_code o v ~cls_code:(Packed.cls_code_of word)
            ~len:(Packed.len_of word) ~secure:(Packed.secure_of word)
            ~to_d:(Packed.to_d_of word) ~to_m:(Packed.to_m_of word) ~parent);
  o

let group_of t ~v ~lane =
  live t;
  if lane < 0 || lane >= t.b_lanes then invalid_arg "Batch.group_of: bad lane";
  if v < 0 || v >= t.n then invalid_arg "Batch.group_of: AS out of range";
  let ws = t.ws in
  if ws.Workspace.stamp.(v) <> t.epoch then None
  else begin
    let bit = 1 lsl lane in
    let base = v * max_lanes in
    let res = ref None in
    for i = 0 to ws.Workspace.gcnt.(v) - 1 do
      if ws.Workspace.gmask.(base + i) land bit <> 0 then
        res :=
          Some
            ( ws.Workspace.gmask.(base + i),
              ws.Workspace.gword.(base + i),
              ws.Workspace.gparent.(base + i) )
    done;
    !res
  end
