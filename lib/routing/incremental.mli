(** Conservative dirty cones for incremental rollout evaluation.

    Along a deployment rollout S -> S' (Section 5 of the paper), most
    (attacker, destination) pairs keep a bit-identical stable state: the
    engine consults the deployment only through [signs_origin] at the
    destination and [is_full] where {e signed} offers arrive, and signed
    offers travel only inside the Full-restricted perceivable closure of
    the destination ({!Reach.compute} with [~only]).  [compute] exploits
    this to classify every requested destination:

    - {b clean} — no pair with this destination can change: its signing
      status did not change and either it never signs or no changed-Full
      AS lies in its secure-perceivable cone under S or S';
    - {b dirty} — the destination's signing status changed, or some
      changed-Full "witness" sits in the cone.  {!dirty_pair} further
      exempts the pair whose attacker is the {e only} witness (a root
      never validates or re-signs, so its own Full bit is never read).

    A clean verdict is sound (bit-identical outcome guaranteed, for both
    tiebreak modes and every policy model); a dirty verdict is merely
    conservative.  Sizes must match; the deployments need {e not} be
    ordered — non-monotone deltas fall back to testing both cones. *)

type t

val compute :
  Topology.Graph.t ->
  old_dep:Deployment.t ->
  new_dep:Deployment.t ->
  dsts:int array ->
  t
(** Classify the given destinations for the delta [old_dep -> new_dep].
    Costs one Full-restricted {!Reach} closure per candidate destination
    (two for non-monotone deltas), O(edges) each — far below one engine
    run per attacker.  Raises [Invalid_argument] on size mismatches or
    an out-of-range destination. *)

val monotone : t -> bool
(** The delta was pointwise non-decreasing ([Deployment.subset]); the
    precondition for Theorem 6.1-based skipping in the metric layer. *)

val changed_full : t -> int array
(** ASes whose [Full] status differs between the two deployments. *)

val changed_signs : t -> int array
(** ASes whose origin-signing status ([Off] vs not) differs. *)

val dirty_dst : t -> int -> bool
(** Whether any pair with this destination may have changed.  A
    destination outside the [dsts] passed to {!compute} is reported
    dirty (conservative). *)

val dirty_pair : t -> attacker:int -> dst:int -> bool
(** Pair-level refinement of {!dirty_dst}: additionally clean when the
    attacker is the only witness for this destination. *)

val counts : t -> int * int
(** [(clean, dirty)] destination counts over the requested set. *)
