(** Conservative dirty cones for incremental rollout evaluation.

    Along a deployment rollout S -> S' (Section 5 of the paper), most
    (attacker, destination) pairs keep a bit-identical stable state: the
    engine consults the deployment only through [signs_origin] at the
    destination and [is_full] where {e signed} offers arrive, and signed
    offers travel only inside the Full-restricted perceivable closure of
    the destination ({!Reach.compute} with [~only]).  [compute] exploits
    this to classify every requested destination:

    - {b clean} — no pair with this destination can change: its signing
      status did not change and either it never signs or no changed-Full
      AS lies in its secure-perceivable cone under S or S';
    - {b dirty} — the destination's signing status changed, or some
      changed-Full "witness" sits in the cone.  {!dirty_pair} further
      exempts the pair whose attacker is the {e only} witness (a root
      never validates or re-signs, so its own Full bit is never read).

    A clean verdict is sound (bit-identical outcome guaranteed, for both
    tiebreak modes and every policy model); a dirty verdict is merely
    conservative.  Sizes must match; the deployments need {e not} be
    ordered — non-monotone deltas fall back to testing both cones. *)

type t

val compute :
  Topology.Graph.t ->
  old_dep:Deployment.t ->
  new_dep:Deployment.t ->
  dsts:int array ->
  t
(** Classify the given destinations for the delta [old_dep -> new_dep].
    Costs one Full-restricted {!Reach} closure per candidate destination
    (two for non-monotone deltas), O(edges) each — far below one engine
    run per attacker.  Raises [Invalid_argument] on size mismatches or
    an out-of-range destination. *)

val monotone : t -> bool
(** The delta was pointwise non-decreasing ([Deployment.subset]); the
    precondition for Theorem 6.1-based skipping in the metric layer. *)

val changed_full : t -> int array
(** ASes whose [Full] status differs between the two deployments. *)

val changed_signs : t -> int array
(** ASes whose origin-signing status ([Off] vs not) differs. *)

val dirty_dst : t -> int -> bool
(** Whether any pair with this destination may have changed.  A
    destination outside the [dsts] passed to {!compute} is reported
    dirty (conservative). *)

val dirty_pair : t -> attacker:int -> dst:int -> bool
(** Pair-level refinement of {!dirty_dst}: additionally clean when the
    attacker is the only witness for this destination. *)

val counts : t -> int * int
(** [(clean, dirty)] destination counts over the requested set. *)

(** Dirty cones for {e topology} deltas (link add / remove / flip),
    two-stage.  Stage 1 ({!Topo.cone}) bounds which roots any changed
    pair can influence via perceivable-reachability closures, the
    post-delta side computed over a {!Topology.Graph.overlay} so the
    edited graph is never materialized; on Internet-like graphs that
    cone is close to everything, so stage 2 ({!Topo.influenced})
    re-offers every changed edge, in both directions, against the frozen
    batched stable state of one destination word and reports clean only
    when every offer is inadmissible, over the length bound, or
    {e strictly} loses the rank compare at every lane it overlaps —
    exactly the condition under which the label-setting fixed point
    (flags and parents included) provably cannot move.  Ties are dirty
    by design; the deliberately rejected shortcuts are documented in
    DESIGN.md §15.  A clean verdict is sound (bit-identical outcome,
    both tiebreaks, every model); dirty is conservative, and the
    delta-vs-scratch identity gate of [sbgp check --topology] enforces
    soundness end to end. *)
module Topo : sig
  type cone

  val cone : Topology.Graph.t -> Topology.Graph.Delta.t -> cone
  (** Affected-root set of the delta against this (pre-delta) graph:
      two {!Reach} closures per delta endpoint, O(edges) each. *)

  val cone_dirty_dst : cone -> int -> bool
  val cone_dirty_pair : cone -> attacker:int -> dst:int -> bool

  val cone_card : cone -> int
  (** Size of the affected set (diagnostics: how blunt stage 1 was). *)

  type word_state
  (** Frozen stable state of one destination word: per AS, its fixed
      (lane mask, packed word) groups.  About three ints per reached
      (AS, group) — retained per word by a replay evaluator. *)

  val snapshot : n:int -> Batch.t -> word_state
  (** Freeze a completed batch solve ([n] is the graph size).  Must be
      called while the result is live (before its workspace's next
      checkout). *)

  val dst : word_state -> int
  val attackers : word_state -> int array

  val influenced :
    word_state ->
    Deployment.t ->
    Policy.t ->
    old_graph:Topology.Graph.t ->
    delta:Topology.Graph.Delta.t ->
    bool
  (** Whether the delta can move this word's stable state.  [old_graph]
      and [dep] must be the graph and deployment the state was computed
      against; the delta is assumed valid for [old_graph] (callers
      apply it anyway, which validates).  [false] guarantees the
      post-delta solve is bit-identical. *)
end
