(** Literal transcription of the multi-stage BFS algorithms of Appendix B
    (Fix Routes with the FSCR / FCR / FSPeeR / FPeeR / FSPrvR / FPrvR
    subroutines), for the [Policy.Standard] local-preference model.

    Subroutine order per model (Appendix B.2-B.4):
    - security 3rd: FCR, FPeeR, FPrvR
    - security 2nd: FSCR, FCR, FPeeR, FSPrvR, FPrvR
    - security 1st: FSCR, FSPeeR, FSPrvR, FCR, FPeeR, FPrvR

    This implementation is deliberately simple and O(V^2 * deg): it rescans
    for the next AS to fix at every iteration, exactly as the paper states
    the algorithm.  It exists as an executable specification; the
    production {!Engine} is property-tested to agree with it. *)

val compute :
  Topology.Graph.t ->
  Policy.t ->
  Deployment.t ->
  dst:int ->
  attacker:int option ->
  Outcome.t
(** Bounds-mode semantics only (the BPR set's endpoints are accumulated
    into [to_d]/[to_m]).  Raises [Invalid_argument] if the policy's LP
    model is not [Standard], or on invalid ids. *)
