(** Routing policy models (paper Sections 2.2.1-2.2.2 and Appendix K).

    A route available at an AS is abstracted as a triple
    [(route_class, length, secure)]:
    - [route_class] — whether the next hop is a customer, peer or provider;
    - [length] — AS-path length as perceived by the AS;
    - [secure] — the route was learned via S*BGP end to end.

    The decision process ranks such triples.  The local-preference step is
    either the [Standard] Gao-Rexford ranking (customer > peer > provider)
    or the [Lp_k k] variant of Appendix K, which prefers customer and peer
    routes interleaved by length up to length [k].  The security step
    [SecP] is inserted according to the model:

    - {b security 1st}: SecP > LP > SP > TB
    - {b security 2nd}: LP > SecP > SP > TB
    - {b security 3rd}: LP > SP > SecP > TB *)

type model = Security_first | Security_second | Security_third

type lp = Standard | Lp_k of int
(** [Lp_k k] requires [k >= 1].  [Lp_k] with [k >= max_len] behaves as the
    "k to infinity" variant discussed in Appendix K. *)

type t = private { model : model; lp : lp }

val make : ?lp:lp -> model -> t
(** Raises [Invalid_argument] if [lp] is [Lp_k k] with [k < 1]. *)

val all_models : model list
val model_name : model -> string
val lp_name : lp -> string
val name : t -> string

type route_class = Customer | Peer | Provider

val class_name : route_class -> string

val compare_routes :
  t -> route_class * int * bool -> route_class * int * bool -> int
(** Reference comparator: negative if the first route is {e preferred}.
    Implements the decision process literally (lexicographic on the steps
    in model order); [rank] below is order-isomorphic to it, which is
    checked by property tests. *)

val rank : t -> max_len:int -> route_class -> len:int -> secure:bool -> int
(** Dense integer encoding of preference: smaller is better.
    [max_len] bounds the path length (inclusive); [len] must lie in
    [1 .. max_len].  Two routes receive the same rank iff they agree on
    class, length and security — i.e. iff only the tiebreak step TB could
    distinguish them. *)

val max_rank : t -> max_len:int -> int
(** Exclusive upper bound on [rank] values. *)

type policy = t
(** Alias so {!Rank_table} can name the enclosing policy type. *)

module Rank_table : sig
  (** {!rank}, hoisted out of the inner loop.

      For a fixed (policy, [max_len]) the rank encoding is piecewise
      affine in the length, with a single breakpoint at the Lp_k
      refinement limit: every (class, security) combination is one
      [mul * len + add] map per piece.  {!make} derives the 12 entries by
      probing {!rank} itself, so table lookups are bit-identical to
      {!rank} by construction (also property-tested); the engine's hot
      path then needs two array reads, a multiply and an add per offered
      route — no variant dispatch, no bounds checks, no [invalid_arg]
      guard.

      Callers index with [j = 2 * cls_code + sbit (+ 6 when len > kk)]
      where [cls_code] is 0 customer / 1 peer / 2 provider and [sbit] is
      0 secure / 1 insecure; the fields are exposed read-only so the
      kernel can inline the lookup. *)

  type t = private {
    kk : int;  (** breakpoint: entries [0..5] cover [len <= kk] *)
    mul : int array;  (** 12 length multipliers *)
    add : int array;  (** 12 offsets *)
    max_len : int;  (** lengths valid in [1 .. max_len] *)
    max_rank : int;  (** = [max_rank policy ~max_len] *)
  }

  val make : policy -> max_len:int -> t
  (** Raises [Invalid_argument] when [max_len < 1]. *)

  val rank : t -> cls_code:int -> len:int -> sbit:int -> int
  (** Table lookup; equals
      [rank policy ~max_len cls ~len ~secure] for in-range lengths.
      No validation: out-of-range [len]/[cls_code]/[sbit] is undefined. *)
end
