(** Perceivable-route reachability closures (Definition B.1, Appendix E).

    A route is {e perceivable} at an AS if every hop complies with the
    export policy Ex.  Which ASes have a perceivable customer / peer /
    provider route to a given root is independent of route selection, so
    these closures characterize what any deployment could ever offer —
    the basis of the doomed / protectable / immune partition:

    - customer routes chain through customer-to-provider edges only;
    - a peer route exists where a peer has a perceivable customer route
      (or is the root);
    - provider routes close downward: a provider with any perceivable
      route offers a provider route to each customer.

    Legitimate routes never transit the attacker and attacked routes never
    transit the victim (Section 3.1), hence the [avoid] argument. *)

type t

val compute :
  Topology.Graph.t -> root:int -> ?avoid:int -> ?only:(int -> bool) -> unit -> t
(** Closure of perceivable routes to [root], skipping the AS [avoid]
    entirely.  The root belongs to none of the three sets.

    [only] restricts membership: an AS with [only v = false] joins no
    set and no route may transit it (the root itself is exempt).  With
    [only = Deployment.is_full dep] the closure is exactly the set of
    ASes that could hold a {e secure} perceivable route to the root —
    every hop validates and re-signs — which is what the incremental
    dirty-cone computation ({!Incremental}) uses. *)

val compute_view :
  Topology.Graph.view ->
  root:int ->
  ?avoid:int ->
  ?only:(int -> bool) ->
  unit ->
  t
(** Same closure over an adjacency {!Topology.Graph.view} — in
    particular a {!Topology.Graph.overlay}, so the topology-delta cone
    ({!Incremental.Topo}) can measure post-delta reachability without
    materializing the edited graph.  [compute g] is
    [compute_view (Topology.Graph.view g)]. *)

val customer : t -> int -> bool
(** Has a perceivable customer route to the root. *)

val peer : t -> int -> bool
val provider : t -> int -> bool

val any : t -> int -> bool
(** Has any perceivable route to the root. *)

val union_into : t -> into:Prelude.Bitset.t -> unit
(** Add every AS holding a perceivable route of any class (the root
    itself excluded) to [into].  Raises [Invalid_argument] when the
    universe sizes differ. *)

val best_class : t -> int -> Policy.route_class option
(** Most preferred class (customer > peer > provider) in which the AS has
    a perceivable route, [None] if unreachable. *)

val in_class : t -> Policy.route_class -> int -> bool
