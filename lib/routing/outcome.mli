(** Result of one stable-state computation for a destination (and an
    optional attacker), per Appendix B of the paper.

    Every AS that has any perceivable route is "fixed" with the abstraction
    of its best route(s): class, length, security, and where its best
    routes can lead.  When the tiebreak step TB is left unresolved
    ([Engine.Bounds] mode), an AS whose equally-best routes lead both to
    the destination and to the attacker has [to_d] and [to_m] both set;
    the metric treats it as unhappy in the lower bound and happy in the
    upper bound (Section 4.1). *)

type t

val dst : t -> int
val attacker : t -> int option
val n : t -> int

val reached : t -> int -> bool
(** The AS has some route (to the destination or the attacker). *)

val length : t -> int -> int
(** Path length of the chosen route(s); [-1] if unreached.  For routes
    through the attacker this is the {e perceived} length, counting the
    bogus "m d" edge. *)

val route_class : t -> int -> Policy.route_class
(** Raises [Invalid_argument] if the AS is unreached or is the
    destination/attacker. *)

val secure : t -> int -> bool
(** The AS's chosen route is a fully-signed secure route that the AS
    itself validated (always false for unreached, non-[Full] and attacked
    routes). *)

val to_d : t -> int -> bool
(** Some equally-best route leads to the legitimate destination. *)

val to_m : t -> int -> bool
(** Some equally-best route leads through the attacker. *)

val happy_lb : t -> int -> bool
(** Definitely happy: routes to the destination whatever TB does. *)

val happy_ub : t -> int -> bool
(** Possibly happy: some best route reaches the destination. *)

val next_hop : t -> int -> int
(** Representative next hop ([-1] for the destination or unreached ASes;
    the destination for the attacker, reflecting the bogus claimed edge).
    In [Engine.Lowest_next_hop] mode this is the unique chosen next hop;
    in [Engine.Bounds] mode it is the lowest-numbered next hop among the
    equally-best routes. *)

val path : t -> int -> int list
(** The (representative) chosen route from the given AS to its apparent
    origin, e.g. [[s; u; d]] or [[s; u; m; d]] for an attacked route
    (the trailing [d] after [m] is the bogus claimed hop).  Empty for
    unreached ASes; [[d]] for the destination itself. *)

(** {1 Construction — used by the engines} *)

val create : n:int -> dst:int -> attacker:int option -> t

val reset : t -> n:int -> dst:int -> attacker:int option -> t
(** Recycle the buffers of [t] for a new computation: every AS becomes
    unreached and the destination/attacker are re-pointed.  Returns [t]
    itself when its buffers are large enough, a fresh record otherwise.
    Used by {!Engine.Workspace} reuse — the previous outcome produced
    from the same workspace is invalidated. *)

val fix :
  t ->
  int ->
  cls:Policy.route_class ->
  len:int ->
  secure:bool ->
  to_d:bool ->
  to_m:bool ->
  parent:int ->
  unit

val fix_root :
  t ->
  int ->
  len:int ->
  secure:bool ->
  to_d:bool ->
  to_m:bool ->
  parent:int ->
  unit
(** Fix the destination or the attacker; their [route_class] is undefined
    (they have no neighbor route). *)

val is_fixed : t -> int -> bool

val fix_code :
  t ->
  int ->
  cls_code:int ->
  len:int ->
  secure:bool ->
  to_d:bool ->
  to_m:bool ->
  parent:int ->
  unit
(** {!fix} with the class already in code form (0 customer / 1 peer /
    2 provider) — the packed engine stores codes, not variants, so this
    skips a decode/re-encode round trip per fixed AS.  The code is not
    validated. *)

val lengths : t -> int array
(** The raw per-AS length array backing {!length} ([-1] = unreached);
    may be longer than {!n} after a {!reset}.  Exposed for the engine's
    inner loop, which tests fixedness with [unsafe_get] — owned by the
    outcome, never mutate or retain it elsewhere. *)
