(* The pre-CSR routing kernel, preserved verbatim as a differential
   baseline: seven parallel candidate arrays, per-class [Array.iter]
   adjacency closures and a [Policy.rank] call per offered edge.  The
   packed CSR engine ({!Engine}) must stay bit-identical to this module
   on every input — enforced by {!Check.Kernel}, test/test_kernel.ml and
   the kernel microbenchmark's identity gate.  Do not optimize this
   file; its slowness is the point of the before/after comparison. *)

type tiebreak = Engine.tiebreak = Bounds | Lowest_next_hop

(* Candidate bookkeeping for not-yet-fixed ASes.  Because the rank encodes
   (class, length, security) completely, all candidates of equal rank at an
   AS differ only in next hop and reachable endpoints; merging their
   to_d/to_m flags is exactly the BPR set of Appendix B. *)
type cand = {
  rank : int array;
  cls : int array; (* 0 customer / 1 peer / 2 provider *)
  len : int array;
  secure : Bytes.t;
  to_d : Bytes.t;
  to_m : Bytes.t;
  parent : int array;
}

let cand_create n =
  {
    rank = Array.make n max_int;
    cls = Array.make n (-1);
    len = Array.make n (-1);
    secure = Bytes.make n '\000';
    to_d = Bytes.make n '\000';
    to_m = Bytes.make n '\000';
    parent = Array.make n (-1);
  }

module Workspace = struct
  (* A candidate slot is live only when [stamp.(v) = epoch]; bumping the
     epoch invalidates every slot at once, so reuse costs O(1) instead of
     re-filling ~7 size-n arrays per (attacker, destination) pair.  The
     bucket queue and the outcome record are recycled in place (the queue
     is empty after a completed drain, the outcome is reset by filling,
     which is cheap relative to allocating + collecting it). *)
  type t = {
    mutable cap : int;
    mutable epoch : int;
    mutable stamp : int array; (* slot live iff stamp.(v) = epoch *)
    mutable cand : cand;
    mutable queue : Prelude.Bucket_queue.t option;
    mutable outcome : Outcome.t option;
  }

  let create cap =
    if cap < 0 then invalid_arg "Reference.Workspace.create: negative size";
    {
      cap;
      epoch = 0;
      stamp = Array.make cap (-1);
      cand = cand_create cap;
      queue = None;
      outcome = None;
    }

  let key = Domain.DLS.new_key (fun () -> create 0)
  let local () = Domain.DLS.get key

  let grow t n =
    if t.cap < n then begin
      t.cap <- n;
      t.stamp <- Array.make n (-1);
      t.cand <- cand_create n
    end

  (* Check out the buffers for one computation of size [n] with the given
     rank bound.  Invalidates the outcome of the previous computation
     that used this workspace. *)
  let checkout t ~n ~max_rank ~dst ~attacker =
    grow t n;
    t.epoch <- t.epoch + 1;
    let queue =
      match t.queue with
      | Some q when Prelude.Bucket_queue.capacity q >= max_rank ->
          Prelude.Bucket_queue.clear q;
          q
      | Some _ | None ->
          let q = Prelude.Bucket_queue.create ~max_rank in
          t.queue <- Some q;
          q
    in
    let outcome =
      match t.outcome with
      | Some o -> Outcome.reset o ~n ~dst ~attacker
      | None -> Outcome.create ~n ~dst ~attacker
    in
    t.outcome <- Some outcome;
    (t.cand, t.stamp, t.epoch, queue, outcome)
end

let cls_of_code = function
  | 0 -> Policy.Customer
  | 1 -> Policy.Peer
  | _ -> Policy.Provider

let compute ?(tiebreak = Bounds) ?(attacker_claim = 1) ?ws g policy dep ~dst
    ~attacker =
  if attacker_claim < 0 then
    invalid_arg "Reference.compute: attacker_claim < 0";
  let n = Topology.Graph.n g in
  let check v name =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Reference.compute: %s %d out of range" name v)
  in
  check dst "dst";
  (match attacker with
  | Some m ->
      check m "attacker";
      if m = dst then invalid_arg "Reference.compute: attacker = dst"
  | None -> ());
  let max_len = n + 1 in
  let max_rank = Policy.max_rank policy ~max_len in
  let cand, stamp, epoch, queue, outcome =
    match ws with
    | Some ws -> Workspace.checkout ws ~n ~max_rank ~dst ~attacker
    | None ->
        (* Fresh buffers: [cand_create]'s sentinel values are exactly the
           "no live candidate" state, so a zero stamp with epoch 0 is
           consistent. *)
        ( cand_create n,
          Array.make n 0,
          0,
          Prelude.Bucket_queue.create ~max_rank,
          Outcome.create ~n ~dst ~attacker )
  in
  let bool_get b v = Bytes.unsafe_get b v <> '\000' in
  let bool_set b v x = Bytes.unsafe_set b v (if x then '\001' else '\000') in
  (* Rank of the best live candidate at [w], max_int when none. *)
  let cand_rank w = if stamp.(w) = epoch then cand.rank.(w) else max_int in
  (* Offer the route abstraction (cls, len, secure, flags) to AS [w] via
     next hop [u]. *)
  let relax w ~cls_code ~len ~secure ~to_d ~to_m ~parent =
    if not (Outcome.is_fixed outcome w) && len <= max_len then begin
      let cls = cls_of_code cls_code in
      let r = Policy.rank policy ~max_len cls ~len ~secure in
      let cur = cand_rank w in
      if r < cur then begin
        stamp.(w) <- epoch;
        cand.rank.(w) <- r;
        cand.cls.(w) <- cls_code;
        cand.len.(w) <- len;
        bool_set cand.secure w secure;
        bool_set cand.to_d w to_d;
        bool_set cand.to_m w to_m;
        cand.parent.(w) <- parent;
        Prelude.Bucket_queue.push queue ~rank:r w
      end
      else if r = cur then begin
        match tiebreak with
        | Bounds ->
            (* Same rank implies same class/length/security; accumulate
               endpoints, keep the lowest-numbered representative hop. *)
            bool_set cand.to_d w (bool_get cand.to_d w || to_d);
            bool_set cand.to_m w (bool_get cand.to_m w || to_m);
            if parent < cand.parent.(w) then cand.parent.(w) <- parent
        | Lowest_next_hop ->
            if parent < cand.parent.(w) then begin
              cand.parent.(w) <- parent;
              bool_set cand.to_d w to_d;
              bool_set cand.to_m w to_m
            end
      end
    end
  in
  (* Propagate a fixed AS's route to its neighbors, respecting Ex. *)
  let expand u ~cls_code ~len ~secure ~to_d ~to_m ~exports_everywhere =
    let signed = secure in
    let offer w cls_code =
      let secure_w = signed && Deployment.is_full dep w in
      relax w ~cls_code ~len:(len + 1) ~secure:secure_w ~to_d ~to_m ~parent:u
    in
    (* Customers of u always learn u's route; u's route at them is a
       provider route. *)
    Array.iter (fun w -> offer w 2) (Topology.Graph.customers g u);
    if exports_everywhere || cls_code = 0 then begin
      Array.iter (fun w -> offer w 1) (Topology.Graph.peers g u);
      Array.iter (fun w -> offer w 0) (Topology.Graph.providers g u)
    end
  in
  (* Roots.  The destination's own announcement is signed when it deploys
     full or simplex S*BGP; the attacker's bogus announcement is plain
     BGP with the claimed path length (1 for the paper's "m d"). *)
  Outcome.fix_root outcome dst ~len:0
    ~secure:(Deployment.signs_origin dep dst)
    ~to_d:true ~to_m:false ~parent:(-1);
  (match attacker with
  | Some m ->
      Outcome.fix_root outcome m ~len:attacker_claim ~secure:false
        ~to_d:false ~to_m:true ~parent:dst
  | None -> ());
  expand dst ~cls_code:(-1)
    ~len:0
    ~secure:(Deployment.signs_origin dep dst)
    ~to_d:true ~to_m:false ~exports_everywhere:true;
  (match attacker with
  | Some m ->
      expand m ~cls_code:(-1) ~len:attacker_claim ~secure:false ~to_d:false
        ~to_m:true ~exports_everywhere:true
  | None -> ());
  let rec drain () =
    match Prelude.Bucket_queue.pop queue with
    | None -> ()
    | Some (rank, v) ->
        if not (Outcome.is_fixed outcome v) then begin
          assert (stamp.(v) = epoch && rank = cand.rank.(v));
          let cls_code = cand.cls.(v) in
          let len = cand.len.(v) in
          let secure = bool_get cand.secure v in
          let to_d = bool_get cand.to_d v in
          let to_m = bool_get cand.to_m v in
          Outcome.fix outcome v ~cls:(cls_of_code cls_code) ~len ~secure
            ~to_d ~to_m ~parent:cand.parent.(v);
          expand v ~cls_code ~len ~secure ~to_d ~to_m
            ~exports_everywhere:false
        end;
        drain ()
  in
  drain ();
  outcome
