(* Dirty-cone computation for cross-step rollout evaluation.

   The engine's stable state for a pair (attacker m, destination d)
   reads the deployment in exactly two places: [signs_origin dep d] for
   the root announcement, and [is_full dep w] when a *signed* offer
   reaches AS [w].  Signed offers travel only along perceivable routes
   to [d] whose every hop validates and re-signs — i.e. along chains
   inside the Full-restricted {!Reach} closure of [d].  So when a
   deployment changes S -> S', the outcome of (m, d) can only change if

   - [d]'s own origin-signing status changed, or
   - some AS whose Full status changed lies in the Full-restricted
     perceivable closure of [d] under S or under S' (a "witness").

   Witnesses equal to the attacker never matter: the attacker is fixed
   as a root and never validates, re-signs or re-exports a legitimate
   route, so its own Full bit is never consulted for its own pair.  The
   cone is conservative — a dirty verdict does not imply the outcome
   differs — but a clean verdict is sound, which the incremental check
   pass and the qcheck properties enforce end to end. *)

type status = Clean | All_dirty | Witnesses of int array

type t = {
  monotone : bool;
  changed_full : int array;
  changed_signs : int array;
  status : (int, status) Hashtbl.t; (* per requested destination *)
  n_clean : int;
  n_dirty : int;
      (* tallied during the deterministic pass over [dsts]; [counts]
         must not fold over the hash table, whose order is arbitrary *)
}

let changed_sets old_dep new_dep =
  let n = Deployment.n old_dep in
  let full = ref [] and signs = ref [] in
  for v = n - 1 downto 0 do
    if Bool.not (Bool.equal (Deployment.is_full old_dep v) (Deployment.is_full new_dep v))
    then full := v :: !full;
    if
      Bool.not
        (Bool.equal
           (Deployment.signs_origin old_dep v)
           (Deployment.signs_origin new_dep v))
    then signs := v :: !signs
  done;
  (Array.of_list !full, Array.of_list !signs)

let compute g ~old_dep ~new_dep ~dsts =
  let n = Topology.Graph.n g in
  if Deployment.n old_dep <> n || Deployment.n new_dep <> n then
    invalid_arg "Incremental.compute: deployment sizes disagree with the graph";
  let changed_full, changed_signs = changed_sets old_dep new_dep in
  let monotone = Deployment.subset old_dep new_dep in
  let signs_changed = Prelude.Bitset.create n in
  Array.iter (Prelude.Bitset.add signs_changed) changed_signs;
  let status = Hashtbl.create (Array.length dsts) in
  let n_clean = ref 0 and n_dirty = ref 0 in
  let no_full_change = Array.length changed_full = 0 in
  Array.iter
    (fun d ->
      if d < 0 || d >= n then
        invalid_arg "Incremental.compute: destination out of range";
      if not (Hashtbl.mem status d) then begin
        let st =
          if Prelude.Bitset.mem signs_changed d then All_dirty
          else if not (Deployment.signs_origin new_dep d) then
            (* Signing status is unchanged and off: no secure route ever
               exists toward d under either deployment. *)
            Clean
          else if no_full_change then Clean
          else begin
            (* d signs in both worlds: witnesses are the changed-Full
               ASes inside the secure-perceivable cone of d.  Under a
               monotone delta the old cone is contained in the new one,
               so one closure suffices. *)
            let reach_new =
              Reach.compute g ~root:d ~only:(Deployment.is_full new_dep) ()
            in
            let member =
              if monotone then fun w -> Reach.any reach_new w
              else begin
                let reach_old =
                  Reach.compute g ~root:d ~only:(Deployment.is_full old_dep) ()
                in
                fun w -> Reach.any reach_new w || Reach.any reach_old w
              end
            in
            let ws =
              Array.of_list
                (List.filter member (Array.to_list changed_full))
            in
            if Array.length ws = 0 then Clean else Witnesses ws
          end
        in
        (match st with
        | Clean -> incr n_clean
        | All_dirty | Witnesses _ -> incr n_dirty);
        Hashtbl.replace status d st
      end)
    dsts;
  {
    monotone;
    changed_full;
    changed_signs;
    status;
    n_clean = !n_clean;
    n_dirty = !n_dirty;
  }

let monotone t = t.monotone
let changed_full t = Array.copy t.changed_full
let changed_signs t = Array.copy t.changed_signs

let dirty_dst t d =
  match Hashtbl.find_opt t.status d with
  | None -> true (* not in the requested set: stay conservative *)
  | Some Clean -> false
  | Some (All_dirty | Witnesses _) -> true

let dirty_pair t ~attacker ~dst =
  match Hashtbl.find_opt t.status dst with
  | None -> true
  | Some Clean -> false
  | Some All_dirty -> true
  | Some (Witnesses ws) -> Array.exists (fun w -> w <> attacker) ws

let counts t = (t.n_clean, t.n_dirty)
