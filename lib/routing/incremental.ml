(* Dirty-cone computation for cross-step rollout evaluation.

   The engine's stable state for a pair (attacker m, destination d)
   reads the deployment in exactly two places: [signs_origin dep d] for
   the root announcement, and [is_full dep w] when a *signed* offer
   reaches AS [w].  Signed offers travel only along perceivable routes
   to [d] whose every hop validates and re-signs — i.e. along chains
   inside the Full-restricted {!Reach} closure of [d].  So when a
   deployment changes S -> S', the outcome of (m, d) can only change if

   - [d]'s own origin-signing status changed, or
   - some AS whose Full status changed lies in the Full-restricted
     perceivable closure of [d] under S or under S' (a "witness").

   Witnesses equal to the attacker never matter: the attacker is fixed
   as a root and never validates, re-signs or re-exports a legitimate
   route, so its own Full bit is never consulted for its own pair.  The
   cone is conservative — a dirty verdict does not imply the outcome
   differs — but a clean verdict is sound, which the incremental check
   pass and the qcheck properties enforce end to end. *)

type status = Clean | All_dirty | Witnesses of int array

type t = {
  monotone : bool;
  changed_full : int array;
  changed_signs : int array;
  status : (int, status) Hashtbl.t; (* per requested destination *)
  n_clean : int;
  n_dirty : int;
      (* tallied during the deterministic pass over [dsts]; [counts]
         must not fold over the hash table, whose order is arbitrary *)
}

let changed_sets old_dep new_dep =
  let n = Deployment.n old_dep in
  let full = ref [] and signs = ref [] in
  for v = n - 1 downto 0 do
    if Bool.not (Bool.equal (Deployment.is_full old_dep v) (Deployment.is_full new_dep v))
    then full := v :: !full;
    if
      Bool.not
        (Bool.equal
           (Deployment.signs_origin old_dep v)
           (Deployment.signs_origin new_dep v))
    then signs := v :: !signs
  done;
  (Array.of_list !full, Array.of_list !signs)

let compute g ~old_dep ~new_dep ~dsts =
  let n = Topology.Graph.n g in
  if Deployment.n old_dep <> n || Deployment.n new_dep <> n then
    invalid_arg "Incremental.compute: deployment sizes disagree with the graph";
  let changed_full, changed_signs = changed_sets old_dep new_dep in
  let monotone = Deployment.subset old_dep new_dep in
  let signs_changed = Prelude.Bitset.create n in
  Array.iter (Prelude.Bitset.add signs_changed) changed_signs;
  let status = Hashtbl.create (Array.length dsts) in
  let n_clean = ref 0 and n_dirty = ref 0 in
  let no_full_change = Array.length changed_full = 0 in
  Array.iter
    (fun d ->
      if d < 0 || d >= n then
        invalid_arg "Incremental.compute: destination out of range";
      if not (Hashtbl.mem status d) then begin
        let st =
          if Prelude.Bitset.mem signs_changed d then All_dirty
          else if not (Deployment.signs_origin new_dep d) then
            (* Signing status is unchanged and off: no secure route ever
               exists toward d under either deployment. *)
            Clean
          else if no_full_change then Clean
          else begin
            (* d signs in both worlds: witnesses are the changed-Full
               ASes inside the secure-perceivable cone of d.  Under a
               monotone delta the old cone is contained in the new one,
               so one closure suffices. *)
            let reach_new =
              Reach.compute g ~root:d ~only:(Deployment.is_full new_dep) ()
            in
            let member =
              if monotone then fun w -> Reach.any reach_new w
              else begin
                let reach_old =
                  Reach.compute g ~root:d ~only:(Deployment.is_full old_dep) ()
                in
                fun w -> Reach.any reach_new w || Reach.any reach_old w
              end
            in
            let ws =
              Array.of_list
                (List.filter member (Array.to_list changed_full))
            in
            if Array.length ws = 0 then Clean else Witnesses ws
          end
        in
        (match st with
        | Clean -> incr n_clean
        | All_dirty | Witnesses _ -> incr n_dirty);
        Hashtbl.replace status d st
      end)
    dsts;
  {
    monotone;
    changed_full;
    changed_signs;
    status;
    n_clean = !n_clean;
    n_dirty = !n_dirty;
  }

let monotone t = t.monotone
let changed_full t = Array.copy t.changed_full
let changed_signs t = Array.copy t.changed_signs

let dirty_dst t d =
  match Hashtbl.find_opt t.status d with
  | None -> true (* not in the requested set: stay conservative *)
  | Some Clean -> false
  | Some (All_dirty | Witnesses _) -> true

let dirty_pair t ~attacker ~dst =
  match Hashtbl.find_opt t.status dst with
  | None -> true
  | Some Clean -> false
  | Some All_dirty -> true
  | Some (Witnesses ws) -> Array.exists (fun w -> w <> attacker) ws

let counts t = (t.n_clean, t.n_dirty)

module Topo = struct
  (* Dirty cones for *topology* deltas (link add / remove / relationship
     flip), two-stage:

     Stage 1 (cone): a pair (m, d) can only change if some perceivable
     route toward d or toward m transits a changed pair.  A route
     transiting the changed pair {a, b} gives both endpoints a
     perceivable route to its root, and valley-free perceivable
     reachability is symmetric (a one-hop-peer/climb/descend path
     reverses into the same shape), so the root lies in the endpoint's
     closure.  The affected set is the union over endpoints e of
     {e} ∪ Reach_old(e) ∪ Reach_new(e), the new closure computed over
     the delta {!Topology.Graph.overlay} so the edited graph is never
     materialized.  On Internet-like graphs this set is close to
     everything (up-peer-down reaches almost everyone), hence:

     Stage 2 (influence): against the frozen batched stable state of one
     destination word, every changed edge is re-offered in both
     directions exactly as the kernel's expand/relax would.  The word is
     clean when every such offer is inadmissible under Ex, over the
     length bound, or *strictly* loses the rank compare against the
     state of every lane it overlaps — strictly-losing offers leave the
     label-setting fixed point (flags, parents, everything) untouched,
     removing strictly-losing offers likewise, and the fixed point is
     unique because rank is strictly monotone along extensions.  A tie
     is dirty (tie aggregation reads flags and parents); an offer into a
     lane with no state at the target is dirty (a new route appears).
     Distinct-pair deltas compose: each op is tested against the same
     frozen state, and a clean verdict for all ops means that state
     still satisfies every AS's fixed-point equation on the edited
     graph.

     Unsound directions, deliberately rejected (see DESIGN.md §15):
     re-checking only the *winning* lanes (ties aggregate flags from
     losers), skipping the reverse direction of a removed edge (the
     survivor's own route may ride the edge), and evaluating offers
     against an attacker-free tree (an attacker shortcut can lower ranks
     below the attacker-free ones). *)

  type cone = { affected : Prelude.Bitset.t; card : int }

  let cone g delta =
    let n = Topology.Graph.n g in
    let affected = Prelude.Bitset.create n in
    let old_view = Topology.Graph.view g in
    let new_view = Topology.Graph.overlay g delta in
    Array.iter
      (fun e ->
        Prelude.Bitset.add affected e;
        Reach.union_into (Reach.compute_view old_view ~root:e ()) ~into:affected;
        Reach.union_into (Reach.compute_view new_view ~root:e ()) ~into:affected)
      (Topology.Graph.Delta.endpoints delta);
    { affected; card = Prelude.Bitset.cardinal affected }

  let cone_dirty_dst c d = Prelude.Bitset.mem c.affected d

  let cone_dirty_pair c ~attacker ~dst =
    Prelude.Bitset.mem c.affected dst || Prelude.Bitset.mem c.affected attacker

  let cone_card c = c.card

  (* Frozen copy of one destination word's batched stable state: per AS,
     its fixed (mask, packed word) groups, flattened CSR-style.  At the
     fixed point every surviving group is fixed, so {!Batch.iter_fixed}
     is exactly this state; ~3 ints per reached (AS, group). *)
  type word_state = {
    st_dst : int;
    st_attackers : int array;
    st_off : int array; (* n + 1 offsets into st_mask / st_word *)
    st_mask : int array;
    st_word : int array;
  }

  let snapshot ~n b =
    let counts = Array.make (n + 1) 0 in
    Batch.iter_fixed b (fun ~v ~mask:_ ~word:_ ~parent:_ ->
        counts.(v + 1) <- counts.(v + 1) + 1);
    for v = 1 to n do
      counts.(v) <- counts.(v) + counts.(v - 1)
    done;
    let off = counts in
    let total = off.(n) in
    let mask = Array.make total 0 and word = Array.make total 0 in
    let cursor = Array.copy off in
    Batch.iter_fixed b (fun ~v ~mask:m ~word:w ~parent:_ ->
        let i = cursor.(v) in
        mask.(i) <- m;
        word.(i) <- w;
        cursor.(v) <- i + 1);
    {
      st_dst = Batch.dst b;
      st_attackers = Batch.attackers b;
      st_off = off;
      st_mask = mask;
      st_word = word;
    }

  let dst st = st.st_dst
  let attackers st = Array.copy st.st_attackers

  let influenced st dep policy ~old_graph ~(delta : Topology.Graph.Delta.t) =
    let n = Array.length st.st_off - 1 in
    if Topology.Graph.n old_graph <> n || Deployment.n dep <> n then
      invalid_arg "Incremental.Topo.influenced: size mismatch";
    let max_len = n + 1 in
    let tbl = Policy.Rank_table.make policy ~max_len in
    let mul = tbl.Policy.Rank_table.mul in
    let add = tbl.Policy.Rank_table.add in
    let kk = tbl.Policy.Rank_table.kk in
    let rank_shift = Engine.Packed.rank_shift in
    let dirty = ref false in
    (* Would u's frozen state, offered over an edge that classifies as
       [cls_at_w] at [w], win, tie, or newly reach any lane at [w]? *)
    let test_dir u w ~cls_at_w =
      if not !dirty then begin
        let w_lo = st.st_off.(w) and w_hi = st.st_off.(w + 1) in
        let reached_w = ref 0 in
        for i = w_lo to w_hi - 1 do
          reached_w := !reached_w lor st.st_mask.(i)
        done;
        let full_w = Deployment.is_full dep w in
        let i = ref st.st_off.(u) in
        let u_hi = st.st_off.(u + 1) in
        while (not !dirty) && !i < u_hi do
          let gu = st.st_word.(!i) in
          let mu = st.st_mask.(!i) in
          incr i;
          let cls_u = Engine.Packed.cls_code_of gu in
          (* Ex: customers of u always learn; peers/providers only when
             u's route is a customer route or u is a root (cls 3). *)
          if cls_at_w = 2 || cls_u = 0 || cls_u = 3 then begin
            let len' = Engine.Packed.len_of gu + 1 in
            if len' <= max_len then begin
              let secure' = Engine.Packed.secure_of gu && full_w in
              let j =
                (2 * cls_at_w)
                + (if secure' then 0 else 1)
                + if len' <= kk then 0 else 6
              in
              let r' = (mul.(j) * len') + add.(j) in
              if mu land lnot !reached_w <> 0 then dirty := true
              else begin
                let k = ref w_lo in
                while (not !dirty) && !k < w_hi do
                  if
                    st.st_mask.(!k) land mu <> 0
                    && st.st_word.(!k) lsr rank_shift >= r'
                  then dirty := true;
                  incr k
                done
              end
            end
          end
        done
      end
    in
    let test_edge = function
      | Topology.Graph.Customer_provider (c, p) ->
          (* p (c's provider) would receive a customer route (cls 0);
             c would receive a provider route (cls 2). *)
          test_dir c p ~cls_at_w:0;
          test_dir p c ~cls_at_w:2
      | Topology.Graph.Peer_peer (a, b) ->
          test_dir a b ~cls_at_w:1;
          test_dir b a ~cls_at_w:1
    in
    Array.iter
      (fun op ->
        match op with
        | Topology.Graph.Delta.Add e | Topology.Graph.Delta.Remove e ->
            test_edge e
        | Topology.Graph.Delta.Flip e ->
            let a, b =
              match e with
              | Topology.Graph.Customer_provider (a, b)
              | Topology.Graph.Peer_peer (a, b) ->
                  (a, b)
            in
            (match Topology.Graph.relationship old_graph a b with
            | Some old_e -> test_edge old_e
            | None -> dirty := true);
            test_edge e)
      delta;
    !dirty
end
