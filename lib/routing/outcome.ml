type t = {
  mutable dst : int;
  mutable attacker : int option;
  mutable n : int;
  (* Arrays may be longer than [n] when the record is recycled by
     [reset]; only the first [n] slots are meaningful. *)
  length : int array;
  (* Route class packed as an int to keep the record flat: 0 customer,
     1 peer, 2 provider, 3 origin/attacker, -1 unreached. *)
  cls : int array;
  secure : bool array;
  to_d : bool array;
  to_m : bool array;
  parent : int array;
}

let dst t = t.dst
let attacker t = t.attacker
let n t = t.n

let create ~n ~dst ~attacker =
  {
    dst;
    attacker;
    n;
    length = Array.make n (-1);
    cls = Array.make n (-1);
    secure = Array.make n false;
    to_d = Array.make n false;
    to_m = Array.make n false;
    parent = Array.make n (-1);
  }

let reset t ~n ~dst ~attacker =
  if Array.length t.length < n then create ~n ~dst ~attacker
  else begin
    t.dst <- dst;
    t.attacker <- attacker;
    t.n <- n;
    Array.fill t.length 0 n (-1);
    Array.fill t.cls 0 n (-1);
    Array.fill t.secure 0 n false;
    Array.fill t.to_d 0 n false;
    Array.fill t.to_m 0 n false;
    Array.fill t.parent 0 n (-1);
    t
  end

let reached t v = t.length.(v) >= 0
let is_fixed = reached
let length t v = t.length.(v)

let route_class t v =
  match t.cls.(v) with
  | 0 -> Policy.Customer
  | 1 -> Policy.Peer
  | 2 -> Policy.Provider
  | _ ->
      invalid_arg
        (Printf.sprintf "Outcome.route_class: AS %d has no neighbor route" v)

let secure t v = t.secure.(v)
let to_d t v = t.to_d.(v)
let to_m t v = t.to_m.(v)
let happy_lb t v = t.to_d.(v) && not t.to_m.(v)
let happy_ub t v = t.to_d.(v)
let next_hop t v = t.parent.(v)

let cls_code = function
  | Policy.Customer -> 0
  | Policy.Peer -> 1
  | Policy.Provider -> 2

let fix t v ~cls ~len ~secure ~to_d ~to_m ~parent =
  t.length.(v) <- len;
  t.cls.(v) <- cls_code cls;
  t.secure.(v) <- secure;
  t.to_d.(v) <- to_d;
  t.to_m.(v) <- to_m;
  t.parent.(v) <- parent

let fix_code t v ~cls_code ~len ~secure ~to_d ~to_m ~parent =
  t.length.(v) <- len;
  t.cls.(v) <- cls_code;
  t.secure.(v) <- secure;
  t.to_d.(v) <- to_d;
  t.to_m.(v) <- to_m;
  t.parent.(v) <- parent

let lengths t = t.length

let fix_root t v ~len ~secure ~to_d ~to_m ~parent =
  t.length.(v) <- len;
  t.cls.(v) <- 3;
  t.secure.(v) <- secure;
  t.to_d.(v) <- to_d;
  t.to_m.(v) <- to_m;
  t.parent.(v) <- parent

let path t v =
  if not (reached t v) then []
  else begin
    let rec follow v acc steps =
      if steps > t.n + 2 then failwith "Outcome.path: cycle in parents"
      else if v = t.dst then List.rev (v :: acc)
      else
        match t.parent.(v) with
        | -1 -> List.rev (v :: acc)
        | p -> follow p (v :: acc) (steps + 1)
    in
    follow v [] 0
  end
