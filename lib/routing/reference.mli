(** The pre-CSR routing kernel, preserved verbatim as a differential
    baseline for the packed CSR engine ({!Engine}).

    Same semantics, same signature, same outcomes — but the original
    memory layout: seven parallel candidate arrays, three per-class
    [Array.iter] adjacency closures per expansion, and a full
    {!Policy.rank} computation (variant dispatch included) per offered
    edge.  {!Check.Kernel}, the qcheck suite in test/test_kernel.ml and
    the kernel microbenchmark's identity gate all compare {!Engine}
    against this module bit-for-bit; the microbenchmark also reports the
    throughput delta between the two, which is the whole point of
    keeping the slow version around.  Do not optimize it. *)

type tiebreak = Engine.tiebreak = Bounds | Lowest_next_hop

module Workspace : sig
  (** Reusable scratch buffers in the {e old} layout.  Independent of
      {!Engine.Workspace} — a reference workspace cannot be passed to the
      packed engine or vice versa. *)

  type t

  val create : int -> t

  val local : unit -> t
  (** The calling domain's lazily-created private reference workspace
      (distinct from the packed engine's {!Engine.Workspace.local}). *)
end

val compute :
  ?tiebreak:tiebreak ->
  ?attacker_claim:int ->
  ?ws:Workspace.t ->
  Topology.Graph.t ->
  Policy.t ->
  Deployment.t ->
  dst:int ->
  attacker:int option ->
  Outcome.t
(** Exactly {!Engine.compute}'s contract, computed by the pre-change
    kernel.  See {!Engine.compute} for the parameter semantics. *)
