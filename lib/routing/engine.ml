type tiebreak = Bounds | Lowest_next_hop

(* Packed candidate state.  A not-yet-fixed AS's best offer is one int
   (plus a parent), laid out LSB-first as

     bit  0      to_m   — some equally-best route leads to the attacker
     bit  1      to_d   — some equally-best route leads to the destination
     bit  2      secure — the route is fully signed and validated
     bits 3-4    cls    — 0 customer / 1 peer / 2 provider
     bits 5-28   len    — perceived path length (max_len = n + 1 < 2^24)
     bits 29-62  rank   — Policy.rank of (cls, len, secure)

   Because the rank is injective on (cls, len, secure) and sits above
   every other field, ordering two candidates by preference is a shift
   and an int test, and a relax touches two hot cache lines (word +
   parent, plus the epoch stamp) instead of the seven parallel arrays
   the pre-change kernel walked — see {!Reference} for that layout.
   The rank bound is O(max_len) for every model and LP variant
   (Policy.max_rank), so 34 rank bits dwarf any graph that fits the 24
   length bits. *)
let to_m_flag = 1

let to_d_flag = 2
let secure_flag = 4
let cls_shift = 3
let len_shift = 5
let len_bits = 24
let len_mask = (1 lsl len_bits) - 1
let rank_shift = len_shift + len_bits

let pack ~rank ~cls_code ~len ~secure ~flags =
  (rank lsl rank_shift)
  lor (len lsl len_shift)
  lor (cls_code lsl cls_shift)
  lor (if secure then secure_flag else 0)
  lor flags

(* The layout as a public sub-module: {!Batch} packs the same word per
   attacker lane, and the batched-divergence checker decodes both sides
   of a mismatch — one definition, re-exported, so the two kernels
   cannot drift apart silently. *)
module Packed = struct
  let to_m_flag = to_m_flag
  let to_d_flag = to_d_flag
  let secure_flag = secure_flag
  let cls_shift = cls_shift
  let len_shift = len_shift
  let len_mask = len_mask
  let rank_shift = rank_shift
  let pack = pack
  let rank_of w = w lsr rank_shift
  let len_of w = (w lsr len_shift) land len_mask
  let cls_code_of w = (w lsr cls_shift) land 3
  let secure_of w = w land secure_flag <> 0
  let to_d_of w = w land to_d_flag <> 0
  let to_m_of w = w land to_m_flag <> 0

  let describe w =
    Printf.sprintf "rank=%d cls=%d len=%d secure=%b to_d=%b to_m=%b"
      (rank_of w) (cls_code_of w) (len_of w) (secure_of w) (to_d_of w)
      (to_m_of w)
end

module Workspace = struct
  (* A candidate slot is live only when [stamp.(v) = epoch]; bumping the
     epoch invalidates every slot at once, so reuse costs O(1) instead of
     re-filling the candidate arrays per (attacker, destination) pair.
     The bucket queue and the outcome record are recycled in place (the
     queue is empty after a completed drain, the outcome is reset by
     filling, which is cheap relative to allocating + collecting it). *)
  type t = {
    mutable cap : int;
    mutable epoch : int;
    mutable stamp : int array; (* slot live iff stamp.(v) = epoch *)
    mutable word : int array; (* packed candidate, live slots only *)
    mutable parent : int array;
    mutable queue : Prelude.Bucket_queue.t option;
    mutable outcome : Outcome.t option;
  }

  let create cap =
    if cap < 0 then invalid_arg "Engine.Workspace.create: negative size";
    {
      cap;
      epoch = 0;
      stamp = Array.make cap (-1);
      word = Array.make cap 0;
      parent = Array.make cap (-1);
      queue = None;
      outcome = None;
    }

  let key = Domain.DLS.new_key (fun () -> create 0)
  let local () = Domain.DLS.get key

  let grow t n =
    if t.cap < n then begin
      t.cap <- n;
      t.stamp <- Array.make n (-1);
      t.word <- Array.make n 0;
      t.parent <- Array.make n (-1)
    end

  (* Check out the buffers for one computation of size [n] with the given
     rank bound.  Invalidates the outcome of the previous computation
     that used this workspace. *)
  let checkout t ~n ~max_rank ~dst ~attacker =
    grow t n;
    t.epoch <- t.epoch + 1;
    let queue =
      match t.queue with
      | Some q when Prelude.Bucket_queue.capacity q >= max_rank ->
          Prelude.Bucket_queue.clear q;
          q
      | Some _ | None ->
          let q = Prelude.Bucket_queue.create ~max_rank in
          t.queue <- Some q;
          q
    in
    let outcome =
      match t.outcome with
      | Some o -> Outcome.reset o ~n ~dst ~attacker
      | None -> Outcome.create ~n ~dst ~attacker
    in
    t.outcome <- Some outcome;
    (t.word, t.parent, t.stamp, t.epoch, queue, outcome)
end

let compute ?(tiebreak = Bounds) ?(attacker_claim = 1) ?ws g policy dep ~dst
    ~attacker =
  if attacker_claim < 0 then
    invalid_arg "Engine.compute: attacker_claim < 0";
  let n = Topology.Graph.n g in
  let check v name =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Engine.compute: %s %d out of range" name v)
  in
  check dst "dst";
  (match attacker with
  | Some m ->
      check m "attacker";
      if m = dst then invalid_arg "Engine.compute: attacker = dst"
  | None -> ());
  let max_len = n + 1 in
  if max_len > len_mask then
    invalid_arg "Engine.compute: graph too large for the packed kernel";
  let tbl = Policy.Rank_table.make policy ~max_len in
  let max_rank = tbl.Policy.Rank_table.max_rank in
  let word, parent, stamp, epoch, queue, outcome =
    match ws with
    | Some ws -> Workspace.checkout ws ~n ~max_rank ~dst ~attacker
    | None ->
        (* Fresh buffers: a zero stamp with epoch 0 marks no slot live,
           matching the workspace's "nothing checked out yet" state. *)
        ( Array.make n 0,
          Array.make n (-1),
          Array.make n (-1),
          0,
          Prelude.Bucket_queue.create ~max_rank,
          Outcome.create ~n ~dst ~attacker )
  in
  (* Fixedness is a sign test on the outcome's raw length array; [fixed]
     entries are never candidates again. *)
  let lengths = Outcome.lengths outcome in
  let csr = Topology.Graph.csr g in
  let adj = csr.Topology.Graph.Csr.adj in
  let xs = csr.Topology.Graph.Csr.xs in
  let mul = tbl.Policy.Rank_table.mul in
  let add = tbl.Policy.Rank_table.add in
  let kk = tbl.Policy.Rank_table.kk in
  (* Offer the route abstraction (cls, len, secure, endpoint flags) to AS
     [w] via next hop [u].  [flags] carries to_d (bit 1) and to_m
     (bit 0). *)
  let relax w ~cls_code ~len ~secure ~flags ~parent:u =
    if Array.unsafe_get lengths w < 0 && len <= max_len then begin
      let sbit = if secure then 0 else 1 in
      let j = (2 * cls_code) + sbit + if len <= kk then 0 else 6 in
      let r = (Array.unsafe_get mul j * len) + Array.unsafe_get add j in
      let cur =
        if Array.unsafe_get stamp w = epoch then
          Array.unsafe_get word w lsr rank_shift
        else max_int
      in
      if r < cur then begin
        Array.unsafe_set stamp w epoch;
        Array.unsafe_set word w (pack ~rank:r ~cls_code ~len ~secure ~flags);
        Array.unsafe_set parent w u;
        Prelude.Bucket_queue.push queue ~rank:r w
      end
      else if r = cur then begin
        match tiebreak with
        | Bounds ->
            (* Same rank implies same class/length/security; accumulate
               endpoints, keep the lowest-numbered representative hop. *)
            Array.unsafe_set word w (Array.unsafe_get word w lor flags);
            if u < Array.unsafe_get parent w then Array.unsafe_set parent w u
        | Lowest_next_hop ->
            if u < Array.unsafe_get parent w then begin
              Array.unsafe_set parent w u;
              Array.unsafe_set word w
                ((Array.unsafe_get word w land lnot (to_d_flag lor to_m_flag))
                lor flags)
            end
      end
    end
  in
  (* Propagate a fixed AS's route to its neighbors, respecting Ex: one
     linear scan over the AS's CSR row, the offered class decided by the
     segment boundary the index has crossed.  Customers of u always
     learn u's route (a provider route at them); peers and providers
     only when u's own route is a customer route (or u is a root). *)
  let expand u ~cls_code ~len ~secure ~flags ~exports_everywhere =
    let signed = secure in
    let len1 = len + 1 in
    let base = 3 * u in
    let c0 = Bigarray.Array1.unsafe_get xs base in
    let p0 = Bigarray.Array1.unsafe_get xs (base + 1) in
    let r0 = Bigarray.Array1.unsafe_get xs (base + 2) in
    let rend = Bigarray.Array1.unsafe_get xs (base + 3) in
    for i = c0 to p0 - 1 do
      let w = Bigarray.Array1.unsafe_get adj i in
      relax w ~cls_code:2 ~len:len1
        ~secure:(signed && Deployment.is_full dep w)
        ~flags ~parent:u
    done;
    if exports_everywhere || cls_code = 0 then begin
      for i = p0 to r0 - 1 do
        let w = Bigarray.Array1.unsafe_get adj i in
        relax w ~cls_code:1 ~len:len1
          ~secure:(signed && Deployment.is_full dep w)
          ~flags ~parent:u
      done;
      for i = r0 to rend - 1 do
        let w = Bigarray.Array1.unsafe_get adj i in
        relax w ~cls_code:0 ~len:len1
          ~secure:(signed && Deployment.is_full dep w)
          ~flags ~parent:u
      done
    end
  in
  (* Roots.  The destination's own announcement is signed when it deploys
     full or simplex S*BGP; the attacker's bogus announcement is plain
     BGP with the claimed path length (1 for the paper's "m d"). *)
  Outcome.fix_root outcome dst ~len:0
    ~secure:(Deployment.signs_origin dep dst)
    ~to_d:true ~to_m:false ~parent:(-1);
  (match attacker with
  | Some m ->
      Outcome.fix_root outcome m ~len:attacker_claim ~secure:false
        ~to_d:false ~to_m:true ~parent:dst
  | None -> ());
  expand dst ~cls_code:(-1) ~len:0
    ~secure:(Deployment.signs_origin dep dst)
    ~flags:to_d_flag ~exports_everywhere:true;
  (match attacker with
  | Some m ->
      expand m ~cls_code:(-1) ~len:attacker_claim ~secure:false
        ~flags:to_m_flag ~exports_everywhere:true
  | None -> ());
  (* Allocation-free drain: [pop_exn]/[last_rank] avoid the option+pair
     a [pop] per settled AS would box. *)
  let rec drain () =
    if not (Prelude.Bucket_queue.is_empty queue) then begin
      let v = Prelude.Bucket_queue.pop_exn queue in
      if Array.unsafe_get lengths v < 0 then begin
        let wv = word.(v) in
        assert (
          stamp.(v) = epoch
          && Prelude.Bucket_queue.last_rank queue = wv lsr rank_shift);
        let cls_code = (wv lsr cls_shift) land 3 in
        let len = (wv lsr len_shift) land len_mask in
        let secure = wv land secure_flag <> 0 in
        Outcome.fix_code outcome v ~cls_code ~len ~secure
          ~to_d:(wv land to_d_flag <> 0)
          ~to_m:(wv land to_m_flag <> 0)
          ~parent:parent.(v);
        expand v ~cls_code ~len ~secure
          ~flags:(wv land (to_d_flag lor to_m_flag))
          ~exports_everywhere:false
      end;
      drain ()
    end
  in
  drain ();
  outcome
