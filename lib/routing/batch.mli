(** Destination-major batched stable-state kernel: one routing-tree
    solve serves up to {!max_lanes} attackers.

    The experiment driver evaluates many (attacker, destination) pairs
    that share a destination.  The attacker-free part of the stable
    state toward [d] is identical across all of them; only the bogus
    "m d" announcement differs.  This kernel assigns each attacker a
    {e lane} — a bit position in a native-int word — and runs the
    label-setting computation of {!Engine} once for the whole word.

    Per-AS candidate state is a set of {e groups} [(mask, word,
    parent)]: the lanes in [mask] all hold the packed candidate [word]
    (the scalar kernel's exact encoding, {!Engine.Packed}) with
    representative next hop [parent].  Group masks are pairwise
    disjoint.  Far from the attackers' influence every AS has a single
    full-word group, and one CSR row scan, one rank compare and one
    queue push advance all lanes at once; near the attackers groups
    split, degrading gracefully toward per-lane work only where lanes
    actually differ.

    The result is {b bit-identical} to {!Engine.compute} run separately
    per attacker, for every policy model and both tiebreaks: ranks are
    injective on (class, length, security) and strictly monotone along
    route extensions, and both tiebreaks are order-independent merges.
    The identity is enforced three ways — qcheck property tests, the
    [sbgp check --kernel] batched-divergence pass, and the bench
    identity gate. *)

val max_lanes : int
(** Maximum attackers per batch: {!Prelude.Bitset.word_bits} = 63, the
    width of an OCaml immediate int. *)

module Workspace : sig
  (** Reusable scratch for {!compute}: flat group slabs
      ([max_lanes] slots per AS), per-AS lane masks revalidated by an
      epoch stamp, the touched-AS set and the bucket queue.  Not
      thread-safe; use one per domain ({!local}). *)

  type t

  val create : int -> t
  (** [create n] preallocates for graphs of up to [n] ASes; buffers grow
      automatically when a larger graph is computed. *)

  val local : unit -> t
  (** The calling domain's lazily created private workspace
      (domain-local storage), for pool workers. *)
end

type t
(** The batched stable state: frozen lane groups for every reached AS.
    A result borrows its workspace's buffers — it stays valid only
    until the next {!compute} on the same workspace; the accessors
    below raise [Invalid_argument] on a stale result. *)

val compute :
  ?tiebreak:Engine.tiebreak ->
  ?attacker_claim:int ->
  ?ws:Workspace.t ->
  Topology.Graph.t ->
  Policy.t ->
  Deployment.t ->
  dst:int ->
  attackers:int array ->
  t
(** [compute g policy dep ~dst ~attackers] computes the stable routing
    state toward [dst] under attacker [attackers.(l)] in lane [l], for
    all lanes at once.  Defaults match {!Engine.compute} ([Bounds]
    tiebreak, claim 1).

    Raises [Invalid_argument] when the lane count is outside
    [1 .. max_lanes], any id is out of range, some attacker equals
    [dst], or [attacker_claim < 0]. *)

val dst : t -> int
val lanes : t -> int

val attacker : t -> lane:int -> int
(** Lane [l]'s attacker. *)

val attackers : t -> int array
(** A fresh copy of the per-lane attacker array. *)

val iter_fixed : t -> (v:int -> mask:int -> word:int -> parent:int -> unit) -> unit
(** Iterate every frozen group of every reached AS.  [mask] is the lane
    set (nonempty; masks of one AS are disjoint), [word] the shared
    packed candidate — decode with {!Engine.Packed} — and [parent] the
    representative next hop.  Root groups carry class code 3: the
    destination's full-lane root and, at each attacker, the bogus-origin
    root of its own lane.  Metric folds consume groups directly (one
    callback per group, not per lane), which is how per-attacker
    happiness and partition counts are accumulated without materializing
    [lanes t] outcome records.  ASes unreached in some lane simply have
    no group containing that lane. *)

val decode : ?into:Outcome.t -> t -> lane:int -> Outcome.t
(** [decode t ~lane] expands one lane into a full scalar {!Outcome.t},
    bit-identical to [Engine.compute ~attacker:(Some (attacker t
    ~lane))].  [into] reuses an outcome record.  Used by the divergence
    checker and anywhere a single attacker's full state is needed. *)

val group_of : t -> v:int -> lane:int -> (int * int * int) option
(** [group_of t ~v ~lane] is the [(mask, word, parent)] group at AS [v]
    whose mask contains [lane], or [None] if [v] is unreached in that
    lane.  Diagnostic accessor for the divergence checker's packed-lane
    reports. *)
