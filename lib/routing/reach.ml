type t = {
  customer_set : Prelude.Bitset.t;
  peer_set : Prelude.Bitset.t;
  provider_set : Prelude.Bitset.t;
  root : int;
}

let compute_view (vw : Topology.Graph.view) ~root ?(avoid = -1) ?only () =
  let n = vw.Topology.Graph.view_n in
  if root < 0 || root >= n then invalid_arg "Reach.compute: root out of range";
  if root = avoid then invalid_arg "Reach.compute: root = avoid";
  let customer_set = Prelude.Bitset.create n in
  let peer_set = Prelude.Bitset.create n in
  let provider_set = Prelude.Bitset.create n in
  let allowed = match only with None -> fun _ -> true | Some f -> f in
  let ok v = v <> avoid && v <> root && allowed v in
  let iter_customers = vw.Topology.Graph.iter_customers in
  let iter_peers = vw.Topology.Graph.iter_peers in
  let iter_providers = vw.Topology.Graph.iter_providers in
  (* Customer routes: climb customer-to-provider edges from the root. *)
  let queue = Queue.create () in
  let push_customer v =
    if ok v && not (Prelude.Bitset.mem customer_set v) then begin
      Prelude.Bitset.add customer_set v;
      Queue.add v queue
    end
  in
  iter_providers push_customer root;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_providers push_customer u
  done;
  (* Peer routes: one peer hop off a customer route (or off the root). *)
  let has_customer_or_root u = u = root || Prelude.Bitset.mem customer_set u in
  for v = 0 to n - 1 do
    if ok v then begin
      let found = ref false in
      iter_peers (fun u -> if (not !found) && has_customer_or_root u then found := true) v;
      if !found then Prelude.Bitset.add peer_set v
    end
  done;
  (* Provider routes: close downward from anything reachable. *)
  let push_provider v =
    if ok v && not (Prelude.Bitset.mem provider_set v) then begin
      Prelude.Bitset.add provider_set v;
      Queue.add v queue
    end
  in
  let seed u = iter_customers push_provider u in
  seed root;
  Prelude.Bitset.iter seed customer_set;
  Prelude.Bitset.iter seed peer_set;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    seed u
  done;
  { customer_set; peer_set; provider_set; root }

(* The plain-graph entry point runs the same closure over the graph's own
   view: CSR-backed segment scans when the CSR is already built, table
   iteration otherwise.  Reachability is O(E) queue work either way —
   the packed kernels ({!Engine}/{!Batch}), not these closures, are the
   unsafe-access hot path. *)
let compute g ~root ?(avoid = -1) ?only () =
  compute_view (Topology.Graph.view g) ~root ~avoid ?only ()

let customer t v = Prelude.Bitset.mem t.customer_set v
let peer t v = Prelude.Bitset.mem t.peer_set v
let provider t v = Prelude.Bitset.mem t.provider_set v
let any t v = customer t v || peer t v || provider t v

let union_into t ~into =
  Prelude.Bitset.union_into ~into t.customer_set;
  Prelude.Bitset.union_into ~into t.peer_set;
  Prelude.Bitset.union_into ~into t.provider_set

let best_class t v =
  if customer t v then Some Policy.Customer
  else if peer t v then Some Policy.Peer
  else if provider t v then Some Policy.Provider
  else None

let in_class t cls v =
  match cls with
  | Policy.Customer -> customer t v
  | Policy.Peer -> peer t v
  | Policy.Provider -> provider t v
