type t = {
  customer_set : Prelude.Bitset.t;
  peer_set : Prelude.Bitset.t;
  provider_set : Prelude.Bitset.t;
  root : int;
}

let compute g ~root ?(avoid = -1) ?only () =
  let n = Topology.Graph.n g in
  if root < 0 || root >= n then invalid_arg "Reach.compute: root out of range";
  if root = avoid then invalid_arg "Reach.compute: root = avoid";
  let customer_set = Prelude.Bitset.create n in
  let peer_set = Prelude.Bitset.create n in
  let provider_set = Prelude.Bitset.create n in
  let allowed = match only with None -> fun _ -> true | Some f -> f in
  let ok v = v <> avoid && v <> root && allowed v in
  (* The three relationship classes are segments of each CSR row; the
     closures below walk one segment without materializing neighbor
     arrays. *)
  let csr = Topology.Graph.csr g in
  let adj = csr.Topology.Graph.Csr.adj in
  let xs = csr.Topology.Graph.Csr.xs in
  let iter_seg f lo hi =
    for i = lo to hi - 1 do
      f (Array.unsafe_get adj i)
    done
  in
  let iter_customers f v = iter_seg f xs.(3 * v) xs.((3 * v) + 1) in
  let iter_providers f v = iter_seg f xs.((3 * v) + 2) xs.((3 * v) + 3) in
  (* Customer routes: climb customer-to-provider edges from the root. *)
  let queue = Queue.create () in
  let push_customer v =
    if ok v && not (Prelude.Bitset.mem customer_set v) then begin
      Prelude.Bitset.add customer_set v;
      Queue.add v queue
    end
  in
  iter_providers push_customer root;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_providers push_customer u
  done;
  (* Peer routes: one peer hop off a customer route (or off the root). *)
  let has_customer_or_root u = u = root || Prelude.Bitset.mem customer_set u in
  for v = 0 to n - 1 do
    if ok v then begin
      let hi = xs.((3 * v) + 2) in
      let rec scan i =
        i < hi
        && (has_customer_or_root (Array.unsafe_get adj i) || scan (i + 1))
      in
      if scan xs.((3 * v) + 1) then Prelude.Bitset.add peer_set v
    end
  done;
  (* Provider routes: close downward from anything reachable. *)
  let push_provider v =
    if ok v && not (Prelude.Bitset.mem provider_set v) then begin
      Prelude.Bitset.add provider_set v;
      Queue.add v queue
    end
  in
  let seed u = iter_customers push_provider u in
  seed root;
  Prelude.Bitset.iter seed customer_set;
  Prelude.Bitset.iter seed peer_set;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    seed u
  done;
  { customer_set; peer_set; provider_set; root }

let customer t v = Prelude.Bitset.mem t.customer_set v
let peer t v = Prelude.Bitset.mem t.peer_set v
let provider t v = Prelude.Bitset.mem t.provider_set v
let any t v = customer t v || peer t v || provider t v

let best_class t v =
  if customer t v then Some Policy.Customer
  else if peer t v then Some Policy.Peer
  else if provider t v then Some Policy.Provider
  else None

let in_class t cls v =
  match cls with
  | Policy.Customer -> customer t v
  | Policy.Peer -> peer t v
  | Policy.Provider -> provider t v
