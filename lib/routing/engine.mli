(** Stable-state computation for routing with partially deployed S*BGP in
    the presence of the "m d" attack of Section 3.1.

    This is the generalized form of the multi-stage BFS of Appendix B:
    a label-setting (Dijkstra-style) computation over the dense preference
    ranks of {!Policy.rank}.  Correctness rests on the ranks being strictly
    monotone along route extensions — extending a fixed route by one hop
    always yields a strictly worse rank, for every model and LP variant —
    so fixing ASes in rank order reproduces exactly the stable state that
    the staged algorithm (and, by the paper's Lemmas B.2-B.15, the S*BGP
    convergence process) arrives at.  The agreement with the literal
    staged algorithm ({!Staged}) and with the dynamic message-passing
    simulator is property-tested.

    Export policy (Ex): an AS announces a customer route to everyone and
    any other route to its customers only.  The destination announces its
    own prefix to everyone; the attacker announces the bogus route "m d"
    to all its neighbors via legacy BGP. *)

type tiebreak =
  | Bounds
      (** Leave TB unresolved: track every equally-best route's endpoint,
          yielding the lower/upper happiness bounds of Section 4.1. *)
  | Lowest_next_hop
      (** Deterministic TB: among equally-best routes keep the one whose
          next hop has the smallest AS number.  Used for cross-validation
          with the dynamic simulator. *)

module Packed : sig
  (** The packed candidate-word layout shared by this kernel and the
      batched kernel ({!Batch}), LSB-first:

      {v
        bit  0      to_m   — some equally-best route leads to the attacker
        bit  1      to_d   — some equally-best route leads to the destination
        bit  2      secure — the route is fully signed and validated
        bits 3-4    cls    — 0 customer / 1 peer / 2 provider / 3 root
        bits 5-28   len    — perceived path length (max_len = n + 1 < 2^24)
        bits 29-62  rank   — Policy.rank of (cls, len, secure)
      v}

      The rank is injective on (cls, len, secure), so equal ranks imply
      equal decoded fields — the property that lets the batched kernel
      share one word across a whole lane group. *)

  val to_m_flag : int
  val to_d_flag : int
  val secure_flag : int
  val cls_shift : int
  val len_shift : int
  val len_mask : int
  val rank_shift : int

  val pack :
    rank:int -> cls_code:int -> len:int -> secure:bool -> flags:int -> int
  (** [flags] is a pre-or'd subset of [to_m_flag lor to_d_flag]. *)

  val rank_of : int -> int
  val len_of : int -> int
  val cls_code_of : int -> int
  val secure_of : int -> bool
  val to_d_of : int -> bool
  val to_m_of : int -> bool

  val describe : int -> string
  (** All decoded fields of a packed word, for divergence diagnostics. *)
end

module Workspace : sig
  (** Reusable scratch buffers for {!compute}.

      One stable-state computation needs ~7 size-n candidate arrays, a
      bucket queue sized by the policy's rank bound, and the outcome
      record itself.  The experiment suite runs thousands of independent
      computations over the same graph, so allocating these per call
      dominates the small-instance runtime.  A workspace owns all of them
      and revalidates the candidate arrays with an epoch stamp (O(1) per
      reuse) instead of re-filling.

      A workspace is {e not} thread-safe: use one per domain.  {!local}
      returns the calling domain's private workspace, which is what pool
      workers use. *)

  type t

  val create : int -> t
  (** [create n] preallocates for graphs of up to [n] ASes; the buffers
      grow automatically if a larger graph is computed. *)

  val local : unit -> t
  (** The calling domain's lazily-created private workspace (domain-local
      storage).  Safe to use from any domain, including pool workers —
      each domain gets its own. *)
end

val compute :
  ?tiebreak:tiebreak ->
  ?attacker_claim:int ->
  ?ws:Workspace.t ->
  Topology.Graph.t ->
  Policy.t ->
  Deployment.t ->
  dst:int ->
  attacker:int option ->
  Outcome.t
(** [compute g policy dep ~dst ~attacker] returns the stable routing
    state toward [dst].  [attacker = None] computes normal conditions.
    Default tiebreak is [Bounds].

    [attacker_claim] is the length of the bogus path the attacker claims
    (default 1 — the paper's "m d" announcement).  [0] models an
    unauthorized origination of the victim's prefix (a classic prefix
    hijack, only meaningful when origin authentication is absent); larger
    values model longer fabricated paths "m x .. d".

    [ws] reuses the given workspace's buffers instead of allocating.
    The returned outcome is then owned by the workspace: it stays valid
    only until the next [compute] with the same workspace.  Callers that
    keep outcomes around (or compare two of them) must either use
    distinct workspaces or omit [ws].  Results are bit-identical with and
    without [ws].

    Raises [Invalid_argument] if [attacker = Some dst], ids are out of
    range, or [attacker_claim < 0]. *)
