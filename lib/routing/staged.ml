(* Executable specification of Appendix B.  See staged.mli. *)

type phase = {
  cls : Policy.route_class;
  secure_only : bool; (* FS* variants only consider secure candidates *)
}

let phases model =
  let p cls secure_only = { cls; secure_only } in
  match model with
  | Policy.Security_third ->
      [ p Customer false; p Peer false; p Provider false ]
  | Policy.Security_second ->
      [
        p Customer true;
        p Customer false;
        p Peer false;
        p Provider true;
        p Provider false;
      ]
  | Policy.Security_first ->
      [
        p Customer true;
        p Peer true;
        p Provider true;
        p Customer false;
        p Peer false;
        p Provider false;
      ]

type cand = {
  len : int;
  secure : bool;
  to_d : bool;
  to_m : bool;
  parent : int;
}

let compute g policy dep ~dst ~attacker =
  (match (policy : Policy.t).lp with
  | Standard -> ()
  | Lp_k _ -> invalid_arg "Staged.compute: only the Standard LP model");
  let n = Topology.Graph.n g in
  if dst < 0 || dst >= n then invalid_arg "Staged.compute: dst out of range";
  (match attacker with
  | Some m when m < 0 || m >= n || m = dst ->
      invalid_arg "Staged.compute: bad attacker"
  | Some _ | None -> ());
  let outcome = Outcome.create ~n ~dst ~attacker in
  (* cls codes: 0 customer, 1 peer, 2 provider, 3 root. *)
  let cls_code = Array.make n (-1) in
  Outcome.fix_root outcome dst ~len:0
    ~secure:(Deployment.signs_origin dep dst)
    ~to_d:true ~to_m:false ~parent:(-1);
  cls_code.(dst) <- 3;
  (match attacker with
  | Some m ->
      Outcome.fix_root outcome m ~len:1 ~secure:false ~to_d:false ~to_m:true
        ~parent:dst;
      cls_code.(m) <- 3
  | None -> ());
  (* All candidates of a given class at v, via fixed neighbors whose export
     policy Ex permits the announcement. *)
  let candidates v cls =
    let via_customer_route u =
      (* u announces to a peer/provider only if its own route is a customer
         route, or u is the destination / the attacker. *)
      cls_code.(u) = 0 || cls_code.(u) = 3
    in
    let neighbors, export_ok =
      match cls with
      | Policy.Customer -> (Topology.Graph.customers g v, via_customer_route)
      | Policy.Peer -> (Topology.Graph.peers g v, via_customer_route)
      | Policy.Provider ->
          (Topology.Graph.providers g v, fun u -> cls_code.(u) >= 0)
    in
    Array.to_list neighbors
    |> List.filter_map (fun u ->
           if Outcome.is_fixed outcome u && export_ok u then
             Some
               {
                 len = Outcome.length outcome u + 1;
                 secure = Outcome.secure outcome u && Deployment.is_full dep v;
                 to_d = Outcome.to_d outcome u;
                 to_m = Outcome.to_m outcome u;
                 parent = u;
               }
           else None)
  in
  (* The BPR set of v restricted to class [cls]: the candidates preferred
     before the tiebreak step, per the policy's full comparator. *)
  let bpr v cls pool =
    ignore v;
    match pool with
    | [] -> []
    | first :: _ ->
        let key c = (cls, c.len, c.secure) in
        let best =
          List.fold_left
            (fun acc c ->
              if Policy.compare_routes policy (key c) (key acc) < 0 then c
              else acc)
            first pool
        in
        List.filter (fun c -> Policy.compare_routes policy (key c) (key best) = 0) pool
  in
  let run_phase phase =
    let continue = ref true in
    while !continue do
      (* Find the eligible unfixed AS whose phase-candidate is shortest
         (ties by AS id), exactly as FCR/FPrvR select "the AS with the
         shortest customer/provider route". *)
      let best : (int * int * cand list) option ref = ref None in
      for v = 0 to n - 1 do
        if not (Outcome.is_fixed outcome v) then begin
          let pool = candidates v phase.cls in
          let pool =
            if phase.secure_only then List.filter (fun c -> c.secure) pool
            else pool
          in
          match bpr v phase.cls pool with
          | [] -> ()
          | (c :: _ as set) -> (
              match !best with
              (* Lexicographic (len, id) as explicit int tests: the tuple
                 form would allocate both tuples and dispatch through the
                 polymorphic runtime on every scan step. *)
              | Some (blen, bv, _) when c.len > blen || (c.len = blen && v >= bv)
                -> ()
              | _ -> best := Some (c.len, v, set))
        end
      done;
      match !best with
      | None -> continue := false
      | Some (_, v, set) ->
          let merged =
            List.fold_left
              (fun acc c ->
                {
                  acc with
                  to_d = acc.to_d || c.to_d;
                  to_m = acc.to_m || c.to_m;
                  parent = min acc.parent c.parent;
                })
              (List.hd set) (List.tl set)
          in
          Outcome.fix outcome v ~cls:phase.cls ~len:merged.len
            ~secure:merged.secure ~to_d:merged.to_d ~to_m:merged.to_m
            ~parent:merged.parent;
          cls_code.(v) <-
            (match phase.cls with Customer -> 0 | Peer -> 1 | Provider -> 2)
    done
  in
  List.iter run_phase (phases (policy : Policy.t).model);
  outcome
