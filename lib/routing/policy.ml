type model = Security_first | Security_second | Security_third
type lp = Standard | Lp_k of int
type t = { model : model; lp : lp }

let make ?(lp = Standard) model =
  (match lp with
  | Lp_k k when k < 1 -> invalid_arg "Policy.make: Lp_k requires k >= 1"
  | Lp_k _ | Standard -> ());
  { model; lp }

let all_models = [ Security_first; Security_second; Security_third ]

let model_name = function
  | Security_first -> "security 1st"
  | Security_second -> "security 2nd"
  | Security_third -> "security 3rd"

let lp_name = function
  | Standard -> "LP"
  | Lp_k k -> Printf.sprintf "LP%d" k

let name t =
  match t.lp with
  | Standard -> model_name t.model
  | Lp_k _ -> Printf.sprintf "%s/%s" (model_name t.model) (lp_name t.lp)

type route_class = Customer | Peer | Provider

let class_name = function
  | Customer -> "customer"
  | Peer -> "peer"
  | Provider -> "provider"

(* Ordinal of the local-preference class of a route.  For [Lp_k k] the
   classes are, in preference order: C1, P1, C2, P2, ..., Ck, Pk, C>k,
   P>k, Provider. *)
let lp_class t cls len =
  match t.lp with
  | Standard -> ( match cls with Customer -> 0 | Peer -> 1 | Provider -> 2)
  | Lp_k k -> (
      match cls with
      | Customer -> if len <= k then 2 * (len - 1) else 2 * k
      | Peer -> if len <= k then (2 * (len - 1)) + 1 else (2 * k) + 1
      | Provider -> (2 * k) + 2)

let compare_routes t (c1, l1, s1) (c2, l2, s2) =
  (* Each step compares "smaller is preferred"; secure routes first. *)
  let sec s = if s then 0 else 1 in
  let keys c l s =
    match t.model with
    | Security_first -> (sec s, lp_class t c l, l)
    | Security_second -> (lp_class t c l, sec s, l)
    | Security_third -> (lp_class t c l, l, sec s)
  in
  let a1, b1, d1 = keys c1 l1 s1 and a2, b2, d2 = keys c2 l2 s2 in
  let c = Int.compare a1 a2 in
  if c <> 0 then c
  else
    let c = Int.compare b1 b2 in
    if c <> 0 then c else Int.compare d1 d2

(* Dense rank encodings.  Each is order-isomorphic to [compare_routes];
   see the property tests in test/test_routing.ml.

   For [Lp_k] the naive lexicographic encoding (class * 2 * L) explodes
   when k approaches max_len, so we use dense layouts exploiting that the
   first 2k classes each admit a single length. *)

let check_len ~max_len len =
  if len < 1 || len > max_len then
    invalid_arg (Printf.sprintf "Policy.rank: len %d outside [1, %d]" len max_len)

(* Dense ordinal of (class, len) under the Lp_k class order refined by
   length — i.e. the (LP, SP) prefix shared by all three models. *)
let lpk_len_ord ~kk ~max_len cls len =
  match cls with
  | Customer when len <= kk -> 2 * (len - 1)
  | Peer when len <= kk -> (2 * (len - 1)) + 1
  | Customer -> (2 * kk) + (len - kk - 1)
  | Peer -> (2 * kk) + (max_len - kk) + (len - kk - 1)
  | Provider -> (2 * kk) + (2 * (max_len - kk)) + len

let lpk_len_ord_bound ~kk ~max_len =
  (2 * kk) + (2 * (max_len - kk)) + max_len + 1

let rank t ~max_len cls ~len ~secure =
  check_len ~max_len len;
  let s = if secure then 0 else 1 in
  let lbase = max_len + 1 in
  match t.lp with
  | Standard -> (
      let c = match cls with Customer -> 0 | Peer -> 1 | Provider -> 2 in
      match t.model with
      | Security_first -> ((((s * 3) + c) * lbase) + len)
      | Security_second -> ((((c * 2) + s) * lbase) + len)
      | Security_third -> ((((c * lbase) + len) * 2) + s))
  | Lp_k k -> (
      let kk = min k max_len in
      match t.model with
      | Security_first ->
          let z = lpk_len_ord_bound ~kk ~max_len in
          (s * z) + lpk_len_ord ~kk ~max_len cls len
      | Security_third -> (2 * lpk_len_ord ~kk ~max_len cls len) + s
      | Security_second -> (
          (* Fixed-length classes first (two ranks each: secure then
             insecure), then C>k, P>k, Provider blocks laid out as
             (secure?, len). *)
          let cc = lp_class t cls len in
          if cc < 2 * kk then (cc * 2) + s
          else begin
            let block =
              match cls with
              | Customer -> 0
              | Peer -> 1
              | Provider -> 2
            in
            (4 * kk) + (block * 2 * lbase) + (s * lbase) + len
          end))

let max_rank t ~max_len =
  let lbase = max_len + 1 in
  match t.lp with
  | Standard -> (
      match t.model with
      | Security_first | Security_second -> 6 * lbase
      | Security_third -> ((((2 * lbase) + max_len) * 2) + 1) + 1)
  | Lp_k k -> (
      let kk = min k max_len in
      let z = lpk_len_ord_bound ~kk ~max_len in
      match t.model with
      | Security_first -> 2 * z
      | Security_third -> 2 * z
      | Security_second -> (4 * kk) + (6 * lbase))

type policy = t

module Rank_table = struct
  (* Hoisted form of [rank] for the engine's inner loop.  For a fixed
     (policy, max_len), [rank] is piecewise affine in the length with a
     single breakpoint at [kk] (the Lp_k refinement limit; [max_len]
     itself under the Standard LP, i.e. no second piece): each of the six
     (class, security) combinations contributes one affine map per piece.
     We derive the 12 (multiplier, offset) entries by probing [rank] at
     the two ends of each piece, so the table is bit-identical to [rank]
     by construction — no second copy of the encoding formulas to drift.
     The hot-path lookup is then two array reads, one multiply and one
     add, with no variant dispatch or bounds checks. *)
  type t = {
    kk : int;  (* breakpoint: the "lo" piece covers len <= kk *)
    mul : int array;  (* 12 entries: j = 2*cls + sbit, + 6 when len > kk *)
    add : int array;
    max_len : int;
    max_rank : int;
  }

  let cls_of_code = function 0 -> Customer | 1 -> Peer | _ -> Provider

  let make policy ~max_len =
    if max_len < 1 then invalid_arg "Policy.Rank_table.make: max_len < 1";
    let kk =
      match policy.lp with Standard -> max_len | Lp_k k -> min k max_len
    in
    let mul = Array.make 12 0 and add = Array.make 12 0 in
    (* Fit mul.(j) * len + add.(j) to the piece [lo, hi] (inclusive, with
       1 <= lo <= hi <= max_len); a single-point piece gets slope 0. *)
    let fit cls_code sbit j lo hi =
      let r len =
        rank policy ~max_len (cls_of_code cls_code) ~len ~secure:(sbit = 0)
      in
      let m = if hi > lo then r (lo + 1) - r lo else 0 in
      mul.(j) <- m;
      add.(j) <- r lo - (m * lo)
    in
    for cls = 0 to 2 do
      for sbit = 0 to 1 do
        let j = (2 * cls) + sbit in
        fit cls sbit j 1 kk;
        if kk < max_len then fit cls sbit (j + 6) (kk + 1) max_len
        else begin
          (* One piece only: mirror it so the len <= kk test never picks
             an unfitted entry. *)
          mul.(j + 6) <- mul.(j);
          add.(j + 6) <- add.(j)
        end
      done
    done;
    { kk; mul; add; max_len; max_rank = max_rank policy ~max_len }

  let rank t ~cls_code ~len ~sbit =
    let j = (2 * cls_code) + sbit + if len <= t.kk then 0 else 6 in
    (Array.unsafe_get t.mul j * len) + Array.unsafe_get t.add j
end
