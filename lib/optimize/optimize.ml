module M = Metric.H_metric

type objective = [ `Lb | `Ub ]

let happy_with ?(objective = `Lb) g policy dep ~attacker ~dst =
  let outcome =
    Routing.Engine.compute g policy dep ~dst ~attacker:(Some attacker)
  in
  let counts = M.happy outcome in
  match objective with
  | `Lb -> counts.M.happy_lb
  | `Ub -> counts.M.happy_ub

type picks = {
  chosen : int array;
  requested : int;
  achieved : int;
  happy : int;
}

(* Enumerate k-subsets of [candidates], invoking [f] on each (as a list). *)
let iter_subsets candidates k f =
  let n = Array.length candidates in
  if k < 0 || k > n then
    invalid_arg
      (Printf.sprintf
         "Optimize.iter_subsets: k = %d out of range for %d candidates" k n);
  let rec go start chosen remaining =
    if remaining = 0 then f (List.rev chosen)
    else
      for i = start to n - remaining do
        go (i + 1) (candidates.(i) :: chosen) (remaining - 1)
      done
  in
  go 0 [] k

let deployment_of g chosen =
  Deployment.make ~n:(Topology.Graph.n g) ~full:(Array.of_list chosen) ()

let greedy ?objective g policy ~attacker ~dst ~k ~candidates =
  if k < 0 then
    invalid_arg (Printf.sprintf "Optimize.greedy: k = %d < 0" k);
  let in_chosen = Prelude.Bitset.create (Topology.Graph.n g) in
  let chosen = ref [] in
  let achieved = ref 0 in
  let best_count =
    ref (happy_with ?objective g policy (deployment_of g []) ~attacker ~dst)
  in
  (try
     for _ = 1 to k do
       let best_cand = ref None in
       Array.iter
         (fun c ->
           if not (Prelude.Bitset.mem in_chosen c) then begin
             let count =
               happy_with ?objective g policy
                 (deployment_of g (c :: !chosen))
                 ~attacker ~dst
             in
             match !best_cand with
             | Some (_, b) when count <= b -> ()
             | _ -> best_cand := Some (c, count)
           end)
         candidates;
       match !best_cand with
       | Some (c, count) ->
           Prelude.Bitset.add in_chosen c;
           chosen := c :: !chosen;
           incr achieved;
           best_count := count
       | None -> raise Exit (* candidates exhausted: stop early *)
     done
   with Exit -> ());
  {
    chosen = Array.of_list (List.rev !chosen);
    requested = k;
    achieved = !achieved;
    happy = !best_count;
  }

let exhaustive ?objective g policy ~attacker ~dst ~k ~candidates =
  let best = ref None in
  iter_subsets candidates k (fun subset ->
      let count =
        happy_with ?objective g policy (deployment_of g subset) ~attacker ~dst
      in
      match !best with
      | Some (_, b) when count <= b -> ()
      | _ -> best := Some (subset, count));
  match !best with
  | Some (subset, count) ->
      {
        chosen = Array.of_list subset;
        requested = k;
        achieved = List.length subset;
        happy = count;
      }
  | None ->
      (* iter_subsets yields at least one subset for every validated k. *)
      assert false

module Max_k = struct
  type step = {
    pick : int;
    gain : float;
    score : M.bounds;
    engine_evals : int;
    gain_evals : int;
  }

  type result = {
    chosen : int array;
    requested : int;
    achieved : int;
    baseline : M.bounds;
    score : M.bounds;
    steps : step array;
    engine_evals : int;
    gain_evals : int;
  }

  type fault = Trust_stale_gains | Flip_queue_priority

  let validate name g ?base ~pairs ~k ~candidates () =
    let n = Topology.Graph.n g in
    if k < 0 then
      invalid_arg (Printf.sprintf "Optimize.Max_k.%s: k = %d < 0" name k);
    if Array.length pairs = 0 then
      invalid_arg (Printf.sprintf "Optimize.Max_k.%s: empty pair set" name);
    Array.iter
      (fun c ->
        if c < 0 || c >= n then
          invalid_arg
            (Printf.sprintf
               "Optimize.Max_k.%s: candidate AS %d outside [0, %d)" name c n))
      candidates;
    match base with
    | Some b when Deployment.n b <> n ->
        invalid_arg
          (Printf.sprintf
             "Optimize.Max_k.%s: base deployment has %d ASes, graph has %d"
             name (Deployment.n b) n)
    | Some b -> b
    | None -> Deployment.empty n

  let obj objective (b : M.bounds) =
    match objective with `Lb -> b.M.lb | `Ub -> b.M.ub

  (* [dep] with AS [v] upgraded to Full (the greedy step). *)
  let add_full dep v =
    Deployment.of_modes
      (Array.init (Deployment.n dep) (fun u ->
           if u = v then Deployment.Full else Deployment.mode dep u))

  (* Distinct values in first-seen order (deterministic). *)
  let distinct xs =
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    Array.iter
      (fun x ->
        if not (Hashtbl.mem seen x) then begin
          Hashtbl.add seen x ();
          out := x :: !out
        end)
      xs;
    Array.of_list (List.rev !out)

  (* The specification greedy: from-scratch h_metric per candidate per
     round.  Optimizes [objective] of the pair-set bounds; gains are the
     same float subtraction CELF uses, and ties keep the earliest
     candidate position, so the two solvers are comparable bit-for-bit. *)
  let greedy ?pool ?(objective = `Lb) ?base g policy ~pairs ~k ~candidates =
    let base = validate "greedy" g ?base ~pairs ~k ~candidates () in
    let npairs = Array.length pairs in
    let in_chosen = Prelude.Bitset.create (Topology.Graph.n g) in
    let baseline = M.h_metric ?pool g policy base pairs in
    let engine_evals = ref npairs in
    let gain_evals = ref 0 in
    let cur_dep = ref base in
    let cur_score = ref baseline in
    let chosen = ref [] in
    let steps = ref [] in
    (try
       for _ = 1 to k do
         let round_engine = ref 0 in
         let round_gains = ref 0 in
         let best = ref None in
         Array.iter
           (fun c ->
             if not (Prelude.Bitset.mem in_chosen c) then begin
               let dep = add_full !cur_dep c in
               let s = M.h_metric ?pool g policy dep pairs in
               round_engine := !round_engine + npairs;
               incr round_gains;
               let gain = obj objective s -. obj objective !cur_score in
               match !best with
               | Some (bg, _, _, _) when Float.compare gain bg <= 0 -> ()
               | _ -> best := Some (gain, c, dep, s)
             end)
           candidates;
         engine_evals := !engine_evals + !round_engine;
         gain_evals := !gain_evals + !round_gains;
         match !best with
         | Some (gain, c, dep, s) ->
             Prelude.Bitset.add in_chosen c;
             chosen := c :: !chosen;
             cur_dep := dep;
             cur_score := s;
             steps :=
               {
                 pick = c;
                 gain;
                 score = s;
                 engine_evals = !round_engine;
                 gain_evals = !round_gains;
               }
               :: !steps
         | None -> raise Exit (* candidates exhausted: stop early *)
       done
     with Exit -> ());
    let steps = Array.of_list (List.rev !steps) in
    {
      chosen = Array.of_list (List.rev !chosen);
      requested = k;
      achieved = Array.length steps;
      baseline;
      score = !cur_score;
      steps;
      engine_evals = !engine_evals;
      gain_evals = !gain_evals;
    }

  (* ---- the CELF lazy greedy -------------------------------------- *)

  (* A queue entry remembers the deployment and score it was last
     evaluated against, so a re-score can carry the cache along the
     monotone chain from that deployment to the current prefix. *)
  type entry = {
    e_cand : int;
    e_pos : int;  (* position in [candidates]: the deterministic tiebreak *)
    mutable e_gain : float;
    mutable e_round : int;  (* number of picks made when last scored *)
    mutable e_dep : Deployment.t;
    mutable e_score : M.bounds;
  }

  (* Binary max-heap ordered by gain (desc), then candidate position
     (asc) — exactly the order in which the naive greedy would visit
     equal gains.  [flip] inverts the gain comparison (the
     Flip_queue_priority fault). *)
  module Heap = struct
    type t = { slots : entry option array; mutable size : int; flip : bool }

    let create capacity flip =
      { slots = Array.make (max 1 capacity) None; size = 0; flip }

    let get h i =
      match h.slots.(i) with
      | Some e -> e
      | None -> assert false

    let beats h a b =
      let c = Float.compare a.e_gain b.e_gain in
      if c <> 0 then if h.flip then c < 0 else c > 0
      else a.e_pos < b.e_pos

    let swap h i j =
      let tmp = h.slots.(i) in
      h.slots.(i) <- h.slots.(j);
      h.slots.(j) <- tmp

    let rec sift_up h i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if beats h (get h i) (get h parent) then begin
          swap h i parent;
          sift_up h parent
        end
      end

    let rec sift_down h i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let best = ref i in
      if l < h.size && beats h (get h l) (get h !best) then best := l;
      if r < h.size && beats h (get h r) (get h !best) then best := r;
      if !best <> i then begin
        swap h i !best;
        sift_down h !best
      end

    let push h e =
      h.slots.(h.size) <- Some e;
      h.size <- h.size + 1;
      sift_up h (h.size - 1)

    let pop h =
      if h.size = 0 then None
      else begin
        let top = get h 0 in
        h.size <- h.size - 1;
        h.slots.(0) <- h.slots.(h.size);
        h.slots.(h.size) <- None;
        if h.size > 0 then sift_down h 0;
        Some top
      end
  end

  let celf ?pool ?cache ?(objective = `Lb) ?base ?fault g policy ~pairs ~k
      ~candidates =
    let n = Topology.Graph.n g in
    let base = validate "celf" g ?base ~pairs ~k ~candidates () in
    let cache = match cache with Some c -> c | None -> M.Cache.create () in
    let ev = M.Evaluator.create ?pool ~cache g policy pairs in
    let attackers = distinct (Array.map (fun p -> p.M.attacker) pairs) in
    let dsts = distinct (Array.map (fun p -> p.M.dst) pairs) in
    let baseline = M.Evaluator.eval ev base in
    let engine_mark = ref (M.Evaluator.stats ev).M.Evaluator.computed in
    let gain_evals = ref 0 in
    let heap =
      Heap.create (Array.length candidates) (fault = Some Flip_queue_priority)
    in
    let in_chosen = Prelude.Bitset.create (Topology.Graph.n g) in
    let cur_dep = ref base in
    let cur_score = ref baseline in
    let picked = ref 0 in
    (* Score a candidate against the current prefix, carrying the cache
       along its monotone chain from wherever it was last scored. *)
    let rescore e =
      let d = add_full !cur_dep e.e_cand in
      if not (Deployment.equal e.e_dep d) then begin
        let cone =
          Routing.Incremental.compute g ~old_dep:e.e_dep ~new_dep:d ~dsts
        in
        ignore
          (M.Cache.carry cache policy g cone ~old_dep:e.e_dep ~new_dep:d
             ~attackers ~dsts
            : int)
      end;
      let s = M.Evaluator.eval ev d in
      incr gain_evals;
      e.e_gain <- obj objective s -. obj objective !cur_score;
      e.e_round <- !picked;
      e.e_dep <- d;
      e.e_score <- s
    in
    (* Initial scoring round: every candidate against [base]. *)
    Array.iteri
      (fun i c ->
        let d = add_full base c in
        let s = M.Evaluator.eval ev d in
        incr gain_evals;
        Heap.push heap
          {
            e_cand = c;
            e_pos = i;
            e_gain = obj objective s -. obj objective baseline;
            e_round = 0;
            e_dep = d;
            e_score = s;
          })
      candidates;
    (* The dirty-round guard.  H is not proven submodular: a pick can
       RAISE a queued candidate's gain (secure paths need contiguous
       Full segments, so candidates complement each other), and a grown
       gain hiding under a stale key is exactly what lazy popping would
       miss.  After picking [p] we therefore ask, with one dirty-cone
       computation, whether any queued gain can have changed at all.
       Every deployment either solver compares this round is a subset of
       "current prefix + every unchosen candidate Full", and the
       secure-perceivable cone only grows with the Full set — so if no
       pair is dirty under that dominating delta (candidates Full on
       both sides, only [p] changing), every pair value, hence every
       queued gain, is bit-unchanged.  Clean verdict: the queue order
       stays exact and laziness is sound.  Dirty verdict: all entries
       scored before this round are re-swept (through the evaluator, so
       a re-score still only pays for its own dirty cone).  This keeps
       CELF bit-identical to the naive greedy by construction; the
       optimize check pass holds it to that. *)
    let in_candidates = Prelude.Bitset.create n in
    Array.iter (fun c -> Prelude.Bitset.add in_candidates c) candidates;
    let gains_unchanged ~prefix pick =
      let old_modes =
        Array.init n (fun u ->
            if
              u <> pick
              && Prelude.Bitset.mem in_candidates u
              && not (Prelude.Bitset.mem in_chosen u)
            then Deployment.Full
            else Deployment.mode prefix u)
      in
      let new_modes = Array.copy old_modes in
      new_modes.(pick) <- Deployment.Full;
      let cone =
        Routing.Incremental.compute g
          ~old_dep:(Deployment.of_modes old_modes)
          ~new_dep:(Deployment.of_modes new_modes)
          ~dsts
      in
      Array.for_all
        (fun (p : M.pair) ->
          not
            (Routing.Incremental.dirty_pair cone ~attacker:p.M.attacker
               ~dst:p.M.dst))
        pairs
    in
    (* Entries scored before [suspect_from] picks were made may carry an
       underestimated gain; the sweep re-scores them all before any
       further selection (heap keys change, so it rebuilds the heap). *)
    let suspect_from = ref 0 in
    let sweep () =
      for i = 0 to heap.Heap.size - 1 do
        let e = Heap.get heap i in
        if
          e.e_round < !picked && not (Prelude.Bitset.mem in_chosen e.e_cand)
        then rescore e
      done;
      for i = (heap.Heap.size / 2) - 1 downto 0 do
        Heap.sift_down heap i
      done
    in
    (* Pop until the top is fresh for the current prefix; stale entries
       are re-scored and pushed back (unless the Trust_stale_gains fault
       is active, which selects them as-is — the planted bug the
       optimize check pass must catch). *)
    let rec settle () =
      match Heap.pop heap with
      | None -> None
      | Some e when Prelude.Bitset.mem in_chosen e.e_cand ->
          settle () (* duplicate candidate id already selected *)
      | Some e when e.e_round = !picked -> Some e
      | Some e when fault = Some Trust_stale_gains -> Some e
      | Some e ->
          rescore e;
          Heap.push heap e;
          settle ()
    in
    let steps = ref [] in
    (try
       for round = 1 to k do
         if
           !picked > 0
           && !suspect_from = !picked
           && fault <> Some Trust_stale_gains
         then sweep ();
         match settle () with
         | None -> raise Exit (* candidates exhausted: stop early *)
         | Some e ->
             let stale = e.e_round <> !picked in
             if stale then begin
               (* Trust_stale_gains selected an out-of-date entry: the
                  trajectory still needs the true score of the extended
                  prefix, but the (buggy) credited gain stays stale. *)
               let stale_gain = e.e_gain in
               rescore e;
               e.e_gain <- stale_gain
             end;
             let prefix = !cur_dep in
             Prelude.Bitset.add in_chosen e.e_cand;
             incr picked;
             cur_dep := e.e_dep;
             cur_score := e.e_score;
             if
               round < k
               && fault <> Some Trust_stale_gains
               && not (gains_unchanged ~prefix e.e_cand)
             then suspect_from := !picked;
             let computed = (M.Evaluator.stats ev).M.Evaluator.computed in
             let round_engine = computed - !engine_mark in
             engine_mark := computed;
             steps :=
               {
                 pick = e.e_cand;
                 gain = e.e_gain;
                 score = e.e_score;
                 engine_evals = round_engine;
                 gain_evals = 0;
               }
               :: !steps
       done
     with Exit -> ());
    (* Attribute candidate scorings to rounds after the fact: the heap
       interleaves them, so only the total is meaningful per round; the
       initial scoring round is charged to the first step. *)
    let steps = Array.of_list (List.rev !steps) in
    let total_gain_evals = !gain_evals in
    let steps =
      Array.mapi
        (fun i (s : step) ->
          if i = 0 then { s with gain_evals = total_gain_evals } else s)
        steps
    in
    {
      chosen = Array.map (fun s -> s.pick) steps;
      requested = k;
      achieved = Array.length steps;
      baseline;
      score = !cur_score;
      steps;
      engine_evals = (M.Evaluator.stats ev).M.Evaluator.computed;
      gain_evals = total_gain_evals;
    }
end

module Set_cover = struct
  type instance = { universe : int; sets : int list array }

  type built = {
    graph : Topology.Graph.t;
    dst : int;
    attacker : int;
    element_as : int array;
    set_as : int array;
  }

  let build inst =
    let w = Array.length inst.sets in
    (* Ids: dst = 0, attacker = 1, elements 2 .. universe+1, sets after.
       The attacker gets a lower id than any element's other neighbors so
       that deterministic lowest-next-hop tiebreaks also prefer it, as the
       reduction requires (our lower-bound semantics requires nothing). *)
    let dst = 0 and attacker = 1 in
    let element_as = Array.init inst.universe (fun i -> 2 + i) in
    let set_as = Array.init w (fun j -> 2 + inst.universe + j) in
    let edges = ref [] in
    (* The destination is a customer of every set AS. *)
    Array.iter
      (fun s -> edges := Topology.Graph.Customer_provider (dst, s) :: !edges)
      set_as;
    (* The attacker is a customer of every element AS. *)
    Array.iter
      (fun e ->
        edges := Topology.Graph.Customer_provider (attacker, e) :: !edges)
      element_as;
    (* Element i is a provider of set j iff i is in set j. *)
    Array.iteri
      (fun j elems ->
        List.iter
          (fun i ->
            edges :=
              Topology.Graph.Customer_provider (set_as.(j), element_as.(i))
              :: !edges)
          elems)
      inst.sets;
    let graph = Topology.Graph.of_edges ~n:(2 + inst.universe + w) !edges in
    { graph; dst; attacker; element_as; set_as }

  (* Covering with at most gamma sets is monotone in gamma, so clamping
     the budget into [0, w] decides the same question — and keeps
     iter_subsets' range validation out of callers' way. *)
  let clamp_gamma ~w gamma = min (max gamma 0) w

  let cover_exists inst ~gamma =
    let w = Array.length inst.sets in
    let gamma = clamp_gamma ~w gamma in
    let found = ref false in
    iter_subsets (Array.init w (fun j -> j)) gamma (fun subset ->
        if not !found then begin
          let covered = Array.make inst.universe false in
          List.iter
            (fun j -> List.iter (fun i -> covered.(i) <- true) inst.sets.(j))
            subset;
          if Array.for_all (fun c -> c) covered then found := true
        end);
    !found

  let security_achievable built ~gamma =
    let policy = Routing.Policy.make Routing.Policy.Security_third in
    let w = Array.length built.set_as in
    let gamma = clamp_gamma ~w gamma in
    let all_sources =
      Topology.Graph.n built.graph - 2 (* everyone but dst and attacker *)
    in
    let found = ref false in
    iter_subsets built.set_as gamma (fun subset ->
        if not !found then begin
          let full =
            Array.concat
              [ [| built.dst |]; built.element_as; Array.of_list subset ]
          in
          let dep = Deployment.make ~n:(Topology.Graph.n built.graph) ~full () in
          let happy =
            happy_with built.graph policy dep ~attacker:built.attacker
              ~dst:built.dst
          in
          if happy = all_sources then found := true
        end);
    !found
end
