let happy_with g policy dep ~attacker ~dst =
  let outcome =
    Routing.Engine.compute g policy dep ~dst ~attacker:(Some attacker)
  in
  (Metric.H_metric.happy outcome).happy_lb

(* Enumerate k-subsets of [candidates], invoking [f] on each (as a list). *)
let iter_subsets candidates k f =
  let n = Array.length candidates in
  let rec go start chosen remaining =
    if remaining = 0 then f (List.rev chosen)
    else
      for i = start to n - remaining do
        go (i + 1) (candidates.(i) :: chosen) (remaining - 1)
      done
  in
  if k >= 0 && k <= n then go 0 [] k

let deployment_of g chosen =
  Deployment.make ~n:(Topology.Graph.n g) ~full:(Array.of_list chosen) ()

let greedy g policy ~attacker ~dst ~k ~candidates =
  let chosen = ref [] in
  let best_count = ref (happy_with g policy (deployment_of g []) ~attacker ~dst) in
  for _ = 1 to k do
    let best_cand = ref None in
    Array.iter
      (fun c ->
        if not (List.mem c !chosen) then begin
          let count =
            happy_with g policy (deployment_of g (c :: !chosen)) ~attacker ~dst
          in
          match !best_cand with
          | Some (_, b) when count <= b -> ()
          | _ -> best_cand := Some (c, count)
        end)
      candidates;
    match !best_cand with
    | Some (c, count) ->
        chosen := c :: !chosen;
        best_count := count
    | None -> ()
  done;
  (Array.of_list (List.rev !chosen), !best_count)

let exhaustive g policy ~attacker ~dst ~k ~candidates =
  let best = ref ([||], -1) in
  iter_subsets candidates k (fun subset ->
      let count = happy_with g policy (deployment_of g subset) ~attacker ~dst in
      if count > snd !best then best := (Array.of_list subset, count));
  if snd !best < 0 then
    ([||], happy_with g policy (deployment_of g []) ~attacker ~dst)
  else !best

module Set_cover = struct
  type instance = { universe : int; sets : int list array }

  type built = {
    graph : Topology.Graph.t;
    dst : int;
    attacker : int;
    element_as : int array;
    set_as : int array;
  }

  let build inst =
    let w = Array.length inst.sets in
    (* Ids: dst = 0, attacker = 1, elements 2 .. universe+1, sets after.
       The attacker gets a lower id than any element's other neighbors so
       that deterministic lowest-next-hop tiebreaks also prefer it, as the
       reduction requires (our lower-bound semantics requires nothing). *)
    let dst = 0 and attacker = 1 in
    let element_as = Array.init inst.universe (fun i -> 2 + i) in
    let set_as = Array.init w (fun j -> 2 + inst.universe + j) in
    let edges = ref [] in
    (* The destination is a customer of every set AS. *)
    Array.iter
      (fun s -> edges := Topology.Graph.Customer_provider (dst, s) :: !edges)
      set_as;
    (* The attacker is a customer of every element AS. *)
    Array.iter
      (fun e ->
        edges := Topology.Graph.Customer_provider (attacker, e) :: !edges)
      element_as;
    (* Element i is a provider of set j iff i is in set j. *)
    Array.iteri
      (fun j elems ->
        List.iter
          (fun i ->
            edges :=
              Topology.Graph.Customer_provider (set_as.(j), element_as.(i))
              :: !edges)
          elems)
      inst.sets;
    let graph = Topology.Graph.of_edges ~n:(2 + inst.universe + w) !edges in
    { graph; dst; attacker; element_as; set_as }

  let cover_exists inst ~gamma =
    let w = Array.length inst.sets in
    let found = ref false in
    iter_subsets (Array.init w (fun j -> j)) gamma (fun subset ->
        if not !found then begin
          let covered = Array.make inst.universe false in
          List.iter
            (fun j -> List.iter (fun i -> covered.(i) <- true) inst.sets.(j))
            subset;
          if Array.for_all (fun c -> c) covered then found := true
        end);
    !found

  let security_achievable built ~gamma =
    let policy = Routing.Policy.make Routing.Policy.Security_third in
    let all_sources =
      Topology.Graph.n built.graph - 2 (* everyone but dst and attacker *)
    in
    let found = ref false in
    iter_subsets built.set_as gamma (fun subset ->
        if not !found then begin
          let full =
            Array.concat
              [ [| built.dst |]; built.element_as; Array.of_list subset ]
          in
          let dep = Deployment.make ~n:(Topology.Graph.n built.graph) ~full () in
          let happy =
            happy_with built.graph policy dep ~attacker:built.attacker
              ~dst:built.dst
          in
          if happy = all_sources then found := true
        end);
    !found
end
