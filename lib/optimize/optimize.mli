(** Max-k-Security (Section 5.1, Theorem 5.1, Appendix I).

    Given an attacker-destination pair, choose [k] ASes to secure so as to
    maximize the number of (definitely) happy sources.  The problem is
    NP-hard in all three routing models, so we provide a greedy heuristic
    and an exhaustive solver for small instances, plus the set-cover
    reduction of Appendix I as an executable construction. *)

val happy_with :
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attacker:int ->
  dst:int ->
  int
(** Number of definitely-happy sources (lower-bound semantics, matching
    the reduction's requirement that tied ASes prefer the attacker). *)

val greedy :
  Topology.Graph.t ->
  Routing.Policy.t ->
  attacker:int ->
  dst:int ->
  k:int ->
  candidates:int array ->
  int array * int
(** [greedy g policy ~attacker ~dst ~k ~candidates] adds, [k] times, the
    candidate whose securing most increases the happy count (first-found
    on ties; candidates already chosen are skipped).  Returns the chosen
    set and the resulting happy count. *)

val exhaustive :
  Topology.Graph.t ->
  Routing.Policy.t ->
  attacker:int ->
  dst:int ->
  k:int ->
  candidates:int array ->
  int array * int
(** Optimal solution by enumerating all k-subsets of [candidates]; only
    for small instances. *)

(** The reduction from Set Cover (Appendix I, Figure 18). *)
module Set_cover : sig
  type instance = { universe : int; sets : int list array }
  (** Elements are [0 .. universe-1]; [sets.(j)] lists the elements of
      subset j. *)

  type built = {
    graph : Topology.Graph.t;
    dst : int;
    attacker : int;
    element_as : int array;  (** AS id of each element *)
    set_as : int array;      (** AS id of each subset *)
  }

  val build : instance -> built
  (** The gadget: the destination is a customer of every set-AS, the
      attacker a customer of every element-AS, and element-AS [i] a
      provider of set-AS [j] iff element [i] belongs to subset [j]. *)

  val cover_exists : instance -> gamma:int -> bool
  (** Brute-force set cover decision (small instances only). *)

  val security_achievable : built -> gamma:int -> bool
  (** Does securing the destination, all element ASes, and [gamma] set
      ASes make {e every} source happy?  (Equivalent to the
      Dk-l-Security instance of Theorem I.1.)  Enumerates the gamma-subsets
      of set ASes; model-agnostic per the theorem, computed under
      security 3rd. *)
end
