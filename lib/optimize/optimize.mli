(** Max-k-Security (Section 5.1, Theorem 5.1, Appendix I).

    Given a set of (attacker, destination) pairs, choose [k] ASes to
    secure so as to maximize the H-metric over those pairs.  The problem
    is NP-hard in all three routing models (Theorem 5.1; {!Set_cover} is
    the Appendix-I reduction as an executable construction), so the
    practical solvers are greedy:

    - {!Max_k.greedy} — the naive full-re-eval greedy: every round
      rescores every remaining candidate from scratch.  Slow, but it is
      the specification.
    - {!Max_k.celf} — the CELF-style lazy greedy driven through
      {!Metric.H_metric.Evaluator} and the deployment-versioned
      {!Metric.H_metric.Cache}: marginal gains are dirty-cone deltas,
      stale gains sit in a max-priority queue and are re-evaluated only
      while the top entry is stale, and the monotone-chain cache is
      carried across the greedy trajectory via [Cache.carry].

    H is {e not} proven submodular, so CELF's lazy pruning is a
    heuristic, not a theorem: a stale gain may grow after an unrelated
    pick (secure paths need contiguous Full segments, so candidates can
    complement each other).  [Check.Optimize] therefore gates CELF
    behind a differential identity check against {!Max_k.greedy} on
    seeded instances — same pick sequence, bit-identical bounds — and
    the optimize bench refuses to report a speedup unless that gate
    passes on the benchmarked instance.

    The single-pair helpers ({!happy_with}, {!greedy}, {!exhaustive})
    remain for the reduction gadget and for exhaustive ground truth on
    tiny instances. *)

type objective = [ `Lb | `Ub ]
(** Which endpoint of the H-metric bounds an optimizer maximizes.
    [`Lb] (the default everywhere) optimizes the pessimistic-tiebreak
    world — the guaranteed-happy count the Appendix-I reduction is
    stated over; [`Ub] optimizes the optimistic world.  Each caller
    documents its choice; nothing silently collapses the interval. *)

val happy_with :
  ?objective:objective ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  attacker:int ->
  dst:int ->
  int
(** Happy-source count of one pair under [objective] (default [`Lb]:
    lower-bound semantics, matching the reduction's requirement that
    tied ASes prefer the attacker). *)

type picks = {
  chosen : int array;  (** the selected ASes, in pick order *)
  requested : int;  (** the [k] that was asked for *)
  achieved : int;  (** [Array.length chosen]; may be [< requested] *)
  happy : int;  (** happy-source count of the final selection *)
}
(** Result of the single-pair solvers.  [achieved < requested] means the
    solver ran out of fresh candidates and stopped early — callers must
    check rather than assume [k] picks were made. *)

val iter_subsets : int array -> int -> (int list -> unit) -> unit
(** [iter_subsets candidates k f] calls [f] on every [k]-subset of
    [candidates], in lexicographic position order.  Raises
    [Invalid_argument] (naming the offending [k] and [n]) when [k < 0]
    or [k > Array.length candidates] — it never silently yields
    nothing. *)

val greedy :
  ?objective:objective ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  attacker:int ->
  dst:int ->
  k:int ->
  candidates:int array ->
  picks
(** [greedy g policy ~attacker ~dst ~k ~candidates] adds, up to [k]
    times, the candidate whose securing most increases the happy count
    under [objective] (default [`Lb]); ties keep the earliest candidate
    position, and already-chosen candidates are skipped via an int
    bitset.  Stops early when candidates run out ([achieved] says how
    many picks were made).  Raises [Invalid_argument] when [k < 0] or a
    candidate id is outside the graph. *)

val exhaustive :
  ?objective:objective ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  attacker:int ->
  dst:int ->
  k:int ->
  candidates:int array ->
  picks
(** Optimal solution by enumerating all [k]-subsets of [candidates]
    (first-found on ties); only for small instances.  Optimizes
    [objective] (default [`Lb]).  Raises [Invalid_argument] via
    {!iter_subsets} when [k] is out of range. *)

(** Pair-set Max-k-Security over the full H-metric bounds. *)
module Max_k : sig
  type step = {
    pick : int;  (** the AS selected this round *)
    gain : float;  (** the marginal gain credited at selection time *)
    score : Metric.H_metric.bounds;  (** H over the prefix ending here *)
    engine_evals : int;  (** per-pair engine computations this round *)
    gain_evals : int;  (** candidate (re-)scorings this round *)
  }

  type result = {
    chosen : int array;  (** selected ASes, in pick order *)
    requested : int;
    achieved : int;  (** may be [< requested]: candidates ran out *)
    baseline : Metric.H_metric.bounds;  (** H of the base deployment *)
    score : Metric.H_metric.bounds;  (** H of the final selection *)
    steps : step array;  (** one per pick, in order *)
    engine_evals : int;  (** total per-pair engine computations, incl. baseline *)
    gain_evals : int;  (** total candidate scorings *)
  }

  (** Deliberate CELF bugs for the [Check.Optimize] false-negative
      guard: [Trust_stale_gains] selects a stale queue top without
      re-scoring it; [Flip_queue_priority] turns the max-heap into a
      min-heap.  Production callers never pass a fault. *)
  type fault = Trust_stale_gains | Flip_queue_priority

  val greedy :
    ?pool:Parallel.Pool.t ->
    ?objective:objective ->
    ?base:Deployment.t ->
    Topology.Graph.t ->
    Routing.Policy.t ->
    pairs:Metric.H_metric.pair array ->
    k:int ->
    candidates:int array ->
    result
  (** The specification greedy: each round rescores {e every} remaining
      candidate with a from-scratch {!Metric.H_metric.h_metric} (no
      cache) and picks the first strictly-best gain under [objective]
      (default [`Lb]).  [base] (default the empty deployment) is the
      starting deployment; picks are added to it as [Full].  A pick is
      made every round even when the best gain is zero — H under a
      growing deployment never loses, and a fixed-size answer is what
      Max-k asks for.  Stops early only when candidates run out.
      Raises [Invalid_argument] when [k < 0], [pairs] is empty, or
      [base] disagrees with the graph size. *)

  val celf :
    ?pool:Parallel.Pool.t ->
    ?cache:Metric.H_metric.Cache.t ->
    ?objective:objective ->
    ?base:Deployment.t ->
    ?fault:fault ->
    Topology.Graph.t ->
    Routing.Policy.t ->
    pairs:Metric.H_metric.pair array ->
    k:int ->
    candidates:int array ->
    result
  (** CELF lazy greedy.  Marginal gains live in a max-priority queue
      (gain descending, candidate position ascending on ties — the same
      tie order as {!greedy}); a popped entry whose gain is stale is
      re-scored against the current prefix and pushed back, and only a
      fresh top is selected.  Re-scoring goes through a single
      {!Metric.H_metric.Evaluator} whose cache ([cache] if given, else
      private) is carried along each candidate's monotone chain with
      [Cache.carry], so a re-score costs only the dirty-cone delta.
      Values are bit-identical to {!greedy}'s on every evaluated
      deployment (the evaluator guarantees this); the {e pick sequence}
      is only guaranteed to match where H behaves submodularly, which
      is what [Check.Optimize] verifies.  Raises like {!greedy}. *)
end

(** The reduction from Set Cover (Appendix I, Figure 18). *)
module Set_cover : sig
  type instance = { universe : int; sets : int list array }
  (** Elements are [0 .. universe-1]; [sets.(j)] lists the elements of
      subset j. *)

  type built = {
    graph : Topology.Graph.t;
    dst : int;
    attacker : int;
    element_as : int array;  (** AS id of each element *)
    set_as : int array;      (** AS id of each subset *)
  }

  val build : instance -> built
  (** The gadget: the destination is a customer of every set-AS, the
      attacker a customer of every element-AS, and element-AS [i] a
      provider of set-AS [j] iff element [i] belongs to subset [j]. *)

  val cover_exists : instance -> gamma:int -> bool
  (** Brute-force set cover decision (small instances only).  The budget
      is clamped to [[0, number of sets]] — covering with at most
      [gamma] sets is monotone in [gamma], so a budget beyond the clamp
      range decides the same question. *)

  val security_achievable : built -> gamma:int -> bool
  (** Does securing the destination, all element ASes, and [gamma] set
      ASes make {e every} source happy?  (Equivalent to the
      Dk-l-Security instance of Theorem I.1.)  Enumerates the
      gamma-subsets of set ASes ([gamma] clamped exactly as in
      {!cover_exists}); model-agnostic per the theorem, computed under
      security 3rd with [`Lb] semantics as the reduction requires. *)
end
