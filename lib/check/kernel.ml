module D = Diagnostic
module O = Routing.Outcome
module P = Routing.Policy
module E = Routing.Engine
module R = Routing.Reference
module S = Routing.Staged

let class_code out v =
  if v = O.dst out || Some v = O.attacker out then 3
  else
    match O.route_class out v with
    | P.Customer -> 0
    | P.Peer -> 1
    | P.Provider -> 2

(* First field-level disagreement as [(as_id, detail)], or None when the
   outcomes agree ([as_id] is -1 for a size mismatch).  [parents] is off
   when comparing against the staged specification, whose representative
   next hop is not part of its contract. *)
let mismatch_at ?(parents = true) ~want ~got () =
  let n = O.n want in
  if O.n got <> n then
    Some (-1, Printf.sprintf "outcome sizes differ (%d vs %d)" n (O.n got))
  else begin
    let res = ref None in
    let cell v name a b =
      if !res = None && a <> b then
        res := Some (v, Printf.sprintf "AS %d: %s %d/%d" v name a b)
    in
    let v = ref 0 in
    while !res = None && !v < n do
      let u = !v in
      let ra = O.reached want u and rb = O.reached got u in
      cell u "reached" (Bool.to_int ra) (Bool.to_int rb);
      if ra && rb then begin
        cell u "length" (O.length want u) (O.length got u);
        cell u "class" (class_code want u) (class_code got u);
        cell u "secure"
          (Bool.to_int (O.secure want u))
          (Bool.to_int (O.secure got u));
        cell u "to-d" (Bool.to_int (O.to_d want u)) (Bool.to_int (O.to_d got u));
        cell u "to-m" (Bool.to_int (O.to_m want u)) (Bool.to_int (O.to_m got u));
        if parents then cell u "next-hop" (O.next_hop want u) (O.next_hop got u)
      end;
      incr v
    done;
    !res
  end

let mismatch ?parents ~want ~got () =
  Option.map snd (mismatch_at ?parents ~want ~got ())

let tb_name = function E.Bounds -> "bounds" | E.Lowest_next_hop -> "lnh"

let analyze ?(attacker_claim = 1) g policies dep pairs =
  let ws = E.Workspace.create 0 in
  let rws = R.Workspace.create 0 in
  let items = ref 0 in
  let diags = ref [] in
  let report ~policy ~tiebreak ~dst ~attacker ~engine detail =
    let subjects = match attacker with None -> [ dst ] | Some m -> [ dst; m ] in
    let attacker_s =
      match attacker with
      | None -> "no attacker"
      | Some m -> Printf.sprintf "attacker %d" m
    in
    diags :=
      !diags
      @ [
          D.error ~rule:"kernel/divergence" ~subjects
            (Printf.sprintf
               "packed engine (%s) disagrees with %s [%s, %s tiebreak, dst \
                %d, %s, claim %d]: %s"
               (fst engine) (snd engine) (P.name policy) (tb_name tiebreak)
               dst attacker_s attacker_claim detail);
        ]
  in
  List.iter
    (fun policy ->
      Array.iter
        (fun (dst, attacker) ->
          List.iter
            (fun tiebreak ->
              let want =
                R.compute ~tiebreak ~attacker_claim ~ws:rws g policy dep ~dst
                  ~attacker
              in
              let check ~engine ?parents got =
                incr items;
                match mismatch ?parents ~want ~got () with
                | None -> ()
                | Some detail ->
                    report ~policy ~tiebreak ~dst ~attacker ~engine detail
              in
              check
                ~engine:("fresh buffers", "the reference kernel")
                (E.compute ~tiebreak ~attacker_claim g policy dep ~dst
                   ~attacker);
              (* The reused-workspace outcome is invalidated by the next
                 checkout from [ws], so it is compared eagerly. *)
              check
                ~engine:("reused workspace", "the reference kernel")
                (E.compute ~tiebreak ~attacker_claim ~ws g policy dep ~dst
                   ~attacker);
              match (policy.P.lp, tiebreak) with
              | P.Standard, E.Bounds when attacker_claim = 1 ->
                  (* The Appendix-B transcription only covers the Standard
                     LP model in Bounds mode with the paper's "m d" claim. *)
                  check
                    ~engine:("fresh buffers", "the staged specification")
                    ~parents:false
                    (S.compute g policy dep ~dst ~attacker)
              | _ -> ())
            [ E.Bounds; E.Lowest_next_hop ])
        pairs)
    policies;
  (!items, !diags)

module B = Routing.Batch

(* The scalar side of a divergence report, in the packed word's
   vocabulary so both lanes read alike. *)
let describe_scalar out v =
  if not (O.reached out v) then "unreached"
  else
    Printf.sprintf "cls=%d len=%d secure=%b to_d=%b to_m=%b next-hop=%d"
      (class_code out v) (O.length out v) (O.secure out v) (O.to_d out v)
      (O.to_m out v) (O.next_hop out v)

let describe_group b ~v ~lane =
  match B.group_of b ~v ~lane with
  | None -> "no group (lane unreached)"
  | Some (mask, word, parent) ->
      Printf.sprintf "group mask=%#x parent=%d %s" mask parent
        (E.Packed.describe word)

(* Batched-divergence sub-pass: every lane of every batched solve is
   decoded and compared field-by-field against a scalar Reference solve
   of the same (attacker, destination) pair.  A divergence pinpoints the
   first disagreeing AS by (destination, attacker-word, bit) and decodes
   both packed lanes — the batch side straight from its lane group, the
   scalar side from the reference outcome.

   [tamper ~lane got] mutates the decoded outcome before comparison;
   the false-negative mutants use it to emulate batch-kernel bugs
   (dropped tie flags, stale lanes) and prove this pass catches them. *)
let analyze_batch ?(attacker_claim = 1) ?tamper g policies dep batches =
  let bws = B.Workspace.create 0 in
  let rws = R.Workspace.create 0 in
  let items = ref 0 in
  let diags = ref [] in
  List.iter
    (fun policy ->
      Array.iteri
        (fun word_idx (dst, attackers) ->
          List.iter
            (fun tiebreak ->
              let b =
                B.compute ~tiebreak ~attacker_claim ~ws:bws g policy dep ~dst
                  ~attackers
              in
              Array.iteri
                (fun lane m ->
                  incr items;
                  let got = B.decode b ~lane in
                  (match tamper with Some f -> f ~lane got | None -> ());
                  let want =
                    R.compute ~tiebreak ~attacker_claim ~ws:rws g policy dep
                      ~dst ~attacker:(Some m)
                  in
                  match mismatch_at ~want ~got () with
                  | None -> ()
                  | Some (v, detail) ->
                      let lanes_detail =
                        if v < 0 then ""
                        else
                          Printf.sprintf "; batch lane: %s; scalar: %s"
                            (describe_group b ~v ~lane)
                            (describe_scalar want v)
                      in
                      diags :=
                        !diags
                        @ [
                            D.error ~rule:"kernel/batch-divergence"
                              ~subjects:[ dst; m ]
                              (Printf.sprintf
                                 "batched kernel diverges from the reference \
                                  kernel [%s, %s tiebreak, claim %d] at dst \
                                  %d, attacker word %d, bit %d (attacker \
                                  %d): %s%s"
                                 (P.name policy) (tb_name tiebreak)
                                 attacker_claim dst word_idx lane m detail
                                 lanes_detail);
                          ])
                attackers)
            [ E.Bounds; E.Lowest_next_hop ])
        batches)
    policies;
  (!items, !diags)
