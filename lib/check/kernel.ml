module D = Diagnostic
module O = Routing.Outcome
module P = Routing.Policy
module E = Routing.Engine
module R = Routing.Reference
module S = Routing.Staged

let class_code out v =
  if v = O.dst out || Some v = O.attacker out then 3
  else
    match O.route_class out v with
    | P.Customer -> 0
    | P.Peer -> 1
    | P.Provider -> 2

(* First field-level disagreement, or None when the outcomes agree.
   [parents] is off when comparing against the staged specification,
   whose representative next hop is not part of its contract. *)
let mismatch ?(parents = true) ~want ~got () =
  let n = O.n want in
  if O.n got <> n then
    Some (Printf.sprintf "outcome sizes differ (%d vs %d)" n (O.n got))
  else begin
    let res = ref None in
    let cell v name a b =
      if !res = None && a <> b then
        res := Some (Printf.sprintf "AS %d: %s %d/%d" v name a b)
    in
    let v = ref 0 in
    while !res = None && !v < n do
      let u = !v in
      let ra = O.reached want u and rb = O.reached got u in
      cell u "reached" (Bool.to_int ra) (Bool.to_int rb);
      if ra && rb then begin
        cell u "length" (O.length want u) (O.length got u);
        cell u "class" (class_code want u) (class_code got u);
        cell u "secure"
          (Bool.to_int (O.secure want u))
          (Bool.to_int (O.secure got u));
        cell u "to-d" (Bool.to_int (O.to_d want u)) (Bool.to_int (O.to_d got u));
        cell u "to-m" (Bool.to_int (O.to_m want u)) (Bool.to_int (O.to_m got u));
        if parents then cell u "next-hop" (O.next_hop want u) (O.next_hop got u)
      end;
      incr v
    done;
    !res
  end

let tb_name = function E.Bounds -> "bounds" | E.Lowest_next_hop -> "lnh"

let analyze ?(attacker_claim = 1) g policies dep pairs =
  let ws = E.Workspace.create 0 in
  let rws = R.Workspace.create 0 in
  let items = ref 0 in
  let diags = ref [] in
  let report ~policy ~tiebreak ~dst ~attacker ~engine detail =
    let subjects = match attacker with None -> [ dst ] | Some m -> [ dst; m ] in
    let attacker_s =
      match attacker with
      | None -> "no attacker"
      | Some m -> Printf.sprintf "attacker %d" m
    in
    diags :=
      !diags
      @ [
          D.error ~rule:"kernel/divergence" ~subjects
            (Printf.sprintf
               "packed engine (%s) disagrees with %s [%s, %s tiebreak, dst \
                %d, %s, claim %d]: %s"
               (fst engine) (snd engine) (P.name policy) (tb_name tiebreak)
               dst attacker_s attacker_claim detail);
        ]
  in
  List.iter
    (fun policy ->
      Array.iter
        (fun (dst, attacker) ->
          List.iter
            (fun tiebreak ->
              let want =
                R.compute ~tiebreak ~attacker_claim ~ws:rws g policy dep ~dst
                  ~attacker
              in
              let check ~engine ?parents got =
                incr items;
                match mismatch ?parents ~want ~got () with
                | None -> ()
                | Some detail ->
                    report ~policy ~tiebreak ~dst ~attacker ~engine detail
              in
              check
                ~engine:("fresh buffers", "the reference kernel")
                (E.compute ~tiebreak ~attacker_claim g policy dep ~dst
                   ~attacker);
              (* The reused-workspace outcome is invalidated by the next
                 checkout from [ws], so it is compared eagerly. *)
              check
                ~engine:("reused workspace", "the reference kernel")
                (E.compute ~tiebreak ~attacker_claim ~ws g policy dep ~dst
                   ~attacker);
              match (policy.P.lp, tiebreak) with
              | P.Standard, E.Bounds when attacker_claim = 1 ->
                  (* The Appendix-B transcription only covers the Standard
                     LP model in Bounds mode with the paper's "m d" claim. *)
                  check
                    ~engine:("fresh buffers", "the staged specification")
                    ~parents:false
                    (S.compute g policy dep ~dst ~attacker)
              | _ -> ())
            [ E.Bounds; E.Lowest_next_hop ])
        pairs)
    policies;
  (!items, !diags)
