(** Routing-state verifier — pass 2 of [sbgp check].

    Given any {!Routing.Engine.compute} result, re-derive every AS's best
    available route from first principles and confirm the recorded stable
    state, using {!Routing.Policy.compare_routes} (the literal decision
    process) rather than the engine's dense rank encoding — so a broken
    rank, a leaked export or a flipped tiebreak all surface here.

    Per AS, {!outcome} checks:
    - {b offers}: every fixed neighbor whose export policy Ex allows the
      announcement defines an offer [(class, length, security)] exactly as
      the engine's [expand] would have made it;
    - {b optimality}: the recorded route equals the best offer under the
      reference comparator ([route/suboptimal] when a better offer exists,
      [route/consistency] when the record claims a route no offer
      justifies, [route/missed] when reachability itself disagrees);
    - {b export compliance}: the recorded next hop is a real neighbor that
      was allowed to announce ([route/export]);
    - {b tiebreak semantics}: in [Bounds] mode the to-d/to-m flags are the
      union over all equally-best offers and the representative hop is the
      lowest-numbered one; in [Lowest_next_hop] mode all three come from
      that single hop ([route/tiebreak]);
    - {b secure-path containment}: a route marked secure implies the AS is
      [Full], the whole parent chain stays inside S, the origin signs, and
      no equally-best route passes the attacker ([route/secure]);
    - {b realizability}: the parent chain reaches the destination without
      cycles and its hop count reproduces the recorded (perceived) length,
      counting the attacker's fabricated edges ([route/path]).

    The theorem-level checks compare whole outcomes:
    - {!no_downgrade_sec1} — Theorem 3.1: under security 1st, no source
      with a secure route under normal conditions (whose normal route
      avoids the attacker) loses route security under attack;
    - {!sec3_monotone} — Theorem 6.1: under security 3rd, growing the
      deployment never makes a source less happy, in either tiebreak
      world. *)

val outcome :
  ?tiebreak:Routing.Engine.tiebreak ->
  ?attacker_claim:int ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  Routing.Outcome.t ->
  Diagnostic.t list
(** Verify one stable state.  [tiebreak] defaults to [Bounds] and
    [attacker_claim] to the length recorded at the attacker root (so
    outcomes computed with a non-default claim verify without extra
    plumbing); pass it explicitly to cross-check the root record too. *)

val no_downgrade_sec1 :
  normal:Routing.Outcome.t ->
  attacked:Routing.Outcome.t ->
  Diagnostic.t list
(** [normal] must be the attacker-free stable state and [attacked] the
    attacked one, both computed under a security-1st policy over the same
    graph and deployment. *)

val sec3_monotone :
  sub:Routing.Outcome.t -> super:Routing.Outcome.t -> Diagnostic.t list
(** [sub]/[super] are stable states for the same (attacker, destination)
    pair under deployments S ⊆ S', security 3rd.  Flags every source
    whose lower- or upper-bound happiness decreased. *)
