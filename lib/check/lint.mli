(** Topology / configuration linter — pass 1 of [sbgp check].

    Validates an AS graph (and optionally its tier classification) before
    any simulation runs on it.  Unlike {!Topology.Graph.of_edges}, which
    raises on the first malformed edge, the linter examines everything and
    returns one structured diagnostic per violated invariant, so a bad
    input file yields a complete report rather than a stack trace.

    Checks, with their rule ids:
    - raw edge lists ({!edges}): out-of-range endpoints
      ([topo/out-of-range]), self loops ([topo/self-loop]), duplicate
      edges ([topo/duplicate-edge]), conflicting relationships for a pair
      ([topo/relationship-conflict]);
    - built graphs ({!graph}): adjacency self loops and duplicates,
      table symmetry ([topo/asymmetric]), sortedness ([topo/unsorted],
      warning), cached edge counts ([topo/counts]), customer-to-provider
      acyclicity with the offending ASes ([topo/cp-cycle]), connectivity
      ([topo/disconnected], warning);
    - tier tables (via [?tiers]): every Table-1 degree constraint the
      classification guarantees — T1 providerless, T2/T3 with providers,
      small CPs peering, stubs customerless, stubs-x peering, SMDG with
      customers — plus membership/partition consistency ([topo/tier]);
    - IXP augmentation ({!ixp}): the augmented graph must preserve every
      original edge and relationship and add peer edges only
      ([topo/ixp]). *)

val edges : n:int -> Topology.Graph.edge list -> Diagnostic.t list
(** Lint a raw edge list before graph construction.  An empty result
    guarantees {!Topology.Graph.of_edges} will not raise on it. *)

val graph :
  ?tiers:Topology.Tiers.t -> Topology.Graph.t -> Diagnostic.t list
(** Lint a built graph, and its tier classification when given. *)

val ixp :
  base:Topology.Graph.t -> augmented:Topology.Graph.t -> Diagnostic.t list
(** Check that [augmented] is a well-formed IXP augmentation of [base]. *)
