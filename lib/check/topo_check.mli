(** Differential checks for the off-heap topology layer (rules
    [topo/csr-mismatch], [topo/snapshot], [topo/delta-divergence]):

    - the Bigarray CSR must agree with the adjacency-table accessors on
      every row segment;
    - a binary snapshot ({!Topology.Serial.save_snapshot}) must
      round-trip bit-identically, and a one-byte payload corruption must
      be rejected by the digest;
    - replaying a seeded chain of topology deltas (class flips plus a
      remove/re-add) through {!Metric.H_metric.Replay} must produce
      per-pair bounds bit-identical to from-scratch engine computation
      on every stepped graph. *)

val analyze :
  ?steps:int ->
  seed:int ->
  pairs:int ->
  Topology.Graph.t ->
  Routing.Policy.t list ->
  int * Diagnostic.t list
(** [analyze ~seed ~pairs g policies] returns (items covered,
    diagnostics).  [steps] (default 4) is the length of each policy's
    delta chain; [pairs] the number of sampled (attacker, destination)
    pairs whose bounds are compared at every step.  The delta-replay
    sub-pass needs [n >= 8]; below that only the CSR and snapshot gates
    run. *)
