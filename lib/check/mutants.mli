(** Mutant suite: deliberately broken inputs with known diagnoses.

    Each mutant plants one specific bug — a malformed topology, a
    corrupted stable state, a violated theorem precondition, a stale
    workspace — and records the rule id the checker must raise for it.
    The suite is the checker's own regression harness: a checker change
    that stops flagging any mutant is a false-negative regression, and
    [sbgp check --mutants] (plus the test suite) runs all of them. *)

type t = {
  name : string;
  expected_rule : string;  (** rule id that must appear in [run]'s output *)
  description : string;
  run : unit -> Diagnostic.t list;  (** build the artifact, run the pass *)
}

val all : t list

val detected : t -> bool
(** The mutant's diagnostics contain [expected_rule]. *)

val run_all : unit -> (t * bool) list
(** Every mutant with its detection status, in [all] order. *)

val report : unit -> Diagnostic.report
(** One pass entry per mutant class; an [Error] diagnostic (rule
    [check/false-negative]) for every undetected mutant, so a clean
    report means the checker catches the whole suite. *)
