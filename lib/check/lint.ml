module G = Topology.Graph
module Tiers = Topology.Tiers
module D = Diagnostic

(* Cap per-rule subject lists so a badly broken input stays readable. *)
let max_subjects = 8

let cap vs = if List.length vs <= max_subjects then vs else List.filteri (fun i _ -> i < max_subjects) vs

(* ------------------------------------------------------------------ *)
(* Raw edge lists                                                      *)
(* ------------------------------------------------------------------ *)

type rel = C2p_low_high | C2p_high_low | Peers

let edges ~n edge_list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let seen : (int * int, rel) Hashtbl.t = Hashtbl.create 64 in
  let endpoints = function
    | G.Customer_provider (c, p) -> (c, p)
    | G.Peer_peer (a, b) -> (a, b)
  in
  let rel_of a b = function
    | G.Peer_peer _ -> Peers
    | G.Customer_provider (c, _) ->
        if a < b then if c = a then C2p_low_high else C2p_high_low
        else if c = b then C2p_low_high
        else C2p_high_low
  in
  List.iter
    (fun e ->
      let a, b = endpoints e in
      if a < 0 || a >= n || b < 0 || b >= n then
        emit
          (D.error ~rule:"topo/out-of-range"
             ~subjects:(List.filter (fun v -> v < 0 || v >= n) [ a; b ])
             (Printf.sprintf "edge (%d, %d) outside [0, %d)" a b n))
      else if a = b then
        emit
          (D.error ~rule:"topo/self-loop" ~subjects:[ a ]
             (Printf.sprintf "self loop at AS %d" a))
      else begin
        let key = if a < b then (a, b) else (b, a) in
        let rel = rel_of (fst key) (snd key) e in
        match Hashtbl.find_opt seen key with
        | None -> Hashtbl.add seen key rel
        | Some prev when prev = rel ->
            emit
              (D.error ~rule:"topo/duplicate-edge"
                 ~subjects:[ fst key; snd key ]
                 (Printf.sprintf "edge (%d, %d) listed twice" (fst key)
                    (snd key)))
        | Some _ ->
            emit
              (D.error ~rule:"topo/relationship-conflict"
                 ~subjects:[ fst key; snd key ]
                 (Printf.sprintf
                    "pair (%d, %d) appears with two different relationships"
                    (fst key) (snd key)))
      end)
    edge_list;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Built graphs                                                        *)
(* ------------------------------------------------------------------ *)

let contains arr x = Array.exists (fun y -> y = x) arr

let table_diags g =
  let n = G.n g in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let self_loops = ref [] and dups = ref [] and unsorted = ref [] in
  let asym = ref [] and conflicts = ref [] in
  let scan v name table =
    let a = table v in
    let len = Array.length a in
    for i = 0 to len - 1 do
      if a.(i) = v then self_loops := (v, name) :: !self_loops;
      if i > 0 then begin
        if a.(i) = a.(i - 1) then dups := (v, name) :: !dups
        else if a.(i) < a.(i - 1) then unsorted := (v, name) :: !unsorted
      end
    done
  in
  for v = 0 to n - 1 do
    scan v "customers" (G.customers g);
    scan v "providers" (G.providers g);
    scan v "peers" (G.peers g);
    (* Symmetry: u in customers(v) <-> v in providers(u); peers mirror. *)
    Array.iter
      (fun u ->
        if u >= 0 && u < n && u <> v && not (contains (G.providers g u) v)
        then asym := (v, u, "customer") :: !asym)
      (G.customers g v);
    Array.iter
      (fun u ->
        if u >= 0 && u < n && u <> v && not (contains (G.customers g u) v)
        then asym := (v, u, "provider") :: !asym)
      (G.providers g v);
    Array.iter
      (fun u ->
        if u >= 0 && u < n && u <> v && not (contains (G.peers g u) v) then
          asym := (v, u, "peer") :: !asym)
      (G.peers g v);
    (* One pair, one relationship. *)
    Array.iter
      (fun u ->
        if contains (G.peers g v) u then conflicts := (v, u) :: !conflicts)
      (G.customers g v);
    Array.iter
      (fun u ->
        if contains (G.peers g v) u || contains (G.customers g v) u then
          conflicts := (v, u) :: !conflicts)
      (G.providers g v)
  done;
  let cmp_vn (v1, n1) (v2, n2) =
    match Int.compare v1 v2 with 0 -> String.compare n1 n2 | c -> c
  in
  let cmp_vuk (v1, u1, k1) (v2, u2, k2) =
    match Int.compare v1 v2 with
    | 0 -> (
        match Int.compare u1 u2 with 0 -> String.compare k1 k2 | c -> c)
    | c -> c
  in
  let cmp_vu (v1, u1) (v2, u2) =
    match Int.compare v1 v2 with 0 -> Int.compare u1 u2 | c -> c
  in
  List.iter
    (fun (v, name) ->
      emit
        (D.error ~rule:"topo/self-loop" ~subjects:[ v ]
           (Printf.sprintf "%s table of AS %d contains itself" name v)))
    (List.sort_uniq cmp_vn !self_loops);
  List.iter
    (fun (v, name) ->
      emit
        (D.error ~rule:"topo/duplicate-edge" ~subjects:[ v ]
           (Printf.sprintf "%s table of AS %d has a duplicate entry" name v)))
    (List.sort_uniq cmp_vn !dups);
  List.iter
    (fun (v, name) ->
      emit
        (D.warning ~rule:"topo/unsorted" ~subjects:[ v ]
           (Printf.sprintf "%s table of AS %d is not sorted ascending" name v)))
    (List.sort_uniq cmp_vn !unsorted);
  List.iter
    (fun (v, u, kind) ->
      emit
        (D.error ~rule:"topo/asymmetric" ~subjects:[ v; u ]
           (Printf.sprintf
              "AS %d lists AS %d as %s but the reverse table disagrees" v u
              kind)))
    (List.sort_uniq cmp_vuk !asym);
  List.iter
    (fun (v, u) ->
      emit
        (D.error ~rule:"topo/relationship-conflict" ~subjects:[ v; u ]
           (Printf.sprintf "pair (%d, %d) carries two relationships" v u)))
    (List.sort_uniq cmp_vu !conflicts);
  (* Cached counts. *)
  let c2p = ref 0 and p2p = ref 0 in
  for v = 0 to n - 1 do
    c2p := !c2p + Array.length (G.customers g v);
    p2p := !p2p + Array.length (G.peers g v)
  done;
  if G.num_customer_provider_edges g <> !c2p then
    emit
      (D.error ~rule:"topo/counts"
         (Printf.sprintf
            "cached customer-provider edge count %d, adjacency says %d"
            (G.num_customer_provider_edges g)
            !c2p));
  if G.num_peer_edges g * 2 <> !p2p then
    emit
      (D.error ~rule:"topo/counts"
         (Printf.sprintf "cached peer edge count %d, adjacency says %d"
            (G.num_peer_edges g) (!p2p / 2)));
  List.rev !diags

(* ASes left with positive in-degree by Kahn's algorithm sit on (or
   above) a customer-to-provider cycle. *)
let cycle_diags g =
  let n = G.n g in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- Array.length (G.customers g v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    Array.iter
      (fun p ->
        indeg.(p) <- indeg.(p) - 1;
        if indeg.(p) = 0 then Queue.add p queue)
      (G.providers g v)
  done;
  if !seen = n then []
  else begin
    let offenders = ref [] in
    for v = n - 1 downto 0 do
      if indeg.(v) > 0 then offenders := v :: !offenders
    done;
    [
      D.error ~rule:"topo/cp-cycle"
        ~subjects:(cap !offenders)
        (Printf.sprintf
           "customer-to-provider hierarchy has a cycle involving %d ASes"
           (List.length !offenders));
    ]
  end

let tier_diags g tiers =
  let n = G.n g in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let bad rule v msg = emit (D.error ~rule ~subjects:[ v ] msg) in
  for v = 0 to n - 1 do
    let cust = G.customer_degree g v in
    let peer = G.peer_degree g v in
    let prov = Array.length (G.providers g v) in
    match Tiers.tier_of tiers v with
    | Tiers.T1 ->
        if prov > 0 then
          bad "topo/tier" v
            (Printf.sprintf "Tier 1 AS %d has %d providers" v prov)
    | Tiers.T2 | Tiers.T3 ->
        if prov = 0 then
          bad "topo/tier" v
            (Printf.sprintf "Tier 2/3 AS %d has no providers" v)
    | Tiers.Small_cp ->
        if peer = 0 then
          bad "topo/tier" v
            (Printf.sprintf "small content provider %d has no peers" v)
    | Tiers.Stub ->
        if cust > 0 then
          bad "topo/tier" v
            (Printf.sprintf "stub AS %d has %d customers" v cust)
        else if peer > 0 then
          bad "topo/tier" v
            (Printf.sprintf "stub AS %d has %d peers (should be STUB-X)" v
               peer)
    | Tiers.Stub_x ->
        if cust > 0 then
          bad "topo/tier" v
            (Printf.sprintf "stub-x AS %d has %d customers" v cust)
        else if peer = 0 then
          bad "topo/tier" v
            (Printf.sprintf "stub-x AS %d has no peers (should be STUB)" v)
    | Tiers.Smdg ->
        if cust = 0 then
          bad "topo/tier" v
            (Printf.sprintf "SMDG AS %d has no customers (is a stub)" v)
    | Tiers.Cp -> ()
  done;
  (* Membership tables must partition [0, n) consistently with tier_of. *)
  let covered = Array.make n 0 in
  List.iter
    (fun tier ->
      Array.iter
        (fun v ->
          if v >= 0 && v < n then begin
            covered.(v) <- covered.(v) + 1;
            if Tiers.tier_of tiers v <> tier then
              bad "topo/tier" v
                (Printf.sprintf
                   "AS %d is in the %s member table but classified %s" v
                   (Tiers.tier_name tier)
                   (Tiers.tier_name (Tiers.tier_of tiers v)))
          end
          else bad "topo/tier" v "tier member table entry out of range")
        (Tiers.members tiers tier))
    Tiers.all_tiers;
  for v = 0 to n - 1 do
    if covered.(v) <> 1 then
      bad "topo/tier" v
        (Printf.sprintf "AS %d appears in %d tier member tables" v covered.(v))
  done;
  List.rev !diags

let graph ?tiers g =
  let structural = table_diags g @ cycle_diags g in
  let conn =
    if G.connected g then []
    else
      [
        D.warning ~rule:"topo/disconnected"
          "underlying undirected graph is disconnected";
      ]
  in
  let tier = match tiers with None -> [] | Some t -> tier_diags g t in
  structural @ conn @ tier

(* ------------------------------------------------------------------ *)
(* IXP augmentation                                                    *)
(* ------------------------------------------------------------------ *)

type pair_rel = R_c2p of int (* the customer *) | R_p2p

let edge_table g =
  let tbl = Hashtbl.create (G.num_customer_provider_edges g + G.num_peer_edges g) in
  List.iter
    (fun e ->
      match e with
      | G.Customer_provider (c, p) ->
          let key = if c < p then (c, p) else (p, c) in
          Hashtbl.replace tbl key (R_c2p c)
      | G.Peer_peer (a, b) ->
          let key = if a < b then (a, b) else (b, a) in
          Hashtbl.replace tbl key R_p2p)
    (G.edges g);
  tbl

let ixp ~base ~augmented =
  if G.n base <> G.n augmented then
    [
      D.error ~rule:"topo/ixp"
        (Printf.sprintf "augmentation changed the AS count (%d -> %d)"
           (G.n base) (G.n augmented));
    ]
  else begin
    let before = edge_table base and after = edge_table augmented in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    Hashtbl.iter
      (fun (a, b) rel ->
        match Hashtbl.find_opt after (a, b) with
        | Some rel' when rel = rel' -> ()
        | Some _ ->
            emit
              (D.error ~rule:"topo/ixp" ~subjects:[ a; b ]
                 (Printf.sprintf
                    "augmentation changed the relationship of pair (%d, %d)"
                    a b))
        | None ->
            emit
              (D.error ~rule:"topo/ixp" ~subjects:[ a; b ]
                 (Printf.sprintf "augmentation dropped edge (%d, %d)" a b)))
      before;
    Hashtbl.iter
      (fun (a, b) rel ->
        if not (Hashtbl.mem before (a, b)) then
          match rel with
          | R_p2p -> ()
          | R_c2p _ ->
              emit
                (D.error ~rule:"topo/ixp" ~subjects:[ a; b ]
                   (Printf.sprintf
                      "augmentation added non-peer edge (%d, %d)" a b)))
      after;
    List.rev !diags
  end
