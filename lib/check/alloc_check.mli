(** Runtime allocation gate (`sbgp check --alloc`).

    Measures [Gc.minor_words] per (destination, attacker) pair for the
    scalar, batched and reference kernels with reused workspaces, and
    compares against recorded budgets; every measured loop is
    identity-gated against fresh-buffer computation, and a cold-vs-warm
    probe of the shared metric cache demands bit-identical [H].  This is
    the dynamic complement of the static ast/hot-alloc and
    ast/cache-pure rules: it covers inlining, unboxing and
    reference-elimination effects the typed-AST walk cannot see
    (DESIGN.md §16).

    Rules: [alloc/minor-budget], [alloc/identity],
    [alloc/cache-consistency]. *)

type budgets = { scalar : float; batch : float; reference : float }

val default_budgets : budgets
(** Minor words per pair ([scalar], [batch]) and per pair per AS
    ([reference] — the list-based reference kernel allocates O(n) per
    pair by design, so only the normalized rate is scale-free), with
    ~2x headroom over the measured steady state. *)

val budgets : unit -> budgets
(** {!default_budgets} with [SBGP_ALLOC_BUDGET_SCALAR], [_BATCH] and
    [_REFERENCE] environment overrides applied (positive floats;
    malformed values fall back to the default). *)

val analyze :
  ?budgets:budgets ->
  ?pairs:int ->
  ?tamper:(unit -> unit) ->
  ?taint:(Metric.H_metric.bounds -> Metric.H_metric.bounds) ->
  seed:int ->
  Topology.Graph.t ->
  Routing.Policy.t list ->
  int * Diagnostic.t list
(** [analyze ~seed g policies] returns [(items, diags)].  Runs
    single-domain; the first policy drives the measurement.  [tamper] is
    invoked once per measured scalar pair and [taint] rewrites the warm
    cache-probe result — both exist for the false-negative mutants. *)
