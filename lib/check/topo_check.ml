(* Differential checks for the off-heap topology layer (PR 9):

   - the Bigarray CSR and the adjacency-table accessors must describe
     the same graph (they are two lazily-materialized views of one
     value; a divergence means one materialization path is wrong);
   - a binary snapshot must round-trip bit-identically, and a corrupted
     payload must be rejected (the digest gate actually fires);
   - replaying a seeded chain of topology deltas through
     {!Metric.H_metric.Replay} must be bit-identical to from-scratch
     pair bounds on every stepped graph — the dirty-cone influence test
     may only skip work, never change results. *)

module D = Diagnostic
module G = Topology.Graph
module M = Metric.H_metric

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ---- CSR vs adjacency tables ------------------------------------- *)

let csr_pass g =
  let n = G.n g in
  let c = G.csr g in
  let xs = c.G.Csr.xs and adj = c.G.Csr.adj in
  let diags = ref [] in
  let bad v msg =
    diags := !diags @ [ D.error ~rule:"topo/csr-mismatch" ~subjects:[ v ] msg ]
  in
  let seg lo hi = Array.init (hi - lo) (fun i -> adj.{lo + i}) in
  for v = 0 to n - 1 do
    let check_seg name table lo hi =
      if table <> seg lo hi then
        bad v
          (Printf.sprintf
             "CSR %s segment [%d, %d) disagrees with the adjacency table"
             name lo hi)
    in
    check_seg "customer" (G.customers g v) xs.{3 * v} xs.{(3 * v) + 1};
    check_seg "peer" (G.peers g v) xs.{(3 * v) + 1} xs.{(3 * v) + 2};
    check_seg "provider" (G.providers g v) xs.{(3 * v) + 2} xs.{(3 * v) + 3}
  done;
  (n, !diags)

(* ---- Snapshot round-trip ------------------------------------------ *)

let graphs_identical a b =
  let ints_equal (x : G.ints) (y : G.ints) =
    Bigarray.Array1.dim x = Bigarray.Array1.dim y
    &&
    let ok = ref true in
    for i = 0 to Bigarray.Array1.dim x - 1 do
      if x.{i} <> y.{i} then ok := false
    done;
    !ok
  in
  let ca = G.csr a and cb = G.csr b in
  G.n a = G.n b
  && G.num_customer_provider_edges a = G.num_customer_provider_edges b
  && G.num_peer_edges a = G.num_peer_edges b
  && ints_equal ca.G.Csr.xs cb.G.Csr.xs
  && ints_equal ca.G.Csr.adj cb.G.Csr.adj

let with_temp_snapshot f =
  let path = Filename.temp_file "sbgp-check" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let snapshot_pass g =
  let diags = ref [] in
  let fail msg =
    diags := !diags @ [ D.error ~rule:"topo/snapshot" msg ]
  in
  with_temp_snapshot (fun path ->
      Topology.Serial.save_snapshot path g;
      (match Topology.Serial.load_snapshot path with
      | g' ->
          if not (graphs_identical g g') then
            fail "snapshot round-trip is not bit-identical to the source graph"
      | exception Failure msg ->
          fail ("snapshot round-trip failed to load: " ^ msg));
      (* The digest must catch payload corruption: flip one byte past the
         header and demand a load failure. *)
      let size = (Unix.stat path).Unix.st_size in
      if size > Topology.Serial.snapshot_payload_offset then begin
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let pos = Topology.Serial.snapshot_payload_offset in
            ignore (Unix.lseek fd pos Unix.SEEK_SET);
            let b = Bytes.create 1 in
            ignore (Unix.read fd b 0 1);
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
            ignore (Unix.lseek fd pos Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1));
        match Topology.Serial.load_snapshot path with
        | _ -> fail "corrupted snapshot payload loaded without a digest error"
        | exception Failure _ -> ()
      end);
  (2, !diags)

(* ---- Delta replay vs scratch -------------------------------------- *)

(* Deterministic mixed deployment (the same shape check.ml uses; kept
   local so this module stays self-contained). *)
let dep_mixed n =
  Deployment.of_modes
    (Array.init n (fun v ->
         match v mod 5 with
         | 0 | 1 -> Deployment.Full
         | 2 -> Deployment.Simplex
         | _ -> Deployment.Off))

let sample_pairs rng n k =
  Array.init k (fun _ ->
      let dst = Rng.int rng n in
      let attacker = (dst + 1 + Rng.int rng (n - 1)) mod n in
      { M.attacker; dst })

(* One step's delta against the current graph: flip the class of a few
   seeded edges (customer-provider <-> peer), plus one remove/re-add
   pair across consecutive steps so every [Delta.op] constructor is
   exercised.  Flips of either direction are legal deltas; the replay
   identity does not assume an acyclic hierarchy. *)
let flip_of = function
  | G.Customer_provider (c, p) -> G.Peer_peer (min c p, max c p)
  | G.Peer_peer (a, b) -> G.Customer_provider (a, b)

let step_delta rng g ~removed =
  let edges = Array.of_list (G.edges g) in
  let ops = ref [] in
  let used = Hashtbl.create 8 in
  let ends = function
    | G.Customer_provider (c, p) -> (min c p, max c p)
    | G.Peer_peer (a, b) -> (a, b)
  in
  let claim e =
    let k = ends e in
    if Hashtbl.mem used k then false
    else begin
      Hashtbl.replace used k ();
      true
    end
  in
  let flips = min 3 (Array.length edges) in
  for _ = 1 to flips do
    let e = edges.(Rng.int rng (Array.length edges)) in
    if claim e then ops := G.Delta.Flip (flip_of e) :: !ops
  done;
  (match !removed with
  | Some e when claim e ->
      ops := G.Delta.Add e :: !ops;
      removed := None
  | _ ->
      let e = edges.(Rng.int rng (Array.length edges)) in
      if claim e then begin
        ops := G.Delta.Remove e :: !ops;
        removed := Some e
      end);
  Array.of_list (List.rev !ops)

let delta_pass ~seed ~pairs ~steps g policies =
  let n = G.n g in
  let items = ref 0 in
  let diags = ref [] in
  if n >= 8 && pairs > 0 then begin
    let rng = Rng.create seed in
    let ps = sample_pairs rng n pairs in
    let dep = dep_mixed n in
    List.iter
      (fun policy ->
        let rng = Rng.create (seed + 7) in
        let rp = M.Replay.create g policy dep ps in
        ignore (M.Replay.eval rp);
        let removed = ref None in
        for step = 1 to steps do
          let delta = step_delta rng (M.Replay.graph rp) ~removed in
          ignore (M.Replay.step rp delta);
          let g' = M.Replay.graph rp in
          let vals = M.Replay.values rp in
          let ws = Routing.Engine.Workspace.local () in
          Array.iteri
            (fun i p ->
              incr items;
              let want = M.pair_bounds ~ws g' policy dep p in
              let got = vals.(i) in
              if
                not
                  (bits_equal want.M.lb got.M.lb
                  && bits_equal want.M.ub got.M.ub)
              then
                diags :=
                  !diags
                  @ [
                      D.error ~rule:"topo/delta-divergence"
                        ~subjects:[ p.M.attacker; p.M.dst ]
                        (Printf.sprintf
                           "policy %s, delta step %d: replay bounds [%.17g, \
                            %.17g] differ from scratch [%.17g, %.17g] for \
                            pair (m=%d, d=%d)"
                           (Routing.Policy.name policy)
                           step got.M.lb got.M.ub want.M.lb want.M.ub
                           p.M.attacker p.M.dst);
                    ])
            ps
        done)
      policies
  end;
  (!items, !diags)

let analyze ?(steps = 4) ~seed ~pairs g policies =
  let citems, cdiags = csr_pass g in
  let sitems, sdiags = snapshot_pass g in
  let ditems, ddiags = delta_pass ~seed ~pairs ~steps g policies in
  (citems + sitems + ditems, cdiags @ sdiags @ ddiags)
