module D = Diagnostic
module O = Routing.Outcome
module E = Routing.Engine

type config = { domains : int; reuse_ws : bool }

let baseline = { domains = 1; reuse_ws = false }

let pp_config c =
  Printf.sprintf "{domains=%d; ws=%s}" c.domains
    (if c.reuse_ws then "reuse" else "fresh")

let same_config a b = a.domains = b.domains && a.reuse_ws = b.reuse_ws

let default_configs () =
  let w = max 2 (min 4 (Parallel.default_domains ())) in
  [
    baseline;
    { domains = 1; reuse_ws = true };
    { domains = w; reuse_ws = false };
    { domains = w; reuse_ws = true };
  ]

(* 3 for the roots, which carry no neighbor route class. *)
let class_code out v =
  if not (O.reached out v) then -1
  else if v = O.dst out || Some v = O.attacker out then 3
  else
    match O.route_class out v with
    | Routing.Policy.Customer -> 0
    | Routing.Policy.Peer -> 1
    | Routing.Policy.Provider -> 2

let digest out =
  let h = ref 0x1000193 in
  let mix x = h := (((!h * 0x100000001b3) lxor x) + 0x2545f49) land max_int in
  let n = O.n out in
  mix n;
  mix (O.dst out);
  (match O.attacker out with None -> mix (-2) | Some m -> mix m);
  for v = 0 to n - 1 do
    mix (Bool.to_int (O.reached out v));
    mix (class_code out v);
    mix (O.length out v);
    mix (Bool.to_int (O.secure out v));
    mix (Bool.to_int (O.to_d out v));
    mix (Bool.to_int (O.to_m out v));
    mix (O.next_hop out v)
  done;
  !h

let run_config ~compute g policy dep pairs cfg =
  let worker (dst, attacker) =
    let ws = if cfg.reuse_ws then Some (E.Workspace.local ()) else None in
    digest (compute ~ws g policy dep ~dst ~attacker)
  in
  if cfg.domains <= 1 then Array.map worker pairs
  else begin
    let pool = Parallel.Pool.create ~domains:cfg.domains () in
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () -> Parallel.Pool.map pool worker pairs)
  end

(* First field-level disagreement between two live outcomes. *)
let diff_fields ~want ~got =
  let n = O.n want in
  if O.n got <> n then
    Printf.sprintf "; outcome sizes differ (%d vs %d)" n (O.n got)
  else begin
    let res = ref "" in
    (try
       for v = 0 to n - 1 do
         if !res = "" then begin
           let fields =
             [
               ("reached", Bool.to_int (O.reached want v),
                Bool.to_int (O.reached got v));
               ("class", class_code want v, class_code got v);
               ("length", O.length want v, O.length got v);
               ("secure", Bool.to_int (O.secure want v),
                Bool.to_int (O.secure got v));
               ("to-d", Bool.to_int (O.to_d want v),
                Bool.to_int (O.to_d got v));
               ("to-m", Bool.to_int (O.to_m want v),
                Bool.to_int (O.to_m got v));
               ("next-hop", O.next_hop want v, O.next_hop got v);
             ]
           in
           match List.filter (fun (_, a, b) -> a <> b) fields with
           | [] -> ()
           | bad ->
               res :=
                 Printf.sprintf "; first field mismatch at AS %d: %s" v
                   (String.concat ", "
                      (List.map
                         (fun (name, a, b) ->
                           Printf.sprintf "%s %d/%d" name a b)
                         bad))
         end
       done
     with exn ->
       res :=
         Printf.sprintf "; field replay failed: %s" (Printexc.to_string exn));
    !res
  end

(* Sequential re-run of the whole prefix up to pair [i], so that
   history-dependent bugs (stale workspace state) reproduce.  Only
   meaningful when [cfg.domains = 1] — a parallel schedule cannot be
   replayed faithfully here. *)
let replay_detail ~compute g policy dep pairs cfg i =
  if cfg.domains <> 1 then ""
  else begin
    let detail = ref "" in
    (try
       for j = 0 to i do
         let dst, attacker = pairs.(j) in
         let ws =
           if cfg.reuse_ws then Some (E.Workspace.local ()) else None
         in
         let got = compute ~ws g policy dep ~dst ~attacker in
         if j = i then begin
           (* [want] is freshly allocated, so both outcomes are live. *)
           let want = compute ~ws:None g policy dep ~dst ~attacker in
           detail := diff_fields ~want ~got
         end
       done
     with exn ->
       detail := Printf.sprintf "; replay failed: %s" (Printexc.to_string exn));
    !detail
  end

let analyze ?(tiebreak = E.Bounds) ?attacker_claim
    ?(configs = default_configs ()) ?compute g policy dep pairs =
  let compute =
    match compute with
    | Some f -> f
    | None ->
        fun ~ws g policy dep ~dst ~attacker ->
          E.compute ~tiebreak ?attacker_claim ?ws g policy dep ~dst ~attacker
  in
  if Array.length pairs = 0 then []
  else begin
    let configs =
      if List.exists (same_config baseline) configs then configs
      else baseline :: configs
    in
    let base = run_config ~compute g policy dep pairs baseline in
    let diags = ref [] in
    List.iter
      (fun cfg ->
        if not (same_config cfg baseline) then begin
          let got = run_config ~compute g policy dep pairs cfg in
          let first = ref (-1) in
          let count = ref 0 in
          Array.iteri
            (fun i h ->
              if h <> base.(i) then begin
                incr count;
                if !first < 0 then first := i
              end)
            got;
          if !count > 0 then begin
            let i = !first in
            let dst, att = pairs.(i) in
            let subjects =
              match att with None -> [ dst ] | Some m -> [ dst; m ]
            in
            let attacker_s =
              match att with
              | None -> "no attacker"
              | Some m -> Printf.sprintf "attacker %d" m
            in
            diags :=
              !diags
              @ [
                  D.error ~rule:"det/divergence" ~subjects
                    (Printf.sprintf
                       "config %s diverges from baseline %s on %d of %d \
                        pairs; first at pair %d (dst %d, %s)%s"
                       (pp_config cfg) (pp_config baseline) !count
                       (Array.length pairs) i dst attacker_s
                       (replay_detail ~compute g policy dep pairs cfg i));
                ]
          end
        end)
      configs;
    !diags
  end
