module D = Diagnostic
module G = Topology.Graph
module P = Routing.Policy
module E = Routing.Engine
module O = Routing.Outcome

let sec1 = P.make P.Security_first
let sec3 = P.make P.Security_third

(* ---- topology mutants -------------------------------------------- *)

let self_loop () =
  (* AS 0 peers with itself. *)
  let g =
    G.unsafe_of_adjacency
      ~customers:[| [||]; [||] |]
      ~providers:[| [||]; [||] |]
      ~peers:[| [| 0; 1 |]; [| 0 |] |]
  in
  Lint.graph g

let duplicate_edge () =
  (* The peer edge 0-1 appears twice in AS 0's table. *)
  let g =
    G.unsafe_of_adjacency
      ~customers:[| [||]; [||] |]
      ~providers:[| [||]; [||] |]
      ~peers:[| [| 1; 1 |]; [| 0 |] |]
  in
  Lint.graph g

let asymmetric () =
  (* AS 1 lists 0 as a customer, but 0 does not list 1 as a provider. *)
  let g =
    G.unsafe_of_adjacency
      ~customers:[| [||]; [| 0 |] |]
      ~providers:[| [||]; [||] |]
      ~peers:[| [||]; [||] |]
  in
  Lint.graph g

let relationship_conflict () =
  Lint.edges ~n:2
    [ G.Customer_provider (0, 1); G.Peer_peer (0, 1) ]

let cp_cycle () =
  (* 0 pays 1 pays 2 pays 0: a money loop of_edges accepts happily. *)
  let g =
    G.of_edges ~n:3
      [
        G.Customer_provider (0, 1);
        G.Customer_provider (1, 2);
        G.Customer_provider (2, 0);
      ]
  in
  Lint.graph g

let tier_mismatch () =
  (* Classify one graph, lint another: AS 0 is a stub in the first but
     has a customer in the second. *)
  let g1 = G.of_edges ~n:2 [ G.Customer_provider (0, 1) ] in
  let g2 = G.of_edges ~n:2 [ G.Customer_provider (1, 0) ] in
  let tiers = Topology.Tiers.classify g1 in
  Lint.graph ~tiers g2

let ixp_non_peer () =
  (* The "augmentation" slips in a customer-provider edge. *)
  let base = G.of_edges ~n:3 [ G.Peer_peer (0, 1) ] in
  let augmented =
    G.of_edges ~n:3 [ G.Peer_peer (0, 1); G.Customer_provider (2, 0) ]
  in
  Lint.ixp ~base ~augmented

(* ---- routing-state mutants --------------------------------------- *)

let verify g out = Verify.outcome g sec3 (Deployment.empty (G.n g)) out

let tiebreak_flip () =
  (* Diamond: AS 3 has equally-best provider routes via 1 and 2; the
     representative next hop must be the lowest (1), the mutant picks 2. *)
  let g =
    G.of_edges ~n:4
      [
        G.Customer_provider (1, 0);
        G.Customer_provider (2, 0);
        G.Customer_provider (3, 1);
        G.Customer_provider (3, 2);
      ]
  in
  let out = E.compute g sec3 (Deployment.empty 4) ~dst:0 ~attacker:None in
  O.fix out 3 ~cls:P.Provider ~len:2 ~secure:false ~to_d:true ~to_m:false
    ~parent:2;
  verify g out

let export_leak () =
  (* AS 1 holds a peer route, which it must not export to its peer 2;
     the mutant routes 2 through 1 anyway. *)
  let g =
    G.of_edges ~n:3
      [
        G.Peer_peer (0, 1);
        G.Customer_provider (2, 0);
        G.Peer_peer (1, 2);
      ]
  in
  let out = E.compute g sec3 (Deployment.empty 3) ~dst:0 ~attacker:None in
  O.fix out 2 ~cls:P.Peer ~len:2 ~secure:false ~to_d:true ~to_m:false
    ~parent:1;
  verify g out

let suboptimal () =
  (* AS 2 has a direct customer route but the mutant records the longer
     peer route via 1. *)
  let g =
    G.of_edges ~n:3
      [
        G.Customer_provider (0, 1);
        G.Peer_peer (1, 2);
        G.Customer_provider (0, 2);
      ]
  in
  let out = E.compute g sec3 (Deployment.empty 3) ~dst:0 ~attacker:None in
  O.fix out 2 ~cls:P.Peer ~len:2 ~secure:false ~to_d:true ~to_m:false
    ~parent:1;
  verify g out

let secure_outside_s () =
  (* Nobody deploys S*BGP, yet AS 1's route claims to be secure. *)
  let g = G.of_edges ~n:2 [ G.Customer_provider (1, 0) ] in
  let out = E.compute g sec3 (Deployment.empty 2) ~dst:0 ~attacker:None in
  O.fix out 1 ~cls:P.Provider ~len:1 ~secure:true ~to_d:true ~to_m:false
    ~parent:0;
  verify g out

(* ---- theorem mutants --------------------------------------------- *)

let sec1_downgrade () =
  (* Security 3rd lets the shorter bogus route beat AS 3's secure
     customer route — feeding those outcomes to the Theorem 3.1 checker
     must flag the downgrade. *)
  let g =
    G.of_edges ~n:5
      [
        G.Customer_provider (0, 1);
        G.Customer_provider (1, 2);
        G.Customer_provider (2, 3);
        G.Customer_provider (4, 3);
      ]
  in
  let dep = Deployment.make ~n:5 ~full:[| 0; 1; 2; 3 |] () in
  let normal = E.compute g sec3 dep ~dst:0 ~attacker:None in
  let attacked =
    E.compute ~attacker_claim:1 g sec3 dep ~dst:0 ~attacker:(Some 4)
  in
  Verify.no_downgrade_sec1 ~normal ~attacked

let sec3_nonmonotone () =
  (* Under security 1st, securing {2, 3} flips AS 2 onto a secure
     provider route that is no longer exported to its peer 4, so AS 4
     falls to the bogus route — growing S made it unhappy, which the
     Theorem 6.1 checker must flag. *)
  let g =
    G.of_edges ~n:6
      [
        G.Customer_provider (0, 1);
        G.Customer_provider (1, 2);
        G.Customer_provider (0, 3);
        G.Customer_provider (2, 3);
        G.Peer_peer (2, 4);
        G.Peer_peer (4, 5);
      ]
  in
  let dep_sub = Deployment.make ~n:6 ~full:[| 0 |] () in
  let dep_super = Deployment.make ~n:6 ~full:[| 0; 2; 3 |] () in
  let sub =
    E.compute ~attacker_claim:3 g sec1 dep_sub ~dst:0 ~attacker:(Some 5)
  in
  let super =
    E.compute ~attacker_claim:3 g sec1 dep_super ~dst:0 ~attacker:(Some 5)
  in
  Verify.sec3_monotone ~sub ~super

(* ---- batched-kernel mutants -------------------------------------- *)

(* Re-fix every fixed AS of [src] into [into] (same size).  The stale-lane
   mutant uses it to smear one lane's decode across the word. *)
let copy_fixed ~src ~into =
  for v = 0 to O.n src - 1 do
    if O.reached src v then
      if v = O.dst src || Some v = O.attacker src then
        O.fix_root into v ~len:(O.length src v) ~secure:(O.secure src v)
          ~to_d:(O.to_d src v) ~to_m:(O.to_m src v)
          ~parent:(O.next_hop src v)
      else
        O.fix into v ~cls:(O.route_class src v) ~len:(O.length src v)
          ~secure:(O.secure src v) ~to_d:(O.to_d src v) ~to_m:(O.to_m src v)
          ~parent:(O.next_hop src v)
  done

let batch_tie_drop () =
  (* AS 3's equally-best provider routes (via 1 to d, via the attacker 2)
     tie in Bounds mode, so to-d and to-m are both set; the tamper drops
     the to-d flag — emulating a batch relax that loses a lane's flag bit
     on an equal-rank merge. *)
  let g =
    G.of_edges ~n:4
      [
        G.Customer_provider (1, 0);
        G.Customer_provider (3, 1);
        G.Customer_provider (3, 2);
      ]
  in
  let tamper ~lane:_ got =
    for v = 0 to O.n got - 1 do
      if
        O.reached got v
        && v <> O.dst got
        && Some v <> O.attacker got
        && O.to_d got v && O.to_m got v
      then
        O.fix got v ~cls:(O.route_class got v) ~len:(O.length got v)
          ~secure:(O.secure got v) ~to_d:false ~to_m:true
          ~parent:(O.next_hop got v)
    done
  in
  let _, diags =
    Kernel.analyze_batch ~tamper g [ sec3 ] (Deployment.empty 4)
      [| (0, [| 2 |]) |]
  in
  diags

let batch_stale_lane () =
  (* Every lane beyond the first decodes to lane 0's routing tree —
     emulating a batch kernel whose group masks smear one lane across
     the whole word.  The two lanes attack from opposite ends of a
     provider chain, so the stale copy must diverge. *)
  let g =
    G.of_edges ~n:5
      [
        G.Customer_provider (1, 0);
        G.Customer_provider (2, 1);
        G.Customer_provider (3, 2);
        G.Customer_provider (4, 3);
      ]
  in
  let stale = ref None in
  let tamper ~lane got =
    if lane = 0 then begin
      let dup =
        O.create ~n:(O.n got) ~dst:(O.dst got) ~attacker:(O.attacker got)
      in
      copy_fixed ~src:got ~into:dup;
      stale := Some dup
    end
    else
      match !stale with
      | None -> ()
      | Some s ->
          ignore
            (O.reset got ~n:(O.n got) ~dst:(O.dst s) ~attacker:(O.attacker s));
          copy_fixed ~src:s ~into:got
  in
  let _, diags =
    Kernel.analyze_batch ~tamper g [ sec3 ] (Deployment.empty 5)
      [| (0, [| 4; 2 |]) |]
  in
  diags

(* ---- determinism mutant ------------------------------------------ *)

let stale_workspace () =
  (* A "buggy engine" that, on every third workspace-reusing call,
     returns the previous outcome without recomputing — exactly what a
     broken epoch stamp would produce.  Only sequential configurations
     are replayed so the shared history is well-defined. *)
  let g =
    G.of_edges ~n:4
      [
        G.Customer_provider (1, 0);
        G.Customer_provider (2, 1);
        G.Customer_provider (3, 2);
      ]
  in
  let dep = Deployment.empty 4 in
  let pairs = [| (0, None); (1, None); (2, None); (3, None) |] in
  let count = ref 0 in
  let prev = ref None in
  let compute ~ws g policy dep ~dst ~attacker =
    match ws with
    | None -> E.compute g policy dep ~dst ~attacker
    | Some ws ->
        incr count;
        (match !prev with
        | Some stale when !count mod 3 = 0 -> stale
        | _ ->
            let out = E.compute ~ws g policy dep ~dst ~attacker in
            prev := Some out;
            out)
  in
  Determinism.analyze
    ~configs:
      [ Determinism.baseline; { Determinism.domains = 1; reuse_ws = true } ]
    ~compute g sec3 dep pairs

(* ---- allocation-gate mutants ------------------------------------- *)

(* A provider chain big enough for the gate's batch and metric probes. *)
let alloc_graph () =
  G.of_edges ~n:12 (List.init 11 (fun i -> G.Customer_provider (i + 1, i)))

let alloc_site_dropped () =
  (* Emulates a per-pair allocation regression the static A9 walk
     cannot see (introduced by inlining, say): every measured scalar
     pair allocates ~1k minor words on the side.  Blocks stay under
     Max_young_wosize so they land in the minor heap. *)
  let tamper () =
    for _ = 1 to 8 do
      ignore (Sys.opaque_identity (Array.make 128 0))
    done
  in
  snd (Alloc_check.analyze ~tamper ~seed:11 (alloc_graph ()) [ sec3 ])

let purity_taint_ignored () =
  (* Emulates a history-dependent metric cache: the cache-served rerun
     returns bounds nudged off the cold run's. *)
  let taint b =
    { b with Metric.H_metric.lb = b.Metric.H_metric.lb +. 0.125 }
  in
  snd (Alloc_check.analyze ~taint ~seed:11 (alloc_graph ()) [ sec3 ])

(* ---- suite ------------------------------------------------------- *)

type t = {
  name : string;
  expected_rule : string;
  description : string;
  run : unit -> Diagnostic.t list;
}

let all =
  [
    {
      name = "topo-self-loop";
      expected_rule = "topo/self-loop";
      description = "an AS peers with itself";
      run = self_loop;
    };
    {
      name = "topo-duplicate-edge";
      expected_rule = "topo/duplicate-edge";
      description = "one neighbor table lists the same edge twice";
      run = duplicate_edge;
    };
    {
      name = "topo-asymmetric";
      expected_rule = "topo/asymmetric";
      description = "customer link without the matching provider entry";
      run = asymmetric;
    };
    {
      name = "topo-relationship-conflict";
      expected_rule = "topo/relationship-conflict";
      description = "one AS pair declared both c2p and p2p";
      run = relationship_conflict;
    };
    {
      name = "topo-cp-cycle";
      expected_rule = "topo/cp-cycle";
      description = "customer-to-provider cycle of length 3";
      run = cp_cycle;
    };
    {
      name = "topo-tier-mismatch";
      expected_rule = "topo/tier";
      description = "tier table from a different graph (stub with customers)";
      run = tier_mismatch;
    };
    {
      name = "topo-ixp-non-peer";
      expected_rule = "topo/ixp";
      description = "IXP augmentation adds a customer-provider edge";
      run = ixp_non_peer;
    };
    {
      name = "route-tiebreak-flip";
      expected_rule = "route/tiebreak";
      description = "representative next hop is not the lowest equal-best";
      run = tiebreak_flip;
    };
    {
      name = "route-export-leak";
      expected_rule = "route/export";
      description = "a peer route leaked to a peer and selected";
      run = export_leak;
    };
    {
      name = "route-suboptimal";
      expected_rule = "route/suboptimal";
      description = "peer route chosen while a customer route exists";
      run = suboptimal;
    };
    {
      name = "route-secure-outside-s";
      expected_rule = "route/secure";
      description = "secure flag on an AS outside the deployment";
      run = secure_outside_s;
    };
    {
      name = "thm-sec1-downgrade";
      expected_rule = "thm/sec1-downgrade";
      description = "security-3rd outcomes violate the Theorem 3.1 check";
      run = sec1_downgrade;
    };
    {
      name = "thm-sec3-nonmonotone";
      expected_rule = "thm/sec3-monotone";
      description = "security-1st outcomes violate the Theorem 6.1 check";
      run = sec3_nonmonotone;
    };
    {
      name = "batch-tie-drop";
      expected_rule = "kernel/batch-divergence";
      description = "a batch lane loses the to-d flag on an equal-rank merge";
      run = batch_tie_drop;
    };
    {
      name = "batch-stale-lane";
      expected_rule = "kernel/batch-divergence";
      description = "every later lane decodes to lane 0's routing tree";
      run = batch_stale_lane;
    };
    {
      name = "det-stale-workspace";
      expected_rule = "det/divergence";
      description = "every third workspace reuse returns a stale outcome";
      run = stale_workspace;
    };
    {
      name = "opt-stale-gain-trusted";
      expected_rule = "opt/divergence";
      description =
        "CELF selects a stale queue top without re-scoring it; on the \
         set-cover gadget the stale gain outranks the true best pick";
      run =
        (fun () ->
          snd (Opt_check.gadget ~fault:Optimize.Max_k.Trust_stale_gains ()));
    };
    {
      name = "opt-queue-priority-flip";
      expected_rule = "opt/divergence";
      description =
        "the CELF priority queue pops the smallest gain first, flipping \
         even the opening pick";
      run =
        (fun () ->
          snd (Opt_check.gadget ~fault:Optimize.Max_k.Flip_queue_priority ()));
    };
    {
      name = "alloc-site-dropped";
      expected_rule = "alloc/minor-budget";
      description =
        "every measured scalar pair allocates ~1k minor words on the \
         side, emulating a regression the static A9 walk cannot see";
      run = alloc_site_dropped;
    };
    {
      name = "purity-taint-ignored";
      expected_rule = "alloc/cache-consistency";
      description =
        "the cache-served H rerun returns bounds nudged off the cold \
         run, emulating a history-dependent metric cache";
      run = purity_taint_ignored;
    };
  ]

let detected m = D.has_rule (m.run ()) m.expected_rule
let run_all () = List.map (fun m -> (m, detected m)) all

let report () =
  let results = run_all () in
  let diags =
    List.concat_map
      (fun (m, ok) ->
        if ok then []
        else
          [
            D.error ~rule:"check/false-negative"
              (Printf.sprintf
                 "mutant %s (%s) was not flagged with %s" m.name
                 m.description m.expected_rule);
          ])
      results
  in
  D.add_pass D.empty_report "mutants" ~items:(List.length results) diags
