(* Runtime allocation gate behind `sbgp check --alloc`.

   The static A9 rule (ast/hot-alloc, lib/analysis) reasons about
   allocation *sites*; this pass measures what the compiled code
   actually does, which covers the analyzer's stated blind spots —
   inlining, [@inline] hints, unboxing, Simplif's reference elimination
   (DESIGN.md §16).  Three kernels are replayed single-domain over a
   deterministic pair sample with reused workspaces, and the observed
   [Gc.minor_words] per pair is compared against a recorded budget
   (env-overridable, SBGP_ALLOC_BUDGET_{SCALAR,BATCH,REFERENCE}).

   Every measurement is identity-gated: the outcome produced inside the
   measured loop must be bit-identical to a fresh-buffer computation of
   the same pair, so a "fast because wrong" regression cannot hide
   behind a good allocation number.  A cold-vs-warm cache probe
   complements the static A10 rule: H over the same pair set, once
   computing and once served entirely from the shared cache, must agree
   exactly — a cache whose values depend on call history, placement or
   the executing domain fails here even if the impurity dodged the
   static walk.

   [tamper] (called once per measured scalar pair) and [taint] (applied
   to the warm cache-probe result) exist for the false-negative mutants:
   they emulate an allocation regression the analyzer missed and a
   history-dependent cache, and prove this pass catches both. *)

module D = Diagnostic
module G = Topology.Graph
module P = Routing.Policy
module E = Routing.Engine
module B = Routing.Batch
module R = Routing.Reference
module M = Metric.H_metric

type budgets = { scalar : float; batch : float; reference : float }

(* Minor words per (destination, attacker) pair with a reused
   workspace; [reference] is per pair per AS — the list-based reference
   kernel allocates O(n) per pair by design (measured 21.4-22.1 across
   n=100..400), so only the normalized rate is scale-free.  Recorded
   headroom is ~2x the measured steady state (scalar 210 at n=200,
   growing ~+48 per doubling of n; batch 4.0 flat; see EXPERIMENTS.md
   PR-10) so noise does not flake the gate while a per-pair box or
   closure regression still trips it. *)
let default_budgets = { scalar = 512.0; batch = 8.0; reference = 44.0 }

let env_budget name fallback =
  match Sys.getenv_opt name with
  | None -> fallback
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0.0 -> v
      | _ -> fallback)

let budgets () =
  {
    scalar = env_budget "SBGP_ALLOC_BUDGET_SCALAR" default_budgets.scalar;
    batch = env_budget "SBGP_ALLOC_BUDGET_BATCH" default_budgets.batch;
    reference =
      env_budget "SBGP_ALLOC_BUDGET_REFERENCE" default_budgets.reference;
  }

let dep_mixed n =
  Deployment.of_modes
    (Array.init n (fun v ->
         match v mod 5 with
         | 0 | 1 -> Deployment.Full
         | 2 -> Deployment.Simplex
         | _ -> Deployment.Off))

(* Attacked pairs only: the attacker path is the allocation-heavy one
   (two roots, secure/bogus bookkeeping), so it is the one budgeted. *)
let sample_pairs rng n k =
  Array.init k (fun _ ->
      let dst = Rng.int rng n in
      let m = (dst + 1 + Rng.int rng (n - 1)) mod n in
      (dst, Some m))

let measure f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let over ?(unit = "minor words/pair") ~kernel ~wpp ~budget () =
  D.error ~rule:"alloc/minor-budget"
    (Printf.sprintf
       "%s kernel allocates %.1f %s (budget %.1f); a hot-path box, \
        closure or container growth slipped past the static A9 gate — \
        hoist it or re-record the budget"
       kernel wpp unit budget)

let identity_diag ~kernel detail =
  D.error ~rule:"alloc/identity"
    (Printf.sprintf
       "%s kernel produced a different outcome inside the measured \
        allocation loop than with fresh buffers: %s" kernel detail)

let analyze ?(budgets = budgets ()) ?(pairs = 24) ?tamper ?taint ~seed g
    policies =
  let n = G.n g in
  if n < 3 then (0, [])
  else begin
    let policy = match policies with p :: _ -> p | [] -> P.make P.Security_third in
    let dep = dep_mixed n in
    let rng = Rng.create seed in
    let sample = sample_pairs rng n (max 1 pairs) in
    let k = Array.length sample in
    let items = ref 0 in
    let diags = ref [] in
    let add d = diags := !diags @ [ d ] in

    (* --- scalar engine ---------------------------------------------- *)
    let ws = E.Workspace.create 0 in
    let run_scalar (dst, attacker) =
      ignore (E.compute ~ws g policy dep ~dst ~attacker)
    in
    run_scalar sample.(0);
    (* warm: sizes the workspace *)
    let delta =
      measure (fun () ->
          Array.iter
            (fun p ->
              run_scalar p;
              match tamper with Some f -> f () | None -> ())
            sample)
    in
    items := !items + k;
    let wpp = delta /. float_of_int k in
    if wpp > budgets.scalar then
      add (over ~kernel:"scalar" ~wpp ~budget:budgets.scalar ());
    (let dst, attacker = sample.(0) in
     let got = E.compute ~ws g policy dep ~dst ~attacker in
     let want = E.compute g policy dep ~dst ~attacker in
     incr items;
     match Kernel.mismatch ~want ~got () with
     | None -> ()
     | Some detail -> add (identity_diag ~kernel:"scalar" detail));

    (* --- batched engine --------------------------------------------- *)
    let lanes = min B.max_lanes (n - 1) in
    let dst0, _ = sample.(0) in
    let attackers =
      Array.init lanes (fun l -> (dst0 + 1 + (l mod (n - 1))) mod n)
    in
    let bws = B.Workspace.create 0 in
    let run_batch () =
      ignore (B.compute ~ws:bws g policy dep ~dst:dst0 ~attackers)
    in
    run_batch ();
    let reps = max 1 (k / 4) in
    let bdelta = measure (fun () -> for _ = 1 to reps do run_batch () done) in
    items := !items + (reps * lanes);
    let bwpp = bdelta /. float_of_int (reps * lanes) in
    if bwpp > budgets.batch then
      add (over ~kernel:"batch" ~wpp:bwpp ~budget:budgets.batch ());
    (let b = B.compute ~ws:bws g policy dep ~dst:dst0 ~attackers in
     let got = B.decode b ~lane:0 in
     let want = E.compute g policy dep ~dst:dst0 ~attacker:(Some attackers.(0)) in
     incr items;
     match Kernel.mismatch ~want ~got () with
     | None -> ()
     | Some detail -> add (identity_diag ~kernel:"batch" detail));

    (* --- reference kernel ------------------------------------------- *)
    let rws = R.Workspace.create 0 in
    let run_ref (dst, attacker) =
      ignore (R.compute ~ws:rws g policy dep ~dst ~attacker)
    in
    run_ref sample.(0);
    let rk = max 1 (k / 4) in
    let rdelta =
      measure (fun () ->
          for i = 0 to rk - 1 do run_ref sample.(i mod k) done)
    in
    items := !items + rk;
    (* The reference kernel is list-based and allocates O(n) per pair by
       design; normalizing by n keeps its budget scale-free. *)
    let rwpp = rdelta /. float_of_int (rk * n) in
    if rwpp > budgets.reference then
      add
        (over ~unit:"minor words/pair/AS" ~kernel:"reference" ~wpp:rwpp
           ~budget:budgets.reference ());

    (* --- cold-vs-warm cache consistency ----------------------------- *)
    let cache = M.Cache.create () in
    let m_att = Array.init (min 4 (n - 1)) (fun i -> i + 1) in
    let m_dst = Array.init (min 4 n) (fun i -> n - 1 - i) in
    let hpairs = M.pairs ~attackers:m_att ~dsts:m_dst () in
    let cold = M.h_metric ~cache g policy dep hpairs in
    let warm = M.h_metric ~cache g policy dep hpairs in
    let warm = match taint with Some f -> f warm | None -> warm in
    items := !items + (2 * Array.length hpairs);
    if not (cold.M.lb = warm.M.lb && cold.M.ub = warm.M.ub) then
      add
        (D.error ~rule:"alloc/cache-consistency"
           (Printf.sprintf
              "H over %d pairs changed between the cold run and the \
               cache-served rerun (cold [%.17g, %.17g], warm [%.17g, \
               %.17g]); cached metric values must be pure in (graph, \
               deployment)"
              (Array.length hpairs) cold.M.lb cold.M.ub warm.M.lb
              warm.M.ub));
    (!items, !diags)
  end
