(** Differential gate for the Max-k optimizer ([sbgp check --optimize]).

    {!Optimize.Max_k.celf} prunes candidate re-scoring with stale
    queued gains — sound only where the H-metric behaves submodularly,
    which is not proven.  This pass runs CELF and the naive
    full-re-eval {!Optimize.Max_k.greedy} side by side and demands the
    {e bit-identical} pick sequence and per-step bounds: on seeded
    random instances over the given graph, and on the deterministic
    Appendix-I set-cover gadget (where coverage is submodular and
    identity is a theorem, so the gadget also backstops the two CELF
    mutants).  Divergences surface as [opt/divergence] errors. *)

val compare_results :
  label:string ->
  Optimize.Max_k.result ->
  Optimize.Max_k.result ->
  Diagnostic.t list
(** [compare_results ~label naive celf] — baseline bounds, achieved
    pick counts, and every common step's pick and bounds must agree
    bitwise.  The bench reuses this as its identity gate. *)

val compare_instance :
  ?pool:Parallel.Pool.t ->
  ?fault:Optimize.Max_k.fault ->
  label:string ->
  objective:Optimize.objective ->
  base:Deployment.t ->
  pairs:Metric.H_metric.pair array ->
  k:int ->
  candidates:int array ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  int * Diagnostic.t list
(** Run both solvers on one instance and compare.  [fault] is injected
    into the CELF side only (the mutant hook).  Returns (items,
    diagnostics). *)

val gadget :
  ?fault:Optimize.Max_k.fault -> unit -> int * Diagnostic.t list
(** The deterministic set-cover instance (universe 10, three sets with
    nested/disjoint overlaps) whose second round separates a correct
    CELF from one that trusts stale gains, and whose first round
    separates it from one with a flipped queue priority. *)

val analyze :
  ?pool:Parallel.Pool.t ->
  ?fault:Optimize.Max_k.fault ->
  ?instances:int ->
  seed:int ->
  Topology.Graph.t ->
  Routing.Policy.t list ->
  int * Diagnostic.t list
(** The full pass: the gadget plus [instances] (default 2) seeded
    random instances on [g] — sampled destinations get Simplex in the
    base deployment (so securing transit ASes can matter), sampled
    candidates exclude the pair ASes, k = 3, alternating [`Lb]/[`Ub]
    objectives, every policy in [policies].  Graphs with fewer than 8
    ASes run the gadget only. *)
