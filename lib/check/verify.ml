module G = Topology.Graph
module P = Routing.Policy
module O = Routing.Outcome
module D = Diagnostic

(* An offer as the engine's [expand] would construct it: the route
   abstraction AS [v] perceives when neighbor [u] announces its fixed
   route. *)
type offer = {
  o_from : int;
  o_cls : P.route_class;
  o_len : int;
  o_secure : bool;
  o_to_d : bool;
  o_to_m : bool;
}

let is_root out v =
  v = O.dst out || O.attacker out = Some v

(* Neighbors of [v] with the route class [v] would perceive. *)
let neighbor_classes g v =
  let acc = ref [] in
  Array.iter (fun u -> acc := (u, P.Customer) :: !acc) (G.customers g v);
  Array.iter (fun u -> acc := (u, P.Peer) :: !acc) (G.peers g v);
  Array.iter (fun u -> acc := (u, P.Provider) :: !acc) (G.providers g v);
  !acc

(* Export policy Ex: [u] announces its route to [v] iff [u] is a root
   (the destination and the attacker announce to all their neighbors),
   [u]'s chosen route is a customer route (announced to everyone), or
   [v] is a customer of [u] (every route is announced to customers —
   i.e. [u] is a provider of [v], [cls_at_v = Provider]). *)
let exports out ~u ~cls_at_v =
  is_root out u
  || cls_at_v = P.Provider
  || O.route_class out u = P.Customer

let offers g dep out ~max_len v =
  List.filter_map
    (fun (u, cls_at_v) ->
      if not (O.reached out u) then None
      else if not (exports out ~u ~cls_at_v) then None
      else begin
        let len = O.length out u + 1 in
        if len > max_len then None
        else
          Some
            {
              o_from = u;
              o_cls = cls_at_v;
              o_len = len;
              o_secure = O.secure out u && Deployment.is_full dep v;
              o_to_d = O.to_d out u;
              o_to_m = O.to_m out u;
            }
      end)
    (neighbor_classes g v)

let triple o = (o.o_cls, o.o_len, o.o_secure)

let pp_triple (c, l, s) =
  Printf.sprintf "(%s, %d, %s)" (P.class_name c) l
    (if s then "secure" else "insecure")

(* Root invariants. *)
let root_diags ?attacker_claim out =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let d = O.dst out in
  if not (O.reached out d) then
    emit (D.error ~rule:"route/root" ~subjects:[ d ] "destination unreached")
  else begin
    if O.length out d <> 0 then
      emit
        (D.error ~rule:"route/root" ~subjects:[ d ]
           (Printf.sprintf "destination has length %d, expected 0"
              (O.length out d)));
    if (not (O.to_d out d)) || O.to_m out d then
      emit
        (D.error ~rule:"route/root" ~subjects:[ d ]
           "destination endpoint flags are not (to-d, not to-m)");
    if O.next_hop out d <> -1 then
      emit
        (D.error ~rule:"route/root" ~subjects:[ d ]
           "destination has a next hop")
  end;
  (match O.attacker out with
  | None -> ()
  | Some m ->
      if not (O.reached out m) then
        emit (D.error ~rule:"route/root" ~subjects:[ m ] "attacker unreached")
      else begin
        (match attacker_claim with
        | Some claim when O.length out m <> claim ->
            emit
              (D.error ~rule:"route/root" ~subjects:[ m ]
                 (Printf.sprintf
                    "attacker root claims length %d, expected %d"
                    (O.length out m) claim))
        | Some _ | None -> ());
        if O.secure out m then
          emit
            (D.error ~rule:"route/root" ~subjects:[ m ]
               "attacker's bogus announcement is marked secure");
        if O.to_d out m || not (O.to_m out m) then
          emit
            (D.error ~rule:"route/root" ~subjects:[ m ]
               "attacker endpoint flags are not (not to-d, to-m)");
        if O.next_hop out m <> O.dst out then
          emit
            (D.error ~rule:"route/root" ~subjects:[ m ]
               "attacker's bogus next hop is not the destination")
      end);
  List.rev !diags

(* Walk the parent chain of [v]; check it is edge-realizable and acyclic,
   and recompute the perceived length (real hops to the root reached, plus
   the attacker's claimed length when the chain ends at the attacker). *)
let path_diags g out ~claim v =
  let n = O.n out in
  let d = O.dst out in
  let m = O.attacker out in
  let rec walk u hops =
    if hops > n then Error "parent chain has a cycle"
    else if u = d then Ok hops
    else if m = Some u then
      (* The bogus "m x .. d" suffix contributes the claimed length. *)
      Ok (hops + claim)
    else begin
      let p = O.next_hop out u in
      if p < 0 || p >= n then Error "parent chain leaves the graph"
      else if not (O.reached out p) then
        Error (Printf.sprintf "next hop %d is unreached" p)
      else if
        not
          (Array.exists (fun w -> w = p) (G.customers g u)
          || Array.exists (fun w -> w = p) (G.peers g u)
          || Array.exists (fun w -> w = p) (G.providers g u))
      then Error (Printf.sprintf "next hop %d is not a neighbor of %d" p u)
      else walk p (hops + 1)
    end
  in
  match walk v 0 with
  | Error msg -> [ D.error ~rule:"route/path" ~subjects:[ v ] msg ]
  | Ok len ->
      if len <> O.length out v then
        [
          D.error ~rule:"route/path" ~subjects:[ v ]
            (Printf.sprintf
               "parent chain realizes length %d, record says %d" len
               (O.length out v));
        ]
      else []

(* The secure-path containment check: a secure route lies fully inside S
   (every transit hop Full, the origin signing) and avoids the attacker. *)
let secure_diags g dep out v =
  ignore g;
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  if not (Deployment.is_full dep v) then
    emit
      (D.error ~rule:"route/secure" ~subjects:[ v ]
         (Printf.sprintf
            "AS %d's route is marked secure but the AS does not deploy \
             full S*BGP"
            v));
  if O.to_m out v then
    emit
      (D.error ~rule:"route/secure" ~subjects:[ v ]
         (Printf.sprintf
            "AS %d's route is marked secure but can lead to the attacker" v));
  let d = O.dst out in
  let rec walk u steps =
    if steps > O.n out then ()
    else if u = d then begin
      if not (Deployment.signs_origin dep d) then
        emit
          (D.error ~rule:"route/secure" ~subjects:[ v; d ]
             "secure route to an origin that does not sign")
    end
    else begin
      if O.attacker out = Some u then
        emit
          (D.error ~rule:"route/secure" ~subjects:[ v; u ]
             "secure route passes through the attacker")
      else if not (Deployment.is_full dep u) then
        emit
          (D.error ~rule:"route/secure" ~subjects:[ v; u ]
             (Printf.sprintf
                "secure route of AS %d transits AS %d, which is outside S" v
                u));
      walk (O.next_hop out u) (steps + 1)
    end
  in
  (* The representative path must itself be secure end to end. *)
  walk (O.next_hop out v) 0;
  List.rev !diags

let outcome ?(tiebreak = Routing.Engine.Bounds) ?attacker_claim g policy dep
    out =
  let n = G.n g in
  if O.n out <> n then
    [
      D.error ~rule:"route/shape"
        (Printf.sprintf "outcome covers %d ASes, graph has %d" (O.n out) n);
    ]
  else begin
    let claim =
      match (attacker_claim, O.attacker out) with
      | Some c, _ -> c
      | None, Some m -> O.length out m
      | None, None -> 1
    in
    let max_len = n + 1 in
    let diags = ref (root_diags ?attacker_claim out) in
    let emit d = diags := !diags @ [ d ] in
    let check_chosen v offs =
      (* The recorded next hop must be a compliant announcer. *)
      let p = O.next_hop out v in
      match List.find_opt (fun o -> o.o_from = p) offs with
      | None ->
          emit
            (D.error ~rule:"route/export" ~subjects:[ v; p ]
               (Printf.sprintf
                  "AS %d's next hop %d is not an export-compliant neighbor"
                  v p))
      | Some via ->
          let recorded =
            (O.route_class out v, O.length out v, O.secure out v)
          in
          let best =
            List.fold_left
              (fun acc o ->
                if P.compare_routes policy (triple o) (triple acc) < 0 then o
                else acc)
              (List.hd offs) (List.tl offs)
          in
          let c = P.compare_routes policy recorded (triple best) in
          if c > 0 then
            emit
              (D.error ~rule:"route/suboptimal" ~subjects:[ v ]
                 (Printf.sprintf "AS %d chose %s but neighbor %d offers %s"
                    v (pp_triple recorded) best.o_from
                    (pp_triple (triple best))))
          else if c < 0 then
            emit
              (D.error ~rule:"route/consistency" ~subjects:[ v ]
                 (Printf.sprintf
                    "AS %d records %s, better than any offer (best is %s)" v
                    (pp_triple recorded)
                    (pp_triple (triple best))))
          else begin
            (* Route via the recorded hop must match the record. *)
            if P.compare_routes policy (triple via) recorded <> 0 then
              emit
                (D.error ~rule:"route/consistency" ~subjects:[ v; p ]
                   (Printf.sprintf
                      "AS %d records %s but next hop %d offers %s" v
                      (pp_triple recorded) p
                      (pp_triple (triple via))));
            (* Tiebreak semantics over the equally-best offers. *)
            let best_offs =
              List.filter
                (fun o -> P.compare_routes policy (triple o) recorded = 0)
                offs
            in
            let min_hop =
              List.fold_left (fun acc o -> min acc o.o_from) max_int best_offs
            in
            let exp_to_d, exp_to_m =
              match tiebreak with
              | Routing.Engine.Bounds ->
                  ( List.exists (fun o -> o.o_to_d) best_offs,
                    List.exists (fun o -> o.o_to_m) best_offs )
              | Routing.Engine.Lowest_next_hop ->
                  let o = List.find (fun o -> o.o_from = min_hop) best_offs in
                  (o.o_to_d, o.o_to_m)
            in
            if p <> min_hop then
              emit
                (D.error ~rule:"route/tiebreak" ~subjects:[ v; p ]
                   (Printf.sprintf
                      "AS %d's representative next hop is %d, expected the \
                       lowest equally-best hop %d"
                      v p min_hop));
            if O.to_d out v <> exp_to_d || O.to_m out v <> exp_to_m then
              emit
                (D.error ~rule:"route/tiebreak" ~subjects:[ v ]
                   (Printf.sprintf
                      "AS %d's endpoint flags are (to-d=%b, to-m=%b), \
                       expected (to-d=%b, to-m=%b)"
                      v (O.to_d out v) (O.to_m out v) exp_to_d exp_to_m));
            if not (O.to_d out v || O.to_m out v) then
              emit
                (D.error ~rule:"route/consistency" ~subjects:[ v ]
                   (Printf.sprintf
                      "AS %d is fixed but leads to neither endpoint" v))
          end
    in
    for v = 0 to n - 1 do
      if not (is_root out v) then begin
        let offs = offers g dep out ~max_len v in
        (match (O.reached out v, offs) with
        | false, [] -> ()
        | false, o :: _ ->
            emit
              (D.error ~rule:"route/missed" ~subjects:[ v ]
                 (Printf.sprintf
                    "AS %d is unreached but neighbor %d offers %s" v
                    o.o_from
                    (pp_triple (triple o))))
        | true, [] ->
            emit
              (D.error ~rule:"route/missed" ~subjects:[ v ]
                 (Printf.sprintf "AS %d is fixed but receives no offer" v))
        | true, offs -> check_chosen v offs);
        if O.reached out v then begin
          diags := !diags @ path_diags g out ~claim v;
          if O.secure out v then diags := !diags @ secure_diags g dep out v
        end
      end
    done;
    !diags
  end

let sources_of out =
  let n = O.n out in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if not (is_root out v) then acc := v :: !acc
  done;
  !acc

let no_downgrade_sec1 ~normal ~attacked =
  match O.attacker attacked with
  | None -> []
  | Some m ->
      let diags = ref [] in
      List.iter
        (fun v ->
          if
            v <> m
            && O.reached normal v
            && O.secure normal v
            && not (List.mem m (O.path normal v))
            && not (O.secure attacked v)
          then
            diags :=
              D.error ~rule:"thm/sec1-downgrade" ~subjects:[ v ]
                (Printf.sprintf
                   "AS %d held a secure route avoiding the attacker under \
                    normal conditions but lost route security under attack"
                   v)
              :: !diags)
        (sources_of normal);
      List.rev !diags

let sec3_monotone ~sub ~super =
  if
    O.n sub <> O.n super
    || O.dst sub <> O.dst super
    || O.attacker sub <> O.attacker super
  then
    [
      D.error ~rule:"route/shape"
        "monotonicity check requires outcomes for the same (attacker, \
         destination) pair";
    ]
  else begin
    let diags = ref [] in
    List.iter
      (fun v ->
        if O.happy_lb sub v && not (O.happy_lb super v) then
          diags :=
            D.error ~rule:"thm/sec3-monotone" ~subjects:[ v ]
              (Printf.sprintf
                 "AS %d was definitely happy under S but not under S ⊇ S \
                  (lower bound decreased)"
                 v)
            :: !diags;
        if O.happy_ub sub v && not (O.happy_ub super v) then
          diags :=
            D.error ~rule:"thm/sec3-monotone" ~subjects:[ v ]
              (Printf.sprintf
                 "AS %d was possibly happy under S but not under S' ⊇ S \
                  (upper bound decreased)"
                 v)
            :: !diags)
      (sources_of sub);
    List.rev !diags
  end
