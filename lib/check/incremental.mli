(** Differential check of incremental rollout evaluation.

    Replays a seeded deployment trajectory — several monotone upgrade
    steps from the empty deployment plus one final downgrade — through a
    {!Metric.H_metric.Evaluator} and demands that every per-pair bound
    and every aggregate it produces is {e bit-identical} to a
    from-scratch engine computation at that step.  Any divergence is an
    [inc/divergence] error naming the policy, step, and first offending
    (attacker, destination) pair. *)

val analyze :
  ?pool:Parallel.Pool.t ->
  ?steps:int ->
  seed:int ->
  pairs:int ->
  Topology.Graph.t ->
  Routing.Policy.t list ->
  int * Diagnostic.t list
(** [(items, diags)]: [items] counts (policy, step, pair) combinations
    compared.  [steps] (default 3) is the number of monotone steps; the
    non-monotone tail step is always appended.  [pool] additionally
    routes the evaluator's recomputations through worker domains, so the
    comparison also covers the sharded cache under parallelism. *)
