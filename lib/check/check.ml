module Diagnostic = Diagnostic
module Lint = Lint
module Verify = Verify
module Kernel = Kernel
module Determinism = Determinism
module Incremental = Incremental
module Optimize = Opt_check
module Topo = Topo_check
module Alloc = Alloc_check
module Mutants = Mutants
module D = Diagnostic
module G = Topology.Graph
module P = Routing.Policy
module E = Routing.Engine

let sec1 = P.make P.Security_first
let sec3 = P.make P.Security_third

type options = {
  pairs : int;
  det_pairs : int;
  inc_pairs : int;
  policies : P.t list;
  attacker_claim : int;
  seed : int;
}

let default_options =
  {
    pairs = 12;
    det_pairs = 6;
    inc_pairs = 6;
    policies =
      [ sec1; P.make P.Security_second; sec3 ];
    attacker_claim = 1;
    seed = 42;
  }

let enabled () =
  match Sys.getenv_opt "SBGP_CHECK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Deterministic mixed deployments exercising every mode; the sparse one
   is a pointwise subset of the mixed one, as the monotonicity theorem
   requires. *)
let dep_sparse n =
  Deployment.of_modes
    (Array.init n (fun v ->
         if v mod 5 = 0 then Deployment.Full else Deployment.Off))

let dep_mixed n =
  Deployment.of_modes
    (Array.init n (fun v ->
         match v mod 5 with
         | 0 | 1 -> Deployment.Full
         | 2 -> Deployment.Simplex
         | _ -> Deployment.Off))

(* Mix attacked and attacker-free pairs; a collision falls back to
   attacker-free rather than resampling, keeping the draw count fixed. *)
let sample_pairs rng n k =
  Array.init k (fun i ->
      let dst = Rng.int rng n in
      if i mod 3 = 2 || n < 2 then (dst, None)
      else
        let m = Rng.int rng n in
        if m = dst then (dst, None) else (dst, Some m))

let verify_pass options ?deployments g =
  let n = G.n g in
  let rng = Rng.create options.seed in
  let deps =
    match deployments with
    | Some l -> l
    | None -> [ Deployment.empty n; dep_mixed n ]
  in
  let pairs = sample_pairs rng n options.pairs in
  let items = ref 0 in
  let diags = ref [] in
  List.iter
    (fun policy ->
      List.iter
        (fun dep ->
          Array.iter
            (fun (dst, attacker) ->
              List.iter
                (fun tiebreak ->
                  let out =
                    E.compute ~tiebreak ~attacker_claim:options.attacker_claim
                      g policy dep ~dst ~attacker
                  in
                  incr items;
                  diags :=
                    !diags
                    @ Verify.outcome ~tiebreak
                        ~attacker_claim:options.attacker_claim g policy dep
                        out)
                [ E.Bounds; E.Lowest_next_hop ])
            pairs)
        deps)
    options.policies;
  (!items, !diags)

let theorem_pass options g =
  let n = G.n g in
  let rng = Rng.create (options.seed + 1) in
  let sub_dep = dep_sparse n in
  let super_dep = dep_mixed n in
  let k = max 1 (options.pairs / 2) in
  let items = ref 0 in
  let diags = ref [] in
  if n >= 2 then
    for _ = 1 to k do
      let dst = Rng.int rng n in
      let m = (dst + 1 + Rng.int rng (n - 1)) mod n in
      (* Theorem 3.1: security 1st never downgrades. *)
      let normal = E.compute g sec1 super_dep ~dst ~attacker:None in
      let attacked =
        E.compute ~attacker_claim:options.attacker_claim g sec1 super_dep
          ~dst ~attacker:(Some m)
      in
      diags := !diags @ Verify.no_downgrade_sec1 ~normal ~attacked;
      (* Theorem 6.1: security 3rd is monotone in the deployment. *)
      let sub =
        E.compute ~attacker_claim:options.attacker_claim g sec3 sub_dep ~dst
          ~attacker:(Some m)
      in
      let super =
        E.compute ~attacker_claim:options.attacker_claim g sec3 super_dep
          ~dst ~attacker:(Some m)
      in
      diags := !diags @ Verify.sec3_monotone ~sub ~super;
      items := !items + 2
    done;
  (!items, !diags)

(* (dst, attacker-set) configurations spanning the lane-count spectrum:
   a single lane, a partial word and a full word (capped by the graph),
   duplicates allowed — the batched kernel must decode lanes sharing an
   attacker independently. *)
let sample_batches rng n =
  if n < 2 then [||]
  else
    Array.of_list
      (List.map
         (fun lanes ->
           let lanes = min lanes (n - 1) in
           let dst = Rng.int rng n in
           let attackers =
             Array.init lanes (fun _ ->
                 let m = Rng.int rng (n - 1) in
                 if m >= dst then m + 1 else m)
           in
           (dst, attackers))
         [ 1; 7; 63 ])

let kernel_pass options g =
  let n = G.n g in
  let rng = Rng.create (options.seed + 4) in
  let pairs = sample_pairs rng n (max 1 (options.pairs / 2)) in
  let items, diags =
    Kernel.analyze ~attacker_claim:options.attacker_claim g options.policies
      (dep_mixed n) pairs
  in
  let bitems, bdiags =
    Kernel.analyze_batch ~attacker_claim:options.attacker_claim g
      options.policies (dep_mixed n) (sample_batches rng n)
  in
  (items + bitems, diags @ bdiags)

let run_kernel ?(options = default_options) g =
  let items, diags = kernel_pass options g in
  D.add_pass D.empty_report "kernel" ~items diags

let determinism_pass options g =
  let n = G.n g in
  let rng = Rng.create (options.seed + 2) in
  let pairs = sample_pairs rng n options.det_pairs in
  let configs = Determinism.default_configs () in
  let diags =
    Determinism.analyze ~attacker_claim:options.attacker_claim ~configs g
      sec3 (dep_mixed n) pairs
  in
  (Array.length pairs * List.length configs, diags)

let incremental_pass options g =
  Incremental.analyze ~seed:(options.seed + 3) ~pairs:options.inc_pairs g
    options.policies

let optimize_pass ?pool options g =
  Opt_check.analyze ?pool ~seed:(options.seed + 5) g options.policies

let topology_pass options g =
  Topo_check.analyze ~seed:(options.seed + 6) ~pairs:options.inc_pairs g
    options.policies

let run ?(options = default_options) ?tiers ?base ?deployments g =
  let n = G.n g in
  let report = D.empty_report in
  let lint =
    Lint.graph ?tiers g
    @ match base with None -> [] | Some b -> Lint.ixp ~base:b ~augmented:g
  in
  let report = D.add_pass report "lint" ~items:n lint in
  if n = 0 then report
  else begin
    let vitems, vdiags = verify_pass options ?deployments g in
    let report = D.add_pass report "verify" ~items:vitems vdiags in
    let titems, tdiags = theorem_pass options g in
    let report = D.add_pass report "theorems" ~items:titems tdiags in
    let kitems, kdiags = kernel_pass options g in
    let report = D.add_pass report "kernel" ~items:kitems kdiags in
    let ditems, ddiags = determinism_pass options g in
    let report = D.add_pass report "determinism" ~items:ditems ddiags in
    let iitems, idiags = incremental_pass options g in
    let report = D.add_pass report "incremental" ~items:iitems idiags in
    let oitems, odiags = optimize_pass options g in
    let report = D.add_pass report "optimize" ~items:oitems odiags in
    let titems, tdiags = topology_pass options g in
    D.add_pass report "topology" ~items:titems tdiags
  end

let run_incremental ?(options = default_options) ?pool g =
  let items, diags =
    Incremental.analyze ?pool ~seed:(options.seed + 3)
      ~pairs:options.inc_pairs g options.policies
  in
  D.add_pass D.empty_report "incremental" ~items diags

let run_optimize ?(options = default_options) ?pool g =
  let items, diags = optimize_pass ?pool options g in
  D.add_pass D.empty_report "optimize" ~items diags

let run_topology ?(options = default_options) g =
  let items, diags = topology_pass options g in
  D.add_pass D.empty_report "topology" ~items diags

(* Not part of {!run}'s pass sequence: the allocation gate wants a
   quiet single-domain process (Gc counters are per-domain and the
   measured loops must not share minor heaps with pool workers), so it
   runs standalone behind `sbgp check --alloc` and tools/ci.sh. *)
let run_alloc ?(options = default_options) g =
  let items, diags =
    Alloc_check.analyze ~pairs:(max 4 options.pairs)
      ~seed:(options.seed + 7) g options.policies
  in
  D.add_pass D.empty_report "alloc" ~items diags
