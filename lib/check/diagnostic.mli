(** Structured diagnostics for the correctness-tooling passes.

    Every rule a pass can fire has a stable string id (["topo/self-loop"],
    ["route/suboptimal"], ...) so that tests, the mutant suite and CI can
    assert on {e which} invariant broke, not merely that something did.
    Passes accumulate diagnostics instead of failing on the first error:
    a single run of [sbgp check] reports every violated invariant it can
    find. *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** stable rule id, e.g. ["topo/cp-cycle"] *)
  severity : severity;
  subjects : int list;  (** offending ASes (possibly empty) *)
  message : string;
}

val make : rule:string -> severity -> ?subjects:int list -> string -> t
val error : rule:string -> ?subjects:int list -> string -> t
val warning : rule:string -> ?subjects:int list -> string -> t

val severity_name : severity -> string

val to_string : t -> string
(** ["error topo/self-loop [AS 3]: peers table of AS 3 contains itself"] *)

val has_rule : t list -> string -> bool

(** {1 Reports} *)

type report = {
  passes : (string * int) list;
      (** pass name and number of items it examined, in execution order *)
  diags : t list;
}

val empty_report : report
val merge : report -> report -> report
val add_pass : report -> string -> items:int -> t list -> report

val errors : report -> t list
val ok : report -> bool
(** No [Error]-severity diagnostics. *)

val summary : report -> string
(** Multi-line human-readable rendering: one line per pass, one line per
    diagnostic, and a final verdict. *)

(** {1 Rule catalogue} *)

val catalogue : (string * string) list
(** Every rule id the passes can emit, with a one-line description.
    Printed by [sbgp check --rules] and documented in DESIGN.md §8. *)
