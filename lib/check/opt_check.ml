(* Differential gate for the CELF lazy greedy (DESIGN.md §14).

   H is not proven submodular, so CELF's lazy pruning — trusting that a
   stale queued gain can only shrink — is a heuristic.  This pass runs
   the naive full-re-eval greedy and CELF side by side on seeded
   instances (plus the deterministic Appendix-I set-cover gadget, where
   the coverage objective IS submodular and identity is a theorem) and
   demands the bit-identical pick sequence and per-step H bounds.  Any
   divergence is an [opt/divergence] error: either a genuine
   non-submodular instance CELF mishandles, or a bug in the lazy queue
   machinery — both mean CELF's answer cannot be trusted as "the greedy
   solution". *)

module D = Diagnostic
module M = Metric.H_metric

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let compare_results ~label (naive : Optimize.Max_k.result)
    (lazy_r : Optimize.Max_k.result) =
  (* [Optimize.Max_k.celf] shadows a would-be [celf] parameter under
     this open, hence the rename-then-rebind. *)
  let open Optimize.Max_k in
  let celf = lazy_r in
  let diags = ref [] in
  let err ?subjects msg =
    diags := !diags @ [ D.error ~rule:"opt/divergence" ?subjects msg ]
  in
  if
    not
      (bits_equal naive.baseline.M.lb celf.baseline.M.lb
      && bits_equal naive.baseline.M.ub celf.baseline.M.ub)
  then
    err
      (Printf.sprintf
         "%s: baseline bounds diverge: naive [%.17g, %.17g], CELF [%.17g, \
          %.17g]"
         label naive.baseline.M.lb naive.baseline.M.ub celf.baseline.M.lb
         celf.baseline.M.ub);
  if naive.achieved <> celf.achieved then
    err
      (Printf.sprintf
         "%s: naive greedy made %d picks, CELF made %d (requested %d)" label
         naive.achieved celf.achieved naive.requested);
  let steps = min naive.achieved celf.achieved in
  for i = 0 to steps - 1 do
    let a = naive.steps.(i) and b = celf.steps.(i) in
    if a.pick <> b.pick then
      err ~subjects:[ a.pick; b.pick ]
        (Printf.sprintf "%s: step %d picked AS %d (naive) vs AS %d (CELF)"
           label (i + 1) a.pick b.pick)
    else if
      not
        (bits_equal a.score.M.lb b.score.M.lb
        && bits_equal a.score.M.ub b.score.M.ub)
    then
      err ~subjects:[ a.pick ]
        (Printf.sprintf
           "%s: step %d (AS %d) bounds diverge: naive [%.17g, %.17g], CELF \
            [%.17g, %.17g]"
           label (i + 1) a.pick a.score.M.lb a.score.M.ub b.score.M.lb
           b.score.M.ub)
  done;
  !diags

let compare_instance ?pool ?fault ~label ~objective ~base ~pairs ~k ~candidates
    g policy =
  let naive =
    Optimize.Max_k.greedy ?pool ~objective ~base g policy ~pairs ~k ~candidates
  in
  let celf =
    Optimize.Max_k.celf ?pool ~objective ~base ?fault g policy ~pairs ~k
      ~candidates
  in
  let label = Printf.sprintf "%s, policy %s" label (Routing.Policy.name policy) in
  (1 + min naive.Optimize.Max_k.achieved celf.Optimize.Max_k.achieved,
   compare_results ~label naive celf)

(* The Appendix-I gadget as a coverage instance where laziness matters:
   set A covers 6 elements, B covers 5 of A's, C covers 4 disjoint ones.
   Both solvers open with A; at round two B's true gain collapses to
   zero while its stale round-one gain still outranks C — trusting the
   stale gain flips the pick, and flipping the queue priority flips even
   the first pick.  Coverage is submodular, so the unfaulted CELF must
   match the naive greedy exactly here. *)
let gadget ?fault () =
  let inst =
    {
      Optimize.Set_cover.universe = 10;
      sets = [| [ 0; 1; 2; 3; 4; 5 ]; [ 0; 1; 2; 3; 4 ]; [ 6; 7; 8; 9 ] |];
    }
  in
  let b = Optimize.Set_cover.build inst in
  let g = b.Optimize.Set_cover.graph in
  let n = Topology.Graph.n g in
  (* The reduction's base: destination and every element-AS are Full;
     the optimizer chooses among the set-ASes. *)
  let base =
    Deployment.make ~n
      ~full:
        (Array.append [| b.Optimize.Set_cover.dst |]
           b.Optimize.Set_cover.element_as)
      ()
  in
  let pairs =
    [|
      {
        M.attacker = b.Optimize.Set_cover.attacker;
        M.dst = b.Optimize.Set_cover.dst;
      };
    |]
  in
  let policy = Routing.Policy.make Routing.Policy.Security_third in
  compare_instance ?fault ~label:"set-cover gadget" ~objective:`Lb ~base
    ~pairs ~k:2 ~candidates:b.Optimize.Set_cover.set_as g policy

(* Distinct draws avoiding [avoid]; bounded tries so tiny graphs just
   yield fewer (the caller skips the instance). *)
let sample_distinct rng n ~avoid k =
  let out = ref [] in
  let len = ref 0 in
  let tries = ref 0 in
  while !len < k && !tries < 50 * k do
    incr tries;
    let v = Rng.int rng n in
    if not (List.mem v avoid) && not (List.mem v !out) then begin
      out := v :: !out;
      incr len
    end
  done;
  Array.of_list (List.rev !out)

let analyze ?pool ?fault ?(instances = 2) ~seed g policies =
  let n = Topology.Graph.n g in
  let items = ref 0 in
  let diags = ref [] in
  let record (i, d) =
    items := !items + i;
    diags := !diags @ d
  in
  record (gadget ?fault ());
  if n >= 8 then
    for i = 0 to instances - 1 do
      let rng = Rng.create (seed + i) in
      let dsts = sample_distinct rng n ~avoid:[] 2 in
      let attackers =
        sample_distinct rng n ~avoid:(Array.to_list dsts) 2
      in
      let candidates =
        sample_distinct rng n
          ~avoid:(Array.to_list dsts @ Array.to_list attackers)
          6
      in
      let pairs = M.pairs ~attackers ~dsts () in
      if
        Array.length pairs > 0
        && Array.length candidates > 0
        && Array.length dsts = 2
      then begin
        (* Destinations sign their origins in the base scenario, else
           transit security is invisible and every gain is zero. *)
        let base = Deployment.make ~n ~full:[||] ~simplex:dsts () in
        let objective = if i mod 2 = 0 then `Lb else `Ub in
        List.iter
          (fun policy ->
            record
              (compare_instance ?pool ?fault
                 ~label:(Printf.sprintf "instance %d" i)
                 ~objective ~base ~pairs ~k:3 ~candidates g policy))
          policies
      end
    done;
  (!items, !diags)
