type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  subjects : int list;
  message : string;
}

let make ~rule severity ?(subjects = []) message =
  { rule; severity; subjects; message }

let error ~rule ?subjects message = make ~rule Error ?subjects message
let warning ~rule ?subjects message = make ~rule Warning ?subjects message

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string d =
  let subjects =
    match d.subjects with
    | [] -> ""
    | vs ->
        Printf.sprintf " [AS %s]"
          (String.concat ", " (List.map string_of_int vs))
  in
  Printf.sprintf "%s %s%s: %s" (severity_name d.severity) d.rule subjects
    d.message

let has_rule diags rule = List.exists (fun d -> String.equal d.rule rule) diags

type report = { passes : (string * int) list; diags : t list }

let empty_report = { passes = []; diags = [] }

let merge a b = { passes = a.passes @ b.passes; diags = a.diags @ b.diags }

let add_pass r name ~items diags =
  { passes = r.passes @ [ (name, items) ]; diags = r.diags @ diags }

let errors r = List.filter (fun d -> d.severity = Error) r.diags
let ok r = errors r = []

let summary r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, items) ->
      Buffer.add_string buf (Printf.sprintf "pass %-12s %d items\n" name items))
    r.passes;
  List.iter
    (fun d -> Buffer.add_string buf (to_string d ^ "\n"))
    r.diags;
  let n_err = List.length (errors r) in
  let n_all = List.length r.diags in
  Buffer.add_string buf
    (if n_all = 0 then "check: clean (no diagnostics)\n"
     else
       Printf.sprintf "check: %d diagnostic%s (%d error%s)\n" n_all
         (if n_all = 1 then "" else "s")
         n_err
         (if n_err = 1 then "" else "s"));
  Buffer.contents buf

let catalogue =
  [
    ("topo/out-of-range", "edge endpoint outside [0, n)");
    ("topo/self-loop", "an AS is adjacent to itself");
    ("topo/duplicate-edge", "the same neighbor appears twice in one table");
    ( "topo/relationship-conflict",
      "an AS pair carries two different business relationships" );
    ( "topo/asymmetric",
      "adjacency tables disagree (u lists v but v does not list u back)" );
    ( "topo/unsorted",
      "a neighbor table is not sorted ascending (iteration-order hazard)" );
    ("topo/counts", "cached edge counts disagree with the adjacency tables");
    ("topo/cp-cycle", "the customer-to-provider digraph has a cycle");
    ("topo/disconnected", "the underlying undirected graph is disconnected");
    ( "topo/tier",
      "a tier assignment contradicts the Table-1 degree structure" );
    ( "topo/ixp",
      "IXP augmentation altered or dropped an edge, or added a non-peer \
       edge" );
    ( "topo/csr-mismatch",
      "the Bigarray CSR disagrees with the adjacency-table view on some \
       row segment" );
    ( "topo/snapshot",
      "a binary snapshot failed to round-trip bit-identically, or a \
       corrupted payload loaded without a digest error" );
    ( "topo/delta-divergence",
      "topology-delta replay produced bounds different from a \
       from-scratch computation at some step of a seeded delta chain" );
    ("route/shape", "outcome size or roots disagree with the inputs");
    ("route/root", "destination or attacker root record is malformed");
    ( "route/missed",
      "an AS with a compliant offer is unreached, or is fixed with none" );
    ( "route/consistency",
      "recorded class/length/security disagree with the parent's route" );
    ( "route/suboptimal",
      "a strictly better export-compliant route was available" );
    ("route/export", "the chosen route violates the export policy Ex");
    ( "route/tiebreak",
      "to-d/to-m flags or representative next hop disagree with the \
       tiebreak semantics" );
    ( "route/secure",
      "a route is marked secure outside S, or a secure route leaves S / \
       passes the attacker" );
    ("route/path", "the parent chain does not realize the recorded route");
    ( "thm/sec1-downgrade",
      "a protocol downgrade occurred under security 1st (Theorem 3.1)" );
    ( "thm/sec3-monotone",
      "happiness decreased when the deployment grew under security 3rd \
       (Theorem 6.1)" );
    ( "kernel/divergence",
      "the packed CSR engine disagrees with the reference kernel or the \
       staged specification on some outcome field" );
    ( "kernel/batch-divergence",
      "a decoded lane of the destination-major batched kernel disagrees \
       with the reference kernel on some outcome field" );
    ( "det/divergence",
      "a (domains, workspace) configuration diverged from the sequential \
       fresh-buffer baseline" );
    ( "inc/divergence",
      "incremental rollout evaluation diverged from a from-scratch \
       computation at some step of a seeded deployment chain" );
    ( "opt/divergence",
      "the CELF lazy greedy diverged from the naive full-re-eval \
       greedy (pick sequence, achieved size or H bounds) on a seeded \
       Max-k instance" );
    ( "check/false-negative",
      "a mutant with a planted bug was not flagged by the checker" );
    ( "alloc/minor-budget",
      "a kernel's measured minor words per pair exceeded its recorded \
       budget (a hot-path box, closure or container growth slipped \
       past the static A9 gate)" );
    ( "alloc/identity",
      "the outcome computed inside a measured allocation loop differs \
       from a fresh-buffer computation of the same pair" );
    ( "alloc/cache-consistency",
      "H over the same pair set changed between a cold run and a \
       cache-served rerun; cached metric values must be pure in \
       (graph, deployment)" );
    ( "ast/poly-compare",
      "polymorphic compare/equal/hash (including aliases and the \
       List.mem/assoc family) on a non-immediate type in a hot-path \
       module" );
    ( "ast/determinism-taint",
      "a nondeterministic primitive (unordered Hashtbl iteration, \
       Random outside lib/rng, wall-clock reads, Domain.self) reachable \
       from a determinism root or written in a hot-path module" );
    ( "ast/unsafe-access",
      "Array.unsafe_get/set outside the vetted kernel modules, or \
       Obj.magic anywhere" );
    ( "ast/float-compare",
      "polymorphic comparison instantiated at float (exact float \
       comparison)" );
    ( "ast/exn-swallow",
      "a catch-all or ignored-exception handler, or a \
       Printexc.print_backtrace debugging escape" );
    ( "ast/domain-escape",
      "mutable state created outside a closure but written inside one \
       that runs on pool domains (directly or via the call graph), \
       with no mutex held, lock bracket or disjoint per-item index" );
    ( "ast/lock-discipline",
      "a field guarded by a sibling mutex touched without that mutex \
       statically held, a raise while holding a lock, or a lock with \
       no unlock in its function" );
    ( "ast/workspace-epoch",
      "an epoch-stamped Workspace value crossing a parallel-closure \
       boundary instead of Workspace.local () inside the closure" );
    ( "ast/hot-alloc",
      "allocation sites reachable from a vetted kernel entry point \
       exceed the symbol's recorded budget \
       (tools/astlint/alloc_budget.txt)" );
    ( "ast/cache-pure",
      "a function coupled to the metric cache reads module-level \
       mutable state or a nondeterministic primitive; cached values \
       must depend only on (graph, deployment)" );
    ( "ast/allowlist-stale",
      "an allowlist entry that suppressed no finding this run; the \
       code it vetted has moved — remove or update the entry" );
    ( "ast/alloc-budget-stale",
      "an allocation-budget entry whose symbol now allocates nothing \
       (stale) or less than its grant (loose) — ratchet the manifest \
       down" );
    ("ast/cmt-missing", "no .cmt artifacts found; run `dune build @check`");
    ( "ast/cmt-unreadable",
      "a .cmt artifact exists but cannot be read (corrupt or \
       version-skewed)" );
    ( "ast/allowlist",
      "tools/astlint/allowlist.txt is malformed (every entry needs \
       `rule symbol -- reason`)" );
  ]
