(** Parallel-determinism analyzer — pass 3 of [sbgp check].

    The engine promises bit-identical outcomes regardless of how the work
    is scheduled: over any number of domains, and with or without
    {!Routing.Engine.Workspace} buffer reuse.  This pass checks the
    promise empirically by replaying the same batch of (destination,
    attacker) pairs under several configurations and comparing a
    per-outcome digest against the sequential fresh-buffer baseline.

    A divergence ([det/divergence]) pinpoints the offending configuration
    and the first divergent pair; when the deviant configuration is
    sequential the analyzer additionally replays the run and reports the
    first field-level mismatch (a stale-epoch workspace bug shows up here
    as, e.g., a length or next-hop carried over from the previous
    computation). *)

type config = {
  domains : int;  (** total domains applied to the batch; 1 = sequential *)
  reuse_ws : bool;
      (** reuse each domain's private {!Routing.Engine.Workspace}
          instead of allocating fresh buffers per computation *)
}

val baseline : config
(** [{domains = 1; reuse_ws = false}] — the reference every other
    configuration is compared against. *)

val default_configs : unit -> config list
(** The baseline plus sequential-with-reuse and parallel with/without
    reuse (parallel width from {!Parallel.default_domains}, clamped to
    keep transient pools cheap). *)

val pp_config : config -> string

val digest : Routing.Outcome.t -> int
(** Order-independent-of-nothing fingerprint of a stable state: folds
    every AS's reached/class/length/secure/to-d/to-m/next-hop fields.
    Two outcomes digest equal iff (modulo hash collision) they are
    field-identical. *)

val analyze :
  ?tiebreak:Routing.Engine.tiebreak ->
  ?attacker_claim:int ->
  ?configs:config list ->
  ?compute:
    (ws:Routing.Engine.Workspace.t option ->
    Topology.Graph.t ->
    Routing.Policy.t ->
    Deployment.t ->
    dst:int ->
    attacker:int option ->
    Routing.Outcome.t) ->
  Topology.Graph.t ->
  Routing.Policy.t ->
  Deployment.t ->
  (int * int option) array ->
  Diagnostic.t list
(** [analyze g policy dep pairs] replays every (dst, attacker) pair
    under every configuration (the baseline is always included) and
    returns one [det/divergence] diagnostic per deviant configuration.
    [compute] substitutes the engine entry point — the mutant suite uses
    it to inject workspace-corruption bugs; the default forwards
    [tiebreak]/[attacker_claim] to {!Routing.Engine.compute}.  Parallel
    configurations run on transient pools that are shut down before
    returning. *)
