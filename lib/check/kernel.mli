(** Differential gate for the packed CSR routing kernel.

    Replays (destination, attacker) pairs through three independent
    implementations of route computation and demands bit-identical
    outcomes:

    - {!Routing.Engine.compute} — the packed CSR production kernel,
      exercised both with fresh buffers and with a reused workspace;
    - {!Routing.Reference.compute} — the pre-change kernel, preserved
      verbatim;
    - {!Routing.Staged.compute} — the Appendix-B executable
      specification, where its contract applies (Standard LP model,
      Bounds tiebreak, attacker claim 1; its representative next hop is
      not compared).

    Any field-level disagreement is a ["kernel/divergence"] error naming
    the first AS and field that differ. *)

val mismatch :
  ?parents:bool ->
  want:Routing.Outcome.t ->
  got:Routing.Outcome.t ->
  unit ->
  string option
(** First field-level disagreement between two outcomes, rendered for a
    diagnostic message; [None] when bit-identical.  [parents] (default
    true) includes the routing-tree parent in the comparison.  Exposed
    for the other passes (the allocation gate reuses it to identity-gate
    its measured loops). *)

val analyze :
  ?attacker_claim:int ->
  Topology.Graph.t ->
  Routing.Policy.t list ->
  Deployment.t ->
  (int * int option) array ->
  int * Diagnostic.t list
(** [analyze g policies dep pairs] returns [(items, diagnostics)] where
    [items] counts the engine runs that were compared. *)

val analyze_batch :
  ?attacker_claim:int ->
  ?tamper:(lane:int -> Routing.Outcome.t -> unit) ->
  Topology.Graph.t ->
  Routing.Policy.t list ->
  Deployment.t ->
  (int * int array) array ->
  int * Diagnostic.t list
(** [analyze_batch g policies dep batches] decodes every lane of every
    batched solve ({!Routing.Batch}) of the [(dst, attackers)] batches
    and compares it field-by-field against a scalar
    {!Routing.Reference.compute} of the same pair, under every policy
    and both tiebreaks.  A disagreement is a ["kernel/batch-divergence"]
    error pinpointing the first divergent (destination, attacker-word,
    bit) and decoding both packed lanes.  [items] counts compared lanes.

    [tamper ~lane outcome] mutates a decoded lane before comparison —
    the false-negative mutants inject batch-kernel bugs through it. *)
