(* Differential check of the incremental evaluation layer: along a
   seeded rollout chain (several monotone steps plus one non-monotone
   wobble at the end), the per-pair bounds an
   {!Metric.H_metric.Evaluator} carries, skips or caches must be
   bit-identical to a from-scratch engine computation of every pair at
   every step.  This exercises the whole reuse surface — dirty cones,
   the Theorem 6.1 shortcut and the shared cache — against the ground
   truth it claims to reproduce. *)

module D = Diagnostic
module M = Metric.H_metric

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* A deployment trajectory: [steps] monotone upgrades from the empty
   deployment, then one downgrade step so the non-monotone path (two
   reach cones per destination) is covered too. *)
let chain rng n ~steps =
  let modes = Array.make n Deployment.Off in
  let acc = ref [ Deployment.empty n ] in
  for _ = 1 to steps do
    let upgrades = 1 + Rng.int rng (max 1 (n / 4)) in
    for _ = 1 to upgrades do
      let v = Rng.int rng n in
      modes.(v) <-
        (match modes.(v) with
        | Deployment.Off ->
            if Rng.int rng 2 = 0 then Deployment.Simplex else Deployment.Full
        | Deployment.Simplex | Deployment.Full -> Deployment.Full)
    done;
    acc := Deployment.of_modes modes :: !acc
  done;
  let downgrades = 1 + Rng.int rng (max 1 (n / 8)) in
  for _ = 1 to downgrades do
    let v = Rng.int rng n in
    modes.(v) <-
      (match modes.(v) with
      | Deployment.Full -> Deployment.Simplex
      | Deployment.Simplex | Deployment.Off -> Deployment.Off)
  done;
  acc := Deployment.of_modes modes :: !acc;
  List.rev !acc

let sample_pairs rng n k =
  Array.init k (fun _ ->
      let dst = Rng.int rng n in
      let attacker = (dst + 1 + Rng.int rng (n - 1)) mod n in
      { M.attacker; dst })

let analyze ?pool ?(steps = 3) ~seed ~pairs g policies =
  let n = Topology.Graph.n g in
  let items = ref 0 in
  let diags = ref [] in
  if n >= 2 && pairs > 0 then begin
    let rng = Rng.create seed in
    let ps = sample_pairs rng n pairs in
    let deps = chain rng n ~steps in
    let cache = M.Cache.create () in
    List.iter
      (fun policy ->
        let ev = M.Evaluator.create ?pool ~cache g policy ps in
        List.iteri
          (fun step dep ->
            let agg = M.Evaluator.eval ev dep in
            let vals = M.Evaluator.values ev in
            let ws = Routing.Engine.Workspace.local () in
            Array.iteri
              (fun i p ->
                incr items;
                let want = M.pair_bounds ~ws g policy dep p in
                let got = vals.(i) in
                if
                  not
                    (bits_equal want.M.lb got.M.lb
                    && bits_equal want.M.ub got.M.ub)
                then
                  diags :=
                    !diags
                    @ [
                        D.error ~rule:"inc/divergence"
                          ~subjects:[ p.M.attacker; p.M.dst ]
                          (Printf.sprintf
                             "policy %s, step %d (%s): incremental bounds \
                              [%.17g, %.17g] differ from scratch [%.17g, \
                              %.17g] for pair (m=%d, d=%d)"
                             (Routing.Policy.name policy)
                             step (Deployment.describe dep) got.M.lb got.M.ub
                             want.M.lb want.M.ub p.M.attacker p.M.dst);
                      ])
              ps;
            (* The aggregate must equal the same input-order reduction a
               from-scratch h_metric performs. *)
            let scratch = M.h_metric g policy dep ps in
            if
              not
                (bits_equal scratch.M.lb agg.M.lb
                && bits_equal scratch.M.ub agg.M.ub)
            then
              diags :=
                !diags
                @ [
                    D.error ~rule:"inc/divergence"
                      (Printf.sprintf
                         "policy %s, step %d (%s): incremental aggregate \
                          [%.17g, %.17g] differs from from-scratch h_metric \
                          [%.17g, %.17g]"
                         (Routing.Policy.name policy)
                         step (Deployment.describe dep) agg.M.lb agg.M.ub
                         scratch.M.lb scratch.M.ub);
                  ])
          deps)
      policies
  end;
  (!items, !diags)
