(** Static and dynamic invariant checking for the simulation pipeline
    ([sbgp check]).

    Three passes over a topology (DESIGN.md §8):

    + {b lint} ({!Lint}) — structural well-formedness of the AS graph,
      its tier classification and its IXP augmentation;
    + {b verify} ({!Verify}) — stable states recomputed by the engine
      are re-derived from first principles and checked for optimality,
      export compliance, tiebreak semantics, secure-path containment and
      realizability, plus the paper's Theorem 3.1 / 6.1 assertions;
    + {b kernel} ({!Kernel}) — the packed CSR engine is replayed against
      the preserved pre-change kernel ({!Routing.Reference}) and the
      Appendix-B staged specification, demanding bit-identical outcomes;
    + {b determinism} ({!Determinism}) — the same batch replayed across
      domain counts and workspace-reuse settings must be bit-identical
      to the sequential fresh-buffer baseline;
    + {b incremental} ({!Incremental}) — evaluation along a seeded
      rollout chain through the dirty-cone/caching layer must be
      bit-identical to from-scratch computation at every step;
    + {b optimize} ({!Optimize}) — the CELF lazy greedy of
      {!Optimize.Max_k} is replayed against the naive full-re-eval
      greedy on seeded instances and the Appendix-I set-cover gadget,
      demanding the bit-identical pick sequence and bounds (H is not
      proven submodular, so laziness is gated, not assumed);
    + {b topology} ({!Topo}) — the off-heap CSR is compared against the
      adjacency-table view, binary snapshots must round-trip
      bit-identically (and reject corruption), and topology-delta
      replay through {!Metric.H_metric.Replay} must match from-scratch
      computation at every step of a seeded delta chain;
    + {b alloc} ({!Alloc}, standalone only) — minor-heap allocation per
      pair of the scalar/batched/reference kernels measured against
      recorded budgets, identity-gated, plus a cold-vs-warm probe of
      the shared metric cache (the runtime complement of the static
      ast/hot-alloc and ast/cache-pure rules).

    All diagnostics are structured ({!Diagnostic}): rule id, severity,
    offending ASes, message — the checker reports everything it finds
    rather than failing on the first problem.  {!Mutants} holds the
    suite of deliberately planted bugs that the checker must flag; it
    guards the checker itself against false-negative regressions. *)

module Diagnostic = Diagnostic
module Lint = Lint
module Verify = Verify
module Kernel = Kernel
module Determinism = Determinism
module Incremental = Incremental
module Optimize = Opt_check
module Topo = Topo_check
module Alloc = Alloc_check
module Mutants = Mutants

type options = {
  pairs : int;  (** sampled (destination, attacker) pairs for verify *)
  det_pairs : int;  (** pairs replayed by the determinism pass *)
  inc_pairs : int;  (** pairs compared by the incremental pass *)
  policies : Routing.Policy.t list;  (** security models to verify under *)
  attacker_claim : int;  (** bogus path length of the "m d" announcement *)
  seed : int;  (** sampling seed; same seed, same pairs *)
}

val default_options : options
(** 12 verify pairs, 6 determinism pairs, 6 incremental pairs, all three
    standard security models, claim 1, seed 42. *)

val enabled : unit -> bool
(** [SBGP_CHECK] is set to [1]/[true]/[yes] in the environment — the
    experiment runners consult this to self-audit before running. *)

val run :
  ?options:options ->
  ?tiers:Topology.Tiers.t ->
  ?base:Topology.Graph.t ->
  ?deployments:Deployment.t list ->
  Topology.Graph.t ->
  Diagnostic.report
(** Run every pass on the graph.  [tiers] extends the lint pass with
    Table-1 checks; [base] marks the graph as an IXP augmentation of
    [base] and checks that too; [deployments] overrides the deterministic
    built-in scenarios of the verify pass.  The theorem and determinism
    passes derive their own deployments (a sparse subset of a mixed one,
    as Theorem 6.1 needs).  [Diagnostic.ok] on the result decides
    clean/broken; passes record how many items they covered. *)

val run_incremental :
  ?options:options -> ?pool:Parallel.Pool.t -> Topology.Graph.t ->
  Diagnostic.report
(** Only the incremental pass ([sbgp check --incremental]), optionally
    fanning the evaluator's recomputations over [pool] so the sharded
    cache is exercised under parallelism too. *)

val run_optimize :
  ?options:options -> ?pool:Parallel.Pool.t -> Topology.Graph.t ->
  Diagnostic.report
(** Only the optimize pass ([sbgp check --optimize]): the CELF-vs-naive
    differential gate on the set-cover gadget plus seeded instances on
    the graph, optionally pooling the metric evaluations. *)

val run_kernel : ?options:options -> Topology.Graph.t -> Diagnostic.report
(** Only the kernel pass ([sbgp check --kernel]): the scalar
    differential gate plus the batched-divergence sub-pass, which
    decodes every lane of sampled (destination, attacker-word) batches
    against the reference kernel. *)

val run_topology : ?options:options -> Topology.Graph.t -> Diagnostic.report
(** Only the topology pass ([sbgp check --topology]): CSR-vs-tables
    identity, snapshot round-trip and corruption rejection, and
    delta-replay-vs-scratch bit-identity (uses [inc_pairs] pairs). *)

val run_alloc : ?options:options -> Topology.Graph.t -> Diagnostic.report
(** Only the allocation gate ([sbgp check --alloc]).  Deliberately not
    part of {!run}: the Gc counters are per-domain, so the measured
    loops want a process that has not shared its minor heap with pool
    workers.  Budgets come from {!Alloc.budgets} (env-overridable). *)
