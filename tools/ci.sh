#!/bin/sh
# CI entry point: typed-AST lint, build, tests, opam metadata lint, and
# a fast `sbgp check` smoke (all three checker passes + the mutant
# self-test on a small generated topology).  Any failing step aborts.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @lint"
# Typed-AST lint (tools/astlint over the .cmt artifacts): the tree must
# be clean modulo tools/astlint/allowlist.txt, and the seeded fixture
# corpus must still trip every ast/* rule (false-negative guard).
dune build @lint

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== opam lint"
if command -v opam >/dev/null 2>&1; then
  opam lint sbgp.opam
else
  echo "opam not found; skipping metadata lint"
fi

echo "== sbgp check --static (smoke)"
# Same analyzer as @lint, through the CLI entry point: proves the
# installed binary can locate the .cmt artifacts and the allowlist.
dune exec bin/sbgp.exe -- check --static

echo "== astlint --json (smoke)"
# The machine-readable output must agree with the plain gate: a clean
# tree yields "clean": true and an empty findings array.
json_out=$(dune exec tools/astlint/main.exe -- --json)
echo "$json_out"
case "$json_out" in
  '{"clean": true,'*'"findings": []'*) ;;
  *) echo "astlint --json: unexpected output for a clean tree"; exit 1 ;;
esac

echo "== astlint stale-allowlist gate (smoke)"
# An allowlist entry that suppresses nothing must fail the run with an
# ast/allowlist-stale finding — exemptions cannot outlive their code.
stale_allow=$(mktemp)
cat tools/astlint/allowlist.txt > "$stale_allow"
echo "ast/poly-compare  No.Such.Symbol  -- ci stale-gate probe" >> "$stale_allow"
if dune exec tools/astlint/main.exe -- --allowlist "$stale_allow" \
    > /tmp/astlint_stale_out 2>&1; then
  echo "astlint: stale allowlist entry was not rejected"; exit 1
fi
grep -q "ast/allowlist-stale" /tmp/astlint_stale_out || {
  echo "astlint: failure was not the stale-entry finding"; exit 1; }
rm -f "$stale_allow" /tmp/astlint_stale_out

echo "== astlint stale-budget gate (smoke)"
# An allocation-budget entry whose symbol allocates nothing must fail
# the run with an ast/alloc-budget-stale finding — budget grants cannot
# outlive the allocation sites they were recorded for.
stale_budget=$(mktemp)
cat tools/astlint/alloc_budget.txt > "$stale_budget"
echo "No.Such.Symbol 3 -- ci stale-gate probe" >> "$stale_budget"
if dune exec tools/astlint/main.exe -- --budget "$stale_budget" \
    > /tmp/astlint_budget_out 2>&1; then
  echo "astlint: stale budget entry was not rejected"; exit 1
fi
grep -q "ast/alloc-budget-stale" /tmp/astlint_budget_out || {
  echo "astlint: failure was not the stale-budget finding"; exit 1; }
rm -f "$stale_budget" /tmp/astlint_budget_out

echo "== sbgp check --alloc (smoke)"
# The runtime allocation gate at toy scale: minor words per pair of the
# scalar/batched/reference kernels against the recorded budgets,
# identity-gated, plus the cold-vs-warm metric-cache probe.
dune exec bin/sbgp.exe -- check --alloc -n 150

echo "== sbgp check (smoke)"
dune exec bin/sbgp.exe -- check -n 150 --pairs 6 --det-pairs 3 --mutants \
  --incremental --inc-pairs 4

echo "== rollout bench (smoke)"
# Tiny-scale run of the incremental-vs-scratch rollout benchmark: the
# bit-identity cross-check inside the bench is the point, not the timing.
SBGP_BENCH_ONLY=rollout SBGP_BENCH_N=300 SBGP_SCALE=0.2 \
  SBGP_BENCH_LABEL=ci dune exec bench/main.exe -- --json

echo "== kernel bench (smoke)"
# Toy-scale run of the packed-vs-reference kernel benchmark: the
# Check.Kernel bit-identity gate inside it is the point, not the timing.
SBGP_BENCH_ONLY=kernel SBGP_BENCH_N=250 SBGP_BENCH_KERNEL_PAIRS=10 \
  SBGP_BENCH_KERNEL_REPS=1 dune exec bench/main.exe

echo "== batch bench (smoke)"
# Toy-scale run of the destination-major batched kernel benchmark: the
# analyze_batch lane-decode identity gate inside it is the point.
SBGP_BENCH_ONLY=batch SBGP_BENCH_N=250 SBGP_BENCH_BATCH_DSTS=2 \
  SBGP_BENCH_BATCH_REPS=1 dune exec bench/main.exe

echo "== sbgp check --optimize (smoke)"
# The Max-k optimizer differential gate on its own: CELF must replay the
# naive greedy's pick sequence bit-for-bit on the set-cover gadget and
# seeded random instances.
dune exec bin/sbgp.exe -- check --optimize -n 150

echo "== optimize bench (smoke)"
# Toy-scale run of the CELF-vs-naive-greedy optimizer benchmark: the
# Check.Optimize identity gate inside it is the point, not the timing.
SBGP_BENCH_ONLY=optimize SBGP_BENCH_N=250 SBGP_BENCH_OPT_CANDS=8 \
  SBGP_BENCH_OPT_K=3 dune exec bench/main.exe

echo "== snapshot round trip + sbgp check --kernel (smoke)"
# Emit a toy binary snapshot alongside the text graph, then drive the
# kernel identity pass from the reloaded snapshot: proves the CLI sniffs
# the snapshot magic and the mmap-loaded CSR is solve-identical to a
# freshly generated graph's.
snap_dir=$(mktemp -d)
dune exec bin/sbgp.exe -- gen -n 200 -o "$snap_dir/toy.txt" \
  --snapshot "$snap_dir/toy.snap"
dune exec bin/sbgp.exe -- check --kernel --graph "$snap_dir/toy.snap" --pairs 4
dune exec bin/sbgp.exe -- check --topology --graph "$snap_dir/toy.snap" \
  --inc-pairs 4
rm -rf "$snap_dir"

echo "== topology bench (smoke)"
# Toy-scale run of the snapshot-load + delta-replay benchmark: the CSR
# bit-identity gate and the replay-vs-scratch identity gate inside it
# are the point, not the timing.
SBGP_BENCH_ONLY=topology SBGP_BENCH_N=300 SBGP_BENCH_TOPO_STEPS=4 \
  dune exec bench/main.exe

echo "ci: all green"
