#!/bin/sh
# CI entry point: source lint, build, tests, opam metadata lint, and a
# fast `sbgp check` smoke (all three checker passes + the mutant
# self-test on a small generated topology).  Any failing step aborts.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @lint"
dune build @lint

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== opam lint"
if command -v opam >/dev/null 2>&1; then
  opam lint sbgp.opam
else
  echo "opam not found; skipping metadata lint"
fi

echo "== sbgp check (smoke)"
dune exec bin/sbgp.exe -- check -n 150 --pairs 6 --det-pairs 3 --mutants

echo "ci: all green"
