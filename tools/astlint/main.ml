(* sbgp-astlint: typed-AST lint over dune's .cmt artifacts.

   Production mode scans lib/ and bin/ with the A1-A5 rule catalogue
   (Analysis.Rules) and exits non-zero on any finding that is not in
   the checked-in allowlist.  --fixtures inverts the polarity: it scans
   the deliberately-bad corpus under test/fixtures/astlint and exits
   non-zero when an expected finding does NOT fire — the false-negative
   guard that keeps the rules honest.  Both run from `dune build @lint`
   (see the root dune file), after @check has produced the .cmt
   artifacts this tool reads. *)

module D = Check.Diagnostic

let allowlist_candidates =
  [
    "tools/astlint/allowlist.txt";
    "../tools/astlint/allowlist.txt";
    "../../tools/astlint/allowlist.txt";
    "../../../tools/astlint/allowlist.txt";
  ]

let () =
  let root = ref None in
  let allowlist = ref None in
  let fixtures = ref false in
  let quiet = ref false in
  let spec =
    [
      ( "--root",
        Arg.String (fun s -> root := Some s),
        "DIR build root holding the .cmt artifacts (default: auto-detect)"
      );
      ( "--allowlist",
        Arg.String (fun s -> allowlist := Some s),
        "FILE exemption file (default: tools/astlint/allowlist.txt when \
         present)" );
      ( "--fixtures",
        Arg.Set fixtures,
        " false-negative guard over test/fixtures/astlint" );
      ("--quiet", Arg.Set quiet, " only print on failure");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "sbgp-astlint [options]: typed-AST lint over .cmt artifacts";
  let root =
    match !root with
    | Some r -> r
    | None -> (
        match Analysis.Cmt_loader.locate_build_root () with
        | Some r -> r
        | None ->
            prerr_endline
              "astlint: no build root with .cmt artifacts found; run `dune \
               build @check` first (or set SBGP_CMT_ROOT)";
            exit 2)
  in
  let allowlist_file =
    match !allowlist with
    | Some f -> Some f
    | None -> List.find_opt Sys.file_exists allowlist_candidates
  in
  if !fixtures then begin
    let outcome =
      Analysis.analyze ~config:Analysis.fixture_config
        ~root
        ~dirs:[ Analysis.fixture_dir ]
        ()
    in
    if outcome.Analysis.units = [] then begin
      Printf.eprintf
        "astlint --fixtures: no fixture units under %s/%s; build \
         @fixtures first\n"
        root Analysis.fixture_dir;
      exit 2
    end;
    match Analysis.fixture_failures outcome with
    | [] ->
        if not !quiet then
          Printf.printf
            "astlint fixtures: %d findings over %d units, every seeded \
             defect caught\n"
            (List.length outcome.Analysis.report.D.diags)
            (List.length outcome.Analysis.units)
    | failures ->
        List.iter (fun f -> Printf.eprintf "astlint fixtures: %s\n" f)
          failures;
        exit 1
  end
  else begin
    let outcome =
      Analysis.analyze ?allowlist_file ~root ~dirs:Analysis.default_dirs ()
    in
    let report = outcome.Analysis.report in
    if D.ok report then begin
      if not !quiet then
        Printf.printf "astlint: clean (%d units)\n"
          (List.length outcome.Analysis.units)
    end
    else begin
      print_string (D.summary report);
      exit 1
    end
  end
