(* sbgp-astlint: typed-AST lint over dune's .cmt artifacts.

   Production mode scans lib/ and bin/ with the A1-A10 rule catalogue
   (Analysis.Rules) and exits non-zero on any finding that is not in
   the checked-in allowlist (or, for A9, the allocation-budget
   manifest) — including allowlist/budget entries that matched nothing
   (ast/allowlist-stale, ast/alloc-budget-stale).  --fixtures inverts
   the polarity: it scans the deliberately-bad corpus under
   test/fixtures/astlint and exits non-zero when an expected finding
   does NOT fire — the false-negative guard that keeps the rules
   honest.  Both run from `dune build @lint` (see the root dune file),
   after @check has produced the .cmt artifacts this tool reads.

   A digest cache next to the build root makes repeated runs skip
   re-walking unchanged units; --json emits machine-readable
   diagnostics for CI without changing the plain output.  Both modes
   print findings sorted by (file, line, rule) so diffs between runs
   are stable. *)

module D = Check.Diagnostic

let allowlist_candidates =
  [
    "tools/astlint/allowlist.txt";
    "../tools/astlint/allowlist.txt";
    "../../tools/astlint/allowlist.txt";
    "../../../tools/astlint/allowlist.txt";
  ]

let budget_candidates =
  [
    "tools/astlint/alloc_budget.txt";
    "../tools/astlint/alloc_budget.txt";
    "../../tools/astlint/alloc_budget.txt";
    "../../../tools/astlint/alloc_budget.txt";
  ]

(* Present findings in (file, line, rule) order regardless of the order
   the rules emitted them in; ties broken on the message so the output
   is a total order. *)
let by_site (a : Analysis.Rules.finding) (b : Analysis.Rules.finding) =
  let c = String.compare a.Analysis.Rules.source b.Analysis.Rules.source in
  if c <> 0 then c
  else
    let c = Int.compare a.Analysis.Rules.line b.Analysis.Rules.line in
    if c <> 0 then c
    else
      let c = String.compare a.Analysis.Rules.rule b.Analysis.Rules.rule in
      if c <> 0 then c
      else String.compare a.Analysis.Rules.text b.Analysis.Rules.text

(* The report appends the rule diagnostics after the load pass; swap
   them for the sorted rendering so the text summary prints in the same
   order as --json. *)
let sort_outcome (outcome : Analysis.outcome) =
  let findings = List.sort by_site outcome.Analysis.findings in
  let report = outcome.Analysis.report in
  let n_load =
    List.length report.D.diags - List.length outcome.Analysis.findings
  in
  let load = List.filteri (fun i _ -> i < n_load) report.D.diags in
  let diags = load @ List.map Analysis.Rules.to_diag findings in
  { outcome with Analysis.findings; report = { report with D.diags } }

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json (outcome : Analysis.outcome) ~elapsed =
  let is_load_rule r =
    r = Analysis.Rules.rule_missing
    || r = Analysis.Rules.rule_unreadable
    || r = Analysis.Rules.rule_allowlist
  in
  let load_errors =
    List.filter (fun (d : D.t) -> is_load_rule d.rule)
      outcome.report.D.diags
  in
  let buf = Buffer.create 1024 in
  let clean = D.ok outcome.report in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"clean\": %b, \"units\": %d, \"cached\": %d, \"elapsed_s\": \
        %.3f, \"findings\": ["
       clean
       (List.length outcome.units)
       outcome.cached elapsed);
  List.iteri
    (fun i (f : Analysis.Rules.finding) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"symbol\": \"%s\", \"message\": \"%s\"}"
           (json_escape f.rule) (json_escape f.source) f.line
           (json_escape f.symbol) (json_escape f.text)))
    outcome.findings;
  Buffer.add_string buf "], \"load_errors\": [";
  List.iteri
    (fun i (d : D.t) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"rule\": \"%s\", \"message\": \"%s\"}"
           (json_escape d.rule) (json_escape d.message)))
    load_errors;
  Buffer.add_string buf "]}\n";
  print_string (Buffer.contents buf)

let () =
  let root = ref None in
  let allowlist = ref None in
  let budget = ref None in
  let fixtures = ref false in
  let quiet = ref false in
  let json = ref false in
  let no_cache = ref false in
  let spec =
    [
      ( "--root",
        Arg.String (fun s -> root := Some s),
        "DIR build root holding the .cmt artifacts (default: auto-detect)"
      );
      ( "--allowlist",
        Arg.String (fun s -> allowlist := Some s),
        "FILE exemption file (default: tools/astlint/allowlist.txt when \
         present)" );
      ( "--budget",
        Arg.String (fun s -> budget := Some s),
        "FILE A9 allocation-budget manifest (default: \
         tools/astlint/alloc_budget.txt when present)" );
      ( "--fixtures",
        Arg.Set fixtures,
        " false-negative guard over test/fixtures/astlint" );
      ("--quiet", Arg.Set quiet, " only print on failure");
      ("--json", Arg.Set json, " machine-readable findings on stdout");
      ( "--no-cache",
        Arg.Set no_cache,
        " disable the .cmt digest cache (always re-walk)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "sbgp-astlint [options]: typed-AST lint over .cmt artifacts";
  let root =
    match !root with
    | Some r -> r
    | None -> (
        match Analysis.Cmt_loader.locate_build_root () with
        | Some r -> r
        | None ->
            prerr_endline
              "astlint: no build root with .cmt artifacts found; run `dune \
               build @check` first (or set SBGP_CMT_ROOT)";
            exit 2)
  in
  let allowlist_file =
    match !allowlist with
    | Some f -> Some f
    | None -> List.find_opt Sys.file_exists allowlist_candidates
  in
  let budget_file =
    match !budget with
    | Some f -> Some f
    | None -> List.find_opt Sys.file_exists budget_candidates
  in
  (* One snapshot per mode: save prunes to the units of the current
     run, so sharing a file between the production and fixture scans
     (which @lint runs back-to-back) would evict each other's entries
     every time. *)
  let cache_path =
    if !no_cache then None
    else if !fixtures then
      Some (Filename.concat root ".sbgp-astlint.fixtures.cache")
    else Some (Filename.concat root ".sbgp-astlint.cache")
  in
  let t0 = Unix.gettimeofday () in
  if !fixtures then begin
    let outcome =
      Analysis.analyze ~config:Analysis.fixture_config ?cache_path ~root
        ~dirs:[ Analysis.fixture_dir ]
        ()
    in
    if outcome.Analysis.units = [] then begin
      Printf.eprintf
        "astlint --fixtures: no fixture units under %s/%s; build \
         @fixtures first\n"
        root Analysis.fixture_dir;
      exit 2
    end;
    match Analysis.fixture_failures outcome with
    | [] ->
        if not !quiet then
          Printf.printf
            "astlint fixtures: %d findings over %d units, every seeded \
             defect caught (%.2fs)\n"
            (List.length outcome.Analysis.report.D.diags)
            (List.length outcome.Analysis.units)
            (Unix.gettimeofday () -. t0)
    | failures ->
        List.iter (fun f -> Printf.eprintf "astlint fixtures: %s\n" f)
          failures;
        exit 1
  end
  else begin
    let outcome =
      sort_outcome
        (Analysis.analyze ?allowlist_file ?budget_file ?cache_path ~root
           ~dirs:Analysis.default_dirs ())
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let report = outcome.Analysis.report in
    if !json then begin
      print_json outcome ~elapsed;
      if not (D.ok report) then exit 1
    end
    else if D.ok report then begin
      if not !quiet then
        Printf.printf "astlint: clean (%d units, %d cached, %.2fs)\n"
          (List.length outcome.Analysis.units)
          outcome.Analysis.cached elapsed
    end
    else begin
      print_string (D.summary report);
      exit 1
    end
  end
