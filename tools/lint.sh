#!/bin/sh
# Thin wrapper kept for muscle memory and older CI scripts.
#
# The source lint is the typed-AST analyzer now: tools/astlint reads
# the .cmt artifacts dune produces and applies the ast/* rule
# catalogue (polymorphic/float comparison in hot paths, determinism
# taint, unsafe array access, exception swallowing) with the
# exemptions in tools/astlint/allowlist.txt.  The grep rules that used
# to live here migrated to typed rules A1/A3/A5 — including a fixture
# (test/fixtures/astlint/a1_comment_mask.ml) for the false negative
# the old line-local comment filter could not avoid.  See DESIGN.md
# §11 and `sbgp check --static`.
exec dune build @lint
