#!/bin/sh
# Source lint for the simulation hot paths.  Run via `dune build @lint`
# (or directly from the repository root); exits non-zero on any finding.
#
# Rules:
#   1. No polymorphic comparison (bare `compare`, `Stdlib.compare`,
#      `Stdlib.(=)`, `Stdlib.(<>)`) in lib/routing, lib/metric,
#      lib/parallel, or the shared result cache (lib/prelude/
#      shard_cache.ml).  These run in the per-pair inner loops; polymorphic
#      compare boxes its arguments, defeats branch prediction, and
#      silently does the wrong thing on records with irrelevant fields.
#      Use Int.compare / String.compare / Policy.compare_routes or a
#      hand-written comparator.  This includes the operator form: a bare
#      structural `=`/`<`/`>=`/... applied to a tuple literal (e.g.
#      `(a, b) >= (c, d)`) allocates both tuples and dispatches through
#      the polymorphic runtime on every evaluation; spell out the
#      lexicographic int tests instead.
#   2. No `Obj.magic` and no `Printexc.print_backtrace` outside test/.
#      The first is never justified in this codebase; the second is a
#      debugging escape that belongs in a test harness, not in library
#      or binary code.

set -u

status=0

# --- rule 1: polymorphic comparison in hot paths --------------------
# Matches `compare` used as a standalone identifier (call position or
# passed to a sort); `X.compare` and names like `compare_routes` do not
# match.
hot_paths="lib/routing lib/metric lib/parallel"
hot_files=$(find $hot_paths -name '*.ml' 2>/dev/null)
# The shared result cache backs every Metric.Cache lookup on the rollout
# fast path; hold it to the same standard as the directories above.
hot_files="$hot_files lib/prelude/shard_cache.ml"
if [ -n "$hot_files" ]; then
  # Comment filter is line-local: a mention of `compare` after `(*` on
  # the same line is ignored; multi-line comment bodies are not special-
  # cased (keep prose mentions of compare on the `(*` line).
  hits=$(grep -nE '(^|[^.A-Za-z_0-9])(compare[^A-Za-z_0-9]|Stdlib\.compare|Stdlib\.\( *(=|<>) *\))' \
    $hot_files | grep -vE '^\S+:[0-9]+: *\(?\*|\(\*.*compare' || true)
  if [ -n "$hits" ]; then
    echo "lint: polymorphic comparison in hot-path code (use a monomorphic comparator):"
    echo "$hits"
    status=1
  fi

  # Structural comparison of tuple literals.  A relational operator next
  # to a parenthesized comma group is a comparison (bindings and match
  # arms use bare `=` / `->`, which this does not match); bare `=` is
  # only flagged with a tuple literal on BOTH sides, so `let f x = (a, b)`
  # stays legal.  The `[^-=<>]>` alternative keeps `->` out of the net.
  tup='\([^()]*,[^()]*\)'
  tup_hits=$(grep -nE \
    "$tup *(>=|<=|<>|<|>)|(>=|<=|<>|<|[^-=<>]>) *$tup|$tup *= *$tup" \
    $hot_files | grep -vE '^\S+:[0-9]+: *\(?\*|\(\*' || true)
  if [ -n "$tup_hits" ]; then
    echo "lint: structural comparison of tuple literals in hot-path code (spell out the int tests):"
    echo "$tup_hits"
    status=1
  fi
fi

# --- rule 2: debugging escapes outside test/ ------------------------
esc=$(find lib bin -name '*.ml' 2>/dev/null \
  | xargs grep -nE 'Obj\.magic|Printexc\.print_backtrace' 2>/dev/null || true)
if [ -n "$esc" ]; then
  echo "lint: Obj.magic / Printexc.print_backtrace outside test/:"
  echo "$esc"
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "lint: clean"
fi
exit "$status"
