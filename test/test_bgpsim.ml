(* Dynamic message-passing simulator: equivalence with the static engine,
   schedule independence (Theorem 2.1), and the BGP Wedgie of Figure 1. *)

open Core
open Test_helpers

let sec1 = Policy.make Policy.Security_first
let sec3 = Policy.make Policy.Security_third

(* The dynamic simulator must converge to the stable state the static
   engine computes, for all models and LP variants, under deterministic
   lowest-next-hop tiebreaking. *)
let test_sim_vs_engine =
  qtest "dynamic simulation = static engine" ~count:150 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let dst = Rng.int rng n in
      let m = Rng.int rng n in
      let attacker = if m = dst then None else Some m in
      let static =
        Engine.compute ~tiebreak:Engine.Lowest_next_hop g policy dep ~dst
          ~attacker
      in
      let sim =
        match attacker with
        | Some m -> Bgpsim.create g policy dep ~dst ~attacker:m ()
        | None -> Bgpsim.create g policy dep ~dst ()
      in
      let (_ : int) = Bgpsim.run sim in
      check_none (Policy.name policy)
        (outcome_mismatch static (Bgpsim.to_outcome sim)))

(* Theorem 2.1: with consistent policies the outcome is independent of the
   activation schedule. *)
let test_schedule_independence =
  qtest "outcome independent of activation schedule" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:20 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let dst = Rng.int rng n in
      let m = Rng.int rng n in
      let run schedule =
        let sim =
          if m = dst then Bgpsim.create g policy dep ~dst ()
          else Bgpsim.create g policy dep ~dst ~attacker:m ()
        in
        let (_ : int) = Bgpsim.run ?schedule sim in
        Bgpsim.snapshot sim
      in
      let reference = run None in
      List.for_all
        (fun s -> run (Some (Rng.create s)) = reference)
        [ seed + 1; seed + 2; seed + 3 ])

(* Convergence must also hold under attack (cf. [35]); bounded sweeps. *)
let test_convergence_bounded =
  qtest "convergence within few sweeps" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let dst = Rng.int rng n in
      let sim = Bgpsim.create g policy dep ~dst () in
      Bgpsim.run ~max_sweeps:100 sim <= 100)

(* Figure 1: the S*BGP Wedgie.  AS 29518 ranks security below LP while AS
   31283 ranks it 1st.  After a link flap the system settles in a different
   stable state.  ids: 3=0 (dst), 8928=1, 34226=2, 31283=3, 29518=4,
   31027=5. *)
let wedgie_setup () =
  (* Relationships per the figure: the destination AS 3 has providers
     31027 and 8928 (arrows point customer -> provider).  34226 is 8928's
     provider, 31283 is 34226's... in the figure: 3 -> 31027 and
     3 -> 8928 (customer-to-provider), 8928 -> 34226, 34226 -> 31283,
     31283 -> 29518, and 29518 -> 31027 ... 29518 peers? The figure shows
     29518 with customer 31283 and provider/peer 31027.  We encode:
     dst(0) customer of 31027(5) and of 8928(1); 8928 customer of
     34226(2); 34226 customer of 31283(3); 31283 customer of 29518(4);
     29518 customer of 31027(5). *)
  let g =
    graph 6 [ c2p 0 5; c2p 0 1; c2p 1 2; c2p 2 3; c2p 3 4; c2p 4 5 ]
  in
  (* Everyone secure except AS 8928 (id 1). *)
  let dep = Deployment.make ~n:6 ~full:[| 0; 2; 3; 4; 5 |] () in
  (* 29518 (4) places security below LP (security 3rd); 31283 (3) places
     it 1st; everyone else's placement is irrelevant — use sec3. *)
  let policy_of v = if v = 3 then sec1 else sec3 in
  let sim = Bgpsim.create ~policy_of g sec3 dep ~dst:0 () in
  (g, sim)

let test_wedgie () =
  let _, sim = wedgie_setup () in
  (* Reach the intended state: converge with 31283's customer link down,
     so it locks onto the secure provider path, then restore the link —
     security-1st 31283 sticks with the secure path. *)
  Bgpsim.set_link sim 2 3 ~up:false;
  let (_ : int) = Bgpsim.run sim in
  Bgpsim.set_link sim 2 3 ~up:true;
  let (_ : int) = Bgpsim.run sim in
  (* Intended state: 31283 (3) prefers the secure provider route via
     29518 (4) -> 31027 (5) -> dst over the insecure customer route via
     34226 (2): path 4,5,0. *)
  Alcotest.(check (option (list int)))
    "31283 uses the secure provider path" (Some [ 4; 5; 0 ])
    (Bgpsim.chosen_path sim 3);
  (* Fail the link 31027 - dst and reconverge. *)
  Bgpsim.set_link sim 5 0 ~up:false;
  let (_ : int) = Bgpsim.run sim in
  Alcotest.(check (option (list int)))
    "31283 falls back to the customer path" (Some [ 2; 1; 0 ])
    (Bgpsim.chosen_path sim 3);
  (* Restore the link: BGP does NOT return to the intended state — the
     wedgie.  29518 (4) now prefers its customer route via 31283 (3), and
     31283's secure provider path no longer exists. *)
  Bgpsim.set_link sim 5 0 ~up:true;
  let (_ : int) = Bgpsim.run sim in
  Alcotest.(check (option (list int)))
    "wedged: 31283 keeps the customer path" (Some [ 2; 1; 0 ])
    (Bgpsim.chosen_path sim 3);
  Alcotest.(check (option (list int)))
    "wedged: 29518 prefers its customer route" (Some [ 3; 2; 1; 0 ])
    (Bgpsim.chosen_path sim 4)

(* Link failures: withdrawals propagate and the state matches a fresh
   computation on the pruned graph. *)
let test_link_failure_equivalence =
  qtest "link flap converges to the pruned-graph state" ~count:100
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:15 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let dst = Rng.int rng n in
      let edges = Graph.edges g in
      let nth = Rng.int rng (List.length edges) in
      let a, b =
        match List.nth edges nth with
        | Graph.Customer_provider (c, p) -> (c, p)
        | Graph.Peer_peer (x, y) -> (x, y)
      in
      let sim = Bgpsim.create g policy dep ~dst () in
      let (_ : int) = Bgpsim.run sim in
      Bgpsim.set_link sim a b ~up:false;
      let (_ : int) = Bgpsim.run sim in
      (* Fresh graph without that edge. *)
      let pruned =
        Graph.of_edges ~n
          (List.filter
             (fun e ->
               match e with
               | Graph.Customer_provider (c, p) ->
                   not ((c = a && p = b) || (c = b && p = a))
               | Graph.Peer_peer (x, y) ->
                   not ((x = a && y = b) || (x = b && y = a)))
             edges)
      in
      let fresh = Bgpsim.create pruned policy dep ~dst () in
      let (_ : int) = Bgpsim.run fresh in
      Bgpsim.snapshot sim = Bgpsim.snapshot fresh)

let () =
  Alcotest.run "bgpsim"
    [
      ( "equivalence",
        [ test_sim_vs_engine; test_schedule_independence;
          test_link_failure_equivalence ] );
      ("convergence", [ test_convergence_bounded ]);
      ("wedgie", [ Alcotest.test_case "figure 1 wedgie" `Quick test_wedgie ]);
    ]
