(* Deployment scenarios. *)

open Core
open Test_helpers

let test_modes () =
  let d = Deployment.make ~n:5 ~full:[| 1; 3 |] ~simplex:[| 2; 3 |] () in
  Alcotest.(check bool) "0 off" false (Deployment.signs_origin d 0);
  Alcotest.(check bool) "1 full" true (Deployment.is_full d 1);
  Alcotest.(check bool) "2 simplex signs" true (Deployment.signs_origin d 2);
  Alcotest.(check bool) "2 simplex not full" false (Deployment.is_full d 2);
  Alcotest.(check bool) "3 full wins over simplex" true (Deployment.is_full d 3);
  Alcotest.(check int) "count" 3 (Deployment.count_secure d);
  Alcotest.(check (array int)) "secure list" [| 1; 2; 3 |]
    (Deployment.secure_list d)

let test_union_subset () =
  let a = Deployment.make ~n:3 ~full:[| 0 |] ~simplex:[| 1 |] () in
  let b = Deployment.make ~n:3 ~full:[| 1 |] () in
  let u = Deployment.union a b in
  Alcotest.(check bool) "union full at 1" true (Deployment.is_full u 1);
  Alcotest.(check bool) "a subset of u" true (Deployment.subset a u);
  Alcotest.(check bool) "u not subset of a" false (Deployment.subset u a);
  Alcotest.(check bool) "empty subset of all" true
    (Deployment.subset (Deployment.empty 3) a)

let test_union_size_mismatch () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Deployment.union: size mismatch") (fun () ->
      ignore (Deployment.union (Deployment.empty 2) (Deployment.empty 3)))

(* A small graph with clear tiers for scenario tests:
   0,1 = T1 (clique); 2,3 = T2; 4 = CP; 5..8 stubs. *)
let scenario_graph () =
  graph 9
    [
      p2p 0 1;
      c2p 2 0;
      c2p 2 1;
      c2p 3 0;
      c2p 3 1;
      c2p 4 2;
      p2p 4 3;
      c2p 5 2 (* stub of T2 2 *);
      c2p 6 3 (* stub of T2 3 *);
      c2p 7 0 (* T1 stub *);
      c2p 8 2;
      c2p 8 3 (* multihomed stub *);
    ]

let scenario_tiers g = Tiers.classify ~n_t1:2 ~n_t2:2 ~n_t3:0 ~n_small_cp:0 ~cps:[ 4 ] g

let test_isps_and_stubs () =
  let g = scenario_graph () in
  let tiers = scenario_tiers g in
  let d = Deployment.isps_and_stubs g tiers ~isps:[| 2 |] in
  Alcotest.(check bool) "ISP 2 full" true (Deployment.is_full d 2);
  Alcotest.(check bool) "stub 5 full" true (Deployment.is_full d 5);
  Alcotest.(check bool) "stub 8 full (one provider suffices)" true
    (Deployment.is_full d 8);
  Alcotest.(check bool) "stub 6 off" false (Deployment.signs_origin d 6);
  let simplex =
    Deployment.isps_and_stubs ~stub_mode:Deployment.Simplex g tiers
      ~isps:[| 2 |]
  in
  Alcotest.(check bool) "stub simplex" true (Deployment.signs_origin simplex 5);
  Alcotest.(check bool) "stub simplex not full" false (Deployment.is_full simplex 5)

let test_tier_scenarios () =
  let g = scenario_graph () in
  let tiers = scenario_tiers g in
  let d = Deployment.tier1_tier2 g tiers ~n_t1:2 ~n_t2:2 in
  (* All T1s, T2s, and their stubs. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "AS %d secure" v) true
        (Deployment.is_full d v))
    [ 0; 1; 2; 3; 5; 6; 7; 8 ];
  Alcotest.(check bool) "CP not secure" false (Deployment.signs_origin d 4);
  let with_cp = Deployment.with_cps g tiers d in
  Alcotest.(check bool) "CP secure after with_cps" true
    (Deployment.is_full with_cp 4);
  let t2only = Deployment.tier2_only g tiers ~n_t2:1 in
  (* Largest T2 by customer degree: AS 2 has customers 4,5,8 (3) vs AS 3
     has 6,8 (2): AS 2 wins. *)
  Alcotest.(check bool) "T2 rollout secures 2" true (Deployment.is_full t2only 2);
  Alcotest.(check bool) "T2 rollout skips 3" false
    (Deployment.signs_origin t2only 3);
  let ns = Deployment.non_stubs g tiers in
  Alcotest.(check bool) "non-stub CP secure" true (Deployment.is_full ns 4);
  Alcotest.(check bool) "stub 5 not secure" false (Deployment.signs_origin ns 5);
  let t1s = Deployment.tier1_and_stubs g tiers in
  Alcotest.(check bool) "T1 stub secure" true (Deployment.is_full t1s 7);
  Alcotest.(check bool) "T2 not secure" false (Deployment.signs_origin t1s 2)

let test_describe () =
  let d = Deployment.make ~n:4 ~full:[| 0 |] ~simplex:[| 1 |] () in
  Alcotest.(check string) "describe" "2/4 ASes secure (1 full, 1 simplex)"
    (Deployment.describe d)

let () =
  Alcotest.run "deployment"
    [
      ( "modes",
        [
          Alcotest.test_case "modes" `Quick test_modes;
          Alcotest.test_case "union/subset" `Quick test_union_subset;
          Alcotest.test_case "size mismatch" `Quick test_union_size_mismatch;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "isps_and_stubs" `Quick test_isps_and_stubs;
          Alcotest.test_case "tier scenarios" `Quick test_tier_scenarios;
        ] );
    ]
