(* Topology: graph construction, tiers, serialization, IXP augmentation. *)

open Core
open Test_helpers

let test_graph_basics () =
  let g = graph 4 [ c2p 1 0; c2p 2 0; p2p 1 2; c2p 3 1 ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check (array int)) "customers of 0" [| 1; 2 |] (Graph.customers g 0);
  Alcotest.(check (array int)) "providers of 3" [| 1 |] (Graph.providers g 3);
  Alcotest.(check (array int)) "peers of 1" [| 2 |] (Graph.peers g 1);
  Alcotest.(check int) "c2p edges" 3 (Graph.num_customer_provider_edges g);
  Alcotest.(check int) "p2p edges" 1 (Graph.num_peer_edges g);
  Alcotest.(check int) "degree of 1" 3 (Graph.degree g 1);
  Alcotest.(check bool) "3 is a stub" true (Graph.is_stub g 3);
  Alcotest.(check bool) "0 is not a stub" false (Graph.is_stub g 0);
  Alcotest.(check bool) "acyclic" true (Graph.acyclic_hierarchy g);
  Alcotest.(check bool) "connected" true (Graph.connected g)

let test_graph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self loop")
    (fun () -> ignore (graph 2 [ c2p 1 1 ]))

let test_graph_rejects_conflict () =
  Alcotest.check_raises "conflict"
    (Invalid_argument
       "Graph.of_edges: conflicting relationships for pair (0, 1)") (fun () ->
      ignore (graph 2 [ c2p 0 1; p2p 0 1 ]))

let test_graph_dedups () =
  let g = graph 2 [ c2p 0 1; c2p 0 1 ] in
  Alcotest.(check int) "single edge" 1 (Graph.num_customer_provider_edges g)

let test_graph_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Graph.of_edges: AS 5 out of range")
    (fun () -> ignore (graph 2 [ c2p 0 5 ]))

let test_cycle_detection () =
  let g = graph 3 [ c2p 0 1; c2p 1 2; c2p 2 0 ] in
  Alcotest.(check bool) "cyclic hierarchy" false (Graph.acyclic_hierarchy g)

let test_disconnected () =
  let g = graph 4 [ c2p 0 1; c2p 2 3 ] in
  Alcotest.(check bool) "disconnected" false (Graph.connected g)

let test_edges_roundtrip =
  qtest "of_edges/edges round trip" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let g2 = Graph.of_edges ~n:(Graph.n g) (Graph.edges g) in
      List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g2))

let test_serial_roundtrip =
  qtest "serialization round trip" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let g2 = Serial.of_string (Serial.to_string g) in
      Graph.n g = Graph.n g2
      && List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g2))

let test_serial_format () =
  let g = graph 3 [ c2p 1 0; p2p 1 2 ] in
  let s = Serial.to_string g in
  Alcotest.(check string) "format" "# n=3\n0|1|-1\n1|2|0\n" s

let test_serial_errors () =
  Alcotest.check_raises "bad relationship"
    (Failure "Serial: line 1: unknown relationship \"7\"") (fun () ->
      ignore (Serial.of_string "1|2|7"));
  Alcotest.check_raises "bad id" (Failure "Serial: line 1: non-integer AS id")
    (fun () -> ignore (Serial.of_string "a|2|0"))

let test_serial_remapped () =
  (* Real-world style: sparse ASNs and a trailing source column. *)
  let text = "# comment\n3356|21740|-1|bgp\n174|3356|0|mlp\n3356|1299|-1\n" in
  let g, asns = Serial.of_string_remapped text in
  Alcotest.(check int) "four ASes" 4 (Graph.n g);
  Alcotest.(check (array int)) "asn order" [| 3356; 21740; 174; 1299 |] asns;
  let id asn =
    let found = ref (-1) in
    Array.iteri (fun i a -> if a = asn then found := i) asns;
    !found
  in
  Alcotest.(check bool) "21740 customer of 3356" true
    (Array.exists (( = ) (id 3356)) (Graph.providers g (id 21740)));
  Alcotest.(check bool) "174 peers 3356" true
    (Array.exists (( = ) (id 174)) (Graph.peers g (id 3356)))

let test_serial_extra_fields () =
  let g = Serial.of_string "0|1|-1|extra|fields\n" in
  Alcotest.(check int) "edge parsed" 1 (Graph.num_customer_provider_edges g)

let test_serial_file_roundtrip () =
  let g = graph 3 [ c2p 1 0; c2p 2 0 ] in
  let path = Filename.temp_file "sbgp_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save path g;
      let g2 = Serial.load path in
      Alcotest.(check int) "n" 3 (Graph.n g2);
      Alcotest.(check bool) "edges equal" true
        (List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g2)))

(* Tiers per Table 1 on a small hand graph. *)
let test_tiers () =
  (* 0,1: provider-less with customers (T1); 2: transit with providers;
     3: stub with a peer (stub-x); 4: plain stub; 5: CP designate. *)
  let g =
    graph 6 [ c2p 2 0; c2p 2 1; p2p 0 1; c2p 3 2; p2p 3 5; c2p 4 2; c2p 5 2 ]
  in
  let tiers =
    Tiers.classify ~n_t1:2 ~n_t2:1 ~n_t3:0 ~n_small_cp:0 ~cps:[ 5 ] g
  in
  Alcotest.(check string) "0 is T1" "T1" (Tiers.tier_name (Tiers.tier_of tiers 0));
  Alcotest.(check string) "1 is T1" "T1" (Tiers.tier_name (Tiers.tier_of tiers 1));
  Alcotest.(check string) "2 is T2" "T2" (Tiers.tier_name (Tiers.tier_of tiers 2));
  Alcotest.(check string) "3 is stub-x" "STUB-X"
    (Tiers.tier_name (Tiers.tier_of tiers 3));
  Alcotest.(check string) "4 is stub" "STUB"
    (Tiers.tier_name (Tiers.tier_of tiers 4));
  Alcotest.(check string) "5 is CP" "CP" (Tiers.tier_name (Tiers.tier_of tiers 5));
  Alcotest.(check (array int)) "non-stubs" [| 0; 1; 2; 5 |] (Tiers.non_stubs tiers)

let test_tiers_partition =
  qtest "tiers partition all ASes" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:60 in
      let tiers = Tiers.classify ~n_t1:3 ~n_t2:5 ~n_t3:5 ~n_small_cp:5 g in
      let total =
        List.fold_left
          (fun acc t -> acc + Array.length (Tiers.members tiers t))
          0 Tiers.all_tiers
      in
      total = Graph.n g)

let test_stubs_of () =
  let g = graph 5 [ c2p 1 0; c2p 2 0; c2p 3 1; c2p 4 2; c2p 3 2 ] in
  (* stubs: 3 (providers 1,2), 4 (provider 2). *)
  Alcotest.(check (array int)) "stubs of [1]" [| 3 |] (Tiers.stubs_of g [| 1 |]);
  Alcotest.(check (array int)) "stubs of [2]" [| 3; 4 |] (Tiers.stubs_of g [| 2 |]);
  Alcotest.(check (array int)) "stubs of [0]" [||] (Tiers.stubs_of g [| 0 |])

let test_ixp_augment =
  qtest "IXP augmentation adds only new peer edges" ~count:50 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let g2, added = Ixp.augment (Rng.split rng) g in
      Graph.n g2 = Graph.n g
      && Graph.num_customer_provider_edges g2
         = Graph.num_customer_provider_edges g
      && Graph.num_peer_edges g2 = Graph.num_peer_edges g + added
      && added >= 0)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "self loop" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "conflict" `Quick test_graph_rejects_conflict;
          Alcotest.test_case "dedup" `Quick test_graph_dedups;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          test_edges_roundtrip;
        ] );
      ( "serial",
        [
          test_serial_roundtrip;
          Alcotest.test_case "format" `Quick test_serial_format;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "file round trip" `Quick test_serial_file_roundtrip;
          Alcotest.test_case "sparse ASN remapping" `Quick test_serial_remapped;
          Alcotest.test_case "extra fields tolerated" `Quick
            test_serial_extra_fields;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "table 1 classification" `Quick test_tiers;
          test_tiers_partition;
          Alcotest.test_case "stubs_of" `Quick test_stubs_of;
        ] );
      ("ixp", [ test_ixp_augment ]);
    ]
