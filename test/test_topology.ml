(* Topology: graph construction, tiers, serialization, IXP augmentation. *)

open Core
open Test_helpers

let test_graph_basics () =
  let g = graph 4 [ c2p 1 0; c2p 2 0; p2p 1 2; c2p 3 1 ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check (array int)) "customers of 0" [| 1; 2 |] (Graph.customers g 0);
  Alcotest.(check (array int)) "providers of 3" [| 1 |] (Graph.providers g 3);
  Alcotest.(check (array int)) "peers of 1" [| 2 |] (Graph.peers g 1);
  Alcotest.(check int) "c2p edges" 3 (Graph.num_customer_provider_edges g);
  Alcotest.(check int) "p2p edges" 1 (Graph.num_peer_edges g);
  Alcotest.(check int) "degree of 1" 3 (Graph.degree g 1);
  Alcotest.(check bool) "3 is a stub" true (Graph.is_stub g 3);
  Alcotest.(check bool) "0 is not a stub" false (Graph.is_stub g 0);
  Alcotest.(check bool) "acyclic" true (Graph.acyclic_hierarchy g);
  Alcotest.(check bool) "connected" true (Graph.connected g)

let test_graph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self loop")
    (fun () -> ignore (graph 2 [ c2p 1 1 ]))

let test_graph_rejects_conflict () =
  Alcotest.check_raises "conflict"
    (Invalid_argument
       "Graph.of_edges: conflicting relationships for pair (0, 1)") (fun () ->
      ignore (graph 2 [ c2p 0 1; p2p 0 1 ]))

let test_graph_dedups () =
  let g = graph 2 [ c2p 0 1; c2p 0 1 ] in
  Alcotest.(check int) "single edge" 1 (Graph.num_customer_provider_edges g)

let test_graph_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Graph.of_edges: AS 5 out of range")
    (fun () -> ignore (graph 2 [ c2p 0 5 ]))

let test_cycle_detection () =
  let g = graph 3 [ c2p 0 1; c2p 1 2; c2p 2 0 ] in
  Alcotest.(check bool) "cyclic hierarchy" false (Graph.acyclic_hierarchy g)

let test_disconnected () =
  let g = graph 4 [ c2p 0 1; c2p 2 3 ] in
  Alcotest.(check bool) "disconnected" false (Graph.connected g)

let test_edges_roundtrip =
  qtest "of_edges/edges round trip" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let g2 = Graph.of_edges ~n:(Graph.n g) (Graph.edges g) in
      List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g2))

let test_serial_roundtrip =
  qtest "serialization round trip" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let g2 = Serial.of_string (Serial.to_string g) in
      Graph.n g = Graph.n g2
      && List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g2))

let test_serial_format () =
  let g = graph 3 [ c2p 1 0; p2p 1 2 ] in
  let s = Serial.to_string g in
  Alcotest.(check string) "format" "# n=3\n0|1|-1\n1|2|0\n" s

let test_serial_errors () =
  Alcotest.check_raises "bad relationship"
    (Failure "Serial: line 1: unknown relationship \"7\"") (fun () ->
      ignore (Serial.of_string "1|2|7"));
  Alcotest.check_raises "bad id" (Failure "Serial: line 1: non-integer AS id")
    (fun () -> ignore (Serial.of_string "a|2|0"))

let test_serial_remapped () =
  (* Real-world style: sparse ASNs and a trailing source column. *)
  let text = "# comment\n3356|21740|-1|bgp\n174|3356|0|mlp\n3356|1299|-1\n" in
  let g, asns = Serial.of_string_remapped text in
  Alcotest.(check int) "four ASes" 4 (Graph.n g);
  Alcotest.(check (array int)) "asn order" [| 3356; 21740; 174; 1299 |] asns;
  let id asn =
    let found = ref (-1) in
    Array.iteri (fun i a -> if a = asn then found := i) asns;
    !found
  in
  Alcotest.(check bool) "21740 customer of 3356" true
    (Array.exists (( = ) (id 3356)) (Graph.providers g (id 21740)));
  Alcotest.(check bool) "174 peers 3356" true
    (Array.exists (( = ) (id 174)) (Graph.peers g (id 3356)))

let test_serial_extra_fields () =
  let g = Serial.of_string "0|1|-1|extra|fields\n" in
  Alcotest.(check int) "edge parsed" 1 (Graph.num_customer_provider_edges g)

let test_serial_file_roundtrip () =
  let g = graph 3 [ c2p 1 0; c2p 2 0 ] in
  let path = Filename.temp_file "sbgp_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save path g;
      let g2 = Serial.load path in
      Alcotest.(check int) "n" 3 (Graph.n g2);
      Alcotest.(check bool) "edges equal" true
        (List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g2)))

(* ---- Binary snapshots --------------------------------------------- *)

let ints_equal (x : Graph.ints) (y : Graph.ints) =
  Bigarray.Array1.dim x = Bigarray.Array1.dim y
  &&
  let ok = ref true in
  for i = 0 to Bigarray.Array1.dim x - 1 do
    if x.{i} <> y.{i} then ok := false
  done;
  !ok

let csr_identical a b =
  let ca = Graph.csr a and cb = Graph.csr b in
  Graph.n a = Graph.n b
  && ints_equal ca.Graph.Csr.xs cb.Graph.Csr.xs
  && ints_equal ca.Graph.Csr.adj cb.Graph.Csr.adj

let with_snapshot_file f =
  let path = Filename.temp_file "sbgp_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_snapshot_roundtrip =
  qtest "snapshot round trip is bit-identical" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      with_snapshot_file (fun path ->
          Serial.save_snapshot path g;
          let g2 = Serial.load_snapshot path in
          csr_identical g g2
          && Graph.num_customer_provider_edges g
             = Graph.num_customer_provider_edges g2
          && Graph.num_peer_edges g = Graph.num_peer_edges g2
          && Graph.version g <> Graph.version g2
          && List.sort compare (Graph.edges g)
             = List.sort compare (Graph.edges g2)))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* [mutate] maps the on-disk bytes to a corrupted variant; the load must
   then fail with a message containing [expect]. *)
let expect_load_failure what g ~mutate ~expect =
  with_snapshot_file (fun path ->
      Serial.save_snapshot path g;
      write_file path (mutate (read_file path));
      match Serial.load_snapshot path with
      | _ -> Alcotest.failf "%s: corrupted snapshot loaded" what
      | exception Failure msg ->
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            m = 0 || go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S mentions %S" what msg expect)
            true (contains msg expect))

let set_byte s pos c =
  let b = Bytes.of_string s in
  Bytes.set b pos c;
  Bytes.to_string b

let test_snapshot_errors () =
  let g = graph 3 [ c2p 1 0; p2p 1 2 ] in
  expect_load_failure "magic" g
    ~mutate:(fun s -> set_byte s 0 'X')
    ~expect:"bad magic";
  expect_load_failure "version" g
    ~mutate:(fun s -> set_byte s 8 '\x63')
    ~expect:"format version 99";
  expect_load_failure "word size" g
    ~mutate:(fun s -> set_byte s 16 '\x04')
    ~expect:"payload word size";
  expect_load_failure "truncated header" g
    ~mutate:(fun s -> String.sub s 0 17)
    ~expect:"truncated header";
  expect_load_failure "truncated payload" g
    ~mutate:(fun s -> String.sub s 0 (String.length s - 8))
    ~expect:"truncated payload";
  expect_load_failure "trailing bytes" g
    ~mutate:(fun s -> s ^ "junk8bytes")
    ~expect:"trailing bytes";
  expect_load_failure "digest" g
    ~mutate:(fun s ->
      let pos = Serial.snapshot_payload_offset + 3 in
      set_byte s pos (Char.chr (Char.code s.[pos] lxor 0x20)))
    ~expect:"digest mismatch";
  (* Payload corruption that keeps the digest out of the way: zero the
     stored digest AND break CSR monotonicity is hard to stage by hand,
     but a wrong header count with a matching digest must still be
     rejected by the CSR cross-checks — here the digest catches it
     first, which is fine; the qcheck round trip plus Check.Topo's
     corruption gate cover the rest. *)
  ()

let test_snapshot_empty_graph () =
  let g = Graph.of_edges ~n:1 [] in
  with_snapshot_file (fun path ->
      Serial.save_snapshot path g;
      let g2 = Serial.load_snapshot path in
      Alcotest.(check int) "n" 1 (Graph.n g2);
      Alcotest.(check int) "edges" 0 (Graph.num_peer_edges g2))

(* ---- Topology deltas ---------------------------------------------- *)

(* Reference semantics: apply the ops to the edge list and rebuild. *)
let edge_pair = function
  | Graph.Customer_provider (a, b) -> if a < b then (a, b) else (b, a)
  | Graph.Peer_peer (a, b) -> if a < b then (a, b) else (b, a)

let reference_apply g (delta : Graph.Delta.t) =
  let edges = ref (Graph.edges g) in
  Array.iter
    (fun op ->
      match op with
      | Graph.Delta.Add e -> edges := e :: !edges
      | Graph.Delta.Remove e | Graph.Delta.Flip e ->
          let p = edge_pair e in
          edges := List.filter (fun e' -> edge_pair e' <> p) !edges;
          (match op with
          | Graph.Delta.Flip e -> edges := e :: !edges
          | _ -> ()))
    delta;
  Graph.of_edges ~n:(Graph.n g) !edges

let test_delta_apply =
  qtest "Delta.apply matches the edge-list reference" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let delta = random_delta rng g in
      let got = Graph.Delta.apply g delta in
      let want = reference_apply g delta in
      csr_identical got want && Graph.version got <> Graph.version g)

let collect_view (vw : Graph.view) v =
  let seg iter =
    let acc = ref [] in
    iter (fun u -> acc := u :: !acc) v;
    List.sort compare !acc
  in
  ( seg vw.Graph.iter_customers,
    seg vw.Graph.iter_peers,
    seg vw.Graph.iter_providers )

let test_delta_overlay =
  qtest "overlay view equals the applied graph's view" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let delta = random_delta rng g in
      let ov = Graph.overlay g delta in
      let applied = Graph.view (Graph.Delta.apply g delta) in
      let ok = ref (ov.Graph.view_n = applied.Graph.view_n) in
      for v = 0 to Graph.n g - 1 do
        if collect_view ov v <> collect_view applied v then ok := false
      done;
      !ok)

let test_delta_endpoints () =
  let g = graph 4 [ c2p 1 0; c2p 2 0; c2p 3 1 ] in
  let delta =
    [| Graph.Delta.Flip (p2p 0 1); Graph.Delta.Remove (c2p 3 1) |]
  in
  Alcotest.(check (array int))
    "endpoints sorted uniq" [| 0; 1; 3 |]
    (Graph.Delta.endpoints delta);
  let g2 = Graph.Delta.apply g delta in
  Alcotest.(check bool)
    "flip applied" true
    (Graph.relationship g2 0 1 = Some (p2p 0 1));
  Alcotest.(check bool) "remove applied" true (Graph.relationship g2 3 1 = None)

let test_delta_invalid () =
  let g = graph 3 [ c2p 1 0; p2p 1 2 ] in
  let expect_invalid what delta =
    match Graph.Delta.apply g delta with
    | _ -> Alcotest.failf "%s: invalid delta applied" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "add adjacent" [| Graph.Delta.Add (p2p 0 1) |];
  expect_invalid "remove absent" [| Graph.Delta.Remove (c2p 2 0) |];
  expect_invalid "remove wrong class" [| Graph.Delta.Remove (p2p 0 1) |];
  expect_invalid "flip same class" [| Graph.Delta.Flip (c2p 1 0) |];
  expect_invalid "flip absent" [| Graph.Delta.Flip (p2p 0 2) |];
  expect_invalid "self loop" [| Graph.Delta.Add (p2p 1 1) |];
  expect_invalid "out of range" [| Graph.Delta.Add (p2p 1 7) |];
  expect_invalid "duplicate pair"
    [| Graph.Delta.Remove (c2p 1 0); Graph.Delta.Add (c2p 1 0) |]

(* Tiers per Table 1 on a small hand graph. *)
let test_tiers () =
  (* 0,1: provider-less with customers (T1); 2: transit with providers;
     3: stub with a peer (stub-x); 4: plain stub; 5: CP designate. *)
  let g =
    graph 6 [ c2p 2 0; c2p 2 1; p2p 0 1; c2p 3 2; p2p 3 5; c2p 4 2; c2p 5 2 ]
  in
  let tiers =
    Tiers.classify ~n_t1:2 ~n_t2:1 ~n_t3:0 ~n_small_cp:0 ~cps:[ 5 ] g
  in
  Alcotest.(check string) "0 is T1" "T1" (Tiers.tier_name (Tiers.tier_of tiers 0));
  Alcotest.(check string) "1 is T1" "T1" (Tiers.tier_name (Tiers.tier_of tiers 1));
  Alcotest.(check string) "2 is T2" "T2" (Tiers.tier_name (Tiers.tier_of tiers 2));
  Alcotest.(check string) "3 is stub-x" "STUB-X"
    (Tiers.tier_name (Tiers.tier_of tiers 3));
  Alcotest.(check string) "4 is stub" "STUB"
    (Tiers.tier_name (Tiers.tier_of tiers 4));
  Alcotest.(check string) "5 is CP" "CP" (Tiers.tier_name (Tiers.tier_of tiers 5));
  Alcotest.(check (array int)) "non-stubs" [| 0; 1; 2; 5 |] (Tiers.non_stubs tiers)

let test_tiers_partition =
  qtest "tiers partition all ASes" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:60 in
      let tiers = Tiers.classify ~n_t1:3 ~n_t2:5 ~n_t3:5 ~n_small_cp:5 g in
      let total =
        List.fold_left
          (fun acc t -> acc + Array.length (Tiers.members tiers t))
          0 Tiers.all_tiers
      in
      total = Graph.n g)

let test_stubs_of () =
  let g = graph 5 [ c2p 1 0; c2p 2 0; c2p 3 1; c2p 4 2; c2p 3 2 ] in
  (* stubs: 3 (providers 1,2), 4 (provider 2). *)
  Alcotest.(check (array int)) "stubs of [1]" [| 3 |] (Tiers.stubs_of g [| 1 |]);
  Alcotest.(check (array int)) "stubs of [2]" [| 3; 4 |] (Tiers.stubs_of g [| 2 |]);
  Alcotest.(check (array int)) "stubs of [0]" [||] (Tiers.stubs_of g [| 0 |])

let test_ixp_augment =
  qtest "IXP augmentation adds only new peer edges" ~count:50 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let g2, added = Ixp.augment (Rng.split rng) g in
      Graph.n g2 = Graph.n g
      && Graph.num_customer_provider_edges g2
         = Graph.num_customer_provider_edges g
      && Graph.num_peer_edges g2 = Graph.num_peer_edges g + added
      && added >= 0)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "self loop" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "conflict" `Quick test_graph_rejects_conflict;
          Alcotest.test_case "dedup" `Quick test_graph_dedups;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          test_edges_roundtrip;
        ] );
      ( "serial",
        [
          test_serial_roundtrip;
          Alcotest.test_case "format" `Quick test_serial_format;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "file round trip" `Quick test_serial_file_roundtrip;
          Alcotest.test_case "sparse ASN remapping" `Quick test_serial_remapped;
          Alcotest.test_case "extra fields tolerated" `Quick
            test_serial_extra_fields;
        ] );
      ( "snapshot",
        [
          test_snapshot_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_snapshot_errors;
          Alcotest.test_case "empty graph" `Quick test_snapshot_empty_graph;
        ] );
      ( "delta",
        [
          test_delta_apply;
          test_delta_overlay;
          Alcotest.test_case "endpoints and apply" `Quick test_delta_endpoints;
          Alcotest.test_case "invalid deltas rejected" `Quick
            test_delta_invalid;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "table 1 classification" `Quick test_tiers;
          test_tiers_partition;
          Alcotest.test_case "stubs_of" `Quick test_stubs_of;
        ] );
      ("ixp", [ test_ixp_augment ]);
    ]
