(* Deterministic RNG. *)

open Core

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "different streams" 0 !same

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 b in
  Alcotest.(check bool) "split diverges" true (x <> y)

let test_copy () =
  let a = Rng.create 9 in
  let (_ : int64) = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_int_bounds =
  Test_helpers.qtest "int stays in bounds" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let bound = 1 + Rng.int rng 1000 in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_int_rejects_bad_bound () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0))

let test_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_int_roughly_uniform () =
  let rng = Rng.create 5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 10% of uniform" true
        (abs (c - (n / 10)) < n / 100))
    counts

let test_geometric_mean () =
  let rng = Rng.create 11 in
  let p = 0.5 in
  let total = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    total := !total + Rng.geometric rng ~p
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* Mean of failures-before-success is (1-p)/p = 1. *)
  Alcotest.(check bool) "mean close to 1" true (abs_float (mean -. 1.) < 0.05)

let test_pareto_heavy_tail () =
  let rng = Rng.create 13 in
  let big = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.pareto rng ~alpha:1.5 ~xmin:1.0 > 10. then incr big
  done;
  (* P(X > 10) = 10^-1.5 ~= 3.16%. *)
  let frac = float_of_int !big /. float_of_int n in
  Alcotest.(check bool) "tail mass" true (frac > 0.02 && frac < 0.05)

let test_weighted_index () =
  let rng = Rng.create 17 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Rng.weighted_index rng [| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let f i = float_of_int counts.(i) /. 30_000. in
  Alcotest.(check bool) "weights respected" true
    (abs_float (f 0 -. 0.1) < 0.02
    && abs_float (f 1 -. 0.2) < 0.02
    && abs_float (f 2 -. 0.7) < 0.02)

let test_shuffle_permutation =
  Test_helpers.qtest "shuffle is a permutation" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 50 in
      let arr = Array.init n (fun i -> i) in
      Rng.shuffle rng arr;
      let sorted = Array.copy arr in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let test_sample_without_replacement =
  Test_helpers.qtest "sample has distinct in-range elements" ~count:200
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 100 in
      let k = Rng.int rng (n + 1) in
      let s = Rng.sample_without_replacement rng k n in
      let tbl = Hashtbl.create k in
      Array.iter (fun v -> Hashtbl.replace tbl v ()) s;
      Array.length s = k
      && Hashtbl.length tbl = k
      && Array.for_all (fun v -> v >= 0 && v < n) s)

let () =
  Alcotest.run "rng"
    [
      ( "streams",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "copy" `Quick test_copy;
        ] );
      ( "distributions",
        [
          test_int_bounds;
          Alcotest.test_case "bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "uniformity" `Slow test_int_roughly_uniform;
          Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
          Alcotest.test_case "pareto tail" `Slow test_pareto_heavy_tail;
          Alcotest.test_case "weighted index" `Slow test_weighted_index;
          test_shuffle_permutation;
          test_sample_without_replacement;
        ] );
    ]
