(* Seeded A3 defects, Bigarray flavour: unsafe off-heap access outside
   the vetted kernel.  Bigarray.Array1.unsafe_get/set skip bounds checks
   exactly like Array.unsafe_*, so the same vetting discipline applies. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

module Vetted_kernel = struct
  (* Allowed: this module is on the fixture kernel list. *)
  let sum (a : ints) =
    let s = ref 0 in
    for i = 0 to Bigarray.Array1.dim a - 1 do
      s := !s + Bigarray.Array1.unsafe_get a i
    done;
    !s
end

let peek (a : ints) i = Bigarray.Array1.unsafe_get a i
let poke (a : ints) i v = Bigarray.Array1.unsafe_set a i v
