(* Seeded A2 defect: the determinism root reaches unordered Hashtbl
   iteration two calls deep.  [root_compute] is the taint root the
   fixture config names; neither intermediate mentions Hashtbl.fold in
   its own name, so only the call graph can connect them. *)

let tally tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
let survey tbl = tally tbl + Hashtbl.length tbl
let root_compute tbl = survey tbl
