(* A8 seed: an epoch-stamped workspace allocated outside the parallel
   closure and captured by it — domains would share scratch state and
   cross-stamp each other's epochs.  The ok_ variant fetches the
   domain-local workspace inside the closure via DLS. *)

let racy_shared n items =
  let ws = Routing.Engine.Workspace.create n in
  Parallel.map
    (fun x ->
      ignore ws;
      x)
    items

let ok_local items =
  Parallel.map
    (fun x ->
      let ws = Routing.Engine.Workspace.local () in
      ignore ws;
      x)
    items
