(* Seeded A4 defects: polymorphic comparison instantiated at float —
   exact float comparison on computed values. *)

let close (a : float) (b : float) = a = b
let above (x : float) = x >= 1.0
let worst (xs : float list) = List.sort compare xs
