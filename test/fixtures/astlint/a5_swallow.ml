(* Seeded A5 defects: handlers that discard what went wrong, and the
   print_backtrace debugging escape. *)

let parse s = try Some (int_of_string s) with _ -> None

let guard f =
  try f ()
  with exn ->
    (* [exn] is bound but never consulted. *)
    print_endline "guard: failed"

let trace () = Printexc.print_backtrace stdout
