(* A6 seed: mutable state created outside a parallel closure, written
   inside it.  Every racy_* function must fire ast/domain-escape; the
   ok_* functions use an accepted mediation and must stay silent. *)

(* Global ref bumped from every domain. *)
let hits = ref 0

let racy_count items = Parallel.map (fun x -> incr hits; x + 1) items

(* Locally-created accumulator captured by the closure. *)
let racy_local items =
  let acc = ref 0 in
  let _ = Parallel.map (fun x -> acc := !acc + x; x) items in
  !acc

(* Shared Hashtbl mutated concurrently. *)
let memo : (int, int) Hashtbl.t = Hashtbl.create 16

let racy_memo items =
  Parallel.map
    (fun x ->
      match Hashtbl.find_opt memo x with
      | Some y -> y
      | None ->
          let y = x * x in
          Hashtbl.replace memo x y;
          y)
    items

(* Reach variant: the closure calls a named helper that bumps a global
   two hops down the call graph. *)
let total = ref 0
let bump_shared x = total := !total + x

let indirect x =
  bump_shared x;
  x

let racy_reach items = Parallel.map (fun x -> indirect x) items

(* Exempt: each item writes only its own slot (disjoint index derived
   from the work item). *)
let ok_disjoint items =
  let out = Array.make (Array.length items) 0 in
  let idx = Array.init (Array.length items) (fun i -> i) in
  let _ = Parallel.map (fun i -> out.(i) <- items.(i) * 2; i) idx in
  out

(* Exempt: the shared accumulator is only touched under its mutex. *)
let ok_locked_mu = Mutex.create ()
let ok_locked_sum = ref 0

let ok_locked items =
  Parallel.map
    (fun x ->
      Mutex.protect ok_locked_mu (fun () ->
          ok_locked_sum := !ok_locked_sum + x);
      x)
    items
