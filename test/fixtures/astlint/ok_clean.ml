(* Control fixture: idiomatic code that must produce zero findings —
   monomorphic comparators, safe indexing, exhaustive handlers. *)

type point = { x : int; y : int }

let eq_point a b = Int.equal a.x b.x && Int.equal a.y b.y
let eq_name (a : string) b = String.equal a b
let total (a : int array) = Array.fold_left ( + ) 0 a
let safe_head = function [] -> None | v :: _ -> Some v

let parse s =
  match int_of_string_opt s with Some v -> v | None -> 0
