(* A7 seed: the record declares a Mutex.t sibling, so Lockreg infers
   that [count] and [table] are guarded by it.  racy_* touch them with
   no lock statically held; ok_* hold the lock or use the protect
   bracket. *)

type shard = {
  mutex : Mutex.t;
  mutable count : int;
  table : (int, int) Hashtbl.t;
}

let make () =
  { mutex = Mutex.create (); count = 0; table = Hashtbl.create 16 }

let racy_bump s = s.count <- s.count + 1
let racy_store s k v = Hashtbl.replace s.table k v

let ok_locked s =
  Mutex.lock s.mutex;
  s.count <- s.count + 1;
  Mutex.unlock s.mutex

let ok_bracket s k v =
  Mutex.protect s.mutex (fun () -> Hashtbl.replace s.table k v)
