(* Regression for the old grep lint's comment filter.  That filter was
   line-local: any hit line beginning with a comment opener (or closer —
   the regex could not tell them apart) was discarded.  The definition
   below therefore begins on the same physical line as the closing
   delimiter of this multi-line comment, and the grep pipeline dropped
   it even though it is ordinary compiled code mentioning compare.  The
   typed-AST walk never reads comments, so the finding survives.
*) let masked_compare (x : string) (y : string) = compare x y
