(* Seeded A1 defects: the List.mem/assoc family defaults to polymorphic
   equality on the element/key type. *)

type key = { id : int; tag : string }

let lookup (k : key) table = List.assoc k table
let member (k : key) ks = List.mem k ks

(* String membership also dispatches through the polymorphic runtime. *)
let has_name (n : string) names = List.mem n names
