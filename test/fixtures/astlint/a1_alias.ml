(* Seeded A1 defects: polymorphic comparison reached through aliases
   and higher-order uses, which the old grep lint could not see. *)

type boxed = { a : int; b : string }

(* Alias of the polymorphic operator: stays ['a -> 'a -> bool]. *)
let equal = ( = )

(* Alias of Stdlib.compare. *)
let compare_any = compare

(* Structural comparison of a boxed record. *)
let same_box (x : boxed) (y : boxed) = x = y

(* Polymorphic compare passed higher-order. *)
let sorted l = List.sort compare l
