(* Seeded A3 defect: a batch-kernel lookalike that is NOT on the vetted
   list.  The rule vets full module paths, not module names, so an
   impostor [Batch] module scanning packed lane slabs with unsafe
   accesses must still trip ast/unsafe-access — only the registered
   Routing.Batch (here, the fixture Vetted_kernel) gets a pass. *)

module Batch = struct
  let relax (gword : int array) (gmask : int array) base lanes =
    let winners = ref 0 in
    for i = 0 to lanes - 1 do
      let w = Array.unsafe_get gword (base + i) in
      winners := !winners lor (w land Array.unsafe_get gmask (base + i));
      Array.unsafe_set gword (base + i) (w lor 1)
    done;
    !winners
end
