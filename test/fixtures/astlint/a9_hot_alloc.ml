(* A9 seed: allocation on the hot path.  The fixture config vets
   [kernel_entry] as a kernel entry point, so everything it reaches has
   a zero allocation budget — the ref, the capturing closure, the tuple
   built per iteration and the boxed float root must all be reported.
   [budgeted_helper] is the control: its single sprintf site is granted
   by the fixture's budget manifest and must stay silent. *)

let scale = ref 1.0

(* Exactly one allocation site, paid for by the fixture budget. *)
let budgeted_helper n = Printf.sprintf "%d" n

let kernel_entry xs =
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      let pair = (x, x + 1) in
      acc := !acc +. (float_of_int (fst pair) *. !scale))
    xs;
  ignore (budgeted_helper (Array.length xs));
  !acc
