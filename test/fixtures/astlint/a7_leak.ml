(* A7 seed: lock leaks.  [explode] raises while holding the mutex with
   no protect bracket, so the unlock on the normal path is skipped;
   [forget] never unlocks at all. *)

let m = Mutex.create ()
let counter = ref 0

let explode () =
  Mutex.lock m;
  incr counter;
  if !counter > 3 then failwith "boom";
  Mutex.unlock m

let forget () =
  Mutex.lock m;
  incr counter
