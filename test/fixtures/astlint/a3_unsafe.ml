(* Seeded A3 defects: unsafe array access outside the vetted kernel,
   and Obj.magic (never permitted, kernel or not). *)

module Vetted_kernel = struct
  (* Allowed: this module is on the fixture kernel list. *)
  let sum (a : int array) =
    let s = ref 0 in
    for i = 0 to Array.length a - 1 do
      s := !s + Array.unsafe_get a i
    done;
    !s
end

let peek (a : int array) i = Array.unsafe_get a i
let poke (a : int array) i v = Array.unsafe_set a i v
let cast x = Obj.magic x
