(* A10 seed: impurity flowing into the metric cache.  The local [Cache]
   module stands in for the production cache — the fixture config points
   [cache_api] at its [find]/[store], so the file needs no dependency on
   lib/metric.  [bad_global] publishes a value derived from module-level
   mutable state (call history), [bad_domain] one derived from the
   executing domain; both must be reported.  [ok_lookup] is the control:
   cache-coupled but a pure function of its argument. *)

module Cache = struct
  let table : (int, float) Hashtbl.t = Hashtbl.create 16
  let find k = Hashtbl.find_opt table k
  let store k v = Hashtbl.replace table k v
end

let counter = ref 0

let bad_global g =
  incr counter;
  let v = float_of_int (g + !counter) in
  Cache.store g v;
  v

let bad_domain g =
  let v = float_of_int ((g + (Domain.self () :> int)) land 7) in
  Cache.store g v;
  v

let ok_lookup g =
  match Cache.find g with Some v -> v | None -> float_of_int g
