(* Policy: reference comparator sanity + rank/compare isomorphism. *)

open Core

let std model = Policy.make model
let lp2 model = Policy.make ~lp:(Policy.Lp_k 2) model

let cmp p a b = Policy.compare_routes p a b

let check_pref name p better worse =
  Alcotest.(check bool) name true (cmp p better worse < 0)

let test_sec1_prefers_secure () =
  let p = std Policy.Security_first in
  (* A secure provider route beats a short insecure customer route. *)
  check_pref "secure provider > insecure customer" p
    (Policy.Provider, 9, true) (Policy.Customer, 1, false);
  check_pref "secure peer > insecure customer" p
    (Policy.Peer, 5, true) (Policy.Customer, 1, false);
  (* Among secure routes, normal LP/SP order. *)
  check_pref "secure customer > secure peer" p
    (Policy.Customer, 5, true) (Policy.Peer, 2, true);
  check_pref "secure short > secure long (same class)" p
    (Policy.Customer, 2, true) (Policy.Customer, 3, true)

let test_sec2_prefers_lp_first () =
  let p = std Policy.Security_second in
  (* LP beats security... *)
  check_pref "insecure customer > secure peer" p
    (Policy.Customer, 6, false) (Policy.Peer, 2, true);
  check_pref "insecure peer > secure provider" p
    (Policy.Peer, 6, false) (Policy.Provider, 1, true);
  (* ...but security beats length within a class. *)
  check_pref "long secure customer > short insecure customer" p
    (Policy.Customer, 6, true) (Policy.Customer, 2, false)

let test_sec3_prefers_length () =
  let p = std Policy.Security_third in
  check_pref "short insecure > long secure (same class)" p
    (Policy.Customer, 2, false) (Policy.Customer, 3, true);
  check_pref "secure breaks exact ties" p
    (Policy.Customer, 3, true) (Policy.Customer, 3, false);
  check_pref "customer > peer regardless of security" p
    (Policy.Customer, 9, false) (Policy.Peer, 1, true)

let test_lp2_interleaving () =
  let p = lp2 Policy.Security_third in
  (* LP2: C1 < P1 < C2 < P2 < C>2 < P>2 < provider. *)
  check_pref "peer/1 > customer/2" p (Policy.Peer, 1, false)
    (Policy.Customer, 2, false);
  check_pref "peer/2 > customer/3" p (Policy.Peer, 2, false)
    (Policy.Customer, 3, false);
  check_pref "customer/3 > peer/3" p (Policy.Customer, 3, false)
    (Policy.Peer, 3, false);
  check_pref "customer/9 > peer/3" p (Policy.Customer, 9, false)
    (Policy.Peer, 3, false);
  check_pref "peer/9 > provider/1" p (Policy.Peer, 9, false)
    (Policy.Provider, 1, false)

let all_policies =
  List.concat_map
    (fun model ->
      List.map
        (fun lp -> Policy.make ~lp model)
        [
          Policy.Standard;
          Policy.Lp_k 1;
          Policy.Lp_k 2;
          Policy.Lp_k 5;
          Policy.Lp_k 1000;
        ])
    Policy.all_models

(* The dense rank must be order-isomorphic to the reference comparator for
   every policy.  This is the property the Engine's correctness rests on. *)
let test_rank_isomorphism =
  Test_helpers.qtest "rank is order-isomorphic to compare_routes" ~count:500
    (fun seed ->
      let rng = Rng.create seed in
      let max_len = 1 + Rng.int rng 30 in
      let random_route () =
        let cls =
          match Rng.int rng 3 with
          | 0 -> Policy.Customer
          | 1 -> Policy.Peer
          | _ -> Policy.Provider
        in
        (cls, 1 + Rng.int rng max_len, Rng.bool rng)
      in
      List.for_all
        (fun p ->
          let (c1, l1, s1) = random_route () and (c2, l2, s2) = random_route () in
          let r1 = Policy.rank p ~max_len c1 ~len:l1 ~secure:s1 in
          let r2 = Policy.rank p ~max_len c2 ~len:l2 ~secure:s2 in
          let c = Policy.compare_routes p (c1, l1, s1) (c2, l2, s2) in
          r1 < Policy.max_rank p ~max_len
          && r2 < Policy.max_rank p ~max_len
          && r1 >= 0 && r2 >= 0
          && compare r1 r2 = compare c 0)
        all_policies)

(* Extending a route by one hop must strictly worsen its rank — the
   monotonicity that makes label-setting correct. *)
let test_rank_monotone_extension =
  Test_helpers.qtest "route extension strictly worsens the rank" ~count:500
    (fun seed ->
      let rng = Rng.create seed in
      let max_len = 2 + Rng.int rng 30 in
      List.for_all
        (fun p ->
          let cls =
            match Rng.int rng 3 with
            | 0 -> Policy.Customer
            | 1 -> Policy.Peer
            | _ -> Policy.Provider
          in
          let len = 1 + Rng.int rng (max_len - 1) in
          let secure = Rng.bool rng in
          let parent = Policy.rank p ~max_len cls ~len ~secure in
          (* Extensions permitted by Ex: to a provider as a customer route
             (only from customer routes), to a peer (only from customer
             routes), and to a customer as a provider route (always). *)
          let extensions =
            match cls with
            | Policy.Customer ->
                [ Policy.Customer; Policy.Peer; Policy.Provider ]
            | Policy.Peer | Policy.Provider -> [ Policy.Provider ]
          in
          List.for_all
            (fun cls' ->
              List.for_all
                (fun secure' ->
                  (* A child can keep security only if the parent had it. *)
                  if secure' && not secure then true
                  else
                    Policy.rank p ~max_len cls' ~len:(len + 1) ~secure:secure'
                    > parent)
                [ true; false ])
            extensions)
        all_policies)

let () =
  Alcotest.run "policy"
    [
      ( "comparator",
        [
          Alcotest.test_case "security 1st prefers secure" `Quick
            test_sec1_prefers_secure;
          Alcotest.test_case "security 2nd prefers LP first" `Quick
            test_sec2_prefers_lp_first;
          Alcotest.test_case "security 3rd prefers length" `Quick
            test_sec3_prefers_length;
          Alcotest.test_case "LP2 interleaves customers and peers" `Quick
            test_lp2_interleaving;
        ] );
      ( "rank",
        [ test_rank_isomorphism; test_rank_monotone_extension ] );
    ]
