(* RPKI origin validation. *)

open Core

let test_prefix_parse () =
  let p = Rpki.prefix "10.16.0.0/12" in
  Alcotest.(check string) "round trip" "10.16.0.0/12" (Rpki.prefix_to_string p);
  Alcotest.(check string) "zero prefix" "0.0.0.0/0"
    (Rpki.prefix_to_string (Rpki.prefix "0.0.0.0/0"));
  Alcotest.(check string) "host route" "192.168.1.1/32"
    (Rpki.prefix_to_string (Rpki.prefix "192.168.1.1/32"))

let test_prefix_errors () =
  let bad s msg =
    Alcotest.check_raises s (Invalid_argument msg) (fun () ->
        ignore (Rpki.prefix s))
  in
  bad "10.0.0.0/33" "Rpki.prefix \"10.0.0.0/33\": bad prefix length";
  bad "10.0.0.256/8" "Rpki.prefix \"10.0.0.256/8\": bad octet";
  bad "10.0.0.1/8" "Rpki.prefix \"10.0.0.1/8\": host bits set";
  bad "10.0.0.0" "Rpki.prefix \"10.0.0.0\": expected addr/len"

let test_covers () =
  let covers a b = Rpki.covers (Rpki.prefix a) (Rpki.prefix b) in
  Alcotest.(check bool) "self" true (covers "10.0.0.0/8" "10.0.0.0/8");
  Alcotest.(check bool) "subprefix" true (covers "10.0.0.0/8" "10.1.0.0/16");
  Alcotest.(check bool) "superprefix" false (covers "10.1.0.0/16" "10.0.0.0/8");
  Alcotest.(check bool) "disjoint" false (covers "10.0.0.0/8" "11.0.0.0/8");
  Alcotest.(check bool) "default covers all" true
    (covers "0.0.0.0/0" "203.0.113.0/24")

let roas = [ Rpki.roa "10.0.0.0/8" ~max_len:16 65001 ]

let ann prefix path = { Rpki.ann_prefix = Rpki.prefix prefix; as_path = path }

let test_validation () =
  let v a = Rpki.validity_to_string (Rpki.validate roas a) in
  (* Legitimate origin. *)
  Alcotest.(check string) "valid" "valid" (v (ann "10.0.0.0/8" [ 1; 2; 65001 ]));
  (* Legitimate origin, allowed more-specific. *)
  Alcotest.(check string) "valid subprefix" "valid"
    (v (ann "10.5.0.0/16" [ 65001 ]));
  (* Prefix hijack: wrong origin. *)
  Alcotest.(check string) "hijack invalid" "invalid"
    (v (ann "10.0.0.0/8" [ 3; 666 ]));
  (* Subprefix hijack: too specific even for the right origin. *)
  Alcotest.(check string) "too specific invalid" "invalid"
    (v (ann "10.0.1.0/24" [ 65001 ]));
  (* No covering ROA. *)
  Alcotest.(check string) "unknown" "unknown" (v (ann "192.0.2.0/24" [ 7 ]));
  (* The paper's attack: a bogus path "m d" claims the LEGITIMATE origin
     and therefore passes origin validation — exactly why S*BGP is needed
     (Section 3). *)
  Alcotest.(check string) "path attack passes origin validation" "valid"
    (v (ann "10.0.0.0/8" [ 666; 65001 ]))

let test_filter () =
  let anns =
    [
      ann "10.0.0.0/8" [ 65001 ];
      ann "10.0.0.0/8" [ 666 ];
      ann "192.0.2.0/24" [ 7 ];
    ]
  in
  Alcotest.(check int) "invalid dropped" 2
    (List.length (Rpki.filter_invalid roas anns))

let test_origin_of () =
  Alcotest.(check int) "origin is last hop" 65001
    (Rpki.origin_of (ann "10.0.0.0/8" [ 1; 2; 65001 ]));
  Alcotest.check_raises "empty path"
    (Invalid_argument "Rpki.origin_of: empty AS path") (fun () ->
      ignore (Rpki.origin_of (ann "10.0.0.0/8" [])))

let test_roa_max_len () =
  Alcotest.check_raises "max_len below prefix length"
    (Invalid_argument "Rpki.roa: max_len out of range") (fun () ->
      ignore (Rpki.roa "10.0.0.0/16" ~max_len:8 1))

let () =
  Alcotest.run "rpki"
    [
      ( "prefixes",
        [
          Alcotest.test_case "parse" `Quick test_prefix_parse;
          Alcotest.test_case "errors" `Quick test_prefix_errors;
          Alcotest.test_case "covers" `Quick test_covers;
        ] );
      ( "validation",
        [
          Alcotest.test_case "rfc6483 outcomes" `Quick test_validation;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "origin_of" `Quick test_origin_of;
          Alcotest.test_case "roa max_len" `Quick test_roa_max_len;
        ] );
    ]
