(* The incremental rollout machinery: dirty cones (Routing.Incremental),
   the normalized bounds cache, and the H-metric evaluator.  The load-
   bearing property throughout is bit-identity: everything the cone or
   the cache declares reusable must equal the from-scratch value exactly,
   for every policy model, both tiebreak modes, with and without the
   worker pool. *)

open Test_helpers

(* One pool for all pooled properties; spawning per test case would
   dominate the suite's runtime. *)
let shared_pool = lazy (Core.Parallel.Pool.create ~domains:2 ())

(* A random monotone upgrade of [dep]: each AS keeps its mode or moves up. *)
let upgrade rng dep =
  let n = Core.Deployment.n dep in
  Core.Deployment.of_modes
    (Array.init n (fun v ->
         let m = Core.Deployment.mode dep v in
         if Core.Rng.int rng 3 = 0 then
           match m with
           | Core.Deployment.Off ->
               if Core.Rng.int rng 2 = 0 then Core.Deployment.Simplex
               else Core.Deployment.Full
           | Core.Deployment.Simplex -> Core.Deployment.Full
           | Core.Deployment.Full -> Core.Deployment.Full
         else m))

(* A random downgrade, to exercise the non-monotone fallback. *)
let downgrade rng dep =
  let n = Core.Deployment.n dep in
  Core.Deployment.of_modes
    (Array.init n (fun v ->
         if Core.Rng.int rng 4 = 0 then Core.Deployment.Off
         else Core.Deployment.mode dep v))

(* Soundness of the cone itself: any pair [dirty_pair] clears must have a
   bit-identical engine outcome under both deployments — for a random
   (possibly non-monotone) delta, a random policy, and both tiebreaks. *)
let prop_cone_sound seed =
  let rng = Core.Rng.create seed in
  let g = random_graph rng ~max_n:40 in
  let n = Core.Graph.n g in
  let old_dep = random_deployment rng n in
  let new_dep =
    if Core.Rng.int rng 2 = 0 then upgrade rng old_dep
    else random_deployment rng n
  in
  let policy = random_policy rng in
  let dsts = Array.init n Fun.id in
  let cone = Core.Incremental.compute g ~old_dep ~new_dep ~dsts in
  let ok = ref true in
  Array.iter
    (fun dst ->
      for attacker = 0 to n - 1 do
        if
          attacker <> dst
          && not (Core.Incremental.dirty_pair cone ~attacker ~dst)
        then
          List.iter
            (fun tiebreak ->
              let out dep =
                Core.Engine.compute ~tiebreak g policy dep ~dst
                  ~attacker:(Some attacker)
              in
              match outcome_mismatch (out old_dep) (out new_dep) with
              | None -> ()
              | Some msg ->
                  Printf.eprintf
                    "clean pair (m=%d, d=%d) changed: %s\n%!" attacker dst msg;
                  ok := false)
            [ Core.Engine.Bounds; Core.Engine.Lowest_next_hop ]
      done)
    dsts;
  !ok

(* The evaluator along a random monotone chain with a downgrade tail must
   reproduce the from-scratch H-metric bit-for-bit at every step — per
   aggregate and per pair. *)
let prop_evaluator_exact ~pool seed =
  let rng = Core.Rng.create seed in
  let g = random_graph rng ~max_n:40 in
  let n = Core.Graph.n g in
  let policy = random_policy rng in
  let pick k =
    Core.Rng.sample_without_replacement rng (min k n) n
  in
  let attackers = pick (3 + Core.Rng.int rng 5) in
  let dsts = pick (3 + Core.Rng.int rng 5) in
  let pairs = Core.Metric.pairs ~attackers ~dsts () in
  let chain =
    let d0 = Core.Deployment.empty n in
    let d1 = upgrade rng d0 in
    let d2 = upgrade rng d1 in
    let d3 = upgrade rng d2 in
    [ d0; d1; d2; d2 (* repeat: the delta-free fast path *); d3; downgrade rng d3 ]
  in
  let pool = if pool then Some (Lazy.force shared_pool) else None in
  let ev = Core.Metric.Evaluator.create ?pool g policy pairs in
  List.for_all
    (fun dep ->
      let inc = Core.Metric.Evaluator.eval ev dep in
      let scratch = Core.Metric.h_metric g policy dep pairs in
      let per_pair_equal =
        Array.for_all2
          (fun (a : Core.Metric.bounds) b -> a = b)
          (Core.Metric.Evaluator.values ev)
          (Array.map (fun p -> Core.Metric.pair_bounds g policy dep p) pairs)
      in
      if inc <> scratch then
        Printf.eprintf "aggregate differs at %s\n%!"
          (Core.Deployment.describe dep);
      if not per_pair_equal then Printf.eprintf "per-pair values differ\n%!";
      inc = scratch && per_pair_equal)
    chain

(* A sibling evaluator over the same pairs must be served entirely from
   the shared cache. *)
let test_cache_reuse () =
  let rng = Core.Rng.create 11 in
  let g = random_graph rng ~max_n:30 in
  let n = Core.Graph.n g in
  let dep = random_deployment rng n in
  let pairs =
    Core.Metric.pairs
      ~attackers:(Core.Rng.sample_without_replacement rng 4 n)
      ~dsts:(Core.Rng.sample_without_replacement rng 4 n)
      ()
  in
  let cache = Core.Metric.Cache.create () in
  let policy = Core.Policy.make Core.Policy.Security_second in
  let ev1 = Core.Metric.Evaluator.create ~cache g policy pairs in
  let b1 = Core.Metric.Evaluator.eval ev1 dep in
  let ev2 = Core.Metric.Evaluator.create ~cache g policy pairs in
  let b2 = Core.Metric.Evaluator.eval ev2 dep in
  Alcotest.(check bool) "same bounds" true (b1 = b2);
  let st = Core.Metric.Evaluator.stats ev2 in
  Alcotest.(check int) "all pairs from cache" (Array.length pairs)
    st.Core.Metric.Evaluator.cache_hits;
  Alcotest.(check int) "nothing recomputed" 0 st.Core.Metric.Evaluator.computed

(* Theorem 6.1 shortcut: security-3rd + standard LP + monotone delta + a
   pair already at {1, 1} must be skipped, not recomputed.  In the
   3-node hierarchy below, AS 1's only route to dst 0 is legitimate, so
   the pair (attacker 2, dst 0) sits at {1, 1} for every deployment. *)
let test_thm_skip () =
  let g = graph 3 [ c2p 1 0; c2p 2 0 ] in
  let policy = Core.Policy.make Core.Policy.Security_third in
  let pairs = [| { Core.Metric.attacker = 2; dst = 0 } |] in
  let ev = Core.Metric.Evaluator.create g policy pairs in
  let d0 = Core.Deployment.empty 3 in
  let d1 = Core.Deployment.make ~n:3 ~full:[| 0 |] () in
  let d2 = Core.Deployment.make ~n:3 ~full:[| 0; 1 |] () in
  List.iter (fun d -> ignore (Core.Metric.Evaluator.eval ev d)) [ d0; d1; d2 ];
  let st = Core.Metric.Evaluator.stats ev in
  Alcotest.(check bool) "theorem skips fired" true
    (st.Core.Metric.Evaluator.thm_skips >= 1);
  (* And the skipped value is the truth: *)
  let b = Core.Metric.pair_bounds g policy d2 pairs.(0) in
  Alcotest.(check bool) "skipped pair is at {1,1}" true
    (b.Core.Metric.lb = 1.0 && b.Core.Metric.ub = 1.0
    && (Core.Metric.Evaluator.values ev).(0) = b)

(* Key normalization: a destination that does not sign its origin yields
   the same outcome under every security model and every deployment, so
   the cache serves all of them from one entry — and the served value
   must equal the from-scratch one for the *other* model. *)
let test_unsigned_dst_normalization () =
  let rng = Core.Rng.create 23 in
  let g = random_graph rng ~max_n:30 in
  let n = Core.Graph.n g in
  let dst = 1 + Core.Rng.int rng (n - 1) in
  let attacker = if dst = 0 then 1 else 0 in
  (* Everyone Full except the destination: plenty of security around, but
     the destination's origin is unsigned. *)
  let dep =
    Core.Deployment.of_modes
      (Array.init n (fun v ->
           if v = dst then Core.Deployment.Off else Core.Deployment.Full))
  in
  let other_dep = Core.Deployment.empty n in
  let pair = [| { Core.Metric.attacker; dst } |] in
  let cache = Core.Metric.Cache.create () in
  let h policy dep = Core.Metric.h_metric ~cache g policy dep pair in
  let via_sec1 = h Core.Experiments.Context.sec1 dep in
  let hits0 = Core.Metric.Cache.hits cache in
  let via_sec2 = h Core.Experiments.Context.sec2 dep in
  let via_sec3 = h Core.Experiments.Context.sec3 dep in
  let via_other_dep = h Core.Experiments.Context.sec1 other_dep in
  Alcotest.(check int) "one engine eval serves all models and deployments"
    (Core.Metric.Cache.hits cache - hits0)
    3;
  (* The shared entry is not just shared but *correct* for each model. *)
  List.iter
    (fun (label, policy, got) ->
      let fresh = Core.Metric.h_metric g policy dep pair in
      Alcotest.(check bool) label true (got = fresh))
    [
      ("sec1 exact", Core.Experiments.Context.sec1, via_sec1);
      ("sec2 exact", Core.Experiments.Context.sec2, via_sec2);
      ("sec3 exact", Core.Experiments.Context.sec3, via_sec3);
    ];
  let fresh_other =
    Core.Metric.h_metric g Core.Experiments.Context.sec1 other_dep pair
  in
  Alcotest.(check bool) "other deployment exact" true
    (via_other_dep = fresh_other)

(* Cache.carry republishes exactly the cone-clean pairs under the new
   version, bit-identically. *)
let test_carry () =
  let rng = Core.Rng.create 31 in
  let g = random_graph rng ~max_n:30 in
  let n = Core.Graph.n g in
  let old_dep = random_deployment rng n in
  let new_dep = upgrade rng old_dep in
  let policy = random_policy rng in
  let attackers = Core.Rng.sample_without_replacement rng (min 5 n) n in
  let dsts = Core.Rng.sample_without_replacement rng (min 5 n) n in
  let pairs = Core.Metric.pairs ~attackers ~dsts () in
  let cache = Core.Metric.Cache.create () in
  ignore (Core.Metric.h_metric ~cache g policy old_dep pairs);
  let cone = Core.Incremental.compute g ~old_dep ~new_dep ~dsts in
  let carried =
    Core.Metric.Cache.carry cache policy g cone ~old_dep ~new_dep ~attackers
      ~dsts
  in
  let misses0 = Core.Metric.Cache.misses cache in
  let via_cache = Core.Metric.h_metric ~cache g policy new_dep pairs in
  let fresh = Core.Metric.h_metric g policy new_dep pairs in
  Alcotest.(check bool) "carried values are exact" true (via_cache = fresh);
  (* Every clean pair was carried; only dirty ones needed the engine.
     (Unsigned destinations are already served by the normalized key, so
     they produce neither a carry miss nor an engine run.) *)
  let engine_runs = Core.Metric.Cache.misses cache - misses0 in
  Alcotest.(check bool) "carry saved the clean pairs" true
    (carried = 0 || engine_runs < Array.length pairs);
  Alcotest.(check bool) "carried plus computed cover the pairs" true
    (carried + engine_runs <= Array.length pairs)

(* ---- Topology-delta replay (PR 9) --------------------------------- *)

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Replay through the topology-delta dirty-cone machinery must be
   bit-identical to from-scratch pair bounds on every stepped graph —
   for every security model, random deployments, random delta chains.
   [pair_bounds] carries both tiebreak worlds (the lb/ub bounds), so
   this covers 3 models x 2 tiebreaks. *)
let prop_replay_exact seed =
  let rng = Core.Rng.create seed in
  let g = random_graph rng ~max_n:24 in
  let n = Core.Graph.n g in
  if n < 4 then true
  else begin
    let dep = random_deployment rng n in
    let k = min 4 (n - 1) in
    let dsts = Core.Rng.sample_without_replacement rng k n in
    let attackers = Core.Rng.sample_without_replacement rng k n in
    let pairs =
      Core.Metric.pairs ~attackers ~dsts ()
      |> Array.to_list
      |> List.filter (fun p -> p.Core.Metric.attacker <> p.Core.Metric.dst)
      |> Array.of_list
    in
    if Array.length pairs = 0 then true
    else begin
      let ok = ref true in
      List.iter
        (fun policy ->
          let rp = Core.Metric.Replay.create g policy dep pairs in
          ignore (Core.Metric.Replay.eval rp);
          for _step = 1 to 3 do
            let delta = random_delta rng (Core.Metric.Replay.graph rp) in
            ignore (Core.Metric.Replay.step rp delta);
            let g' = Core.Metric.Replay.graph rp in
            let vals = Core.Metric.Replay.values rp in
            let ws = Core.Engine.Workspace.local () in
            Array.iteri
              (fun i p ->
                let want = Core.Metric.pair_bounds ~ws g' policy dep p in
                let got = vals.(i) in
                if
                  not
                    (bits_equal want.Core.Metric.lb got.Core.Metric.lb
                    && bits_equal want.Core.Metric.ub got.Core.Metric.ub)
                then begin
                  Printf.eprintf
                    "seed %d policy %s pair (m=%d,d=%d): replay [%.17g, \
                     %.17g] vs scratch [%.17g, %.17g]\n\
                     %!"
                    seed
                    (Core.Policy.name policy)
                    p.Core.Metric.attacker p.Core.Metric.dst
                    got.Core.Metric.lb got.Core.Metric.ub want.Core.Metric.lb
                    want.Core.Metric.ub;
                  ok := false
                end)
              pairs
          done;
          (* The stats must account for every lane exactly once per
             solve, and carrying must never exceed the lane total. *)
          let st = Core.Metric.Replay.stats rp in
          if
            st.Core.Metric.Replay.steps <> 3
            || st.Core.Metric.Replay.lanes_solved < Array.length pairs
          then ok := false)
        [
          Core.Experiments.Context.sec1;
          Core.Experiments.Context.sec2;
          Core.Experiments.Context.sec3;
        ];
      !ok
    end
  end

let () =
  Alcotest.run "incremental"
    [
      ( "cone",
        [
          qtest "clean pairs are bit-identical (both tiebreaks)" ~count:120
            prop_cone_sound;
        ] );
      ( "evaluator",
        [
          qtest "matches scratch along chains (sequential)" ~count:60
            (prop_evaluator_exact ~pool:false);
          qtest "matches scratch along chains (pooled)" ~count:25
            (prop_evaluator_exact ~pool:true);
          Alcotest.test_case "sibling evaluator runs from cache" `Quick
            test_cache_reuse;
          Alcotest.test_case "theorem 6.1 skip fires and is exact" `Quick
            test_thm_skip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "unsigned-destination key normalization" `Quick
            test_unsigned_dst_normalization;
          Alcotest.test_case "carry republishes clean pairs" `Quick test_carry;
        ] );
      ( "topology delta",
        [
          qtest "replay matches scratch (3 models, both bounds)" ~count:40
            prop_replay_exact;
        ] );
    ]
