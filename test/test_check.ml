(* The invariant checker (lib/check): the linter accepts everything the
   generators produce, the verifier accepts everything the engine
   produces, the determinism analyzer finds nothing on the real engine —
   and every planted mutant is flagged with its expected rule.  Plus
   regression tests for the Partition / H_metric edge cases hardened in
   the same change. *)

open Test_helpers
module G = Core.Graph
module P = Core.Policy
module E = Core.Engine
module C = Core.Check
module D = Core.Check.Diagnostic

let no_diags what diags =
  match diags with
  | [] -> true
  | d :: _ ->
      Printf.eprintf "%s: %s\n%!" what (D.to_string d);
      false

let errors_only diags = List.filter (fun d -> d.D.severity = D.Error) diags

(* ---- pass 1: the linter ------------------------------------------ *)

let lint_accepts_random =
  qtest "lint accepts every random graph (with tiers)" (fun seed ->
      let rng = Core.Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let tiers = Core.Tiers.classify g in
      no_diags "lint" (C.Lint.graph ~tiers g))

let lint_accepts_topogen =
  qtest "lint accepts every generated topology" ~count:20 (fun seed ->
      let r =
        Core.Topogen.generate
          ~params:(Core.Topogen.default_params ~n:80)
          (Core.Rng.create seed)
      in
      let tiers =
        Core.Tiers.classify ~cps:(Array.to_list r.Core.Topogen.cps)
          r.Core.Topogen.graph
      in
      no_diags "lint" (errors_only (C.Lint.graph ~tiers r.Core.Topogen.graph)))

let lint_accepts_ixp =
  qtest "lint accepts every IXP augmentation" ~count:20 (fun seed ->
      let r =
        Core.Topogen.generate
          ~params:(Core.Topogen.default_params ~n:60)
          (Core.Rng.create seed)
      in
      let base = r.Core.Topogen.graph in
      let augmented, _ = Core.Ixp.augment (Core.Rng.create (seed + 1)) base in
      no_diags "ixp" (C.Lint.ixp ~base ~augmented))

let lint_edges_rules () =
  let has rule diags =
    Alcotest.(check bool) rule true (D.has_rule diags rule)
  in
  has "topo/out-of-range" (C.Lint.edges ~n:2 [ c2p 0 5 ]);
  has "topo/self-loop" (C.Lint.edges ~n:3 [ p2p 1 1 ]);
  has "topo/duplicate-edge" (C.Lint.edges ~n:3 [ c2p 0 1; c2p 0 1 ]);
  has "topo/relationship-conflict" (C.Lint.edges ~n:3 [ c2p 0 1; p2p 0 1 ]);
  Alcotest.(check int)
    "clean edge list" 0
    (List.length (C.Lint.edges ~n:3 [ c2p 0 1; p2p 1 2 ]))

let lint_edges_guarantee =
  (* An empty [Lint.edges] report guarantees [of_edges] succeeds. *)
  qtest "clean edge lint implies of_edges succeeds" (fun seed ->
      let rng = Core.Rng.create seed in
      let n = 2 + Core.Rng.int rng 10 in
      let mk () =
        let a = Core.Rng.int rng n and b = Core.Rng.int rng n in
        if Core.Rng.bool rng then c2p a b else p2p a b
      in
      let edges = List.init (Core.Rng.int rng 12) (fun _ -> mk ()) in
      match errors_only (C.Lint.edges ~n edges) with
      | [] ->
          ignore (G.of_edges ~n edges);
          true
      | _ -> (
          (* Errors found: of_edges must also reject (or the list holds a
             duplicate, which of_edges collapses silently). *)
          let dup = D.has_rule (C.Lint.edges ~n edges) "topo/duplicate-edge" in
          try
            ignore (G.of_edges ~n edges);
            dup
          with Invalid_argument _ -> true))

(* ---- pass 2: the verifier ---------------------------------------- *)

let random_instance rng =
  let g = random_graph rng ~max_n:25 in
  let n = G.n g in
  let policy = random_policy rng in
  let dep = random_deployment rng n in
  let dst = Core.Rng.int rng n in
  let attacker =
    if n >= 2 && Core.Rng.bool rng then
      Some ((dst + 1 + Core.Rng.int rng (n - 1)) mod n)
    else None
  in
  let claim = Core.Rng.int rng 3 in
  (g, policy, dep, dst, attacker, claim)

let verify_accepts_engine =
  qtest "verifier accepts every engine outcome" ~count:400 (fun seed ->
      let rng = Core.Rng.create seed in
      let g, policy, dep, dst, attacker, claim = random_instance rng in
      List.for_all
        (fun tiebreak ->
          let out =
            E.compute ~tiebreak ~attacker_claim:claim g policy dep ~dst
              ~attacker
          in
          no_diags
            (Printf.sprintf "verify (seed %d)" seed)
            (C.Verify.outcome ~tiebreak ~attacker_claim:claim g policy dep
               out))
        [ E.Bounds; E.Lowest_next_hop ])

let thm_sec1_holds =
  qtest "Theorem 3.1 check passes on security-1st outcomes" ~count:300
    (fun seed ->
      let rng = Core.Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = G.n g in
      let dep = random_deployment rng n in
      let sec1 = P.make P.Security_first in
      let dst = Core.Rng.int rng n in
      if n < 2 then true
      else begin
        let m = (dst + 1 + Core.Rng.int rng (n - 1)) mod n in
        let claim = 1 + Core.Rng.int rng 2 in
        let normal = E.compute g sec1 dep ~dst ~attacker:None in
        let attacked =
          E.compute ~attacker_claim:claim g sec1 dep ~dst ~attacker:(Some m)
        in
        no_diags "thm 3.1" (C.Verify.no_downgrade_sec1 ~normal ~attacked)
      end)

let thm_sec3_holds =
  qtest "Theorem 6.1 check passes on security-3rd outcomes" ~count:300
    (fun seed ->
      let rng = Core.Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = G.n g in
      let sec3 = P.make P.Security_third in
      let sub_dep = random_deployment rng n in
      (* A random pointwise-larger deployment. *)
      let super_dep = Core.Deployment.union sub_dep (random_deployment rng n) in
      let dst = Core.Rng.int rng n in
      if n < 2 then true
      else begin
        let m = (dst + 1 + Core.Rng.int rng (n - 1)) mod n in
        let claim = 1 + Core.Rng.int rng 2 in
        let sub =
          E.compute ~attacker_claim:claim g sec3 sub_dep ~dst
            ~attacker:(Some m)
        in
        let super =
          E.compute ~attacker_claim:claim g sec3 super_dep ~dst
            ~attacker:(Some m)
        in
        no_diags "thm 6.1" (C.Verify.sec3_monotone ~sub ~super)
      end)

(* ---- pass 3: determinism ----------------------------------------- *)

let determinism_clean =
  qtest "determinism analyzer finds nothing on the real engine" ~count:10
    (fun seed ->
      let rng = Core.Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = G.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let pairs =
        Array.init 5 (fun i ->
            let dst = Core.Rng.int rng n in
            if i mod 2 = 0 || n < 2 then (dst, None)
            else (dst, Some ((dst + 1) mod n)))
      in
      no_diags "determinism" (C.Determinism.analyze g policy dep pairs))

(* ---- the mutant suite -------------------------------------------- *)

let mutant_tests =
  List.map
    (fun m ->
      Alcotest.test_case m.C.Mutants.name `Quick (fun () ->
          let diags = m.C.Mutants.run () in
          Alcotest.(check bool)
            (Printf.sprintf "%s raises %s" m.C.Mutants.name
               m.C.Mutants.expected_rule)
            true
            (D.has_rule diags m.C.Mutants.expected_rule)))
    C.Mutants.all

let mutant_report_clean () =
  let r = C.Mutants.report () in
  Alcotest.(check bool) "no false negatives" true (D.ok r)

(* ---- Check.run integration --------------------------------------- *)

let full_run_clean () =
  let r =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n:60)
      (Core.Rng.create 11)
  in
  let tiers =
    Core.Tiers.classify ~cps:(Array.to_list r.Core.Topogen.cps)
      r.Core.Topogen.graph
  in
  let options = { C.default_options with C.pairs = 6; det_pairs = 3 } in
  let report = C.run ~options ~tiers r.Core.Topogen.graph in
  Alcotest.(check bool) "report ok" true (D.ok report);
  Alcotest.(check int) "no diagnostics at all" 0 (List.length report.D.diags);
  Alcotest.(check int) "eight passes ran" 8 (List.length report.D.passes)

(* The allocation gate on a real generated topology: within budget,
   identity-gated, cache probe consistent.  Runs on the main domain
   only, so the per-domain Gc counters see exactly the measured loops. *)
let alloc_gate_clean () =
  let r =
    Core.Topogen.generate
      ~params:(Core.Topogen.default_params ~n:80)
      (Core.Rng.create 11)
  in
  let report = C.run_alloc r.Core.Topogen.graph in
  Alcotest.(check bool)
    "alloc report ok"
    true
    (no_diags "alloc" report.D.diags && D.ok report)

let run_flags_broken_graph () =
  let g =
    G.unsafe_of_adjacency
      ~customers:[| [||]; [| 0; 0 |] |]
      ~providers:[| [| 1 |]; [||] |]
      ~peers:[| [||]; [||] |]
  in
  let report = C.run g in
  Alcotest.(check bool) "report not ok" false (D.ok report);
  Alcotest.(check bool)
    "duplicate flagged" true
    (D.has_rule report.D.diags "topo/duplicate-edge")

let enabled_env () =
  (* Only reads the environment; don't mutate it here, just check the
     parser against the current state. *)
  let expect =
    match Sys.getenv_opt "SBGP_CHECK" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  Alcotest.(check bool) "enabled matches env" expect (C.enabled ())

(* ---- Partition / H_metric edge-case regressions ------------------ *)

let invalid_arg_with msg f =
  match f () with
  | exception Invalid_argument m ->
      Alcotest.(check string) "error message" msg m
  | _ -> Alcotest.fail ("expected Invalid_argument: " ^ msg)

let partition_validation () =
  let g = graph 3 [ c2p 1 0; c2p 2 1 ] in
  List.iter
    (fun model ->
      let policy = P.make model in
      (* Same message whatever the model: the security-1st path used to
         leak "Reach.compute: root = avoid" here. *)
      invalid_arg_with "Partition.compute: attacker = dst" (fun () ->
          Core.Partition.count g policy ~attacker:1 ~dst:1);
      invalid_arg_with "Partition.compute: attacker out of range" (fun () ->
          Core.Partition.count g policy ~attacker:7 ~dst:1);
      invalid_arg_with "Partition.compute: dst out of range" (fun () ->
          Core.Partition.count g policy ~attacker:1 ~dst:(-1)))
    P.all_models

let partition_lpk_cycle () =
  (* LPk under security 2nd needs an acyclic hierarchy and must say so. *)
  let g = graph 3 [ c2p 0 1; c2p 1 2; c2p 2 0 ] in
  let policy = P.make ~lp:(P.Lp_k 2) P.Security_second in
  match Core.Partition.count g policy ~attacker:2 ~dst:0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on a cyclic hierarchy"

let metric_pairs_edges () =
  (* Diagonal is excluded. *)
  let ps =
    Core.Metric.pairs ~attackers:[| 0; 1 |] ~dsts:[| 0; 1 |] ()
  in
  Alcotest.(check int) "diagonal excluded" 2 (Array.length ps);
  Array.iter
    (fun p ->
      Alcotest.(check bool)
        "m <> d" true
        (p.Core.Metric.attacker <> p.Core.Metric.dst))
    ps;
  (* max_pairs = 0 is a valid (empty) sample. *)
  let ps0 =
    Core.Metric.pairs ~rng:(Core.Rng.create 3) ~max_pairs:0
      ~attackers:[| 0; 1 |] ~dsts:[| 0; 1 |] ()
  in
  Alcotest.(check int) "max_pairs 0" 0 (Array.length ps0);
  (* Negative max_pairs is rejected up front, not via an Rng error. *)
  invalid_arg_with "Metric.pairs: max_pairs < 0" (fun () ->
      Core.Metric.pairs ~rng:(Core.Rng.create 3) ~max_pairs:(-1)
        ~attackers:[| 0; 1 |] ~dsts:[| 0; 1 |] ());
  (* Empty attacker set: no pairs, no rng needed even with max_pairs. *)
  let pse =
    Core.Metric.pairs ~max_pairs:5 ~attackers:[||] ~dsts:[| 0 |] ()
  in
  Alcotest.(check int) "empty attackers" 0 (Array.length pse)

let metric_empty_cases () =
  let g = graph 3 [ c2p 1 0; c2p 2 1 ] in
  let sec3 = P.make P.Security_third in
  (* No pairs: defined as zero bounds. *)
  let b = Core.Metric.h_metric g sec3 (Core.Deployment.empty 3) [||] in
  Alcotest.(check (float 0.)) "empty pairs lb" 0. b.Core.Metric.lb;
  Alcotest.(check (float 0.)) "empty pairs ub" 0. b.Core.Metric.ub;
  (* Empty deployment set built via make. *)
  let dep = Core.Deployment.make ~n:3 ~full:[||] () in
  Alcotest.(check int) "no secure ASes" 0 (Core.Deployment.count_secure dep);
  let ps = Core.Metric.pairs ~attackers:[| 2 |] ~dsts:[| 0 |] () in
  let be = Core.Metric.h_metric g sec3 dep ps in
  let b0 = Core.Metric.h_metric g sec3 (Core.Deployment.empty 3) ps in
  Alcotest.(check (float 0.)) "empty make = empty" b0.Core.Metric.lb
    be.Core.Metric.lb;
  (* All attackers equal the destination: zero pairs. *)
  let bd = Core.Metric.h_metric_per_dst g sec3 dep ~attackers:[| 0 |] ~dst:0 in
  Alcotest.(check (float 0.)) "m = d only" 0. bd.Core.Metric.lb

let attacker_inside_s =
  (* Securing the attacker itself never lets it forge a secure route:
     its announcements stay insecure for every model and deployment. *)
  qtest "attacker inside S gains no secure route" ~count:200 (fun seed ->
      let rng = Core.Rng.create seed in
      let g = random_graph rng ~max_n:20 in
      let n = G.n g in
      if n < 2 then true
      else begin
        let dst = Core.Rng.int rng n in
        let m = (dst + 1 + Core.Rng.int rng (n - 1)) mod n in
        (* Everyone deploys, including the attacker. *)
        let dep = Core.Deployment.make ~n ~full:(Array.init n Fun.id) () in
        let policy = random_policy rng in
        let out = E.compute g policy dep ~dst ~attacker:(Some m) in
        let ok = ref true in
        for v = 0 to n - 1 do
          if Core.Outcome.secure out v && Core.Outcome.to_m out v then
            ok := false
        done;
        !ok
      end)

let ws_reuse_after_larger_graph () =
  (* A workspace sized for a big graph must still compute small graphs
     exactly (stale slots beyond n must not leak in). *)
  let ws = E.Workspace.create 64 in
  let big = graph 8 [ c2p 1 0; c2p 2 1; c2p 3 2; c2p 4 3; c2p 5 4; c2p 6 5; c2p 7 6 ] in
  let sec3 = P.make P.Security_third in
  ignore (E.compute ~ws big sec3 (Core.Deployment.empty 8) ~dst:0 ~attacker:None);
  let small = graph 3 [ c2p 1 0; c2p 2 1 ] in
  let reused = E.compute ~ws small sec3 (Core.Deployment.empty 3) ~dst:0 ~attacker:None in
  let fresh = E.compute small sec3 (Core.Deployment.empty 3) ~dst:0 ~attacker:None in
  match outcome_mismatch fresh reused with
  | None -> ()
  | Some msg -> Alcotest.fail msg

let pool_size_one () =
  (* A width-1 pool takes the sequential path and must agree. *)
  let pool = Core.Parallel.Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Core.Parallel.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 1 (Core.Parallel.Pool.size pool);
      let xs = Array.init 17 Fun.id in
      let ys = Core.Parallel.Pool.map pool (fun x -> (2 * x) + 1) xs in
      Alcotest.(check (array int))
        "sequential map" (Array.map (fun x -> (2 * x) + 1) xs) ys)

let () =
  Alcotest.run "check"
    [
      ( "lint",
        [
          lint_accepts_random;
          lint_accepts_topogen;
          lint_accepts_ixp;
          Alcotest.test_case "edge rules" `Quick lint_edges_rules;
          lint_edges_guarantee;
        ] );
      ( "verify",
        [ verify_accepts_engine; thm_sec1_holds; thm_sec3_holds ] );
      ("determinism", [ determinism_clean ]);
      ( "mutants",
        mutant_tests
        @ [ Alcotest.test_case "report clean" `Quick mutant_report_clean ] );
      ( "integration",
        [
          Alcotest.test_case "full run clean" `Quick full_run_clean;
          Alcotest.test_case "alloc gate clean" `Quick alloc_gate_clean;
          Alcotest.test_case "broken graph flagged" `Quick
            run_flags_broken_graph;
          Alcotest.test_case "enabled env" `Quick enabled_env;
        ] );
      ( "metric regressions",
        [
          Alcotest.test_case "partition validation" `Quick
            partition_validation;
          Alcotest.test_case "partition LPk cycle" `Quick partition_lpk_cycle;
          Alcotest.test_case "pairs edge cases" `Quick metric_pairs_edges;
          Alcotest.test_case "empty cases" `Quick metric_empty_cases;
          attacker_inside_s;
          Alcotest.test_case "workspace reuse after larger graph" `Quick
            ws_reuse_after_larger_graph;
          Alcotest.test_case "pool of one" `Quick pool_size_one;
        ] );
    ]
