(* The typed-AST analyzer (lib/analysis + sbgp-astlint).

   Three layers: the deliberately-bad fixture corpus must match its
   golden diagnostic list exactly (so a rule cannot silently widen or
   narrow); the per-rule false-negative guard must hold (every seeded
   defect caught, the clean control silent); and the production tree
   itself must be clean under the checked-in allowlist — the same gate
   `dune build @lint` enforces.  Plus unit tests for the symbol
   canonicalizer and the allowlist parser, which the rules lean on. *)

module A = Core.Analysis
module D = Core.Check.Diagnostic

let root =
  match A.Cmt_loader.locate_build_root () with
  | Some r -> r
  | None -> Alcotest.fail "no build root with .cmt artifacts found"

let fixture_outcome =
  lazy (A.analyze ~config:A.fixture_config ~root ~dirs:[ A.fixture_dir ] ())

(* ---- golden corpus ------------------------------------------------ *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (if String.trim l = "" then acc else l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_golden () =
  let outcome = Lazy.force fixture_outcome in
  let actual = List.map D.to_string outcome.A.report.D.diags in
  let expected =
    read_lines (Filename.concat root "test/fixtures/astlint/expected.txt")
  in
  if actual <> expected then begin
    Printf.eprintf "--- actual fixture diagnostics ---\n";
    List.iter (fun l -> Printf.eprintf "%s\n" l) actual;
    Printf.eprintf "--- end ---\n%!";
    Alcotest.failf "fixture diagnostics diverge from expected.txt (%d vs %d)"
      (List.length actual) (List.length expected)
  end

(* ---- false-negative guard ----------------------------------------- *)

let test_guard () =
  let outcome = Lazy.force fixture_outcome in
  match A.fixture_failures outcome with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "; " fs)

(* Every rule of the catalogue must be represented by at least one
   fixture finding — a rule with no mutant coverage could regress to
   never firing without any test noticing. *)
let test_all_rules_covered () =
  let outcome = Lazy.force fixture_outcome in
  let fired rule =
    List.exists (fun (d : D.t) -> d.rule = rule) outcome.A.report.D.diags
  in
  List.iter
    (fun rule ->
      if not (fired rule) then
        Alcotest.failf "no fixture finding for %s" rule)
    [
      A.Rules.rule_poly; A.Rules.rule_taint; A.Rules.rule_unsafe;
      A.Rules.rule_float; A.Rules.rule_swallow;
    ]

(* The old grep lint dropped any hit line that begins with a comment
   delimiter, so a definition sharing its line with a comment closer
   was invisible (tools/lint.sh kept the filter line-local on purpose).
   The typed walk must catch exactly that fixture. *)
let test_comment_mask_regression () =
  let outcome = Lazy.force fixture_outcome in
  let hit =
    List.exists
      (fun (d : D.t) ->
        d.rule = A.Rules.rule_poly
        && String.length d.message > 0
        &&
        let prefix = "test/fixtures/astlint/a1_comment_mask.ml:" in
        String.length d.message >= String.length prefix
        && String.sub d.message 0 (String.length prefix) = prefix)
      outcome.A.report.D.diags
  in
  if not hit then
    Alcotest.fail "comment-masked polymorphic compare not caught"

(* ---- the production tree is clean --------------------------------- *)

let test_tree_clean () =
  (* Under `dune runtest` the declared dep puts the allowlist in the
     build tree; under a bare `dune exec` from a checkout only the
     source copy exists. *)
  let allowlist_file =
    let candidates =
      [
        Filename.concat root "tools/astlint/allowlist.txt";
        "tools/astlint/allowlist.txt";
        "../tools/astlint/allowlist.txt";
        "../../tools/astlint/allowlist.txt";
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.fail "tools/astlint/allowlist.txt not found"
  in
  let outcome =
    A.analyze ~allowlist_file ~root ~dirs:A.default_dirs ()
  in
  if outcome.A.units = [] then Alcotest.fail "no production units scanned";
  match D.errors outcome.A.report with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "tree not clean (%d findings); first: %s"
        (List.length (D.errors outcome.A.report))
        (D.to_string d)

(* ---- symbol canonicalization -------------------------------------- *)

let test_canon () =
  let eq = Alcotest.(check string) in
  eq "lib mangling" "Routing.Engine.compute"
    (A.Syms.canon_string "Routing__Engine.compute");
  eq "exe mangling" "Sbgp" (A.Syms.canon_string "Dune__exe__Sbgp");
  eq "operator parens" "Stdlib.=" (A.Syms.canon_string "Stdlib.( = )");
  Alcotest.(check bool)
    "spec covers below" true
    (A.Syms.spec_matches ~spec:"Routing.Reference"
       "Routing.Reference.compute");
  Alcotest.(check bool)
    "spec star" true
    (A.Syms.spec_matches ~spec:"Metric.H_metric.*" "Metric.H_metric.eval");
  Alcotest.(check bool)
    "no substring match" false
    (A.Syms.spec_matches ~spec:"Routing.Reach" "Routing.Reachable");
  Alcotest.(check bool)
    "dir scope" true
    (A.Syms.in_scope ~scopes:[ "lib/routing" ] "lib/routing/engine.ml");
  Alcotest.(check bool)
    "file scope exact" true
    (A.Syms.in_scope
       ~scopes:[ "lib/prelude/shard_cache.ml" ]
       "lib/prelude/shard_cache.ml");
  Alcotest.(check bool)
    "no dir prefix confusion" false
    (A.Syms.in_scope ~scopes:[ "lib/rout" ] "lib/routing/engine.ml")

(* ---- allowlist parser --------------------------------------------- *)

let test_allowlist () =
  (match
     A.Allowlist.parse_string
       "# comment\n\nast/float-compare  M.f  -- stored literal\n"
   with
  | Ok t ->
      Alcotest.(check bool)
        "permits the symbol" true
        (A.Allowlist.permits t ~rule:"ast/float-compare" "M.f");
      Alcotest.(check bool)
        "covers below" true
        (A.Allowlist.permits t ~rule:"ast/float-compare" "M.f.inner");
      Alcotest.(check bool)
        "other rule untouched" false
        (A.Allowlist.permits t ~rule:"ast/poly-compare" "M.f")
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match A.Allowlist.parse_string "ast/float-compare M.f\n" with
  | Ok _ -> Alcotest.fail "reasonless entry accepted"
  | Error _ -> ());
  match A.Allowlist.parse_string "just-one-token\n" with
  | Ok _ -> Alcotest.fail "malformed entry accepted"
  | Error _ -> ()

let () =
  Alcotest.run "astlint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "corpus matches golden diagnostics" `Quick
            test_golden;
          Alcotest.test_case "false-negative guard holds" `Quick test_guard;
          Alcotest.test_case "every rule has mutant coverage" `Quick
            test_all_rules_covered;
          Alcotest.test_case "comment-masked compare caught (grep regression)"
            `Quick test_comment_mask_regression;
        ] );
      ( "tree",
        [
          Alcotest.test_case "production tree clean under allowlist" `Quick
            test_tree_clean;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "symbol canonicalization" `Quick test_canon;
          Alcotest.test_case "allowlist parser" `Quick test_allowlist;
        ] );
    ]
